module fluidmem

go 1.22
