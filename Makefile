GO ?= go

.PHONY: check build vet test race bench-quick

# The full gate: what CI (and the chaos PR's acceptance criteria) require.
check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-quick:
	$(GO) run ./cmd/fluidmem-bench -quick
