GO ?= go

.PHONY: check build vet test race check-race bench-quick

# The full gate: what CI (and the chaos PR's acceptance criteria) require.
check: vet build test check-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race gate for the sharded fault pipeline: two counted runs defeat the test
# cache so the per-worker stats cells and shard structures are re-exercised
# under the race detector every time.
check-race:
	$(GO) test -race -count=2 ./...

bench-quick:
	$(GO) run ./cmd/fluidmem-bench -quick
