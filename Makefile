GO ?= go

.PHONY: check build vet test race check-race bench-quick bench-json bench-ratchet shard-oracle trace-oracle arbiter-oracle market-oracle cluster-oracle parallel-oracle fuzz-short

# The full gate: what CI (and the chaos PR's acceptance criteria) require.
# shard-oracle re-proves worker-count determinism on the write-back workloads,
# trace-oracle re-proves trace determinism (byte-identical replays, identical
# logical event sequences across worker counts), arbiter-oracle re-proves that
# working-set estimates and arbiter decisions are invariant across worker
# counts and VM interleavings, cluster-oracle re-proves the no-page-lost
# contract of the multi-node pool under randomized membership/failure
# schedules, parallel-oracle re-proves serial-vs-parallel parity of the
# multi-goroutine data plane under the race detector, fuzz-short gives the
# model checkers a short adversarial pass,
# and bench-ratchet re-measures the committed BENCH_*.json throughput rows
# and fails on a >10% faults/s regression.
check: vet build test check-race shard-oracle trace-oracle arbiter-oracle market-oracle cluster-oracle parallel-oracle fuzz-short bench-ratchet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race gate for the sharded fault pipeline: two counted runs defeat the test
# cache so the per-worker stats cells and shard structures are re-exercised
# under the race detector every time.
check-race:
	$(GO) test -race -count=2 ./...

bench-quick:
	$(GO) run ./cmd/fluidmem-bench -quick

# Regenerate the machine-readable artifacts at full scale: the write-back
# crossover (BENCH_writeback.json), the fault-latency breakdown with its
# per-phase percentile rows (BENCH_trace.json), the multi-tenant arbiter
# comparison (BENCH_arbiter.json), and the cluster lifecycle latency matrix
# (BENCH_cluster.json). fluidmem-bench fails loudly if any experiment named
# here stops producing its artifact.
# BENCH_parallel.json carries the parallel data plane's scaling matrix plus
# its deterministic serial virtual-time reference row.
# BENCH_market.json carries the marketplace-vs-arbiter-vs-static comparison;
# its Validate() makes this target fail loudly if the artifact would record
# zero SLO-enforcement epochs (a vacuous market run).
bench-json:
	$(GO) run ./cmd/fluidmem-bench -run writeback,trace,arbiter,cluster,parallel,market -json

# The throughput ratchet: re-run the artifact experiments and compare every
# faults_per_sec row against the committed BENCH_*.json baselines; a >10%
# drop fails the build. The committed rows are virtual-time rates, so on
# unchanged simulation logic the comparison is exact.
# parallel contributes exactly one ratchet row: its serial virtual-time
# reference (the wall-clock matrix rows are machine-dependent by design and
# use a different key, so the scanner never sees them).
bench-ratchet:
	$(GO) run ./cmd/fluidmem-bench -run writeback,trace,arbiter,cluster,parallel,market -ratchet

# The write-back determinism oracle: N-worker monitors must be logically
# identical to the serial monitor on the write-heavy / zero-heavy workloads.
shard-oracle:
	$(GO) test ./internal/core/shardtest/ -count=1 -run 'TestWorkerCountEquivalence/.*writeback.*'

# The trace determinism oracle: same seed must serialise byte-identical
# Chrome traces, and every workload must feed the logical-digest comparison
# that TestWorkerCountEquivalence applies across worker counts.
trace-oracle:
	$(GO) test ./internal/core/shardtest/ -count=1 -run 'TestTrace'

# The arbiter determinism oracle: ghost-LRU digests, working-set estimates,
# and synthetic arbiter plans must be identical across worker counts
# (shardtest outcomes carry them), and host-level arbiter decisions must be
# invariant across VM interleavings and worker counts.
arbiter-oracle:
	$(GO) test ./internal/core/shardtest/ -count=1 -run 'TestHotsetOracle|TestWorkerCountEquivalence'
	$(GO) test . -count=1 -run 'TestHostWorkerCountInvariance|TestHostInterleavingInvariance|TestHostTracedBitIdentical'

# The market determinism oracle: the synthetic two-epoch marketplace plans
# derived from every replay's curve (grant, then SLO claw-back) must be
# identical across worker counts (shardtest outcomes carry MarketPlanDigest),
# host-level market decisions — including the SLO window evaluations feeding
# them — must be invariant across VM interleavings and worker counts, and
# the SLO evaluation itself must be partition-invariant, including under the
# concurrent parallel engine.
market-oracle:
	$(GO) test ./internal/core/shardtest/ -count=1 -run 'TestWorkerCountEquivalence|TestSeedsDiverge'
	$(GO) test . -count=1 -run 'TestHostMarketWorkerCountInvariance|TestHostMarketInterleavingInvariance'
	$(GO) test ./internal/market/ -count=1 -run 'TestEvaluateSLO'

# The cluster no-page-lost oracle: randomized {add, drain, crash, recover,
# partition, heal} schedules over ≥3 seeds × {3,5 nodes} × {2,3 replicas},
# each run twice, must show no page lost, mis-routed, or served stale against
# the flat model, with bitwise same-seed repeatability.
cluster-oracle:
	$(GO) test ./internal/kvstore/cluster/... -count=1 -run 'TestOracle'

# The serial-vs-parallel parity oracle: the multi-goroutine engine must
# reproduce the single-thread monitor's logical end state exactly — per-shard
# delivered-data and trace digests, resident set, epoch, and all counters —
# on every shardtest workload, at several shard counts, repeatably across
# GOMAXPROCS. Run under -race so the proof also covers the memory model.
parallel-oracle:
	$(GO) test ./internal/core/paralleltest/ -count=1 -race
	$(GO) test ./internal/core/ -count=1 -race -run 'TestSPSC|TestParallel'

# Short fuzz passes over the flat-model checkers: the coalescing write-back
# engine, the ghost-LRU working-set estimator, and the cluster pool's
# rendezvous key-routing invariants.
fuzz-short:
	$(GO) test ./internal/core/ -run FuzzWriteCoalesce -fuzz FuzzWriteCoalesce -fuzztime=5s
	$(GO) test ./internal/hotset/ -run FuzzGhostLRU -fuzz FuzzGhostLRU -fuzztime=5s
	$(GO) test ./internal/kvstore/cluster/ -run FuzzRouting -fuzz FuzzRouting -fuzztime=5s
