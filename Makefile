GO ?= go

.PHONY: check build vet test race check-race bench-quick bench-json bench-ratchet shard-oracle trace-oracle arbiter-oracle market-oracle cluster-oracle parallel-oracle openloop-oracle fuzz-short

# The full gate: what CI (and the chaos PR's acceptance criteria) require.
# shard-oracle re-proves worker-count determinism on the write-back workloads,
# trace-oracle re-proves trace determinism (byte-identical replays, identical
# logical event sequences across worker counts), arbiter-oracle re-proves that
# working-set estimates and arbiter decisions are invariant across worker
# counts and VM interleavings, cluster-oracle re-proves the no-page-lost
# contract of the multi-node pool under randomized membership/failure
# schedules, parallel-oracle re-proves serial-vs-parallel parity of the
# multi-goroutine data plane under the race detector, openloop-oracle
# re-proves that open-loop scenario replays are bitwise repeatable and
# invariant across fault-pipeline worker counts, fuzz-short gives the
# model checkers a short adversarial pass,
# and bench-ratchet re-measures every directional metric row of the committed
# BENCH_*.json artifacts and fails on a >10% regression.
check: vet build test check-race shard-oracle trace-oracle arbiter-oracle market-oracle cluster-oracle parallel-oracle openloop-oracle fuzz-short bench-ratchet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race gate for the sharded fault pipeline: two counted runs defeat the test
# cache so the per-worker stats cells and shard structures are re-exercised
# under the race detector every time.
check-race:
	$(GO) test -race -count=2 ./...

bench-quick:
	$(GO) run ./cmd/fluidmem-bench -quick

# Regenerate the machine-readable BENCH_*.json artifacts at full scale. The
# "artifacts" meta-name expands inside fluidmem-bench to every experiment the
# registry marks as carrying a committed baseline (see `fluidmem-bench -list`:
# currently writeback, trace, arbiter, cluster, parallel, market, openloop) —
# enrolling a new artifact experiment is one registry flag, with no Makefile
# edit to forget. fluidmem-bench fails loudly if any selected experiment
# stops producing its artifact, and each result's Validate() vetoes vacuous
# artifacts (a market run with zero SLO-enforcement epochs, an open-loop
# sweep that never brackets its knee).
bench-json:
	$(GO) run ./cmd/fluidmem-bench -run artifacts -json

# The metric ratchet: re-run the artifact experiments and compare every
# directional metric row — throughputs and goodputs must not drop, latency
# and miss-rate rows must not rise — against the committed BENCH_*.json
# baselines; a >10% move in the bad direction fails the build. The compared
# rows are virtual-time measurements, so on unchanged simulation logic the
# comparison is exact; machine-dependent rows (wall clocks, allocation
# rates, core counts, speedups) are excluded by key.
bench-ratchet:
	$(GO) run ./cmd/fluidmem-bench -run artifacts -ratchet

# The write-back determinism oracle: N-worker monitors must be logically
# identical to the serial monitor on the write-heavy / zero-heavy workloads.
shard-oracle:
	$(GO) test ./internal/core/shardtest/ -count=1 -run 'TestWorkerCountEquivalence/.*writeback.*'

# The trace determinism oracle: same seed must serialise byte-identical
# Chrome traces, and every workload must feed the logical-digest comparison
# that TestWorkerCountEquivalence applies across worker counts.
trace-oracle:
	$(GO) test ./internal/core/shardtest/ -count=1 -run 'TestTrace'

# The arbiter determinism oracle: ghost-LRU digests, working-set estimates,
# and synthetic arbiter plans must be identical across worker counts
# (shardtest outcomes carry them), and host-level arbiter decisions must be
# invariant across VM interleavings and worker counts.
arbiter-oracle:
	$(GO) test ./internal/core/shardtest/ -count=1 -run 'TestHotsetOracle|TestWorkerCountEquivalence'
	$(GO) test . -count=1 -run 'TestHostWorkerCountInvariance|TestHostInterleavingInvariance|TestHostTracedBitIdentical'

# The market determinism oracle: the synthetic two-epoch marketplace plans
# derived from every replay's curve (grant, then SLO claw-back) must be
# identical across worker counts (shardtest outcomes carry MarketPlanDigest),
# host-level market decisions — including the SLO window evaluations feeding
# them — must be invariant across VM interleavings and worker counts, and
# the SLO evaluation itself must be partition-invariant, including under the
# concurrent parallel engine.
market-oracle:
	$(GO) test ./internal/core/shardtest/ -count=1 -run 'TestWorkerCountEquivalence|TestSeedsDiverge'
	$(GO) test . -count=1 -run 'TestHostMarketWorkerCountInvariance|TestHostMarketInterleavingInvariance'
	$(GO) test ./internal/market/ -count=1 -run 'TestEvaluateSLO'

# The cluster no-page-lost oracle: randomized {add, drain, crash, recover,
# partition, heal} schedules over ≥3 seeds × {3,5 nodes} × {2,3 replicas},
# each run twice, must show no page lost, mis-routed, or served stale against
# the flat model, with bitwise same-seed repeatability.
cluster-oracle:
	$(GO) test ./internal/kvstore/cluster/... -count=1 -run 'TestOracle'

# The serial-vs-parallel parity oracle: the multi-goroutine engine must
# reproduce the single-thread monitor's logical end state exactly — per-shard
# delivered-data and trace digests, resident set, epoch, and all counters —
# on every shardtest workload, at several shard counts, repeatably across
# GOMAXPROCS. Run under -race so the proof also covers the memory model.
parallel-oracle:
	$(GO) test ./internal/core/paralleltest/ -count=1 -race
	$(GO) test ./internal/core/ -count=1 -race -run 'TestSPSC|TestParallel'

# The open-loop traffic determinism oracle: same-seed scenario replays must
# be bitwise repeatable and the full report — offered load, goodput, sojourn
# histograms, queue depths, planner epochs, logical trace digests — invariant
# across fault-pipeline worker counts {1,2,4,8}, for every scenario × planner
# cell; and the arrival schedules themselves must be split/merge-invariant.
# (The churn-vs-core.NewParallel race leg of scenariotest runs under -race
# via check-race.)
openloop-oracle:
	$(GO) test ./internal/loadgen/scenariotest/ -count=1
	$(GO) test ./internal/loadgen/ -count=1 -run 'TestSchedule|TestArrivals|TestRun'

# Short fuzz passes over the flat-model checkers: the coalescing write-back
# engine, the ghost-LRU working-set estimator, the cluster pool's rendezvous
# key-routing invariants, and the open-loop arrival schedules' monotonicity
# and split/merge invariance.
fuzz-short:
	$(GO) test ./internal/core/ -run FuzzWriteCoalesce -fuzz FuzzWriteCoalesce -fuzztime=5s
	$(GO) test ./internal/hotset/ -run FuzzGhostLRU -fuzz FuzzGhostLRU -fuzztime=5s
	$(GO) test ./internal/kvstore/cluster/ -run FuzzRouting -fuzz FuzzRouting -fuzztime=5s
	$(GO) test ./internal/loadgen/ -run FuzzArrivalSchedule -fuzz FuzzArrivalSchedule -fuzztime=5s
