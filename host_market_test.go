package fluidmem

import (
	"reflect"
	"testing"
	"time"

	"fluidmem/internal/core"
)

// marketTenants builds the adversarial pair the marketplace exists for: an
// SLO-less adversary cycling a working set larger than the whole host
// budget (a curve that stays steep no matter how much it is granted, so it
// bids forever) and a victim with a tight p99 SLO whose small working set
// fits its split (flat curve, donates — until donation makes it fault and
// blow its target, at which point the market must make it whole).
func marketTenants(workers int) []TenantSpec {
	specs := []TenantSpec{
		{ID: "adv", VM: MachineConfig{Backend: BackendDRAM, GuestMemory: 4 << 20}},
		{ID: "victim", VM: MachineConfig{Backend: BackendDRAM, GuestMemory: 4 << 20},
			Policy: TenantPolicy{SLO: time.Microsecond}},
	}
	if workers > 1 {
		for i := range specs {
			// The override replaces the whole monitor config, so it must
			// start from the full default (NewMachine fills Store/capacity).
			mc := core.DefaultConfig(nil, 0)
			mc.Workers = workers
			specs[i].VM.Monitor = &mc
		}
	}
	return specs
}

// marketHostRun drives the adversarial pair for `rounds` epochs under the
// schedule, with the chosen planner ("market", "arbiter", or "static" —
// static still runs SLO windows via HostConfig.EpochOps).
func marketHostRun(t *testing.T, workers int, planner string, sched hostSchedule) *Host {
	t.Helper()
	const totalPages, epochOps, rounds = 64, 200, 8
	cfg := HostConfig{Tenants: marketTenants(workers), TotalLocalPages: totalPages, Seed: 42}
	switch planner {
	case "market":
		cfg.Market = &MarketConfig{EpochOps: epochOps}
	case "arbiter":
		cfg.Arbiter = &ArbiterConfig{EpochOps: epochOps}
	case "static":
		cfg.EpochOps = epochOps
	default:
		t.Fatalf("unknown planner %q", planner)
	}
	h, err := NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]uint64, h.VMs())
	spans := []int{80, 8}
	for i := 0; i < h.VMs(); i++ {
		seg, err := h.Machine(i).Alloc("ws", uint64(spans[i])*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		segs[i] = seg.Addr(0)
	}
	walk := func(t *testing.T, h *Host, vmIdx, op int) {
		t.Helper()
		addr := segs[vmIdx] + uint64(op%spans[vmIdx])*PageSize
		if _, err := h.Touch(vmIdx, addr, op%3 == 0); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < rounds; r++ {
		sched(t, h, r, epochOps, walk)
	}
	return h
}

// The marketplace must grant the adversary leases from the healthy victim,
// then claw them back the moment the victim's p99 blows its target.
func TestHostMarketClawsBackFromViolatingDonor(t *testing.T) {
	h := marketHostRun(t, 1, "market", roundRobin)
	st := h.Stats()
	if st.Market == nil {
		t.Fatal("market counters absent")
	}
	if st.Market.Epochs == 0 || st.Market.SLOEnforcedEpochs == 0 {
		t.Fatalf("market never enforced an SLO: %+v", st.Market)
	}
	if st.Market.Leases == 0 || st.Market.LeasedPages == 0 {
		t.Fatalf("market never traded: %+v", st.Market)
	}
	if st.Market.Clawbacks == 0 || st.Market.ClawedPages == 0 {
		t.Fatalf("violating donor was never made whole: %+v", st.Market)
	}
	if st.Market.SLOViolations == 0 {
		t.Fatalf("victim never registered a violation: %+v", st.Market)
	}
	if total := st.Shares[0] + st.Shares[1]; total != 64 {
		t.Fatalf("budget not conserved: %d", total)
	}
	var victim TenantStats
	for _, ts := range st.Tenants {
		if ts.ID == "victim" {
			victim = ts
		}
	}
	if victim.SLO.Target != time.Microsecond {
		t.Fatalf("victim row = %+v", victim)
	}
	if victim.SLO.Windows == 0 || victim.SLO.Violations == 0 {
		t.Fatalf("victim SLO accounting empty: %+v", victim.SLO)
	}
	if victim.SLO.Violations >= victim.SLO.Windows {
		t.Fatalf("victim violated every window — claw-back never helped: %+v", victim.SLO)
	}
}

// The greedy arbiter is SLO-blind: same drive, pages drain to the adversary
// and stay there, so the victim misses more windows than under the market.
func TestHostMarketBeatsArbiterOnSLOMisses(t *testing.T) {
	missRate := func(h *Host) (violations, windows uint64) {
		for _, ts := range h.Stats().Tenants {
			violations += ts.SLO.Violations
			windows += ts.SLO.Windows
		}
		return
	}
	mv, mw := missRate(marketHostRun(t, 1, "market", roundRobin))
	av, aw := missRate(marketHostRun(t, 1, "arbiter", roundRobin))
	if mw == 0 || aw == 0 {
		t.Fatalf("SLO windows not evaluated: market %d, arbiter %d", mw, aw)
	}
	if float64(mv)/float64(mw) >= float64(av)/float64(aw) {
		t.Fatalf("market miss rate %d/%d not below arbiter's %d/%d", mv, mw, av, aw)
	}
}

// A planner-less host with EpochOps still runs SLO accounting — and the
// static split never moves.
func TestHostStaticSplitSLOAccounting(t *testing.T) {
	h := marketHostRun(t, 1, "static", roundRobin)
	st := h.Stats()
	if st.Shares[0] != 32 || st.Shares[1] != 32 {
		t.Fatalf("static split moved: %v", st.Shares)
	}
	if st.Arbiter.Epochs != 0 || st.Market != nil {
		t.Fatalf("planner ran without being configured: %+v", st.Arbiter)
	}
	var windows uint64
	for _, ts := range st.Tenants {
		windows += ts.SLO.Windows
	}
	if windows == 0 {
		t.Fatal("static host evaluated no SLO windows")
	}
}

// hostMarketDigest extends hostDecisionDigest with the market's lease-book
// digest and the per-tenant SLO counters — everything an epoch decision
// depends on or produces.
func hostMarketDigest(h *Host) []uint64 {
	out := hostDecisionDigest(h)
	if h.mkt != nil {
		out = append(out, h.mkt.Digest())
	}
	for _, s := range h.slo {
		out = append(out, s.Windows, s.Violations, uint64(s.LastP99), s.LastFaults)
	}
	return out
}

// Same seed, different fault-pipeline widths: every market decision — and
// the SLO evaluations feeding it — must be identical. Fault-latency
// histograms merge bucket-wise across workers, so the window p99 is a pure
// function of the multiset of fault durations, which the closed-loop drive
// keeps worker-count-invariant.
func TestHostMarketWorkerCountInvariance(t *testing.T) {
	ref := hostMarketDigest(marketHostRun(t, 1, "market", roundRobin))
	for _, workers := range []int{2, 4, 8} {
		got := hostMarketDigest(marketHostRun(t, workers, "market", roundRobin))
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d diverged:\n got %v\nwant %v", workers, got, ref)
		}
	}
}

// Same per-tenant op streams, different within-round interleavings: market
// decisions must be identical — snapshots (curves AND fault histograms) are
// captured as each tenant crosses its own op boundary.
func TestHostMarketInterleavingInvariance(t *testing.T) {
	ref := hostMarketDigest(marketHostRun(t, 2, "market", roundRobin))
	for name, sched := range map[string]hostSchedule{
		"blocked":          blocked,
		"blocked_reversed": blockedReversed,
	} {
		got := hostMarketDigest(marketHostRun(t, 2, "market", sched))
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("schedule %s diverged:\n got %v\nwant %v", name, got, ref)
		}
	}
}

// The tenant-centric surface: lookup by ID, policy echo, and the index
// methods as wrappers over the same machines.
func TestHostTenantAPI(t *testing.T) {
	h, err := NewHost(HostConfig{
		Tenants: []TenantSpec{
			{ID: "a", VM: MachineConfig{Backend: BackendDRAM, GuestMemory: 4 << 20}},
			{ID: "b", VM: MachineConfig{Backend: BackendDRAM, GuestMemory: 4 << 20},
				Policy: TenantPolicy{FloorPages: 4, CeilPages: 16, SLO: time.Millisecond}},
		},
		TotalLocalPages: 16, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, ok := h.Tenant("b")
	if !ok || b.ID() != "b" {
		t.Fatalf("Tenant(b) = %v, %v", b, ok)
	}
	if _, ok := h.Tenant("nope"); ok {
		t.Fatal("unknown tenant resolved")
	}
	if got := b.Policy(); got != (TenantPolicy{FloorPages: 4, CeilPages: 16, SLO: time.Millisecond}) {
		t.Fatalf("policy = %+v", got)
	}
	if b.Machine() != h.Machine(1) {
		t.Fatal("index wrapper and tenant handle disagree on the machine")
	}
	if all := h.Tenants(); len(all) != 2 || all[0].ID() != "a" || all[1].ID() != "b" {
		t.Fatalf("Tenants() = %v", all)
	}
	seg, err := b.Machine().Alloc("d", 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Touch(seg.Addr(0), true); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats(); got.ResidentPages == 0 {
		t.Fatalf("tenant stats empty: %+v", got)
	}
	st := h.Stats()
	if len(st.Tenants) != 2 || st.Tenants[1].ID != "b" || st.Tenants[1].Policy.CeilPages != 16 {
		t.Fatalf("HostStats.Tenants = %+v", st.Tenants)
	}
}

func TestNewHostTenantValidation(t *testing.T) {
	vm := MachineConfig{Backend: BackendDRAM, GuestMemory: 4 << 20}
	cases := []struct {
		name string
		cfg  HostConfig
	}{
		{"both surfaces", HostConfig{
			Tenants: []TenantSpec{{ID: "a", VM: vm}}, VMs: hostVMs(1), TotalLocalPages: 16}},
		{"empty ID", HostConfig{
			Tenants: []TenantSpec{{VM: vm}}, TotalLocalPages: 16}},
		{"duplicate ID", HostConfig{
			Tenants: []TenantSpec{{ID: "a", VM: vm}, {ID: "a", VM: vm}}, TotalLocalPages: 16}},
		{"floor above ceiling", HostConfig{
			Tenants: []TenantSpec{{ID: "a", VM: vm, Policy: TenantPolicy{FloorPages: 8, CeilPages: 4}}},
			TotalLocalPages: 16}},
		{"negative SLO", HostConfig{
			Tenants: []TenantSpec{{ID: "a", VM: vm, Policy: TenantPolicy{SLO: -1}}},
			TotalLocalPages: 16}},
		{"two planners", HostConfig{
			Tenants: []TenantSpec{{ID: "a", VM: vm}}, TotalLocalPages: 16,
			Arbiter: &ArbiterConfig{}, Market: &MarketConfig{}}},
		{"bad market policy", HostConfig{
			Tenants: []TenantSpec{{ID: "a", VM: vm}}, TotalLocalPages: 16,
			Market: &MarketConfig{Policy: MarketPolicy{FloorPages: -1, Step: 1}}}},
	}
	for _, c := range cases {
		if _, err := NewHost(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
