package fluidmem

import (
	"time"

	"fluidmem/internal/market"
)

// This file is the tenant-centric face of the Host API. A Host is no longer
// a bag of positional VMs with one global ArbiterConfig: each guest is a
// named Tenant carrying its own TenantPolicy (floor, ceiling, p99
// fault-latency SLO), and host operations route by tenant ID. The
// index-based Host methods (Touch, NoteOp, Machine) remain as thin wrappers
// over the tenant handles — the index is simply the tenant's position in
// the HostConfig — so existing drivers keep working unchanged.

// MarketPolicy re-exports the memory-marketplace knobs (default floor and
// ceiling, slab size, leases per epoch, bid-ask hysteresis).
type MarketPolicy = market.Config

// MarketCounters are the marketplace's cumulative counters (epochs, leases,
// claw-backs, SLO violations).
type MarketCounters = market.Stats

// MarketLease is one live grant on the marketplace's lease book.
type MarketLease = market.Lease

// TenantPolicy is one tenant's resource contract with the host.
type TenantPolicy struct {
	// FloorPages is the share the planner may never shrink this tenant
	// below; 0 uses the planner's default floor.
	FloorPages int
	// CeilPages caps this tenant's share; 0 means no per-tenant ceiling.
	CeilPages int
	// SLO is the tenant's p99 fault-latency target in virtual time; 0 means
	// no SLO. Enforcement needs epoch windows (a Market, an Arbiter, or
	// HostConfig.EpochOps): each window's p99 is computed from the tenant's
	// merged per-worker FAULT histograms and compared against this target.
	// Under the market planner, a violating tenant stops supplying pages,
	// bids with priority, and has every lease it donated clawed back.
	SLO time.Duration
}

// TenantSpec declares one tenant at host construction.
type TenantSpec struct {
	// ID names the tenant; must be unique and non-empty. IDs are the
	// planner's sort and tie-break key, so they are part of the
	// deterministic contract: same IDs, same curves, same plans.
	ID string
	// VM configures the tenant's machine. As with HostConfig.VMs, the host
	// overrides LocalMemory (equal split of the budget), SharedStore,
	// Registry, HypervisorID, and — unless set — Hotset and Seed. A tenant
	// with an SLO and no Tracer gets a histogram-only tracer attached
	// automatically (pure observation; simulated results are unchanged).
	VM MachineConfig
	// Policy is the tenant's resource contract.
	Policy TenantPolicy
}

// Tenant is the runtime handle for one named tenant: the ID-routed surface
// for guest operations and telemetry.
type Tenant struct {
	host *Host
	idx  int
	id   string
}

// ID returns the tenant's stable identifier.
func (t *Tenant) ID() string { return t.id }

// Policy returns the tenant's resource contract.
func (t *Tenant) Policy() TenantPolicy { return t.host.policies[t.idx] }

// Machine exposes the tenant's machine for direct drive (allocation, probes,
// teardown). Operations that should count toward epoch windows must go
// through Touch / NoteOp.
func (t *Tenant) Machine() *Machine { return t.host.machines[t.idx] }

// Touch performs one guest access and counts it toward the tenant's epoch
// window.
func (t *Tenant) Touch(addr uint64, write bool) ([]byte, error) {
	return t.host.touch(t.idx, addr, write)
}

// NoteOp counts one guest operation (use after driving the Machine
// directly); the host plans an epoch once every tenant has crossed the
// window boundary.
func (t *Tenant) NoteOp() error { return t.host.noteOp(t.idx) }

// Stats snapshots the tenant's machine telemetry.
func (t *Tenant) Stats() Stats { return t.host.machines[t.idx].Stats() }

// SetActive marks the tenant as participating in (true) or excluded from
// (false) the host's epoch-window barrier — the lifecycle hook for VMs that
// boot late or die mid-run (see Host.SetTenantActive).
func (t *Tenant) SetActive(active bool) { t.host.active[t.idx] = active }

// Active reports whether the tenant currently participates in epoch windows.
func (t *Tenant) Active() bool { return t.host.active[t.idx] }

// SLOStatus is one tenant's cumulative SLO accounting.
type SLOStatus struct {
	// Target echoes the tenant's p99 target (0 = no SLO).
	Target time.Duration
	// Windows counts evaluated epoch windows; Violations the windows whose
	// p99 exceeded the target.
	Windows    uint64
	Violations uint64
	// LastP99 / LastFaults describe the most recently closed window.
	LastP99    time.Duration
	LastFaults uint64
}

// TenantStats is one tenant's row in HostStats.
type TenantStats struct {
	ID     string
	Policy TenantPolicy
	// Active reports lifecycle state: false for a tenant that has died (or
	// not yet booted) and no longer gates epoch windows.
	Active     bool
	SharePages int
	WSSPages   int
	SLO        SLOStatus
}
