package fluidmem

import (
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/arbiter"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/market"
	"fluidmem/internal/stats"
	"fluidmem/internal/trace"
)

// ArbiterPolicy re-exports the greedy reallocation policy knobs
// (floor/ceiling, slab size, moves per epoch, hysteresis).
type ArbiterPolicy = arbiter.Policy

// ArbiterConfig enables adaptive local-memory balancing on a Host with the
// PR-5 greedy reallocator — the single-policy baseline the marketplace is
// benchmarked against.
type ArbiterConfig struct {
	// Policy tunes the greedy reallocator; the zero value selects
	// arbiter.DefaultPolicy for the host's budget and VM count.
	Policy ArbiterPolicy
	// EpochOps is the per-VM guest-operation count that closes an epoch
	// window: each VM's miss-ratio curve is snapshotted as it crosses the
	// boundary, and the arbiter runs once every VM has crossed. Counting
	// operations instead of virtual time keeps epoch decisions identical
	// across worker counts and VM interleavings — operation sequences are
	// invariant, timings are not. Default 512.
	EpochOps int
}

// MarketConfig enables the Memtrade-style memory marketplace on a Host:
// tenants bid for slabs priced from their ghost-LRU miss-ratio curves,
// grants are tracked as leases, and tenants violating their p99
// fault-latency SLO get their donated leases clawed back (internal/market).
type MarketConfig struct {
	// Policy tunes the marketplace; the zero value selects
	// market.DefaultConfig for the host's budget and tenant count.
	Policy MarketPolicy
	// EpochOps is the per-tenant operation count closing an epoch window,
	// exactly as in ArbiterConfig. Default 512.
	EpochOps int
}

// HostConfig assembles a multi-tenant host: N guests on one hypervisor
// sharing one key-value store and one local DRAM page budget.
type HostConfig struct {
	// Tenants declares the guests by name with per-tenant policies — the
	// primary configuration surface. Mutually exclusive with VMs.
	Tenants []TenantSpec
	// VMs configures anonymous guests (tenant IDs "vm0", "vm1", ... with
	// zero TenantPolicy) — the legacy positional surface, kept so existing
	// drivers migrate without churn. LocalMemory is overridden by the
	// host's equal split of TotalLocalPages; SharedStore, Registry,
	// HypervisorID, and (unless set) Hotset and Seed are filled in per VM.
	VMs []MachineConfig
	// TotalLocalPages is the host DRAM page budget shared across all VMs.
	// Must admit at least one page per VM.
	TotalLocalPages int
	// Arbiter, when non-nil, rebalances the budget every epoch with the
	// greedy reallocator. Mutually exclusive with Market; nil keeps the
	// static equal split (the baseline the planners must beat).
	Arbiter *ArbiterConfig
	// Market, when non-nil, runs the marketplace planner every epoch.
	Market *MarketConfig
	// EpochOps makes a planner-less host still run epoch windows (curve
	// capture + SLO evaluation, no rebalancing) — the static-split variant
	// of the bench needs SLO accounting to report a miss rate. Ignored when
	// Arbiter or Market is set (their EpochOps governs).
	EpochOps int
	// Tracer optionally instruments the SHARED store and receives the
	// host's ARBITER epoch events. Per-VM pipelines are traced via each
	// MachineConfig's own Tracer. Pure observation, as everywhere.
	Tracer *Tracer
	// Seed derives per-VM seeds for VMs that leave Seed zero.
	Seed uint64
}

// Host runs N Machines against one shared store under one global DRAM page
// budget — the multi-tenant deployment of §IV. Tenants are named and carry
// TenantPolicy contracts; the pluggable planner (greedy arbiter or
// Memtrade-style marketplace) resizes their shares each epoch using
// FluidMem's resize primitive.
type Host struct {
	machines []*Machine
	ids      []string
	tenants  []*Tenant
	policies []TenantPolicy
	byID     map[string]int
	cfg      HostConfig

	// active marks tenants currently participating in epoch windows. An
	// inactive tenant (a VM that has died, or one not yet booted in an
	// open-loop scenario) issues no guest operations, so waiting for it to
	// cross the window boundary would stall every other tenant's planner
	// epoch forever. Instead the barrier skips inactive tenants and captures
	// their snapshots lazily at window close: an inactive tenant's hotset
	// counters and FAULT histogram are frozen (no ops mutate them), so the
	// lazy capture is a pure function of its own operation history and the
	// interleaving-invariance argument in noteOp still holds.
	active []bool

	// planner decides each epoch's share plan; nil means no rebalancing.
	// mkt aliases the planner when it is the marketplace (lease book and
	// market counters surface in HostStats).
	planner  arbiter.Planner
	mkt      *market.Market
	epochOps int
	// windows is true when epoch windows run at all (planner present, or
	// HostConfig.EpochOps set for SLO-only accounting).
	windows bool

	// opCount counts guest operations per VM inside the current window;
	// captured[i] holds the VM's cumulative hotset snapshot taken as it
	// crossed the window boundary (capture-on-cross: the snapshot depends
	// only on the VM's own operation sequence, never on how the driver
	// interleaved the VMs, so planner inputs — and therefore decisions —
	// are interleaving-invariant). capturedHist[i] is the cumulative merged
	// FAULT histogram captured at the same crossing, for SLO windows.
	opCount      []int
	captured     []*HotsetCounters
	capturedHist []stats.Histogram
	// windowBase / windowBaseHist are each VM's snapshots at the previous
	// epoch boundary; window curves and window histograms are cumulative
	// differences against them.
	windowBase     []HotsetCounters
	windowBaseHist []stats.Histogram
	// lastGranted/lastWindowHits feed the realized-savings feedback: a VM
	// granted pages last epoch should show fewer ghost hits this window.
	lastGranted    map[int]bool
	lastWindowHits []uint64

	// Per-tenant SLO accounting, updated as each window closes.
	slo []SLOStatus

	stats arbiter.Stats
}

// NewHost builds the machines and wires the shared plumbing. Every VM runs
// ModeFluidMem (the swap baseline cannot resize, so it cannot participate in
// a shared budget).
func NewHost(cfg HostConfig) (*Host, error) {
	specs := cfg.Tenants
	if len(specs) > 0 && len(cfg.VMs) > 0 {
		return nil, errors.New("fluidmem: HostConfig.Tenants and HostConfig.VMs are mutually exclusive")
	}
	for i := range cfg.VMs {
		specs = append(specs, TenantSpec{ID: fmt.Sprintf("vm%d", i), VM: cfg.VMs[i]})
	}
	n := len(specs)
	if n == 0 {
		return nil, errors.New("fluidmem: host needs at least one tenant")
	}
	if cfg.TotalLocalPages < n {
		return nil, fmt.Errorf("fluidmem: budget %d pages cannot give %d tenants a page each", cfg.TotalLocalPages, n)
	}
	if cfg.Arbiter != nil && cfg.Market != nil {
		return nil, errors.New("fluidmem: Arbiter and Market are mutually exclusive planners")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	h := &Host{
		cfg:            cfg,
		byID:           make(map[string]int, n),
		epochOps:       512,
		opCount:        make([]int, n),
		captured:       make([]*HotsetCounters, n),
		capturedHist:   make([]stats.Histogram, n),
		windowBase:     make([]HotsetCounters, n),
		windowBaseHist: make([]stats.Histogram, n),
		lastGranted:    make(map[int]bool),
		lastWindowHits: make([]uint64, n),
		slo:            make([]SLOStatus, n),
		active:         make([]bool, n),
	}
	for i := range h.active {
		h.active[i] = true
	}
	switch {
	case cfg.Arbiter != nil:
		policy := cfg.Arbiter.Policy
		if policy == (arbiter.Policy{}) {
			policy = arbiter.DefaultPolicy(cfg.TotalLocalPages, n)
		}
		if err := policy.Validate(); err != nil {
			return nil, fmt.Errorf("fluidmem: %w", err)
		}
		h.planner = policy
		if cfg.Arbiter.EpochOps > 0 {
			h.epochOps = cfg.Arbiter.EpochOps
		}
	case cfg.Market != nil:
		mc := cfg.Market.Policy
		if mc == (market.Config{}) {
			mc = market.DefaultConfig(cfg.TotalLocalPages, n)
		}
		mkt, err := market.New(mc)
		if err != nil {
			return nil, fmt.Errorf("fluidmem: %w", err)
		}
		h.planner = mkt
		h.mkt = mkt
		if cfg.Market.EpochOps > 0 {
			h.epochOps = cfg.Market.EpochOps
		}
	case cfg.EpochOps > 0:
		h.epochOps = cfg.EpochOps
	}
	h.windows = h.planner != nil || cfg.EpochOps > 0

	// One shared backend + one shared partition registry: the registry's
	// collision handling guarantees each VM a distinct store partition even
	// if two seeds produce the same guest pid.
	template := specs[0].VM
	applyMachineDefaults(&template)
	shared := template.SharedStore
	if shared == nil {
		backend, _, err := newStore(MachineConfig{Backend: template.Backend, StoreCapacity: template.StoreCapacity, Seed: cfg.Seed + 7})
		if err != nil {
			return nil, err
		}
		shared = backend
	}
	shared = kvstore.Instrumented(shared, cfg.Tracer)
	registry := template.Registry
	if registry == nil {
		registry = kvstore.NewLocalRegistry()
	}

	share := cfg.TotalLocalPages / n
	for i, spec := range specs {
		if spec.ID == "" {
			return nil, fmt.Errorf("fluidmem: tenant %d has an empty ID", i)
		}
		if _, dup := h.byID[spec.ID]; dup {
			return nil, fmt.Errorf("fluidmem: duplicate tenant ID %q", spec.ID)
		}
		pol := spec.Policy
		if pol.FloorPages < 0 || pol.CeilPages < 0 || pol.SLO < 0 {
			return nil, fmt.Errorf("fluidmem: tenant %q: negative policy field", spec.ID)
		}
		if pol.CeilPages != 0 && pol.FloorPages > pol.CeilPages {
			return nil, fmt.Errorf("fluidmem: tenant %q: floor %d above ceiling %d", spec.ID, pol.FloorPages, pol.CeilPages)
		}
		mc := spec.VM
		if mc.Mode != 0 && mc.Mode != ModeFluidMem {
			return nil, fmt.Errorf("fluidmem: tenant %q: only ModeFluidMem machines can share a resizable budget", spec.ID)
		}
		mc.Mode = ModeFluidMem
		mc.SharedStore = shared
		mc.Registry = registry
		mc.HypervisorID = fmt.Sprintf("host-vm-%d", i)
		mc.LocalMemory = uint64(share) * PageSize
		if mc.Seed == 0 {
			mc.Seed = cfg.Seed + uint64(i)*0x9e37_79b9 + 1
		}
		if mc.Hotset == nil {
			// The ghost list must see past the equal split for the planners
			// to price grants: shadow up to the FULL host budget.
			p := DefaultHotsetParams(share)
			p.GhostCapacity = cfg.TotalLocalPages
			mc.Hotset = &p
		}
		if pol.SLO > 0 && mc.Tracer == nil && h.windows {
			// SLO windows need the FAULT histogram. A histogram-only tracer
			// is pure observation: simulated results are bit-identical with
			// or without it.
			mc.Tracer = NewTracer(false)
		}
		m, err := NewMachine(mc)
		if err != nil {
			return nil, fmt.Errorf("fluidmem: tenant %q: %w", spec.ID, err)
		}
		h.machines = append(h.machines, m)
		h.ids = append(h.ids, spec.ID)
		h.policies = append(h.policies, pol)
		h.byID[spec.ID] = i
		h.tenants = append(h.tenants, &Tenant{host: h, idx: i, id: spec.ID})
		h.slo[i].Target = pol.SLO
	}
	return h, nil
}

// VMs reports the tenant count.
func (h *Host) VMs() int { return len(h.machines) }

// Tenant returns the handle for the named tenant.
func (h *Host) Tenant(id string) (*Tenant, bool) {
	i, ok := h.byID[id]
	if !ok {
		return nil, false
	}
	return h.tenants[i], true
}

// Tenants returns every tenant handle in configuration order.
func (h *Host) Tenants() []*Tenant {
	return append([]*Tenant(nil), h.tenants...)
}

// Machine exposes tenant i for direct drive (allocation, stats, teardown).
// Thin index wrapper over Tenant.Machine: i is the tenant's position in the
// HostConfig. Guest operations that should count toward epoch windows must
// go through Host.Touch / Host.NoteOp.
func (h *Host) Machine(i int) *Machine { return h.machines[i] }

// Now reports the host's virtual clock: the frontier (max) of the tenant
// clocks. Tenants run concurrently on one host, so the host has existed for
// as long as its longest-running tenant.
func (h *Host) Now() time.Duration {
	var now time.Duration
	for _, m := range h.machines {
		if m.Now() > now {
			now = m.Now()
		}
	}
	return now
}

// Touch performs one guest access on tenant i and counts it toward the
// epoch window. Thin index wrapper over Tenant.Touch.
func (h *Host) Touch(i int, addr uint64, write bool) ([]byte, error) {
	return h.touch(i, addr, write)
}

// NoteOp counts one guest operation for tenant i. Thin index wrapper over
// Tenant.NoteOp.
func (h *Host) NoteOp(i int) error { return h.noteOp(i) }

func (h *Host) touch(i int, addr uint64, write bool) ([]byte, error) {
	data, err := h.machines[i].Touch(addr, write)
	if err != nil {
		return data, err
	}
	return data, h.noteOp(i)
}

// noteOp counts one guest operation for tenant i and plans an epoch when
// every tenant has crossed the current window boundary. Decisions are
// interleaving-invariant: each VM's snapshots (hotset counters and FAULT
// histogram) are captured at its own EpochOps-th operation of the window —
// a function of the VM's private operation sequence only — and the planner
// sees exactly those N snapshots no matter the order in which tenants
// reached the boundary.
func (h *Host) noteOp(i int) error {
	if !h.windows {
		return nil
	}
	h.opCount[i]++
	if h.opCount[i] == h.epochOps && h.captured[i] == nil {
		h.capture(i)
	}
	for j, c := range h.captured {
		if c == nil && h.active[j] {
			return nil
		}
	}
	// Every active tenant has crossed; inactive tenants are frozen, so
	// capturing them now observes exactly the state they died (or have not
	// yet booted) with, independent of when in the window this op landed.
	for j, c := range h.captured {
		if c == nil {
			h.capture(j)
		}
	}
	return h.rebalance()
}

// capture snapshots tenant i's cumulative hotset counters and FAULT
// histogram as its window-boundary state.
func (h *Host) capture(i int) {
	snap := h.machines[i].monitor.HotsetSnapshot()
	h.captured[i] = &snap
	h.capturedHist[i] = h.machines[i].monitor.Tracer().PhaseHistogram(trace.EvFault)
}

// SetTenantActive marks the named tenant as participating in (active) or
// excluded from (inactive) the epoch-window barrier — the host-level
// lifecycle hook open-loop scenarios use for VMs that boot late or die
// mid-run. An inactive tenant keeps its machine, its share, and its
// cumulative telemetry; it simply stops gating other tenants' planner
// epochs, and the planner sees its frozen window (zero new activity) until
// it is reactivated. Deactivating a tenant that already crossed the current
// window boundary keeps its captured snapshot.
func (h *Host) SetTenantActive(id string, active bool) error {
	i, ok := h.byID[id]
	if !ok {
		return fmt.Errorf("fluidmem: no tenant %q", id)
	}
	h.active[i] = active
	return nil
}

// TenantActive reports whether the named tenant currently participates in
// epoch windows.
func (h *Host) TenantActive(id string) bool {
	i, ok := h.byID[id]
	return ok && h.active[i]
}

// rebalance runs one epoch: price each tenant's window curve, evaluate its
// SLO window, ask the planner for a plan, apply donations before grants
// (the budget is never transiently exceeded), and fold predicted/realized
// savings into the host stats.
func (h *Host) rebalance() error {
	n := len(h.machines)
	views := make([]arbiter.VMView, n)
	windowHits := make([]uint64, n)
	for i, m := range h.machines {
		snap := *h.captured[i]
		windowCurve := snap.Curve.Sub(h.windowBase[i].Curve)
		windowHits[i] = snap.GhostHits - h.windowBase[i].GhostHits
		pol := h.policies[i]
		verdict := market.EvaluateSLO(pol.SLO, h.capturedHist[i], h.windowBaseHist[i])
		if verdict.Evaluated {
			h.slo[i].Windows++
			if verdict.Violated {
				h.slo[i].Violations++
			}
		}
		h.slo[i].LastP99 = verdict.P99
		h.slo[i].LastFaults = verdict.Faults
		views[i] = arbiter.VMView{
			ID:           h.ids[i],
			SharePages:   m.monitor.FootprintLimit(),
			Curve:        windowCurve,
			WindowFaults: snap.Faults - h.windowBase[i].Faults,
			FloorPages:   pol.FloorPages,
			CeilPages:    pol.CeilPages,
			SLOTarget:    pol.SLO,
			WindowP99:    verdict.P99,
		}
	}

	// Realized-savings feedback: tenants granted pages last epoch should
	// re-reference less this window. The drop in window ghost hits is the
	// observable fraction of what the grant actually bought.
	for i := range h.machines {
		if h.lastGranted[i] && h.lastWindowHits[i] > windowHits[i] {
			h.stats.RealizedSavings += h.lastWindowHits[i] - windowHits[i]
		}
	}
	copy(h.lastWindowHits, windowHits)

	if h.planner != nil {
		plan, err := h.planner.Plan(views)
		if err != nil {
			return fmt.Errorf("fluidmem: planner: %w", err)
		}
		h.stats.Observe(plan)

		// Shrink donors first: every grant is then funded by pages already
		// returned, so the sum of shares never exceeds the budget mid-apply.
		for pass := 0; pass < 2; pass++ {
			for i, m := range h.machines {
				target, cur := plan.Shares[h.ids[i]], m.monitor.FootprintLimit()
				shrink := target < cur
				if target == cur || (pass == 0) != shrink {
					continue
				}
				if err := m.ResizeFootprint(target); err != nil {
					return fmt.Errorf("fluidmem: planner resize %s: %w", h.ids[i], err)
				}
			}
		}

		h.lastGranted = make(map[int]bool)
		for _, mv := range plan.Moves {
			for i, id := range h.ids {
				if id == mv.To {
					h.lastGranted[i] = true
				}
			}
		}

		if len(plan.Moves) > 0 {
			pages := 0
			for _, mv := range plan.Moves {
				pages += mv.Pages
			}
			h.cfg.Tracer.Emit(trace.EvArbiter, 0, uint64(h.stats.Epochs), h.Now(), 0,
				fmt.Sprintf("moves=%d pages=%d", len(plan.Moves), pages))
		}
	}

	// Open the next window from the captured boundary snapshots.
	for i := range h.machines {
		h.windowBase[i] = *h.captured[i]
		h.windowBaseHist[i] = h.capturedHist[i]
		h.captured[i] = nil
		h.capturedHist[i] = stats.Histogram{}
		h.opCount[i] = 0
	}
	return nil
}

// HostStats is the host-level telemetry snapshot.
type HostStats struct {
	// Now is the host clock (frontier of tenant clocks).
	Now time.Duration
	// TotalLocalPages is the shared budget; Shares the current per-VM
	// split (always summing to at most the budget).
	TotalLocalPages int
	Shares          []int
	// WSSPages is each tenant's current working-set estimate.
	WSSPages []int
	// Tenants is the per-tenant view: ID, policy, share, and SLO
	// accounting, in configuration order.
	Tenants []TenantStats
	// Arbiter accumulates epoch activity for whichever planner runs
	// (zero-valued without one).
	Arbiter ArbiterCounters
	// Market holds the marketplace counters and Leases its live lease book,
	// nil/empty unless the market planner is configured.
	Market *MarketCounters
	Leases []MarketLease
	// VMs holds each tenant's full machine snapshot.
	VMs []Stats
}

// Stats snapshots the host and every tenant.
func (h *Host) Stats() HostStats {
	st := HostStats{
		Now:             h.Now(),
		TotalLocalPages: h.cfg.TotalLocalPages,
		Arbiter:         h.stats,
	}
	if h.mkt != nil {
		ms := h.mkt.Stats()
		st.Market = &ms
		st.Leases = h.mkt.Leases()
	}
	for i, m := range h.machines {
		ms := m.Stats()
		st.VMs = append(st.VMs, ms)
		st.Shares = append(st.Shares, ms.FootprintLimit)
		st.WSSPages = append(st.WSSPages, ms.WSSPages)
		st.Tenants = append(st.Tenants, TenantStats{
			ID:         h.ids[i],
			Policy:     h.policies[i],
			Active:     h.active[i],
			SharePages: ms.FootprintLimit,
			WSSPages:   ms.WSSPages,
			SLO:        h.slo[i],
		})
	}
	return st
}

// Drain quiesces every tenant's writeback engine.
func (h *Host) Drain() error {
	for i, m := range h.machines {
		if err := m.Drain(); err != nil {
			return fmt.Errorf("fluidmem: drain %s: %w", h.ids[i], err)
		}
	}
	return nil
}
