package fluidmem

import (
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/arbiter"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/trace"
)

// ArbiterPolicy re-exports the greedy reallocation policy knobs
// (floor/ceiling, slab size, moves per epoch, hysteresis).
type ArbiterPolicy = arbiter.Policy

// ArbiterConfig enables adaptive local-memory balancing on a Host.
type ArbiterConfig struct {
	// Policy tunes the greedy reallocator; the zero value selects
	// arbiter.DefaultPolicy for the host's budget and VM count.
	Policy ArbiterPolicy
	// EpochOps is the per-VM guest-operation count that closes an epoch
	// window: each VM's miss-ratio curve is snapshotted as it crosses the
	// boundary, and the arbiter runs once every VM has crossed. Counting
	// operations instead of virtual time keeps epoch decisions identical
	// across worker counts and VM interleavings — operation sequences are
	// invariant, timings are not. Default 512.
	EpochOps int
}

// HostConfig assembles a multi-tenant host: N guests on one hypervisor
// sharing one key-value store and one local DRAM page budget.
type HostConfig struct {
	// VMs configures each guest. LocalMemory is overridden by the host's
	// equal split of TotalLocalPages; SharedStore, Registry, HypervisorID,
	// and (unless set) Hotset and Seed are filled in per VM.
	VMs []MachineConfig
	// TotalLocalPages is the host DRAM page budget shared across all VMs.
	// Must admit at least one page per VM.
	TotalLocalPages int
	// Arbiter, when non-nil, rebalances the budget every epoch; nil keeps
	// the static equal split (the baseline the arbiter must beat).
	Arbiter *ArbiterConfig
	// Tracer optionally instruments the SHARED store and receives the
	// host's ARBITER epoch events. Per-VM pipelines are traced via each
	// MachineConfig's own Tracer. Pure observation, as everywhere.
	Tracer *Tracer
	// Seed derives per-VM seeds for VMs that leave Seed zero.
	Seed uint64
}

// Host runs N Machines against one shared store under one global DRAM page
// budget — the multi-tenant deployment of §IV, with the arbiter supplying
// the working-set-driven resizing loop that Memtrade-style memory markets
// build on FluidMem's resize primitive.
type Host struct {
	machines []*Machine
	ids      []string
	cfg      HostConfig
	policy   arbiter.Policy
	epochOps int

	// opCount counts guest operations per VM inside the current window;
	// captured[i] holds the VM's cumulative hotset snapshot taken as it
	// crossed the window boundary (capture-on-cross: the snapshot depends
	// only on the VM's own operation sequence, never on how the driver
	// interleaved the VMs, so arbiter inputs — and therefore decisions —
	// are interleaving-invariant).
	opCount  []int
	captured []*HotsetCounters
	// windowBase is each VM's snapshot at the previous epoch boundary;
	// window curves are cumulative differences against it.
	windowBase []HotsetCounters
	// lastGranted/lastWindowHits feed the realized-savings feedback: a VM
	// granted pages last epoch should show fewer ghost hits this window.
	lastGranted    map[int]bool
	lastWindowHits []uint64

	stats arbiter.Stats
}

// NewHost builds the machines and wires the shared plumbing. Every VM runs
// ModeFluidMem (the swap baseline cannot resize, so it cannot participate in
// a shared budget).
func NewHost(cfg HostConfig) (*Host, error) {
	n := len(cfg.VMs)
	if n == 0 {
		return nil, errors.New("fluidmem: host needs at least one VM")
	}
	if cfg.TotalLocalPages < n {
		return nil, fmt.Errorf("fluidmem: budget %d pages cannot give %d VMs a page each", cfg.TotalLocalPages, n)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	h := &Host{
		cfg:            cfg,
		epochOps:       512,
		opCount:        make([]int, n),
		captured:       make([]*HotsetCounters, n),
		windowBase:     make([]HotsetCounters, n),
		lastGranted:    make(map[int]bool),
		lastWindowHits: make([]uint64, n),
	}
	if cfg.Arbiter != nil {
		h.policy = cfg.Arbiter.Policy
		if h.policy == (arbiter.Policy{}) {
			h.policy = arbiter.DefaultPolicy(cfg.TotalLocalPages, n)
		}
		if err := h.policy.Validate(); err != nil {
			return nil, fmt.Errorf("fluidmem: %w", err)
		}
		if cfg.Arbiter.EpochOps > 0 {
			h.epochOps = cfg.Arbiter.EpochOps
		}
	}

	// One shared backend + one shared partition registry: the registry's
	// collision handling guarantees each VM a distinct store partition even
	// if two seeds produce the same guest pid.
	template := cfg.VMs[0]
	applyMachineDefaults(&template)
	shared := template.SharedStore
	if shared == nil {
		backend, _, err := newStore(MachineConfig{Backend: template.Backend, StoreCapacity: template.StoreCapacity, Seed: cfg.Seed + 7})
		if err != nil {
			return nil, err
		}
		shared = backend
	}
	shared = kvstore.Instrumented(shared, cfg.Tracer)
	registry := template.Registry
	if registry == nil {
		registry = kvstore.NewLocalRegistry()
	}

	share := cfg.TotalLocalPages / n
	for i := range cfg.VMs {
		mc := cfg.VMs[i]
		if mc.Mode != 0 && mc.Mode != ModeFluidMem {
			return nil, fmt.Errorf("fluidmem: host VM %d: only ModeFluidMem machines can share a resizable budget", i)
		}
		mc.Mode = ModeFluidMem
		mc.SharedStore = shared
		mc.Registry = registry
		mc.HypervisorID = fmt.Sprintf("host-vm-%d", i)
		mc.LocalMemory = uint64(share) * PageSize
		if mc.Seed == 0 {
			mc.Seed = cfg.Seed + uint64(i)*0x9e37_79b9 + 1
		}
		if mc.Hotset == nil {
			// The ghost list must see past the equal split for the arbiter
			// to price grants: shadow up to the FULL host budget.
			p := DefaultHotsetParams(share)
			p.GhostCapacity = cfg.TotalLocalPages
			mc.Hotset = &p
		}
		m, err := NewMachine(mc)
		if err != nil {
			return nil, fmt.Errorf("fluidmem: host VM %d: %w", i, err)
		}
		h.machines = append(h.machines, m)
		h.ids = append(h.ids, fmt.Sprintf("vm%d", i))
	}
	return h, nil
}

// VMs reports the tenant count.
func (h *Host) VMs() int { return len(h.machines) }

// Machine exposes tenant i for direct drive (allocation, stats, teardown).
// Guest operations that should count toward the arbiter's epoch windows must
// go through Host.Touch / Host.NoteOp.
func (h *Host) Machine(i int) *Machine { return h.machines[i] }

// Now reports the host's virtual clock: the frontier (max) of the tenant
// clocks. Tenants run concurrently on one host, so the host has existed for
// as long as its longest-running tenant.
func (h *Host) Now() time.Duration {
	var now time.Duration
	for _, m := range h.machines {
		if m.Now() > now {
			now = m.Now()
		}
	}
	return now
}

// Touch performs one guest access on tenant i and counts it toward the
// epoch window.
func (h *Host) Touch(i int, addr uint64, write bool) ([]byte, error) {
	data, err := h.machines[i].Touch(addr, write)
	if err != nil {
		return data, err
	}
	return data, h.NoteOp(i)
}

// NoteOp counts one guest operation for tenant i (use after driving the
// Machine directly) and runs the arbiter when every tenant has crossed the
// current epoch boundary. Decisions are interleaving-invariant: each VM's
// snapshot is captured at its own EpochOps-th operation of the window —
// a function of the VM's private operation sequence only — and the arbiter
// sees exactly those N snapshots no matter the order in which tenants
// reached the boundary.
func (h *Host) NoteOp(i int) error {
	if h.cfg.Arbiter == nil {
		return nil
	}
	h.opCount[i]++
	if h.opCount[i] == h.epochOps && h.captured[i] == nil {
		snap := h.machines[i].monitor.HotsetSnapshot()
		h.captured[i] = &snap
	}
	for _, c := range h.captured {
		if c == nil {
			return nil
		}
	}
	return h.rebalance()
}

// rebalance runs one arbiter epoch: price each tenant's window curve, decide
// the plan, apply donations before grants (the budget is never transiently
// exceeded), and fold predicted/realized savings into the host stats.
func (h *Host) rebalance() error {
	n := len(h.machines)
	views := make([]arbiter.VMView, n)
	windowHits := make([]uint64, n)
	for i, m := range h.machines {
		snap := *h.captured[i]
		windowCurve := snap.Curve.Sub(h.windowBase[i].Curve)
		windowHits[i] = snap.GhostHits - h.windowBase[i].GhostHits
		views[i] = arbiter.VMView{
			ID:           h.ids[i],
			SharePages:   m.monitor.FootprintLimit(),
			Curve:        windowCurve,
			WindowFaults: snap.Faults - h.windowBase[i].Faults,
		}
	}

	// Realized-savings feedback: tenants granted pages last epoch should
	// re-reference less this window. The drop in window ghost hits is the
	// observable fraction of what the grant actually bought.
	for i := range h.machines {
		if h.lastGranted[i] && h.lastWindowHits[i] > windowHits[i] {
			h.stats.RealizedSavings += h.lastWindowHits[i] - windowHits[i]
		}
	}

	plan, err := h.policy.Decide(views)
	if err != nil {
		return fmt.Errorf("fluidmem: arbiter: %w", err)
	}
	h.stats.Observe(plan)

	// Shrink donors first: every grant is then funded by pages already
	// returned, so the sum of shares never exceeds the budget mid-apply.
	for pass := 0; pass < 2; pass++ {
		for i, m := range h.machines {
			target, cur := plan.Shares[h.ids[i]], m.monitor.FootprintLimit()
			shrink := target < cur
			if target == cur || (pass == 0) != shrink {
				continue
			}
			if err := m.ResizeFootprint(target); err != nil {
				return fmt.Errorf("fluidmem: arbiter resize %s: %w", h.ids[i], err)
			}
		}
	}

	h.lastGranted = make(map[int]bool)
	for _, mv := range plan.Moves {
		for i, id := range h.ids {
			if id == mv.To {
				h.lastGranted[i] = true
			}
		}
	}
	copy(h.lastWindowHits, windowHits)

	if len(plan.Moves) > 0 {
		pages := 0
		for _, mv := range plan.Moves {
			pages += mv.Pages
		}
		h.cfg.Tracer.Emit(trace.EvArbiter, 0, uint64(h.stats.Epochs), h.Now(), 0,
			fmt.Sprintf("moves=%d pages=%d", len(plan.Moves), pages))
	}

	// Open the next window from the captured boundary snapshots.
	for i := range h.machines {
		h.windowBase[i] = *h.captured[i]
		h.captured[i] = nil
		h.opCount[i] = 0
	}
	return nil
}

// HostStats is the host-level telemetry snapshot.
type HostStats struct {
	// Now is the host clock (frontier of tenant clocks).
	Now time.Duration
	// TotalLocalPages is the shared budget; Shares the current per-VM
	// split (always summing to at most the budget).
	TotalLocalPages int
	Shares          []int
	// WSSPages is each tenant's current working-set estimate.
	WSSPages []int
	// Arbiter accumulates epoch activity (zero-valued without an arbiter).
	Arbiter ArbiterCounters
	// VMs holds each tenant's full machine snapshot.
	VMs []Stats
}

// Stats snapshots the host and every tenant.
func (h *Host) Stats() HostStats {
	st := HostStats{
		Now:             h.Now(),
		TotalLocalPages: h.cfg.TotalLocalPages,
		Arbiter:         h.stats,
	}
	for _, m := range h.machines {
		ms := m.Stats()
		st.VMs = append(st.VMs, ms)
		st.Shares = append(st.Shares, ms.FootprintLimit)
		st.WSSPages = append(st.WSSPages, ms.WSSPages)
	}
	return st
}

// Drain quiesces every tenant's writeback engine.
func (h *Host) Drain() error {
	for i, m := range h.machines {
		if err := m.Drain(); err != nil {
			return fmt.Errorf("fluidmem: drain vm%d: %w", i, err)
		}
	}
	return nil
}
