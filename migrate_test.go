package fluidmem

import (
	"testing"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/vm"
)

// migrationPair builds source and destination machines over a shared
// RAMCloud store and registry.
func migrationPair(t *testing.T) (*Machine, *Machine) {
	t.Helper()
	store := ramcloud.New(ramcloud.DefaultParams(), 99)
	registry := kvstore.NewLocalRegistry()
	src, err := NewMachine(MachineConfig{
		Mode:         ModeFluidMem,
		LocalMemory:  16 << 20,
		GuestMemory:  64 << 20,
		BootOS:       true,
		SharedStore:  store,
		Registry:     registry,
		HypervisorID: "hyp-a",
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewMachine(MachineConfig{
		Mode:         ModeFluidMem,
		LocalMemory:  16 << 20,
		GuestMemory:  64 << 20,
		SharedStore:  store,
		Registry:     registry,
		HypervisorID: "hyp-b",
		Seed:         2, // distinct seed → distinct PID
	})
	if err != nil {
		t.Fatal(err)
	}
	return src, dst
}

func TestMigratePreservesGuestState(t *testing.T) {
	src, dst := migrationPair(t)
	heap, err := src.Alloc("heap", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < heap.Pages(); i++ {
		if err := src.Write64(heap.Addr(uint64(i)*PageSize), uint64(i)^0xABCD); err != nil {
			t.Fatal(err)
		}
	}
	srcResident := src.ResidentPages()
	if srcResident == 0 {
		t.Fatal("setup: nothing resident")
	}

	if err := Migrate(src, dst); err != nil {
		t.Fatal(err)
	}

	// The destination starts near-empty (post-copy) and pages fault in.
	if dst.ResidentPages() >= srcResident {
		t.Fatalf("destination resident %d pages immediately; post-copy should lazy-load", dst.ResidentPages())
	}
	for i := 0; i < heap.Pages(); i++ {
		v, err := dst.Read64(heap.Addr(uint64(i) * PageSize))
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if v != uint64(i)^0xABCD {
			t.Fatalf("page %d corrupted: %#x", i, v)
		}
	}
	// The migrated guest can keep allocating and the OS probes still work.
	if _, err := dst.Alloc("post-migration", 1<<20); err != nil {
		t.Fatal(err)
	}
	res, err := dst.Probe(vm.SSHService())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Responded {
		t.Fatal("migrated VM does not answer SSH")
	}
}

func TestMigrateClockMonotonic(t *testing.T) {
	src, dst := migrationPair(t)
	seg, _ := src.Alloc("x", 1<<20)
	for i := 0; i < seg.Pages(); i++ {
		if err := src.Write64(seg.Addr(uint64(i)*PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	before := src.Now()
	if err := Migrate(src, dst); err != nil {
		t.Fatal(err)
	}
	if dst.Now() <= before {
		t.Fatalf("destination clock %v not after source %v", dst.Now(), before)
	}
}

func TestMigrateRequiresSharedStore(t *testing.T) {
	src, _ := migrationPair(t)
	other, err := NewMachine(MachineConfig{
		Mode:        ModeFluidMem,
		LocalMemory: 4 << 20,
		GuestMemory: 32 << 20,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Migrate(src, other); err == nil {
		t.Fatal("migration accepted without a shared store")
	}
}

func TestMigrateRequiresFluidMem(t *testing.T) {
	src, _ := migrationPair(t)
	swapDst, err := NewMachine(MachineConfig{
		Mode:        ModeSwap,
		LocalMemory: 4 << 20,
		GuestMemory: 32 << 20,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Migrate(src, swapDst); err == nil {
		t.Fatal("migration to a swap machine accepted")
	}
}

func TestMigrateRequiresFreshDestination(t *testing.T) {
	src, dst := migrationPair(t)
	// Dirty the destination.
	seg, _ := dst.Alloc("dirt", 1<<20)
	if err := dst.Write64(seg.Addr(0), 1); err != nil {
		t.Fatal(err)
	}
	if err := Migrate(src, dst); err == nil {
		t.Fatal("migration into a used machine accepted")
	}
}

func TestMigrateRejectsSamePID(t *testing.T) {
	store := ramcloud.New(ramcloud.DefaultParams(), 1)
	registry := kvstore.NewLocalRegistry()
	mk := func(hyp string) *Machine {
		m, err := NewMachine(MachineConfig{
			Mode:         ModeFluidMem,
			LocalMemory:  4 << 20,
			GuestMemory:  16 << 20,
			SharedStore:  store,
			Registry:     registry,
			HypervisorID: hyp,
			Seed:         7, // same seed → same PID
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if err := Migrate(mk("a"), mk("b")); err == nil {
		t.Fatal("same-PID migration accepted")
	}
}
