package main

import (
	"os"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nonsense"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestQuickSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment still takes seconds")
	}
	if err := run([]string{"-quick", "-run", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range experiments() {
		if seen[e.name] {
			t.Fatalf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
		if e.desc == "" {
			t.Fatalf("experiment %q lacks a description", e.name)
		}
	}
	// Every paper table/figure must be present.
	for _, want := range []string{"fig3", "fig4", "fig5", "table1", "table2", "table3"} {
		if !seen[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
	// "artifacts" is a reserved meta-name expanding to the registry's
	// artifact-bearing experiments — it must not collide with a real one,
	// and the expansion must cover every committed BENCH_*.json producer.
	if seen["artifacts"] {
		t.Fatal(`an experiment is literally named "artifacts"`)
	}
	arts := make(map[string]bool)
	for _, name := range artifactNames() {
		arts[name] = true
	}
	for _, want := range []string{"writeback", "trace", "arbiter", "cluster", "parallel", "market", "openloop"} {
		if !arts[want] {
			t.Fatalf("artifact experiment %q missing from registry expansion %v", want, artifactNames())
		}
	}
}

func TestMetricRowsExtraction(t *testing.T) {
	doc := []byte(`{
		"meta": {"faults_per_sec": 100.5, "seed": 42, "wall_ms": 17},
		"rows": [
			{"label": "a", "faults_per_sec": 1.25, "sojourn_p99_ns": 900, "other": 7},
			{"label": "b", "nested": {"goodput_per_sec": 2.5}, "miss_pct": 3.5},
			{"label": "c", "scales": [0.5, 1, 8], "allocs_per_op": 0}
		],
		"knee_scale": 4
	}`)
	rows, err := metricRows(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := []metricRow{
		{key: "faults_per_sec", val: 100.5, dir: +1},
		{key: "faults_per_sec", val: 1.25, dir: +1},
		{key: "sojourn_p99_ns", val: 900, dir: -1},
		{key: "goodput_per_sec", val: 2.5, dir: +1},
		{key: "miss_pct", val: 3.5, dir: -1},
		{key: "knee_scale", val: 4, dir: +1},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %+v, want %+v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("row %d = %+v, want %+v (document order, seed/wall/alloc/array values excluded)",
				i, rows[i], want[i])
		}
	}
}

func TestMetricDirection(t *testing.T) {
	cases := []struct {
		key  string
		want int
	}{
		{"faults_per_sec", +1}, {"teps", +1}, {"knee_scale", +1},
		{"sojourn_p99_ns", -1}, {"backlog_ns", -1}, {"miss_pct", -1},
		{"P99", -1}, {"RecoveryTime", -1},
		{"wall_ms", 0}, {"allocs_per_op", 0}, {"speedup", 0},
		{"cores", 0}, {"seed", 0}, {"epochs", 0}, {"label", 0},
		// Machine-dependent markers win over directional suffixes.
		{"wall_p99_ns", 0},
	}
	for _, c := range cases {
		if got := metricDirection(c.key); got != c.want {
			t.Errorf("metricDirection(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

// fakeThroughputResult lets ratchet tests control the "measured" JSON.
type fakeThroughputResult struct{ doc string }

func (f *fakeThroughputResult) Render() string        { return "fake" }
func (f *fakeThroughputResult) JSON() ([]byte, error) { return []byte(f.doc), nil }

func TestRatchetCheck(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	baseline := `{"rows":[{"faults_per_sec":1000,"p99_ns":5000},{"faults_per_sec":2000}]}`
	if err := os.WriteFile("BENCH_fake.json", []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}

	// Identical rows pass.
	if err := ratchetCheck("fake", &fakeThroughputResult{doc: baseline}); err != nil {
		t.Fatalf("identical rows rejected: %v", err)
	}
	// Small (<10%) moves in the bad direction pass, as does any improvement.
	ok := `{"rows":[{"faults_per_sec":950,"p99_ns":5400},{"faults_per_sec":2600}]}`
	if err := ratchetCheck("fake", &fakeThroughputResult{doc: ok}); err != nil {
		t.Fatalf("5%% dip rejected: %v", err)
	}
	// A >10% throughput drop in any row fails.
	bad := `{"rows":[{"faults_per_sec":1000,"p99_ns":5000},{"faults_per_sec":1500}]}`
	if err := ratchetCheck("fake", &fakeThroughputResult{doc: bad}); err == nil {
		t.Fatal("25% throughput regression accepted")
	}
	// A >10% latency rise fails too — the ratchet is direction-aware, so a
	// latency row regresses by going UP.
	slow := `{"rows":[{"faults_per_sec":1000,"p99_ns":7000},{"faults_per_sec":2000}]}`
	if err := ratchetCheck("fake", &fakeThroughputResult{doc: slow}); err == nil {
		t.Fatal("40% latency regression accepted")
	}
	// A latency *improvement* of any size passes (no ratchet on the good side).
	fast := `{"rows":[{"faults_per_sec":1000,"p99_ns":100},{"faults_per_sec":2000}]}`
	if err := ratchetCheck("fake", &fakeThroughputResult{doc: fast}); err != nil {
		t.Fatalf("latency improvement rejected: %v", err)
	}
	// A zero-valued latency baseline tolerates only the absolute floor.
	zeroBase := `{"rows":[{"p50_ns":0}]}`
	if err := os.WriteFile("BENCH_zero.json", []byte(zeroBase), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ratchetCheck("zero", &fakeThroughputResult{doc: `{"rows":[{"p50_ns":150}]}`}); err != nil {
		t.Fatalf("sub-floor rise over zero baseline rejected: %v", err)
	}
	if err := ratchetCheck("zero", &fakeThroughputResult{doc: `{"rows":[{"p50_ns":5000}]}`}); err == nil {
		t.Fatal("5µs rise over a 0ns baseline accepted")
	}
	// Row-count drift fails: the committed artifact is stale.
	drift := `{"rows":[{"faults_per_sec":1000,"p99_ns":5000}]}`
	if err := ratchetCheck("fake", &fakeThroughputResult{doc: drift}); err == nil {
		t.Fatal("row-count drift accepted")
	}
	// So does a key change at the same row position (renamed metric).
	renamed := `{"rows":[{"faults_per_sec":1000,"p98_ns":5000},{"faults_per_sec":2000}]}`
	if err := ratchetCheck("fake", &fakeThroughputResult{doc: renamed}); err == nil {
		t.Fatal("metric rename accepted")
	}
	// A missing committed baseline fails loudly.
	if err := ratchetCheck("absent", &fakeThroughputResult{doc: baseline}); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

func TestJSONFlagFailsLoudlyWithoutArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick experiment")
	}
	// workers renders a table but has no JSON artifact: naming it explicitly
	// with -json must be an error, not a silent skip.
	if err := run([]string{"-quick", "-run", "workers", "-json"}); err == nil {
		t.Fatal("-json with a non-jsonable experiment silently succeeded")
	}
}
