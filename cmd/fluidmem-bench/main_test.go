package main

import "testing"

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nonsense"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestQuickSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment still takes seconds")
	}
	if err := run([]string{"-quick", "-run", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range experiments() {
		if seen[e.name] {
			t.Fatalf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
		if e.desc == "" {
			t.Fatalf("experiment %q lacks a description", e.name)
		}
	}
	// Every paper table/figure must be present.
	for _, want := range []string{"fig3", "fig4", "fig5", "table1", "table2", "table3"} {
		if !seen[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
}
