package main

import (
	"os"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nonsense"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestQuickSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment still takes seconds")
	}
	if err := run([]string{"-quick", "-run", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range experiments() {
		if seen[e.name] {
			t.Fatalf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
		if e.desc == "" {
			t.Fatalf("experiment %q lacks a description", e.name)
		}
	}
	// Every paper table/figure must be present.
	for _, want := range []string{"fig3", "fig4", "fig5", "table1", "table2", "table3"} {
		if !seen[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
}

func TestThroughputRowsExtraction(t *testing.T) {
	doc := []byte(`{
		"meta": {"faults_per_sec": 100.5},
		"rows": [
			{"label": "a", "faults_per_sec": 1.25, "other": 7},
			{"label": "b", "nested": {"faults_per_sec": 2.5}},
			{"label": "c"}
		]
	}`)
	rates, err := throughputRows(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{100.5, 1.25, 2.5}
	if len(rates) != len(want) {
		t.Fatalf("rates = %v, want %v", rates, want)
	}
	for i := range want {
		if rates[i] != want[i] {
			t.Fatalf("rates = %v, want %v (document order)", rates, want)
		}
	}
}

// fakeThroughputResult lets ratchet tests control the "measured" JSON.
type fakeThroughputResult struct{ doc string }

func (f *fakeThroughputResult) Render() string        { return "fake" }
func (f *fakeThroughputResult) JSON() ([]byte, error) { return []byte(f.doc), nil }

func TestRatchetCheck(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	baseline := `{"rows":[{"faults_per_sec":1000},{"faults_per_sec":2000}]}`
	if err := os.WriteFile("BENCH_fake.json", []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}

	// Identical rows pass.
	if err := ratchetCheck("fake", &fakeThroughputResult{doc: baseline}); err != nil {
		t.Fatalf("identical rows rejected: %v", err)
	}
	// A small (<10%) dip passes.
	ok := `{"rows":[{"faults_per_sec":950},{"faults_per_sec":1900}]}`
	if err := ratchetCheck("fake", &fakeThroughputResult{doc: ok}); err != nil {
		t.Fatalf("5%% dip rejected: %v", err)
	}
	// A >10% regression in any row fails.
	bad := `{"rows":[{"faults_per_sec":1000},{"faults_per_sec":1500}]}`
	if err := ratchetCheck("fake", &fakeThroughputResult{doc: bad}); err == nil {
		t.Fatal("25% regression accepted")
	}
	// Row-count drift fails: the committed artifact is stale.
	drift := `{"rows":[{"faults_per_sec":1000}]}`
	if err := ratchetCheck("fake", &fakeThroughputResult{doc: drift}); err == nil {
		t.Fatal("row-count drift accepted")
	}
	// A missing committed baseline fails loudly.
	if err := ratchetCheck("absent", &fakeThroughputResult{doc: baseline}); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

func TestJSONFlagFailsLoudlyWithoutArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick experiment")
	}
	// workers renders a table but has no JSON artifact: naming it explicitly
	// with -json must be an error, not a silent skip.
	if err := run([]string{"-quick", "-run", "workers", "-json"}); err == nil {
		t.Fatal("-json with a non-jsonable experiment silently succeeded")
	}
}
