// Command fluidmem-bench regenerates the paper's evaluation tables and
// figures (§VI) plus the DESIGN.md ablations, printing paper-style text
// tables. Run with -list to see experiment names.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"fluidmem/internal/bench"
	"fluidmem/internal/profiling"
)

// renderable is any experiment result.
type renderable interface{ Render() string }

// jsonable marks results that can also be emitted as a machine-readable
// BENCH_<name>.json artifact (the -json flag).
type jsonable interface{ JSON() ([]byte, error) }

// traceable marks results that recorded a full virtual-time event log and
// can serialise it as a Chrome trace (the -trace flag).
type traceable interface{ WriteChromeTrace(io.Writer) error }

// validatable marks results that carry their own artifact sanity check; a
// failing Validate aborts -json before the artifact is written (e.g. a
// BENCH_market.json with zero SLO-enforcement epochs measures nothing and
// must never be committed as a baseline).
type validatable interface{ Validate() error }

// experiment couples a name to its runner. artifact marks the experiments
// whose results are committed as BENCH_<name>.json baselines: the Makefile's
// bench-json and bench-ratchet targets select them with the meta-name
// "artifacts" instead of hand-maintaining a list, so adding an experiment
// here is the single step that enrolls it in both gates.
type experiment struct {
	name     string
	desc     string
	artifact bool
	run      func(bench.Options) (renderable, error)
}

func experiments() []experiment {
	return []experiment{
		{"fig3", "pmbench page-fault latency CDFs, 6 systems", false, func(o bench.Options) (renderable, error) { return bench.RunFig3(o) }},
		{"table1", "monitor code-path latency profile (RAMCloud, sync)", false, func(o bench.Options) (renderable, error) { return bench.RunTable1(o) }},
		{"table2", "fault latency vs optimisations × backend × pattern", false, func(o bench.Options) (renderable, error) { return bench.RunTable2(o) }},
		{"fig4", "Graph500 TEPS across scale factors, 6 systems", false, func(o bench.Options) (renderable, error) { return bench.RunFig4(o) }},
		{"fig5", "MongoDB YCSB-C latency time courses, swap vs FluidMem", false, func(o bench.Options) (renderable, error) { return bench.RunFig5(o) }},
		{"table3", "VM footprint minimisation and service responsiveness", false, func(o bench.Options) (renderable, error) { return bench.RunTable3(o) }},
		{"ablation-steal", "A1: write-list page stealing on/off", false, func(o bench.Options) (renderable, error) { return bench.RunAblationSteal(o) }},
		{"ablation-batch", "A2: writeback batch-size sweep", false, func(o bench.Options) (renderable, error) { return bench.RunAblationBatch(o) }},
		{"ablation-remap", "A3: UFFD_REMAP vs copy-out eviction", false, func(o bench.Options) (renderable, error) { return bench.RunAblationRemap(o) }},
		{"ablation-lru", "A4: LRU list size sweep", false, func(o bench.Options) (renderable, error) { return bench.RunAblationLRU(o) }},
		{"ablation-compress", "A5: compressed-tier pool size sweep", false, func(o bench.Options) (renderable, error) { return bench.RunAblationCompress(o) }},
		{"ablation-prefetch", "A6: sequential prefetching on/off × pattern", false, func(o bench.Options) (renderable, error) { return bench.RunAblationPrefetch(o) }},
		{"density", "multi-VM density: idle guests drain, active guest grows (§VI-E)", false, func(o bench.Options) (renderable, error) { return bench.RunDensity(o) }},
		{"chaos", "fault-latency degradation under injected failures, replicated + resilient", false, func(o bench.Options) (renderable, error) { return bench.RunChaos(o) }},
		{"cluster", "multi-node pool lifecycle: fault p50/p99 healthy/crashed/recovered/drained vs single store", true, func(o bench.Options) (renderable, error) { return bench.RunCluster(o) }},
		{"workers", "fault throughput vs pipeline width, batched MultiGet readahead", false, func(o bench.Options) (renderable, error) { return bench.RunWorkers(o) }},
		{"parallel", "multi-goroutine data plane: wall-clock scaling vs shards × GOMAXPROCS", true, func(o bench.Options) (renderable, error) { return bench.RunParallel(o) }},
		{"writeback", "eviction write path: per-page Put vs MultiPut batching vs zero-elide + clean-drop", true, func(o bench.Options) (renderable, error) { return bench.RunWriteback(o) }},
		{"trace", "virtual-time fault-latency breakdown: per-phase p50/p90/p99 from the tracer", true, func(o bench.Options) (renderable, error) { return bench.RunTrace(o) }},
		{"arbiter", "multi-tenant arbiter vs static equal split: ghost-LRU curves drive budget rebalancing", true, func(o bench.Options) (renderable, error) { return bench.RunArbiter(o) }},
		{"market", "memory marketplace vs arbiter vs static split: SLO-aware leases on skewed/shifting/adversarial mixes", true, func(o bench.Options) (renderable, error) { return bench.RunMarket(o) }},
		{"openloop", "open-loop scenario matrix: offered load vs goodput and sojourn p99, knee of curve per planner", true, func(o bench.Options) (renderable, error) { return bench.RunOpenLoop(o) }},
	}
}

// artifactNames lists the experiments whose JSON artifacts are committed as
// BENCH_<name>.json baselines — the expansion of the "artifacts" meta-name.
func artifactNames() []string {
	var names []string
	for _, e := range experiments() {
		if e.artifact {
			names = append(names, e.name)
		}
	}
	return names
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluidmem-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("fluidmem-bench", flag.ContinueOnError)
	var (
		runNames = fs.String("run", "all", "comma-separated experiment names, 'all', or 'artifacts' (every experiment with a committed BENCH_<name>.json)")
		quick    = fs.Bool("quick", false, "run reduced-scale variants")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		list     = fs.Bool("list", false, "list experiments and exit")
		jsonOut  = fs.Bool("json", false, "also write BENCH_<name>.json for experiments that support it")
		ratchet  = fs.Bool("ratchet", false, "compare every metric row against the committed BENCH_<name>.json; fail on a >10% regression")
		traceOut = fs.String("trace", "", "write a Chrome trace (chrome://tracing / Perfetto) to this file, for experiments that record one")
		cpuOut   = fs.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memOut   = fs.String("memprofile", "", "write an allocation profile to this file when the experiments finish")
		mutexOut = fs.String("mutexprofile", "", "write a mutex-contention profile to this file when the experiments finish")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(*cpuOut, *memOut, *mutexOut)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	exps := experiments()
	if *list {
		for _, e := range exps {
			mark := ""
			if e.artifact {
				mark = " [artifact]"
			}
			fmt.Printf("  %-16s %s%s\n", e.name, e.desc, mark)
		}
		return nil
	}
	opts := bench.Options{Quick: *quick, Seed: *seed}
	want := map[string]bool{}
	if *runNames != "all" {
		for _, n := range strings.Split(*runNames, ",") {
			n = strings.TrimSpace(n)
			if n == "artifacts" {
				// Meta-name: the registry, not a Makefile string, decides
				// which experiments carry committed baselines.
				for _, a := range artifactNames() {
					want[a] = true
				}
				continue
			}
			want[n] = true
		}
	}
	matched := 0
	for _, e := range exps {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		matched++
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		res, err := e.run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(res.Render())
		if *jsonOut {
			if v, ok := res.(validatable); ok {
				if err := v.Validate(); err != nil {
					return fmt.Errorf("%s: %w", e.name, err)
				}
			}
			j, ok := res.(jsonable)
			if !ok {
				// With an explicit -run list every named experiment is
				// expected to produce an artifact; failing loudly here is
				// what keeps a BENCH_<name>.json from silently never being
				// written (the bench-json Makefile target relies on it).
				if len(want) > 0 {
					return fmt.Errorf("%s: -json requested but this experiment produces no JSON artifact", e.name)
				}
				continue
			}
			data, err := j.JSON()
			if err != nil {
				return fmt.Errorf("%s: json: %w", e.name, err)
			}
			artifact := "BENCH_" + e.name + ".json"
			if err := os.WriteFile(artifact, append(data, '\n'), 0o644); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Printf("wrote %s\n", artifact)
		}
		if *ratchet {
			if err := ratchetCheck(e.name, res); err != nil {
				return err
			}
		}
		if *traceOut != "" {
			tr, ok := res.(traceable)
			if !ok {
				continue
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			if err := tr.WriteChromeTrace(f); err != nil {
				f.Close()
				return fmt.Errorf("%s: trace: %w", e.name, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no experiment matches %q (use -list)", *runNames)
	}
	return nil
}

// ratchetCheck is the performance regression gate: every directional metric
// row of the freshly measured artifact is compared against the committed
// BENCH_<name>.json baseline, and a >10% move in the bad direction fails the
// build. Direction comes from the key: throughput-like rows (per_sec, teps,
// goodput, knee_scale) must not drop; latency-like rows (_ns suffixes, the
// cluster matrix's P50/P99/Mean/RecoveryTime/DrainTime, _pct miss rates)
// must not rise. Machine-dependent rows (wall clocks, allocations, core
// counts, speedups) are excluded — everything else in these artifacts is
// virtual time, bit-deterministic per seed, so on unchanged simulation logic
// the comparison is exact and a trip means the change really moved a metric;
// the gate forces that to be a deliberate, committed decision rather than
// drift.
func ratchetCheck(name string, res renderable) error {
	j, ok := res.(jsonable)
	if !ok {
		fmt.Printf("%s: ratchet: no JSON artifact; skipped\n", name)
		return nil
	}
	artifact := "BENCH_" + name + ".json"
	oldData, err := os.ReadFile(artifact)
	if err != nil {
		return fmt.Errorf("%s: ratchet: no committed baseline: %w", name, err)
	}
	newData, err := j.JSON()
	if err != nil {
		return fmt.Errorf("%s: ratchet: json: %w", name, err)
	}
	oldRows, err := metricRows(oldData)
	if err != nil {
		return fmt.Errorf("%s: ratchet: parse %s: %w", name, artifact, err)
	}
	newRows, err := metricRows(newData)
	if err != nil {
		return fmt.Errorf("%s: ratchet: parse measured result: %w", name, err)
	}
	if len(oldRows) == 0 {
		fmt.Printf("%s: ratchet: no directional metric rows in %s; skipped\n", name, artifact)
		return nil
	}
	if len(oldRows) != len(newRows) {
		return fmt.Errorf("%s: ratchet: metric row count changed: %s has %d rows, measured %d (regenerate with -json and commit)",
			name, artifact, len(oldRows), len(newRows))
	}
	for i, old := range oldRows {
		cur := newRows[i]
		if old.key != cur.key {
			return fmt.Errorf("%s: ratchet: metric row %d changed key: %s has %q, measured %q (regenerate with -json and commit)",
				name, i, artifact, old.key, cur.key)
		}
		// 10% relative slack plus a small absolute floor so zero-valued
		// baselines (a 0 ns p50, an exactly-met bound) don't trip on any
		// nonzero measurement regardless of magnitude.
		tol := 0.1*math.Abs(old.val) + metricFloor(old.key)
		var regressed bool
		if old.dir > 0 {
			regressed = cur.val < old.val-tol
		} else {
			regressed = cur.val > old.val+tol
		}
		if regressed {
			return fmt.Errorf("%s: ratchet: %s row %d regressed: %g -> %g (threshold 10%%)",
				name, old.key, i, old.val, cur.val)
		}
	}
	fmt.Printf("%s: ratchet: %d metric rows within 10%% of %s\n", name, len(oldRows), artifact)
	return nil
}

// metricRow is one directional numeric field of an artifact, in document
// order. dir is +1 for higher-is-better rows and -1 for lower-is-better.
type metricRow struct {
	key string
	val float64
	dir int
}

// metricDirection classifies an artifact key: +1 higher-is-better, -1
// lower-is-better, 0 not a performance metric (config echoes, counts, and
// machine-dependent measurements like wall clocks or allocation rates).
func metricDirection(key string) int {
	lk := strings.ToLower(key)
	for _, skip := range []string{"wall", "alloc", "speedup", "cores", "gomaxprocs", "seed"} {
		if strings.Contains(lk, skip) {
			return 0
		}
	}
	switch {
	case strings.Contains(lk, "per_sec"), strings.Contains(lk, "teps"), key == "knee_scale":
		return +1
	case strings.HasSuffix(lk, "_ns"), strings.HasSuffix(lk, "_pct"):
		return -1
	}
	switch key {
	// The cluster lifecycle matrix predates the _ns suffix convention.
	case "Mean", "P50", "P99", "RecoveryTime", "DrainTime":
		return -1
	}
	return 0
}

// metricFloor is the absolute slack added to the 10% relative tolerance.
func metricFloor(key string) float64 {
	lk := strings.ToLower(key)
	switch {
	case strings.HasSuffix(lk, "_ns"):
		return 200 // nanoseconds of virtual time
	case strings.HasSuffix(lk, "_pct"):
		return 0.5 // percentage points
	default:
		return 1e-9
	}
}

// metricRows extracts every directional numeric field from a JSON document,
// in document order, at any nesting depth. Token-level scanning (rather than
// unmarshalling into a map) keeps the order stable so old and new artifacts
// compare row-for-row; numbers inside arrays carry no key of their own
// (spans, sweep lists) and are never collected.
func metricRows(data []byte) ([]metricRow, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var out []metricRow
	if err := scanValue(dec, "", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// scanValue consumes one JSON value from dec; key names the object field the
// value belongs to ("" for array elements and the document root).
func scanValue(dec *json.Decoder, key string, out *[]metricRow) error {
	t, err := dec.Token()
	if err != nil {
		return err
	}
	switch tok := t.(type) {
	case json.Delim:
		switch tok {
		case '{':
			for dec.More() {
				kt, err := dec.Token()
				if err != nil {
					return err
				}
				k, _ := kt.(string)
				if err := scanValue(dec, k, out); err != nil {
					return err
				}
			}
			_, err := dec.Token() // closing brace
			return err
		case '[':
			for dec.More() {
				if err := scanValue(dec, "", out); err != nil {
					return err
				}
			}
			_, err := dec.Token() // closing bracket
			return err
		}
	case float64:
		if dir := metricDirection(key); key != "" && dir != 0 {
			*out = append(*out, metricRow{key: key, val: tok, dir: dir})
		}
	}
	return nil
}
