// Command fluidmem-bench regenerates the paper's evaluation tables and
// figures (§VI) plus the DESIGN.md ablations, printing paper-style text
// tables. Run with -list to see experiment names.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fluidmem/internal/bench"
)

// renderable is any experiment result.
type renderable interface{ Render() string }

// jsonable marks results that can also be emitted as a machine-readable
// BENCH_<name>.json artifact (the -json flag).
type jsonable interface{ JSON() ([]byte, error) }

// traceable marks results that recorded a full virtual-time event log and
// can serialise it as a Chrome trace (the -trace flag).
type traceable interface{ WriteChromeTrace(io.Writer) error }

// experiment couples a name to its runner.
type experiment struct {
	name string
	desc string
	run  func(bench.Options) (renderable, error)
}

func experiments() []experiment {
	return []experiment{
		{"fig3", "pmbench page-fault latency CDFs, 6 systems", func(o bench.Options) (renderable, error) { return bench.RunFig3(o) }},
		{"table1", "monitor code-path latency profile (RAMCloud, sync)", func(o bench.Options) (renderable, error) { return bench.RunTable1(o) }},
		{"table2", "fault latency vs optimisations × backend × pattern", func(o bench.Options) (renderable, error) { return bench.RunTable2(o) }},
		{"fig4", "Graph500 TEPS across scale factors, 6 systems", func(o bench.Options) (renderable, error) { return bench.RunFig4(o) }},
		{"fig5", "MongoDB YCSB-C latency time courses, swap vs FluidMem", func(o bench.Options) (renderable, error) { return bench.RunFig5(o) }},
		{"table3", "VM footprint minimisation and service responsiveness", func(o bench.Options) (renderable, error) { return bench.RunTable3(o) }},
		{"ablation-steal", "A1: write-list page stealing on/off", func(o bench.Options) (renderable, error) { return bench.RunAblationSteal(o) }},
		{"ablation-batch", "A2: writeback batch-size sweep", func(o bench.Options) (renderable, error) { return bench.RunAblationBatch(o) }},
		{"ablation-remap", "A3: UFFD_REMAP vs copy-out eviction", func(o bench.Options) (renderable, error) { return bench.RunAblationRemap(o) }},
		{"ablation-lru", "A4: LRU list size sweep", func(o bench.Options) (renderable, error) { return bench.RunAblationLRU(o) }},
		{"ablation-compress", "A5: compressed-tier pool size sweep", func(o bench.Options) (renderable, error) { return bench.RunAblationCompress(o) }},
		{"ablation-prefetch", "A6: sequential prefetching on/off × pattern", func(o bench.Options) (renderable, error) { return bench.RunAblationPrefetch(o) }},
		{"density", "multi-VM density: idle guests drain, active guest grows (§VI-E)", func(o bench.Options) (renderable, error) { return bench.RunDensity(o) }},
		{"chaos", "fault-latency degradation under injected failures, replicated + resilient", func(o bench.Options) (renderable, error) { return bench.RunChaos(o) }},
		{"cluster", "multi-node pool lifecycle: fault p50/p99 healthy/crashed/recovered/drained vs single store", func(o bench.Options) (renderable, error) { return bench.RunCluster(o) }},
		{"workers", "fault throughput vs pipeline width, batched MultiGet readahead", func(o bench.Options) (renderable, error) { return bench.RunWorkers(o) }},
		{"writeback", "eviction write path: per-page Put vs MultiPut batching vs zero-elide + clean-drop", func(o bench.Options) (renderable, error) { return bench.RunWriteback(o) }},
		{"trace", "virtual-time fault-latency breakdown: per-phase p50/p90/p99 from the tracer", func(o bench.Options) (renderable, error) { return bench.RunTrace(o) }},
		{"arbiter", "multi-tenant arbiter vs static equal split: ghost-LRU curves drive budget rebalancing", func(o bench.Options) (renderable, error) { return bench.RunArbiter(o) }},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluidmem-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fluidmem-bench", flag.ContinueOnError)
	var (
		runNames = fs.String("run", "all", "comma-separated experiment names, or 'all'")
		quick    = fs.Bool("quick", false, "run reduced-scale variants")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		list     = fs.Bool("list", false, "list experiments and exit")
		jsonOut  = fs.Bool("json", false, "also write BENCH_<name>.json for experiments that support it")
		traceOut = fs.String("trace", "", "write a Chrome trace (chrome://tracing / Perfetto) to this file, for experiments that record one")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("  %-16s %s\n", e.name, e.desc)
		}
		return nil
	}
	opts := bench.Options{Quick: *quick, Seed: *seed}
	want := map[string]bool{}
	if *runNames != "all" {
		for _, n := range strings.Split(*runNames, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	matched := 0
	for _, e := range exps {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		matched++
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		res, err := e.run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(res.Render())
		if *jsonOut {
			j, ok := res.(jsonable)
			if !ok {
				continue
			}
			data, err := j.JSON()
			if err != nil {
				return fmt.Errorf("%s: json: %w", e.name, err)
			}
			artifact := "BENCH_" + e.name + ".json"
			if err := os.WriteFile(artifact, append(data, '\n'), 0o644); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Printf("wrote %s\n", artifact)
		}
		if *traceOut != "" {
			tr, ok := res.(traceable)
			if !ok {
				continue
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			if err := tr.WriteChromeTrace(f); err != nil {
				f.Close()
				return fmt.Errorf("%s: trace: %w", e.name, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no experiment matches %q (use -list)", *runNames)
	}
	return nil
}
