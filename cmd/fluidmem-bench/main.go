// Command fluidmem-bench regenerates the paper's evaluation tables and
// figures (§VI) plus the DESIGN.md ablations, printing paper-style text
// tables. Run with -list to see experiment names.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fluidmem/internal/bench"
	"fluidmem/internal/profiling"
)

// renderable is any experiment result.
type renderable interface{ Render() string }

// jsonable marks results that can also be emitted as a machine-readable
// BENCH_<name>.json artifact (the -json flag).
type jsonable interface{ JSON() ([]byte, error) }

// traceable marks results that recorded a full virtual-time event log and
// can serialise it as a Chrome trace (the -trace flag).
type traceable interface{ WriteChromeTrace(io.Writer) error }

// validatable marks results that carry their own artifact sanity check; a
// failing Validate aborts -json before the artifact is written (e.g. a
// BENCH_market.json with zero SLO-enforcement epochs measures nothing and
// must never be committed as a baseline).
type validatable interface{ Validate() error }

// experiment couples a name to its runner.
type experiment struct {
	name string
	desc string
	run  func(bench.Options) (renderable, error)
}

func experiments() []experiment {
	return []experiment{
		{"fig3", "pmbench page-fault latency CDFs, 6 systems", func(o bench.Options) (renderable, error) { return bench.RunFig3(o) }},
		{"table1", "monitor code-path latency profile (RAMCloud, sync)", func(o bench.Options) (renderable, error) { return bench.RunTable1(o) }},
		{"table2", "fault latency vs optimisations × backend × pattern", func(o bench.Options) (renderable, error) { return bench.RunTable2(o) }},
		{"fig4", "Graph500 TEPS across scale factors, 6 systems", func(o bench.Options) (renderable, error) { return bench.RunFig4(o) }},
		{"fig5", "MongoDB YCSB-C latency time courses, swap vs FluidMem", func(o bench.Options) (renderable, error) { return bench.RunFig5(o) }},
		{"table3", "VM footprint minimisation and service responsiveness", func(o bench.Options) (renderable, error) { return bench.RunTable3(o) }},
		{"ablation-steal", "A1: write-list page stealing on/off", func(o bench.Options) (renderable, error) { return bench.RunAblationSteal(o) }},
		{"ablation-batch", "A2: writeback batch-size sweep", func(o bench.Options) (renderable, error) { return bench.RunAblationBatch(o) }},
		{"ablation-remap", "A3: UFFD_REMAP vs copy-out eviction", func(o bench.Options) (renderable, error) { return bench.RunAblationRemap(o) }},
		{"ablation-lru", "A4: LRU list size sweep", func(o bench.Options) (renderable, error) { return bench.RunAblationLRU(o) }},
		{"ablation-compress", "A5: compressed-tier pool size sweep", func(o bench.Options) (renderable, error) { return bench.RunAblationCompress(o) }},
		{"ablation-prefetch", "A6: sequential prefetching on/off × pattern", func(o bench.Options) (renderable, error) { return bench.RunAblationPrefetch(o) }},
		{"density", "multi-VM density: idle guests drain, active guest grows (§VI-E)", func(o bench.Options) (renderable, error) { return bench.RunDensity(o) }},
		{"chaos", "fault-latency degradation under injected failures, replicated + resilient", func(o bench.Options) (renderable, error) { return bench.RunChaos(o) }},
		{"cluster", "multi-node pool lifecycle: fault p50/p99 healthy/crashed/recovered/drained vs single store", func(o bench.Options) (renderable, error) { return bench.RunCluster(o) }},
		{"workers", "fault throughput vs pipeline width, batched MultiGet readahead", func(o bench.Options) (renderable, error) { return bench.RunWorkers(o) }},
		{"parallel", "multi-goroutine data plane: wall-clock scaling vs shards × GOMAXPROCS", func(o bench.Options) (renderable, error) { return bench.RunParallel(o) }},
		{"writeback", "eviction write path: per-page Put vs MultiPut batching vs zero-elide + clean-drop", func(o bench.Options) (renderable, error) { return bench.RunWriteback(o) }},
		{"trace", "virtual-time fault-latency breakdown: per-phase p50/p90/p99 from the tracer", func(o bench.Options) (renderable, error) { return bench.RunTrace(o) }},
		{"arbiter", "multi-tenant arbiter vs static equal split: ghost-LRU curves drive budget rebalancing", func(o bench.Options) (renderable, error) { return bench.RunArbiter(o) }},
		{"market", "memory marketplace vs arbiter vs static split: SLO-aware leases on skewed/shifting/adversarial mixes", func(o bench.Options) (renderable, error) { return bench.RunMarket(o) }},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluidmem-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("fluidmem-bench", flag.ContinueOnError)
	var (
		runNames = fs.String("run", "all", "comma-separated experiment names, or 'all'")
		quick    = fs.Bool("quick", false, "run reduced-scale variants")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		list     = fs.Bool("list", false, "list experiments and exit")
		jsonOut  = fs.Bool("json", false, "also write BENCH_<name>.json for experiments that support it")
		ratchet  = fs.Bool("ratchet", false, "compare faults_per_sec against the committed BENCH_<name>.json; fail on a >10% regression")
		traceOut = fs.String("trace", "", "write a Chrome trace (chrome://tracing / Perfetto) to this file, for experiments that record one")
		cpuOut   = fs.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memOut   = fs.String("memprofile", "", "write an allocation profile to this file when the experiments finish")
		mutexOut = fs.String("mutexprofile", "", "write a mutex-contention profile to this file when the experiments finish")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(*cpuOut, *memOut, *mutexOut)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("  %-16s %s\n", e.name, e.desc)
		}
		return nil
	}
	opts := bench.Options{Quick: *quick, Seed: *seed}
	want := map[string]bool{}
	if *runNames != "all" {
		for _, n := range strings.Split(*runNames, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	matched := 0
	for _, e := range exps {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		matched++
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		res, err := e.run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(res.Render())
		if *jsonOut {
			if v, ok := res.(validatable); ok {
				if err := v.Validate(); err != nil {
					return fmt.Errorf("%s: %w", e.name, err)
				}
			}
			j, ok := res.(jsonable)
			if !ok {
				// With an explicit -run list every named experiment is
				// expected to produce an artifact; failing loudly here is
				// what keeps a BENCH_<name>.json from silently never being
				// written (the bench-json Makefile target relies on it).
				if len(want) > 0 {
					return fmt.Errorf("%s: -json requested but this experiment produces no JSON artifact", e.name)
				}
				continue
			}
			data, err := j.JSON()
			if err != nil {
				return fmt.Errorf("%s: json: %w", e.name, err)
			}
			artifact := "BENCH_" + e.name + ".json"
			if err := os.WriteFile(artifact, append(data, '\n'), 0o644); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Printf("wrote %s\n", artifact)
		}
		if *ratchet {
			if err := ratchetCheck(e.name, res); err != nil {
				return err
			}
		}
		if *traceOut != "" {
			tr, ok := res.(traceable)
			if !ok {
				continue
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			if err := tr.WriteChromeTrace(f); err != nil {
				f.Close()
				return fmt.Errorf("%s: trace: %w", e.name, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no experiment matches %q (use -list)", *runNames)
	}
	return nil
}

// ratchetCheck is the throughput regression gate: the freshly measured
// faults_per_sec rows must not fall more than 10% below the ones committed
// in BENCH_<name>.json. The committed rows are virtual-time throughputs —
// bit-deterministic per seed — so on unchanged code the comparison is exact;
// a drop means the change made the simulated pipeline slower, and the gate
// forces that to be a deliberate, committed decision rather than drift.
func ratchetCheck(name string, res renderable) error {
	j, ok := res.(jsonable)
	if !ok {
		fmt.Printf("%s: ratchet: no JSON artifact; skipped\n", name)
		return nil
	}
	artifact := "BENCH_" + name + ".json"
	oldData, err := os.ReadFile(artifact)
	if err != nil {
		return fmt.Errorf("%s: ratchet: no committed baseline: %w", name, err)
	}
	newData, err := j.JSON()
	if err != nil {
		return fmt.Errorf("%s: ratchet: json: %w", name, err)
	}
	oldRates, err := throughputRows(oldData)
	if err != nil {
		return fmt.Errorf("%s: ratchet: parse %s: %w", name, artifact, err)
	}
	newRates, err := throughputRows(newData)
	if err != nil {
		return fmt.Errorf("%s: ratchet: parse measured result: %w", name, err)
	}
	if len(oldRates) == 0 {
		fmt.Printf("%s: ratchet: no faults_per_sec rows in %s; skipped\n", name, artifact)
		return nil
	}
	if len(oldRates) != len(newRates) {
		return fmt.Errorf("%s: ratchet: row count changed: %s has %d faults_per_sec rows, measured %d (regenerate with -json and commit)",
			name, artifact, len(oldRates), len(newRates))
	}
	for i := range oldRates {
		if newRates[i] < 0.9*oldRates[i] {
			return fmt.Errorf("%s: ratchet: faults_per_sec row %d regressed: %.0f -> %.0f (-%.1f%%, threshold 10%%)",
				name, i, oldRates[i], newRates[i], 100*(1-newRates[i]/oldRates[i]))
		}
	}
	fmt.Printf("%s: ratchet: %d faults_per_sec rows within 10%% of %s\n", name, len(oldRates), artifact)
	return nil
}

// throughputRows extracts every "faults_per_sec" number from a JSON
// document, in document order, at any nesting depth. Token-level scanning
// (rather than unmarshalling into a map) keeps the order stable so old and
// new artifacts compare row-for-row.
func throughputRows(data []byte) ([]float64, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var out []float64
	if err := scanValue(dec, false, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// scanValue consumes one JSON value from dec; record marks a value whose
// object key was "faults_per_sec", so a plain number gets collected.
func scanValue(dec *json.Decoder, record bool, out *[]float64) error {
	t, err := dec.Token()
	if err != nil {
		return err
	}
	switch tok := t.(type) {
	case json.Delim:
		switch tok {
		case '{':
			for dec.More() {
				kt, err := dec.Token()
				if err != nil {
					return err
				}
				key, _ := kt.(string)
				if err := scanValue(dec, key == "faults_per_sec", out); err != nil {
					return err
				}
			}
			_, err := dec.Token() // closing brace
			return err
		case '[':
			for dec.More() {
				if err := scanValue(dec, false, out); err != nil {
					return err
				}
			}
			_, err := dec.Token() // closing bracket
			return err
		}
	case float64:
		if record {
			*out = append(*out, tok)
		}
	}
	return nil
}
