// Command hotpath-probe measures wall-clock fault throughput and heap
// allocations of the monitor's miss+evict+writeback hot path via the public
// API only, so the same source runs against older trees for before/after
// comparisons (see EXPERIMENTS.md).
package main

import (
	"fmt"
	"runtime"
	"time"

	"fluidmem/internal/core"
	"fluidmem/internal/kvstore/ramcloud"
)

func main() {
	const base = 0x7f00_0000_0000
	const pages = 512
	const capacity = 256
	const faults = 2_000_000

	store := ramcloud.New(ramcloud.DefaultParams(), 9)
	cfg := core.DefaultConfig(store, capacity)
	cfg.Workers = 4
	m, err := core.NewMonitor(cfg, nil, "probe")
	if err != nil {
		panic(err)
	}
	if _, err := m.RegisterRange(base, pages*core.PageSize, 1); err != nil {
		panic(err)
	}
	var now time.Duration
	i := 0
	touch := func() {
		_, done, err := m.Touch(now, base+uint64(i%pages)*core.PageSize, true)
		if err != nil {
			panic(err)
		}
		now = done
		i++
	}
	for k := 0; k < 3*pages; k++ {
		touch()
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for k := 0; k < faults; k++ {
		touch()
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	fmt.Printf("faults=%d wall=%v wall_faults_per_sec=%.0f allocs_per_fault=%.3f bytes_per_fault=%.1f\n",
		faults, wall.Round(time.Millisecond), float64(faults)/wall.Seconds(),
		float64(after.Mallocs-before.Mallocs)/faults,
		float64(after.TotalAlloc-before.TotalAlloc)/faults)
}
