// Command hotpath-probe measures wall-clock fault throughput and heap
// allocations of the monitor's miss+evict+writeback hot path via the public
// API only, so the same source runs against older trees for before/after
// comparisons (see EXPERIMENTS.md). -parallel switches the loop from the
// single-thread virtual-time monitor to the multi-goroutine engine, and the
// -cpuprofile/-memprofile/-mutexprofile flags attribute where the time and
// bytes go.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"fluidmem/internal/core"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/profiling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hotpath-probe:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		parallel = flag.Bool("parallel", false, "drive the multi-goroutine engine instead of the virtual-time monitor")
		workers  = flag.Int("workers", 4, "pipeline width (serial) / executor-shard count (parallel)")
		faults   = flag.Int("faults", 2_000_000, "measured fault count")
		cpuOut   = flag.String("cpuprofile", "", "write a CPU profile of the measured phase to this file")
		memOut   = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		mutexOut = flag.String("mutexprofile", "", "write a mutex-contention profile to this file at exit")
	)
	flag.Parse()

	const base = 0x7f00_0000_0000
	const pages = 512
	const capacity = 256

	store := ramcloud.New(ramcloud.DefaultParams(), 9)
	cfg := core.DefaultConfig(store, capacity)
	cfg.Workers = *workers

	// touch runs one dirty fault; close drains whatever the engine still owes.
	var touch func() error
	close := func() error { return nil }
	i := 0
	if *parallel {
		var sink uint64
		p, perr := core.NewParallel(cfg, nil, "probe",
			func(shard int, ticket, addr uint64, data []byte) { sink += uint64(len(data)) })
		if perr != nil {
			return perr
		}
		if rerr := p.RegisterRange(base, pages*core.PageSize, 1); rerr != nil {
			return rerr
		}
		touch = func() error {
			terr := p.Touch(base+uint64(i%pages)*core.PageSize, true)
			i++
			return terr
		}
		close = p.Close
	} else {
		m, merr := core.NewMonitor(cfg, nil, "probe")
		if merr != nil {
			return merr
		}
		if _, rerr := m.RegisterRange(base, pages*core.PageSize, 1); rerr != nil {
			return rerr
		}
		var now time.Duration
		touch = func() error {
			_, done, terr := m.Touch(now, base+uint64(i%pages)*core.PageSize, true)
			now = done
			i++
			return terr
		}
	}

	for k := 0; k < 3*pages; k++ { // warm to steady state
		if err := touch(); err != nil {
			return err
		}
	}

	stopProfiles, err := profiling.Start(*cpuOut, *memOut, *mutexOut)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for k := 0; k < *faults; k++ {
		if err := touch(); err != nil {
			return err
		}
	}
	if err := close(); err != nil { // parallel: include the executors' tail
		return err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	mode := "serial"
	if *parallel {
		mode = "parallel"
	}
	fmt.Printf("mode=%s workers=%d faults=%d wall=%v wall_faults_per_sec=%.0f allocs_per_fault=%.3f bytes_per_fault=%.1f\n",
		mode, *workers, *faults, wall.Round(time.Millisecond), float64(*faults)/wall.Seconds(),
		float64(after.Mallocs-before.Mallocs)/float64(*faults),
		float64(after.TotalAlloc-before.TotalAlloc)/float64(*faults))
	return nil
}
