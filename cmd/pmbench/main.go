// Command pmbench runs the paging micro-benchmark (§VI-B) against a single
// configurable machine and prints the latency distribution — a standalone
// version of one Figure 3 line.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fluidmem"
	"fluidmem/internal/stats"
	"fluidmem/internal/workload/pmbench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pmbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pmbench", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "fluidmem", "fluidmem | swap")
		backend   = fs.String("backend", "ramcloud", "dram | ramcloud | memcached (fluidmem mode)")
		swapDev   = fs.String("swapdev", "nvmeof", "dram | nvmeof | ssd (swap mode)")
		localMB   = fs.Int("local", 16, "local DRAM budget in MB")
		wssMB     = fs.Int("wss", 64, "working set size in MB")
		accesses  = fs.Int("accesses", 40000, "number of timed accesses")
		readRatio = fs.Float64("reads", 0.5, "read fraction")
		seed      = fs.Uint64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := fluidmem.MachineConfig{
		LocalMemory: uint64(*localMB) << 20,
		GuestMemory: uint64(*wssMB) << 20 * 5 / 4,
		Seed:        *seed,
	}
	switch *mode {
	case "fluidmem":
		cfg.Mode = fluidmem.ModeFluidMem
		cfg.Backend = fluidmem.Backend(*backend)
	case "swap":
		cfg.Mode = fluidmem.ModeSwap
		cfg.SwapDev = fluidmem.SwapDevice(*swapDev)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	m, err := fluidmem.NewMachine(cfg)
	if err != nil {
		return err
	}
	pcfg := pmbench.DefaultConfig(uint64(*wssMB) << 20)
	pcfg.Duration = time.Hour
	pcfg.MaxAccesses = *accesses
	pcfg.ReadRatio = *readRatio
	pcfg.Seed = *seed
	res, _, err := pmbench.Run(m.Now(), m.VM(), pcfg)
	if err != nil {
		return err
	}
	fmt.Printf("pmbench: mode=%s %d accesses over %d MB WSS / %d MB local\n",
		*mode, res.Accesses, *wssMB, *localMB)
	fmt.Printf("  warm-up: %v virtual, timed phase: %v virtual\n", res.WarmupTime, res.RunTime)
	fmt.Println(stats.RenderCDFASCII("all accesses", res.Latencies, 40))
	fmt.Printf("  reads:  %s\n", res.ReadLatencies.Summary())
	fmt.Printf("  writes: %s\n", res.WriteLatencies.Summary())
	if mon := m.Monitor(); mon != nil {
		fmt.Printf("  monitor: %+v\n", mon.Stats())
	}
	if sw := m.Swap(); sw != nil {
		fmt.Printf("  swap: %+v\n", sw.Stats())
	}
	return nil
}
