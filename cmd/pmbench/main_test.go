package main

import "testing"

func TestRunFluidMem(t *testing.T) {
	if err := run([]string{"-wss", "4", "-local", "1", "-accesses", "500"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSwap(t *testing.T) {
	if err := run([]string{"-mode", "swap", "-swapdev", "ssd", "-wss", "4", "-local", "1", "-accesses", "500"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadMode(t *testing.T) {
	if err := run([]string{"-mode", "levitation"}); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestRunBadBackend(t *testing.T) {
	if err := run([]string{"-backend", "floppy", "-wss", "4", "-local", "1", "-accesses", "10"}); err == nil {
		t.Fatal("bad backend accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
