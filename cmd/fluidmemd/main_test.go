package main

import "testing"

func TestDefaultScript(t *testing.T) {
	if err := run([]string{"-local", "16", "-guest", "64"}); err != nil {
		t.Fatal(err)
	}
}

func TestHotplugAndTick(t *testing.T) {
	if err := run([]string{"-local", "8", "-guest", "32",
		"-script", "status;hotplug 16;tick 100;status"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownCommand(t *testing.T) {
	if err := run([]string{"-local", "8", "-guest", "32", "-script", "explode"}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestResizeArgValidation(t *testing.T) {
	if err := run([]string{"-local", "8", "-guest", "32", "-script", "resize"}); err == nil {
		t.Fatal("resize without argument accepted")
	}
	if err := run([]string{"-local", "8", "-guest", "32", "-script", "resize banana"}); err == nil {
		t.Fatal("non-numeric resize accepted")
	}
}

func TestBadBackend(t *testing.T) {
	if err := run([]string{"-backend", "abacus"}); err == nil {
		t.Fatal("bad backend accepted")
	}
}

func TestHostConsole(t *testing.T) {
	// The default host script runs status, slo, and market against every
	// planner (market prints a hint when the marketplace is off).
	for _, planner := range [][]string{nil, {"-arbiter"}, {"-market"}} {
		args := append([]string{"-vms", "2", "-local", "1", "-backend", "dram"}, planner...)
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", planner, err)
		}
	}
	if err := run([]string{"-vms", "2", "-local", "1", "-backend", "dram",
		"-script", "status;slo;market;status"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-vms", "2", "-local", "1", "-backend", "dram", "-script", "resize 4"}); err == nil {
		t.Fatal("machine command accepted by the host console")
	}
}

func TestMarketFlagValidation(t *testing.T) {
	if err := run([]string{"-market"}); err == nil {
		t.Fatal("-market without -vms accepted")
	}
	if err := run([]string{"-vms", "2", "-market", "-arbiter"}); err == nil {
		t.Fatal("-market with -arbiter accepted")
	}
	if err := run([]string{"-parallel", "-market"}); err == nil {
		t.Fatal("-parallel with -market accepted")
	}
}
