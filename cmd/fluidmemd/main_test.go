package main

import "testing"

func TestDefaultScript(t *testing.T) {
	if err := run([]string{"-local", "16", "-guest", "64"}); err != nil {
		t.Fatal(err)
	}
}

func TestHotplugAndTick(t *testing.T) {
	if err := run([]string{"-local", "8", "-guest", "32",
		"-script", "status;hotplug 16;tick 100;status"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownCommand(t *testing.T) {
	if err := run([]string{"-local", "8", "-guest", "32", "-script", "explode"}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestResizeArgValidation(t *testing.T) {
	if err := run([]string{"-local", "8", "-guest", "32", "-script", "resize"}); err == nil {
		t.Fatal("resize without argument accepted")
	}
	if err := run([]string{"-local", "8", "-guest", "32", "-script", "resize banana"}); err == nil {
		t.Fatal("non-numeric resize accepted")
	}
}

func TestBadBackend(t *testing.T) {
	if err := run([]string{"-backend", "abacus"}); err == nil {
		t.Fatal("bad backend accepted")
	}
}
