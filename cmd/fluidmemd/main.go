// Command fluidmemd is a demonstration of FluidMem's operator surface: it
// boots a VM against a chosen backend and then executes a scripted sequence
// of footprint operations (resize, hotplug, service probes), printing the
// monitor's view after each step — the "cloud provider console" the paper's
// §III envisions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fluidmem"
	"fluidmem/internal/core"
	"fluidmem/internal/core/resilience"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/faulty"
	"fluidmem/internal/kvstore/memcached"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/kvstore/replicated"
	"fluidmem/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluidmemd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fluidmemd", flag.ContinueOnError)
	var (
		backend = fs.String("backend", "ramcloud", "dram | ramcloud | memcached")
		localMB = fs.Int("local", 64, "local DRAM budget in MB")
		guestMB = fs.Int("guest", 256, "guest memory in MB")
		script  = fs.String("script", "status;resize 180;probe;resize 80;probe;resize 32768;probe;status",
			"semicolon-separated commands: status | resize <pages> | hotplug <mb> | probe | tick <n> | health | hist")
		seed      = fs.Uint64("seed", 1, "simulation seed")
		replicas  = fs.Int("replicas", 1, "replication factor across backend members")
		chaos     = fs.Float64("chaos", 0, "per-member transient error+spike rate (0 disables injection); enables the resilience policy")
		workers   = fs.Int("workers", 1, "fault-pipeline width: page-address-sharded workers in the monitor")
		elideZero = fs.Bool("elide-zero", false, "elide all-zero evicted pages into the zero bitmap (re-faults resolve with UFFDIO_ZEROPAGE, no store traffic)")
		cleanDrop = fs.Bool("clean-drop", false, "write-protect store-backed installs and drop still-clean eviction victims without a store write")
		traceOut  = fs.String("trace", "", "write a Chrome trace (chrome://tracing / Perfetto) of the run to this file; also enables the hist command")
		vms       = fs.Int("vms", 1, "tenant count: > 1 runs a multi-tenant host sharing the local budget (one VM hot, the rest cold) instead of the scripted single machine")
		arb       = fs.Bool("arbiter", false, "with -vms > 1: rebalance the shared budget each epoch from the ghost-LRU miss-ratio curves (default keeps the static equal split)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *vms > 1 {
		return runHost(*backend, *vms, *arb, *localMB, *seed)
	}
	if *arb {
		return fmt.Errorf("-arbiter needs -vms > 1 (a single tenant has nothing to rebalance)")
	}
	mcfg := fluidmem.MachineConfig{
		Mode:        fluidmem.ModeFluidMem,
		Backend:     fluidmem.Backend(*backend),
		LocalMemory: uint64(*localMB) << 20,
		GuestMemory: uint64(*guestMB) << 20,
		BootOS:      true,
		Seed:        *seed,
	}
	if *traceOut != "" {
		mcfg.Tracer = fluidmem.NewTracer(true)
	}
	if *replicas > 1 || *chaos > 0 || *workers > 1 || *elideZero || *cleanDrop {
		store, err := buildStore(*backend, *replicas, *chaos, *seed)
		if err != nil {
			return err
		}
		mon := core.DefaultConfig(nil, int(mcfg.LocalMemory/fluidmem.PageSize))
		mon.Workers = *workers
		mon.ElideZeroPages = *elideZero
		mon.CleanPageDrop = *cleanDrop
		if *replicas > 1 || *chaos > 0 {
			policy := resilience.DefaultPolicy()
			mon.Resilience = &policy
		}
		mcfg.SharedStore = store
		mcfg.Monitor = &mon
	}
	m, err := fluidmem.NewMachine(mcfg)
	if err != nil {
		return err
	}
	fmt.Printf("fluidmemd: booted %d MB guest on %s, local budget %d MB, resident %d pages (%.1f MB), boot took %v\n",
		*guestMB, *backend, *localMB, m.ResidentPages(), float64(m.ResidentPages())*4/1024, m.Now())

	for _, raw := range strings.Split(*script, ";") {
		fields := strings.Fields(strings.TrimSpace(raw))
		if len(fields) == 0 {
			continue
		}
		fmt.Printf("\n> %s\n", strings.Join(fields, " "))
		if err := execute(m, fields); err != nil {
			return fmt.Errorf("%s: %w", fields[0], err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := m.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote Chrome trace to %s (%d events)\n", *traceOut, len(m.Tracer().Events()))
	}
	return nil
}

// runHost is the multi-tenant console: N guests share one store and one
// local DRAM budget. VM 0 cycles a working set 25% past its equal split
// (steep miss-ratio curve); the others cycle a quarter of theirs (flat
// curves). With -arbiter the host reads the ghost-LRU curves each epoch and
// moves slab grants toward the steep curve; without it the equal split is
// frozen — run both and compare the per-tenant fault counts and shares.
func runHost(backend string, vms int, withArbiter bool, localMB int, seed uint64) error {
	const epochOps, rounds = 512, 8
	totalPages := (localMB << 20) / int(fluidmem.PageSize)
	cfgs := make([]fluidmem.MachineConfig, vms)
	for i := range cfgs {
		cfgs[i] = fluidmem.MachineConfig{
			Backend:     fluidmem.Backend(backend),
			GuestMemory: uint64(totalPages) * fluidmem.PageSize,
		}
	}
	hc := fluidmem.HostConfig{VMs: cfgs, TotalLocalPages: totalPages, Seed: seed}
	if withArbiter {
		hc.Arbiter = &fluidmem.ArbiterConfig{EpochOps: epochOps}
	}
	h, err := fluidmem.NewHost(hc)
	if err != nil {
		return err
	}
	mode := "static equal split"
	if withArbiter {
		mode = "arbiter rebalancing"
	}
	fmt.Printf("fluidmemd: host with %d tenants on %s, %d shared pages (%d MB), %s\n",
		vms, backend, totalPages, localMB, mode)

	equal := totalPages / vms
	spans := make([]int, vms)
	segs := make([]uint64, vms)
	spans[0] = equal + equal/4
	for i := 1; i < vms; i++ {
		spans[i] = equal / 4
		if spans[i] < 1 {
			spans[i] = 1
		}
	}
	for i := 0; i < vms; i++ {
		seg, err := h.Machine(i).Alloc("ws", uint64(spans[i])*fluidmem.PageSize)
		if err != nil {
			return err
		}
		segs[i] = seg.Addr(0)
	}
	for r := 0; r < rounds; r++ {
		for op := 0; op < epochOps; op++ {
			for i := 0; i < vms; i++ {
				addr := segs[i] + uint64((r*epochOps+op)%spans[i])*fluidmem.PageSize
				if _, err := h.Touch(i, addr, op%3 == 0); err != nil {
					return fmt.Errorf("vm%d: %w", i, err)
				}
			}
		}
		st := h.Stats()
		fmt.Printf("epoch %d: t=%v shares=%v wss=%v\n", r+1, st.Now.Round(time.Microsecond), st.Shares, st.WSSPages)
	}
	if err := h.Drain(); err != nil {
		return err
	}

	st := h.Stats()
	fmt.Printf("\n%-6s %6s %7s %5s %10s %11s %10s\n", "vm", "span", "share", "wss", "faults", "ghost-hits", "evictions")
	for i, ms := range st.VMs {
		var faults, hits, evicts uint64
		if ms.Monitor != nil {
			faults, evicts = ms.Monitor.Faults, ms.Monitor.Evictions
		}
		if ms.Hotset != nil {
			hits = ms.Hotset.GhostHits
		}
		fmt.Printf("vm%-4d %6d %7d %5d %10d %11d %10d\n",
			i, spans[i], st.Shares[i], st.WSSPages[i], faults, hits, evicts)
	}
	if withArbiter {
		a := st.Arbiter
		fmt.Printf("arbiter: epochs=%d moves=%d granted=%d donated=%d predicted-savings=%d realized-savings=%d\n",
			a.Epochs, a.Moves, a.GrantedPages, a.DonatedPages, a.PredictedSavings, a.RealizedSavings)
	}
	return nil
}

// buildStore assembles the replicated/chaos store stack for the daemon: N
// backend members, each optionally wrapped in a seeded fault injector, then
// (when replicas > 1) a replication wrapper on top. One member with chaos
// exercises the retry/degraded path alone; replicas add failover masking.
func buildStore(backend string, replicas int, chaos float64, seed uint64) (kvstore.Store, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("replicas must be >= 1, got %d", replicas)
	}
	members := make([]kvstore.Store, replicas)
	for i := range members {
		var inner kvstore.Store
		memberSeed := seed + 200 + uint64(i)
		switch backend {
		case "dram":
			inner = dram.New(dram.DefaultParams(), memberSeed)
		case "ramcloud":
			inner = ramcloud.New(ramcloud.DefaultParams(), memberSeed)
		case "memcached":
			inner = memcached.New(memcached.DefaultParams(), memberSeed)
		default:
			return nil, fmt.Errorf("unknown backend %q", backend)
		}
		if chaos > 0 {
			inner = faulty.Wrap(inner, faulty.Uniform(chaos, chaos), seed+300+uint64(i))
		}
		members[i] = inner
	}
	if replicas == 1 {
		return members[0], nil
	}
	return replicated.New(members...)
}

// unwrapStore peels the tracing decorator (if present) so type assertions
// against concrete backends — e.g. the replication wrapper — still land.
func unwrapStore(s kvstore.Store) kvstore.Store {
	for {
		inner, ok := s.(interface{ Inner() kvstore.Store })
		if !ok {
			return s
		}
		s = inner.Inner()
	}
}

func execute(m *fluidmem.Machine, fields []string) error {
	switch fields[0] {
	case "status":
		st := m.Stats()
		mon := st.Monitor
		fmt.Printf("  t=%v resident=%d pages (%.3f MB) limit=%d faults=%d first-touch=%d remote-reads=%d steals=%d evictions=%d\n",
			st.Now, st.ResidentPages, float64(st.ResidentPages)*4/1024,
			st.FootprintLimit, mon.Faults, mon.FirstTouch, mon.RemoteReads, mon.Steals, mon.Evictions)
		if mon.ZeroElided > 0 || mon.CleanDropped > 0 || mon.ZeroRefills > 0 {
			fmt.Printf("  writeback: zero-elided=%d clean-dropped=%d zero-refills=%d wp-faults=%d\n",
				mon.ZeroElided, mon.CleanDropped, mon.ZeroRefills, st.WPFaults)
		}
		fmt.Printf("  store: %+v\n", *st.Store)
	case "resize":
		if len(fields) != 2 {
			return fmt.Errorf("usage: resize <pages>")
		}
		pages, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		if err := m.ResizeFootprint(pages); err != nil {
			return err
		}
		fmt.Printf("  footprint limit now %d pages, resident %d\n", pages, m.ResidentPages())
	case "hotplug":
		if len(fields) != 2 {
			return fmt.Errorf("usage: hotplug <mb>")
		}
		mb, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		if err := m.Hotplug(uint64(mb) << 20); err != nil {
			return err
		}
		fmt.Printf("  guest memory now %d MB\n", m.VM().MemBytes()>>20)
	case "probe":
		for _, svc := range []vm.Service{vm.SSHService(), vm.ICMPService()} {
			res, err := m.Probe(svc)
			if err != nil {
				return err
			}
			verdict := "TIMEOUT"
			switch {
			case res.Deadlocked:
				verdict = "DEADLOCKED"
			case res.Responded:
				verdict = fmt.Sprintf("OK in %v", res.Elapsed)
			}
			fmt.Printf("  %s @ %d pages: %s\n", svc.Name, res.FootprintPages, verdict)
		}
	case "health":
		st := m.Stats()
		if st.Health == nil {
			fmt.Println("  resilience policy disabled (run with -chaos or -replicas > 1)")
			break
		}
		h := st.Health
		fmt.Printf("  backend %s: consecutive-failures=%d stall=%v",
			h.State, h.ConsecutiveFailures, h.StallTime.Round(time.Microsecond))
		if h.LastError != nil {
			fmt.Printf(" last-error=%q", h.LastError)
		}
		fmt.Println()
		if st.Resilience != nil {
			c := st.Resilience.Counters()
			for _, name := range c.Names() {
				fmt.Printf("  resilience.%s=%d\n", name, c.Get(name))
			}
		}
		if rep, ok := unwrapStore(m.Store()).(*replicated.Store); ok {
			fmt.Printf("  replication: members=%d primary=%d failovers=%d member-errors=%d read-repairs=%d partial-puts=%d\n",
				rep.Members(), rep.Primary(), rep.Failovers(), rep.MemberErrors(), rep.ReadRepairs(), rep.PartialPuts())
		}
	case "hist":
		st := m.Stats()
		if len(st.Phases) == 0 {
			fmt.Println("  no latency histograms (run with -trace <file>)")
			break
		}
		fmt.Printf("  %-18s %7s %9s %12s %12s %12s %12s\n",
			"phase", "worker", "count", "p50", "p90", "p99", "max")
		for _, row := range st.Phases {
			worker := strconv.Itoa(row.Worker)
			if row.Worker == fluidmem.MergedWorkers {
				worker = "all"
			}
			fmt.Printf("  %-18s %7s %9d %12v %12v %12v %12v\n",
				row.Phase, worker, row.Count, row.P50, row.P90, row.P99, row.Max)
		}
	case "tick":
		if len(fields) != 2 {
			return fmt.Errorf("usage: tick <touches>")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		if err := m.OSTick(n); err != nil {
			return err
		}
		fmt.Printf("  OS ticked %d touches, resident %d\n", n, m.ResidentPages())
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
	return nil
}
