// Command fluidmemd is a demonstration of FluidMem's operator surface: it
// boots a VM against a chosen backend and then executes a scripted sequence
// of footprint operations (resize, hotplug, service probes), printing the
// monitor's view after each step — the "cloud provider console" the paper's
// §III envisions.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"fluidmem"
	"fluidmem/internal/core"
	"fluidmem/internal/core/resilience"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/faulty"
	"fluidmem/internal/kvstore/memcached"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/kvstore/replicated"
	"fluidmem/internal/loadgen"
	"fluidmem/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluidmemd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fluidmemd", flag.ContinueOnError)
	var (
		backend = fs.String("backend", "ramcloud", "dram | ramcloud | memcached | cluster")
		localMB = fs.Int("local", 64, "local DRAM budget in MB")
		guestMB = fs.Int("guest", 256, "guest memory in MB")
		script  = fs.String("script", "status;resize 180;probe;resize 80;probe;resize 32768;probe;status",
			"semicolon-separated commands: status | resize <pages> | hotplug <mb> | probe | tick <n> | health | hist")
		seed       = fs.Uint64("seed", 1, "simulation seed")
		replicas   = fs.Int("replicas", 1, "replication factor: backend members (replicated wrapper), or copies per partition with -backend cluster")
		storeNodes = fs.Int("store-nodes", 3, "store node count for -backend cluster")
		failSched  = fs.String("failure-schedule", "", "comma-separated cluster failure events fired as virtual time passes, e.g. 'crash:node2@30s,drain:node1@60s' (ops: crash | drain | partition | heal | recover | add; -backend cluster only)")
		chaos      = fs.Float64("chaos", 0, "per-member transient error+spike rate (0 disables injection); enables the resilience policy")
		workers    = fs.Int("workers", 1, "fault-pipeline width: page-address-sharded workers in the monitor")
		elideZero  = fs.Bool("elide-zero", false, "elide all-zero evicted pages into the zero bitmap (re-faults resolve with UFFDIO_ZEROPAGE, no store traffic)")
		cleanDrop  = fs.Bool("clean-drop", false, "write-protect store-backed installs and drop still-clean eviction victims without a store write")
		traceOut   = fs.String("trace", "", "write a Chrome trace (chrome://tracing / Perfetto) of the run to this file; also enables the hist command")
		vms        = fs.Int("vms", 1, "tenant count: > 1 runs a multi-tenant host sharing the local budget (one VM hot, the rest cold) instead of the scripted single machine")
		arb        = fs.Bool("arbiter", false, "with -vms > 1: rebalance the shared budget each epoch from the ghost-LRU miss-ratio curves (default keeps the static equal split)")
		mkt        = fs.Bool("market", false, "with -vms > 1: run the Memtrade-style marketplace — curve-priced leases with p99-SLO claw-back — instead of the greedy arbiter (mutually exclusive with -arbiter); host console commands: status | slo | market")
		parallel   = fs.Bool("parallel", false, "drive the multi-goroutine data plane directly (real executor goroutines, wall-clock time) instead of the virtual-time machine; script commands: status | resize <pages> | tick <n>")
		scenario   = fs.String("scenario", "", "replay a named open-loop traffic scenario (diurnal | flashcrowd | churn) against a multi-tenant host and print the offered-load/goodput report; -arbiter/-market pick the planner, -rate-scale sweeps the offered load")
		rateScale  = fs.Float64("rate-scale", 1, "with -scenario: multiply every tenant's offered-load curve (the knee-of-curve sweep axis)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenario != "" {
		if *parallel || *vms > 1 {
			return fmt.Errorf("-scenario builds its own tenant population (no -parallel/-vms)")
		}
		if *arb && *mkt {
			return fmt.Errorf("-arbiter and -market are mutually exclusive planners")
		}
		planner := loadgen.PlannerStatic
		switch {
		case *arb:
			planner = loadgen.PlannerArbiter
		case *mkt:
			planner = loadgen.PlannerMarket
		}
		return runScenario(*scenario, planner, *rateScale, *workers, *seed)
	}
	if *parallel {
		switch {
		case *vms > 1 || *arb || *mkt:
			return fmt.Errorf("-parallel runs a single engine (no -vms/-arbiter/-market)")
		case *backend == "cluster" || *failSched != "":
			return fmt.Errorf("-parallel does not support the cluster backend or failure schedules")
		case *replicas > 1 || *chaos > 0:
			return fmt.Errorf("-parallel does not support resilience policies (no -replicas/-chaos)")
		case *traceOut != "":
			return fmt.Errorf("-parallel has no virtual-time spans to trace")
		}
		script := *script
		if !scriptFlagSet(fs) {
			// The machine's default script probes services the parallel
			// console doesn't simulate; substitute a steady-state demo.
			script = "status;tick 20000;status;resize 2048;tick 20000;status"
		}
		return runParallelConsole(*backend, *localMB, *guestMB, script, *seed,
			*workers, *elideZero, *cleanDrop)
	}
	if *vms > 1 {
		if *arb && *mkt {
			return fmt.Errorf("-arbiter and -market are mutually exclusive planners")
		}
		planner := ""
		switch {
		case *arb:
			planner = "arbiter"
		case *mkt:
			planner = "market"
		}
		// With -vms the script speaks the host console (status | slo |
		// market); the single-machine default script would not parse.
		hostScript := "status;slo;market"
		if scriptFlagSet(fs) {
			hostScript = *script
		}
		return runHost(*backend, *vms, planner, *localMB, *seed, hostScript)
	}
	if *arb {
		return fmt.Errorf("-arbiter needs -vms > 1 (a single tenant has nothing to rebalance)")
	}
	if *mkt {
		return fmt.Errorf("-market needs -vms > 1 (a single tenant has nobody to trade with)")
	}
	mcfg := fluidmem.MachineConfig{
		Mode:        fluidmem.ModeFluidMem,
		Backend:     fluidmem.Backend(*backend),
		LocalMemory: uint64(*localMB) << 20,
		GuestMemory: uint64(*guestMB) << 20,
		BootOS:      true,
		Seed:        *seed,
	}
	if *traceOut != "" {
		mcfg.Tracer = fluidmem.NewTracer(true)
	}
	schedule, err := parseFailureSchedule(*failSched)
	if err != nil {
		return err
	}
	if len(schedule) > 0 && *backend != "cluster" {
		return fmt.Errorf("-failure-schedule needs -backend cluster")
	}
	if *backend == "cluster" {
		// The cluster backend brings its own replication; the monitor gets
		// the resilience policy so membership changes (stale epochs, crash
		// windows) are retried instead of surfacing to the guest.
		mcfg.StoreNodes = *storeNodes
		if *replicas > 1 {
			mcfg.StoreReplicas = *replicas
		}
		mon := core.DefaultConfig(nil, int(mcfg.LocalMemory/fluidmem.PageSize))
		mon.Workers = *workers
		mon.ElideZeroPages = *elideZero
		mon.CleanPageDrop = *cleanDrop
		policy := resilience.DefaultPolicy()
		mon.Resilience = &policy
		mcfg.Monitor = &mon
	} else if *replicas > 1 || *chaos > 0 || *workers > 1 || *elideZero || *cleanDrop {
		store, err := buildStore(*backend, *replicas, *chaos, *seed)
		if err != nil {
			return err
		}
		mon := core.DefaultConfig(nil, int(mcfg.LocalMemory/fluidmem.PageSize))
		mon.Workers = *workers
		mon.ElideZeroPages = *elideZero
		mon.CleanPageDrop = *cleanDrop
		if *replicas > 1 || *chaos > 0 {
			policy := resilience.DefaultPolicy()
			mon.Resilience = &policy
		}
		mcfg.SharedStore = store
		mcfg.Monitor = &mon
	}
	m, err := fluidmem.NewMachine(mcfg)
	if err != nil {
		return err
	}
	fmt.Printf("fluidmemd: booted %d MB guest on %s, local budget %d MB, resident %d pages (%.1f MB), boot took %v\n",
		*guestMB, *backend, *localMB, m.ResidentPages(), float64(m.ResidentPages())*4/1024, m.Now())

	for _, raw := range strings.Split(*script, ";") {
		fields := strings.Fields(strings.TrimSpace(raw))
		if len(fields) == 0 {
			continue
		}
		if schedule, err = fireDue(m, schedule, false); err != nil {
			return err
		}
		fmt.Printf("\n> %s\n", strings.Join(fields, " "))
		if err := execute(m, fields); err != nil {
			return fmt.Errorf("%s: %w", fields[0], err)
		}
	}
	if _, err := fireDue(m, schedule, true); err != nil {
		return err
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := m.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote Chrome trace to %s (%d events)\n", *traceOut, len(m.Tracer().Events()))
	}
	return nil
}

// runScenario is the -scenario console: it replays a named open-loop traffic
// scenario (internal/loadgen, DESIGN.md §17) against a live multi-tenant host
// and prints the offered-load/goodput/sojourn report. Everything is virtual
// time, so the same seed prints the same report on every machine.
func runScenario(name string, planner loadgen.Planner, scale float64, workers int, seed uint64) error {
	scen, err := loadgen.NamedScenario(name)
	if err != nil {
		return err
	}
	fmt.Printf("fluidmemd: open-loop scenario %q — %d tenants on %d shared pages, planner %s, rate x%g\n",
		name, len(scen.Tenants), scen.TotalLocalPages, planner, scale)
	rep, err := loadgen.Run(loadgen.Config{
		Scenario:  scen,
		Planner:   planner,
		Workers:   workers,
		Seed:      seed,
		RateScale: scale,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if rep.SojournP99 > scen.P99Target {
		fmt.Printf("p99 sojourn %v EXCEEDS the %v target: this offered load is past the knee\n",
			rep.SojournP99.Round(time.Microsecond), scen.P99Target)
	} else {
		fmt.Printf("p99 sojourn %v meets the %v target: below the knee (try a larger -rate-scale)\n",
			rep.SojournP99.Round(time.Microsecond), scen.P99Target)
	}
	return nil
}

// scriptFlagSet reports whether -script was given explicitly.
func scriptFlagSet(fs *flag.FlagSet) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "script" {
			set = true
		}
	})
	return set
}

// runParallelConsole is the -parallel operator surface: the multi-goroutine
// data plane driven directly, with real executor goroutines and wall-clock
// timing. It speaks the subset of the console that makes sense without the
// virtual-time VM stack — status, resize, tick — and reports wall fault
// rates where the machine console reports virtual time.
func runParallelConsole(backend string, localMB, guestMB int, script string, seed uint64,
	workers int, elideZero, cleanDrop bool) error {
	store, err := buildStore(backend, 1, 0, seed)
	if err != nil {
		return err
	}
	capacity := (localMB << 20) / int(core.PageSize)
	cfg := core.DefaultConfig(store, capacity)
	cfg.Workers = workers
	cfg.ElideZeroPages = elideZero
	cfg.CleanPageDrop = cleanDrop
	cfg.Seed = seed
	var delivered atomic.Uint64
	p, err := core.NewParallel(cfg, nil, "fluidmemd",
		func(shard int, ticket, addr uint64, data []byte) { delivered.Add(1) })
	if err != nil {
		return err
	}
	defer p.Close()
	const base = 0x7b00_0000_0000
	guestPages := (guestMB << 20) / int(core.PageSize)
	if err := p.RegisterRange(base, uint64(guestPages)*core.PageSize, 1); err != nil {
		return err
	}
	fmt.Printf("fluidmemd: parallel data plane on %s, %d executor shard(s), local budget %d pages (%d MB), guest range %d pages\n",
		backend, p.Shards(), capacity, localMB, guestPages)

	next := 0
	start := time.Now()
	for _, raw := range strings.Split(script, ";") {
		fields := strings.Fields(strings.TrimSpace(raw))
		if len(fields) == 0 {
			continue
		}
		fmt.Printf("\n> %s\n", strings.Join(fields, " "))
		switch fields[0] {
		case "status":
			st := p.Stats()
			wb := p.WritebackStats()
			fmt.Printf("  wall=%v resident=%d pages limit=%d faults=%d first-touch=%d remote-reads=%d steals=%d evictions=%d delivered=%d\n",
				time.Since(start).Round(time.Millisecond), p.ResidentPages(), p.FootprintLimit(),
				st.Faults, st.FirstTouch, st.RemoteReads, st.Steals, st.Evictions, delivered.Load())
			if st.ZeroElided > 0 || st.CleanDropped > 0 || st.ZeroRefills > 0 {
				fmt.Printf("  writeback: zero-elided=%d clean-dropped=%d zero-refills=%d wp-faults=%d flushes=%d flushed-pages=%d\n",
					st.ZeroElided, st.CleanDropped, st.ZeroRefills, p.WPFaults(), wb.Flushes, wb.FlushedPages)
			}
			fmt.Printf("  store: %+v\n", store.Stats())
		case "resize":
			if len(fields) != 2 {
				return fmt.Errorf("usage: resize <pages>")
			}
			pages, err := strconv.Atoi(fields[1])
			if err != nil {
				return err
			}
			if err := p.Resize(pages); err != nil {
				return err
			}
			fmt.Printf("  footprint limit now %d pages, resident %d\n", pages, p.ResidentPages())
		case "tick":
			if len(fields) != 2 {
				return fmt.Errorf("usage: tick <touches>")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return err
			}
			tickStart := time.Now()
			for k := 0; k < n; k++ {
				if err := p.Touch(base+uint64(next%guestPages)*core.PageSize, next%3 == 0); err != nil {
					return err
				}
				next++
			}
			wall := time.Since(tickStart)
			fmt.Printf("  %d touches in %v (%.0f wall faults/sec), resident %d\n",
				n, wall.Round(time.Millisecond), float64(n)/wall.Seconds(), p.ResidentPages())
		default:
			return fmt.Errorf("command %q not available with -parallel (status | resize <pages> | tick <n>)", fields[0])
		}
	}
	if err := p.Drain(); err != nil {
		return err
	}
	return p.Err()
}

// runHost is the multi-tenant console: N named tenants share one store and
// one local DRAM budget. Tenant "hot" cycles a working set 25% past its
// equal split (steep miss-ratio curve); the "coldN" tenants cycle a quarter
// of theirs (flat curves) under a tight p99 fault-latency SLO. With
// -arbiter the host reads the ghost-LRU curves each epoch and greedily
// moves slab grants toward the steep curve — SLO-blind. With -market the
// same curves price leases in the marketplace, and a cold tenant whose
// donations push its window p99 past its target gets its leases clawed
// back. Without either, the equal split is frozen but SLO windows still
// run. After the drive, the script runs against the host console: status |
// slo | market.
func runHost(backend string, vms int, planner string, localMB int, seed uint64, script string) error {
	const epochOps, rounds = 512, 8
	totalPages := (localMB << 20) / int(fluidmem.PageSize)
	equal := totalPages / vms
	spans := make([]int, vms)
	spans[0] = equal + equal/4
	for i := 1; i < vms; i++ {
		spans[i] = equal / 4
		if spans[i] < 1 {
			spans[i] = 1
		}
	}
	specs := make([]fluidmem.TenantSpec, vms)
	for i := range specs {
		mc := fluidmem.MachineConfig{
			Backend:     fluidmem.Backend(backend),
			GuestMemory: uint64(totalPages) * fluidmem.PageSize,
		}
		if i == 0 {
			specs[i] = fluidmem.TenantSpec{ID: "hot", VM: mc}
			continue
		}
		// The cold tenants are the marketplace's protected class: donors
		// with a p99 target below any store's fault latency, so donation-
		// induced faulting violates the SLO and triggers claw-back.
		specs[i] = fluidmem.TenantSpec{
			ID:     fmt.Sprintf("cold%d", i),
			VM:     mc,
			Policy: fluidmem.TenantPolicy{SLO: time.Microsecond},
		}
	}
	hc := fluidmem.HostConfig{Tenants: specs, TotalLocalPages: totalPages, Seed: seed, EpochOps: epochOps}
	mode := "static equal split"
	switch planner {
	case "arbiter":
		hc.Arbiter = &fluidmem.ArbiterConfig{EpochOps: epochOps}
		mode = "arbiter rebalancing"
	case "market":
		hc.Market = &fluidmem.MarketConfig{EpochOps: epochOps}
		mode = "marketplace (SLO claw-back)"
	}
	h, err := fluidmem.NewHost(hc)
	if err != nil {
		return err
	}
	fmt.Printf("fluidmemd: host with %d tenants on %s, %d shared pages (%d MB), %s\n",
		vms, backend, totalPages, localMB, mode)

	segs := make([]uint64, vms)
	for i := 0; i < vms; i++ {
		seg, err := h.Machine(i).Alloc("ws", uint64(spans[i])*fluidmem.PageSize)
		if err != nil {
			return err
		}
		segs[i] = seg.Addr(0)
	}
	for r := 0; r < rounds; r++ {
		for op := 0; op < epochOps; op++ {
			for i := 0; i < vms; i++ {
				addr := segs[i] + uint64((r*epochOps+op)%spans[i])*fluidmem.PageSize
				if _, err := h.Touch(i, addr, op%3 == 0); err != nil {
					return fmt.Errorf("%s: %w", specs[i].ID, err)
				}
			}
		}
		st := h.Stats()
		fmt.Printf("epoch %d: t=%v shares=%v wss=%v\n", r+1, st.Now.Round(time.Microsecond), st.Shares, st.WSSPages)
	}
	if err := h.Drain(); err != nil {
		return err
	}

	for _, raw := range strings.Split(script, ";") {
		fields := strings.Fields(strings.TrimSpace(raw))
		if len(fields) == 0 {
			continue
		}
		fmt.Printf("\n> %s\n", strings.Join(fields, " "))
		if err := executeHost(h, spans, fields); err != nil {
			return fmt.Errorf("%s: %w", fields[0], err)
		}
	}
	return nil
}

// executeHost runs one host-console command: the multi-tenant analogues of
// the single-machine status/health surface.
func executeHost(h *fluidmem.Host, spans []int, fields []string) error {
	st := h.Stats()
	switch fields[0] {
	case "status":
		fmt.Printf("  %-8s %6s %7s %5s %10s %11s %10s\n", "tenant", "span", "share", "wss", "faults", "ghost-hits", "evictions")
		for i, ms := range st.VMs {
			var faults, hits, evicts uint64
			if ms.Monitor != nil {
				faults, evicts = ms.Monitor.Faults, ms.Monitor.Evictions
			}
			if ms.Hotset != nil {
				hits = ms.Hotset.GhostHits
			}
			fmt.Printf("  %-8s %6d %7d %5d %10d %11d %10d\n",
				st.Tenants[i].ID, spans[i], st.Shares[i], st.WSSPages[i], faults, hits, evicts)
		}
		if a := st.Arbiter; a.Epochs > 0 {
			fmt.Printf("  planner: epochs=%d moves=%d granted=%d donated=%d predicted-savings=%d realized-savings=%d\n",
				a.Epochs, a.Moves, a.GrantedPages, a.DonatedPages, a.PredictedSavings, a.RealizedSavings)
		}
	case "slo":
		fmt.Printf("  %-8s %10s %8s %10s %12s %12s\n", "tenant", "target", "windows", "violations", "last-p99", "last-faults")
		for _, ts := range st.Tenants {
			target := "-"
			if ts.Policy.SLO > 0 {
				target = ts.Policy.SLO.String()
			}
			fmt.Printf("  %-8s %10s %8d %10d %12v %12d\n",
				ts.ID, target, ts.SLO.Windows, ts.SLO.Violations, ts.SLO.LastP99, ts.SLO.LastFaults)
		}
	case "market":
		if st.Market == nil {
			fmt.Println("  marketplace not running (use -market)")
			break
		}
		m := st.Market
		fmt.Printf("  epochs=%d slo-enforced=%d slo-violations=%d leases=%d leased-pages=%d clawbacks=%d clawed-pages=%d predicted-savings=%d\n",
			m.Epochs, m.SLOEnforcedEpochs, m.SLOViolations, m.Leases, m.LeasedPages, m.Clawbacks, m.ClawedPages, m.PredictedSavings)
		if len(st.Leases) == 0 {
			fmt.Println("  lease book: empty")
			break
		}
		fmt.Printf("  %-6s %-8s %-8s %6s %7s %7s\n", "lease", "from", "to", "pages", "epoch", "price")
		for _, l := range st.Leases {
			fmt.Printf("  %-6d %-8s %-8s %6d %7d %7d\n", l.ID, l.From, l.To, l.Pages, l.Epoch, l.Price)
		}
	default:
		return fmt.Errorf("unknown host command %q (status | slo | market)", fields[0])
	}
	return nil
}

// buildStore assembles the replicated/chaos store stack for the daemon: N
// backend members, each optionally wrapped in a seeded fault injector, then
// (when replicas > 1) a replication wrapper on top. One member with chaos
// exercises the retry/degraded path alone; replicas add failover masking.
func buildStore(backend string, replicas int, chaos float64, seed uint64) (kvstore.Store, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("replicas must be >= 1, got %d", replicas)
	}
	members := make([]kvstore.Store, replicas)
	for i := range members {
		var inner kvstore.Store
		memberSeed := seed + 200 + uint64(i)
		switch backend {
		case "dram":
			inner = dram.New(dram.DefaultParams(), memberSeed)
		case "ramcloud":
			inner = ramcloud.New(ramcloud.DefaultParams(), memberSeed)
		case "memcached":
			inner = memcached.New(memcached.DefaultParams(), memberSeed)
		default:
			return nil, fmt.Errorf("unknown backend %q", backend)
		}
		if chaos > 0 {
			inner = faulty.Wrap(inner, faulty.Uniform(chaos, chaos), seed+300+uint64(i))
		}
		members[i] = inner
	}
	if replicas == 1 {
		return members[0], nil
	}
	return replicated.New(members...)
}

// failureEvent is one entry of the -failure-schedule: a membership or
// failure operation against the cluster pool at a virtual-time mark.
type failureEvent struct {
	op   string // crash | drain | partition | heal | recover | add
	node string // empty for recover/add
	at   time.Duration
}

// parseFailureSchedule parses "crash:node2@30s,drain:node1@60s" into events
// sorted by time.
func parseFailureSchedule(s string) ([]failureEvent, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var events []failureEvent
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		spec, atStr, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("failure-schedule %q: want <op>[:<node>]@<time>", item)
		}
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return nil, fmt.Errorf("failure-schedule %q: %w", item, err)
		}
		op, node, _ := strings.Cut(spec, ":")
		switch op {
		case "crash", "drain", "partition", "heal":
			if node == "" {
				return nil, fmt.Errorf("failure-schedule %q: %s needs a node name", item, op)
			}
		case "recover", "add":
			if node != "" {
				return nil, fmt.Errorf("failure-schedule %q: %s takes no node name", item, op)
			}
		default:
			return nil, fmt.Errorf("failure-schedule %q: unknown op %q", item, op)
		}
		events = append(events, failureEvent{op: op, node: node, at: at})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })
	return events, nil
}

// fireDue applies every scheduled event whose time has passed on the
// machine's virtual clock (all of them when flush is set, so a schedule that
// outlives the script still runs to completion) and returns the remainder.
func fireDue(m *fluidmem.Machine, events []failureEvent, flush bool) ([]failureEvent, error) {
	pool := m.ClusterPool()
	for len(events) > 0 && (flush || events[0].at <= m.Now()) {
		ev := events[0]
		events = events[1:]
		now := m.Now()
		var err error
		var note string
		switch ev.op {
		case "crash":
			err = pool.Crash(now, ev.node)
			note = fmt.Sprintf("crashed %s (abrupt: its copies are gone until recover)", ev.node)
		case "drain":
			var done time.Duration
			done, err = pool.Drain(now, ev.node)
			note = fmt.Sprintf("drained %s (copy-then-cutover done at %v, epoch %d)", ev.node, done, pool.Committed().Epoch)
		case "partition":
			err = pool.PartitionNode(ev.node)
			note = fmt.Sprintf("partitioned %s from the fabric", ev.node)
		case "heal":
			var done time.Duration
			done, err = pool.HealNode(now, ev.node)
			note = fmt.Sprintf("healed %s (resynced at %v)", ev.node, done)
		case "recover":
			var done time.Duration
			var copied int
			done, copied, err = pool.Recover(now)
			note = fmt.Sprintf("recovered crashed nodes (%d copies restored by %v, epoch %d)", copied, done, pool.Committed().Epoch)
		case "add":
			var name string
			var done time.Duration
			name, done, err = pool.AddNode(now)
			note = fmt.Sprintf("added %s (populated at %v, epoch %d)", name, done, pool.Committed().Epoch)
		}
		if err != nil {
			return events, fmt.Errorf("failure-schedule %s:%s@%v: %w", ev.op, ev.node, ev.at, err)
		}
		fmt.Printf("\n! t=%v %s\n", now, note)
	}
	return events, nil
}

// unwrapStore peels the tracing decorator (if present) so type assertions
// against concrete backends — e.g. the replication wrapper — still land.
func unwrapStore(s kvstore.Store) kvstore.Store {
	for {
		inner, ok := s.(interface{ Inner() kvstore.Store })
		if !ok {
			return s
		}
		s = inner.Inner()
	}
}

func execute(m *fluidmem.Machine, fields []string) error {
	switch fields[0] {
	case "status":
		st := m.Stats()
		mon := st.Monitor
		fmt.Printf("  t=%v resident=%d pages (%.3f MB) limit=%d faults=%d first-touch=%d remote-reads=%d steals=%d evictions=%d\n",
			st.Now, st.ResidentPages, float64(st.ResidentPages)*4/1024,
			st.FootprintLimit, mon.Faults, mon.FirstTouch, mon.RemoteReads, mon.Steals, mon.Evictions)
		if mon.ZeroElided > 0 || mon.CleanDropped > 0 || mon.ZeroRefills > 0 {
			fmt.Printf("  writeback: zero-elided=%d clean-dropped=%d zero-refills=%d wp-faults=%d\n",
				mon.ZeroElided, mon.CleanDropped, mon.ZeroRefills, st.WPFaults)
		}
		fmt.Printf("  store: %+v\n", *st.Store)
	case "resize":
		if len(fields) != 2 {
			return fmt.Errorf("usage: resize <pages>")
		}
		pages, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		if err := m.ResizeFootprint(pages); err != nil {
			return err
		}
		fmt.Printf("  footprint limit now %d pages, resident %d\n", pages, m.ResidentPages())
	case "hotplug":
		if len(fields) != 2 {
			return fmt.Errorf("usage: hotplug <mb>")
		}
		mb, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		if err := m.Hotplug(uint64(mb) << 20); err != nil {
			return err
		}
		fmt.Printf("  guest memory now %d MB\n", m.VM().MemBytes()>>20)
	case "probe":
		for _, svc := range []vm.Service{vm.SSHService(), vm.ICMPService()} {
			res, err := m.Probe(svc)
			if err != nil {
				return err
			}
			verdict := "TIMEOUT"
			switch {
			case res.Deadlocked:
				verdict = "DEADLOCKED"
			case res.Responded:
				verdict = fmt.Sprintf("OK in %v", res.Elapsed)
			}
			fmt.Printf("  %s @ %d pages: %s\n", svc.Name, res.FootprintPages, verdict)
		}
	case "health":
		st := m.Stats()
		if st.Health == nil {
			fmt.Println("  resilience policy disabled (run with -chaos or -replicas > 1)")
			break
		}
		h := st.Health
		fmt.Printf("  backend %s: consecutive-failures=%d stall=%v",
			h.State, h.ConsecutiveFailures, h.StallTime.Round(time.Microsecond))
		if h.LastError != nil {
			fmt.Printf(" last-error=%q", h.LastError)
		}
		fmt.Println()
		if st.Resilience != nil {
			c := st.Resilience.Counters()
			for _, name := range c.Names() {
				fmt.Printf("  resilience.%s=%d\n", name, c.Get(name))
			}
		}
		if rep, ok := unwrapStore(m.Store()).(*replicated.Store); ok {
			fmt.Printf("  replication: members=%d primary=%d failovers=%d member-errors=%d read-repairs=%d partial-puts=%d\n",
				rep.Members(), rep.Primary(), rep.Failovers(), rep.MemberErrors(), rep.ReadRepairs(), rep.PartialPuts())
		}
		if pool := m.ClusterPool(); pool != nil {
			c := pool.ClusterStats()
			fmt.Printf("  cluster: epoch=%d nodes=%v replicas=%d stale-rejects=%d refreshes=%d failovers=%d partial-puts=%d read-repairs=%d re-replicated=%d\n",
				c.Epoch, pool.NodeNames(), c.Replicas, c.StaleRejects, c.Refreshes, c.Failovers, c.PartialPuts, c.ReadRepairs, c.Rereplicated)
		}
	case "hist":
		st := m.Stats()
		if len(st.Phases) == 0 {
			fmt.Println("  no latency histograms (run with -trace <file>)")
			break
		}
		fmt.Printf("  %-18s %7s %9s %12s %12s %12s %12s\n",
			"phase", "worker", "count", "p50", "p90", "p99", "max")
		for _, row := range st.Phases {
			worker := strconv.Itoa(row.Worker)
			if row.Worker == fluidmem.MergedWorkers {
				worker = "all"
			}
			fmt.Printf("  %-18s %7s %9d %12v %12v %12v %12v\n",
				row.Phase, worker, row.Count, row.P50, row.P90, row.P99, row.Max)
		}
	case "tick":
		if len(fields) != 2 {
			return fmt.Errorf("usage: tick <touches>")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		if err := m.OSTick(n); err != nil {
			return err
		}
		fmt.Printf("  OS ticked %d touches, resident %d\n", n, m.ResidentPages())
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
	return nil
}
