// Command fluidmemd is a demonstration of FluidMem's operator surface: it
// boots a VM against a chosen backend and then executes a scripted sequence
// of footprint operations (resize, hotplug, service probes), printing the
// monitor's view after each step — the "cloud provider console" the paper's
// §III envisions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fluidmem"
	"fluidmem/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluidmemd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fluidmemd", flag.ContinueOnError)
	var (
		backend = fs.String("backend", "ramcloud", "dram | ramcloud | memcached")
		localMB = fs.Int("local", 64, "local DRAM budget in MB")
		guestMB = fs.Int("guest", 256, "guest memory in MB")
		script  = fs.String("script", "status;resize 180;probe;resize 80;probe;resize 32768;probe;status",
			"semicolon-separated commands: status | resize <pages> | hotplug <mb> | probe | tick <n>")
		seed = fs.Uint64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := fluidmem.NewMachine(fluidmem.MachineConfig{
		Mode:        fluidmem.ModeFluidMem,
		Backend:     fluidmem.Backend(*backend),
		LocalMemory: uint64(*localMB) << 20,
		GuestMemory: uint64(*guestMB) << 20,
		BootOS:      true,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("fluidmemd: booted %d MB guest on %s, local budget %d MB, resident %d pages (%.1f MB), boot took %v\n",
		*guestMB, *backend, *localMB, m.ResidentPages(), float64(m.ResidentPages())*4/1024, m.Now())

	for _, raw := range strings.Split(*script, ";") {
		fields := strings.Fields(strings.TrimSpace(raw))
		if len(fields) == 0 {
			continue
		}
		fmt.Printf("\n> %s\n", strings.Join(fields, " "))
		if err := execute(m, fields); err != nil {
			return fmt.Errorf("%s: %w", fields[0], err)
		}
	}
	return nil
}

func execute(m *fluidmem.Machine, fields []string) error {
	switch fields[0] {
	case "status":
		st := m.Monitor().Stats()
		fmt.Printf("  t=%v resident=%d pages (%.3f MB) limit=%d faults=%d first-touch=%d remote-reads=%d steals=%d evictions=%d\n",
			m.Now(), m.ResidentPages(), float64(m.ResidentPages())*4/1024,
			m.Monitor().FootprintLimit(), st.Faults, st.FirstTouch, st.RemoteReads, st.Steals, st.Evictions)
		fmt.Printf("  store: %+v\n", m.Store().Stats())
	case "resize":
		if len(fields) != 2 {
			return fmt.Errorf("usage: resize <pages>")
		}
		pages, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		if err := m.ResizeFootprint(pages); err != nil {
			return err
		}
		fmt.Printf("  footprint limit now %d pages, resident %d\n", pages, m.ResidentPages())
	case "hotplug":
		if len(fields) != 2 {
			return fmt.Errorf("usage: hotplug <mb>")
		}
		mb, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		if err := m.Hotplug(uint64(mb) << 20); err != nil {
			return err
		}
		fmt.Printf("  guest memory now %d MB\n", m.VM().MemBytes()>>20)
	case "probe":
		for _, svc := range []vm.Service{vm.SSHService(), vm.ICMPService()} {
			res, err := m.Probe(svc)
			if err != nil {
				return err
			}
			verdict := "TIMEOUT"
			switch {
			case res.Deadlocked:
				verdict = "DEADLOCKED"
			case res.Responded:
				verdict = fmt.Sprintf("OK in %v", res.Elapsed)
			}
			fmt.Printf("  %s @ %d pages: %s\n", svc.Name, res.FootprintPages, verdict)
		}
	case "tick":
		if len(fields) != 2 {
			return fmt.Errorf("usage: tick <touches>")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		if err := m.OSTick(n); err != nil {
			return err
		}
		fmt.Printf("  OS ticked %d touches, resident %d\n", n, m.ResidentPages())
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
	return nil
}
