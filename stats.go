package fluidmem

import (
	"io"
	"time"

	"fluidmem/internal/arbiter"
	"fluidmem/internal/core"
	"fluidmem/internal/core/resilience"
	"fluidmem/internal/hotset"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/trace"
)

// Tracer collects virtual-time events and per-phase latency histograms from
// the fault pipeline. Pass one in MachineConfig.Tracer; read it back through
// Machine.Stats (histogram rows) or Machine.WriteTrace (Chrome trace JSON).
// Tracing is pure observation: same seed, same simulated results, traced or
// not.
type Tracer = trace.Tracer

// NewTracer returns a tracer. keepEvents retains the full event log (needed
// for WriteTrace); false keeps only the histograms — the cheap mode for
// long runs that want percentiles without an event log in memory.
func NewTracer(keepEvents bool) *Tracer { return trace.New(keepEvents) }

// MergedWorkers is the PhaseLatency.Worker value of the row that merges a
// phase's histogram across all workers.
const MergedWorkers = trace.MergedWorker

// Counter-set aliases: the stable public names for the per-layer counter
// structs that previously had to be imported from internal packages.
type (
	// MonitorCounters are the fault-handler counters (faults, first-touch,
	// remote reads, steals, evictions, ...).
	MonitorCounters = core.Stats
	// WritebackCounters are the write-back engine counters (flushes,
	// coalesced re-evictions, zero-bitmap activity).
	WritebackCounters = core.WritebackStats
	// ResilienceCounters are the fault-handling policy layer's intervention
	// counters (retries, failovers, degraded stalls).
	ResilienceCounters = resilience.Stats
	// StoreCounters are the key-value backend traffic counters.
	StoreCounters = kvstore.Stats
	// StoreHealth is the resilience layer's backend health signal.
	StoreHealth = resilience.Health
	// CompressCounters are the compressed-tier counters.
	CompressCounters = core.CompressStats
	// PhaseLatency is one per-phase latency histogram row: count and
	// p50/p90/p99/max in virtual time, per worker or merged (Worker ==
	// trace.MergedWorker, i.e. -1).
	PhaseLatency = trace.PhaseStats
	// HotsetParams sizes the ghost-LRU working-set estimator
	// (MachineConfig.Hotset).
	HotsetParams = hotset.Params
	// HotsetCounters is the estimator's snapshot: fault/ghost-hit/eviction
	// counters plus the miss-ratio curve beyond the resident capacity.
	HotsetCounters = hotset.Snapshot
	// ArbiterCounters are the host arbiter's cumulative epoch counters
	// (moves, page flow, predicted vs realized fault savings).
	ArbiterCounters = arbiter.Stats
)

// DefaultHotsetParams sizes an estimator for a machine with the given local
// buffer capacity in pages: the ghost list shadows one full capacity's worth
// of evictions in 16 curve buckets.
func DefaultHotsetParams(lruCapacityPages int) HotsetParams {
	return hotset.DefaultParams(lruCapacityPages)
}

// Stats is the machine's aggregated telemetry snapshot: every layer's
// counters plus the tracer's phase-latency histograms behind one call, so
// tools and examples no longer reach into internal packages. Pointer fields
// are nil when the corresponding subsystem is disabled or absent (e.g.
// Monitor in ModeSwap, Resilience without a policy, Phases without a
// tracer).
type Stats struct {
	// Now is the virtual clock at snapshot time.
	Now time.Duration
	// ResidentPages is the guest's local-DRAM footprint in pages.
	ResidentPages int
	// FootprintLimit is the monitor's LRU capacity in pages (0 in ModeSwap).
	FootprintLimit int
	// Workers is the fault-pipeline width (0 in ModeSwap).
	Workers int

	// Monitor holds the fault-handler counters (nil in ModeSwap).
	Monitor *MonitorCounters
	// Writeback holds the write-back engine counters (nil in ModeSwap).
	Writeback *WritebackCounters
	// Store holds backend traffic counters (nil in ModeSwap).
	Store *StoreCounters
	// WPFaults counts clean-tracking write-protect faults (CleanPageDrop).
	WPFaults uint64

	// Resilience and Health are non-nil when the resilience policy is on.
	Resilience *ResilienceCounters
	Health     *StoreHealth
	// Compress is non-nil when the compressed tier is enabled.
	Compress *CompressCounters

	// Hotset is non-nil when the ghost-LRU estimator is attached; WSSPages
	// is then its 90th-percentile working-set estimate (pages the guest
	// would need resident to absorb 90% of the observed re-reference
	// faults).
	Hotset   *HotsetCounters
	WSSPages int

	// Phases holds the tracer's per-phase latency histogram rows, sorted by
	// phase then worker with each phase's merged row first. Nil without a
	// tracer.
	Phases []PhaseLatency
}

// Stats returns the machine's aggregated telemetry snapshot.
func (m *Machine) Stats() Stats {
	st := Stats{
		Now:           m.now,
		ResidentPages: m.vm.ResidentPages(),
	}
	if m.monitor == nil {
		return st
	}
	mon := m.monitor.Stats()
	wb := m.monitor.WritebackStats()
	store := m.store.Stats()
	st.FootprintLimit = m.monitor.FootprintLimit()
	st.Workers = m.monitor.Workers()
	st.Monitor = &mon
	st.Writeback = &wb
	st.Store = &store
	st.WPFaults = m.monitor.WPFaults()
	if rs, ok := m.monitor.ResilienceStats(); ok {
		st.Resilience = &rs
	}
	if h, ok := m.monitor.StoreHealth(); ok {
		st.Health = &h
	}
	if cs, ok := m.monitor.CompressStats(); ok {
		st.Compress = &cs
	}
	if hs := m.monitor.Hotset(); hs != nil {
		snap := hs.Snapshot()
		st.Hotset = &snap
		st.WSSPages = snap.WSSEstimate(m.monitor.FootprintLimit(), 90)
	}
	st.Phases = m.Tracer().Snapshot()
	return st
}

// Tracer returns the tracer threaded through the machine's fault pipeline,
// nil when tracing is disabled (a nil *Tracer is safe to call).
func (m *Machine) Tracer() *Tracer {
	if m.monitor == nil {
		return m.cfg.Tracer
	}
	return m.monitor.Tracer()
}

// WriteTrace emits the machine's event log in Chrome trace event format
// (load it in chrome://tracing or Perfetto). The tracer must have been
// created with keepEvents; without a tracer an empty trace is written.
func (m *Machine) WriteTrace(w io.Writer) error {
	return m.Tracer().WriteChromeTrace(w)
}

