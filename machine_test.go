package fluidmem

import (
	"errors"
	"testing"
	"time"

	"fluidmem/internal/vm"
)

func newFluidMachine(t *testing.T, backend Backend, localMB, guestMB int, boot bool) *Machine {
	t.Helper()
	m, err := NewMachine(MachineConfig{
		Mode:        ModeFluidMem,
		Backend:     backend,
		LocalMemory: uint64(localMB) << 20,
		GuestMemory: uint64(guestMB) << 20,
		BootOS:      boot,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newSwapMachine(t *testing.T, dev SwapDevice, localMB, guestMB int, boot bool) *Machine {
	t.Helper()
	m, err := NewMachine(MachineConfig{
		Mode:        ModeSwap,
		SwapDev:     dev,
		LocalMemory: uint64(localMB) << 20,
		GuestMemory: uint64(guestMB) << 20,
		BootOS:      boot,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineValidation(t *testing.T) {
	if _, err := NewMachine(MachineConfig{LocalMemory: 0, GuestMemory: 1 << 20}); err == nil {
		t.Fatal("zero local memory accepted")
	}
	if _, err := NewMachine(MachineConfig{LocalMemory: 2 << 20, GuestMemory: 1 << 20}); err == nil {
		t.Fatal("guest < local accepted")
	}
	if _, err := NewMachine(MachineConfig{Backend: "bogus", LocalMemory: 1 << 20, GuestMemory: 2 << 20}); err == nil {
		t.Fatal("bogus backend accepted")
	}
	if _, err := NewMachine(MachineConfig{Mode: ModeSwap, SwapDev: "bogus", LocalMemory: 1 << 20, GuestMemory: 2 << 20}); err == nil {
		t.Fatal("bogus swap device accepted")
	}
}

func TestFluidMemReadWriteRoundTrip(t *testing.T) {
	m := newFluidMachine(t, BackendRAMCloud, 1, 8, false)
	seg, err := m.Alloc("heap", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Write a pattern across more memory than the 1 MB local budget, then
	// read it all back: every word must survive disaggregation.
	words := seg.Pages() // one word per page
	for i := 0; i < words; i++ {
		if err := m.Write64(seg.Addr(uint64(i)*PageSize), uint64(i)*3+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < words; i++ {
		got, err := m.Read64(seg.Addr(uint64(i) * PageSize))
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(i)*3+1 {
			t.Fatalf("word %d = %d", i, got)
		}
	}
	if m.ResidentPages() > int((1<<20)/PageSize) {
		t.Fatalf("resident %d pages exceeds local budget", m.ResidentPages())
	}
	if m.Monitor().Stats().Evictions == 0 {
		t.Fatal("workload bigger than local memory caused no evictions")
	}
}

func TestSwapMachineRoundTrip(t *testing.T) {
	m := newSwapMachine(t, SwapDRAM, 1, 8, false)
	seg, err := m.Alloc("heap", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	words := seg.Pages()
	for i := 0; i < words; i++ {
		if err := m.Write64(seg.Addr(uint64(i)*PageSize), uint64(i)+7); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < words; i++ {
		got, err := m.Read64(seg.Addr(uint64(i) * PageSize))
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(i)+7 {
			t.Fatalf("word %d = %d", i, got)
		}
	}
	if m.Swap().Stats().SwapOuts == 0 {
		t.Fatal("no swap activity despite memory pressure")
	}
}

func TestBootPopulatesOS(t *testing.T) {
	m := newFluidMachine(t, BackendDRAM, 32, 128, true)
	if m.OS() == nil {
		t.Fatal("no OS after boot")
	}
	if m.Now() <= 0 {
		t.Fatal("boot consumed no virtual time")
	}
	if m.ResidentPages() == 0 {
		t.Fatal("no resident pages after boot")
	}
}

func TestVirtualClockAdvancesMonotonically(t *testing.T) {
	m := newFluidMachine(t, BackendRAMCloud, 1, 8, false)
	seg, _ := m.Alloc("heap", 2<<20)
	prev := m.Now()
	for i := 0; i < 200; i++ {
		if err := m.Write64(seg.Addr(uint64(i%seg.Pages())*PageSize), uint64(i)); err != nil {
			t.Fatal(err)
		}
		if m.Now() < prev {
			t.Fatal("clock went backwards")
		}
		prev = m.Now()
	}
	m.AdvanceCPU(time.Millisecond)
	if m.Now() != prev+time.Millisecond {
		t.Fatal("AdvanceCPU wrong")
	}
	m.AdvanceCPU(-time.Second)
	if m.Now() != prev+time.Millisecond {
		t.Fatal("negative AdvanceCPU should be ignored")
	}
}

func TestResizeFootprintFluidMem(t *testing.T) {
	m := newFluidMachine(t, BackendRAMCloud, 4, 32, true)
	before := m.ResidentPages()
	if before == 0 {
		t.Fatal("nothing resident after boot")
	}
	if err := m.ResizeFootprint(180); err != nil {
		t.Fatal(err)
	}
	if m.ResidentPages() > 180 {
		t.Fatalf("resident = %d after resize to 180", m.ResidentPages())
	}
	// Grow back and touch evicted memory.
	if err := m.ResizeFootprint(before); err != nil {
		t.Fatal(err)
	}
	if err := m.OSTick(50); err != nil {
		t.Fatal(err)
	}
}

func TestResizeFootprintSwapRefused(t *testing.T) {
	m := newSwapMachine(t, SwapNVMeoF, 4, 32, false)
	if err := m.ResizeFootprint(100); err == nil {
		t.Fatal("swap machine allowed footprint resize without guest cooperation")
	}
}

func TestHotplugGrowsGuest(t *testing.T) {
	m := newFluidMachine(t, BackendRAMCloud, 1, 2, false)
	if _, err := m.Alloc("big", 3<<20); !errors.Is(err, vm.ErrOutOfMemory) {
		t.Fatalf("err = %v, want out of memory", err)
	}
	if err := m.Hotplug(4 << 20); err != nil {
		t.Fatal(err)
	}
	seg, err := m.Alloc("big", 3<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Hotplugged memory must be usable end to end.
	if err := m.Write64(seg.Addr(seg.Bytes-PageSize), 99); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read64(seg.Addr(seg.Bytes - PageSize))
	if err != nil || got != 99 {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestProbeRequiresBoot(t *testing.T) {
	m := newFluidMachine(t, BackendDRAM, 4, 16, false)
	if _, err := m.Probe(vm.ICMPService()); err == nil {
		t.Fatal("probe without boot accepted")
	}
}

func TestTableIIIScenario(t *testing.T) {
	// The headline Table III walk: squeeze a booted FluidMem VM to 180
	// pages (SSH + ICMP respond), then 80 (ICMP only), then revive it.
	m, err := NewMachine(MachineConfig{
		Mode:        ModeFluidMem,
		Backend:     BackendRAMCloud,
		LocalMemory: 64 << 20,
		GuestMemory: 256 << 20,
		BootOS:      true,
		OSProfile:   vm.ScaledOSProfile(8000),
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ResizeFootprint(180); err != nil {
		t.Fatal(err)
	}
	ssh, err := m.Probe(vm.SSHService())
	if err != nil {
		t.Fatal(err)
	}
	if !ssh.Responded {
		t.Fatalf("SSH at 180 pages: %+v", ssh)
	}
	if err := m.ResizeFootprint(80); err != nil {
		t.Fatal(err)
	}
	ssh80, err := m.Probe(vm.SSHService())
	if err != nil {
		t.Fatal(err)
	}
	if ssh80.Responded {
		t.Fatal("SSH responded at 80 pages")
	}
	icmp80, err := m.Probe(vm.ICMPService())
	if err != nil {
		t.Fatal(err)
	}
	if !icmp80.Responded {
		t.Fatal("ICMP failed at 80 pages")
	}
	// Revive.
	if err := m.ResizeFootprint(4096); err != nil {
		t.Fatal(err)
	}
	revived, err := m.Probe(vm.SSHService())
	if err != nil {
		t.Fatal(err)
	}
	if !revived.Responded {
		t.Fatal("VM not revived by increasing footprint")
	}
}

func TestBalloonVsFluidMemFloor(t *testing.T) {
	// The balloon bottoms out at its driver floor; FluidMem goes far lower.
	m := newFluidMachine(t, BackendRAMCloud, 64, 256, true)
	bal := m.Balloon()
	bal.FloorPages = 2000 // scaled-down analogue of 20480
	got, _ := bal.InflateTo(m.Now(), 0)
	if err := m.ResizeFootprint(180); err != nil {
		t.Fatal(err)
	}
	if m.ResidentPages() > 180 {
		t.Fatalf("FluidMem footprint %d", m.ResidentPages())
	}
	if got <= 180 {
		t.Fatalf("balloon reached %d pages; it must not beat FluidMem's floor", got)
	}
}

func TestSeededDeterminism(t *testing.T) {
	run := func() (time.Duration, uint64) {
		m := newFluidMachine(t, BackendRAMCloud, 1, 8, false)
		seg, _ := m.Alloc("heap", 4<<20)
		for i := 0; i < 500; i++ {
			if err := m.Write64(seg.Addr(uint64(i%seg.Pages())*PageSize), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return m.Now(), m.Monitor().Stats().Evictions
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("runs diverged: %v/%d vs %v/%d", t1, e1, t2, e2)
	}
}

func TestDrainQuiescesWriteback(t *testing.T) {
	m := newFluidMachine(t, BackendRAMCloud, 1, 8, false)
	seg, _ := m.Alloc("heap", 4<<20)
	for i := 0; i < seg.Pages(); i++ {
		if err := m.Write64(seg.Addr(uint64(i)*PageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if m.Monitor().WriteListLen() != 0 {
		t.Fatal("write list not drained")
	}
}

func TestSwapDefaultsApplied(t *testing.T) {
	m, err := NewMachine(MachineConfig{
		Mode:        ModeSwap,
		LocalMemory: 1 << 20,
		GuestMemory: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Swap() == nil || m.Monitor() != nil || m.Store() != nil {
		t.Fatal("swap machine wired wrong")
	}
}
