package fluidmem_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§VI), plus the DESIGN.md ablations. Each iteration executes a
// reduced-scale variant of the experiment (bench.Options.Quick); the
// full-scale runs behind EXPERIMENTS.md come from `cmd/fluidmem-bench`.
// Reported custom metrics are virtual-time results (µs of simulated latency,
// simulated TEPS), so they are comparable with the paper's numbers, while
// ns/op measures the simulator itself.

import (
	"testing"

	"fluidmem/internal/bench"
	"fluidmem/internal/stats"
)

func benchOpts(i int) bench.Options {
	return bench.Options{Quick: true, Seed: uint64(i) + 1}
}

// BenchmarkFig3PmbenchCDF regenerates Figure 3: pmbench fault-latency
// distributions over all six system configurations.
func BenchmarkFig3PmbenchCDF(b *testing.B) {
	b.ReportAllocs()
	var fmRC, swapNVMe float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig3(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if d, ok := res.Average("FluidMem RAMCloud"); ok {
			fmRC = stats.Micros(d)
		}
		if d, ok := res.Average("Swap NVMeoF"); ok {
			swapNVMe = stats.Micros(d)
		}
	}
	b.ReportMetric(fmRC, "µs-fluidmem-ramcloud")
	b.ReportMetric(swapNVMe, "µs-swap-nvmeof")
}

// BenchmarkTable1CodePathProfile regenerates Table I: the monitor's
// per-code-path latency profile on RAMCloud.
func BenchmarkTable1CodePathProfile(b *testing.B) {
	b.ReportAllocs()
	var readPage float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable1(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Row("READ_PAGE"); ok {
			readPage = stats.Micros(row.Avg)
		}
	}
	b.ReportMetric(readPage, "µs-read-page")
}

// BenchmarkTable2Optimisations regenerates Table II: fault latency by
// optimisation level, backend, and access pattern.
func BenchmarkTable2Optimisations(b *testing.B) {
	b.ReportAllocs()
	var def, both float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable2(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if c, ok := res.Cell("Default", "ramcloud"); ok {
			def = stats.Micros(c.Random)
		}
		if c, ok := res.Cell("Async Read/Write", "ramcloud"); ok {
			both = stats.Micros(c.Random)
		}
	}
	b.ReportMetric(def, "µs-default")
	b.ReportMetric(both, "µs-optimised")
}

// BenchmarkFig4Graph500 regenerates Figure 4: Graph500 TEPS across scale
// factors and systems.
func BenchmarkFig4Graph500(b *testing.B) {
	b.ReportAllocs()
	var fm, sw float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig4(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		high := res.Config.Scales[len(res.Config.Scales)-1]
		fm, _ = res.TEPS("FluidMem RAMCloud", high)
		sw, _ = res.TEPS("Swap NVMeoF", high)
	}
	b.ReportMetric(fm/1e6, "MTEPS-fluidmem")
	b.ReportMetric(sw/1e6, "MTEPS-swap")
}

// BenchmarkFig5MongoDB regenerates Figure 5: YCSB-C read latency over the
// MongoDB-like store, swap vs FluidMem.
func BenchmarkFig5MongoDB(b *testing.B) {
	b.ReportAllocs()
	var fm, sw float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig5(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		small := res.Config.CacheSizes[0]
		if d, ok := res.Mean("FluidMem RAMCloud", small); ok {
			fm = stats.Micros(d)
		}
		if d, ok := res.Mean("Swap NVMeoF", small); ok {
			sw = stats.Micros(d)
		}
	}
	b.ReportMetric(fm, "µs-fluidmem")
	b.ReportMetric(sw, "µs-swap")
}

// BenchmarkTable3Footprint regenerates Table III: footprint minimisation
// with service-responsiveness probes.
func BenchmarkTable3Footprint(b *testing.B) {
	b.ReportAllocs()
	var minResponsive float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable3(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.ICMP {
				minResponsive = float64(row.FootprintPages)
			}
		}
	}
	b.ReportMetric(minResponsive, "min-icmp-pages")
}

// BenchmarkAblationSteal regenerates ablation A1.
func BenchmarkAblationSteal(b *testing.B) {
	b.ReportAllocs()
	var onP99 float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationSteal(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		onP99 = stats.Micros(res.Points[0].P99Latency)
	}
	b.ReportMetric(onP99, "µs-p99-steal-on")
}

// BenchmarkAblationBatch regenerates ablation A2.
func BenchmarkAblationBatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationBatch(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRemap regenerates ablation A3.
func BenchmarkAblationRemap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationRemap(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLRU regenerates ablation A4.
func BenchmarkAblationLRU(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationLRU(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}
