package fluidmem

import (
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/blockdev"
	"fluidmem/internal/core"
	"fluidmem/internal/hotset"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/cluster"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/memcached"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/swap"
	"fluidmem/internal/vm"
)

// PageSize is the system page size.
const PageSize = vm.PageSize

// Mode selects the disaggregation mechanism.
type Mode int

// Modes.
const (
	// ModeFluidMem uses the FluidMem monitor (full disaggregation).
	ModeFluidMem Mode = iota + 1
	// ModeSwap uses the guest kernel swap path (partial disaggregation),
	// the paper's comparison baseline.
	ModeSwap
)

// Backend selects the remote key-value store for ModeFluidMem.
type Backend string

// Backends, matching the paper's evaluation (§VI-A).
const (
	// BackendDRAM keeps pages in local hypervisor DRAM (latency floor).
	BackendDRAM Backend = "dram"
	// BackendRAMCloud stores pages in a RAMCloud-style log-structured store
	// over an InfiniBand-class transport.
	BackendRAMCloud Backend = "ramcloud"
	// BackendCluster stores pages in the sharded multi-node pool with
	// Raft-committed membership: N store nodes, R-way replication, and the
	// full add/drain/crash/partition lifecycle (internal/kvstore/cluster).
	BackendCluster Backend = "cluster"
	// BackendMemcached stores pages in a Memcached-style slab store over a
	// TCP (IP-over-IB) transport.
	BackendMemcached Backend = "memcached"
)

// SwapDevice selects the block device backing swap in ModeSwap.
type SwapDevice string

// Swap devices, matching the paper's swap baselines.
const (
	// SwapDRAM is remote DRAM exposed as /dev/pmem0.
	SwapDRAM SwapDevice = "dram"
	// SwapNVMeoF is an NVMe-over-Fabrics target over FDR InfiniBand.
	SwapNVMeoF SwapDevice = "nvmeof"
	// SwapSSD is a local SSD partition.
	SwapSSD SwapDevice = "ssd"
)

// MachineConfig assembles one simulated hypervisor + guest.
type MachineConfig struct {
	// Mode picks FluidMem or the swap baseline. Default ModeFluidMem.
	Mode Mode
	// Backend picks the key-value store (ModeFluidMem). Default RAMCloud.
	Backend Backend
	// SwapDev picks the swap block device (ModeSwap). Default NVMeoF.
	SwapDev SwapDevice
	// LocalMemory is the guest's local DRAM budget in bytes: the FluidMem
	// LRU list size, or the swap guest's physical frame count.
	LocalMemory uint64
	// GuestMemory is the guest-addressable memory in bytes (physical for
	// FluidMem after hotplug; physical+swap for the baseline).
	GuestMemory uint64
	// SwapBytes is the swap device size (ModeSwap). Default 4×GuestMemory.
	SwapBytes uint64
	// StoreCapacity is the key-value store capacity (ModeFluidMem).
	// Default 25 GB as in the paper's RAMCloud deployment.
	StoreCapacity uint64
	// StoreNodes and StoreReplicas shape the cluster backend
	// (BackendCluster): node count and replication factor. Zero values
	// take the cluster package defaults (3 nodes, 2 replicas).
	StoreNodes    int
	StoreReplicas int
	// VCPUs for the guest. Default 2 (the Graph500 configuration).
	VCPUs int
	// Virt is the virtualisation mode. Default KVM.
	Virt vm.VirtMode
	// BootOS boots a guest OS before returning, populating the OS footprint.
	BootOS bool
	// OSProfile overrides the OS footprint model; zero value selects a
	// profile scaled to LocalMemory (≈30% of local DRAM at boot, matching
	// the paper's 317 MB on 1 GB guests).
	OSProfile vm.OSProfile
	// Monitor optionally overrides the FluidMem monitor configuration
	// (optimisation toggles for ablations). Store and LRUCapacity fields
	// are filled in by NewMachine. Nil selects the fully optimised default.
	//
	// Machine-level conveniences MERGE with the override rather than being
	// discarded by it: CompressPool, PrefetchPages, and Tracer still apply
	// when the override leaves the corresponding Config field at its zero
	// value (Compress == nil, PrefetchPages == 0, Trace == nil). An
	// explicitly configured field in the override always wins.
	Monitor *core.Config
	// CompressPool, when non-zero, enables the zswap-style compressed tier
	// with the given pool budget in bytes (§III's page-compression
	// customisation). When Monitor is set, this applies unless the override
	// configures Compress itself.
	CompressPool uint64
	// PrefetchPages, when positive, enables sequential prefetching of the
	// next N pages after each remote-read fault (extension; helps scans,
	// hurts random access). When Monitor is set, this applies unless the
	// override sets its own PrefetchPages.
	PrefetchPages int
	// Tracer optionally enables virtual-time tracing: events and phase
	// latency histograms from the whole fault pipeline, surfaced through
	// Machine.Stats and Machine.WriteTrace. Tracing never changes simulated
	// results. When Monitor is set, this applies unless the override sets
	// its own Trace. The backend built by NewMachine is also routed through
	// kvstore.Instrumented so store traffic appears in the trace
	// (SharedStore is left untouched — wrap it yourself if desired).
	Tracer *Tracer
	// Hotset optionally attaches a ghost-LRU working-set estimator to the
	// monitor (ModeFluidMem): evicted page keys shadow in a bounded list
	// whose hit depths build the miss-ratio curve a Host's arbiter prices
	// reallocations against. Like Tracer it is pure observation — simulated
	// results are bit-identical with it on or off. A non-positive
	// GhostCapacity or BucketPages fails NewMachine. When Monitor is set,
	// this applies unless the override sets its own Hotset tracker.
	Hotset *HotsetParams
	// SwapParams optionally overrides the swap subsystem tuning.
	SwapParams *swap.Params
	// SharedStore optionally supplies an existing key-value store shared
	// with other hypervisors — the setting Migrate requires, and the way
	// multiple machines pool one RAMCloud cluster (§IV).
	SharedStore kvstore.Store
	// Registry optionally supplies a shared partition registry (e.g. the
	// ZooKeeper-backed one) for multi-hypervisor deployments.
	Registry kvstore.Registry
	// HypervisorID identifies this hypervisor in the partition registry.
	HypervisorID string
	// Seed drives all randomness. Same seed, same run.
	Seed uint64
}

// Machine is one simulated hypervisor running one guest.
type Machine struct {
	cfg MachineConfig
	now time.Duration

	vm          *vm.VM
	os          *vm.GuestOS
	monitor     *core.Monitor
	swap        *swap.Subsystem
	store       kvstore.Store
	clusterPool *cluster.Pool
	balloon     *vm.Balloon
}

// NewMachine builds and wires a machine; with BootOS set it also boots the
// guest, charging boot time to the virtual clock.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	applyMachineDefaults(&cfg)
	if cfg.LocalMemory < PageSize {
		return nil, errors.New("fluidmem: LocalMemory must be at least one page")
	}
	if cfg.GuestMemory < cfg.LocalMemory {
		return nil, errors.New("fluidmem: GuestMemory smaller than LocalMemory")
	}

	// Capacity inputs are validated up front so a bad share surfaces as a
	// clear NewMachine error, not a monitor failure mid-run.
	if cfg.Monitor != nil && cfg.Monitor.LRUCapacity < 0 {
		return nil, fmt.Errorf("fluidmem: Monitor.LRUCapacity %d is negative", cfg.Monitor.LRUCapacity)
	}
	if cfg.Hotset != nil {
		if cfg.Hotset.GhostCapacity < 1 {
			return nil, fmt.Errorf("fluidmem: Hotset.GhostCapacity %d < 1 page", cfg.Hotset.GhostCapacity)
		}
		if cfg.Hotset.BucketPages < 1 {
			return nil, fmt.Errorf("fluidmem: Hotset.BucketPages %d < 1 page", cfg.Hotset.BucketPages)
		}
	}

	m := &Machine{cfg: cfg}
	pid := 1000 + int(cfg.Seed%9000)
	vmCfg := vm.Config{
		Name:     "guest0",
		MemBytes: cfg.GuestMemory,
		VCPUs:    cfg.VCPUs,
		PID:      pid,
		Virt:     cfg.Virt,
	}

	var backing vm.Backing
	switch cfg.Mode {
	case ModeFluidMem:
		store := cfg.SharedStore
		if store == nil {
			var err error
			if store, m.clusterPool, err = newStore(cfg); err != nil {
				return nil, err
			}
		}
		m.store = store
		mcfg := core.DefaultConfig(store, int(cfg.LocalMemory/PageSize))
		if cfg.Monitor != nil {
			mcfg = *cfg.Monitor
			mcfg.Store = store
			if mcfg.LRUCapacity == 0 {
				mcfg.LRUCapacity = int(cfg.LocalMemory / PageSize)
			}
		}
		// Machine-level conveniences merge with a Monitor override instead
		// of being silently discarded by it: each applies unless the
		// override configured the same feature explicitly (see the
		// MachineConfig.Monitor doc; TestMonitorOverrideMergesConveniences
		// pins the precedence).
		if mcfg.Compress == nil && cfg.CompressPool > 0 {
			params := core.DefaultCompressParams(cfg.CompressPool)
			mcfg.Compress = &params
		}
		if mcfg.PrefetchPages == 0 && cfg.PrefetchPages > 0 {
			mcfg.PrefetchPages = cfg.PrefetchPages
		}
		if mcfg.Trace == nil {
			mcfg.Trace = cfg.Tracer
		}
		if mcfg.Hotset == nil && cfg.Hotset != nil {
			hs, err := hotset.New(*cfg.Hotset)
			if err != nil {
				return nil, fmt.Errorf("fluidmem: %w", err)
			}
			mcfg.Hotset = hs
		}
		mcfg.Seed = cfg.Seed + 11
		monitor, err := core.NewMonitor(mcfg, cfg.Registry, cfg.HypervisorID)
		if err != nil {
			return nil, err
		}
		base := uint64(0x7f00_0000_0000)
		if _, err := monitor.RegisterRange(base, cfg.GuestMemory, pid); err != nil {
			return nil, err
		}
		vmCfg.Base = base
		m.monitor = monitor
		backing = monitor
	case ModeSwap:
		sub, err := newSwapSubsystem(cfg)
		if err != nil {
			return nil, err
		}
		m.swap = sub
		backing = sub
	default:
		return nil, fmt.Errorf("fluidmem: unknown mode %d", cfg.Mode)
	}

	guest, err := vm.New(vmCfg, backing)
	if err != nil {
		return nil, err
	}
	m.vm = guest
	m.balloon = vm.NewBalloon(guest)

	if cfg.BootOS {
		profile := cfg.OSProfile
		if profile.TotalPages() == 0 {
			profile = vm.ScaledOSProfile(int(cfg.LocalMemory / PageSize * 3 / 10))
		}
		os, now, err := vm.BootOS(m.now, guest, profile, cfg.Seed+23)
		if err != nil {
			return nil, fmt.Errorf("fluidmem: boot: %w", err)
		}
		m.os = os
		m.now = now
	}
	return m, nil
}

func applyMachineDefaults(cfg *MachineConfig) {
	if cfg.Mode == 0 {
		cfg.Mode = ModeFluidMem
	}
	if cfg.Backend == "" {
		cfg.Backend = BackendRAMCloud
	}
	if cfg.SwapDev == "" {
		cfg.SwapDev = SwapNVMeoF
	}
	if cfg.SwapBytes == 0 {
		cfg.SwapBytes = 4 * cfg.GuestMemory
	}
	if cfg.StoreCapacity == 0 {
		cfg.StoreCapacity = 25 << 30
	}
	if cfg.VCPUs == 0 {
		cfg.VCPUs = 2
	}
	if cfg.Virt == 0 {
		cfg.Virt = vm.VirtKVM
	}
	if cfg.HypervisorID == "" {
		cfg.HypervisorID = "hypervisor-0"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
}

func newStore(cfg MachineConfig) (kvstore.Store, *cluster.Pool, error) {
	var backend kvstore.Store
	var pool *cluster.Pool
	switch cfg.Backend {
	case BackendDRAM:
		backend = dram.New(dram.DefaultParams(), cfg.Seed+101)
	case BackendRAMCloud:
		p := ramcloud.DefaultParams()
		p.CapacityBytes = cfg.StoreCapacity
		backend = ramcloud.New(p, cfg.Seed+102)
	case BackendMemcached:
		p := memcached.DefaultParams()
		p.CapacityBytes = cfg.StoreCapacity
		backend = memcached.New(p, cfg.Seed+103)
	case BackendCluster:
		var err error
		pool, err = cluster.New(cluster.Config{
			Nodes:    cfg.StoreNodes,
			Replicas: cfg.StoreReplicas,
			Seed:     cfg.Seed + 104,
		})
		if err != nil {
			return nil, nil, err
		}
		backend = pool
	default:
		return nil, nil, fmt.Errorf("fluidmem: unknown backend %q", cfg.Backend)
	}
	// Every built-in backend routes through the instrumentation wrapper so
	// its traffic shows up in traces; with no tracer this is the identity.
	return kvstore.Instrumented(backend, cfg.Tracer), pool, nil
}

func newSwapSubsystem(cfg MachineConfig) (*swap.Subsystem, error) {
	var devParams blockdev.Params
	switch cfg.SwapDev {
	case SwapDRAM:
		devParams = blockdev.PmemParams(cfg.SwapBytes)
	case SwapNVMeoF:
		devParams = blockdev.NVMeoFParams(cfg.SwapBytes)
	case SwapSSD:
		devParams = blockdev.SSDParams(cfg.SwapBytes)
	default:
		return nil, fmt.Errorf("fluidmem: unknown swap device %q", cfg.SwapDev)
	}
	swapDev, err := blockdev.New(devParams, cfg.Seed+201)
	if err != nil {
		return nil, err
	}
	// The guest filesystem lives on a local SSD in all configurations.
	fsDev, err := blockdev.New(blockdev.SSDParams(max64(4*cfg.GuestMemory, 1<<30)), cfg.Seed+202)
	if err != nil {
		return nil, err
	}
	params := swap.DefaultParams(int(cfg.LocalMemory / PageSize))
	if cfg.SwapParams != nil {
		params = *cfg.SwapParams
		if params.FramePages == 0 {
			params.FramePages = int(cfg.LocalMemory / PageSize)
		}
	}
	return swap.New(params, swapDev, fsDev, cfg.Seed+203)
}

// Now reports the machine's virtual clock.
func (m *Machine) Now() time.Duration { return m.now }

// Elapsed is an alias for Now: total virtual time since machine creation.
func (m *Machine) Elapsed() time.Duration { return m.now }

// AdvanceCPU charges pure compute time (workload think time) to the clock.
func (m *Machine) AdvanceCPU(d time.Duration) {
	if d > 0 {
		m.now += d
	}
}

// VM exposes the guest.
func (m *Machine) VM() *vm.VM { return m.vm }

// OS exposes the booted guest OS (nil unless BootOS was set).
func (m *Machine) OS() *vm.GuestOS { return m.os }

// Monitor exposes the FluidMem monitor (nil in ModeSwap).
func (m *Machine) Monitor() *core.Monitor { return m.monitor }

// Swap exposes the swap subsystem (nil in ModeFluidMem).
func (m *Machine) Swap() *swap.Subsystem { return m.swap }

// Store exposes the key-value backend (nil in ModeSwap).
func (m *Machine) Store() kvstore.Store { return m.store }

// ClusterPool exposes the sharded multi-node pool behind the store when the
// machine was built with BackendCluster (nil otherwise) — the handle the
// operator surface uses for membership changes and failure injection.
func (m *Machine) ClusterPool() *cluster.Pool { return m.clusterPool }

// Balloon exposes the guest balloon driver.
func (m *Machine) Balloon() *vm.Balloon { return m.balloon }

// Alloc reserves anonymous guest memory for a workload.
func (m *Machine) Alloc(name string, bytes uint64) (*vm.Segment, error) {
	return m.vm.Alloc(name, bytes, vm.ClassAnon)
}

// AllocClass reserves guest memory with an explicit page class (mmap'd
// files, mlocked buffers).
func (m *Machine) AllocClass(name string, bytes uint64, class vm.PageClass) (*vm.Segment, error) {
	return m.vm.Alloc(name, bytes, class)
}

// Touch accesses the page at addr, advancing the virtual clock by the access
// cost, and returns the page frame.
func (m *Machine) Touch(addr uint64, write bool) ([]byte, error) {
	data, now, err := m.vm.Touch(m.now, addr, write)
	m.now = now
	return data, err
}

// Read64 reads the word at addr, advancing the clock.
func (m *Machine) Read64(addr uint64) (uint64, error) {
	v, now, err := m.vm.Read64(m.now, addr)
	m.now = now
	return v, err
}

// Write64 writes the word at addr, advancing the clock.
func (m *Machine) Write64(addr uint64, value uint64) error {
	now, err := m.vm.Write64(m.now, addr, value)
	m.now = now
	return err
}

// OSTick runs background guest-OS activity (touches of the OS working set).
func (m *Machine) OSTick(touches int) error {
	if m.os == nil {
		return nil
	}
	now, err := m.os.Tick(m.now, touches)
	m.now = now
	return err
}

// ResidentPages reports the guest's local-DRAM footprint.
func (m *Machine) ResidentPages() int { return m.vm.ResidentPages() }

// ResizeFootprint changes the local memory budget at runtime. For FluidMem
// this resizes the monitor's LRU list (§III), evicting immediately when
// shrinking — the full-disaggregation capability Table III demonstrates.
// ModeSwap cannot do this without guest cooperation and returns an error,
// exactly the limitation the paper describes (§II).
func (m *Machine) ResizeFootprint(pages int) error {
	if m.monitor == nil {
		return errors.New("fluidmem: swap-based machines cannot resize the footprint without guest cooperation (use the balloon)")
	}
	now, err := m.monitor.Resize(m.now, pages)
	m.now = now
	return err
}

// Hotplug adds guest memory at runtime (QEMU memory hotplug, §III). In
// FluidMem mode the new range is registered with the monitor.
func (m *Machine) Hotplug(bytes uint64) error {
	start := m.vm.Config().Base + m.vm.MemBytes()
	if err := m.vm.Hotplug(bytes); err != nil {
		return err
	}
	if m.monitor != nil {
		if _, err := m.monitor.RegisterRange(start, bytes, m.vm.Config().PID); err != nil {
			return err
		}
	}
	return nil
}

// Probe tests service responsiveness at the current footprint (Table III).
// The probe runs against the OS file segment; the machine must be booted.
func (m *Machine) Probe(svc vm.Service) (vm.ProbeResult, error) {
	if m.os == nil {
		return vm.ProbeResult{}, errors.New("fluidmem: Probe requires a booted OS")
	}
	var fileSeg *vm.Segment
	for _, seg := range m.os.Segments() {
		if seg != nil && seg.Class == vm.ClassFile {
			fileSeg = seg
			break
		}
	}
	if fileSeg == nil {
		return vm.ProbeResult{}, errors.New("fluidmem: no OS file segment")
	}
	res, now, err := vm.Probe(m.now, m.vm, fileSeg, svc)
	m.now = now
	return res, err
}

// Drain quiesces asynchronous writeback (FluidMem mode); a no-op for swap.
func (m *Machine) Drain() error {
	if m.monitor == nil {
		return nil
	}
	now, err := m.monitor.Drain(m.now)
	m.now = now
	return err
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
