// Package fluidmem is a simulation-faithful reimplementation of FluidMem
// (Caldwell et al., "FluidMem: Full, Flexible, and Fast Memory
// Disaggregation for the Cloud", ICDCS 2020): full memory disaggregation for
// unmodified VMs via a user-space page-fault handler over userfaultfd, with
// pages stored in a modular remote key-value backend.
//
// Everything hardware- or kernel-bound in the original (userfaultfd, QEMU
// guests, InfiniBand, RAMCloud/Memcached servers, NVMeoF and SSD block
// devices) is reproduced as a deterministic discrete-event simulation on a
// virtual clock, calibrated to the paper's microbenchmarks. See DESIGN.md
// for the substitution table and EXPERIMENTS.md for paper-vs-measured
// results across every table and figure.
//
// # Quick start
//
//	machine, err := fluidmem.NewMachine(fluidmem.MachineConfig{
//		Mode:         fluidmem.ModeFluidMem,
//		Backend:      fluidmem.BackendRAMCloud,
//		LocalMemory:  1 << 30, // 1 GB of local DRAM (the LRU list size)
//		GuestMemory:  5 << 30, // 5 GB visible to the guest
//		BootOS:       true,
//	})
//	if err != nil { ... }
//	seg, err := machine.Alloc("heap", 2<<30)
//	machine.Write64(seg.Addr(0), 42)
//	v, _ := machine.Read64(seg.Addr(0))
//
// The machine's Elapsed() reports virtual time consumed. Stats() returns one
// aggregated telemetry snapshot — per-layer counters plus, when a Tracer is
// configured in MachineConfig, per-phase fault-latency percentiles; the
// Table-I-style code-path profiler stays reachable through Monitor(). Pass
// NewTracer(true) as MachineConfig.Tracer and WriteTrace() emits the run's
// virtual-time event log in Chrome trace format.
//
// The same MachineConfig with ModeSwap builds the swap-based partial
// disaggregation baseline (NVMeoF / SSD / remote-DRAM swap) the paper
// compares against.
package fluidmem
