package fluidmem

import (
	"bytes"
	"strings"
	"testing"

	"fluidmem/internal/core"
	"fluidmem/internal/trace"
)

// A machine-level CompressPool / PrefetchPages / Tracer must survive a
// Monitor override that does not configure the same feature, and an
// override that does configure it must win — the documented merge
// precedence.
func TestMonitorOverrideMergesConveniences(t *testing.T) {
	tr := NewTracer(false)
	mon := core.DefaultConfig(nil, 0) // Store/LRUCapacity filled by NewMachine
	m, err := NewMachine(MachineConfig{
		Mode:          ModeFluidMem,
		Backend:       BackendDRAM,
		LocalMemory:   1 << 20,
		GuestMemory:   8 << 20,
		Monitor:       &mon,
		CompressPool:  256 << 10,
		PrefetchPages: 4,
		Tracer:        tr,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Monitor().CompressStats(); !ok {
		t.Error("Monitor override silently discarded CompressPool")
	}
	if m.Monitor().Tracer() != tr {
		t.Error("Monitor override silently discarded Tracer")
	}
	// PrefetchPages is observable through behaviour: on a machine without a
	// compressed tier (which would absorb these compressible pages and starve
	// the store of readable copies), a sequential re-read must trigger
	// prefetch installs.
	mon2 := core.DefaultConfig(nil, 0)
	mp, err := NewMachine(MachineConfig{
		Mode:          ModeFluidMem,
		Backend:       BackendDRAM,
		LocalMemory:   1 << 20,
		GuestMemory:   8 << 20,
		Monitor:       &mon2,
		PrefetchPages: 4,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := mp.Alloc("heap", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seg.Pages(); i++ {
		if err := mp.Write64(seg.Addr(uint64(i)*PageSize), uint64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := mp.Drain(); err != nil { // park evicted pages in the store so prefetch can read them
		t.Fatal(err)
	}
	for i := 0; i < seg.Pages(); i++ {
		if _, err := mp.Read64(seg.Addr(uint64(i) * PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if st := mp.Monitor().Stats(); st.Prefetches == 0 {
		t.Error("Monitor override silently discarded PrefetchPages (no prefetch installs)")
	}

	// Explicit override fields win over the machine-level conveniences.
	own := core.DefaultConfig(nil, 0)
	own.PrefetchPages = 2
	ownTr := trace.New(false)
	own.Trace = ownTr
	m2, err := NewMachine(MachineConfig{
		Mode:          ModeFluidMem,
		Backend:       BackendDRAM,
		LocalMemory:   1 << 20,
		GuestMemory:   8 << 20,
		Monitor:       &own,
		PrefetchPages: 9,
		Tracer:        NewTracer(false),
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Monitor().Tracer() != ownTr {
		t.Error("machine-level Tracer overrode the Monitor config's own Trace")
	}
}

// Stats() must aggregate every layer behind one call, and the deprecated
// shims must agree with it.
func TestPublicStatsSnapshot(t *testing.T) {
	tr := NewTracer(true)
	m, err := NewMachine(MachineConfig{
		Mode:        ModeFluidMem,
		Backend:     BackendDRAM,
		LocalMemory: 1 << 20,
		GuestMemory: 8 << 20,
		Tracer:      tr,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := m.Alloc("heap", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seg.Pages(); i++ {
		if err := m.Write64(seg.Addr(uint64(i)*PageSize), uint64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Now != m.Now() {
		t.Errorf("Stats().Now = %v, want %v", st.Now, m.Now())
	}
	if st.Monitor == nil || st.Writeback == nil || st.Store == nil {
		t.Fatalf("Stats() missing layers: %+v", st)
	}
	if st.Monitor.Faults == 0 || st.Monitor.Evictions == 0 {
		t.Errorf("implausible monitor counters: %+v", *st.Monitor)
	}
	if *st.Monitor != m.Monitor().Stats() {
		t.Error("Stats().Monitor disagrees with the monitor's own counters")
	}
	if st.Writeback.Flushes != m.Monitor().WritebackStats().Flushes {
		t.Error("Stats().Writeback disagrees with the writeback engine's counters")
	}
	if st.Store.Puts == 0 {
		t.Error("Stats().Store recorded no store writes after evictions")
	}
	if st.Resilience != nil || st.Health != nil || st.Compress != nil {
		t.Error("disabled subsystems should be nil in the snapshot")
	}
	if st.FootprintLimit != m.Monitor().FootprintLimit() || st.Workers != 1 {
		t.Errorf("footprint/workers wrong: %+v", st)
	}

	// The tracer fed the snapshot: a FAULT phase row with percentiles must
	// be present, and the merged row must come first for its phase.
	var fault *PhaseLatency
	for i := range st.Phases {
		if st.Phases[i].Phase == trace.EvFault {
			fault = &st.Phases[i]
			break
		}
	}
	if fault == nil {
		t.Fatal("no FAULT phase row in Stats().Phases")
	}
	if fault.Worker != trace.MergedWorker || fault.Count == 0 || fault.P50 <= 0 || fault.P99 > fault.Max {
		t.Errorf("implausible FAULT row: %+v", *fault)
	}

	// WriteTrace round trip: a chrome trace with FAULT events.
	var buf bytes.Buffer
	if err := m.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"FAULT"`) {
		t.Error("WriteTrace output has no FAULT events")
	}
}

// In ModeSwap the snapshot carries only machine-level fields.
func TestPublicStatsSwapMode(t *testing.T) {
	m, err := NewMachine(MachineConfig{
		Mode:        ModeSwap,
		LocalMemory: 1 << 20,
		GuestMemory: 8 << 20,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Monitor != nil || st.Writeback != nil || st.Store != nil || st.Phases != nil {
		t.Errorf("swap-mode snapshot should have nil monitor layers: %+v", st)
	}
	if st.ResidentPages != m.ResidentPages() {
		t.Error("swap-mode snapshot lost ResidentPages")
	}
}

// Tracing must not perturb the simulation: same seed with and without a
// tracer gives identical virtual time and counters.
func TestTracingIsPureObservation(t *testing.T) {
	run := func(tr *Tracer) (Stats, *Machine) {
		m, err := NewMachine(MachineConfig{
			Mode:        ModeFluidMem,
			Backend:     BackendRAMCloud,
			LocalMemory: 1 << 20,
			GuestMemory: 8 << 20,
			Tracer:      tr,
			Seed:        7,
		})
		if err != nil {
			t.Fatal(err)
		}
		seg, err := m.Alloc("heap", 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < seg.Pages(); i++ {
				if err := m.Write64(seg.Addr(uint64(i)*PageSize), uint64(i)+3); err != nil {
					t.Fatal(err)
				}
			}
		}
		return m.Stats(), m
	}
	plain, _ := run(nil)
	traced, _ := run(NewTracer(true))
	if plain.Now != traced.Now {
		t.Errorf("tracing changed virtual time: %v vs %v", plain.Now, traced.Now)
	}
	if *plain.Monitor != *traced.Monitor {
		t.Errorf("tracing changed monitor counters:\n%+v\n%+v", *plain.Monitor, *traced.Monitor)
	}
	if *plain.Store != *traced.Store {
		t.Errorf("tracing changed store traffic:\n%+v\n%+v", *plain.Store, *traced.Store)
	}
}
