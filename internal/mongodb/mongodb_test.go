package mongodb

import (
	"errors"
	"testing"
	"time"

	"fluidmem/internal/blockdev"
	"fluidmem/internal/core"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/vm"
	"fluidmem/internal/workload/ycsb"
)

// newGuest builds a FluidMem DRAM-backed guest.
func newGuest(t *testing.T, localPages int, guestBytes uint64) *vm.VM {
	t.Helper()
	cfg := core.DefaultConfig(dram.New(dram.DefaultParams(), 5), localPages)
	mon, err := core.NewMonitor(cfg, nil, "hyp")
	if err != nil {
		t.Fatal(err)
	}
	base := uint64(0x7f00_0000_0000)
	if _, err := mon.RegisterRange(base, guestBytes, 1); err != nil {
		t.Fatal(err)
	}
	guest, err := vm.New(vm.Config{Name: "g", MemBytes: guestBytes, PID: 1, Base: base}, mon)
	if err != nil {
		t.Fatal(err)
	}
	return guest
}

func newDisk(t *testing.T) *blockdev.Device {
	t.Helper()
	d, err := blockdev.New(blockdev.SSDParams(1<<30), 3)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func openStore(t *testing.T, records int, cacheBytes uint64) (*Store, time.Duration) {
	t.Helper()
	guest := newGuest(t, 65536, 1<<30)
	s, now, err := Open(0, guest, newDisk(t), DefaultConfig(records, cacheBytes))
	if err != nil {
		t.Fatal(err)
	}
	return s, now
}

func TestOpenValidation(t *testing.T) {
	guest := newGuest(t, 1024, 64<<20)
	disk := newDisk(t)
	if _, _, err := Open(0, guest, disk, DefaultConfig(0, 1<<20)); err == nil {
		t.Fatal("zero records accepted")
	}
	if _, _, err := Open(0, guest, disk, DefaultConfig(100, 100)); err == nil {
		t.Fatal("tiny cache accepted")
	}
	if _, _, err := Open(0, guest, nil, DefaultConfig(100, 1<<20)); err == nil {
		t.Fatal("nil disk accepted")
	}
}

func TestReadRecordVerifiesIntegrity(t *testing.T) {
	s, now := openStore(t, 1000, 1<<20)
	for id := 0; id < 1000; id += 97 {
		done, err := s.ReadRecord(now, id)
		if err != nil {
			t.Fatalf("record %d: %v", id, err)
		}
		now = done
	}
	if s.Stats().DiskReads == 0 {
		t.Fatal("cold reads never hit the disk")
	}
}

func TestReadRecordOutOfRange(t *testing.T) {
	s, now := openStore(t, 100, 1<<20)
	if _, err := s.ReadRecord(now, 100); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.ReadRecord(now, -1); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v", err)
	}
}

func TestCacheHitsFasterThanMisses(t *testing.T) {
	s, now := openStore(t, 1000, 4<<20) // cache holds all 1000 records
	// First read: miss; second: hit.
	start := now
	now, err := s.ReadRecord(now, 5)
	if err != nil {
		t.Fatal(err)
	}
	missLat := now - start
	start = now
	now, err = s.ReadRecord(now, 5)
	if err != nil {
		t.Fatal(err)
	}
	hitLat := now - start
	if hitLat >= missLat {
		t.Fatalf("hit %v not faster than miss %v", hitLat, missLat)
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheEvictsLRUWhenFull(t *testing.T) {
	// Cache of one page = 4 records; reading 8 records evicts the first 4.
	s, now := openStore(t, 100, vm.PageSize)
	if s.CacheSlots() != 4 {
		t.Fatalf("slots = %d", s.CacheSlots())
	}
	var err error
	for id := 0; id < 8; id++ {
		if now, err = s.ReadRecord(now, id); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Evictions != 4 {
		t.Fatalf("evictions = %d", s.Stats().Evictions)
	}
	// Record 0 is evicted: reading it is a miss again.
	misses := s.Stats().CacheMisses
	if now, err = s.ReadRecord(now, 0); err != nil {
		t.Fatal(err)
	}
	if s.Stats().CacheMisses != misses+1 {
		t.Fatal("evicted record served from cache")
	}
}

func TestEngineLRUKeepsHotRecord(t *testing.T) {
	s, now := openStore(t, 100, vm.PageSize) // 4 slots
	var err error
	if now, err = s.ReadRecord(now, 0); err != nil {
		t.Fatal(err)
	}
	for id := 1; id < 12; id++ {
		// Re-touch record 0 before each new insert.
		if now, err = s.ReadRecord(now, 0); err != nil {
			t.Fatal(err)
		}
		if now, err = s.ReadRecord(now, id); err != nil {
			t.Fatal(err)
		}
	}
	misses := s.Stats().CacheMisses
	if now, err = s.ReadRecord(now, 0); err != nil {
		t.Fatal(err)
	}
	if s.Stats().CacheMisses != misses {
		t.Fatal("hot record evicted by engine LRU")
	}
	_ = now
}

func TestYCSBIntegration(t *testing.T) {
	s, now := openStore(t, 2000, 1<<20)
	cfg := ycsb.DefaultConfig(2000, 1500)
	res, _, err := ycsb.Run(now, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Operations != 1500 {
		t.Fatalf("ops = %d", res.Operations)
	}
	st := s.Stats()
	if st.CacheHits == 0 {
		t.Fatal("zipfian workload produced no cache hits")
	}
	if st.CacheMisses == 0 {
		t.Fatal("no cache misses despite cold start")
	}
	if res.Latencies.Mean() <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestLargerCacheLowersLatency(t *testing.T) {
	run := func(cacheBytes uint64) time.Duration {
		s, now := openStore(t, 4000, cacheBytes)
		res, _, err := ycsb.Run(now, s, ycsb.DefaultConfig(4000, 3000))
		if err != nil {
			t.Fatal(err)
		}
		return res.Latencies.Mean()
	}
	small := run(256 << 10) // 256 KB: 256 records of 4000
	large := run(8 << 20)   // 8 MB: all records fit
	if large >= small {
		t.Fatalf("bigger cache (%v) not faster than small (%v)", large, small)
	}
}
