// Package mongodb models the document store of the paper's second
// application study (§VI-D2): a MongoDB-like server with a WiredTiger-style
// storage engine — an application-managed record cache living in guest
// memory, backed by data files on a local SSD.
//
// The cache is the crux of Figure 5: WiredTiger runs its own LRU over its
// cache, and when that cache exceeds guest DRAM the *kernel* starts paging
// cache memory by its own policy underneath the engine. With swap the two
// policies fight (the paper: "the poor interaction between the WiredTiger
// storage engine's memory cache and kswapd"), while FluidMem transparently
// gives the engine what behaves like native memory.
package mongodb

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/blockdev"
	"fluidmem/internal/clock"
	"fluidmem/internal/vm"
)

// RecordBytes is the YCSB record size used in the paper (1 KB).
const RecordBytes = 1024

// recordsPerPage is how many records share one guest page.
const recordsPerPage = vm.PageSize / RecordBytes

// Errors.
var (
	// ErrBadRecord reports an out-of-range record id.
	ErrBadRecord = errors.New("mongodb: record id out of range")
	// ErrCorrupt reports a record whose contents failed verification.
	ErrCorrupt = errors.New("mongodb: record corrupted")
)

// Config parametrises the store.
type Config struct {
	// Records is the dataset size (the paper's dataset is ≈5 GB).
	Records int
	// CacheBytes is the WiredTiger cache size (1–3 GB in Figure 5).
	CacheBytes uint64
	// QueryCPU is the server-side compute per read (parse, index walk, BSON
	// decode) charged on every operation.
	QueryCPU time.Duration
	// IndexTouches is how many index/internal B-tree pages the engine walks
	// per lookup. Those pages live in guest memory too, so they page like
	// everything else.
	IndexTouches int
	// IndexBytes sizes the B-tree internal/index segment. Zero selects the
	// default of one-eighth of the dataset.
	IndexBytes uint64
	// EvictionWalk is how many candidate cache pages the engine's eviction
	// server examines per cache-full miss, WiredTiger-style. These touches
	// are what collide with kernel paging when the cache exceeds DRAM.
	EvictionWalk int
	// Seed drives cache-slot randomisation.
	Seed uint64
}

// DefaultConfig sizes a store with the given dataset and cache.
func DefaultConfig(records int, cacheBytes uint64) Config {
	return Config{
		Records:      records,
		CacheBytes:   cacheBytes,
		QueryCPU:     90 * time.Microsecond,
		IndexTouches: 6,
		EvictionWalk: 8,
		Seed:         1,
	}
}

// Stats counts store activity.
type Stats struct {
	Reads       uint64
	CacheHits   uint64
	CacheMisses uint64
	DiskReads   uint64
	Evictions   uint64
}

// Store is the document store.
type Store struct {
	cfg   Config
	guest *vm.VM
	disk  *blockdev.Device

	cacheSeg *vm.Segment
	indexSeg *vm.Segment
	slots    int
	// slotOf maps record id → cache slot (-1 when uncached).
	slotOf []int32
	// recordAt maps slot → record id (-1 when free).
	recordAt []int32
	lru      *list.List // cache slots, front = coldest
	lruElem  []*list.Element
	rng      *clock.Rand

	stats Stats
}

// Open creates the store: it allocates the cache segment in guest memory and
// loads the dataset onto the disk device (the YCSB load phase). It returns
// the store and the time when loading completes.
func Open(now time.Duration, guest *vm.VM, disk *blockdev.Device, cfg Config) (*Store, time.Duration, error) {
	if cfg.Records < 1 {
		return nil, now, fmt.Errorf("mongodb: %d records", cfg.Records)
	}
	if cfg.CacheBytes < vm.PageSize {
		return nil, now, fmt.Errorf("mongodb: cache %d too small", cfg.CacheBytes)
	}
	if disk == nil {
		return nil, now, errors.New("mongodb: nil disk")
	}
	datasetPages := uint64(cfg.Records+recordsPerPage-1) / recordsPerPage
	if disk.Pages() < datasetPages {
		return nil, now, fmt.Errorf("mongodb: disk holds %d pages, dataset needs %d", disk.Pages(), datasetPages)
	}
	s := &Store{
		cfg:   cfg,
		guest: guest,
		disk:  disk,
		rng:   clock.NewRand(cfg.Seed),
		lru:   list.New(),
	}
	var err error
	s.cacheSeg, err = guest.Alloc("wiredtiger.cache", cfg.CacheBytes, vm.ClassAnon)
	if err != nil {
		return nil, now, fmt.Errorf("mongodb: %w", err)
	}
	// The engine's B-tree internal pages and index scale with the dataset.
	indexBytes := cfg.IndexBytes
	if indexBytes == 0 {
		indexBytes = uint64(cfg.Records) * RecordBytes / 8
	}
	if indexBytes < vm.PageSize {
		indexBytes = vm.PageSize
	}
	s.indexSeg, err = guest.Alloc("wiredtiger.index", indexBytes, vm.ClassAnon)
	if err != nil {
		return nil, now, fmt.Errorf("mongodb: %w", err)
	}
	s.slots = s.cacheSeg.Pages() * recordsPerPage
	s.slotOf = make([]int32, cfg.Records)
	for i := range s.slotOf {
		s.slotOf[i] = -1
	}
	s.recordAt = make([]int32, s.slots)
	for i := range s.recordAt {
		s.recordAt[i] = -1
	}
	s.lruElem = make([]*list.Element, s.slots)

	// Load phase: write every record's page to disk. Record contents encode
	// the record id so reads can verify integrity end to end.
	page := make([]byte, vm.PageSize)
	for p := uint64(0); p < datasetPages; p++ {
		for r := 0; r < recordsPerPage; r++ {
			id := int(p)*recordsPerPage + r
			if id >= cfg.Records {
				break
			}
			fillRecord(page[r*RecordBytes:(r+1)*RecordBytes], id)
		}
		if now, err = disk.WritePage(now, p, page); err != nil {
			return nil, now, fmt.Errorf("mongodb load: %w", err)
		}
	}
	return s, now, nil
}

// Stats returns a snapshot of counters.
func (s *Store) Stats() Stats { return s.stats }

// CacheSlots reports the cache capacity in records.
func (s *Store) CacheSlots() int { return s.slots }

// ReadRecord fetches record id, serving from the WiredTiger cache when
// possible and reading from disk (and inserting into the cache) otherwise.
func (s *Store) ReadRecord(now time.Duration, id int) (time.Duration, error) {
	if id < 0 || id >= s.cfg.Records {
		return now, fmt.Errorf("%w: %d", ErrBadRecord, id)
	}
	s.stats.Reads++
	now += s.cfg.QueryCPU

	// Index walk: the engine descends internal pages to locate the record.
	// The root levels are hot, the leaf levels spread across the index.
	var err error
	if now, err = s.touchIndex(now, id); err != nil {
		return now, err
	}

	if slot := s.slotOf[id]; slot >= 0 {
		s.stats.CacheHits++
		done, err := s.verifySlot(now, int(slot), id)
		if err != nil {
			return done, err
		}
		s.lru.MoveToBack(s.lruElem[slot])
		return done, nil
	}

	// Cache miss: read the record's page from disk.
	s.stats.CacheMisses++
	s.stats.DiskReads++
	diskPage := uint64(id / recordsPerPage)
	pageData, done, err := s.disk.ReadPage(now, diskPage)
	if err != nil {
		return done, fmt.Errorf("mongodb: disk read: %w", err)
	}
	now = done

	// Insert into the cache. Past the eviction trigger (80% full, like
	// WiredTiger's eviction_trigger) the eviction server walks candidate
	// pages (reading their generations) before choosing the LRU victim; the
	// walk pages against the kernel just like record accesses do.
	if s.lru.Len()*5 >= s.slots*4 {
		if now, err = s.evictionWalk(now); err != nil {
			return now, err
		}
	}
	slot, evictErr := s.allocSlot()
	if evictErr != nil {
		return now, evictErr
	}
	record := pageData[(id%recordsPerPage)*RecordBytes : (id%recordsPerPage+1)*RecordBytes]
	if now, err = s.writeSlot(now, slot, id, record); err != nil {
		return now, err
	}
	s.slotOf[id] = int32(slot)
	s.recordAt[slot] = int32(id)
	if s.lruElem[slot] == nil {
		s.lruElem[slot] = s.lru.PushBack(slot)
	} else {
		s.lru.MoveToBack(s.lruElem[slot])
	}
	return now, nil
}

// allocSlot finds a free cache slot, evicting the engine's LRU choice when
// the cache is full. Eviction is purely bookkeeping for a read-only
// workload: clean records need no writeback.
func (s *Store) allocSlot() (int, error) {
	if s.lru.Len() < s.slots {
		// Unused slots remain: take the next one.
		for slot := s.lru.Len(); slot < s.slots; slot++ {
			if s.recordAt[slot] < 0 && s.lruElem[slot] == nil {
				return slot, nil
			}
		}
	}
	front := s.lru.Front()
	if front == nil {
		return 0, errors.New("mongodb: cache has no evictable slot")
	}
	slot, ok := front.Value.(int)
	if !ok {
		return 0, errors.New("mongodb: corrupt LRU entry")
	}
	victim := s.recordAt[slot]
	if victim >= 0 {
		s.slotOf[victim] = -1
		s.recordAt[slot] = -1
		s.stats.Evictions++
	}
	return slot, nil
}

// touchIndex walks the engine's internal pages for a lookup: one hot root
// page, then IndexTouches pages spread over the index keyed by the record id
// (consecutive ids share leaf pages, like a real B-tree).
func (s *Store) touchIndex(now time.Duration, id int) (time.Duration, error) {
	pages := s.indexSeg.Pages()
	if pages == 0 || s.cfg.IndexTouches == 0 {
		return now, nil
	}
	var err error
	// Root: always page 0 — hot, effectively always resident.
	if _, now, err = s.guest.Touch(now, s.indexSeg.Addr(0), false); err != nil {
		return now, err
	}
	span := (s.cfg.Records + pages - 1) / pages
	if span < 1 {
		span = 1
	}
	for i := 0; i < s.cfg.IndexTouches; i++ {
		// Interior levels fan out: mix the id with the level so lookups
		// touch distinct interior pages while nearby ids share leaves.
		page := ((id / span) + i*(pages/(s.cfg.IndexTouches+1)+1)) % pages
		// Every few lookups the engine updates statistics in the page
		// (read generations), dirtying it.
		write := (id+i)%8 == 0
		if _, now, err = s.guest.Touch(now, s.indexSeg.Addr(uint64(page)*vm.PageSize), write); err != nil {
			return now, err
		}
	}
	return now, nil
}

// evictionWalk models the engine's eviction server scanning candidate pages.
// WiredTiger walks its trees in order, which from the kernel's point of view
// is a scatter of reads across the whole cache: cold pages get their
// referenced bits set for no reason, poisoning kswapd's working-set signal.
// This is the "poor interaction between the WiredTiger storage engine's
// memory cache and kswapd" (§VI-D2); FluidMem's monitor ignores resident
// accesses entirely, so it is immune to the noise.
func (s *Store) evictionWalk(now time.Duration) (time.Duration, error) {
	var err error
	for i := 0; i < s.cfg.EvictionWalk; i++ {
		slot := s.rng.Intn(s.slots)
		if _, now, err = s.guest.Touch(now, s.slotAddr(slot), false); err != nil {
			return now, err
		}
	}
	return now, nil
}

// slotAddr returns the guest address of a cache slot.
func (s *Store) slotAddr(slot int) uint64 {
	page := slot / recordsPerPage
	off := (slot % recordsPerPage) * RecordBytes
	return s.cacheSeg.Addr(uint64(page)*vm.PageSize + uint64(off))
}

// verifySlot touches the slot's guest memory (this is where paging bites)
// and verifies the record's integrity marker. The touch is a write:
// WiredTiger updates the page's read generation on every access, so cache
// pages are perpetually dirty — the detail that feeds kswapd's writeback
// storms under swap (§VI-D2).
func (s *Store) verifySlot(now time.Duration, slot, id int) (time.Duration, error) {
	addr := s.slotAddr(slot)
	data, now, err := s.guest.Touch(now, addr, true)
	if err != nil {
		return now, err
	}
	off := addr & (vm.PageSize - 1)
	header := binary.LittleEndian.Uint64(data[off : off+8])
	if header != recordHeader(id) {
		return now, fmt.Errorf("%w: record %d header %#x", ErrCorrupt, id, header)
	}
	if _, now, err = s.guest.Read64(now, addr+RecordBytes/2); err != nil {
		return now, err
	}
	return now, nil
}

// writeSlot copies a record into the slot's guest memory.
func (s *Store) writeSlot(now time.Duration, slot, id int, record []byte) (time.Duration, error) {
	addr := s.slotAddr(slot)
	data, now, err := s.guest.Touch(now, addr, true)
	if err != nil {
		return now, err
	}
	off := addr & (vm.PageSize - 1)
	copy(data[off:off+RecordBytes], record)
	return now, nil
}

// fillRecord writes a verifiable record body for id.
func fillRecord(dst []byte, id int) {
	binary.LittleEndian.PutUint64(dst[:8], recordHeader(id))
	for i := 8; i < len(dst); i++ {
		dst[i] = byte(id + i)
	}
}

// recordHeader is the integrity marker stored at the head of each record.
func recordHeader(id int) uint64 {
	return 0xD0C0_0000_0000_0000 | uint64(uint32(id))
}
