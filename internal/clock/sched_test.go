package clock

import (
	"reflect"
	"testing"
	"time"
)

func TestSchedulerOrdersByTimeThenSeq(t *testing.T) {
	s := NewScheduler()
	var got []int
	rec := func(id int) func(time.Duration) {
		return func(time.Duration) { got = append(got, id) }
	}
	// Three events at t=10 scheduled out of order relative to their IDs, one
	// earlier, one later: ties must resolve in scheduling order.
	s.Schedule(10, 0, rec(1))
	s.Schedule(5, 0, rec(0))
	s.Schedule(10, 1, rec(2))
	s.Schedule(20, 0, rec(4))
	s.Schedule(10, 2, rec(3))
	if n := s.Run(); n != 5 {
		t.Fatalf("ran %d events, want 5", n)
	}
	if want := []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("execution order %v, want %v", got, want)
	}
	if s.Now() != 20 {
		t.Fatalf("final time %v, want 20ns", s.Now())
	}
}

func TestSchedulerEventsScheduleEvents(t *testing.T) {
	s := NewScheduler()
	var fires []time.Duration
	var chain func(now time.Duration)
	chain = func(now time.Duration) {
		fires = append(fires, now)
		if len(fires) < 4 {
			s.Schedule(now+3, 0, chain)
		}
	}
	s.Schedule(1, 0, chain)
	s.Run()
	if want := []time.Duration{1, 4, 7, 10}; !reflect.DeepEqual(fires, want) {
		t.Fatalf("chain fired at %v, want %v", fires, want)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	ran := 0
	for _, at := range []time.Duration{1, 5, 9, 13} {
		s.Schedule(at, 0, func(time.Duration) { ran++ })
	}
	if n := s.RunUntil(9); n != 3 || ran != 3 {
		t.Fatalf("RunUntil(9) ran %d/%d, want 3", n, ran)
	}
	if s.Len() != 1 {
		t.Fatalf("%d events left, want 1", s.Len())
	}
	// An event scheduled inside the window by a drained event also runs.
	s.Schedule(14, 0, func(now time.Duration) {
		s.Schedule(now+1, 0, func(time.Duration) { ran++ })
	})
	if n := s.RunUntil(20); n != 3 || ran != 5 {
		t.Fatalf("second RunUntil ran %d (total %d), want 3 (total 5)", n, ran)
	}
}

func TestSchedulerRejectsPastEvents(t *testing.T) {
	s := NewScheduler()
	s.Schedule(10, 0, func(time.Duration) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	s.Schedule(5, 0, func(time.Duration) {})
}
