package clock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := New()
	c.Advance(5 * time.Microsecond)
	c.Advance(7 * time.Microsecond)
	if got, want := c.Now(), 12*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	c := New()
	c.AdvanceTo(10 * time.Microsecond)
	if got, want := c.Now(), 10*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	// Moving to the past is a no-op.
	c.AdvanceTo(3 * time.Microsecond)
	if got, want := c.Now(), 10*time.Microsecond; got != want {
		t.Fatalf("Now() after past AdvanceTo = %v, want %v", got, want)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := New()
		prev := c.Now()
		for _, s := range steps {
			c.Advance(time.Duration(s))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRandIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRandNormFloat64Moments(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestLatencyModelFixed(t *testing.T) {
	m := Fixed(10 * time.Microsecond)
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if got := m.Sample(r); got != 10*time.Microsecond {
			t.Fatalf("fixed model sampled %v", got)
		}
	}
}

func TestLatencyModelJitterMean(t *testing.T) {
	m := LatencyModel{Base: 100 * time.Microsecond, Jitter: 5 * time.Microsecond}
	r := NewRand(5)
	const n = 50000
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += m.Sample(r)
	}
	mean := sum / n
	if mean < 98*time.Microsecond || mean > 102*time.Microsecond {
		t.Fatalf("mean = %v, want ~100µs", mean)
	}
}

func TestLatencyModelFloor(t *testing.T) {
	m := LatencyModel{Base: 8 * time.Microsecond, Jitter: 100 * time.Microsecond}
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		if got := m.Sample(r); got < 2*time.Microsecond {
			t.Fatalf("sample %v below floor Base/4", got)
		}
	}
}

func TestLatencyModelTail(t *testing.T) {
	m := LatencyModel{Base: 2 * time.Microsecond, TailProb: 0.05, TailExtra: 100 * time.Microsecond}
	r := NewRand(6)
	tail := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Sample(r) > 10*time.Microsecond {
			tail++
		}
	}
	frac := float64(tail) / n
	if frac < 0.03 || frac > 0.07 {
		t.Fatalf("tail fraction = %v, want ~0.05", frac)
	}
}

func TestDeviceQueueing(t *testing.T) {
	d := NewDevice(Fixed(10*time.Microsecond), 1)
	// Two requests at t=0: the second queues behind the first.
	c1 := d.Submit(0)
	c2 := d.Submit(0)
	if c1 != 10*time.Microsecond {
		t.Fatalf("first completion = %v, want 10µs", c1)
	}
	if c2 != 20*time.Microsecond {
		t.Fatalf("queued completion = %v, want 20µs", c2)
	}
}

func TestDeviceIdleRestart(t *testing.T) {
	d := NewDevice(Fixed(10*time.Microsecond), 1)
	d.Submit(0)
	// A request arriving after the device is idle starts immediately.
	c := d.Submit(100 * time.Microsecond)
	if c != 110*time.Microsecond {
		t.Fatalf("completion = %v, want 110µs", c)
	}
}

func TestDeviceSubmitNAmortised(t *testing.T) {
	d := NewDevice(Fixed(20*time.Microsecond), 1)
	batch := d.Submit(0)
	d.Reset()
	batched := d.SubmitN(0, 8)
	var serial time.Duration
	d.Reset()
	for i := 0; i < 8; i++ {
		serial = d.Submit(0)
	}
	if batched <= batch {
		t.Fatalf("batch of 8 (%v) should cost more than one op (%v)", batched, batch)
	}
	if batched >= serial {
		t.Fatalf("batch of 8 (%v) should cost less than 8 serial ops (%v)", batched, serial)
	}
}

func TestDeviceSubmitNZero(t *testing.T) {
	d := NewDevice(Fixed(time.Microsecond), 1)
	if got := d.SubmitN(5, 0); got != 5 {
		t.Fatalf("SubmitN(5, 0) = %v, want 5", got)
	}
}

func TestDeviceCompletionNeverBeforeSubmission(t *testing.T) {
	f := func(seed uint64, offsets []uint16) bool {
		d := NewDevice(LatencyModel{
			Base:      3 * time.Microsecond,
			Jitter:    time.Microsecond,
			TailProb:  0.01,
			TailExtra: 50 * time.Microsecond,
		}, seed)
		now := time.Duration(0)
		for _, off := range offsets {
			now += time.Duration(off)
			if done := d.Submit(now); done < now {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
