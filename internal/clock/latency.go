package clock

import (
	"fmt"
	"time"
)

// LatencyModel describes the service-time distribution of a simulated
// operation: a base cost, Gaussian jitter, and a heavy tail that fires with
// probability TailProb and adds up to TailExtra. This three-part shape is
// enough to reproduce the paper's average / stdev / p99 triples (Table I).
type LatencyModel struct {
	// Base is the typical service time.
	Base time.Duration
	// Jitter is the standard deviation of Gaussian noise around Base.
	Jitter time.Duration
	// TailProb is the probability, in [0, 1], that a request lands in the
	// heavy tail.
	TailProb float64
	// TailExtra is the maximum additional latency of a tail event; the actual
	// extra is uniform in (0, TailExtra].
	TailExtra time.Duration
}

// Fixed returns a model with no jitter and no tail.
func Fixed(d time.Duration) LatencyModel {
	return LatencyModel{Base: d}
}

// Sample draws one service time. The result is never below Base/4, keeping
// the distribution positive and right-skewed like real device latencies.
func (m LatencyModel) Sample(r *Rand) time.Duration {
	d := m.Base
	if m.Jitter > 0 {
		d += time.Duration(r.NormFloat64() * float64(m.Jitter))
	}
	if m.TailProb > 0 && r.Float64() < m.TailProb {
		d += time.Duration(r.Float64() * float64(m.TailExtra))
	}
	if min := m.Base / 4; d < min {
		d = min
	}
	return d
}

func (m LatencyModel) String() string {
	return fmt.Sprintf("latency{base=%v jitter=%v tail=%.3f%%/%v}",
		m.Base, m.Jitter, m.TailProb*100, m.TailExtra)
}

// Device models a serial resource (a NIC, a disk, a store server thread):
// requests are serviced one at a time, so a request arriving while the device
// is busy queues behind it. Completion time is therefore
// max(now, busyUntil) + service.
type Device struct {
	Model LatencyModel

	rng       *Rand
	busyUntil time.Duration
}

// NewDevice returns a device with the given service-time model and RNG seed.
func NewDevice(model LatencyModel, seed uint64) *Device {
	return &Device{Model: model, rng: NewRand(seed)}
}

// Submit enqueues a request at virtual time now and returns the virtual time
// at which it completes.
func (d *Device) Submit(now time.Duration) time.Duration {
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.busyUntil = start + d.Model.Sample(d.rng)
	return d.busyUntil
}

// SubmitN enqueues n back-to-back requests (e.g. a multi-write batch) and
// returns the completion time of the last one. Batched requests pay the base
// cost once plus a per-item marginal cost of Base/4, modelling amortised
// batching such as RAMCloud multi-write.
func (d *Device) SubmitN(now time.Duration, n int) time.Duration {
	if n <= 0 {
		return now
	}
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	svc := d.Model.Sample(d.rng)
	if n > 1 {
		svc += time.Duration(n-1) * (d.Model.Base / 4)
	}
	d.busyUntil = start + svc
	return d.busyUntil
}

// BusyUntil reports the time at which the device becomes idle.
func (d *Device) BusyUntil() time.Duration {
	return d.busyUntil
}

// Reset clears queued work, e.g. between benchmark phases.
func (d *Device) Reset() {
	d.busyUntil = 0
}
