// Package clock provides the deterministic virtual-time substrate used by
// every simulated component in this repository.
//
// All latency results reported by the benchmark harness are measured on a
// virtual timeline: devices and code paths charge simulated durations to a
// Clock instead of sleeping. Runs are reproducible bit-for-bit because every
// source of randomness is a seeded PRNG owned by the component that uses it.
package clock

import (
	"fmt"
	"time"
)

// Clock is a monotonic virtual clock. The zero value is a clock at time zero,
// ready to use.
//
// Clock is not safe for concurrent use; the simulation model in this
// repository is single-threaded discrete-event simulation (see DESIGN.md §5),
// so each simulated machine owns exactly one Clock.
type Clock struct {
	now time.Duration
}

// New returns a clock starting at virtual time zero.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time as an offset from the start of the
// simulation.
func (c *Clock) Now() time.Duration {
	return c.now
}

// Advance moves the clock forward by d. Advancing by a negative duration is a
// programming error and panics, since virtual time is monotonic.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("clock: advance by negative duration %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock forward to t. If t is in the past the clock is
// unchanged; discrete-event completions may be observed late, never early.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}
