package clock

import (
	"container/heap"
	"fmt"
	"time"
)

// Scheduler is a deterministic discrete-event queue: events are popped in
// (time, insertion-sequence) order, so two events scheduled for the same
// virtual instant always run in the order they were scheduled, independent
// of heap internals or map iteration. It is the replay substrate for the
// multi-worker fault pipeline — N concurrent streams of work interleave
// through one Scheduler, and because ties break on the sequence number the
// interleaving is bit-for-bit identical on every run with the same seed.
//
// Scheduler is not safe for concurrent use: like Clock, it belongs to one
// single-threaded simulation loop (DESIGN.md §5, §9).
type Scheduler struct {
	events eventHeap
	nextID uint64
	now    time.Duration
}

// Event is one scheduled callback, as delivered by Next.
type Event struct {
	// At is the virtual time the event fires.
	At time.Duration
	// Stream identifies the logical source (a vCPU, a worker); the
	// scheduler treats it as opaque.
	Stream int
	// Run is the event body. It may schedule further events.
	Run func(now time.Duration)

	seq uint64
}

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewScheduler returns an empty queue at virtual time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the fire time of the most recently popped event (the current
// virtual time of the event loop).
func (s *Scheduler) Now() time.Duration { return s.now }

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return len(s.events) }

// Schedule enqueues fn to run at virtual time at. Scheduling into the past
// is a programming error (virtual time is monotonic) and panics.
func (s *Scheduler) Schedule(at time.Duration, stream int, fn func(now time.Duration)) {
	if at < s.now {
		panic(fmt.Sprintf("clock: scheduling event at %v, before current time %v", at, s.now))
	}
	s.nextID++
	heap.Push(&s.events, Event{At: at, Stream: stream, Run: fn, seq: s.nextID})
}

// Step pops and runs the earliest event, returning false when the queue is
// empty. The event's fire time becomes the scheduler's current time.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(Event)
	s.now = e.At
	e.Run(e.At)
	return true
}

// RunUntil drains events with fire times <= deadline (events an event
// schedules are included if they land inside the window) and returns the
// number executed.
func (s *Scheduler) RunUntil(deadline time.Duration) int {
	ran := 0
	for len(s.events) > 0 && s.events[0].At <= deadline {
		s.Step()
		ran++
	}
	return ran
}

// Run drains the queue completely and returns the number of events executed.
func (s *Scheduler) Run() int {
	ran := 0
	for s.Step() {
		ran++
	}
	return ran
}
