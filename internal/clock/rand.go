package clock

// Rand is a small, fast, deterministic PRNG (SplitMix64 seeded xorshift).
// Components own their generator so that adding randomness to one device does
// not perturb another device's sequence.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded from seed. Two generators with the same
// seed produce identical sequences.
func NewRand(seed uint64) *Rand {
	// SplitMix64 step to avoid weak states for small seeds (including 0).
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	return &Rand{state: z}
}

// Uint64 returns the next pseudo-random value (xorshift64*).
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("clock: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns an approximately standard-normal variate using the sum
// of uniforms (Irwin–Hall with 12 terms), which is plenty for latency jitter.
func (r *Rand) NormFloat64() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += r.Float64()
	}
	return sum - 6
}
