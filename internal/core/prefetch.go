package core

import (
	"time"

	"fluidmem/internal/kvstore"
)

// This file implements sequential prefetching, an optional monitor extension
// in the spirit of the paper's §V-B optimisations: after resolving a store
// read for page P, the monitor pipelines reads for the next pages of the
// same region while the guest is already running — off the fault critical
// path. Sequential scans then find their next pages resident; random
// workloads pay extra store traffic for unused pages, which is why the
// kernel's swap readahead is disabled in the paper's configuration and why
// this stays opt-in (ablation A6 quantifies both sides).

// prefetch pulls up to cfg.PrefetchPages pages following addr into the VM.
// It runs on the monitor thread after the faulting vCPU has been woken; t is
// the monitor-free time and the return value replaces it.
func (m *Monitor) prefetch(t time.Duration, addr uint64, part kvstore.PartitionID) time.Duration {
	region := m.regionOf(addr)
	if region == nil {
		return t
	}
	// Top halves: pipeline every eligible read first.
	type pending struct {
		addr uint64
		key  kvstore.Key
		get  *kvstore.PendingGet
		data []byte // filled for write-list steals
	}
	var reads []pending
	for i := 1; i <= m.cfg.PrefetchPages; i++ {
		next := addr + uint64(i)*PageSize
		if next >= region.End() {
			break
		}
		if !m.seen[next] || m.lru.Contains(next) {
			continue
		}
		key := kvstore.MakeKey(next, part)
		if m.cfg.AsyncWrite {
			if data, ok := m.wb.Steal(t, key); ok {
				reads = append(reads, pending{addr: next, key: key, data: data})
				continue
			}
			if doneAt, ok := m.wb.WaitFor(t, key); ok {
				// In flight: not worth waiting for during a prefetch.
				_ = doneAt
				continue
			}
		}
		if !m.storeLocal {
			t += m.cfg.MonitorOps.AsyncIssue.Sample(m.rng)
		}
		reads = append(reads, pending{addr: next, key: key, get: m.cfg.Store.StartGet(t, key)})
	}
	// Bottom halves: install in order. The demand-faulted page (addr) is
	// protected: prefetching stops rather than evict the page the guest is
	// about to retry — readahead must never displace demand.
	for _, p := range reads {
		data := p.data
		if p.get != nil {
			var err error
			data, t, err = p.get.Wait(t)
			if err != nil {
				// A prefetch miss is harmless: the page will fault normally.
				continue
			}
		}
		if oldest, ok := m.lru.Oldest(); ok && oldest == addr && m.lru.Len() >= m.cfg.LRUCapacity {
			break
		}
		var err error
		for m.lru.Len() >= m.cfg.LRUCapacity {
			if t, err = m.evictOne(t, false); err != nil {
				return t
			}
		}
		done, err := m.fd.Copy(t, p.addr, data)
		if err != nil {
			continue
		}
		t = done
		m.epoch++
		m.lru.Insert(p.addr)
		m.stats.Prefetches++
	}
	return t
}
