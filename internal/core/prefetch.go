package core

import (
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/trace"
)

// This file implements sequential prefetching, an optional monitor extension
// in the spirit of the paper's §V-B optimisations: after resolving a store
// read for page P, the monitor pipelines reads for the next pages of the
// same region while the guest is already running — off the fault critical
// path. Sequential scans then find their next pages resident; random
// workloads pay extra store traffic for unused pages, which is why the
// kernel's swap readahead is disabled in the paper's configuration and why
// this stays opt-in (ablation A6 quantifies both sides).

// prefetchCandidate is one readahead page picked by gatherPrefetch.
type prefetchCandidate struct {
	addr uint64
	key  kvstore.Key
	data []byte // non-nil when resolved from the write list (steal)
	// stolen marks data that came from the write list rather than the
	// store: the store never saw those bytes, so the install must not be
	// treated as store-backed (clean tracking would drop dirty data).
	stolen bool
}

// gatherPrefetch selects up to cfg.PrefetchPages pages following addr that
// are previously seen but not resident; candidates sitting on the pending
// write list are stolen immediately. Selection depends only on logical
// monitor state (seen set, LRU membership, write-list contents) — never on
// virtual time — so the candidate set, and therefore the store traffic it
// triggers, is identical for every worker count. In particular a page whose
// write is merely in flight is still read: the store's contents were updated
// when the flush was submitted, so the read observes fresh data.
func (m *Monitor) gatherPrefetch(now time.Duration, addr uint64, part kvstore.PartitionID) []prefetchCandidate {
	region := m.regionOf(addr)
	if region == nil {
		return nil
	}
	// The candidate list lives in the data arena: valid until the next
	// fault's gather, which is after the caller is done with it.
	cands := m.scratch.cands[:0]
	for i := 1; i <= m.cfg.PrefetchPages; i++ {
		next := addr + uint64(i)*PageSize
		if next >= region.End() {
			break
		}
		if !m.seen.has(next) || m.lru.Contains(next) {
			continue
		}
		c := prefetchCandidate{addr: next, key: kvstore.MakeKey(next, part)}
		// A zero-elided page's store copy is stale (the zero bitmap is
		// authoritative); prefetching it would install dead data. Skip it —
		// its own demand fault resolves via UFFDIO_ZEROPAGE.
		if m.wb.HasZero(c.key) {
			continue
		}
		if m.cfg.AsyncWrite {
			if data, ok := m.wb.Steal(now, c.key); ok {
				c.data = data
				c.stolen = true
			}
		}
		cands = append(cands, c)
	}
	m.scratch.cands = cands
	return cands
}

// installPrefetched installs one readahead page, evicting to make room but
// never displacing the demand page the guest is about to retry — readahead
// must never displace demand, so stop=true tells the caller to cease
// prefetching when the demand page is the eviction candidate. storeBacked
// arms clean tracking for pages whose bytes came from the store (not from a
// write-list steal).
func (m *Monitor) installPrefetched(t time.Duration, demand, addr uint64, data []byte, storeBacked bool) (time.Duration, bool) {
	if oldest, ok := m.lru.Oldest(); ok && oldest == demand && m.lru.Len() >= m.cfg.LRUCapacity {
		return t, true
	}
	installStart := t
	var err error
	for m.lru.Len() >= m.cfg.LRUCapacity {
		if t, err = m.evictOne(t, false); err != nil {
			return t, true
		}
	}
	done, err := m.fd.Copy(t, addr, data)
	if err != nil {
		return t, false // skip this page; it will fault normally
	}
	t = done
	m.epoch++
	if storeBacked {
		if t, err = m.markClean(t, addr); err != nil {
			return t, false
		}
	}
	m.lru.Insert(addr)
	m.cell(addr).Prefetches++
	m.tr.Emit(trace.EvPrefetch, m.workerOf(addr), addr, installStart, t-installStart, "")
	return t, false
}

// prefetch pulls up to cfg.PrefetchPages pages following addr into the VM
// with pipelined per-page split reads. It runs on the fault's worker after
// the faulting vCPU has been woken; t is the worker-free time and the return
// value replaces it. (With cfg.BatchReads the monitor instead folds the same
// candidate set into the demand fault's MultiGet — see resolveBatchedRead.)
func (m *Monitor) prefetch(t time.Duration, addr uint64, part kvstore.PartitionID) time.Duration {
	cands := m.gatherPrefetch(t, addr, part)
	if len(cands) == 0 {
		return t
	}
	// Top halves: pipeline every read first. The handle vector is arena
	// scratch, parallel to cands; a candidate with data already stolen from
	// the write list needs no read, so its slot stays zero and the bottom
	// half keys off c.data instead.
	gets := m.scratch.gets
	if cap(gets) < len(cands) {
		gets = make([]kvstore.PendingGet, len(cands))
	}
	gets = gets[:len(cands)]
	m.scratch.gets = gets
	for i, c := range cands {
		if c.data != nil {
			continue // stolen from the write list; no store read needed
		}
		if !m.storeLocal {
			t += m.cfg.MonitorOps.AsyncIssue.Sample(m.rng)
		}
		gets[i] = m.cfg.Store.StartGet(t, c.key)
	}
	// Bottom halves: install in order.
	for i, c := range cands {
		data := c.data
		if data == nil {
			var err error
			data, t, err = gets[i].Wait(t)
			if err != nil {
				// A prefetch miss is harmless: the page will fault normally.
				continue
			}
		}
		var stop bool
		t, stop = m.installPrefetched(t, addr, c.addr, data, !c.stolen)
		if stop {
			break
		}
	}
	// Stolen frames are ours; UFFDIO_COPY copied what it installed.
	for _, c := range cands {
		if c.stolen {
			m.fd.Recycle(c.data)
		}
	}
	return t
}
