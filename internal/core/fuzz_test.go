package core

import (
	"bytes"
	"testing"
)

// FuzzCompressRoundTrip hammers the zero-run codec with arbitrary page
// contents: every page must survive compress → decompress byte-for-byte,
// and decompressPage must never panic or accept a blob that does not decode
// to exactly one page.
func FuzzCompressRoundTrip(f *testing.F) {
	zero := make([]byte, PageSize)
	f.Add(zero)
	mixed := make([]byte, PageSize)
	for i := 0; i < PageSize; i += 97 {
		mixed[i] = byte(i)
	}
	f.Add(mixed)
	full := bytes.Repeat([]byte{0xAB}, PageSize)
	f.Add(full)
	runs := make([]byte, PageSize)
	copy(runs[100:], bytes.Repeat([]byte{7}, 5)) // literal shorter than minZeroRun
	copy(runs[2048:], bytes.Repeat([]byte{9}, 300))
	f.Add(runs)
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Shape arbitrary input into a page: truncate or zero-pad.
		page := make([]byte, PageSize)
		copy(page, raw)
		blob := compressPage(page)
		got, err := decompressPage(blob)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !bytes.Equal(got, page) {
			t.Fatal("round trip lost data")
		}
	})
}

// FuzzDecompressArbitrary feeds decompressPage raw attacker-controlled
// blobs: it must return an error or a full page, never panic, over-read, or
// return a short slice.
func FuzzDecompressArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{tokZeros, 0x80, 0x20}) // uvarint 4096: a full zero page
	f.Add([]byte{tokLiteral, 3, 'a', 'b', 'c'})
	f.Add([]byte{tokZeros})   // truncated varint
	f.Add([]byte{0x00, 0x01}) // unknown token
	f.Add(compressPage(make([]byte, PageSize)))
	f.Fuzz(func(t *testing.T, blob []byte) {
		out, err := decompressPage(blob)
		if err == nil && len(out) != PageSize {
			t.Fatalf("accepted blob decoding to %d bytes", len(out))
		}
	})
}
