package core

import (
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/kvstore"
)

// This file implements post-copy VM migration over the disaggregated store.
// The paper (§VII) observes that live migration and memory disaggregation
// are complementary: FluidMem already keeps any page of a VM in a key-value
// store reachable from every hypervisor, so "moving" a VM is metadata-only —
// evict the source's resident pages, hand the page-tracking state to the
// destination monitor, and let pages fault back in on demand, exactly like
// QEMU's userfaultfd-based post-copy migration but with the store as the
// transfer channel.

// Migration errors.
var (
	// ErrNotQuiesced reports an export attempted with writes still queued.
	ErrNotQuiesced = errors.New("core: monitor not quiesced")
	// ErrPartitionTaken reports an import whose partition is already owned.
	ErrPartitionTaken = errors.New("core: partition already registered here")
)

// VMImage is the metadata handed from source to destination monitor: the
// page contents themselves never travel — they are already in the store.
type VMImage struct {
	// PID identifies the VM process (preserved across the migration).
	PID int
	// Partition is the VM's virtual partition in the store.
	Partition kvstore.PartitionID
	// Regions lists the registered ranges.
	Regions []VMRegion
	// Seen lists pages the monitor has tracked; on the destination these
	// resolve from the store rather than the zero page.
	Seen []uint64
}

// VMRegion is one registered range.
type VMRegion struct {
	Start  uint64
	Length uint64
}

// MetadataBytes estimates the transfer size of the image — the only data
// that crosses the network during migration.
func (img *VMImage) MetadataBytes() int {
	return 8*len(img.Seen) + 16*len(img.Regions) + 16
}

// ExportVM prepares pid for migration: every resident page is evicted to the
// store, the write list is drained, and the VM's regions are unregistered.
// The partition is *not* released — its pages are live and ownership moves
// with the returned image.
func (m *Monitor) ExportVM(now time.Duration, pid int) (*VMImage, time.Duration, error) {
	part, ok := m.partitions[pid]
	if !ok {
		return nil, now, fmt.Errorf("%w: %d", ErrUnknownPID, pid)
	}
	img := &VMImage{PID: pid, Partition: part}
	var err error
	for _, region := range m.fd.Regions() {
		if region.PID != pid {
			continue
		}
		img.Regions = append(img.Regions, VMRegion{Start: region.Start, Length: region.Length})
		// Evict this region's resident pages (pause-and-push, the brief
		// stop-and-copy phase of post-copy migration).
		for addr := region.Start; addr < region.End(); addr += PageSize {
			if !m.lru.Contains(addr) {
				continue
			}
			m.lru.Remove(addr)
			m.cell(addr).Evictions++
			data, done, rerr := m.fd.Remap(now, addr, false)
			if rerr != nil {
				return nil, now, fmt.Errorf("core: export remap %#x: %w", addr, rerr)
			}
			now = done
			m.epoch++
			if now, err = m.wb.Enqueue(now, kvstore.MakeKey(addr, part), addr, data); err != nil {
				return nil, now, fmt.Errorf("core: export enqueue %#x: %w", addr, err)
			}
		}
		for addr := region.Start; addr < region.End(); addr += PageSize {
			if m.seen.has(addr) {
				img.Seen = append(img.Seen, addr)
				m.seen.del(addr)
			}
		}
		m.fd.Unregister(region)
		m.seen.dropRegion(region.Start)
	}
	// Pages parked in the compressed tier must also reach the store: the
	// destination hypervisor cannot see this machine's local pool.
	if m.tier != nil {
		if now, err = m.tier.drainTo(now, m.wb); err != nil {
			return nil, now, fmt.Errorf("core: export compressed tier: %w", err)
		}
	}
	// Quiesce: all exported pages must be durable in the store before the
	// destination may fault on them.
	if now, err = m.wb.Drain(now); err != nil {
		return nil, now, fmt.Errorf("core: export drain: %w", err)
	}
	delete(m.partitions, pid)
	return img, now, nil
}

// ImportVM adopts a migrated VM: regions are registered under the image's
// existing partition and the seen set is installed, so first accesses fault
// pages in from the store — post-copy semantics, no bulk copy.
func (m *Monitor) ImportVM(now time.Duration, img *VMImage) (time.Duration, error) {
	if img == nil || len(img.Regions) == 0 {
		return now, errors.New("core: empty VM image")
	}
	if _, taken := m.partitions[img.PID]; taken {
		return now, fmt.Errorf("%w: pid %d", ErrPartitionTaken, img.PID)
	}
	if err := m.registry.Adopt(img.Partition); err != nil {
		return now, fmt.Errorf("core: adopt partition %d: %w", img.Partition, err)
	}
	m.partitions[img.PID] = img.Partition
	for _, r := range img.Regions {
		if _, err := m.fd.Register(r.Start, r.Length, img.PID); err != nil {
			return now, fmt.Errorf("core: import register: %w", err)
		}
		m.seen.addRegion(r.Start, r.Length)
	}
	for _, addr := range img.Seen {
		m.seen.add(addr)
	}
	// Metadata transfer cost: the seen set and region table cross the wire.
	now += transferCost(img.MetadataBytes())
	return now, nil
}

// transferCost models shipping the migration metadata over the datacenter
// network (~2 µs setup + ~0.35 ns/byte ≈ 23 Gb/s effective).
func transferCost(bytes int) time.Duration {
	return 2*time.Microsecond + time.Duration(bytes)*350*time.Nanosecond/1000
}
