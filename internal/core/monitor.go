package core

import (
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/core/resilience"
	"fluidmem/internal/hotset"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/trace"
	"fluidmem/internal/uffd"
	"fluidmem/internal/vm"
)

// PageSize is the fault-handling granularity.
const PageSize = uffd.PageSize

// Errors.
var (
	// ErrUnknownPID reports fault traffic for an unregistered VM.
	ErrUnknownPID = errors.New("core: PID has no registered partition")
	// ErrBadConfig reports an invalid monitor configuration.
	ErrBadConfig = errors.New("core: invalid configuration")
)

// Stats counts monitor activity.
//
// Concurrency/memory model: with cfg.Workers > 1 the monitor keeps one
// Stats cell per worker and each worker increments ONLY its own cell — the
// per-CPU counter discipline a real multi-threaded fault handler uses, so
// counter updates need no atomics, share no cache lines, and cannot race.
// Readers never observe a cell directly: Monitor.Stats() merges every cell
// into one snapshot, which is the single synchronisation point (in a real
// monitor the merge would read each cell with a relaxed atomic load; in
// this single-threaded simulation the discipline is structural). Increments
// are attributed by the page address that caused them, so merged totals are
// identical for every worker count — except InFlightWaits, which counts a
// virtual-time race (a fault arriving while its page's write is still in
// flight) and is therefore legitimately timing-dependent.
type Stats struct {
	// Faults is total userfaultfd events handled.
	Faults uint64
	// FirstTouch counts faults resolved with the zero page.
	FirstTouch uint64
	// RemoteReads counts faults resolved by a store read.
	RemoteReads uint64
	// Steals counts faults resolved from the pending write list.
	Steals uint64
	// InFlightWaits counts faults that had to wait for an in-flight write.
	InFlightWaits uint64
	// Evictions counts pages pushed out of the LRU list.
	Evictions uint64
	// SyncWrites counts evictions written synchronously (AsyncWrite off).
	SyncWrites uint64
	// Flushes counts write-list batch flushes.
	Flushes uint64
	// Prefetches counts pages pulled in ahead of demand (PrefetchPages > 0).
	Prefetches uint64
	// ZeroElided counts evictions elided into the zero bitmap instead of a
	// store write (ElideZeroPages). Deliberately separate from SyncWrites
	// and Flushes: an elided eviction causes no store traffic at all.
	ZeroElided uint64
	// CleanDropped counts evictions dropped because the victim was never
	// written since its store-backed install (CleanPageDrop) — the store
	// copy is current, so no write is needed.
	CleanDropped uint64
	// ZeroRefills counts re-faults of zero-elided pages resolved with
	// UFFDIO_ZEROPAGE instead of a store read.
	ZeroRefills uint64
}

// Monitor is the FluidMem user-space page-fault handler. One monitor serves
// all VMs on a hypervisor: its LRU capacity bounds their combined local
// footprint (§V-A). It implements vm.Backing so a VM plugs into it directly.
//
// The implementation is split into two halves, Clio-style:
//
//   - The data plane (dataplane.go) is the per-fault path — fault decode,
//     shard dispatch, LRU touch, store read, write-list append. After a
//     short warm-up it runs without heap allocation: page frames, LRU
//     nodes, pending writes, and batch buffers all come from pools, and
//     the nil-tracer / nil-hotset fast paths cost nothing.
//   - The control plane (controlplane.go) is everything slow or rare —
//     registration, teardown, resize, drain, stats capture — and may
//     allocate freely. Control threads talk to the data plane through the
//     lock-free intake ring (intake.go), drained at fault boundaries.
type Monitor struct {
	cfg  Config
	fd   *uffd.FD
	rng  *clock.Rand
	prof *Profiler
	// tr receives trace events and phase-latency observations; nil (the
	// default) disables tracing with no behavioural difference.
	tr *trace.Tracer
	// hot receives fault/evict observations for working-set estimation;
	// nil (the default) disables it with no behavioural difference.
	hot *hotset.Tracker

	lru  *lruList
	seen *seenSet
	wb   *writeback
	tier *compressedTier // nil unless cfg.Compress is set

	registry     kvstore.Registry
	hypervisorID string
	partitions   map[int]kvstore.PartitionID

	// workers is the fault-pipeline width (>= 1); faults shard across
	// workers by page address. workerFree[w] is when worker w finishes its
	// current work; a fault is serialised only behind its own worker, so
	// faults in different shards overlap in virtual time. With one worker
	// this degenerates to the serial monitor's single event loop.
	workers    int
	workerFree []time.Duration
	// shardIdx maps page addresses to workers without a per-fault divide;
	// the LRU segments and write-list queues share it so a page's structures
	// always agree on their owning shard.
	shardIdx shardIndexer

	// storeLocal caches whether the backend is on-hypervisor (no RPC stack).
	storeLocal bool
	// resilient is non-nil when cfg.Resilience routed the store through the
	// fault-handling policy layer; it exposes health and counters.
	resilient *resilience.Store

	// intake is the control plane's async command queue (see intake.go);
	// scratch holds the data plane's reusable buffers (see arena.go).
	intake  *intakeRing
	scratch dataArena

	epoch uint64
	// statsCells holds one counter cell per worker; see the Stats comment
	// for the memory model. Use cell(addr) to pick the owning cell and
	// Stats() to merge.
	statsCells []Stats
	// faultLatencies optionally samples end-to-end fault costs.
	faultLatencies func(time.Duration)
}

var (
	_ vm.Backing          = (*Monitor)(nil)
	_ vm.FootprintLimiter = (*Monitor)(nil)
)

// NewMonitor builds a monitor. registry may be nil, in which case a local
// (single-hypervisor) partition registry is used.
func NewMonitor(cfg Config, registry kvstore.Registry, hypervisorID string) (*Monitor, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("%w: nil store", ErrBadConfig)
	}
	if cfg.LRUCapacity < 1 {
		return nil, fmt.Errorf("%w: LRU capacity %d < 1", ErrBadConfig, cfg.LRUCapacity)
	}
	if registry == nil {
		registry = kvstore.NewLocalRegistry()
	}
	if hypervisorID == "" {
		hypervisorID = "hypervisor-0"
	}
	// The resilience layer wraps the store before anything else captures it,
	// so the fault path, the writeback engine, and teardown deletes all
	// route through the policy.
	var res *resilience.Store
	if cfg.Resilience != nil {
		res = resilience.Wrap(cfg.Store, *cfg.Resilience, cfg.Seed+0x7e57)
		res.SetTracer(cfg.Trace)
		cfg.Store = res
	}
	local := false
	if l, ok := cfg.Store.(kvstore.Local); ok {
		local = l.Local()
	}
	var tier *compressedTier
	if cfg.Compress != nil {
		if cfg.Compress.PoolBytes < PageSize {
			return nil, fmt.Errorf("%w: compressed pool smaller than a page", ErrBadConfig)
		}
		tier = newCompressedTier(*cfg.Compress, cfg.Seed+0x7a7a)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	fd := uffd.New(cfg.UFFD, cfg.Seed)
	fd.SetTracer(cfg.Trace, workers)
	// A region's page map holds resident pages only; +1 covers the transient
	// overshoot between install and the post-wake evict loop.
	fd.SetPageHint(cfg.LRUCapacity + 1)
	m := &Monitor{
		storeLocal:   local,
		resilient:    res,
		tier:         tier,
		cfg:          cfg,
		fd:           fd,
		rng:          clock.NewRand(cfg.Seed + 0x5151),
		prof:         NewProfiler(true),
		tr:           cfg.Trace,
		hot:          cfg.Hotset,
		workers:      workers,
		workerFree:   make([]time.Duration, workers),
		shardIdx:     newShardIndexer(workers),
		statsCells:   make([]Stats, workers),
		lru:          newShardedLRUCap(workers, cfg.LRUCapacity),
		seen:         newSeenSet(),
		wb:           newShardedWriteback(cfg.Store, cfg.WriteBatchSize, workers, cfg.Trace),
		intake:       newIntakeRing(intakeCapacity),
		registry:     registry,
		hypervisorID: hypervisorID,
		partitions:   make(map[int]kvstore.PartitionID),
	}
	// When the write-back engine is done with a buffer (flushed, coalesced
	// away, cancelled) the frame returns to the descriptor's pool: frames
	// circulate VM → write list → pool → VM without touching the heap.
	m.wb.setRecycle(fd.Recycle)
	return m, nil
}
