package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/core/resilience"
	"fluidmem/internal/hotset"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/stats"
	"fluidmem/internal/trace"
	"fluidmem/internal/uffd"
	"fluidmem/internal/vm"
)

// PageSize is the fault-handling granularity.
const PageSize = uffd.PageSize

// Errors.
var (
	// ErrUnknownPID reports fault traffic for an unregistered VM.
	ErrUnknownPID = errors.New("core: PID has no registered partition")
	// ErrBadConfig reports an invalid monitor configuration.
	ErrBadConfig = errors.New("core: invalid configuration")
)

// Stats counts monitor activity.
//
// Concurrency/memory model: with cfg.Workers > 1 the monitor keeps one
// Stats cell per worker and each worker increments ONLY its own cell — the
// per-CPU counter discipline a real multi-threaded fault handler uses, so
// counter updates need no atomics, share no cache lines, and cannot race.
// Readers never observe a cell directly: Monitor.Stats() merges every cell
// into one snapshot, which is the single synchronisation point (in a real
// monitor the merge would read each cell with a relaxed atomic load; in
// this single-threaded simulation the discipline is structural). Increments
// are attributed by the page address that caused them, so merged totals are
// identical for every worker count — except InFlightWaits, which counts a
// virtual-time race (a fault arriving while its page's write is still in
// flight) and is therefore legitimately timing-dependent.
type Stats struct {
	// Faults is total userfaultfd events handled.
	Faults uint64
	// FirstTouch counts faults resolved with the zero page.
	FirstTouch uint64
	// RemoteReads counts faults resolved by a store read.
	RemoteReads uint64
	// Steals counts faults resolved from the pending write list.
	Steals uint64
	// InFlightWaits counts faults that had to wait for an in-flight write.
	InFlightWaits uint64
	// Evictions counts pages pushed out of the LRU list.
	Evictions uint64
	// SyncWrites counts evictions written synchronously (AsyncWrite off).
	SyncWrites uint64
	// Flushes counts write-list batch flushes.
	Flushes uint64
	// Prefetches counts pages pulled in ahead of demand (PrefetchPages > 0).
	Prefetches uint64
	// ZeroElided counts evictions elided into the zero bitmap instead of a
	// store write (ElideZeroPages). Deliberately separate from SyncWrites
	// and Flushes: an elided eviction causes no store traffic at all.
	ZeroElided uint64
	// CleanDropped counts evictions dropped because the victim was never
	// written since its store-backed install (CleanPageDrop) — the store
	// copy is current, so no write is needed.
	CleanDropped uint64
	// ZeroRefills counts re-faults of zero-elided pages resolved with
	// UFFDIO_ZEROPAGE instead of a store read.
	ZeroRefills uint64
}

// Monitor is the FluidMem user-space page-fault handler. One monitor serves
// all VMs on a hypervisor: its LRU capacity bounds their combined local
// footprint (§V-A). It implements vm.Backing so a VM plugs into it directly.
type Monitor struct {
	cfg  Config
	fd   *uffd.FD
	rng  *clock.Rand
	prof *Profiler
	// tr receives trace events and phase-latency observations; nil (the
	// default) disables tracing with no behavioural difference.
	tr *trace.Tracer
	// hot receives fault/evict observations for working-set estimation;
	// nil (the default) disables it with no behavioural difference.
	hot *hotset.Tracker

	lru  *lruList
	seen map[uint64]bool
	wb   *writeback
	tier *compressedTier // nil unless cfg.Compress is set

	registry     kvstore.Registry
	hypervisorID string
	partitions   map[int]kvstore.PartitionID

	// workers is the fault-pipeline width (>= 1); faults shard across
	// workers by page address. workerFree[w] is when worker w finishes its
	// current work; a fault is serialised only behind its own worker, so
	// faults in different shards overlap in virtual time. With one worker
	// this degenerates to the serial monitor's single event loop.
	workers    int
	workerFree []time.Duration

	// storeLocal caches whether the backend is on-hypervisor (no RPC stack).
	storeLocal bool
	// resilient is non-nil when cfg.Resilience routed the store through the
	// fault-handling policy layer; it exposes health and counters.
	resilient *resilience.Store

	epoch uint64
	// statsCells holds one counter cell per worker; see the Stats comment
	// for the memory model. Use cell(addr) to pick the owning cell and
	// Stats() to merge.
	statsCells []Stats
	// faultLatencies optionally samples end-to-end fault costs.
	faultLatencies func(time.Duration)
}

var (
	_ vm.Backing          = (*Monitor)(nil)
	_ vm.FootprintLimiter = (*Monitor)(nil)
)

// NewMonitor builds a monitor. registry may be nil, in which case a local
// (single-hypervisor) partition registry is used.
func NewMonitor(cfg Config, registry kvstore.Registry, hypervisorID string) (*Monitor, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("%w: nil store", ErrBadConfig)
	}
	if cfg.LRUCapacity < 1 {
		return nil, fmt.Errorf("%w: LRU capacity %d < 1", ErrBadConfig, cfg.LRUCapacity)
	}
	if registry == nil {
		registry = kvstore.NewLocalRegistry()
	}
	if hypervisorID == "" {
		hypervisorID = "hypervisor-0"
	}
	// The resilience layer wraps the store before anything else captures it,
	// so the fault path, the writeback engine, and teardown deletes all
	// route through the policy.
	var res *resilience.Store
	if cfg.Resilience != nil {
		res = resilience.Wrap(cfg.Store, *cfg.Resilience, cfg.Seed+0x7e57)
		res.SetTracer(cfg.Trace)
		cfg.Store = res
	}
	local := false
	if l, ok := cfg.Store.(kvstore.Local); ok {
		local = l.Local()
	}
	var tier *compressedTier
	if cfg.Compress != nil {
		if cfg.Compress.PoolBytes < PageSize {
			return nil, fmt.Errorf("%w: compressed pool smaller than a page", ErrBadConfig)
		}
		tier = newCompressedTier(*cfg.Compress, cfg.Seed+0x7a7a)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	fd := uffd.New(cfg.UFFD, cfg.Seed)
	fd.SetTracer(cfg.Trace, workers)
	return &Monitor{
		storeLocal:   local,
		resilient:    res,
		tier:         tier,
		cfg:          cfg,
		fd:           fd,
		rng:          clock.NewRand(cfg.Seed + 0x5151),
		prof:         NewProfiler(true),
		tr:           cfg.Trace,
		hot:          cfg.Hotset,
		workers:      workers,
		workerFree:   make([]time.Duration, workers),
		statsCells:   make([]Stats, workers),
		lru:          newShardedLRU(workers),
		seen:         make(map[uint64]bool),
		wb:           newShardedWriteback(cfg.Store, cfg.WriteBatchSize, workers, cfg.Trace),
		registry:     registry,
		hypervisorID: hypervisorID,
		partitions:   make(map[int]kvstore.PartitionID),
	}, nil
}

// workerOf shards a page address onto a fault-pipeline worker. The same
// function shards the LRU segments and write-list queues, so a worker only
// ever touches its own structures on the fault path (evictions, which pick
// the globally oldest page, are the one deliberate cross-shard operation).
func (m *Monitor) workerOf(addr uint64) int {
	return int((addr / PageSize) % uint64(m.workers))
}

// cell returns the Stats cell owned by addr's worker; see Stats for the
// memory model.
func (m *Monitor) cell(addr uint64) *Stats {
	return &m.statsCells[m.workerOf(addr)]
}

// record charges one profiled monitor operation to both the Table-I
// profiler and the tracer's per-(phase, worker) latency histogram, with the
// worker attributed by the page address that caused the work.
func (m *Monitor) record(op string, addr uint64, d time.Duration) {
	m.prof.Record(op, d)
	m.tr.Observe(op, m.workerOf(addr), d)
}

// traceFault emits the end-to-end FAULT span for a resolved fault: the
// event's arg carries the resolution path, and a per-path histogram
// ("FAULT.<path>") accumulates alongside the merged FAULT one so the
// paper's Fig. 5-style breakdown falls straight out of a Snapshot.
func (m *Monitor) traceFault(ev uffd.Event, start, resume time.Duration, path string, err error) {
	if err != nil || m.tr == nil {
		return
	}
	w := m.workerOf(ev.Addr)
	m.tr.Emit(trace.EvFault, w, ev.Addr, start, resume-start, path)
	m.tr.Observe("FAULT."+path, w, resume-start)
}

// RegisterRange registers [start, start+length) for fault handling on behalf
// of the VM process pid, allocating the VM's virtual partition on first use.
// QEMU calls this when wrapping the guest memory allocation, and again for
// each hotplugged memory slot (§IV).
func (m *Monitor) RegisterRange(start, length uint64, pid int) (*uffd.Region, error) {
	if _, ok := m.partitions[pid]; !ok {
		part, err := m.registry.Allocate(m.hypervisorID, pid)
		if err != nil {
			return nil, fmt.Errorf("core: allocate partition for pid %d: %w", pid, err)
		}
		m.partitions[pid] = part
	}
	region, err := m.fd.Register(start, length, pid)
	if err != nil {
		return nil, fmt.Errorf("core: register region: %w", err)
	}
	return region, nil
}

// UnregisterVM tears down all regions of pid: resident pages are dropped,
// store contents deleted, and the partition released (VM shutdown, §V-A).
// Teardown is best-effort under backend failure: a failed delete (a leaked
// page in a crashed member) is remembered but does not abort the teardown —
// the partition is still unregistered and released, and the first delete
// error is reported at the end.
func (m *Monitor) UnregisterVM(now time.Duration, pid int) (time.Duration, error) {
	part, ok := m.partitions[pid]
	if !ok {
		return now, fmt.Errorf("%w: %d", ErrUnknownPID, pid)
	}
	var firstErr error
	for _, region := range m.fd.Regions() {
		if region.PID != pid {
			continue
		}
		for addr := region.Start; addr < region.End(); addr += PageSize {
			if m.lru.Remove(addr) {
				m.fd.Drop(addr)
				m.epoch++
			}
			m.hot.Remove(addr)
			if m.seen[addr] {
				delete(m.seen, addr)
				key := kvstore.MakeKey(addr, part)
				if m.tier != nil {
					m.tier.drop(key)
				}
				// Cancel pending engine state so a later flush cannot
				// resurrect a deleted page in the store.
				m.wb.DiscardQueued(key)
				m.wb.DropZero(key)
				var err error
				if now, err = m.cfg.Store.Delete(now, key); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("core: delete page %#x: %w", addr, err)
				}
			}
		}
		m.fd.Unregister(region)
	}
	delete(m.partitions, pid)
	if err := m.registry.Release(part); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("core: release partition: %w", err)
	}
	return now, firstErr
}

// Touch implements vm.Backing: a guest access to addr. Resident pages return
// immediately; missing pages take the full monitor fault path.
func (m *Monitor) Touch(now time.Duration, addr uint64, write bool) ([]byte, time.Duration, error) {
	data, done, hit, err := m.fd.Access(now, addr, write)
	if err != nil {
		return nil, done, err
	}
	if hit {
		return data, done, nil
	}
	ev, ok := m.fd.NextEvent()
	if !ok {
		return nil, done, errors.New("core: fault raised but no event queued")
	}
	resolved, err := m.handleFault(done, ev)
	if err != nil {
		return nil, resolved, err
	}
	if m.faultLatencies != nil {
		m.faultLatencies(resolved - now)
	}
	// The vCPU retries the instruction; the page is now resident. A write
	// to a freshly zero-mapped page breaks COW here, exactly as in §V-A.
	data, done, hit, err = m.fd.Access(resolved, addr, write)
	if err != nil {
		return nil, done, err
	}
	if !hit {
		return nil, done, fmt.Errorf("core: page %#x still missing after fault resolution", addr)
	}
	return data, done, nil
}

// handleFault resolves one userfaultfd event, returning the virtual time at
// which the faulting vCPU resumes.
func (m *Monitor) handleFault(eventAt time.Duration, ev uffd.Event) (time.Duration, error) {
	m.cell(ev.Addr).Faults++
	part, ok := m.partitions[ev.PID]
	if !ok {
		return eventAt, fmt.Errorf("%w: %d", ErrUnknownPID, ev.PID)
	}
	m.hot.Fault(ev.Addr)
	// Handling starts when the fault's worker is free: the pipeline shards
	// by page address, so a fault queues only behind its own worker.
	w := m.workerOf(ev.Addr)
	t := eventAt
	if m.workerFree[w] > t {
		t = m.workerFree[w]
	}
	t += m.cfg.MonitorOps.EventDispatch.Sample(m.rng)

	// Seen-pages hash probe (the "pagetracker", §V-A).
	hashCost := m.cfg.MonitorOps.HashLookup.Sample(m.rng)
	m.record(OpInsertPageHash, ev.Addr, hashCost)
	t += hashCost

	key := kvstore.MakeKey(ev.Addr, part)
	if !m.seen[ev.Addr] && m.cfg.PageTracker {
		resumeAt, err := m.resolveFirstTouch(t, ev)
		m.traceFault(ev, eventAt, resumeAt, "first_touch", err)
		return resumeAt, err
	}
	// Zero-bitmap hit: the page's latest eviction was elided, so any store
	// copy is stale — restore it with UFFDIO_ZEROPAGE, no store traffic.
	// Checked unconditionally (not gated on cfg.ElideZeroPages): a standing
	// mark means the store was never updated, so reading it would be wrong
	// even if the feature has since been toggled off.
	if m.wb.TakeZero(key) {
		resumeAt, err := m.resolveZeroRefill(t, ev)
		m.traceFault(ev, eventAt, resumeAt, "zero_refill", err)
		return resumeAt, err
	}
	resumeAt, path, batched, err := m.resolveFromStore(t, ev, key)
	if err == nil && m.cfg.PrefetchPages > 0 && !batched {
		// Read ahead while the guest is already running (off the critical
		// path; occupies only the fault's worker). The batched-read path
		// has already folded the prefetch into its MultiGet.
		m.workerFree[w] = m.prefetch(m.workerFree[w], ev.Addr, part)
	}
	m.traceFault(ev, eventAt, resumeAt, path, err)
	return resumeAt, err
}

// resolveFirstTouch maps the zero page and wakes the guest; eviction, if
// needed, happens after the wake-up, off the critical path (Figure 2).
func (m *Monitor) resolveFirstTouch(t time.Duration, ev uffd.Event) (time.Duration, error) {
	m.cell(ev.Addr).FirstTouch++
	m.seen[ev.Addr] = true
	return m.zeroFill(t, ev)
}

// resolveZeroRefill resolves a re-fault of a zero-elided page: the eviction
// recorded the page's all-zero contents in the zero bitmap instead of
// writing the store, so the refill is a local UFFDIO_ZEROPAGE — the same
// fast path as first touch, counted separately.
func (m *Monitor) resolveZeroRefill(t time.Duration, ev uffd.Event) (time.Duration, error) {
	m.cell(ev.Addr).ZeroRefills++
	return m.zeroFill(t, ev)
}

// zeroFill installs the zero page, wakes the guest, and runs asynchronous
// eviction afterwards — shared tail of first-touch and zero-refill faults.
func (m *Monitor) zeroFill(t time.Duration, ev uffd.Event) (time.Duration, error) {
	done, err := m.fd.ZeroPage(t, ev.Addr)
	if err != nil {
		return t, fmt.Errorf("core: zeropage %#x: %w", ev.Addr, err)
	}
	m.prof.Record(OpUffdZeroPage, done-t)
	t = done
	m.epoch++

	lruCost := m.cfg.MonitorOps.LRUInsert.Sample(m.rng)
	m.record(OpInsertLRUCache, ev.Addr, lruCost)
	t += lruCost
	m.lru.Insert(ev.Addr)

	t = m.fd.Wake(t, ev.Addr)
	resumeAt := t + m.cfg.MonitorOps.Resume.Sample(m.rng)

	// Asynchronous eviction (blue path in Figure 2): the monitor keeps
	// working after the guest resumes.
	mFree := t
	var err2 error
	for m.lru.Len() > m.cfg.LRUCapacity {
		if mFree, err2 = m.evictOne(mFree, false); err2 != nil {
			return resumeAt, err2
		}
	}
	m.workerFree[m.workerOf(ev.Addr)] = mFree
	return resumeAt, nil
}

// resolveFromStore fetches a previously seen page: from the write list
// (steal), after an in-flight write, or from the key-value store, evicting
// to make room. path names the resolution route for the fault trace
// ("tier", "steal", "read", "batched_read"). The batched return flag
// reports that the read already folded the prefetch window into its
// MultiGet, so the caller must not prefetch again.
func (m *Monitor) resolveFromStore(t time.Duration, ev uffd.Event, key kvstore.Key) (resumeAt time.Duration, path string, batched bool, err error) {
	// Compressed-tier hit: decompress locally, no network round trip.
	if m.tier != nil {
		data, done, hit, err := m.tier.take(t, key)
		if err != nil {
			return t, "tier", false, err
		}
		if hit {
			// Not store-backed: the tier held the only current copy.
			rt, err := m.installAndWake(done, ev, data, false, true)
			return rt, "tier", false, err
		}
	}
	// Steal shortcut: the page is sitting on the pending write list.
	if m.cfg.StealEnabled && m.cfg.AsyncWrite {
		if data, ok := m.wb.Steal(t, key); ok {
			m.cell(ev.Addr).Steals++
			// Not store-backed: the stolen write never reached the store.
			rt, err := m.installAndWake(t, ev, data, false, true)
			return rt, "steal", false, err
		}
	} else if m.cfg.AsyncWrite && m.wb.Queued(key) {
		// Without stealing, a queued write must be flushed and completed
		// before the read can see the page — the two round trips the steal
		// optimisation shortcuts (§V-B).
		if err := m.wb.Flush(t); err != nil {
			return t, "read", false, fmt.Errorf("core: forced flush for %v: %w", key, err)
		}
	}
	// A write of this page is in flight: wait for it to land, then read.
	if doneAt, ok := m.wb.WaitFor(t, key); ok {
		m.cell(ev.Addr).InFlightWaits++
		t = doneAt
	}

	m.cell(ev.Addr).RemoteReads++
	if m.cfg.AsyncRead && m.cfg.BatchReads && m.cfg.PrefetchPages > 0 {
		rt, b, err := m.resolveBatchedRead(t, ev, key)
		return rt, "batched_read", b, err
	}
	var data []byte
	if m.cfg.AsyncRead {
		// Top half: issue the read immediately; the eviction's REMAP and
		// all monitor bookkeeping (LRU insert, cache update) run while the
		// network waits (§V-B asynchronous reads). Only the copy and wake
		// remain after the reply lands.
		issue := t
		if !m.storeLocal {
			issue += m.cfg.MonitorOps.AsyncIssue.Sample(m.rng)
		}
		pending := m.cfg.Store.StartGet(issue, key)
		overlap := issue
		for m.lru.Len() >= m.cfg.LRUCapacity {
			if overlap, err = m.evictOne(overlap, true); err != nil {
				return t, "read", false, err
			}
			overlap += m.cfg.MonitorOps.EvictFinish.Sample(m.rng)
		}
		updCost := m.cfg.MonitorOps.CacheUpdate.Sample(m.rng)
		m.record(OpUpdatePageCache, ev.Addr, updCost)
		overlap += updCost
		lruCost := m.cfg.MonitorOps.LRUInsert.Sample(m.rng)
		m.record(OpInsertLRUCache, ev.Addr, lruCost)
		overlap += lruCost
		m.lru.Insert(ev.Addr)

		// Bottom half.
		var readDone time.Duration
		data, readDone, err = pending.Wait(overlap)
		m.record(OpReadPage, ev.Addr, pending.ReadyAt-issue)
		if err != nil {
			return readDone, "read", false, fmt.Errorf("core: read %v: %w", key, err)
		}
		done, err := m.fd.Copy(readDone, ev.Addr, data)
		if err != nil {
			return readDone, "read", false, fmt.Errorf("core: copy into %#x: %w", ev.Addr, err)
		}
		m.prof.Record(OpUffdCopy, done-readDone)
		m.epoch++
		if done, err = m.markClean(done, ev.Addr); err != nil {
			return done, "read", false, err
		}
		t = m.fd.Wake(done, ev.Addr)
		m.workerFree[m.workerOf(ev.Addr)] = t
		return t + m.cfg.MonitorOps.Resume.Sample(m.rng), "read", false, nil
	}
	{
		if !m.storeLocal {
			t += m.cfg.MonitorOps.RPCOverhead.Sample(m.rng)
		}
		var readDone time.Duration
		data, readDone, err = m.cfg.Store.Get(t, key)
		m.record(OpReadPage, ev.Addr, readDone-t)
		if err != nil {
			return readDone, "read", false, fmt.Errorf("core: read %v: %w", key, err)
		}
		t = readDone
		for m.lru.Len() >= m.cfg.LRUCapacity {
			if t, err = m.evictOne(t, false); err != nil {
				return t, "read", false, err
			}
		}
	}
	rt, err := m.installAndWake(t, ev, data, true, false)
	return rt, "read", false, err
}

// resolveBatchedRead resolves a demand fault and its readahead window with a
// single amortised MultiGet (cfg.BatchReads): the demand key and every
// prefetch candidate travel in one round trip instead of a pipeline of
// per-page split reads. The eviction's REMAP and monitor bookkeeping still
// overlap the network wait as in the split-read path, and the readahead
// pages are installed after the guest wakes, off the critical path.
func (m *Monitor) resolveBatchedRead(t time.Duration, ev uffd.Event, key kvstore.Key) (time.Duration, bool, error) {
	w := m.workerOf(ev.Addr)
	cands := m.gatherPrefetch(t, ev.Addr, key.Partition())
	issue := t
	if !m.storeLocal {
		issue += m.cfg.MonitorOps.AsyncIssue.Sample(m.rng)
	}
	keys := make([]kvstore.Key, 1, 1+len(cands))
	keys[0] = key
	idx := make([]int, 0, len(cands)) // candidate index for each extra key
	for i, c := range cands {
		if c.data == nil {
			keys = append(keys, c.key)
			idx = append(idx, i)
		}
	}
	pages, readDone, err := m.cfg.Store.MultiGet(issue, keys)
	if err != nil {
		return t, true, fmt.Errorf("core: batched read %v: %w", key, err)
	}
	if pages[0] == nil {
		return t, true, fmt.Errorf("core: read %v: %w", key, kvstore.ErrNotFound)
	}
	for j, ci := range idx {
		cands[ci].data = pages[1+j] // nil stays nil on a store miss
	}
	// Eviction and bookkeeping overlap the network wait (§V-B).
	overlap := issue
	for m.lru.Len() >= m.cfg.LRUCapacity {
		if overlap, err = m.evictOne(overlap, true); err != nil {
			return t, true, err
		}
		overlap += m.cfg.MonitorOps.EvictFinish.Sample(m.rng)
	}
	updCost := m.cfg.MonitorOps.CacheUpdate.Sample(m.rng)
	m.record(OpUpdatePageCache, ev.Addr, updCost)
	overlap += updCost
	lruCost := m.cfg.MonitorOps.LRUInsert.Sample(m.rng)
	m.record(OpInsertLRUCache, ev.Addr, lruCost)
	overlap += lruCost
	m.lru.Insert(ev.Addr)
	m.record(OpReadPage, ev.Addr, readDone-issue)

	// Bottom half: the copy and wake run once both the reply has landed and
	// the overlapped bookkeeping is done.
	t = overlap
	if readDone > t {
		t = readDone
	}
	done, err := m.fd.Copy(t, ev.Addr, pages[0])
	if err != nil {
		return t, true, fmt.Errorf("core: copy into %#x: %w", ev.Addr, err)
	}
	m.prof.Record(OpUffdCopy, done-t)
	m.epoch++
	if done, err = m.markClean(done, ev.Addr); err != nil {
		return done, true, err
	}
	t = m.fd.Wake(done, ev.Addr)
	resumeAt := t + m.cfg.MonitorOps.Resume.Sample(m.rng)

	// Install the readahead pages while the guest is already running.
	mFree := t
	for _, c := range cands {
		if c.data == nil {
			continue // store miss: the page will fault normally
		}
		var stop bool
		mFree, stop = m.installPrefetched(mFree, ev.Addr, c.addr, c.data, !c.stolen)
		if stop {
			break
		}
	}
	m.workerFree[w] = mFree
	return resumeAt, true, nil
}

// installAndWake copies data into the faulting page, re-inserts it in the
// LRU list, and wakes the guest. storeBacked says the bytes match a durable
// store copy, arming clean tracking; steals and tier hits install data the
// store does not hold, so they must pass false. The store-read paths have
// already made room; the steal shortcut has not, so it evicts here
// (needEvict).
func (m *Monitor) installAndWake(t time.Duration, ev uffd.Event, data []byte, storeBacked, needEvict bool) (time.Duration, error) {
	if needEvict {
		var err error
		for m.lru.Len() >= m.cfg.LRUCapacity {
			if t, err = m.evictOne(t, false); err != nil {
				return t, err
			}
		}
	}
	updCost := m.cfg.MonitorOps.CacheUpdate.Sample(m.rng)
	m.record(OpUpdatePageCache, ev.Addr, updCost)
	t += updCost

	done, err := m.fd.Copy(t, ev.Addr, data)
	if err != nil {
		return t, fmt.Errorf("core: copy into %#x: %w", ev.Addr, err)
	}
	m.prof.Record(OpUffdCopy, done-t)
	t = done
	m.epoch++
	if storeBacked {
		if t, err = m.markClean(t, ev.Addr); err != nil {
			return t, err
		}
	}

	lruCost := m.cfg.MonitorOps.LRUInsert.Sample(m.rng)
	m.record(OpInsertLRUCache, ev.Addr, lruCost)
	t += lruCost
	m.lru.Insert(ev.Addr)

	t = m.fd.Wake(t, ev.Addr)
	m.workerFree[m.workerOf(ev.Addr)] = t
	return t + m.cfg.MonitorOps.Resume.Sample(m.rng), nil
}

// evictOne pushes the oldest LRU page out of the VM and toward the store.
// Eviction is the one deliberate cross-shard operation: the victim is the
// globally oldest page, so its counters are attributed to the victim's own
// cell (see Stats) to keep merged totals worker-count-independent.
func (m *Monitor) evictOne(t time.Duration, interleaved bool) (time.Duration, error) {
	victim, ok := m.lru.Oldest()
	if !ok {
		return t, errors.New("core: eviction needed but LRU list empty")
	}
	m.lru.Remove(victim)
	m.hot.Evict(victim)
	m.cell(victim).Evictions++
	evictStart := t

	// Dirty check (must precede the remap, which destroys the mapping): a
	// page still write-protected since its store-backed install was never
	// written, so the store copy is current and no write is needed.
	clean := m.cfg.CleanPageDrop && m.fd.PageClean(victim)

	var (
		data []byte
		err  error
	)
	if m.cfg.EvictWithCopy {
		// Ablation A3: copy the page out, then zap the mapping. Costs a
		// page copy but no TLB shootdown IPI.
		start := t
		var mapped []byte
		mapped, t, _, err = m.fd.Access(t, victim, false)
		if err != nil {
			return t, fmt.Errorf("core: evict-copy read %#x: %w", victim, err)
		}
		data = append([]byte(nil), mapped...)
		copyDone, err := copyOutCost(m, t)
		if err != nil {
			return t, err
		}
		t = copyDone
		m.fd.Drop(victim)
		m.prof.Record(OpUffdRemap, t-start)
		m.tr.Emit(trace.EvEvict, m.workerOf(victim), victim, evictStart, t-evictStart, "copy")
	} else {
		var done time.Duration
		data, done, err = m.fd.Remap(t, victim, interleaved)
		if err != nil {
			return t, fmt.Errorf("core: remap %#x: %w", victim, err)
		}
		m.prof.Record(OpUffdRemap, done-t)
		t = done
		m.tr.Emit(trace.EvEvict, m.workerOf(victim), victim, evictStart, t-evictStart, "remap")
	}
	m.epoch++

	if clean {
		// Clean drop: the store copy is current, the local frame is already
		// freed — the eviction is done, with no write, no tier offer, no
		// list traffic.
		m.cell(victim).CleanDropped++
		m.tr.Emit(trace.EvCleanDrop, m.workerOf(victim), victim, t, 0, "")
		return t, nil
	}

	region := m.regionOf(victim)
	if region == nil {
		return t, fmt.Errorf("core: evicted page %#x has no region", victim)
	}
	part, ok := m.partitions[region.PID]
	if !ok {
		return t, fmt.Errorf("%w: %d", ErrUnknownPID, region.PID)
	}
	key := kvstore.MakeKey(victim, part)

	if m.cfg.ElideZeroPages {
		scanCost := m.cfg.MonitorOps.ZeroScan.Sample(m.rng)
		m.record(OpZeroScan, victim, scanCost)
		t += scanCost
		if allZero(data) {
			// Zero elision: record the mark instead of shipping 4 KiB of
			// zeroes; the re-fault resolves with UFFDIO_ZEROPAGE.
			m.wb.NoteZero(key)
			m.cell(victim).ZeroElided++
			m.tr.Emit(trace.EvZeroElide, m.workerOf(victim), victim, t, 0, "")
			return t, nil
		}
	}

	if m.tier != nil {
		done, accepted, displaced, terr := m.tier.offer(t, key, data)
		if terr != nil {
			return t, terr
		}
		t = done
		for _, d := range displaced {
			if t, err = m.wb.Enqueue(t, d.key, d.key.Page(), d.data); err != nil {
				return t, err
			}
		}
		if accepted {
			return t, nil
		}
	}

	if m.cfg.AsyncWrite {
		flushesBefore := m.wb.flushes
		if t, err = m.wb.Enqueue(t, key, victim, data); err != nil {
			return t, fmt.Errorf("core: enqueue write %v: %w", key, err)
		}
		m.cell(victim).Flushes += m.wb.flushes - flushesBefore
		return t, nil
	}
	m.cell(victim).SyncWrites++
	if !m.storeLocal {
		t += m.cfg.MonitorOps.RPCOverhead.Sample(m.rng)
	}
	done, err := m.cfg.Store.Put(t, key, data)
	m.record(OpWritePage, victim, done-t)
	if err != nil {
		return done, fmt.Errorf("core: write %v: %w", key, err)
	}
	return done, nil
}

// copyOutCost charges a user-space page copy (ablation A3's replacement for
// the zero-copy remap).
func copyOutCost(m *Monitor, t time.Duration) (time.Duration, error) {
	return t + m.cfg.UFFD.Copy.Sample(m.rng), nil
}

// markClean write-protects a freshly installed page whose bytes match the
// durable store copy, arming the clean-drop eviction path: the first guest
// write trips a (simulated) WP fault that clears the protection, so a page
// still protected at eviction time is provably unwritten. No-op unless
// cfg.CleanPageDrop is on, so feature-off runs draw the exact same RNG
// sequence as before.
func (m *Monitor) markClean(t time.Duration, addr uint64) (time.Duration, error) {
	if !m.cfg.CleanPageDrop {
		return t, nil
	}
	done, err := m.fd.SetWriteProtect(t, addr)
	if err != nil {
		return t, fmt.Errorf("core: write-protect %#x: %w", addr, err)
	}
	m.prof.Record(OpUffdWriteProtect, done-t)
	return done, nil
}

// allZero reports whether a page is entirely zero bytes.
func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// Discard implements vm.Backing: a balloon-freed page loses its contents.
func (m *Monitor) Discard(addr uint64) {
	addr = addr &^ uint64(PageSize-1)
	if m.lru.Remove(addr) {
		m.fd.Drop(addr)
		m.epoch++
	}
	// The page's contents are gone: it must leave the ghost list too, or a
	// later first touch of the same address would register as a re-reference
	// and inflate the working-set estimate.
	m.hot.Remove(addr)
	if m.seen[addr] {
		delete(m.seen, addr)
		if region := m.regionOf(addr); region != nil {
			if part, ok := m.partitions[region.PID]; ok {
				// Asynchronous tombstone; timing is off any critical path.
				_, _ = m.cfg.Store.Delete(m.workerFree[m.workerOf(addr)], kvstore.MakeKey(addr, part))
			}
		}
	}
	if region := m.regionOf(addr); region != nil {
		if part, ok := m.partitions[region.PID]; ok {
			key := kvstore.MakeKey(addr, part)
			// A balloon-freed page's bytes must never reach the store:
			// cancel any queued write and drop any zero mark or tier copy.
			m.wb.DiscardQueued(key)
			m.wb.DropZero(key)
			if m.tier != nil {
				m.tier.drop(key)
			}
		}
	}
}

// Resize changes the LRU capacity at runtime (§III: "the local memory buffer
// can be actively sized up or down"). Shrinking evicts immediately; the
// returned time covers the eviction work. This is the mechanism behind
// Table III's near-zero footprints.
func (m *Monitor) Resize(now time.Duration, capacity int) (time.Duration, error) {
	if capacity < 1 {
		return now, fmt.Errorf("%w: LRU capacity %d < 1", ErrBadConfig, capacity)
	}
	m.cfg.LRUCapacity = capacity
	t := now
	var err error
	for m.lru.Len() > capacity {
		if t, err = m.evictOne(t, false); err != nil {
			return t, err
		}
	}
	// Worker 0 is an arbitrary but fixed attribution: a resize is not caused
	// by any page address. The arg carries the new capacity in pages.
	m.tr.Emit(trace.EvResize, 0, uint64(capacity), now, t-now, "")
	return t, nil
}

// Hotset returns the attached working-set estimator (nil when disabled).
func (m *Monitor) Hotset() *hotset.Tracker { return m.hot }

// HotsetSnapshot copies the estimator's counters; the zero Snapshot when
// estimation is disabled.
func (m *Monitor) HotsetSnapshot() hotset.Snapshot { return m.hot.Snapshot() }

// Drain flushes the write list and waits for all in-flight writes —
// quiescing the monitor (tests, teardown, consistent snapshots).
func (m *Monitor) Drain(now time.Duration) (time.Duration, error) {
	return m.wb.Drain(now)
}

// ResidentPages implements vm.Backing.
func (m *Monitor) ResidentPages() int { return m.lru.Len() }

// FootprintLimit implements vm.FootprintLimiter.
func (m *Monitor) FootprintLimit() int { return m.cfg.LRUCapacity }

// Epoch implements vm.Backing.
func (m *Monitor) Epoch() uint64 { return m.epoch }

// Stats returns a snapshot of monitor counters, merged field-wise across
// every worker's cell — the read-side synchronisation point of the
// per-worker counter discipline (see Stats).
func (m *Monitor) Stats() Stats {
	var total Stats
	for i := range m.statsCells {
		c := &m.statsCells[i]
		total.Faults += c.Faults
		total.FirstTouch += c.FirstTouch
		total.RemoteReads += c.RemoteReads
		total.Steals += c.Steals
		total.InFlightWaits += c.InFlightWaits
		total.Evictions += c.Evictions
		total.SyncWrites += c.SyncWrites
		total.Flushes += c.Flushes
		total.Prefetches += c.Prefetches
		total.ZeroElided += c.ZeroElided
		total.CleanDropped += c.CleanDropped
		total.ZeroRefills += c.ZeroRefills
	}
	return total
}

// Workers reports the fault-pipeline width (>= 1).
func (m *Monitor) Workers() int { return m.workers }

// ResidentAddrs returns the sorted addresses of all currently resident
// pages — a stable snapshot for equivalence harnesses (shardtest): two
// monitors are resident-set-equal iff these slices are equal.
func (m *Monitor) ResidentAddrs() []uint64 {
	addrs := make([]uint64, 0, len(m.lru.index))
	for addr := range m.lru.index {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// Profiler exposes the per-code-path latency profiler (§VI-C).
func (m *Monitor) Profiler() *Profiler { return m.prof }

// Tracer exposes the tracer threaded through the fault pipeline (nil when
// tracing is disabled).
func (m *Monitor) Tracer() *trace.Tracer { return m.tr }

// Partition reports the virtual partition assigned to pid.
func (m *Monitor) Partition(pid int) (kvstore.PartitionID, bool) {
	p, ok := m.partitions[pid]
	return p, ok
}

// SetFaultLatencySink registers a callback receiving every end-to-end fault
// latency (pmbench-style measurement hooks).
func (m *Monitor) SetFaultLatencySink(sink func(time.Duration)) {
	m.faultLatencies = sink
}

// WriteListLen reports pages awaiting flush (test hook).
func (m *Monitor) WriteListLen() int { return m.wb.QueuedLen() }

// WritebackStats reports the write-back engine's counters: flush batch
// sizes, coalesced re-evictions, zero-bitmap activity.
func (m *Monitor) WritebackStats() WritebackStats { return m.wb.Snapshot() }

// WPFaults reports guest writes that tripped the clean-tracking write
// protection (CleanPageDrop).
func (m *Monitor) WPFaults() uint64 { return m.fd.WPFaults() }

func (m *Monitor) regionOf(addr uint64) *uffd.Region {
	for _, r := range m.fd.Regions() {
		if addr >= r.Start && addr < r.End() {
			return r
		}
	}
	return nil
}

// StoreHealth reports the resilience layer's backend health signal; ok is
// false when the layer is disabled (cfg.Resilience == nil).
func (m *Monitor) StoreHealth() (resilience.Health, bool) {
	if m.resilient == nil {
		return resilience.Health{}, false
	}
	return m.resilient.Health(), true
}

// ResilienceStats reports the policy layer's intervention counters; ok is
// false when the layer is disabled.
func (m *Monitor) ResilienceStats() (resilience.Stats, bool) {
	if m.resilient == nil {
		return resilience.Stats{}, false
	}
	return m.resilient.ResilienceStats(), true
}

// ResilienceCounters exports the policy layer's counters as a named set
// (nil when the layer is disabled) — the surface fluidmemd and the chaos
// harness render.
func (m *Monitor) ResilienceCounters() *stats.Counters {
	if m.resilient == nil {
		return nil
	}
	return m.resilient.ResilienceStats().Counters()
}

// CompressStats reports the compressed tier's counters; ok is false when the
// tier is disabled.
func (m *Monitor) CompressStats() (CompressStats, bool) {
	if m.tier == nil {
		return CompressStats{}, false
	}
	return m.tier.stats, true
}

// PageResident reports whether the page containing addr is currently in the
// monitor's LRU list (operator/experiment introspection).
func (m *Monitor) PageResident(addr uint64) bool {
	return m.lru.Contains(addr &^ uint64(PageSize-1))
}
