package core

// Tests for the control-plane → data-plane intake ring: single-threaded
// fill/drain/wrap semantics, multi-producer safety under the race detector,
// and an end-to-end stress test interleaving PostResize from a control
// goroutine with faults on the simulation thread.

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestIntakeRingFillDrain(t *testing.T) {
	r := newIntakeRing(8)
	if _, ok := r.Poll(); ok {
		t.Fatal("empty ring produced a command")
	}
	for i := 0; i < 8; i++ {
		if !r.Post(command{kind: cmdResize, arg: i}) {
			t.Fatalf("post %d rejected before capacity", i)
		}
	}
	if r.Post(command{kind: cmdResize, arg: 99}) {
		t.Fatal("post accepted on a full ring")
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	for i := 0; i < 8; i++ {
		c, ok := r.Poll()
		if !ok {
			t.Fatalf("poll %d found nothing", i)
		}
		if c.kind != cmdResize || c.arg != i {
			t.Fatalf("poll %d = %+v, want resize/%d (FIFO order)", i, c, i)
		}
	}
	if _, ok := r.Poll(); ok {
		t.Fatal("drained ring produced a command")
	}
}

// TestIntakeRingWrap cycles the ring many laps with interleaved post/poll so
// the per-slot sequence stamps exercise every lap transition.
func TestIntakeRingWrap(t *testing.T) {
	r := newIntakeRing(4)
	next := 0
	for i := 0; i < 1000; i++ {
		if !r.Post(command{kind: cmdResize, arg: i}) {
			t.Fatalf("post %d rejected", i)
		}
		if i%3 == 2 { // leave up to 3 queued to cross slot boundaries
			for r.Len() > 1 {
				c, ok := r.Poll()
				if !ok {
					t.Fatal("Len > 1 but poll found nothing")
				}
				if c.arg != next {
					t.Fatalf("out of order: got %d, want %d", c.arg, next)
				}
				next++
			}
		}
	}
	for {
		c, ok := r.Poll()
		if !ok {
			break
		}
		if c.arg != next {
			t.Fatalf("out of order at tail: got %d, want %d", c.arg, next)
		}
		next++
	}
	if next != 1000 {
		t.Fatalf("drained %d commands, want 1000", next)
	}
}

func TestIntakeRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {256, 256}, {257, 512},
	} {
		r := newIntakeRing(tc.ask)
		if got := len(r.slots); got != tc.want {
			t.Fatalf("newIntakeRing(%d) has %d slots, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestIntakeRingMultiProducer hammers the ring from several producer
// goroutines with a single concurrent consumer and checks every command is
// delivered exactly once. Run under -race this also validates the
// publication ordering (write cmd before seq store).
func TestIntakeRingMultiProducer(t *testing.T) {
	const producers = 8
	const perProducer = 500
	r := newIntakeRing(64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for !r.Post(command{kind: cmdResize, arg: p*perProducer + i}) {
					runtime.Gosched() // full: let the consumer catch up
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	seen := make(map[int]bool, producers*perProducer)
	drained := false
	for !drained {
		c, ok := r.Poll()
		if !ok {
			select {
			case <-done:
				// Producers finished; one final sweep below.
				drained = true
			default:
				runtime.Gosched()
			}
			continue
		}
		if seen[c.arg] {
			t.Fatalf("command %d delivered twice", c.arg)
		}
		seen[c.arg] = true
	}
	for {
		c, ok := r.Poll()
		if !ok {
			break
		}
		if seen[c.arg] {
			t.Fatalf("command %d delivered twice", c.arg)
		}
		seen[c.arg] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d commands, want %d", len(seen), producers*perProducer)
	}
}

func TestPostResizeAppliedAtFaultBoundary(t *testing.T) {
	m := newMonitor(t, dramCfg(32), 256)
	var now time.Duration
	for i := 0; i < 64; i++ {
		_, done, err := m.Touch(now, addr(i), true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if got := m.ResidentPages(); got != 32 {
		t.Fatalf("resident = %d, want 32", got)
	}
	if !m.PostResize(8) {
		t.Fatal("PostResize rejected")
	}
	// Nothing applied until the data plane reaches a fault boundary.
	if got := m.PendingCommands(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	if got := m.ResidentPages(); got != 32 {
		t.Fatalf("resize applied early: resident = %d", got)
	}
	if _, done, err := m.Touch(now, addr(64), true); err != nil {
		t.Fatal(err)
	} else {
		now = done
	}
	if got := m.ResidentPages(); got > 8 {
		t.Fatalf("resident = %d after resize to 8", got)
	}
	if got := m.PendingCommands(); got != 0 {
		t.Fatalf("pending = %d after drain, want 0", got)
	}
	_ = now
}

func TestPostResizeRejectsBadCapacity(t *testing.T) {
	m := newMonitor(t, dramCfg(16), 64)
	if m.PostResize(0) {
		t.Fatal("capacity 0 accepted")
	}
	if m.PostResize(-3) {
		t.Fatal("negative capacity accepted")
	}
	if got := m.PendingCommands(); got != 0 {
		t.Fatalf("bad capacities queued: pending = %d", got)
	}
}

// TestControlDataHandoffStress interleaves a control goroutine posting
// random resizes with the simulation thread serving faults — the handoff the
// intake ring exists for. Under -race (check-race) this is the regression
// test for the control/data concurrency contract; in any build it checks the
// monitor's LRU bound converges to the last applied capacity.
func TestControlDataHandoffStress(t *testing.T) {
	m := newMonitor(t, dramCfg(64), 1024)
	rng := rand.New(rand.NewSource(42))
	stop := make(chan struct{})
	var posted sync.WaitGroup
	posted.Add(1)
	go func() {
		defer posted.Done()
		ctl := rand.New(rand.NewSource(43))
		for {
			select {
			case <-stop:
				return
			default:
				m.PostResize(8 + ctl.Intn(120)) // full ring is fine: drop it
			}
		}
	}()
	var now time.Duration
	for i := 0; i < 20000; i++ {
		_, done, err := m.Touch(now, addr(rng.Intn(1024)), rng.Intn(2) == 0)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	close(stop)
	posted.Wait()
	// Drain whatever the control thread left queued, then post one last
	// resize so the final state is deterministic, and drain that too.
	if _, done, err := m.Touch(now, addr(0), true); err != nil {
		t.Fatal(err)
	} else {
		now = done
	}
	if !m.PostResize(48) {
		t.Fatal("PostResize rejected on an empty ring")
	}
	if _, _, err := m.Touch(now, addr(1), true); err != nil {
		t.Fatal(err)
	}
	if got := m.PendingCommands(); got != 0 {
		t.Fatalf("pending = %d after final drain, want 0", got)
	}
	if got := m.FootprintLimit(); got != 48 {
		t.Fatalf("final capacity = %d, want 48", got)
	}
	if got := m.ResidentPages(); got > 48 {
		t.Fatalf("resident = %d exceeds final capacity 48", got)
	}
}
