package core

import (
	"runtime"
	"sync/atomic"

	"fluidmem/internal/kvstore"
)

// This file is the parallel data plane's per-shard work queue: a bounded
// single-producer/single-consumer ring of fixed-size work items. The
// sequencer (the caller's goroutine, see parallel.go) is the only producer;
// the shard's executor goroutine is the only consumer. With one producer and
// one consumer the ring needs no CAS loops at all — the producer owns tail,
// the consumer owns head, and each side only *reads* the other's cursor to
// check fullness/emptiness. The release store on tail publishes the slot's
// contents; the release store on head retires the slot for reuse. Items are
// plain values, so steady-state posting allocates nothing.

// parOp discriminates parallel work items.
type parOp uint8

const (
	piNone parOp = iota
	// piAccessHit delivers a resident page to the driver (COW break on write).
	piAccessHit
	// piZeroInstall installs a zero page (first touch / zero refill).
	piZeroInstall
	// piStealInstall moves a pending write-list buffer back in as the page's
	// frame and delivers it (demand-fault steal).
	piStealInstall
	// piPendingInstall is piStealInstall without delivery (prefetch steal).
	piPendingInstall
	// piPendingDrop recycles a stolen pending buffer that was never installed
	// (readahead stopped by the demand-displacement rule).
	piPendingDrop
	// piRead performs a demand store Get at its store turn, installs the
	// page, and delivers it.
	piRead
	// piSlotGet performs one pipelined-prefetch store Get at its store turn,
	// parking the result in a read-job slot for a later install/drop item.
	piSlotGet
	// piMultiRead performs the batched demand+readahead MultiGet at its store
	// turn, parking every result in the read job's slots.
	piMultiRead
	// piReadConsume takes a read-job slot as the page's frame and delivers it
	// (the batched demand page).
	piReadConsume
	// piReadInstall is piReadConsume without delivery (readahead install).
	piReadInstall
	// piReadDrop discards a read-job slot (store miss or stopped readahead).
	piReadDrop
	// piEvictDrop frees a victim's frame (clean drop / zero elide).
	piEvictDrop
	// piEvictEnqueue moves a victim's frame onto the shard's pending list.
	piEvictEnqueue
	// piEvictCoalesce replaces a pending buffer with the victim's frame
	// (same-key re-eviction, queue position kept).
	piEvictCoalesce
	// piEvictSyncPut writes a victim straight to the store (AsyncWrite off).
	piEvictSyncPut
	// piZeroCancel frees a pending buffer cancelled by a zero mark.
	piZeroCancel
	// piContribute hands a pending buffer to a flush job; the last
	// contributor executes the MultiPut at the job's store turn.
	piContribute
)

// parItem is one unit of shard work. Fixed size, passed by value through the
// ring; the pointers reference pooled jobs owned by the engine.
type parItem struct {
	kind   parOp
	write  bool
	expect bool // piSlotGet: sequencer predicted the key present
	slot   int32
	addr   uint64
	key    kvstore.Key
	ticket uint64
	// storeSeq is the item's turn in the global store-operation order;
	// readsBefore is how many read-class turns precede a mutating one.
	storeSeq    uint64
	readsBefore uint64
	fjob        *parFlushJob
	rjob        *parReadJob
}

// spscRing is the bounded SPSC queue. head and tail sit on their own cache
// lines so the producer and consumer never false-share.
type spscRing struct {
	_    [64]byte
	head atomic.Uint64 // consumer cursor: items fully executed and retired
	_    [56]byte
	tail atomic.Uint64 // producer cursor: items published
	_    [56]byte
	mask uint64
	slot []parItem
}

func newSPSCRing(capacity int) *spscRing {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &spscRing{mask: uint64(n - 1), slot: make([]parItem, n)}
}

// push publishes one item; false when full. Producer side only.
func (r *spscRing) push(it parItem) bool {
	t := r.tail.Load()
	if t-r.head.Load() > r.mask {
		return false
	}
	r.slot[t&r.mask] = it
	r.tail.Store(t + 1) // release: publishes the slot write
	return true
}

// peek returns the next item without retiring it. Consumer side only; the
// pointer is valid until pop. Retiring only after execution makes head a
// completion counter: head == tail means every published item has fully run.
func (r *spscRing) peek() (*parItem, bool) {
	h := r.head.Load()
	if r.tail.Load() == h { // acquire: observes the slot write
		return nil, false
	}
	return &r.slot[h&r.mask], true
}

// pop retires the item returned by the last peek. Consumer side only.
func (r *spscRing) pop() {
	h := r.head.Load()
	r.slot[h&r.mask] = parItem{} // drop job pointers so pools aren't pinned
	r.head.Store(h + 1)          // release: publishes the executor's effects
}

// spinYield burns a few polls then yields, so waits stay live at
// GOMAXPROCS=1 without thrashing the scheduler on multicore.
func spinYield(n *int) {
	if *n < 64 {
		*n++
		return
	}
	runtime.Gosched()
}
