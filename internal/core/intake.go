package core

import (
	"sync/atomic"
	"time"
)

// This file is the asynchronous control-plane → data-plane handoff: a
// bounded lock-free intake ring (Vyukov-style bounded queue with a
// multi-producer enqueue and a single-consumer dequeue) plus the Post* API
// control threads call and the drain hook the data plane runs at fault
// boundaries.
//
// Memory model: control-plane threads only touch the ring's atomics — never
// the Monitor's fields — so posting is safe from any goroutine while the
// data plane is mid-fault. Each slot carries a sequence number: a producer
// claims a slot by CASing the enqueue cursor, writes the command, then
// publishes by storing seq = pos+1; the consumer observes the publication
// via that seq load (acquire), reads the command, and retires the slot by
// storing seq = pos+mask+1 for the ring's next lap. All Monitor state
// mutation happens on the data-plane side, inside drainIntake, which runs
// only from the simulation thread — so the Monitor itself needs no locks.
//
// The ring is bounded: Post returns false when full (callers decide whether
// to retry, drop, or fall back to the synchronous API). Commands are applied
// at the virtual time of the fault that drains them; the control work they
// trigger is not charged to the data plane's fault latency, mirroring a real
// monitor where the control thread burns its own CPU.

// commandKind discriminates intake commands.
type commandKind uint8

const (
	cmdNone commandKind = iota
	// cmdResize asks the data plane to re-bound the LRU to arg pages.
	cmdResize
)

// command is one control-plane request.
type command struct {
	kind commandKind
	arg  int
}

// intakeSlot is one ring cell. seq is the publication/retire stamp.
type intakeSlot struct {
	seq atomic.Uint64
	cmd command
}

// intakeRing is the bounded MPSC queue.
type intakeRing struct {
	mask    uint64
	slots   []intakeSlot
	enqueue atomic.Uint64
	dequeue atomic.Uint64
}

// newIntakeRing returns a ring with capacity rounded up to a power of two
// (minimum 2).
func newIntakeRing(capacity int) *intakeRing {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &intakeRing{mask: uint64(n - 1), slots: make([]intakeSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Post enqueues a command from any goroutine. It returns false when the
// ring is full.
func (r *intakeRing) Post(c command) bool {
	pos := r.enqueue.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			// Slot free for this lap: claim it.
			if r.enqueue.CompareAndSwap(pos, pos+1) {
				slot.cmd = c
				slot.seq.Store(pos + 1) // publish
				return true
			}
			pos = r.enqueue.Load()
		case seq < pos:
			// Consumer hasn't retired this slot from the previous lap.
			return false
		default:
			// Another producer claimed pos; advance.
			pos = r.enqueue.Load()
		}
	}
}

// Poll dequeues one command. Single consumer only (the data plane).
func (r *intakeRing) Poll() (command, bool) {
	pos := r.dequeue.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		return command{}, false // nothing published at this position
	}
	c := slot.cmd
	slot.cmd = command{}
	slot.seq.Store(pos + r.mask + 1) // retire for the next lap
	r.dequeue.Store(pos + 1)
	return c, true
}

// Len reports queued commands (approximate under concurrent producers).
func (r *intakeRing) Len() int {
	e, d := r.enqueue.Load(), r.dequeue.Load()
	if e < d {
		return 0
	}
	return int(e - d)
}

// intakeCapacity bounds outstanding async control commands.
const intakeCapacity = 256

// PostResize asks the data plane to apply a new LRU capacity at its next
// fault boundary, without blocking the caller. Unlike the synchronous
// Resize it is safe to call from a goroutine other than the simulation
// thread; it reports false when the intake ring is full or the capacity is
// invalid. Eviction work the resize triggers runs on the control plane's
// budget — it delays no in-flight fault.
func (m *Monitor) PostResize(capacity int) bool {
	if capacity < 1 {
		return false
	}
	return m.intake.Post(command{kind: cmdResize, arg: capacity})
}

// PendingCommands reports queued, undrained control commands.
func (m *Monitor) PendingCommands() int { return m.intake.Len() }

// drainIntake applies every queued control command at virtual time now. It
// runs only on the data-plane (simulation) thread, at fault boundaries, so
// command application is serialised with fault handling by construction.
func (m *Monitor) drainIntake(now time.Duration) {
	for {
		c, ok := m.intake.Poll()
		if !ok {
			return
		}
		switch c.kind {
		case cmdResize:
			// Control-plane work: apply the bound, evict to fit. The time the
			// evictions take is deliberately not charged to any worker.
			_, _ = m.Resize(now, c.arg)
		}
	}
}
