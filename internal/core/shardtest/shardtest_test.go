package shardtest

import (
	"testing"

	"fluidmem/internal/core"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/memcached"
	"fluidmem/internal/kvstore/ramcloud"
)

// workloads spans the monitor's major configuration axes: remote vs local
// backend, async vs sync write paths, pipelined vs batched prefetching, and
// churn (discard + resize). Each is a distinct way worker sharding could
// leak into logical behaviour.
func workloads() []Workload {
	return []Workload{
		{
			// The headline deployment: RAMCloud backend, all §V-B
			// optimisations, mixed random + scan traffic.
			Name:  "ramcloud-async",
			Pages: 96, Steps: 1200,
			NewConfig: func(seed uint64) core.Config {
				return core.DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), seed+11), 24)
			},
		},
		{
			// Batched reads: every demand fault folds its readahead window
			// into one MultiGet, the tentpole's amortised-round-trip path.
			Name:  "ramcloud-batched-prefetch",
			Pages: 96, Steps: 1200,
			NewConfig: func(seed uint64) core.Config {
				cfg := core.DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), seed+13), 24)
				cfg.PrefetchPages = 4
				cfg.BatchReads = true
				return cfg
			},
		},
		{
			// Unoptimised monitor over a local store: synchronous writes on
			// the critical path, no steals, no split reads.
			Name:  "dram-sync-baseline",
			Pages: 64, Steps: 800,
			NewConfig: func(seed uint64) core.Config {
				return core.BaselineConfig(dram.New(dram.DefaultParams(), seed+17), 16)
			},
		},
		{
			// Pipelined (non-batched) prefetch over memcached, with balloon
			// discards and runtime resizes churning the resident set.
			Name:  "memcached-prefetch-churn",
			Pages: 80, Steps: 1000,
			NewConfig: func(seed uint64) core.Config {
				cfg := core.DefaultConfig(memcached.New(memcached.DefaultParams(), seed+19), 20)
				cfg.PrefetchPages = 4
				return cfg
			},
			Discard: true,
			Resize:  true,
		},
	}
}

// TestWorkerCountEquivalence is the oracle: for every workload, monitors
// with 2, 4, and 8 workers must produce byte-identical Touch results, the
// same final resident set, the same logical epoch, and the same monitor and
// store op counts as the serial 1-worker monitor. Only virtual-time
// attribution may differ.
func TestWorkerCountEquivalence(t *testing.T) {
	for _, wl := range workloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			const seed = 42
			ref := Replay(t, wl, 1, seed)
			for _, workers := range []int{2, 4, 8} {
				got := Replay(t, wl, workers, seed)
				Equal(t, wl.Name, ref, got)
				// Sharding must never slow the pipeline down on these
				// workloads: a fault waits only for its own worker.
				if got.FinalTime > ref.FinalTime {
					t.Errorf("%s: %d workers finished later than 1 worker: %v > %v",
						wl.Name, workers, got.FinalTime, ref.FinalTime)
				}
			}
		})
	}
}

// TestReplayIsBitwiseRepeatable pins full determinism per (seed, workers):
// two replays of the same configuration must agree on every field INCLUDING
// virtual time — the property the equivalence test builds on.
func TestReplayIsBitwiseRepeatable(t *testing.T) {
	for _, wl := range workloads()[:2] {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				a := Replay(t, wl, workers, 7)
				b := Replay(t, wl, workers, 7)
				Equal(t, wl.Name, a, b)
				if a.FinalTime != b.FinalTime {
					t.Errorf("%s/w%d: replay not time-repeatable: %v vs %v",
						wl.Name, workers, a.FinalTime, b.FinalTime)
				}
				if a.Stats.InFlightWaits != b.Stats.InFlightWaits {
					t.Errorf("%s/w%d: replay InFlightWaits differ: %d vs %d",
						wl.Name, workers, a.Stats.InFlightWaits, b.Stats.InFlightWaits)
				}
			}
		})
	}
}

// TestSeedsDiverge guards the oracle against vacuity: different seeds must
// produce different outcomes, or the hash compares nothing.
func TestSeedsDiverge(t *testing.T) {
	wl := workloads()[0]
	a := Replay(t, wl, 1, 1)
	b := Replay(t, wl, 1, 2)
	if a.TouchHash == b.TouchHash && a.FinalTime == b.FinalTime {
		t.Fatal("different seeds produced identical outcomes; oracle is vacuous")
	}
}
