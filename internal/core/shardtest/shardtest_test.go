package shardtest

import (
	"bytes"
	"testing"
)

// workloads aliases the exported table (workloads.go) so the oracle bodies
// below read unchanged.
func workloads() []Workload { return Workloads() }

// TestWorkerCountEquivalence is the oracle: for every workload, monitors
// with 2, 4, and 8 workers must produce byte-identical Touch results, the
// same final resident set, the same logical epoch, and the same monitor and
// store op counts as the serial 1-worker monitor. Only virtual-time
// attribution may differ.
func TestWorkerCountEquivalence(t *testing.T) {
	for _, wl := range workloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			const seed = 42
			ref := Replay(t, wl, 1, seed)
			for _, workers := range []int{2, 4, 8} {
				got := Replay(t, wl, workers, seed)
				Equal(t, wl.Name, ref, got)
				// Sharding must never slow the pipeline down on these
				// workloads: a fault waits only for its own worker.
				if got.FinalTime > ref.FinalTime {
					t.Errorf("%s: %d workers finished later than 1 worker: %v > %v",
						wl.Name, workers, got.FinalTime, ref.FinalTime)
				}
			}
		})
	}
}

// TestReplayIsBitwiseRepeatable pins full determinism per (seed, workers):
// two replays of the same configuration must agree on every field INCLUDING
// virtual time — the property the equivalence test builds on.
func TestReplayIsBitwiseRepeatable(t *testing.T) {
	for _, wl := range workloads()[:2] {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				a := Replay(t, wl, workers, 7)
				b := Replay(t, wl, workers, 7)
				Equal(t, wl.Name, a, b)
				if a.FinalTime != b.FinalTime {
					t.Errorf("%s/w%d: replay not time-repeatable: %v vs %v",
						wl.Name, workers, a.FinalTime, b.FinalTime)
				}
				if a.Stats.InFlightWaits != b.Stats.InFlightWaits {
					t.Errorf("%s/w%d: replay InFlightWaits differ: %d vs %d",
						wl.Name, workers, a.Stats.InFlightWaits, b.Stats.InFlightWaits)
				}
			}
		})
	}
}

// TestWritebackWorkloadsExerciseEngine guards the write-back oracle against
// vacuity: the workloads that claim to prove elision/clean-drop determinism
// must actually trigger those paths, and the zero/clean workloads must avoid
// a meaningful share of store writes.
func TestWritebackWorkloadsExerciseEngine(t *testing.T) {
	byName := map[string]Workload{}
	for _, wl := range workloads() {
		byName[wl.Name] = wl
	}

	heavy := Replay(t, byName["ramcloud-writeback-writeheavy"], 4, 42)
	if heavy.Stats.CleanDropped == 0 {
		t.Errorf("write-heavy workload never clean-dropped: %+v", heavy.Stats)
	}
	if heavy.Store.MultiPuts == 0 {
		t.Errorf("write-heavy workload never flushed a batch: %+v", heavy.Store)
	}

	zero := Replay(t, byName["ramcloud-writeback-zeroheavy"], 4, 42)
	if zero.Stats.ZeroElided == 0 || zero.Stats.ZeroRefills == 0 {
		t.Errorf("zero-heavy workload never elided/refilled: %+v", zero.Stats)
	}
	// Elision + clean drop must remove a meaningful share of store writes:
	// writes shipped vs evictions that could have shipped.
	avoided := zero.Stats.ZeroElided + zero.Stats.CleanDropped
	if zero.Stats.Evictions > 0 && avoided*10 < zero.Stats.Evictions {
		t.Errorf("zero-heavy workload avoided only %d of %d eviction writes",
			avoided, zero.Stats.Evictions)
	}

	ro := Replay(t, byName["dram-writeback-readonly"], 4, 42)
	if ro.Store.Puts != 0 {
		t.Errorf("read-only workload wrote %d pages to the store", ro.Store.Puts)
	}
	if ro.Stats.Evictions == 0 {
		t.Errorf("read-only workload never evicted (capacity too large?): %+v", ro.Stats)
	}
}

// TestSeedsDiverge guards the oracle against vacuity: different seeds must
// produce different outcomes, or the hash compares nothing.
func TestSeedsDiverge(t *testing.T) {
	wl := workloads()[0]
	a := Replay(t, wl, 1, 1)
	b := Replay(t, wl, 1, 2)
	if a.TouchHash == b.TouchHash && a.FinalTime == b.FinalTime {
		t.Fatal("different seeds produced identical outcomes; oracle is vacuous")
	}
	if a.TraceDigest == b.TraceDigest {
		t.Fatal("different seeds produced identical trace digests; trace oracle is vacuous")
	}
	if a.HotsetDigest == b.HotsetDigest {
		t.Fatal("different seeds produced identical hotset digests; hotset oracle is vacuous")
	}
	if a.MarketPlanDigest == b.MarketPlanDigest {
		t.Fatal("different seeds produced identical market plans; market oracle is vacuous")
	}
}

// TestHotsetOracleSeesEveryWorkload guards the hotset extension of the
// oracle against vacuity: every workload churns enough pages through the
// ghost list to produce a non-trivial digest, real ghost hits, and a WSS
// estimate strictly beyond the resident capacity — so the Equal comparisons
// of HotsetDigest/WSSPages/ArbiterPlanDigest/MarketPlanDigest always have material to
// disagree on.
func TestHotsetOracleSeesEveryWorkload(t *testing.T) {
	for _, wl := range workloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			out := Replay(t, wl, 2, 42)
			if out.HotsetDigest == 0 {
				t.Error("replay produced a zero hotset digest")
			}
			if out.WSSPages <= 0 {
				t.Errorf("WSS estimate %d not positive", out.WSSPages)
			}
			if out.MarketPlanDigest == 0 {
				t.Error("replay produced a zero market plan digest")
			}
			// Every workload over-subscribes its capacity, so the working
			// set must not fit: the estimator has to see re-references.
			if out.Stats.Evictions > 0 && out.WSSPages <= wl.Pages/8 {
				t.Errorf("WSS estimate %d implausibly small for %d-page workload", out.WSSPages, wl.Pages)
			}
		})
	}
}

// TestTraceByteIdentical pins trace determinism all the way down to bytes:
// the same (workload, workers, seed) must serialise to a byte-identical
// Chrome trace — timestamps, durations, worker attribution and all. This is
// the strongest replay guarantee the tracer offers and the one EXPERIMENTS
// recipes rely on (re-running a figure regenerates the same trace file).
func TestTraceByteIdentical(t *testing.T) {
	for _, wl := range workloads()[:2] {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				a := Replay(t, wl, workers, 7)
				b := Replay(t, wl, workers, 7)
				var bufA, bufB bytes.Buffer
				if err := a.Trace.WriteChromeTrace(&bufA); err != nil {
					t.Fatal(err)
				}
				if err := b.Trace.WriteChromeTrace(&bufB); err != nil {
					t.Fatal(err)
				}
				if bufA.Len() == 0 || len(a.Trace.Events()) == 0 {
					t.Fatalf("%s/w%d: empty trace; byte test is vacuous", wl.Name, workers)
				}
				if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
					t.Errorf("%s/w%d: same seed serialised different trace bytes (%d vs %d bytes)",
						wl.Name, workers, bufA.Len(), bufB.Len())
				}
			}
		})
	}
}

// TestTraceDigestSeesEveryWorkload guards the trace oracle against partial
// vacuity: every workload's replay must emit a non-trivial event stream, so
// the digest comparison in Equal always has material to disagree on.
func TestTraceDigestSeesEveryWorkload(t *testing.T) {
	for _, wl := range workloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			out := Replay(t, wl, 2, 42)
			if n := len(out.Trace.Events()); n < wl.Steps {
				t.Errorf("%s: only %d trace events for %d steps", wl.Name, n, wl.Steps)
			}
		})
	}
}
