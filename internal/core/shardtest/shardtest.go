// Package shardtest is the oracle harness for the monitor's multi-worker
// fault pipeline. It replays an identical, seed-driven workload against
// monitors configured with different worker counts and captures everything a
// guest or an operator can observe logically: the bytes returned by every
// Touch, the final resident set, the monitor's logical epoch, the merged
// monitor counters, the backend's per-op traffic counters, and the logical
// digest of the full ordered trace-event sequence.
//
// The pipeline's design contract is that worker parallelism is timing-only —
// sharding the LRU list, the write queues, and the stats cells by page
// address must change WHEN work happens in virtual time, never WHAT work
// happens. The oracle enforces the contract bit-for-bit: any divergence in
// eviction order, flush batching, prefetch traffic, or store op counts
// between a 1-worker and an N-worker monitor shows up as a mismatched
// Outcome. Two fields are deliberately excluded from equivalence: FinalTime
// (more workers SHOULD finish sooner) and Stats.InFlightWaits (it counts a
// virtual-time race — a fault landing while its page's write is still in
// flight — and is therefore legitimately timing-dependent).
package shardtest

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"fluidmem/internal/arbiter"
	"fluidmem/internal/clock"
	"fluidmem/internal/core"
	"fluidmem/internal/hotset"
	"fluidmem/internal/market"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/trace"
)

// Base is the guest physical base address the harness registers.
const Base = 0x7c00_0000_0000

const pid = 77

// Workload is one replayable guest behaviour.
type Workload struct {
	Name string
	// Pages is the registered range size; Steps is the op count.
	Pages int
	Steps int
	// NewConfig builds a fresh config over a fresh store. The harness
	// overrides Workers and Seed.
	NewConfig func(seed uint64) core.Config
	// Discard mixes in balloon-style discards; Resize mixes in runtime
	// LRU-capacity changes.
	Discard bool
	Resize  bool
	// WriteProb shapes the read/write mix: 0 keeps the default one-third
	// write ratio, a positive value is the exact write probability
	// (write-heavy workloads), and a negative value makes the workload
	// read-only (no write ever, so clean-drop can elide every re-eviction).
	WriteProb float64
	// ZeroWrites makes half the writes store a zero byte instead of a tag.
	// The harness only ever writes data[0], so a zero write returns the
	// whole page to all-zero contents — the case zero elision targets.
	ZeroWrites bool
}

// Outcome is everything logically observable from one replay.
type Outcome struct {
	// TouchHash folds the full byte contents returned by every Touch (and
	// the final verification sweep), in order, through FNV-1a.
	TouchHash uint64
	// Resident is the sorted resident set after the final sweep.
	Resident []uint64
	// Epoch is the monitor's logical mutation counter.
	Epoch uint64
	// Stats is the merged monitor counter snapshot.
	Stats core.Stats
	// Store is the backend's traffic counter snapshot.
	Store kvstore.Stats
	// TraceDigest folds the logical event sequence of the replay's trace —
	// event names, arguments, and page addresses, in emission order, with
	// timing-dependent events (waits, retries) and all timestamps excluded.
	// It widens the equivalence contract from counters to the full ordered
	// operation log: two replays that agree on every counter but, say,
	// flush in a different batch order diverge here.
	TraceDigest uint64
	// HotsetDigest folds the ghost-LRU estimator's full logical state —
	// counters, depth histogram, and ordered shadow-list contents. Joining
	// the equivalence contract makes the oracle prove that working-set
	// estimates (and everything the host arbiter derives from them) are
	// identical at every worker count.
	HotsetDigest uint64
	// WSSPages is the 90th-percentile working-set estimate at the final
	// capacity — the human-readable face of HotsetDigest.
	WSSPages int
	// ArbiterPlanDigest folds the reallocation plan a host arbiter would
	// derive from this replay's miss-ratio curve against a fixed synthetic
	// peer VM. Plans are pure functions of the curves, so equal curves MUST
	// yield equal plans; this pins the full estimate→decision path into the
	// worker-count contract.
	ArbiterPlanDigest uint64
	// MarketPlanDigest folds the two-epoch marketplace scenario derived from
	// the same curve: a grant epoch (the replay bids against a healthy flat
	// peer) followed by a claw-back epoch (the peer turns SLO-violating via
	// synthetic window latencies, recalling its donations). Shardtest fault
	// durations are timing-dependent (WB_WAIT), so the SLO inputs here are
	// synthetic constants — what the digest pins is the real
	// curve→bid→lease→claw-back path, which must be a pure function of the
	// logical history at any worker count.
	MarketPlanDigest uint64
	// Trace is the replay's full tracer (events + histograms). It is NOT
	// part of the equivalence contract — timestamps legitimately differ
	// across worker counts — but byte-level determinism tests use it.
	Trace *trace.Tracer
	// FinalTime is the virtual completion time. It is NOT part of the
	// equivalence contract: more workers should finish sooner.
	FinalTime time.Duration
}

// Replay runs wl against a fresh monitor with the given worker count and
// returns the observable outcome. The op sequence is driven entirely by the
// seed — never by virtual time — so two Replays with the same (wl, seed)
// present identical guest behaviour regardless of workers. It also asserts
// the capacity invariant ResidentPages() <= FootprintLimit() after every op.
func Replay(tb testing.TB, wl Workload, workers int, seed uint64) Outcome {
	tb.Helper()
	cfg := wl.NewConfig(seed)
	cfg.Workers = workers
	cfg.Seed = seed
	store := cfg.Store
	// Trace every replay: the tracer is pure observation (no virtual time,
	// no randomness), so running it unconditionally cannot perturb the
	// outcome — and its logical digest joins the equivalence contract.
	tr := trace.New(true)
	cfg.Trace = tr
	cfg.Store = kvstore.Instrumented(store, tr)
	// Attach the ghost-LRU estimator unconditionally for the same reason:
	// it is pure observation, and its digest joins the equivalence contract.
	hs, err := hotset.New(hotset.DefaultParams(cfg.LRUCapacity))
	if err != nil {
		tb.Fatalf("%s/w%d: new hotset: %v", wl.Name, workers, err)
	}
	cfg.Hotset = hs
	m, err := core.NewMonitor(cfg, nil, "shardtest")
	if err != nil {
		tb.Fatalf("%s/w%d: new monitor: %v", wl.Name, workers, err)
	}
	if _, err := m.RegisterRange(Base, uint64(wl.Pages)*core.PageSize, pid); err != nil {
		tb.Fatalf("%s/w%d: register: %v", wl.Name, workers, err)
	}

	rng := clock.NewRand(seed ^ 0xd1ce_0f_ca11)
	h := fnv.New64a()
	tags := make(map[int]byte)
	scan := 0
	now := time.Duration(0)
	for i := 0; i < wl.Steps; i++ {
		if wl.Resize && rng.Float64() < 0.01 {
			// Toggle between full and half capacity (§III active sizing).
			capacity := cfg.LRUCapacity
			if rng.Intn(2) == 0 {
				capacity = capacity/2 + 1
			}
			if now, err = m.Resize(now, capacity); err != nil {
				tb.Fatalf("%s/w%d op %d: resize: %v", wl.Name, workers, i, err)
			}
			continue
		}
		var page int
		if rng.Float64() < 0.25 {
			// A sequential scan rides along, forcing evictions, remote
			// reads, and (when configured) prefetch windows.
			page = scan % wl.Pages
			scan++
		} else {
			page = rng.Intn(wl.Pages)
		}
		addr := Base + uint64(page)*core.PageSize
		if wl.Discard && rng.Float64() < 0.02 {
			m.Discard(addr)
			delete(tags, page)
			continue
		}
		var write bool
		switch {
		case wl.WriteProb < 0:
			write = false
		case wl.WriteProb > 0:
			write = rng.Float64() < wl.WriteProb
		default:
			write = rng.Intn(3) == 0
		}
		data, done, err := m.Touch(now, addr, write)
		if err != nil {
			tb.Fatalf("%s/w%d op %d (page %d): %v", wl.Name, workers, i, page, err)
		}
		if tag, seen := tags[page]; seen && data[0] != tag {
			tb.Fatalf("%s/w%d op %d: page %d corrupted: got %d want %d",
				wl.Name, workers, i, page, data[0], tag)
		}
		h.Write(data)
		if write {
			tag := byte(i%250 + 1)
			if wl.ZeroWrites && rng.Intn(2) == 0 {
				tag = 0 // restores the page to all-zero contents
			}
			data[0] = tag
			tags[page] = tag
		}
		if m.ResidentPages() > m.FootprintLimit() {
			tb.Fatalf("%s/w%d op %d: resident %d exceeds limit %d",
				wl.Name, workers, i, m.ResidentPages(), m.FootprintLimit())
		}
		now = done + time.Microsecond
	}

	// Quiesce, then verify and fold in every page's end state.
	if now, err = m.Drain(now); err != nil {
		tb.Fatalf("%s/w%d: drain: %v", wl.Name, workers, err)
	}
	for page := 0; page < wl.Pages; page++ {
		tag, seen := tags[page]
		if !seen {
			continue
		}
		data, done, err := m.Touch(now, Base+uint64(page)*core.PageSize, false)
		if err != nil {
			tb.Fatalf("%s/w%d: final read of page %d: %v", wl.Name, workers, page, err)
		}
		if data[0] != tag {
			tb.Fatalf("%s/w%d: page %d lost at end: got %d want %d",
				wl.Name, workers, page, data[0], tag)
		}
		h.Write(data)
		now = done
	}

	return Outcome{
		TouchHash:         h.Sum64(),
		Resident:          m.ResidentAddrs(),
		Epoch:             m.Epoch(),
		Stats:             m.Stats(),
		Store:             store.Stats(),
		TraceDigest:       tr.LogicalDigest(),
		HotsetDigest:      hs.Digest(),
		WSSPages:          hs.Snapshot().WSSEstimate(m.FootprintLimit(), 90),
		ArbiterPlanDigest: planDigest(tb, hs.Snapshot(), m.FootprintLimit()),
		MarketPlanDigest:  marketPlanDigest(tb, hs.Snapshot(), m.FootprintLimit()),
		Trace:             tr,
		FinalTime:         now,
	}
}

// planDigest derives the reallocation plan a host arbiter would make from
// the replay's miss-ratio curve paired with a fixed synthetic peer (a flat
// curve at the same share: the canonical donor), and folds the decision —
// every move and every resulting share — through FNV-1a. The peer and the
// policy are constants, so any divergence here traces back to the curve.
func planDigest(tb testing.TB, snap hotset.Snapshot, share int) uint64 {
	tb.Helper()
	step := share / 8
	if step < 1 {
		step = 1
	}
	policy := arbiter.Policy{FloorPages: 1, Step: step, MaxMoves: 4, Hysteresis: 4}
	peer := arbiter.VMView{ID: "peer", SharePages: share,
		Curve: hotset.Curve{BucketPages: snap.Curve.BucketPages, Hits: make([]uint64, len(snap.Curve.Hits))}}
	replayVM := arbiter.VMView{ID: "replay", SharePages: share, Curve: snap.Curve, WindowFaults: snap.Faults}
	plan, err := policy.Decide([]arbiter.VMView{replayVM, peer})
	if err != nil {
		tb.Fatalf("plan digest: %v", err)
	}
	h := fnv.New64a()
	for _, mv := range plan.Moves {
		fmt.Fprintf(h, "%s>%s:%d:%d;", mv.From, mv.To, mv.Pages, mv.PredictedSavings)
	}
	fmt.Fprintf(h, "replay=%d peer=%d", plan.Shares["replay"], plan.Shares["peer"])
	return h.Sum64()
}

// marketPlanDigest derives the marketplace's two-epoch decision sequence
// from the replay's miss-ratio curve: epoch 1 trades (the replay bids
// against a healthy flat peer that carries an SLO), epoch 2 recalls (the
// peer's synthetic window p99 blows its target, so every lease it donated
// is clawed back). Folding both plans plus the final lease-book digest pins
// the full curve→bid→lease→claw-back path into the worker-count contract.
// The SLO inputs are synthetic constants because shardtest fault durations
// are timing-dependent (WB_WAIT); the curve is the real measured one.
func marketPlanDigest(tb testing.TB, snap hotset.Snapshot, share int) uint64 {
	tb.Helper()
	step := share / 8
	if step < 1 {
		step = 1
	}
	mkt, err := market.New(market.Config{FloorPages: 1, Step: step, MaxLeases: 4, Hysteresis: 4})
	if err != nil {
		tb.Fatalf("market plan digest: %v", err)
	}
	peer := arbiter.VMView{ID: "peer", SharePages: share,
		Curve:     hotset.Curve{BucketPages: snap.Curve.BucketPages, Hits: make([]uint64, len(snap.Curve.Hits))},
		SLOTarget: time.Millisecond}
	replayVM := arbiter.VMView{ID: "replay", SharePages: share, Curve: snap.Curve, WindowFaults: snap.Faults}

	h := fnv.New64a()
	foldPlan := func(pl arbiter.Plan) {
		for _, mv := range pl.Moves {
			fmt.Fprintf(h, "%s>%s:%d:%d;", mv.From, mv.To, mv.Pages, mv.PredictedSavings)
		}
		fmt.Fprintf(h, "replay=%d peer=%d|", pl.Shares["replay"], pl.Shares["peer"])
	}
	plan1, err := mkt.Plan([]arbiter.VMView{replayVM, peer})
	if err != nil {
		tb.Fatalf("market plan digest epoch 1: %v", err)
	}
	foldPlan(plan1)
	// Epoch 2: shares advance to the plan, and the peer turns violating.
	replayVM.SharePages = plan1.Shares["replay"]
	peer.SharePages = plan1.Shares["peer"]
	peer.WindowP99 = 2 * time.Millisecond
	plan2, err := mkt.Plan([]arbiter.VMView{replayVM, peer})
	if err != nil {
		tb.Fatalf("market plan digest epoch 2: %v", err)
	}
	foldPlan(plan2)
	fmt.Fprintf(h, "book=%#x", mkt.Digest())
	return h.Sum64()
}

// Equal asserts that got matches the reference outcome in every field of the
// equivalence contract, reporting each divergence separately. FinalTime and
// Stats.InFlightWaits are excluded (timing-dependent by design).
func Equal(tb testing.TB, label string, ref, got Outcome) {
	tb.Helper()
	if ref.TouchHash != got.TouchHash {
		tb.Errorf("%s: touch data hash diverged: %#x vs %#x", label, ref.TouchHash, got.TouchHash)
	}
	if len(ref.Resident) != len(got.Resident) {
		tb.Errorf("%s: resident set size diverged: %d vs %d", label, len(ref.Resident), len(got.Resident))
	} else {
		for i := range ref.Resident {
			if ref.Resident[i] != got.Resident[i] {
				tb.Errorf("%s: resident[%d] diverged: %#x vs %#x", label, i, ref.Resident[i], got.Resident[i])
				break
			}
		}
	}
	if ref.Epoch != got.Epoch {
		tb.Errorf("%s: epoch diverged: %d vs %d", label, ref.Epoch, got.Epoch)
	}
	refStats, gotStats := ref.Stats, got.Stats
	refStats.InFlightWaits, gotStats.InFlightWaits = 0, 0
	if refStats != gotStats {
		tb.Errorf("%s: monitor stats diverged:\n  ref %+v\n  got %+v", label, refStats, gotStats)
	}
	if ref.Store != got.Store {
		tb.Errorf("%s: store op counts diverged:\n  ref %+v\n  got %+v", label, ref.Store, got.Store)
	}
	if ref.TraceDigest != got.TraceDigest {
		tb.Errorf("%s: logical trace digest diverged: %#x vs %#x (ref %d events, got %d)",
			label, ref.TraceDigest, got.TraceDigest, len(ref.Trace.Events()), len(got.Trace.Events()))
	}
	if ref.HotsetDigest != got.HotsetDigest {
		tb.Errorf("%s: hotset digest diverged: %#x vs %#x", label, ref.HotsetDigest, got.HotsetDigest)
	}
	if ref.WSSPages != got.WSSPages {
		tb.Errorf("%s: WSS estimate diverged: %d vs %d pages", label, ref.WSSPages, got.WSSPages)
	}
	if ref.MarketPlanDigest != got.MarketPlanDigest {
		tb.Errorf("%s: market plan diverged: %#x vs %#x", label, ref.MarketPlanDigest, got.MarketPlanDigest)
	}
	if ref.ArbiterPlanDigest != got.ArbiterPlanDigest {
		tb.Errorf("%s: arbiter plan diverged: %#x vs %#x", label, ref.ArbiterPlanDigest, got.ArbiterPlanDigest)
	}
}
