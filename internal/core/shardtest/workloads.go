package shardtest

import (
	"fluidmem/internal/core"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/memcached"
	"fluidmem/internal/kvstore/ramcloud"
)

// Workloads spans the monitor's major configuration axes: remote vs local
// backend, async vs sync write paths, pipelined vs batched prefetching, and
// churn (discard + resize). Each is a distinct way worker sharding could
// leak into logical behaviour. The table is exported because two oracles
// consume it: the worker-count equivalence tests in this package, and the
// serial-vs-parallel parity oracle in core/paralleltest, which replays the
// same behaviours against the multi-goroutine engine.
func Workloads() []Workload {
	return []Workload{
		{
			// The headline deployment: RAMCloud backend, all §V-B
			// optimisations, mixed random + scan traffic.
			Name:  "ramcloud-async",
			Pages: 96, Steps: 1200,
			NewConfig: func(seed uint64) core.Config {
				return core.DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), seed+11), 24)
			},
		},
		{
			// Batched reads: every demand fault folds its readahead window
			// into one MultiGet, the tentpole's amortised-round-trip path.
			Name:  "ramcloud-batched-prefetch",
			Pages: 96, Steps: 1200,
			NewConfig: func(seed uint64) core.Config {
				cfg := core.DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), seed+13), 24)
				cfg.PrefetchPages = 4
				cfg.BatchReads = true
				return cfg
			},
		},
		{
			// Unoptimised monitor over a local store: synchronous writes on
			// the critical path, no steals, no split reads.
			Name:  "dram-sync-baseline",
			Pages: 64, Steps: 800,
			NewConfig: func(seed uint64) core.Config {
				return core.BaselineConfig(dram.New(dram.DefaultParams(), seed+17), 16)
			},
		},
		{
			// Pipelined (non-batched) prefetch over memcached, with balloon
			// discards and runtime resizes churning the resident set.
			Name:  "memcached-prefetch-churn",
			Pages: 80, Steps: 1000,
			NewConfig: func(seed uint64) core.Config {
				cfg := core.DefaultConfig(memcached.New(memcached.DefaultParams(), seed+19), 20)
				cfg.PrefetchPages = 4
				return cfg
			},
			Discard: true,
			Resize:  true,
		},
		{
			// Write-heavy traffic through the coalescing write-back engine:
			// most faults dirty their page, so eviction pressure exercises
			// coalescing, group flushes, and clean/zero decisions at once.
			Name:  "ramcloud-writeback-writeheavy",
			Pages: 96, Steps: 1200,
			NewConfig: func(seed uint64) core.Config {
				cfg := core.DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), seed+23), 24)
				cfg.ElideZeroPages = true
				cfg.CleanPageDrop = true
				return cfg
			},
			WriteProb: 0.8,
		},
		{
			// Zero-heavy traffic: half the writes return pages to all-zero
			// contents, so the zero bitmap and UFFDIO_ZEROPAGE refills carry
			// much of the load — the elision determinism case.
			Name:  "ramcloud-writeback-zeroheavy",
			Pages: 96, Steps: 1200,
			NewConfig: func(seed uint64) core.Config {
				cfg := core.DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), seed+29), 24)
				cfg.ElideZeroPages = true
				cfg.CleanPageDrop = true
				return cfg
			},
			WriteProb:  0.5,
			ZeroWrites: true,
		},
		{
			// Read-only traffic with the engine on: every page stays clean
			// (or zero), so evictions produce no store writes at all and the
			// whole write path must still replay identically.
			Name:  "dram-writeback-readonly",
			Pages: 64, Steps: 800,
			NewConfig: func(seed uint64) core.Config {
				cfg := core.DefaultConfig(dram.New(dram.DefaultParams(), seed+31), 16)
				cfg.ElideZeroPages = true
				cfg.CleanPageDrop = true
				return cfg
			},
			WriteProb: -1,
		},
		{
			// Everything on: elision + clean drop + batched readahead +
			// discard/resize churn. The widest surface for a sharding leak.
			Name:  "memcached-writeback-batched-churn",
			Pages: 80, Steps: 1000,
			NewConfig: func(seed uint64) core.Config {
				cfg := core.DefaultConfig(memcached.New(memcached.DefaultParams(), seed+37), 20)
				cfg.ElideZeroPages = true
				cfg.CleanPageDrop = true
				cfg.PrefetchPages = 4
				cfg.BatchReads = true
				return cfg
			},
			WriteProb:  0.6,
			ZeroWrites: true,
			Discard:    true,
			Resize:     true,
		},
	}
}
