package core

import (
	"bytes"
	"testing"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/dram"
)

func page(tag byte) []byte {
	p := make([]byte, kvstore.PageSize)
	for i := range p {
		p[i] = tag
	}
	return p
}

func TestWritebackFlushAtBatchSize(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 1)
	w := newWriteback(store, 4)
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		var err error
		if now, err = w.Enqueue(now, kvstore.Key(i<<12), uint64(i<<12), page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if w.flushes != 0 || store.Stats().Puts != 0 {
		t.Fatal("flushed before batch threshold")
	}
	if _, err := w.Enqueue(now, kvstore.Key(3<<12), 3<<12, page(3)); err != nil {
		t.Fatal(err)
	}
	if w.flushes != 1 {
		t.Fatalf("flushes = %d", w.flushes)
	}
	if store.Stats().Puts != 4 {
		t.Fatalf("store puts = %d", store.Stats().Puts)
	}
	if w.QueuedLen() != 0 {
		t.Fatalf("queued = %d after flush", w.QueuedLen())
	}
}

func TestWritebackStealCancelsWrite(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 1)
	w := newWriteback(store, 100)
	key := kvstore.Key(0x5000)
	if _, err := w.Enqueue(0, key, 0x5000, page(0x42)); err != nil {
		t.Fatal(err)
	}
	data, ok := w.Steal(0, key)
	if !ok {
		t.Fatal("steal failed")
	}
	if !bytes.Equal(data, page(0x42)) {
		t.Fatal("stolen data wrong")
	}
	// The write is cancelled: flushing now stores nothing.
	if err := w.Flush(0); err != nil {
		t.Fatal(err)
	}
	if store.Stats().Puts != 0 {
		t.Fatal("cancelled write still hit the store")
	}
	if _, ok := w.Steal(0, key); ok {
		t.Fatal("double steal succeeded")
	}
}

func TestWritebackReEvictionReplacesData(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 1)
	w := newWriteback(store, 100)
	key := kvstore.Key(0x6000)
	if _, err := w.Enqueue(0, key, 0x6000, page(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Enqueue(0, key, 0x6000, page(2)); err != nil {
		t.Fatal(err)
	}
	data, _ := w.Steal(0, key)
	if !bytes.Equal(data, page(2)) {
		t.Fatal("stale data after re-eviction")
	}
	if w.QueuedLen() != 0 {
		t.Fatalf("queued = %d", w.QueuedLen())
	}
}

func TestWritebackWaitForInflight(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 1)
	w := newWriteback(store, 1) // flush every enqueue
	key := kvstore.Key(0x7000)
	if _, err := w.Enqueue(0, key, 0x7000, page(1)); err != nil {
		t.Fatal(err)
	}
	done, ok := w.WaitFor(0, key)
	if !ok {
		t.Fatal("no in-flight record after flush")
	}
	if done <= 0 {
		t.Fatal("in-flight completion not in the future")
	}
	// After the write lands, gc clears it.
	if _, ok := w.WaitFor(done+time.Millisecond, key); ok {
		w.gc(done + time.Millisecond)
	}
	if _, ok := w.WaitFor(done+2*time.Millisecond, key); ok {
		t.Fatal("completed write still reported in flight")
	}
}

func TestWritebackDrain(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 1)
	w := newWriteback(store, 100)
	for i := 0; i < 5; i++ {
		if _, err := w.Enqueue(0, kvstore.Key(i<<12), uint64(i<<12), page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	done, err := w.Drain(0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("drain cost nothing")
	}
	if store.Stats().Puts != 5 {
		t.Fatalf("puts = %d", store.Stats().Puts)
	}
	if w.QueuedLen() != 0 || len(w.inflight) != 0 {
		t.Fatal("drain left residue")
	}
}

func TestWritebackFlushEmptyNoop(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 1)
	w := newWriteback(store, 4)
	if err := w.Flush(0); err != nil {
		t.Fatal(err)
	}
	if store.Stats().MultiPuts != 0 {
		t.Fatal("empty flush hit the store")
	}
}

func TestWritebackZeroMarkLifecycle(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 1)
	w := newWriteback(store, 100)
	key := kvstore.Key(0x8000)

	// Marking a key queued for write-back cancels the pending write.
	if _, err := w.Enqueue(0, key, 0x8000, page(9)); err != nil {
		t.Fatal(err)
	}
	w.NoteZero(key)
	if w.QueuedLen() != 0 {
		t.Fatalf("queued = %d after NoteZero", w.QueuedLen())
	}
	if !w.HasZero(key) {
		t.Fatal("zero mark missing")
	}
	if err := w.Flush(0); err != nil {
		t.Fatal(err)
	}
	if store.Stats().Puts != 0 {
		t.Fatal("zero-elided write hit the store")
	}

	// TakeZero consumes the mark exactly once.
	if !w.TakeZero(key) {
		t.Fatal("TakeZero missed the mark")
	}
	if w.TakeZero(key) || w.HasZero(key) {
		t.Fatal("zero mark survived TakeZero")
	}

	// A fresh non-zero eviction supersedes a standing mark.
	w.NoteZero(key)
	if _, err := w.Enqueue(0, key, 0x8000, page(7)); err != nil {
		t.Fatal(err)
	}
	if w.HasZero(key) {
		t.Fatal("zero mark survived fresh enqueue")
	}
	data, ok := w.Steal(0, key)
	if !ok || !bytes.Equal(data, page(7)) {
		t.Fatal("queued data wrong after zero supersede")
	}

	// DropZero just discards.
	w.NoteZero(key)
	w.DropZero(key)
	if w.HasZero(key) {
		t.Fatal("zero mark survived DropZero")
	}

	st := w.Snapshot()
	if st.ZeroMarks != 3 {
		t.Fatalf("ZeroMarks = %d, want 3", st.ZeroMarks)
	}
	if st.ZeroBitmap != 0 {
		t.Fatalf("ZeroBitmap = %d, want 0", st.ZeroBitmap)
	}
}

func TestWritebackCoalesceCounterAndHistogram(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 1)
	w := newWriteback(store, 100)
	key := kvstore.Key(0x9000)
	if _, err := w.Enqueue(0, key, 0x9000, page(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Enqueue(0, key, 0x9000, page(byte(2+i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Enqueue(0, kvstore.Key(0xa000), 0xa000, page(8)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Enqueue(0, kvstore.Key(0xb000), 0xb000, page(9)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(0); err != nil {
		t.Fatal(err)
	}

	st := w.Snapshot()
	if st.Coalesced != 3 {
		t.Fatalf("Coalesced = %d, want 3", st.Coalesced)
	}
	if st.Flushes != 2 || st.FlushedPages != 3 {
		t.Fatalf("Flushes = %d FlushedPages = %d, want 2/3", st.Flushes, st.FlushedPages)
	}
	if st.FlushSizes[2] != 1 || st.FlushSizes[1] != 1 {
		t.Fatalf("FlushSizes = %v, want {2:1, 1:1}", st.FlushSizes)
	}
	// The four same-key enqueues collapsed to one store write.
	if store.Stats().Puts != 3 {
		t.Fatalf("store puts = %d, want 3", store.Stats().Puts)
	}
}

func TestWritebackDiscardQueued(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 1)
	w := newWriteback(store, 100)
	key := kvstore.Key(0xc000)
	if _, err := w.Enqueue(0, key, 0xc000, page(5)); err != nil {
		t.Fatal(err)
	}
	if !w.DiscardQueued(key) {
		t.Fatal("DiscardQueued missed a queued write")
	}
	if w.DiscardQueued(key) {
		t.Fatal("double discard succeeded")
	}
	if w.QueuedLen() != 0 {
		t.Fatalf("queued = %d", w.QueuedLen())
	}
	if err := w.Flush(0); err != nil {
		t.Fatal(err)
	}
	if store.Stats().Puts != 0 {
		t.Fatal("discarded write hit the store")
	}
}
