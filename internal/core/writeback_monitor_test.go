package core

import (
	"testing"
	"time"

	"fluidmem/internal/kvstore/dram"
)

// writebackCfg is the fully optimised config plus the write-path features
// under test (zero elision + clean drop).
func writebackCfg(capacity int) Config {
	cfg := dramCfg(capacity)
	cfg.ElideZeroPages = true
	cfg.CleanPageDrop = true
	return cfg
}

func TestZeroElisionAvoidsStoreTraffic(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 9)
	cfg := DefaultConfig(store, 2)
	cfg.ElideZeroPages = true
	m := newMonitor(t, cfg, 8)

	// Touch three pages without ever writing data: page 0 is evicted with
	// all-zero contents.
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		var err error
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Evictions != 1 || st.ZeroElided != 1 {
		t.Fatalf("evictions=%d zeroElided=%d, want 1/1", st.Evictions, st.ZeroElided)
	}
	if s := store.Stats(); s.Puts != 0 || s.MultiPuts != 0 {
		t.Fatalf("zero eviction hit the store: %+v", s)
	}

	// Re-faulting the elided page is a local zero refill, not a store read.
	getsBefore := store.Stats().Gets
	data, now, err := m.Touch(now, addr(0), false)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data {
		if b != 0 {
			t.Fatalf("refilled page byte %d = %#x, want 0", i, b)
		}
	}
	st = m.Stats()
	if st.ZeroRefills != 1 {
		t.Fatalf("zeroRefills = %d, want 1", st.ZeroRefills)
	}
	if store.Stats().Gets != getsBefore || store.Stats().MultiGets != 0 {
		t.Fatal("zero refill read the store")
	}
	_ = now
}

func TestZeroElisionSupersededByDirtyData(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 9)
	cfg := DefaultConfig(store, 2)
	cfg.ElideZeroPages = true
	m := newMonitor(t, cfg, 16)

	// Dirty page 0, evict it (non-zero: queued for write-back), steal it
	// back, then zero it and evict again — the second eviction must elide
	// and the refill must observe zeroes, not the earlier dirty bytes.
	now := time.Duration(0)
	data, now, err := m.Touch(now, addr(0), true)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 7
	for i := 1; i <= 2; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.ZeroElided != 0 {
		t.Fatalf("dirty eviction elided: %+v", st)
	}
	data, now, err = m.Touch(now, addr(0), true) // steal back
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 7 {
		t.Fatalf("stolen data[0] = %d, want 7", data[0])
	}
	data[0] = 0
	for i := 3; i <= 4; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	data, _, err = m.Touch(now, addr(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0 {
		t.Fatalf("zeroed page refilled with stale data: %d", data[0])
	}
	if st := m.Stats(); st.ZeroElided == 0 || st.ZeroRefills == 0 {
		t.Fatalf("zero eviction not elided: %+v", st)
	}
}

func TestCleanPageDropAvoidsRewrite(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 9)
	cfg := DefaultConfig(store, 2)
	cfg.CleanPageDrop = true
	m := newMonitor(t, cfg, 16)

	// Dirty page 0 and push it to the store.
	now := time.Duration(0)
	data, now, err := m.Touch(now, addr(0), true)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 1
	for i := 1; i <= 2; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if now, err = m.Drain(now); err != nil {
		t.Fatal(err)
	}

	// Read it back (store-backed install: write-protected) and evict it
	// again without writing: the store copy is current, so the eviction
	// drops the page with no write at all.
	if _, now, err = m.Touch(now, addr(0), false); err != nil {
		t.Fatal(err)
	}
	putsBefore := storeWrites(store)
	for i := 3; i <= 5; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if now, err = m.Drain(now); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.CleanDropped != 1 {
		t.Fatalf("cleanDropped = %d, want 1 (stats %+v)", st.CleanDropped, st)
	}
	// Pages 3..5 are dirty-zero... no elision here, so their evictions do
	// write; the clean victim must not. Three new pages evicted at least
	// once each, page 0 dropped: writes grew by exactly the dirty victims.
	if got := storeWrites(store) - putsBefore; got < 1 {
		t.Fatalf("expected dirty evictions to write, writes grew %d", got)
	}

	// The dropped page's contents survive in the store.
	data, _, err = m.Touch(now, addr(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 1 {
		t.Fatalf("clean-dropped page lost data: %d", data[0])
	}
}

func TestWriteProtectFaultMakesPageDirtyAgain(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 9)
	cfg := DefaultConfig(store, 2)
	cfg.CleanPageDrop = true
	m := newMonitor(t, cfg, 16)

	// Store-backed install, then a guest WRITE while resident: the WP fault
	// clears the protection, so the next eviction must write the new bytes.
	now := time.Duration(0)
	data, now, err := m.Touch(now, addr(0), true)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 1
	for i := 1; i <= 2; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if now, err = m.Drain(now); err != nil {
		t.Fatal(err)
	}
	if _, now, err = m.Touch(now, addr(0), false); err != nil {
		t.Fatal(err)
	}
	data, now, err = m.Touch(now, addr(0), true) // resident write: WP fault
	if err != nil {
		t.Fatal(err)
	}
	if m.WPFaults() != 1 {
		t.Fatalf("wpFaults = %d, want 1", m.WPFaults())
	}
	data[0] = 2
	for i := 3; i <= 5; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if now, err = m.Drain(now); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.CleanDropped != 0 {
		t.Fatalf("dirty page clean-dropped: %+v", st)
	}
	data, _, err = m.Touch(now, addr(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 2 {
		t.Fatalf("rewritten page lost update: %d, want 2", data[0])
	}
}

// storeWrites counts pages the store has been asked to write via any path.
func storeWrites(s *dram.Store) uint64 {
	st := s.Stats()
	return st.Puts
}

// TestWritebackStatsCellMerge is the per-worker merge test for the new
// counters (satellite): the same workload replayed at 1 and 4 workers must
// merge to identical ZeroElided / CleanDropped / ZeroRefills totals, and at
// 4 workers the increments must actually land in multiple distinct cells
// (per-cell attribution, not a hot single cell).
func TestWritebackStatsCellMerge(t *testing.T) {
	run := func(workers int) (*Monitor, Stats) {
		store := dram.New(dram.DefaultParams(), 9)
		cfg := DefaultConfig(store, 8)
		cfg.ElideZeroPages = true
		cfg.CleanPageDrop = true
		cfg.Workers = workers
		m := newMonitor(t, cfg, 64)
		now := time.Duration(0)
		var err error
		// Pass 1: dirty the even pages, leave odd pages zero.
		for i := 0; i < 32; i++ {
			var data []byte
			if data, now, err = m.Touch(now, addr(i), true); err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				data[0] = byte(i + 1)
			}
		}
		// Push the dirty evictions to the store so pass 2 reads it rather
		// than stealing from the write list (steals are not store-backed).
		if now, err = m.Drain(now); err != nil {
			t.Fatal(err)
		}
		// Pass 2: read everything back (zero refills for odd pages, store
		// reads + WP installs for even), then a third read-only pass so the
		// WP'd pages get clean-dropped on re-eviction.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 32; i++ {
				if _, now, err = m.Touch(now, addr(i), false); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err = m.Drain(now); err != nil {
			t.Fatal(err)
		}
		return m, m.Stats()
	}

	m1, st1 := run(1)
	m4, st4 := run(4)
	if st1.ZeroElided == 0 || st1.CleanDropped == 0 || st1.ZeroRefills == 0 {
		t.Fatalf("workload did not exercise all counters: %+v", st1)
	}
	// InFlightWaits is legitimately timing-dependent; everything else must
	// merge identically.
	st1.InFlightWaits, st4.InFlightWaits = 0, 0
	if st1 != st4 {
		t.Fatalf("merged stats diverge across worker counts:\n 1: %+v\n 4: %+v", st1, st4)
	}
	if len(m1.statsCells) != 1 || len(m4.statsCells) != 4 {
		t.Fatalf("cell counts %d/%d", len(m1.statsCells), len(m4.statsCells))
	}
	cellsTouched := 0
	for i := range m4.statsCells {
		c := &m4.statsCells[i]
		if c.ZeroElided+c.CleanDropped+c.ZeroRefills > 0 {
			cellsTouched++
		}
	}
	if cellsTouched < 2 {
		t.Fatalf("new counters landed in %d cells, want >= 2 (not per-worker)", cellsTouched)
	}
}
