package core

// Tests for the parallel data plane's shard-local machinery: the SPSC work
// ring (fill/drain/wrap semantics, cross-goroutine publication under -race,
// and the head-as-completion-counter barrier the sequencer's waitShard relies
// on), the control-plane handoff under a PostResize storm against real
// executor goroutines, and the steady-state allocation bound for the
// sequencer + executors together.

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"fluidmem/internal/kvstore/dram"
)

func TestSPSCRingFillDrainWrap(t *testing.T) {
	r := newSPSCRing(8)
	if _, ok := r.peek(); ok {
		t.Fatal("empty ring produced an item")
	}
	// Fill to capacity, reject the overflow push.
	for i := 0; i < 8; i++ {
		if !r.push(parItem{kind: piAccessHit, addr: uint64(i)}) {
			t.Fatalf("push %d rejected before capacity", i)
		}
	}
	if r.push(parItem{kind: piAccessHit, addr: 99}) {
		t.Fatal("push accepted on a full ring")
	}
	// Drain in FIFO order; peek must not retire.
	for i := 0; i < 8; i++ {
		it, ok := r.peek()
		if !ok {
			t.Fatalf("peek %d found nothing", i)
		}
		if again, _ := r.peek(); again != it {
			t.Fatalf("peek %d not idempotent", i)
		}
		if it.addr != uint64(i) {
			t.Fatalf("peek %d = addr %d, want %d (FIFO order)", i, it.addr, i)
		}
		r.pop()
	}
	if _, ok := r.peek(); ok {
		t.Fatal("drained ring produced an item")
	}
	// Many laps with interleaved push/pop so the cursors cross every slot
	// boundary and wrap the index mask repeatedly.
	next := uint64(0)
	for i := 0; i < 1000; i++ {
		if !r.push(parItem{kind: piAccessHit, addr: uint64(i)}) {
			t.Fatalf("push %d rejected on lap", i)
		}
		if i%3 == 2 {
			for r.tail.Load()-r.head.Load() > 1 {
				it, ok := r.peek()
				if !ok {
					t.Fatal("non-empty ring but peek found nothing")
				}
				if it.addr != next {
					t.Fatalf("out of order: got %d, want %d", it.addr, next)
				}
				next++
				r.pop()
			}
		}
	}
	for {
		it, ok := r.peek()
		if !ok {
			break
		}
		if it.addr != next {
			t.Fatalf("out of order at tail: got %d, want %d", it.addr, next)
		}
		next++
		r.pop()
	}
	if next != 1000 {
		t.Fatalf("drained %d items, want 1000", next)
	}
}

// TestSPSCRingCrossGoroutineStress runs the ring the way the engine does: one
// producer goroutine pushing with backpressure, one consumer executing then
// retiring. Under -race this checks that the tail release-store publishes the
// slot contents and the head release-store publishes the consumer's effects.
// The consumer writes each item's addr into a plain (unsynchronised) shard of
// memory; the producer re-reads it after observing head advance past the
// item, so any missing happens-before edge is a detector hit.
func TestSPSCRingCrossGoroutineStress(t *testing.T) {
	const items = 200_000
	r := newSPSCRing(64)
	effects := make([]uint64, items) // written by consumer, read back by producer
	done := make(chan uint64)

	go func() { // consumer
		var sum uint64
		var spin int
		for seen := uint64(0); seen < items; {
			it, ok := r.peek()
			if !ok {
				spinYield(&spin)
				continue
			}
			spin = 0
			if it.addr != seen {
				t.Errorf("consumer saw addr %d, want %d (FIFO order)", it.addr, seen)
			}
			effects[it.addr] = it.addr + 1 // execute BEFORE retiring
			sum += it.addr
			seen++
			r.pop()
		}
		done <- sum
	}()

	var spin int
	for i := uint64(0); i < items; i++ {
		for !r.push(parItem{kind: piAccessHit, addr: i}) {
			spinYield(&spin)
		}
		spin = 0
		// Completion-barrier property: once head catches tail, every pushed
		// item has fully executed — exactly what waitShard depends on when
		// the sequencer must observe an executor's side effects.
		if i%1024 == 1023 {
			for r.head.Load() != r.tail.Load() {
				spinYield(&spin)
			}
			if effects[i] != i+1 {
				t.Fatalf("head==tail but item %d not executed", i)
			}
		}
	}
	for r.head.Load() != r.tail.Load() {
		spinYield(&spin)
	}
	if sum := <-done; sum != items*(items-1)/2 {
		t.Fatalf("consumer sum = %d, want %d", sum, uint64(items*(items-1)/2))
	}
	for i := uint64(0); i < items; i++ {
		if effects[i] != i+1 {
			t.Fatalf("item %d lost (effect %d)", i, effects[i])
		}
	}
}

// newParallel builds a parallel engine over a DRAM store with one registered
// VM range, mirroring the newMonitor helper.
func newParallel(t *testing.T, cfg Config, rangePages int,
	onData func(shard int, ticket, addr uint64, data []byte)) *Parallel {
	t.Helper()
	p, err := NewParallel(cfg, nil, "hyp-test", onData)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterRange(testBase, uint64(rangePages)*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestParallelControlHandoffStress is the parallel twin of
// TestControlDataHandoffStress: a control goroutine storms PostResize while
// the sequencer drives faults through four live executor goroutines. The
// intake ring's MPMC contract and the fault-boundary drain must hold with
// real parallelism on the data plane, and the engine must land exactly on the
// final posted capacity.
func TestParallelControlHandoffStress(t *testing.T) {
	cfg := dramCfg(64)
	cfg.Workers = 4
	p := newParallel(t, cfg, 1024, nil)

	stop := make(chan struct{})
	ctlDone := make(chan struct{})
	var posted atomic.Uint64
	go func() {
		defer close(ctlDone)
		ctl := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
				if p.PostResize(8 + ctl.Intn(120)) {
					posted.Add(1)
				}
				runtime.Gosched()
			}
		}
	}()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		if err := p.Touch(addr(rng.Intn(1024)), rng.Intn(2) == 0); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-ctlDone
	if posted.Load() == 0 {
		t.Fatal("control goroutine never posted a resize; stress is vacuous")
	}

	// One more fault drains whatever the storm left queued, then a final
	// deterministic resize pins the end state.
	if err := p.Touch(addr(0), false); err != nil {
		t.Fatal(err)
	}
	if !p.PostResize(48) {
		t.Fatal("final PostResize rejected")
	}
	if err := p.Touch(addr(1), true); err != nil {
		t.Fatal(err)
	}
	if got := p.PendingCommands(); got != 0 {
		t.Fatalf("%d commands still queued after fault boundary", got)
	}
	if got := p.FootprintLimit(); got != 48 {
		t.Fatalf("footprint limit = %d, want 48", got)
	}
	if got := p.ResidentPages(); got > 48 {
		t.Fatalf("%d resident pages exceed limit 48", got)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// parallelAllocHarness warms a parallel engine to steady state and returns a
// closure running exactly one dirty fault per call, mirroring allocHarness.
// The delivery callback is live (it sinks the payload length) so the measured
// path includes the executor-side delivery, not just the sequencer.
var parallelAllocSink atomic.Uint64

func parallelAllocHarness(t *testing.T, shards, pages int) func() {
	t.Helper()
	cfg := DefaultConfig(dram.New(dram.DefaultParams(), 9), pages/2)
	cfg.Workers = shards
	p, err := NewParallel(cfg, nil, "hyp-alloc-par",
		func(shard int, ticket, addr uint64, data []byte) {
			parallelAllocSink.Add(uint64(len(data)))
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterRange(testBase, uint64(pages)*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := p.Close(); err != nil {
			t.Error(err)
		}
	})
	i := 0
	touch := func() {
		if err := p.Touch(addr(i%pages), true); err != nil {
			t.Fatal(err)
		}
		i++
	}
	// Warm-up: three full scans, as in the serial harness, so every frame
	// pool, pending map, and flush job reaches its steady-state size — then a
	// drain so no warm-up work bleeds into the measured window.
	for k := 0; k < 3*pages; k++ {
		touch()
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	return touch
}

// TestParallelSteadyStateFaultsAllocFree extends the zero-allocs-per-fault
// pin to the parallel engine. AllocsPerRun counts mallocs process-wide, so
// the bound covers the executor goroutines too: sequencing, SPSC posting,
// frame recycling, eviction, flush batching, and delivery must all run out
// of the warmed pools.
func TestParallelSteadyStateFaultsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "shards=1", 4: "shards=4"}[shards], func(t *testing.T) {
			touch := parallelAllocHarness(t, shards, 128)
			if avg := testing.AllocsPerRun(500, touch); avg != 0 {
				t.Fatalf("steady-state parallel fault allocates: %.2f allocs/fault, want 0", avg)
			}
		})
	}
}
