package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/ramcloud"
)

// twoMonitors builds source and destination monitors over one shared store
// and registry, each with one registered VM range.
func twoMonitors(t *testing.T) (src, dst *Monitor) {
	t.Helper()
	store := ramcloud.New(ramcloud.DefaultParams(), 9)
	registry := kvstore.NewLocalRegistry()
	var err error
	src, err = NewMonitor(DefaultConfig(store, 16), registry, "hyp-a")
	if err != nil {
		t.Fatal(err)
	}
	dst, err = NewMonitor(DefaultConfig(store, 16), registry, "hyp-b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.RegisterRange(testBase, 64*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	return src, dst
}

func TestExportImportRoundTrip(t *testing.T) {
	src, dst := twoMonitors(t)
	// Populate pages with recognisable contents on the source.
	now := time.Duration(0)
	for i := 0; i < 32; i++ {
		data, done, err := src.Touch(now, addr(i), true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		copy(data, bytes.Repeat([]byte{byte(i + 1)}, PageSize))
	}
	part, _ := src.Partition(4242)

	image, now, err := src.ExportVM(now, 4242)
	if err != nil {
		t.Fatal(err)
	}
	if src.ResidentPages() != 0 {
		t.Fatalf("source still holds %d pages", src.ResidentPages())
	}
	if _, ok := src.Partition(4242); ok {
		t.Fatal("source retained the partition")
	}
	if image.Partition != part || len(image.Seen) != 32 {
		t.Fatalf("image = part %d, %d seen", image.Partition, len(image.Seen))
	}
	if image.MetadataBytes() <= 0 {
		t.Fatal("metadata size missing")
	}

	now, err = dst.ImportVM(now, image)
	if err != nil {
		t.Fatal(err)
	}
	dstPart, ok := dst.Partition(4242)
	if !ok || dstPart != part {
		t.Fatalf("destination partition = %d, want %d", dstPart, part)
	}
	// Every page faults in from the shared store with intact contents.
	for i := 0; i < 32; i++ {
		data, done, err := dst.Touch(now, addr(i), false)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		now = done
		if data[0] != byte(i+1) || data[PageSize-1] != byte(i+1) {
			t.Fatalf("page %d corrupted after migration", i)
		}
	}
	if dst.Stats().FirstTouch != 0 {
		t.Fatal("migrated pages must come from the store, not the zero page")
	}
}

func TestExportUnknownPID(t *testing.T) {
	src, _ := twoMonitors(t)
	if _, _, err := src.ExportVM(0, 999); !errors.Is(err, ErrUnknownPID) {
		t.Fatalf("err = %v", err)
	}
}

func TestImportIntoBusyPIDFails(t *testing.T) {
	src, dst := twoMonitors(t)
	if _, err := dst.RegisterRange(testBase+1<<30, 16*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	_, now, err := src.Touch(0, addr(0), true)
	if err != nil {
		t.Fatal(err)
	}
	image, now, err := src.ExportVM(now, 4242)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ImportVM(now, image); !errors.Is(err, ErrPartitionTaken) {
		t.Fatalf("err = %v", err)
	}
}

func TestImportEmptyImage(t *testing.T) {
	_, dst := twoMonitors(t)
	if _, err := dst.ImportVM(0, &VMImage{}); err == nil {
		t.Fatal("empty image accepted")
	}
	if _, err := dst.ImportVM(0, nil); err == nil {
		t.Fatal("nil image accepted")
	}
}

func TestExportDrainsWriteList(t *testing.T) {
	src, dst := twoMonitors(t)
	now := time.Duration(0)
	// Touch more pages than LRU capacity so the write list is active.
	for i := 0; i < 40; i++ {
		_, done, err := src.Touch(now, addr(i), true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	image, now, err := src.ExportVM(now, 4242)
	if err != nil {
		t.Fatal(err)
	}
	if src.WriteListLen() != 0 {
		t.Fatal("write list not drained at export")
	}
	// All 40 pages readable on the destination.
	if _, err := dst.ImportVM(now, image); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, _, err := dst.Touch(now, addr(i), false); err != nil {
			t.Fatalf("page %d lost in migration: %v", i, err)
		}
	}
}

func TestMigratedVMKeepsWorkingUnderPressure(t *testing.T) {
	src, dst := twoMonitors(t)
	now := time.Duration(0)
	for i := 0; i < 24; i++ {
		data, done, err := src.Touch(now, addr(i), true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		data[0] = byte(i)
	}
	image, now, err := src.ExportVM(now, 4242)
	if err != nil {
		t.Fatal(err)
	}
	if now, err = dst.ImportVM(now, image); err != nil {
		t.Fatal(err)
	}
	// Work the destination hard: refaults, evictions, steals all on the
	// migrated partition.
	for round := 0; round < 5; round++ {
		for i := 0; i < 24; i++ {
			data, done, err := dst.Touch(now, addr(i), round%2 == 1)
			if err != nil {
				t.Fatal(err)
			}
			now = done
			if data[0] != byte(i) {
				t.Fatalf("round %d page %d corrupted", round, i)
			}
		}
	}
	if dst.Stats().Evictions == 0 {
		t.Fatal("destination never evicted; pressure test ineffective")
	}
}
