// Package core implements the FluidMem monitor — the user-space page-fault
// handler that is the paper's primary contribution (§III–V). The monitor
// watches userfaultfd events for every registered VM, resolves first-touch
// faults with the zero page, fetches previously seen pages from a key-value
// store, and bounds local DRAM usage with a resizable LRU list whose
// evictions are pushed to remote memory asynchronously.
package core

import (
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/core/resilience"
	"fluidmem/internal/hotset"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/trace"
	"fluidmem/internal/uffd"
)

// Config parametrises a Monitor.
type Config struct {
	// Store is the remote-memory backend (RAMCloud, Memcached, DRAM).
	Store kvstore.Store
	// LRUCapacity bounds resident pages across all registered VMs. The list
	// is resizable at runtime (§III): shrinking it evicts immediately.
	LRUCapacity int

	// AsyncWrite enables asynchronous writeback (§V-B): evicted pages go to
	// a write list flushed in batches, instead of a synchronous store write
	// on the fault critical path.
	AsyncWrite bool
	// AsyncRead enables split reads (§V-B): the store read is issued first
	// and the eviction's UFFD_REMAP runs while the network waits.
	AsyncRead bool
	// WriteBatchSize is the write-list flush threshold (RAMCloud multi-write
	// batch).
	WriteBatchSize int
	// StealEnabled lets the fault handler resolve a fault directly from the
	// pending write list, shortcutting two network round trips (§V-B).
	StealEnabled bool
	// EvictWithCopy replaces UFFD_REMAP eviction with a copy-out (ablation
	// A3: zero-copy remap vs copy + zap).
	EvictWithCopy bool
	// PageTracker enables the seen-pages hash that resolves first-touch
	// faults with UFFDIO_ZEROPAGE instead of a futile store read (§V-A).
	PageTracker bool
	// PrefetchPages, when positive, makes the monitor pipeline reads for
	// the next N pages of the region after each store-read fault —
	// sequential prefetching (extension; ablation A6). Zero disables it,
	// matching the paper's readahead-off configuration.
	PrefetchPages int
	// Workers is the number of fault-handling workers the monitor's
	// pipeline is partitioned across (the paper's multi-threaded handler,
	// §V-B). Faults are sharded by page address: each worker owns an LRU
	// segment and a write-list queue, and a fault waits only for its own
	// worker to be free. Parallelism is timing-only by construction — the
	// logical operation sequence (eviction victims, flush batches, store
	// traffic) is identical for every worker count, which the shardtest
	// oracle harness asserts — so more workers raise fault throughput
	// without changing behaviour. 0 or 1 is the serial monitor.
	Workers int
	// BatchReads folds the demand-fault read and its prefetch reads (when
	// PrefetchPages > 0) into one amortised MultiGet round trip instead of
	// a pipeline of per-page split reads — batched remote reads, the
	// standard cure for per-page RTT overhead in the disaggregation
	// literature.
	BatchReads bool
	// ElideZeroPages enables the write-path zero-page optimisation: an
	// evicted page whose contents are all zeroes is recorded in a zero
	// bitmap instead of being written to the store, and a later re-fault is
	// resolved with UFFDIO_ZEROPAGE instead of a store read — zero traffic
	// in both directions for zero pages (the paper's zero-page optimisation
	// applied to the eviction side). Elision decisions depend only on page
	// contents, so worker-count determinism is preserved.
	ElideZeroPages bool
	// CleanPageDrop enables dirty tracking via simulated write-protect
	// faults: a page installed from a durable store copy is write-protected;
	// the first guest write trips a WP fault that clears the protection. A
	// victim still protected at eviction was never written — its store copy
	// is current, so it is dropped with no store write at all. Pages whose
	// bytes the store does not durably hold (steals, compressed-tier hits,
	// zero refills) are never protected, so the drop is always safe.
	CleanPageDrop bool
	// Compress optionally enables the zswap-style compressed tier (§III's
	// page-compression customisation): evicted pages that compress well are
	// parked in a local pool and refault at decompression speed instead of
	// a network round trip. Nil disables the tier.
	Compress *CompressParams
	// Resilience optionally routes every store operation (fault reads,
	// writeback, teardown deletes) through the fault-handling policy layer:
	// bounded retry with backoff, per-op deadlines, replica failover, and a
	// degraded mode that turns sustained backend failure into stall time
	// plus a health signal instead of a hard error. Nil disables the layer
	// (a backend error aborts the fault, the seed behaviour).
	Resilience *resilience.Policy

	// Trace optionally receives virtual-time events and phase-latency
	// observations from the whole fault pipeline (monitor, write-back
	// engine, UFFD ops, resilience layer). Tracing is pure observation: it
	// draws no randomness and charges no virtual time, so results are
	// bit-for-bit identical with tracing on or off. Nil disables it at zero
	// cost.
	Trace *trace.Tracer

	// Hotset optionally attaches a ghost-LRU working-set estimator: every
	// fault and eviction is reported to it, building the miss-ratio curve
	// the host arbiter prices grants against. Like Trace it is pure
	// observation — zero virtual time, zero randomness — so results are
	// bit-for-bit identical with estimation on or off. Nil disables it.
	Hotset *hotset.Tracker

	// UFFD holds the simulated userfaultfd op costs.
	UFFD uffd.Params
	// MonitorOps holds the monitor's own bookkeeping costs.
	MonitorOps MonitorOpParams
	// Seed feeds the monitor's RNG.
	Seed uint64
}

// MonitorOpParams are the service times of the monitor's data-structure
// operations, calibrated to Table I.
type MonitorOpParams struct {
	// EventDispatch is the cost of the monitor waking from poll and reading
	// one event from the descriptor.
	EventDispatch clock.LatencyModel
	// HashLookup is the seen-pages hash probe (INSERT_PAGE_HASH_NODE:
	// 2.58 µs).
	HashLookup clock.LatencyModel
	// LRUInsert is INSERT_LRU_CACHE_NODE (2.87 µs).
	LRUInsert clock.LatencyModel
	// CacheUpdate is UPDATE_PAGE_CACHE (2.56 µs).
	CacheUpdate clock.LatencyModel
	// RPCOverhead is client-side CPU per synchronous remote operation
	// (request marshalling, transport doorbell) beyond the measured
	// READ_PAGE/WRITE_PAGE service time.
	RPCOverhead clock.LatencyModel
	// AsyncIssue is the cheaper top-half cost of posting an asynchronous
	// read: the request is prepared and handed to the transport without
	// waiting for completion processing (§V-B split reads).
	AsyncIssue clock.LatencyModel
	// EvictFinish is the tail of an interleaved eviction that must complete
	// before a new page can be installed at the freed frame: the REMAP's
	// TLB-shootdown acknowledgement plus the write-list append. It runs
	// inside the network-wait window (§V-B).
	EvictFinish clock.LatencyModel
	// ZeroScan is the cost of scanning a victim page for all-zero contents
	// (a 4 KiB compare against the zero page) on the eviction path, charged
	// only when ElideZeroPages is on.
	ZeroScan clock.LatencyModel
	// Resume is the cost of the faulting vCPU being rescheduled after wake.
	Resume clock.LatencyModel
}

// DefaultMonitorOps returns Table-I-calibrated costs.
func DefaultMonitorOps() MonitorOpParams {
	return MonitorOpParams{
		EventDispatch: clock.LatencyModel{Base: 4200 * time.Nanosecond, Jitter: 500 * time.Nanosecond},
		HashLookup:    clock.LatencyModel{Base: 2580 * time.Nanosecond, Jitter: 1200 * time.Nanosecond, TailProb: 0.01, TailExtra: 5 * time.Microsecond},
		LRUInsert:     clock.LatencyModel{Base: 2870 * time.Nanosecond, Jitter: 470 * time.Nanosecond},
		CacheUpdate:   clock.LatencyModel{Base: 2560 * time.Nanosecond, Jitter: 250 * time.Nanosecond},
		RPCOverhead:   clock.LatencyModel{Base: 5 * time.Microsecond, Jitter: 800 * time.Nanosecond},
		AsyncIssue:    clock.LatencyModel{Base: 1500 * time.Nanosecond, Jitter: 250 * time.Nanosecond},
		EvictFinish:   clock.LatencyModel{Base: 2 * time.Microsecond, Jitter: 400 * time.Nanosecond},
		ZeroScan:      clock.LatencyModel{Base: 400 * time.Nanosecond, Jitter: 80 * time.Nanosecond},
		Resume:        clock.LatencyModel{Base: 3 * time.Microsecond, Jitter: 400 * time.Nanosecond},
	}
}

// DefaultConfig returns a fully optimised monitor over the given store, as
// deployed in the paper's headline experiments.
func DefaultConfig(store kvstore.Store, lruCapacity int) Config {
	return Config{
		Store:          store,
		LRUCapacity:    lruCapacity,
		AsyncWrite:     true,
		AsyncRead:      true,
		WriteBatchSize: 32,
		StealEnabled:   true,
		PageTracker:    true,
		UFFD:           uffd.DefaultParams(),
		MonitorOps:     DefaultMonitorOps(),
		Seed:           1,
	}
}

// BaselineConfig returns the unoptimised ("Default" row of Table II) monitor.
func BaselineConfig(store kvstore.Store, lruCapacity int) Config {
	cfg := DefaultConfig(store, lruCapacity)
	cfg.AsyncWrite = false
	cfg.AsyncRead = false
	cfg.StealEnabled = false
	return cfg
}
