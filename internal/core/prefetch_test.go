package core

import (
	"testing"
	"time"
)

// prefetchMonitor builds a RAMCloud monitor with prefetching enabled.
func prefetchMonitor(t *testing.T, lruPages, prefetch int) *Monitor {
	t.Helper()
	cfg := ramcloudCfg(lruPages)
	cfg.PrefetchPages = prefetch
	cfg.WriteBatchSize = 1 // flush promptly so prefetches read the store
	m, err := NewMonitor(cfg, nil, "hyp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterRange(testBase, 256*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	return m
}

// populate writes tag bytes into n pages and drains writeback.
func populate(t *testing.T, m *Monitor, n int) time.Duration {
	t.Helper()
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		data, done, err := m.Touch(now, addr(i), true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		data[0] = byte(i + 1)
	}
	done, err := m.Drain(now)
	if err != nil {
		t.Fatal(err)
	}
	return done
}

func TestPrefetchPullsFollowingPages(t *testing.T) {
	m := prefetchMonitor(t, 16, 4)
	now := populate(t, m, 64)
	// Fault page 32: pages 33..36 should be prefetched behind it.
	if _, _, err := m.Touch(now, addr(32), false); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	for i := 33; i <= 36; i++ {
		if !m.lru.Contains(addr(i)) {
			t.Fatalf("page %d not prefetched", i)
		}
	}
}

func TestPrefetchedPagesHaveCorrectContents(t *testing.T) {
	m := prefetchMonitor(t, 16, 4)
	now := populate(t, m, 64)
	_, now, err := m.Touch(now, addr(40), false)
	if err != nil {
		t.Fatal(err)
	}
	// Reading a prefetched page must be a resident hit with the right data.
	faultsBefore := m.Stats().Faults
	data, _, err := m.Touch(now, addr(41), false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().Faults != faultsBefore {
		t.Fatal("prefetched page still faulted")
	}
	if data[0] != byte(41+1) {
		t.Fatalf("prefetched page corrupted: %#x", data[0])
	}
}

func TestPrefetchSequentialScanFasterThanWithout(t *testing.T) {
	run := func(prefetch int) time.Duration {
		m := prefetchMonitor(t, 16, prefetch)
		now := populate(t, m, 128)
		start := now
		for i := 0; i < 128; i++ {
			_, done, err := m.Touch(now, addr(i), false)
			if err != nil {
				t.Fatal(err)
			}
			now = done
		}
		return now - start
	}
	with, without := run(8), run(0)
	if with >= without {
		t.Fatalf("prefetch scan (%v) not faster than without (%v)", with, without)
	}
}

func TestPrefetchSkipsUnseenAndResident(t *testing.T) {
	m := prefetchMonitor(t, 16, 8)
	now := populate(t, m, 8) // only pages 0..7 exist
	// Fault page 4: prefetch may pull 5..7 but must not invent 8..12.
	if _, _, err := m.Touch(now, addr(4), false); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 13; i++ {
		if m.lru.Contains(addr(i)) {
			t.Fatalf("unseen page %d materialised", i)
		}
	}
}

func TestPrefetchRespectsLRUCapacity(t *testing.T) {
	m := prefetchMonitor(t, 4, 8)
	now := populate(t, m, 64)
	if _, _, err := m.Touch(now, addr(20), false); err != nil {
		t.Fatal(err)
	}
	if m.ResidentPages() > 4 {
		t.Fatalf("prefetch blew the LRU capacity: %d resident", m.ResidentPages())
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	m := newMonitor(t, ramcloudCfg(8), 64)
	now := populate(t, m, 32)
	if _, _, err := m.Touch(now, addr(10), false); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Prefetches != 0 {
		t.Fatal("prefetching active without being configured")
	}
}
