package core

// This file is the monitor's control plane: registration, teardown,
// resize, drain, stats capture, and the introspection surface. Everything
// here is slow-path — it may allocate, scan regions, and rebuild maps
// freely. It talks to the data plane either synchronously (same goroutine,
// between faults) or through the intake ring (see intake.go) when called
// from another thread.

import (
	"fmt"
	"sort"
	"time"

	"fluidmem/internal/core/resilience"
	"fluidmem/internal/hotset"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/stats"
	"fluidmem/internal/trace"
	"fluidmem/internal/uffd"
)

// RegisterRange registers [start, start+length) for fault handling on behalf
// of the VM process pid, allocating the VM's virtual partition on first use.
// QEMU calls this when wrapping the guest memory allocation, and again for
// each hotplugged memory slot (§IV).
func (m *Monitor) RegisterRange(start, length uint64, pid int) (*uffd.Region, error) {
	if _, ok := m.partitions[pid]; !ok {
		part, err := m.registry.Allocate(m.hypervisorID, pid)
		if err != nil {
			return nil, fmt.Errorf("core: allocate partition for pid %d: %w", pid, err)
		}
		m.partitions[pid] = part
	}
	region, err := m.fd.Register(start, length, pid)
	if err != nil {
		return nil, fmt.Errorf("core: register region: %w", err)
	}
	m.seen.addRegion(start, length)
	return region, nil
}

// UnregisterVM tears down all regions of pid: resident pages are dropped,
// store contents deleted, and the partition released (VM shutdown, §V-A).
// Teardown is best-effort under backend failure: a failed delete (a leaked
// page in a crashed member) is remembered but does not abort the teardown —
// the partition is still unregistered and released, and the first delete
// error is reported at the end.
func (m *Monitor) UnregisterVM(now time.Duration, pid int) (time.Duration, error) {
	part, ok := m.partitions[pid]
	if !ok {
		return now, fmt.Errorf("%w: %d", ErrUnknownPID, pid)
	}
	var firstErr error
	for _, region := range m.fd.Regions() {
		if region.PID != pid {
			continue
		}
		for addr := region.Start; addr < region.End(); addr += PageSize {
			if m.lru.Remove(addr) {
				m.fd.Drop(addr)
				m.epoch++
			}
			m.hot.Remove(addr)
			if m.seen.has(addr) {
				m.seen.del(addr)
				key := kvstore.MakeKey(addr, part)
				if m.tier != nil {
					m.tier.drop(key)
				}
				// Cancel pending engine state so a later flush cannot
				// resurrect a deleted page in the store.
				m.wb.DiscardQueued(key)
				m.wb.DropZero(key)
				var err error
				if now, err = m.cfg.Store.Delete(now, key); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("core: delete page %#x: %w", addr, err)
				}
			}
		}
		m.fd.Unregister(region)
		m.seen.dropRegion(region.Start)
	}
	delete(m.partitions, pid)
	if err := m.registry.Release(part); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("core: release partition: %w", err)
	}
	return now, firstErr
}

// Discard implements vm.Backing: a balloon-freed page loses its contents.
func (m *Monitor) Discard(addr uint64) {
	addr = addr &^ uint64(PageSize-1)
	if m.lru.Remove(addr) {
		m.fd.Drop(addr)
		m.epoch++
	}
	// The page's contents are gone: it must leave the ghost list too, or a
	// later first touch of the same address would register as a re-reference
	// and inflate the working-set estimate.
	m.hot.Remove(addr)
	if m.seen.has(addr) {
		m.seen.del(addr)
		if region := m.regionOf(addr); region != nil {
			if part, ok := m.partitions[region.PID]; ok {
				// Asynchronous tombstone; timing is off any critical path.
				_, _ = m.cfg.Store.Delete(m.workerFree[m.workerOf(addr)], kvstore.MakeKey(addr, part))
			}
		}
	}
	if region := m.regionOf(addr); region != nil {
		if part, ok := m.partitions[region.PID]; ok {
			key := kvstore.MakeKey(addr, part)
			// A balloon-freed page's bytes must never reach the store:
			// cancel any queued write and drop any zero mark or tier copy.
			m.wb.DiscardQueued(key)
			m.wb.DropZero(key)
			if m.tier != nil {
				m.tier.drop(key)
			}
		}
	}
}

// Resize changes the LRU capacity at runtime (§III: "the local memory buffer
// can be actively sized up or down"). Shrinking evicts immediately; the
// returned time covers the eviction work. This is the mechanism behind
// Table III's near-zero footprints. Resize must run on the simulation
// thread; other goroutines use PostResize (intake.go) instead.
func (m *Monitor) Resize(now time.Duration, capacity int) (time.Duration, error) {
	if capacity < 1 {
		return now, fmt.Errorf("%w: LRU capacity %d < 1", ErrBadConfig, capacity)
	}
	m.cfg.LRUCapacity = capacity
	t := now
	var err error
	for m.lru.Len() > capacity {
		if t, err = m.evictOne(t, false); err != nil {
			return t, err
		}
	}
	// Worker 0 is an arbitrary but fixed attribution: a resize is not caused
	// by any page address. The arg carries the new capacity in pages.
	m.tr.Emit(trace.EvResize, 0, uint64(capacity), now, t-now, "")
	return t, nil
}

// Hotset returns the attached working-set estimator (nil when disabled).
func (m *Monitor) Hotset() *hotset.Tracker { return m.hot }

// HotsetSnapshot copies the estimator's counters; the zero Snapshot when
// estimation is disabled.
func (m *Monitor) HotsetSnapshot() hotset.Snapshot { return m.hot.Snapshot() }

// Drain flushes the write list and waits for all in-flight writes —
// quiescing the monitor (tests, teardown, consistent snapshots).
func (m *Monitor) Drain(now time.Duration) (time.Duration, error) {
	return m.wb.Drain(now)
}

// ResidentPages implements vm.Backing.
func (m *Monitor) ResidentPages() int { return m.lru.Len() }

// FootprintLimit implements vm.FootprintLimiter.
func (m *Monitor) FootprintLimit() int { return m.cfg.LRUCapacity }

// Epoch implements vm.Backing.
func (m *Monitor) Epoch() uint64 { return m.epoch }

// Stats returns a snapshot of monitor counters, merged field-wise across
// every worker's cell — the read-side synchronisation point of the
// per-worker counter discipline (see Stats).
func (m *Monitor) Stats() Stats {
	var total Stats
	for i := range m.statsCells {
		c := &m.statsCells[i]
		total.Faults += c.Faults
		total.FirstTouch += c.FirstTouch
		total.RemoteReads += c.RemoteReads
		total.Steals += c.Steals
		total.InFlightWaits += c.InFlightWaits
		total.Evictions += c.Evictions
		total.SyncWrites += c.SyncWrites
		total.Flushes += c.Flushes
		total.Prefetches += c.Prefetches
		total.ZeroElided += c.ZeroElided
		total.CleanDropped += c.CleanDropped
		total.ZeroRefills += c.ZeroRefills
	}
	return total
}

// Workers reports the fault-pipeline width (>= 1).
func (m *Monitor) Workers() int { return m.workers }

// ResidentAddrs returns the sorted addresses of all currently resident
// pages — a stable snapshot for equivalence harnesses (shardtest): two
// monitors are resident-set-equal iff these slices are equal.
func (m *Monitor) ResidentAddrs() []uint64 {
	addrs := make([]uint64, 0, len(m.lru.index))
	for addr := range m.lru.index {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// Profiler exposes the per-code-path latency profiler (§VI-C).
func (m *Monitor) Profiler() *Profiler { return m.prof }

// Tracer exposes the tracer threaded through the fault pipeline (nil when
// tracing is disabled).
func (m *Monitor) Tracer() *trace.Tracer { return m.tr }

// Partition reports the virtual partition assigned to pid.
func (m *Monitor) Partition(pid int) (kvstore.PartitionID, bool) {
	p, ok := m.partitions[pid]
	return p, ok
}

// SetFaultLatencySink registers a callback receiving every end-to-end fault
// latency (pmbench-style measurement hooks).
func (m *Monitor) SetFaultLatencySink(sink func(time.Duration)) {
	m.faultLatencies = sink
}

// WriteListLen reports pages awaiting flush (test hook).
func (m *Monitor) WriteListLen() int { return m.wb.QueuedLen() }

// WritebackStats reports the write-back engine's counters: flush batch
// sizes, coalesced re-evictions, zero-bitmap activity.
func (m *Monitor) WritebackStats() WritebackStats { return m.wb.Snapshot() }

// WPFaults reports guest writes that tripped the clean-tracking write
// protection (CleanPageDrop).
func (m *Monitor) WPFaults() uint64 { return m.fd.WPFaults() }

// regionOf resolves the region containing addr without allocating (the
// data plane calls it per eviction).
func (m *Monitor) regionOf(addr uint64) *uffd.Region {
	return m.fd.RegionFor(addr)
}

// StoreHealth reports the resilience layer's backend health signal; ok is
// false when the layer is disabled (cfg.Resilience == nil).
func (m *Monitor) StoreHealth() (resilience.Health, bool) {
	if m.resilient == nil {
		return resilience.Health{}, false
	}
	return m.resilient.Health(), true
}

// ResilienceStats reports the policy layer's intervention counters; ok is
// false when the layer is disabled.
func (m *Monitor) ResilienceStats() (resilience.Stats, bool) {
	if m.resilient == nil {
		return resilience.Stats{}, false
	}
	return m.resilient.ResilienceStats(), true
}

// ResilienceCounters exports the policy layer's counters as a named set
// (nil when the layer is disabled) — the surface fluidmemd and the chaos
// harness render.
func (m *Monitor) ResilienceCounters() *stats.Counters {
	if m.resilient == nil {
		return nil
	}
	return m.resilient.ResilienceStats().Counters()
}

// CompressStats reports the compressed tier's counters; ok is false when the
// tier is disabled.
func (m *Monitor) CompressStats() (CompressStats, bool) {
	if m.tier == nil {
		return CompressStats{}, false
	}
	return m.tier.stats, true
}

// PageResident reports whether the page containing addr is currently in the
// monitor's LRU list (operator/experiment introspection).
func (m *Monitor) PageResident(addr uint64) bool {
	return m.lru.Contains(addr &^ uint64(PageSize-1))
}
