package core

import (
	"testing"

	"fluidmem/internal/clock"
)

// TestShardIndexerMatchesReference pins the indexer's three code paths
// (mask, fixed-point reciprocal, plain-divide fallback) to the reference
// formula across adversarial addresses, including the top of the address
// space where the reciprocal's error term is largest.
func TestShardIndexerMatchesReference(t *testing.T) {
	shardCounts := []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 31, 64, 100, 255, 4095, 4096, 4097, 5000}
	rng := clock.NewRand(99)
	addrs := []uint64{
		0, PageSize, PageSize - 1, PageSize + 1,
		^uint64(0), ^uint64(0) - PageSize, 1 << 52, (1 << 51) * PageSize,
		0x7c00_0000_0000, 0x7fff_ffff_f000,
	}
	for i := 0; i < 4096; i++ {
		addrs = append(addrs, rng.Uint64())
	}
	for _, shards := range shardCounts {
		ix := newShardIndexer(shards)
		for _, addr := range addrs {
			want := int((addr / PageSize) % uint64(shards))
			if got := ix.index(addr); got != want {
				t.Fatalf("shards=%d addr=%#x: indexer %d, reference %d", shards, addr, got, want)
			}
		}
	}
	// Degenerate input clamps to one shard.
	if ix := newShardIndexer(0); ix.index(1<<40) != 0 {
		t.Fatalf("zero-shard indexer must clamp to shard 0")
	}
}

// benchAddrs is a fixed pseudo-random address stream shared by the workerOf
// microbenchmarks so the naive and indexed variants chew identical input.
var benchAddrs = func() []uint64 {
	rng := clock.NewRand(7)
	addrs := make([]uint64, 1024)
	for i := range addrs {
		addrs[i] = rng.Uint64()
	}
	return addrs
}()

var benchSink int

// BenchmarkWorkerOf measures the per-fault shard-map cost: the naive 64-bit
// div+mod against the cached shift/mask (power-of-two shards) and the
// fixed-point reciprocal (non-power-of-two). The satellite claim this pins:
// the divide is measurably slower than both replacements.
func BenchmarkWorkerOf(b *testing.B) {
	for _, shards := range []int{4, 6} {
		s := uint64(shards)
		b.Run(benchName("naive-div", shards), func(b *testing.B) {
			b.ReportAllocs()
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += int((benchAddrs[i&1023] / PageSize) % s)
			}
			benchSink = acc
		})
		ix := newShardIndexer(shards)
		b.Run(benchName("indexer", shards), func(b *testing.B) {
			b.ReportAllocs()
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += ix.index(benchAddrs[i&1023])
			}
			benchSink = acc
		})
	}
}

func benchName(kind string, shards int) string {
	suffix := "pow2"
	if shards&(shards-1) != 0 {
		suffix = "nonpow2"
	}
	return kind + "-" + suffix
}
