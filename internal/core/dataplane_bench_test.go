package core

// Microbenchmarks for the data-plane fault hot path. Run with the default
// -benchmem-style allocation reporting enabled: the allocs/op column is the
// headline — a warmed monitor must report 0 on every backend — and ns/op is
// the wall-clock cost of one simulated miss + dirty eviction + write-back.

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkSteadyStateFault(b *testing.B) {
	for name, mk := range allocBenchBackends(b) {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				b.ReportAllocs()
				const pages = 128
				cfg := DefaultConfig(mk(), pages/2)
				cfg.Workers = workers
				m, err := NewMonitor(cfg, nil, "bench-hotpath")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.RegisterRange(testBase, uint64(pages)*PageSize, 4242); err != nil {
					b.Fatal(err)
				}
				var now time.Duration
				i := 0
				touch := func() {
					_, done, err := m.Touch(now, addr(i%pages), true)
					if err != nil {
						b.Fatal(err)
					}
					now = done
					i++
				}
				for k := 0; k < 3*pages; k++ {
					touch()
				}
				b.ResetTimer()
				for k := 0; k < b.N; k++ {
					touch()
				}
			})
		}
	}
}
