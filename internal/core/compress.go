package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/kvstore"
)

// This file implements the page-compression customisation the paper lists
// among the provider-side benefits of user-space paging (§III: "Some
// examples are page compression or replication across remote servers").
//
// The design is zswap-like: evicted pages that compress well are parked in a
// bounded hypervisor-local pool of compressed frames; a refault that hits
// the pool is resolved with a decompression (a microsecond of CPU) instead
// of a network round trip. Pages that compress poorly, and pool overflow,
// take the normal path to the remote store. Memory pages — page tables,
// zeroed heap, sparse data — are typically zero-heavy, so a simple zero-run
// codec captures most of the win at negligible CPU cost.

// CompressParams configures the compressed tier.
type CompressParams struct {
	// PoolBytes bounds the compressed pool's payload.
	PoolBytes uint64
	// MaxRatio is the largest compressed/raw ratio worth keeping; pages
	// compressing worse go straight to the store. zswap uses ~0.9.
	MaxRatio float64
	// CompressCPU and DecompressCPU are the per-page codec costs.
	CompressCPU   clock.LatencyModel
	DecompressCPU clock.LatencyModel
}

// DefaultCompressParams returns a tier sized at poolBytes with lzo-class
// codec costs.
func DefaultCompressParams(poolBytes uint64) CompressParams {
	return CompressParams{
		PoolBytes:     poolBytes,
		MaxRatio:      0.75,
		CompressCPU:   clock.LatencyModel{Base: 2800 * time.Nanosecond, Jitter: 300 * time.Nanosecond},
		DecompressCPU: clock.LatencyModel{Base: 1200 * time.Nanosecond, Jitter: 150 * time.Nanosecond},
	}
}

// CompressStats counts tier activity.
type CompressStats struct {
	// Stored counts pages parked in the pool.
	Stored uint64
	// Rejected counts pages that compressed too poorly for the pool.
	Rejected uint64
	// Hits counts refaults resolved from the pool (round trips saved).
	Hits uint64
	// Overflowed counts pages displaced from the pool to the store.
	Overflowed uint64
	// PoolBytes is the current compressed payload.
	PoolBytes uint64
	// RawBytes is the uncompressed size of pooled pages.
	RawBytes uint64
}

// compressedTier is the pool.
type compressedTier struct {
	params CompressParams
	rng    *clock.Rand

	entries map[kvstore.Key][]byte
	order   []kvstore.Key // FIFO for overflow, consistent with the monitor's LRU
	bytes   uint64

	stats CompressStats
}

func newCompressedTier(p CompressParams, seed uint64) *compressedTier {
	return &compressedTier{
		params:  p,
		rng:     clock.NewRand(seed),
		entries: make(map[kvstore.Key][]byte),
	}
}

// offer tries to park an evicted page. It returns accepted=false (and the
// untouched page) when the page compresses poorly. Pool overflow is returned
// as displaced raw pages for the caller to push to the store.
func (c *compressedTier) offer(now time.Duration, key kvstore.Key, page []byte) (done time.Duration, accepted bool, displaced []displacedPage, err error) {
	done = now + c.params.CompressCPU.Sample(c.rng)
	compressed := compressPage(page)
	if float64(len(compressed)) > c.params.MaxRatio*float64(len(page)) {
		c.stats.Rejected++
		return done, false, nil, nil
	}
	if old, exists := c.entries[key]; exists {
		c.bytes -= uint64(len(old))
		c.stats.RawBytes -= PageSize
		c.removeFromOrder(key)
	}
	c.entries[key] = compressed
	c.order = append(c.order, key)
	c.bytes += uint64(len(compressed))
	c.stats.Stored++
	c.stats.RawBytes += PageSize

	// Overflow: displace oldest entries until within budget.
	for c.bytes > c.params.PoolBytes && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		blob, ok := c.entries[victim]
		if !ok {
			continue
		}
		delete(c.entries, victim)
		c.bytes -= uint64(len(blob))
		c.stats.RawBytes -= PageSize
		c.stats.Overflowed++
		raw, derr := decompressPage(blob)
		if derr != nil {
			return done, false, nil, fmt.Errorf("core: corrupt pool entry %v: %w", victim, derr)
		}
		done += c.params.DecompressCPU.Sample(c.rng)
		displaced = append(displaced, displacedPage{key: victim, data: raw})
	}
	c.stats.PoolBytes = c.bytes
	return done, true, displaced, nil
}

// take resolves a refault from the pool, removing the entry.
func (c *compressedTier) take(now time.Duration, key kvstore.Key) ([]byte, time.Duration, bool, error) {
	blob, ok := c.entries[key]
	if !ok {
		return nil, now, false, nil
	}
	delete(c.entries, key)
	c.removeFromOrder(key)
	c.bytes -= uint64(len(blob))
	c.stats.RawBytes -= PageSize
	c.stats.PoolBytes = c.bytes
	c.stats.Hits++
	raw, err := decompressPage(blob)
	if err != nil {
		return nil, now, false, fmt.Errorf("core: corrupt pool entry %v: %w", key, err)
	}
	return raw, now + c.params.DecompressCPU.Sample(c.rng), true, nil
}

// drop discards a pooled page (balloon discard, VM teardown).
func (c *compressedTier) drop(key kvstore.Key) {
	if blob, ok := c.entries[key]; ok {
		delete(c.entries, key)
		c.removeFromOrder(key)
		c.bytes -= uint64(len(blob))
		c.stats.RawBytes -= PageSize
		c.stats.PoolBytes = c.bytes
	}
}

// drainTo empties the pool into the writeback engine (migration export).
func (c *compressedTier) drainTo(now time.Duration, wb *writeback) (time.Duration, error) {
	for len(c.order) > 0 {
		key := c.order[0]
		c.order = c.order[1:]
		blob, ok := c.entries[key]
		if !ok {
			continue
		}
		delete(c.entries, key)
		c.bytes -= uint64(len(blob))
		c.stats.RawBytes -= PageSize
		raw, err := decompressPage(blob)
		if err != nil {
			return now, fmt.Errorf("core: corrupt pool entry %v: %w", key, err)
		}
		now += c.params.DecompressCPU.Sample(c.rng)
		if now, err = wb.Enqueue(now, key, key.Page(), raw); err != nil {
			return now, err
		}
	}
	c.stats.PoolBytes = c.bytes
	return now, nil
}

func (c *compressedTier) removeFromOrder(key kvstore.Key) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// displacedPage is a pool-overflow victim headed for the store.
type displacedPage struct {
	key  kvstore.Key
	data []byte
}

// Zero-run codec. Format: a sequence of tokens —
//
//	0xFF <uvarint n>              → n zero bytes
//	0xFE <uvarint n> <n bytes>    → n literal bytes
//
// Runs of zeros shorter than 8 bytes stay literal (token overhead).
const (
	tokZeros   = 0xFF
	tokLiteral = 0xFE
	minZeroRun = 8
)

// errCorruptBlob reports an undecodable compressed page.
var errCorruptBlob = errors.New("core: corrupt compressed page")

// compressPage encodes page with the zero-run codec. The result may be
// longer than the input for incompressible data; callers compare sizes.
func compressPage(page []byte) []byte {
	out := make([]byte, 0, len(page)/4)
	var scratch [binary.MaxVarintLen64]byte
	i := 0
	for i < len(page) {
		// Measure the zero run starting here.
		j := i
		for j < len(page) && page[j] == 0 {
			j++
		}
		if j-i >= minZeroRun {
			out = append(out, tokZeros)
			n := binary.PutUvarint(scratch[:], uint64(j-i))
			out = append(out, scratch[:n]...)
			i = j
			continue
		}
		// Literal run: up to the next long zero run.
		start := i
		zeros := 0
		for i < len(page) {
			if page[i] == 0 {
				zeros++
				if zeros >= minZeroRun {
					i -= zeros - 1
					zeros = 0
					break
				}
			} else {
				zeros = 0
			}
			i++
		}
		lit := page[start:i]
		out = append(out, tokLiteral)
		n := binary.PutUvarint(scratch[:], uint64(len(lit)))
		out = append(out, scratch[:n]...)
		out = append(out, lit...)
	}
	return out
}

// decompressPage decodes a blob produced by compressPage into a full page.
func decompressPage(blob []byte) ([]byte, error) {
	out := make([]byte, 0, PageSize)
	i := 0
	for i < len(blob) {
		tok := blob[i]
		i++
		n, used := binary.Uvarint(blob[i:])
		if used <= 0 {
			return nil, errCorruptBlob
		}
		i += used
		switch tok {
		case tokZeros:
			if uint64(len(out))+n > PageSize {
				return nil, errCorruptBlob
			}
			out = append(out, make([]byte, n)...)
		case tokLiteral:
			if uint64(i)+n > uint64(len(blob)) || uint64(len(out))+n > PageSize {
				return nil, errCorruptBlob
			}
			out = append(out, blob[i:i+int(n)]...)
			i += int(n)
		default:
			return nil, errCorruptBlob
		}
	}
	if len(out) != PageSize {
		return nil, fmt.Errorf("%w: decoded %d bytes", errCorruptBlob, len(out))
	}
	return out, nil
}
