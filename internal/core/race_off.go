//go:build !race

package core

// raceEnabled reports that this binary was built with -race.
const raceEnabled = false
