package core

import (
	"testing"
	"time"

	"fluidmem/internal/hotset"
)

// hotsetCfg attaches a tracker sized for the capacity to a DRAM config.
func hotsetCfg(t *testing.T, capacity int) (Config, *hotset.Tracker) {
	t.Helper()
	cfg := dramCfg(capacity)
	hs, err := hotset.New(hotset.Params{GhostCapacity: 64, BucketPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hotset = hs
	return cfg, hs
}

// touchAll walks pages [0, n) once, returning the final virtual time.
func touchAll(t *testing.T, m *Monitor, now time.Duration, n int) time.Duration {
	t.Helper()
	for i := 0; i < n; i++ {
		var err error
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	return now
}

// A working set larger than the resident budget cycles pages through the
// ghost list; re-walking it must register ghost hits, and the WSS estimate
// must rise to cover the true working set.
func TestHotsetObservesFaultsAndEvictions(t *testing.T) {
	const capacity, pages = 4, 12
	cfg, hs := hotsetCfg(t, capacity)
	m := newMonitor(t, cfg, 64)

	now := touchAll(t, m, 0, pages) // cold pass: fills, then churns, the LRU
	s := hs.Snapshot()
	if s.GhostHits != 0 {
		t.Fatalf("cold pass produced ghost hits: %+v", s)
	}
	if s.Evictions == 0 || s.GhostLen == 0 {
		t.Fatalf("evictions did not reach the tracker: %+v", s)
	}

	touchAll(t, m, now, pages) // warm pass: every fault hits the ghost list
	s = hs.Snapshot()
	if s.GhostHits == 0 {
		t.Fatalf("warm pass produced no ghost hits: %+v", s)
	}
	if s.Faults != m.Stats().Faults {
		t.Fatalf("tracker saw %d faults, monitor handled %d", s.Faults, m.Stats().Faults)
	}
	wss := s.WSSEstimate(capacity, 90)
	if wss <= capacity || wss > pages {
		t.Fatalf("WSS estimate %d outside (capacity=%d, pages=%d]", wss, capacity, pages)
	}
}

// Balloon Discard must remove the page from BOTH the resident and ghost
// lists: a ballooned-out page's next touch is a fresh first touch, not a
// re-reference, so it must not count as a ghost hit or move the WSS estimate.
func TestBalloonDiscardLeavesGhostList(t *testing.T) {
	const capacity, pages = 4, 8
	cfg, hs := hotsetCfg(t, capacity)
	m := newMonitor(t, cfg, 64)

	now := touchAll(t, m, 0, pages)
	// addr(0) was evicted during the walk and now shadows in the ghost list.
	if !hs.Contains(addr(0)) {
		t.Fatal("test premise broken: evicted page not shadowed")
	}
	m.Discard(addr(0))
	if hs.Contains(addr(0)) {
		t.Fatal("balloon discard left the page in the ghost list")
	}
	// A resident page must leave both lists too.
	resident := addr(pages - 1)
	if hs.Contains(resident) {
		t.Fatal("test premise broken: resident page shadowed")
	}
	m.Discard(resident)
	if hs.Contains(resident) {
		t.Fatal("discarded resident page entered/stayed in the ghost list")
	}

	before := hs.Snapshot()
	if _, _, err := m.Touch(now, addr(0), false); err != nil {
		t.Fatal(err)
	}
	after := hs.Snapshot()
	if after.GhostHits != before.GhostHits {
		t.Fatal("re-touch of a ballooned-out page counted as a ghost hit")
	}
	if got, want := after.WSSEstimate(capacity, 90), before.WSSEstimate(capacity, 90); got != want {
		t.Fatalf("discard skewed the WSS estimate: %d != %d", got, want)
	}
}

// VM teardown forgets every page of the pid, shadowed or resident.
func TestUnregisterVMClearsGhostList(t *testing.T) {
	const capacity, pages = 4, 8
	cfg, hs := hotsetCfg(t, capacity)
	m := newMonitor(t, cfg, 64)
	now := touchAll(t, m, 0, pages)
	if hs.Len() == 0 {
		t.Fatal("test premise broken: nothing shadowed before teardown")
	}
	if _, err := m.UnregisterVM(now, 4242); err != nil {
		t.Fatal(err)
	}
	if hs.Len() != 0 {
		t.Fatalf("teardown left %d pages shadowed", hs.Len())
	}
}

// Attaching a tracker is pure observation: the simulated timeline must be
// bit-identical with and without it.
func TestHotsetIsPureObservation(t *testing.T) {
	run := func(attach bool) (time.Duration, Stats) {
		cfg := dramCfg(4)
		if attach {
			hs, err := hotset.New(hotset.DefaultParams(4))
			if err != nil {
				t.Fatal(err)
			}
			cfg.Hotset = hs
		}
		m := newMonitor(t, cfg, 64)
		now := touchAll(t, m, 0, 12)
		now = touchAll(t, m, now, 12)
		done, err := m.Drain(now)
		if err != nil {
			t.Fatal(err)
		}
		return done, m.Stats()
	}
	tOn, sOn := run(true)
	tOff, sOff := run(false)
	if tOn != tOff {
		t.Fatalf("tracker changed virtual time: %v != %v", tOn, tOff)
	}
	if sOn != sOff {
		t.Fatalf("tracker changed stats: %+v != %+v", sOn, sOff)
	}
}
