package core

import (
	"bytes"
	"testing"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/ramcloud"
)

const testBase = 0x7f00_0000_0000

func addr(i int) uint64 { return testBase + uint64(i)*PageSize }

// newMonitor builds a monitor over a DRAM store with one registered VM range.
func newMonitor(t *testing.T, cfg Config, rangePages int) *Monitor {
	t.Helper()
	m, err := NewMonitor(cfg, nil, "hyp-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterRange(testBase, uint64(rangePages)*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	return m
}

func dramCfg(capacity int) Config {
	return DefaultConfig(dram.New(dram.DefaultParams(), 9), capacity)
}

func ramcloudCfg(capacity int) Config {
	return DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), 9), capacity)
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(Config{}, nil, ""); err == nil {
		t.Fatal("nil store accepted")
	}
	cfg := dramCfg(0)
	if _, err := NewMonitor(cfg, nil, ""); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestFirstTouchUsesZeroPage(t *testing.T) {
	m := newMonitor(t, dramCfg(16), 64)
	data, done, err := m.Touch(0, addr(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("fault cost nothing")
	}
	if !bytes.Equal(data, make([]byte, PageSize)) {
		t.Fatal("first touch did not produce zeroes")
	}
	st := m.Stats()
	if st.Faults != 1 || st.FirstTouch != 1 || st.RemoteReads != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// No store traffic for a first touch — that is the pagetracker's point.
	if m.cfg.Store.Stats().Gets != 0 {
		t.Fatal("first touch hit the store")
	}
}

func TestResidentAccessIsFree(t *testing.T) {
	m := newMonitor(t, dramCfg(16), 64)
	_, now, err := m.Touch(0, addr(0), true)
	if err != nil {
		t.Fatal(err)
	}
	_, done, err := m.Touch(now, addr(0), true)
	if err != nil {
		t.Fatal(err)
	}
	if done != now {
		t.Fatalf("resident access cost %v", done-now)
	}
	if m.Stats().Faults != 1 {
		t.Fatal("resident access faulted")
	}
}

func TestWriteDataSurvivesEvictionRoundTrip(t *testing.T) {
	m := newMonitor(t, dramCfg(4), 64)
	now := time.Duration(0)
	data, now, err := m.Touch(now, addr(0), true)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, bytes.Repeat([]byte{0xCD}, PageSize))
	// Evict page 0 by faulting in more pages than capacity.
	for i := 1; i < 10; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if m.ResidentPages() > 4 {
		t.Fatalf("resident = %d > capacity", m.ResidentPages())
	}
	if m.Stats().Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	got, _, err := m.Touch(now, addr(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xCD || got[PageSize-1] != 0xCD {
		t.Fatal("page corrupted across evict/refault")
	}
}

func TestRefaultCountsRemoteReadOrSteal(t *testing.T) {
	m := newMonitor(t, dramCfg(2), 64)
	now := time.Duration(0)
	var err error
	for i := 0; i < 8; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	// Re-touch an evicted page.
	if _, now, err = m.Touch(now, addr(0), false); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.RemoteReads+st.Steals == 0 {
		t.Fatalf("refault did not read or steal: %+v", st)
	}
}

func TestStealShortcutsRoundTrips(t *testing.T) {
	// Small batch never flushes with capacity 2 and batch 64: every evicted
	// page sits on the write list, so a refault must steal, not read.
	cfg := dramCfg(2)
	cfg.WriteBatchSize = 64
	m := newMonitor(t, cfg, 64)
	now := time.Duration(0)
	var err error
	for i := 0; i < 4; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	gets0 := m.cfg.Store.Stats().Gets
	if _, now, err = m.Touch(now, addr(0), false); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Steals != 1 {
		t.Fatalf("steals = %d, want 1", m.Stats().Steals)
	}
	if m.cfg.Store.Stats().Gets != gets0 {
		t.Fatal("steal still read from the store")
	}
	_ = now
}

func TestStealDisabledReadsInsteadButMustWaitFlush(t *testing.T) {
	cfg := dramCfg(2)
	cfg.StealEnabled = false
	cfg.WriteBatchSize = 2 // flush quickly so the store has the data
	m := newMonitor(t, cfg, 64)
	now := time.Duration(0)
	var err error
	for i := 0; i < 6; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if _, now, err = m.Touch(now, addr(0), false); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Steals != 0 {
		t.Fatal("steal happened despite being disabled")
	}
	if m.Stats().RemoteReads == 0 {
		t.Fatal("no remote read")
	}
	_ = now
}

func TestAsyncWriteKeepsWritesOffCriticalPath(t *testing.T) {
	// Compare the cost of an eviction-heavy workload with sync vs async
	// writeback on the high-latency RAMCloud store.
	run := func(async bool) time.Duration {
		cfg := ramcloudCfg(2)
		cfg.AsyncWrite = async
		cfg.AsyncRead = false
		m := newMonitor(t, cfg, 256)
		now := time.Duration(0)
		var err error
		for i := 0; i < 100; i++ {
			if _, now, err = m.Touch(now, addr(i), true); err != nil {
				t.Fatal(err)
			}
		}
		return now
	}
	sync, async := run(false), run(true)
	if async >= sync {
		t.Fatalf("async writeback (%v) not faster than sync (%v)", async, sync)
	}
}

func TestAsyncReadOverlapsEviction(t *testing.T) {
	// With refault-heavy traffic on RAMCloud, async read should beat sync
	// by roughly the overlapped eviction+bookkeeping per fault.
	run := func(asyncRead bool) time.Duration {
		cfg := ramcloudCfg(2)
		cfg.AsyncRead = asyncRead
		cfg.StealEnabled = false
		cfg.WriteBatchSize = 1 // flush immediately so refaults read remotely
		m := newMonitor(t, cfg, 256)
		now := time.Duration(0)
		var err error
		for i := 0; i < 8; i++ {
			if _, now, err = m.Touch(now, addr(i), true); err != nil {
				t.Fatal(err)
			}
		}
		start := now
		for round := 0; round < 20; round++ {
			for i := 0; i < 8; i++ {
				if _, now, err = m.Touch(now, addr(i), false); err != nil {
					t.Fatal(err)
				}
			}
		}
		return now - start
	}
	sync, async := run(false), run(true)
	if async >= sync {
		t.Fatalf("async read (%v) not faster than sync (%v)", async, sync)
	}
}

func TestPageTrackerDisabledStillCorrect(t *testing.T) {
	cfg := dramCfg(8)
	cfg.PageTracker = false
	m := newMonitor(t, cfg, 64)
	// Without the tracker every first touch goes to the store and misses;
	// the monitor must still resolve the fault (with an error surfaced).
	_, _, err := m.Touch(0, addr(0), true)
	if err == nil {
		t.Skip("store-miss path resolved silently; acceptable if zero-filled")
	}
}

func TestLRUEvictsInsertionOrder(t *testing.T) {
	// §V-A: the list order never changes after insertion — re-touching a
	// resident page must NOT save it from eviction.
	m := newMonitor(t, dramCfg(3), 64)
	now := time.Duration(0)
	var err error
	for i := 0; i < 3; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	// Touch page 0 many times (resident: the monitor never sees it).
	for j := 0; j < 50; j++ {
		if _, now, err = m.Touch(now, addr(0), false); err != nil {
			t.Fatal(err)
		}
	}
	// One more distinct page: the victim must be page 0 (oldest inserted).
	if _, now, err = m.Touch(now, addr(3), true); err != nil {
		t.Fatal(err)
	}
	if m.lru.Contains(addr(0)) {
		t.Fatal("oldest page survived; LRU is not insertion-ordered")
	}
	if !m.lru.Contains(addr(1)) || !m.lru.Contains(addr(2)) {
		t.Fatal("wrong victim evicted")
	}
}

func TestResizeShrinksFootprint(t *testing.T) {
	m := newMonitor(t, dramCfg(64), 128)
	now := time.Duration(0)
	var err error
	for i := 0; i < 64; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if m.ResidentPages() != 64 {
		t.Fatalf("resident = %d", m.ResidentPages())
	}
	done, err := m.Resize(now, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.ResidentPages() != 8 {
		t.Fatalf("resident after shrink = %d", m.ResidentPages())
	}
	if done <= now {
		t.Fatal("shrink eviction cost nothing")
	}
	if m.FootprintLimit() != 8 {
		t.Fatalf("FootprintLimit = %d", m.FootprintLimit())
	}
	// Grow back: instant, and evicted pages refault fine.
	if _, err := m.Resize(done, 64); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Touch(done, addr(0), false); err != nil {
		t.Fatal(err)
	}
}

func TestResizeValidation(t *testing.T) {
	m := newMonitor(t, dramCfg(4), 16)
	if _, err := m.Resize(0, 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestDiscardForgetsPage(t *testing.T) {
	m := newMonitor(t, dramCfg(16), 64)
	data, now, err := m.Touch(0, addr(0), true)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, bytes.Repeat([]byte{0xEE}, PageSize))
	m.Discard(addr(0))
	if m.ResidentPages() != 0 {
		t.Fatalf("resident = %d after discard", m.ResidentPages())
	}
	// Next touch is a fresh first-touch: zeroes, not 0xEE.
	got, _, err := m.Touch(now, addr(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("discarded page kept stale contents")
	}
	if m.Stats().FirstTouch != 2 {
		t.Fatalf("FirstTouch = %d, want 2", m.Stats().FirstTouch)
	}
}

func TestMultiVMSharedLRU(t *testing.T) {
	m, err := NewMonitor(dramCfg(8), nil, "hyp")
	if err != nil {
		t.Fatal(err)
	}
	const vmA, vmB = 100, 200
	baseA, baseB := uint64(0x1000_0000), uint64(0x2000_0000)
	if _, err := m.RegisterRange(baseA, 64*PageSize, vmA); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterRange(baseB, 64*PageSize, vmB); err != nil {
		t.Fatal(err)
	}
	partA, _ := m.Partition(vmA)
	partB, _ := m.Partition(vmB)
	if partA == partB {
		t.Fatal("two VMs share a partition")
	}
	now := time.Duration(0)
	for i := 0; i < 8; i++ {
		if _, now, err = m.Touch(now, baseA+uint64(i)*PageSize, true); err != nil {
			t.Fatal(err)
		}
		if _, now, err = m.Touch(now, baseB+uint64(i)*PageSize, true); err != nil {
			t.Fatal(err)
		}
	}
	// The shared LRU bounds both VMs combined.
	if m.ResidentPages() > 8 {
		t.Fatalf("combined resident = %d > 8", m.ResidentPages())
	}
}

func TestUnregisterVMCleansUp(t *testing.T) {
	m, err := NewMonitor(dramCfg(8), nil, "hyp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterRange(testBase, 16*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	for i := 0; i < 12; i++ { // some evicted to store
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if now, err = m.Drain(now); err != nil {
		t.Fatal(err)
	}
	if _, err := m.UnregisterVM(now, 4242); err != nil {
		t.Fatal(err)
	}
	if m.ResidentPages() != 0 {
		t.Fatalf("resident = %d after unregister", m.ResidentPages())
	}
	if _, ok := m.Partition(4242); ok {
		t.Fatal("partition not released")
	}
	if _, err := m.UnregisterVM(now, 4242); err == nil {
		t.Fatal("double unregister succeeded")
	}
}

func TestProfilerRecordsTableIOps(t *testing.T) {
	cfg := ramcloudCfg(4)
	cfg.AsyncRead = false // synchronous profile, as Table I specifies
	cfg.AsyncWrite = false
	m := newMonitor(t, cfg, 256)
	now := time.Duration(0)
	var err error
	for i := 0; i < 32; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 16; i++ {
			if _, now, err = m.Touch(now, addr(i), false); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, op := range []string{
		OpInsertPageHash, OpInsertLRUCache, OpUffdZeroPage,
		OpUffdRemap, OpUffdCopy, OpReadPage, OpWritePage, OpUpdatePageCache,
	} {
		s := m.Profiler().Sample(op)
		if s == nil || s.Len() == 0 {
			t.Fatalf("op %s never recorded", op)
		}
	}
	if table := m.Profiler().Table(); len(table) < 100 {
		t.Fatalf("profiler table too short:\n%s", table)
	}
}

func TestReadPageProfileNearTableI(t *testing.T) {
	cfg := ramcloudCfg(4)
	cfg.AsyncRead = false
	cfg.AsyncWrite = false
	m := newMonitor(t, cfg, 512)
	now := time.Duration(0)
	var err error
	for i := 0; i < 64; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 64; i++ {
			if _, now, err = m.Touch(now, addr(i), false); err != nil {
				t.Fatal(err)
			}
			now += 50 * time.Microsecond
		}
	}
	s := m.Profiler().Sample(OpReadPage)
	avg := s.Mean()
	if avg < 13*time.Microsecond || avg > 20*time.Microsecond {
		t.Fatalf("READ_PAGE avg = %v, want ≈15.6µs (Table I)", avg)
	}
}

func TestFaultLatencySink(t *testing.T) {
	m := newMonitor(t, dramCfg(16), 64)
	var got []time.Duration
	m.SetFaultLatencySink(func(d time.Duration) { got = append(got, d) })
	now := time.Duration(0)
	var err error
	for i := 0; i < 5; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 5 {
		t.Fatalf("sink saw %d faults", len(got))
	}
	for _, d := range got {
		if d <= 0 {
			t.Fatal("non-positive fault latency")
		}
	}
}

func TestEvictWithCopyAblation(t *testing.T) {
	cfg := dramCfg(2)
	cfg.EvictWithCopy = true
	m := newMonitor(t, cfg, 64)
	now := time.Duration(0)
	data, now, err := m.Touch(now, addr(0), true)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, bytes.Repeat([]byte{0x11}, PageSize))
	for i := 1; i < 6; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := m.Touch(now, addr(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x11 {
		t.Fatal("copy-evicted page corrupted")
	}
}

func TestEpochAdvancesOnMappingChanges(t *testing.T) {
	m := newMonitor(t, dramCfg(2), 64)
	e0 := m.Epoch()
	_, now, err := m.Touch(0, addr(0), true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() == e0 {
		t.Fatal("epoch unchanged after mapping")
	}
	e1 := m.Epoch()
	if _, _, err = m.Touch(now, addr(0), false); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != e1 {
		t.Fatal("epoch changed on resident hit")
	}
}

func TestRegisterRangeUnknownOverlap(t *testing.T) {
	m := newMonitor(t, dramCfg(4), 16)
	if _, err := m.RegisterRange(testBase, 16*PageSize, 999); err == nil {
		t.Fatal("overlapping registration accepted")
	}
}

func TestHotplugSecondRangeSamePID(t *testing.T) {
	m := newMonitor(t, dramCfg(64), 16)
	// Hotplug: extra range for the same VM shares the partition.
	if _, err := m.RegisterRange(testBase+16*PageSize*4, 16*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	p1, _ := m.Partition(4242)
	now := time.Duration(0)
	var err error
	if _, now, err = m.Touch(now, testBase+16*PageSize*4, true); err != nil {
		t.Fatal(err)
	}
	p2, _ := m.Partition(4242)
	if p1 != p2 {
		t.Fatal("hotplug changed the partition")
	}
	_ = now
}

func TestStoreKeysUseVMPartition(t *testing.T) {
	store := dram.New(dram.DefaultParams(), 9)
	cfg := DefaultConfig(store, 1)
	cfg.WriteBatchSize = 1
	m, err := NewMonitor(cfg, nil, "hyp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterRange(testBase, 16*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	part, _ := m.Partition(4242)
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		if _, now, err = m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if now, err = m.Drain(now); err != nil {
		t.Fatal(err)
	}
	// Evicted pages must be stored under this VM's partition keys.
	key := kvstore.MakeKey(addr(0), part)
	if _, _, err := store.Get(now, key); err != nil {
		t.Fatalf("page not under partitioned key: %v", err)
	}
}
