package core

// This file is the monitor's data plane: the per-fault hot path, from fault
// decode through shard dispatch, LRU touch, store read, and write-list
// append. Steady state it is allocation-free and lock-free — see DESIGN.md
// §14 for the rules on what may allocate where. Slow-path work lives in
// controlplane.go and reaches this side only through the intake ring.

import (
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/trace"
	"fluidmem/internal/uffd"
)

// workerOf shards a page address onto a fault-pipeline worker. The same
// indexer shards the LRU segments and write-list queues, so a worker only
// ever touches its own structures on the fault path (evictions, which pick
// the globally oldest page, are the one deliberate cross-shard operation).
// The indexer replaces the naive div+mod with a shift/mask (power-of-two
// widths) or a fixed-point reciprocal (see shardindex.go): workerOf runs
// several times per fault, so the divide was measurable.
func (m *Monitor) workerOf(addr uint64) int {
	return m.shardIdx.index(addr)
}

// cell returns the Stats cell owned by addr's worker; see Stats for the
// memory model.
func (m *Monitor) cell(addr uint64) *Stats {
	return &m.statsCells[m.workerOf(addr)]
}

// record charges one profiled monitor operation to both the Table-I
// profiler and the tracer's per-(phase, worker) latency histogram, with the
// worker attributed by the page address that caused the work.
func (m *Monitor) record(op string, addr uint64, d time.Duration) {
	m.prof.Record(op, d)
	if m.tr != nil {
		m.tr.Observe(op, m.workerOf(addr), d)
	}
}

// traceFault emits the end-to-end FAULT span for a resolved fault: the
// event's arg carries the resolution path, and a per-path histogram
// ("FAULT.<path>") accumulates alongside the merged FAULT one so the
// paper's Fig. 5-style breakdown falls straight out of a Snapshot. The
// nil-tracer early return is the zero-cost fast path: the "FAULT."+path
// concatenation never runs untraced.
func (m *Monitor) traceFault(ev uffd.Event, start, resume time.Duration, path string, err error) {
	if err != nil || m.tr == nil {
		return
	}
	w := m.workerOf(ev.Addr)
	m.tr.Emit(trace.EvFault, w, ev.Addr, start, resume-start, path)
	m.tr.Observe("FAULT."+path, w, resume-start)
}

// Touch implements vm.Backing: a guest access to addr. Resident pages return
// immediately; missing pages take the full monitor fault path. Queued
// control-plane commands are drained first — the fault boundary is the
// data plane's only synchronisation point with the control plane.
func (m *Monitor) Touch(now time.Duration, addr uint64, write bool) ([]byte, time.Duration, error) {
	m.drainIntake(now)
	data, done, hit, err := m.fd.Access(now, addr, write)
	if err != nil {
		return nil, done, err
	}
	if hit {
		return data, done, nil
	}
	ev, ok := m.fd.NextEvent()
	if !ok {
		return nil, done, errors.New("core: fault raised but no event queued")
	}
	resolved, err := m.handleFault(done, ev)
	if err != nil {
		return nil, resolved, err
	}
	if m.faultLatencies != nil {
		m.faultLatencies(resolved - now)
	}
	// The vCPU retries the instruction; the page is now resident. A write
	// to a freshly zero-mapped page breaks COW here, exactly as in §V-A.
	data, done, hit, err = m.fd.Access(resolved, addr, write)
	if err != nil {
		return nil, done, err
	}
	if !hit {
		return nil, done, fmt.Errorf("core: page %#x still missing after fault resolution", addr)
	}
	return data, done, nil
}

// handleFault resolves one userfaultfd event, returning the virtual time at
// which the faulting vCPU resumes.
func (m *Monitor) handleFault(eventAt time.Duration, ev uffd.Event) (time.Duration, error) {
	m.cell(ev.Addr).Faults++
	part, ok := m.partitions[ev.PID]
	if !ok {
		return eventAt, fmt.Errorf("%w: %d", ErrUnknownPID, ev.PID)
	}
	m.hot.Fault(ev.Addr)
	// Handling starts when the fault's worker is free: the pipeline shards
	// by page address, so a fault queues only behind its own worker.
	w := m.workerOf(ev.Addr)
	t := eventAt
	if m.workerFree[w] > t {
		t = m.workerFree[w]
	}
	t += m.cfg.MonitorOps.EventDispatch.Sample(m.rng)

	// Seen-pages hash probe (the "pagetracker", §V-A).
	hashCost := m.cfg.MonitorOps.HashLookup.Sample(m.rng)
	m.record(OpInsertPageHash, ev.Addr, hashCost)
	t += hashCost

	key := kvstore.MakeKey(ev.Addr, part)
	if !m.seen.has(ev.Addr) && m.cfg.PageTracker {
		resumeAt, err := m.resolveFirstTouch(t, ev)
		m.traceFault(ev, eventAt, resumeAt, "first_touch", err)
		return resumeAt, err
	}
	// Zero-bitmap hit: the page's latest eviction was elided, so any store
	// copy is stale — restore it with UFFDIO_ZEROPAGE, no store traffic.
	// Checked unconditionally (not gated on cfg.ElideZeroPages): a standing
	// mark means the store was never updated, so reading it would be wrong
	// even if the feature has since been toggled off.
	if m.wb.TakeZero(key) {
		resumeAt, err := m.resolveZeroRefill(t, ev)
		m.traceFault(ev, eventAt, resumeAt, "zero_refill", err)
		return resumeAt, err
	}
	resumeAt, path, batched, err := m.resolveFromStore(t, ev, key)
	if err == nil && m.cfg.PrefetchPages > 0 && !batched {
		// Read ahead while the guest is already running (off the critical
		// path; occupies only the fault's worker). The batched-read path
		// has already folded the prefetch into its MultiGet.
		m.workerFree[w] = m.prefetch(m.workerFree[w], ev.Addr, part)
	}
	m.traceFault(ev, eventAt, resumeAt, path, err)
	return resumeAt, err
}

// resolveFirstTouch maps the zero page and wakes the guest; eviction, if
// needed, happens after the wake-up, off the critical path (Figure 2).
func (m *Monitor) resolveFirstTouch(t time.Duration, ev uffd.Event) (time.Duration, error) {
	m.cell(ev.Addr).FirstTouch++
	m.seen.add(ev.Addr)
	return m.zeroFill(t, ev)
}

// resolveZeroRefill resolves a re-fault of a zero-elided page: the eviction
// recorded the page's all-zero contents in the zero bitmap instead of
// writing the store, so the refill is a local UFFDIO_ZEROPAGE — the same
// fast path as first touch, counted separately.
func (m *Monitor) resolveZeroRefill(t time.Duration, ev uffd.Event) (time.Duration, error) {
	m.cell(ev.Addr).ZeroRefills++
	return m.zeroFill(t, ev)
}

// zeroFill installs the zero page, wakes the guest, and runs asynchronous
// eviction afterwards — shared tail of first-touch and zero-refill faults.
func (m *Monitor) zeroFill(t time.Duration, ev uffd.Event) (time.Duration, error) {
	done, err := m.fd.ZeroPage(t, ev.Addr)
	if err != nil {
		return t, fmt.Errorf("core: zeropage %#x: %w", ev.Addr, err)
	}
	m.prof.Record(OpUffdZeroPage, done-t)
	t = done
	m.epoch++

	lruCost := m.cfg.MonitorOps.LRUInsert.Sample(m.rng)
	m.record(OpInsertLRUCache, ev.Addr, lruCost)
	t += lruCost
	m.lru.Insert(ev.Addr)

	t = m.fd.Wake(t, ev.Addr)
	resumeAt := t + m.cfg.MonitorOps.Resume.Sample(m.rng)

	// Asynchronous eviction (blue path in Figure 2): the monitor keeps
	// working after the guest resumes.
	mFree := t
	var err2 error
	for m.lru.Len() > m.cfg.LRUCapacity {
		if mFree, err2 = m.evictOne(mFree, false); err2 != nil {
			return resumeAt, err2
		}
	}
	m.workerFree[m.workerOf(ev.Addr)] = mFree
	return resumeAt, nil
}

// resolveFromStore fetches a previously seen page: from the write list
// (steal), after an in-flight write, or from the key-value store, evicting
// to make room. path names the resolution route for the fault trace
// ("tier", "steal", "read", "batched_read"). The batched return flag
// reports that the read already folded the prefetch window into its
// MultiGet, so the caller must not prefetch again.
func (m *Monitor) resolveFromStore(t time.Duration, ev uffd.Event, key kvstore.Key) (resumeAt time.Duration, path string, batched bool, err error) {
	// Compressed-tier hit: decompress locally, no network round trip.
	if m.tier != nil {
		data, done, hit, err := m.tier.take(t, key)
		if err != nil {
			return t, "tier", false, err
		}
		if hit {
			// Not store-backed: the tier held the only current copy.
			rt, err := m.installAndWake(done, ev, data, false, true)
			// The decompression buffer was copied into the VM; pool it.
			m.fd.Recycle(data)
			return rt, "tier", false, err
		}
	}
	// Steal shortcut: the page is sitting on the pending write list.
	if m.cfg.StealEnabled && m.cfg.AsyncWrite {
		if data, ok := m.wb.Steal(t, key); ok {
			m.cell(ev.Addr).Steals++
			// Not store-backed: the stolen write never reached the store.
			rt, err := m.installAndWake(t, ev, data, false, true)
			// Steal transferred the frame to us; UFFDIO_COPY copied it in,
			// so the buffer goes back to the pool.
			m.fd.Recycle(data)
			return rt, "steal", false, err
		}
	} else if m.cfg.AsyncWrite && m.wb.Queued(key) {
		// Without stealing, a queued write must be flushed and completed
		// before the read can see the page — the two round trips the steal
		// optimisation shortcuts (§V-B).
		if err := m.wb.Flush(t); err != nil {
			return t, "read", false, fmt.Errorf("core: forced flush for %v: %w", key, err)
		}
	}
	// A write of this page is in flight: wait for it to land, then read.
	if doneAt, ok := m.wb.WaitFor(t, key); ok {
		m.cell(ev.Addr).InFlightWaits++
		t = doneAt
	}

	m.cell(ev.Addr).RemoteReads++
	if m.cfg.AsyncRead && m.cfg.BatchReads && m.cfg.PrefetchPages > 0 {
		rt, b, err := m.resolveBatchedRead(t, ev, key)
		return rt, "batched_read", b, err
	}
	var data []byte
	if m.cfg.AsyncRead {
		// Top half: issue the read immediately; the eviction's REMAP and
		// all monitor bookkeeping (LRU insert, cache update) run while the
		// network waits (§V-B asynchronous reads). Only the copy and wake
		// remain after the reply lands. The PendingGet handle is a value on
		// this frame — no allocation per split read.
		issue := t
		if !m.storeLocal {
			issue += m.cfg.MonitorOps.AsyncIssue.Sample(m.rng)
		}
		pending := m.cfg.Store.StartGet(issue, key)
		overlap := issue
		for m.lru.Len() >= m.cfg.LRUCapacity {
			if overlap, err = m.evictOne(overlap, true); err != nil {
				return t, "read", false, err
			}
			overlap += m.cfg.MonitorOps.EvictFinish.Sample(m.rng)
		}
		updCost := m.cfg.MonitorOps.CacheUpdate.Sample(m.rng)
		m.record(OpUpdatePageCache, ev.Addr, updCost)
		overlap += updCost
		lruCost := m.cfg.MonitorOps.LRUInsert.Sample(m.rng)
		m.record(OpInsertLRUCache, ev.Addr, lruCost)
		overlap += lruCost
		m.lru.Insert(ev.Addr)

		// Bottom half.
		var readDone time.Duration
		data, readDone, err = pending.Wait(overlap)
		m.record(OpReadPage, ev.Addr, pending.ReadyAt-issue)
		if err != nil {
			return readDone, "read", false, fmt.Errorf("core: read %v: %w", key, err)
		}
		done, err := m.fd.Copy(readDone, ev.Addr, data)
		if err != nil {
			return readDone, "read", false, fmt.Errorf("core: copy into %#x: %w", ev.Addr, err)
		}
		m.prof.Record(OpUffdCopy, done-readDone)
		m.epoch++
		if done, err = m.markClean(done, ev.Addr); err != nil {
			return done, "read", false, err
		}
		t = m.fd.Wake(done, ev.Addr)
		m.workerFree[m.workerOf(ev.Addr)] = t
		return t + m.cfg.MonitorOps.Resume.Sample(m.rng), "read", false, nil
	}
	{
		if !m.storeLocal {
			t += m.cfg.MonitorOps.RPCOverhead.Sample(m.rng)
		}
		var readDone time.Duration
		data, readDone, err = m.cfg.Store.Get(t, key)
		m.record(OpReadPage, ev.Addr, readDone-t)
		if err != nil {
			return readDone, "read", false, fmt.Errorf("core: read %v: %w", key, err)
		}
		t = readDone
		for m.lru.Len() >= m.cfg.LRUCapacity {
			if t, err = m.evictOne(t, false); err != nil {
				return t, "read", false, err
			}
		}
	}
	rt, err := m.installAndWake(t, ev, data, true, false)
	return rt, "read", false, err
}

// resolveBatchedRead resolves a demand fault and its readahead window with a
// single amortised MultiGet (cfg.BatchReads): the demand key and every
// prefetch candidate travel in one round trip instead of a pipeline of
// per-page split reads. The eviction's REMAP and monitor bookkeeping still
// overlap the network wait as in the split-read path, and the readahead
// pages are installed after the guest wakes, off the critical path. The
// request vectors live in the data arena, reused across faults.
func (m *Monitor) resolveBatchedRead(t time.Duration, ev uffd.Event, key kvstore.Key) (time.Duration, bool, error) {
	w := m.workerOf(ev.Addr)
	cands := m.gatherPrefetch(t, ev.Addr, key.Partition())
	issue := t
	if !m.storeLocal {
		issue += m.cfg.MonitorOps.AsyncIssue.Sample(m.rng)
	}
	keys := append(m.scratch.keys[:0], key)
	idx := m.scratch.idx[:0] // candidate index for each extra key
	for i, c := range cands {
		if c.data == nil {
			keys = append(keys, c.key)
			idx = append(idx, i)
		}
	}
	m.scratch.keys, m.scratch.idx = keys, idx
	pages, readDone, err := m.cfg.Store.MultiGet(issue, keys)
	if err != nil {
		return t, true, fmt.Errorf("core: batched read %v: %w", key, err)
	}
	if pages[0] == nil {
		return t, true, fmt.Errorf("core: read %v: %w", key, kvstore.ErrNotFound)
	}
	for j, ci := range idx {
		cands[ci].data = pages[1+j] // nil stays nil on a store miss
	}
	// Eviction and bookkeeping overlap the network wait (§V-B).
	overlap := issue
	for m.lru.Len() >= m.cfg.LRUCapacity {
		if overlap, err = m.evictOne(overlap, true); err != nil {
			return t, true, err
		}
		overlap += m.cfg.MonitorOps.EvictFinish.Sample(m.rng)
	}
	updCost := m.cfg.MonitorOps.CacheUpdate.Sample(m.rng)
	m.record(OpUpdatePageCache, ev.Addr, updCost)
	overlap += updCost
	lruCost := m.cfg.MonitorOps.LRUInsert.Sample(m.rng)
	m.record(OpInsertLRUCache, ev.Addr, lruCost)
	overlap += lruCost
	m.lru.Insert(ev.Addr)
	m.record(OpReadPage, ev.Addr, readDone-issue)

	// Bottom half: the copy and wake run once both the reply has landed and
	// the overlapped bookkeeping is done.
	t = overlap
	if readDone > t {
		t = readDone
	}
	done, err := m.fd.Copy(t, ev.Addr, pages[0])
	if err != nil {
		return t, true, fmt.Errorf("core: copy into %#x: %w", ev.Addr, err)
	}
	m.prof.Record(OpUffdCopy, done-t)
	m.epoch++
	if done, err = m.markClean(done, ev.Addr); err != nil {
		return done, true, err
	}
	t = m.fd.Wake(done, ev.Addr)
	resumeAt := t + m.cfg.MonitorOps.Resume.Sample(m.rng)

	// Install the readahead pages while the guest is already running.
	mFree := t
	for _, c := range cands {
		if c.data == nil {
			continue // store miss: the page will fault normally
		}
		var stop bool
		mFree, stop = m.installPrefetched(mFree, ev.Addr, c.addr, c.data, !c.stolen)
		if stop {
			break
		}
	}
	// Stolen candidates own their frames (store-read ones alias store
	// memory); installed or not, UFFDIO_COPY has taken what it needs.
	for _, c := range cands {
		if c.stolen {
			m.fd.Recycle(c.data)
		}
	}
	m.workerFree[w] = mFree
	return resumeAt, true, nil
}

// installAndWake copies data into the faulting page, re-inserts it in the
// LRU list, and wakes the guest. storeBacked says the bytes match a durable
// store copy, arming clean tracking; steals and tier hits install data the
// store does not hold, so they must pass false. The store-read paths have
// already made room; the steal shortcut has not, so it evicts here
// (needEvict). Callers keep ownership of data: UFFDIO_COPY duplicates it.
func (m *Monitor) installAndWake(t time.Duration, ev uffd.Event, data []byte, storeBacked, needEvict bool) (time.Duration, error) {
	if needEvict {
		var err error
		for m.lru.Len() >= m.cfg.LRUCapacity {
			if t, err = m.evictOne(t, false); err != nil {
				return t, err
			}
		}
	}
	updCost := m.cfg.MonitorOps.CacheUpdate.Sample(m.rng)
	m.record(OpUpdatePageCache, ev.Addr, updCost)
	t += updCost

	done, err := m.fd.Copy(t, ev.Addr, data)
	if err != nil {
		return t, fmt.Errorf("core: copy into %#x: %w", ev.Addr, err)
	}
	m.prof.Record(OpUffdCopy, done-t)
	t = done
	m.epoch++
	if storeBacked {
		if t, err = m.markClean(t, ev.Addr); err != nil {
			return t, err
		}
	}

	lruCost := m.cfg.MonitorOps.LRUInsert.Sample(m.rng)
	m.record(OpInsertLRUCache, ev.Addr, lruCost)
	t += lruCost
	m.lru.Insert(ev.Addr)

	t = m.fd.Wake(t, ev.Addr)
	m.workerFree[m.workerOf(ev.Addr)] = t
	return t + m.cfg.MonitorOps.Resume.Sample(m.rng), nil
}

// evictOne pushes the oldest LRU page out of the VM and toward the store.
// Eviction is the one deliberate cross-shard operation: the victim is the
// globally oldest page, so its counters are attributed to the victim's own
// cell (see Stats) to keep merged totals worker-count-independent.
//
// Frame lifecycle: the remapped frame's ownership moves here, then onward —
// to the write list (which recycles it after the flush's MultiPut copies
// it), or straight back to the pool on the clean-drop, zero-elide, tier-
// accepted, and synchronous-write paths. Store-returned buffers never come
// through here, so nothing store-owned can reach the pool.
func (m *Monitor) evictOne(t time.Duration, interleaved bool) (time.Duration, error) {
	victim, ok := m.lru.Oldest()
	if !ok {
		return t, errors.New("core: eviction needed but LRU list empty")
	}
	m.lru.Remove(victim)
	m.hot.Evict(victim)
	m.cell(victim).Evictions++
	evictStart := t

	// Dirty check (must precede the remap, which destroys the mapping): a
	// page still write-protected since its store-backed install was never
	// written, so the store copy is current and no write is needed.
	clean := m.cfg.CleanPageDrop && m.fd.PageClean(victim)

	var (
		data []byte
		err  error
	)
	if m.cfg.EvictWithCopy {
		// Ablation A3: copy the page out, then zap the mapping. Costs a
		// page copy but no TLB shootdown IPI. The copy lands in a pooled
		// frame; Drop recycles the original in-VM frame.
		start := t
		var mapped []byte
		mapped, t, _, err = m.fd.Access(t, victim, false)
		if err != nil {
			return t, fmt.Errorf("core: evict-copy read %#x: %w", victim, err)
		}
		data = m.fd.GetFrame()
		copy(data, mapped)
		copyDone, err := copyOutCost(m, t)
		if err != nil {
			return t, err
		}
		t = copyDone
		m.fd.Drop(victim)
		m.prof.Record(OpUffdRemap, t-start)
		m.tr.Emit(trace.EvEvict, m.workerOf(victim), victim, evictStart, t-evictStart, "copy")
	} else {
		var done time.Duration
		data, done, err = m.fd.Remap(t, victim, interleaved)
		if err != nil {
			return t, fmt.Errorf("core: remap %#x: %w", victim, err)
		}
		m.prof.Record(OpUffdRemap, done-t)
		t = done
		m.tr.Emit(trace.EvEvict, m.workerOf(victim), victim, evictStart, t-evictStart, "remap")
	}
	m.epoch++

	if clean {
		// Clean drop: the store copy is current, the local frame is already
		// freed — the eviction is done, with no write, no tier offer, no
		// list traffic.
		m.cell(victim).CleanDropped++
		m.tr.Emit(trace.EvCleanDrop, m.workerOf(victim), victim, t, 0, "")
		m.fd.Recycle(data)
		return t, nil
	}

	region := m.regionOf(victim)
	if region == nil {
		return t, fmt.Errorf("core: evicted page %#x has no region", victim)
	}
	part, ok := m.partitions[region.PID]
	if !ok {
		return t, fmt.Errorf("%w: %d", ErrUnknownPID, region.PID)
	}
	key := kvstore.MakeKey(victim, part)

	if m.cfg.ElideZeroPages {
		scanCost := m.cfg.MonitorOps.ZeroScan.Sample(m.rng)
		m.record(OpZeroScan, victim, scanCost)
		t += scanCost
		if allZero(data) {
			// Zero elision: record the mark instead of shipping 4 KiB of
			// zeroes; the re-fault resolves with UFFDIO_ZEROPAGE.
			m.wb.NoteZero(key)
			m.cell(victim).ZeroElided++
			m.tr.Emit(trace.EvZeroElide, m.workerOf(victim), victim, t, 0, "")
			m.fd.Recycle(data)
			return t, nil
		}
	}

	if m.tier != nil {
		done, accepted, displaced, terr := m.tier.offer(t, key, data)
		if terr != nil {
			return t, terr
		}
		t = done
		for _, d := range displaced {
			if t, err = m.wb.Enqueue(t, d.key, d.key.Page(), d.data); err != nil {
				return t, err
			}
		}
		if accepted {
			// The tier kept a compressed copy; the raw frame is free.
			m.fd.Recycle(data)
			return t, nil
		}
	}

	if m.cfg.AsyncWrite {
		flushesBefore := m.wb.flushes
		if t, err = m.wb.Enqueue(t, key, victim, data); err != nil {
			return t, fmt.Errorf("core: enqueue write %v: %w", key, err)
		}
		m.cell(victim).Flushes += m.wb.flushes - flushesBefore
		return t, nil
	}
	m.cell(victim).SyncWrites++
	if !m.storeLocal {
		t += m.cfg.MonitorOps.RPCOverhead.Sample(m.rng)
	}
	done, err := m.cfg.Store.Put(t, key, data)
	m.record(OpWritePage, victim, done-t)
	// Put copied the bytes (or failed terminally); either way the frame is
	// ours again.
	m.fd.Recycle(data)
	if err != nil {
		return done, fmt.Errorf("core: write %v: %w", key, err)
	}
	return done, nil
}

// copyOutCost charges a user-space page copy (ablation A3's replacement for
// the zero-copy remap).
func copyOutCost(m *Monitor, t time.Duration) (time.Duration, error) {
	return t + m.cfg.UFFD.Copy.Sample(m.rng), nil
}

// markClean write-protects a freshly installed page whose bytes match the
// durable store copy, arming the clean-drop eviction path: the first guest
// write trips a (simulated) WP fault that clears the protection, so a page
// still protected at eviction time is provably unwritten. No-op unless
// cfg.CleanPageDrop is on, so feature-off runs draw the exact same RNG
// sequence as before.
func (m *Monitor) markClean(t time.Duration, addr uint64) (time.Duration, error) {
	if !m.cfg.CleanPageDrop {
		return t, nil
	}
	done, err := m.fd.SetWriteProtect(t, addr)
	if err != nil {
		return t, fmt.Errorf("core: write-protect %#x: %w", addr, err)
	}
	m.prof.Record(OpUffdWriteProtect, done-t)
	return done, nil
}

// allZero reports whether a page is entirely zero bytes.
func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
