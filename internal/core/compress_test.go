package core

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/ramcloud"
)

func TestCompressRoundTripZeroPage(t *testing.T) {
	page := make([]byte, PageSize)
	blob := compressPage(page)
	if len(blob) > 8 {
		t.Fatalf("zero page compressed to %d bytes", len(blob))
	}
	back, err := decompressPage(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, page) {
		t.Fatal("round trip corrupted zero page")
	}
}

func TestCompressRoundTripIncompressible(t *testing.T) {
	page := make([]byte, PageSize)
	for i := range page {
		page[i] = byte(i*7 + 1) // never a long zero run
	}
	blob := compressPage(page)
	back, err := decompressPage(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, page) {
		t.Fatal("round trip corrupted dense page")
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(seed int64, sparsity uint8) bool {
		page := make([]byte, PageSize)
		state := uint64(seed)
		for i := range page {
			state = state*6364136223846793005 + 1442695040888963407
			// Higher sparsity ⇒ more zero bytes.
			if byte(state>>32)%(sparsity%16+1) != 0 {
				page[i] = byte(state >> 24)
			}
		}
		back, err := decompressPage(compressPage(page))
		return err == nil && bytes.Equal(back, page)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressSparsePageShrinks(t *testing.T) {
	page := make([]byte, PageSize)
	copy(page[100:], []byte("hello world"))
	copy(page[3000:], []byte("tail data"))
	blob := compressPage(page)
	if len(blob) > PageSize/8 {
		t.Fatalf("sparse page compressed to %d bytes", len(blob))
	}
}

func TestDecompressRejectsCorruptBlobs(t *testing.T) {
	for _, blob := range [][]byte{
		{0x42},                 // unknown token
		{tokZeros},             // missing length
		{tokLiteral, 10, 1, 2}, // truncated literal
		{tokZeros, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, // over-long run
	} {
		if _, err := decompressPage(blob); err == nil {
			t.Fatalf("blob %v accepted", blob)
		}
	}
	// Valid tokens but short of a full page.
	if _, err := decompressPage(compressPage(make([]byte, PageSize))[:2]); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// compressedMonitor builds a monitor with a compressed tier over RAMCloud.
func compressedMonitor(t *testing.T, lruPages int, poolBytes uint64) *Monitor {
	t.Helper()
	cfg := DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), 3), lruPages)
	params := DefaultCompressParams(poolBytes)
	cfg.Compress = &params
	m, err := NewMonitor(cfg, nil, "hyp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterRange(testBase, 256*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompressedTierAbsorbsSparseEvictions(t *testing.T) {
	m := compressedMonitor(t, 4, 1<<20)
	now := time.Duration(0)
	// Sparse pages (one marker byte) evict into the pool, not the store.
	for i := 0; i < 16; i++ {
		data, done, err := m.Touch(now, addr(i), true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		data[0] = byte(i + 1)
	}
	st, ok := m.CompressStats()
	if !ok {
		t.Fatal("tier reported disabled")
	}
	if st.Stored == 0 {
		t.Fatal("no evictions reached the pool")
	}
	if m.cfg.Store.Stats().Puts != 0 {
		t.Fatalf("store saw %d puts; pool should have absorbed them", m.cfg.Store.Stats().Puts)
	}
	// Refaults come back from the pool with intact contents.
	for i := 0; i < 16; i++ {
		data, done, err := m.Touch(now, addr(i), false)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		if data[0] != byte(i+1) {
			t.Fatalf("page %d corrupted through the pool", i)
		}
	}
	st, _ = m.CompressStats()
	if st.Hits == 0 {
		t.Fatal("no pool hits")
	}
	if m.cfg.Store.Stats().Gets != 0 {
		t.Fatal("refaults read the store despite pool hits")
	}
}

func TestCompressedTierHitFasterThanRemoteRead(t *testing.T) {
	measure := func(pool uint64) time.Duration {
		cfg := DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), 3), 4)
		// Force refaults to the store (no write-list steals) so the
		// comparison isolates pool hit vs remote read.
		cfg.WriteBatchSize = 1
		cfg.StealEnabled = false
		if pool > 0 {
			params := DefaultCompressParams(pool)
			cfg.Compress = &params
		}
		m, err := NewMonitor(cfg, nil, "hyp")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.RegisterRange(testBase, 256*PageSize, 4242); err != nil {
			t.Fatal(err)
		}
		now := time.Duration(0)
		for i := 0; i < 16; i++ {
			_, done, err := m.Touch(now, addr(i), true)
			if err != nil {
				t.Fatal(err)
			}
			now = done
		}
		start := now
		for round := 0; round < 4; round++ {
			for i := 0; i < 16; i++ {
				_, done, err := m.Touch(now, addr(i), false)
				if err != nil {
					t.Fatal(err)
				}
				now = done
			}
		}
		return now - start
	}
	withPool := measure(4 << 20)
	without := measure(0)
	if withPool >= without {
		t.Fatalf("compressed tier (%v) not faster than remote-only (%v)", withPool, without)
	}
}

func TestCompressedTierOverflowsToStore(t *testing.T) {
	// A pool of ~4 compressed pages overflows under 32 evictions; displaced
	// pages must land in the store and stay readable.
	m := compressedMonitor(t, 2, 2*PageSize)
	now := time.Duration(0)
	for i := 0; i < 32; i++ {
		data, done, err := m.Touch(now, addr(i), true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		// Half-dense pages: compressible enough for the pool (ratio ≈ 0.5)
		// but big enough that a 2-page pool holds only ~4 of them.
		for j := 0; j < PageSize/2; j++ {
			data[j] = byte(i + j + 1)
		}
		data[0] = byte(i + 1)
	}
	st, _ := m.CompressStats()
	if st.Overflowed == 0 {
		t.Fatal("tiny pool never overflowed")
	}
	for i := 0; i < 32; i++ {
		data, done, err := m.Touch(now, addr(i), false)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		now = done
		if data[0] != byte(i+1) {
			t.Fatalf("page %d corrupted through overflow", i)
		}
	}
}

func TestIncompressiblePagesBypassTier(t *testing.T) {
	m := compressedMonitor(t, 2, 1<<20)
	now := time.Duration(0)
	for i := 0; i < 8; i++ {
		data, done, err := m.Touch(now, addr(i), true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		for j := range data {
			data[j] = byte(i + j*7 + 1) // dense, incompressible
		}
	}
	if now, err := m.Drain(now); err != nil {
		t.Fatal(err)
	} else {
		_ = now
	}
	st, _ := m.CompressStats()
	if st.Rejected == 0 {
		t.Fatal("dense pages were never rejected by the tier")
	}
	if m.cfg.Store.Stats().Puts == 0 {
		t.Fatal("rejected pages never reached the store")
	}
}

func TestCompressedTierDiscard(t *testing.T) {
	m := compressedMonitor(t, 2, 1<<20)
	now := time.Duration(0)
	for i := 0; i < 6; i++ {
		_, done, err := m.Touch(now, addr(i), true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	before, _ := m.CompressStats()
	if before.PoolBytes == 0 {
		t.Fatal("setup: empty pool")
	}
	// Discard every page; the pool must empty out.
	for i := 0; i < 6; i++ {
		m.Discard(addr(i))
	}
	after, _ := m.CompressStats()
	if after.PoolBytes != 0 {
		t.Fatalf("pool holds %d bytes after discards", after.PoolBytes)
	}
}

func TestMigrationDrainsCompressedTier(t *testing.T) {
	store := ramcloud.New(ramcloud.DefaultParams(), 9)
	params := DefaultCompressParams(1 << 20)
	registry := kvstore.NewLocalRegistry()
	srcCfg := DefaultConfig(store, 4)
	srcCfg.Compress = &params
	src, err := NewMonitor(srcCfg, registry, "hyp-a")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewMonitor(DefaultConfig(store, 4), registry, "hyp-b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.RegisterRange(testBase, 64*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	for i := 0; i < 16; i++ {
		data, done, err := src.Touch(now, addr(i), true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		data[0] = byte(i + 1)
	}
	image, now, err := src.ExportVM(now, 4242)
	if err != nil {
		t.Fatal(err)
	}
	if now, err = dst.ImportVM(now, image); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		data, done, err := dst.Touch(now, addr(i), false)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		now = done
		if data[0] != byte(i+1) {
			t.Fatalf("page %d lost from the source's compressed pool", i)
		}
	}
}
