package core

import (
	"time"

	"fluidmem/internal/kvstore"
)

// pendingWrite is one evicted page awaiting its store write.
type pendingWrite struct {
	key  kvstore.Key
	addr uint64
	data []byte
}

// writeback implements the asynchronous writeback engine (§V-B): evicted
// pages accumulate on a write list; a flusher pushes batches to the store
// with multi-write. The fault handler may *steal* a page back from the list
// (or wait on one already in flight) to shortcut the remote round trips.
type writeback struct {
	store     kvstore.Store
	batchSize int

	// queued holds evicted pages not yet submitted to the store.
	queued map[kvstore.Key]*pendingWrite
	order  []kvstore.Key
	// inflight maps keys of submitted writes to their completion time.
	inflight map[kvstore.Key]time.Duration

	flushes uint64
	steals  uint64
	waits   uint64
}

func newWriteback(store kvstore.Store, batchSize int) *writeback {
	if batchSize <= 0 {
		batchSize = 32
	}
	return &writeback{
		store:     store,
		batchSize: batchSize,
		queued:    make(map[kvstore.Key]*pendingWrite),
		inflight:  make(map[kvstore.Key]time.Duration),
	}
}

// Enqueue adds an evicted page and flushes if the batch threshold is
// reached. It returns the caller-visible completion time: enqueueing is off
// the critical path, so this is just now (flush I/O occupies the store's
// device asynchronously).
func (w *writeback) Enqueue(now time.Duration, key kvstore.Key, addr uint64, data []byte) (time.Duration, error) {
	w.gc(now)
	if old, ok := w.queued[key]; ok {
		// Re-eviction of a page whose previous write never flushed: replace.
		old.data = data
		return now, nil
	}
	w.queued[key] = &pendingWrite{key: key, addr: addr, data: data}
	w.order = append(w.order, key)
	if len(w.order) >= w.batchSize {
		return now, w.Flush(now)
	}
	return now, nil
}

// Flush submits all queued writes as one multi-write. The store's device
// model accounts the transfer; faults only wait on it via WaitFor.
func (w *writeback) Flush(now time.Duration) error {
	if len(w.order) == 0 {
		return nil
	}
	keys := make([]kvstore.Key, 0, len(w.order))
	pages := make([][]byte, 0, len(w.order))
	for _, key := range w.order {
		pw, ok := w.queued[key]
		if !ok {
			continue
		}
		keys = append(keys, key)
		pages = append(pages, pw.data)
	}
	done, err := w.store.MultiPut(now, keys, pages)
	if err != nil {
		return err
	}
	for _, key := range keys {
		delete(w.queued, key)
		w.inflight[key] = done
	}
	w.order = w.order[:0]
	w.flushes++
	return nil
}

// Steal resolves a fault from the write list: if key is still queued, its
// data is returned and the write is cancelled (the page is going right back
// into the VM, so nothing needs storing). ok=false if the key is not queued.
func (w *writeback) Steal(now time.Duration, key kvstore.Key) ([]byte, bool) {
	w.gc(now)
	pw, ok := w.queued[key]
	if !ok {
		return nil, false
	}
	delete(w.queued, key)
	for i, k := range w.order {
		if k == key {
			w.order = append(w.order[:i], w.order[i+1:]...)
			break
		}
	}
	w.steals++
	return pw.data, true
}

// WaitFor reports when an in-flight write of key completes; ok=false if no
// write is in flight. The paper: "If a write of a page is in-flight when the
// fault handler gets another fault for the same address, there is no other
// choice than to wait for the write to complete."
func (w *writeback) WaitFor(now time.Duration, key kvstore.Key) (time.Duration, bool) {
	done, ok := w.inflight[key]
	if !ok {
		return now, false
	}
	w.waits++
	if done < now {
		done = now
	}
	return done, true
}

// Queued reports whether key is on the write list awaiting flush.
func (w *writeback) Queued(key kvstore.Key) bool {
	_, ok := w.queued[key]
	return ok
}

// QueuedLen reports pages awaiting flush.
func (w *writeback) QueuedLen() int { return len(w.order) }

// Drain flushes everything and reports when the store is quiescent.
func (w *writeback) Drain(now time.Duration) (time.Duration, error) {
	if err := w.Flush(now); err != nil {
		return now, err
	}
	latest := now
	for _, done := range w.inflight {
		if done > latest {
			latest = done
		}
	}
	w.inflight = make(map[kvstore.Key]time.Duration)
	return latest, nil
}

// gc retires inflight records whose writes completed before now.
func (w *writeback) gc(now time.Duration) {
	for key, done := range w.inflight {
		if done <= now {
			delete(w.inflight, key)
		}
	}
}
