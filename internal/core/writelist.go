package core

import (
	"strconv"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/trace"
)

// pendingWrite is one evicted page awaiting its store write.
type pendingWrite struct {
	key  kvstore.Key
	addr uint64
	data []byte
	// seq is the global enqueue stamp; flushes gather across shards in seq
	// order so batches are identical to the single-list engine's.
	seq uint64
}

// writeback implements the coalescing asynchronous write-back engine (§V-B
// plus the zero-page optimisation): evicted pages accumulate on a write
// list; a flusher pushes batches to the store with one amortised multi-write
// per flush. The fault handler may *steal* a page back from the list (or
// wait on one already in flight) to shortcut the remote round trips.
//
// Three redundancies are removed before any byte hits the wire:
//
//   - Coalescing: a re-eviction of a key still queued replaces the pending
//     data in place (last version wins, original queue position kept), so a
//     hot page flushes once per batch no matter how often it bounces.
//   - Zero elision: an all-zero victim is recorded in the zero bitmap
//     instead of being queued; a re-fault restores it with UFFDIO_ZEROPAGE,
//     no store traffic in either direction. A stale store copy may remain —
//     the bitmap overrides it until fresh non-zero data supersedes the mark.
//   - Clean drop (decided by the monitor, see evictOne): a victim whose
//     store copy is still current is dropped without touching the engine.
//
// For the multi-worker pipeline the list is partitioned into per-shard
// queues (one lock domain per worker in a real monitor, so enqueues and
// steals from different workers never contend). The batching policy stays
// global: entries carry a global enqueue stamp, the flush threshold counts
// queued pages across all shards, and Flush gathers them in stamp order —
// so the MultiPut batches a store observes are bit-for-bit identical for
// any shard count. Every elision decision depends only on page contents and
// logical state, never on virtual time, so the batches stay identical for
// any worker count with elision on too.
//
// Ownership: Enqueue takes ownership of the caller's data buffer. When a
// buffer's bytes are no longer needed — replaced by a coalescing
// re-eviction, cancelled by a zero mark or discard, or safely copied by the
// store's MultiPut — the engine hands it to the recycle hook (if set) so
// the fault pipeline can reuse the frame. Steal transfers ownership back to
// the caller. pendingWrite structs and the flush batch/keys/pages scratch
// are pooled, so steady-state enqueue+flush allocates nothing.
type writeback struct {
	store     kvstore.Store
	batchSize int
	// tr receives flush/steal/wait events; nil disables tracing.
	tr *trace.Tracer
	// recycle, when non-nil, receives buffers the engine is done with.
	recycle func([]byte)

	// shards holds the per-worker queues of evicted pages not yet submitted.
	shards  []map[kvstore.Key]*pendingWrite
	idx     shardIndexer
	queued  int // total across shards
	nextSeq uint64

	// freePW pools retired pendingWrite structs; batchScratch, keyScratch
	// and pageScratch are the reusable flush buffers.
	freePW       []*pendingWrite
	batchScratch []*pendingWrite
	keyScratch   []kvstore.Key
	pageScratch  [][]byte

	// zero is the zero bitmap: keys whose latest evicted contents were all
	// zeroes and were therefore never written to the store. Membership is
	// authoritative over the store — re-faults consult it first.
	zero map[kvstore.Key]bool

	// inflight maps keys of submitted writes to their completion time. A
	// flush is one store-level MultiPut regardless of which shards fed it,
	// so completion tracking stays global.
	inflight map[kvstore.Key]time.Duration

	flushes      uint64
	flushedPages uint64
	steals       uint64
	waits        uint64
	coalesced    uint64
	zeroMarks    uint64
	// flushSizes histograms MultiPut batch sizes (batch size -> count).
	flushSizes map[int]uint64
}

// WritebackStats is the engine's counter snapshot (operator/bench surface).
type WritebackStats struct {
	// Flushes is MultiPut round trips; FlushedPages is pages they carried.
	Flushes, FlushedPages uint64
	// Steals and Waits are fault-path interactions with pending writes.
	Steals, Waits uint64
	// Coalesced counts re-evictions absorbed into a queued entry.
	Coalesced uint64
	// ZeroMarks counts zero-bitmap insertions (elided store writes).
	ZeroMarks uint64
	// ZeroBitmap is the current bitmap population.
	ZeroBitmap int
	// FlushSizes maps MultiPut batch size to occurrence count.
	FlushSizes map[int]uint64
}

func newWriteback(store kvstore.Store, batchSize int) *writeback {
	return newShardedWriteback(store, batchSize, 1, nil)
}

func newShardedWriteback(store kvstore.Store, batchSize, shards int, tr *trace.Tracer) *writeback {
	if batchSize <= 0 {
		batchSize = 32
	}
	if shards < 1 {
		shards = 1
	}
	// Queues hold at most ~batchSize entries between flushes, the inflight
	// table at most one flush's worth plus stragglers: pre-sizing both keeps
	// map growth off the steady-state fault path.
	w := &writeback{
		store:      store,
		batchSize:  batchSize,
		idx:        newShardIndexer(shards),
		tr:         tr,
		zero:       make(map[kvstore.Key]bool, batchSize),
		inflight:   make(map[kvstore.Key]time.Duration, 2*batchSize),
		flushSizes: make(map[int]uint64, 16),
	}
	for i := 0; i < shards; i++ {
		w.shards = append(w.shards, make(map[kvstore.Key]*pendingWrite, batchSize))
	}
	return w
}

// setRecycle installs the frame-recycling hook (nil disables recycling).
func (w *writeback) setRecycle(fn func([]byte)) { w.recycle = fn }

// release hands a buffer the engine no longer needs to the recycle hook.
func (w *writeback) release(buf []byte) {
	if w.recycle != nil && buf != nil {
		w.recycle(buf)
	}
}

// getPW pops a pooled pendingWrite or allocates one.
func (w *writeback) getPW() *pendingWrite {
	if n := len(w.freePW); n > 0 {
		pw := w.freePW[n-1]
		w.freePW = w.freePW[:n-1]
		return pw
	}
	return &pendingWrite{}
}

// putPW retires a pendingWrite struct (its data must already be handed off).
func (w *writeback) putPW(pw *pendingWrite) {
	*pw = pendingWrite{}
	w.freePW = append(w.freePW, pw)
}

// shardIndex maps a key to its queue's shard (the same formula as the
// monitor's workerOf, so a key's queue and its fault worker coincide).
func (w *writeback) shardIndex(key kvstore.Key) int {
	return w.idx.index(key.Page())
}

// shardOf maps a key to its queue.
func (w *writeback) shardOf(key kvstore.Key) map[kvstore.Key]*pendingWrite {
	return w.shards[w.shardIndex(key)]
}

// Enqueue adds an evicted page and flushes if the global batch threshold is
// reached. It returns the caller-visible completion time: enqueueing is off
// the critical path, so this is just now (flush I/O occupies the store's
// device asynchronously). Ownership of data transfers to the engine.
func (w *writeback) Enqueue(now time.Duration, key kvstore.Key, addr uint64, data []byte) (time.Duration, error) {
	w.gc(now)
	// Fresh data supersedes any zero marker for this key: once the write
	// flushes, the store copy is current again.
	delete(w.zero, key)
	shard := w.shardOf(key)
	if old, ok := shard[key]; ok {
		// Re-eviction of a page whose previous write never flushed: replace
		// the data in place, keeping the original queue position. The
		// superseded buffer goes back to the frame pool.
		w.release(old.data)
		old.data = data
		w.coalesced++
		return now, nil
	}
	w.nextSeq++
	pw := w.getPW()
	pw.key, pw.addr, pw.data, pw.seq = key, addr, data, w.nextSeq
	shard[key] = pw
	w.queued++
	if w.queued >= w.batchSize {
		return now, w.Flush(now)
	}
	return now, nil
}

// sortPendingBySeq orders a gathered batch by global enqueue stamp.
// Insertion sort: batches are small (≤ a few × batchSize) and this avoids
// the sort package's interface boxing on the hot flush path.
func sortPendingBySeq(batch []*pendingWrite) {
	for i := 1; i < len(batch); i++ {
		pw := batch[i]
		j := i - 1
		for j >= 0 && batch[j].seq > pw.seq {
			batch[j+1] = batch[j]
			j--
		}
		batch[j+1] = pw
	}
}

// Flush submits all queued writes, across every shard in global enqueue
// order, as one multi-write. The store's device model accounts the
// transfer; faults only wait on it via WaitFor.
func (w *writeback) Flush(now time.Duration) error {
	if w.queued == 0 {
		return nil
	}
	batch := w.batchScratch[:0]
	for _, shard := range w.shards {
		for _, pw := range shard {
			batch = append(batch, pw)
		}
	}
	w.batchScratch = batch
	sortPendingBySeq(batch)
	keys := w.keyScratch[:0]
	pages := w.pageScratch[:0]
	for _, pw := range batch {
		keys = append(keys, pw.key)
		pages = append(pages, pw.data)
	}
	w.keyScratch, w.pageScratch = keys, pages
	done, err := w.store.MultiPut(now, keys, pages)
	if err != nil {
		return err
	}
	if w.tr != nil {
		w.tr.Emit(trace.EvFlush, 0, 0, now, done-now, strconv.Itoa(len(batch)))
	}
	for _, pw := range batch {
		delete(w.shardOf(pw.key), pw.key)
		w.inflight[pw.key] = done
		// MultiPut copied the bytes (store ownership contract), so the
		// frames can return to the fault pipeline's pool.
		w.release(pw.data)
		w.putPW(pw)
	}
	w.queued = 0
	w.flushes++
	w.flushedPages += uint64(len(batch))
	w.flushSizes[len(batch)]++
	// Drop references so pooled buffers aren't pinned by the scratch.
	clearPending(w.batchScratch)
	clearPages(w.pageScratch)
	return nil
}

func clearPending(s []*pendingWrite) {
	for i := range s {
		s[i] = nil
	}
}

func clearPages(s [][]byte) {
	for i := range s {
		s[i] = nil
	}
}

// NoteZero records that key's latest evicted contents are all zeroes: any
// queued write for it is cancelled (its data is obsolete) and the key enters
// the zero bitmap, so the eviction costs no store traffic at all.
func (w *writeback) NoteZero(key kvstore.Key) {
	if shard := w.shardOf(key); shard[key] != nil {
		pw := shard[key]
		delete(shard, key)
		w.queued--
		w.release(pw.data)
		w.putPW(pw)
	}
	w.zero[key] = true
	w.zeroMarks++
}

// TakeZero consumes a zero-bitmap entry: true means the page's current
// contents are all zeroes and any store copy is stale — the fault must be
// resolved with UFFDIO_ZEROPAGE, not a store read. The mark is cleared
// because the page becomes resident again.
func (w *writeback) TakeZero(key kvstore.Key) bool {
	if !w.zero[key] {
		return false
	}
	delete(w.zero, key)
	return true
}

// HasZero reports zero-bitmap membership without consuming the mark (used by
// prefetch to skip keys whose store copy is stale).
func (w *writeback) HasZero(key kvstore.Key) bool { return w.zero[key] }

// DropZero discards a zero mark (page released entirely, e.g. Discard or VM
// teardown).
func (w *writeback) DropZero(key kvstore.Key) { delete(w.zero, key) }

// DiscardQueued cancels any pending (unflushed) write for key, returning
// whether one was queued. Used on page release so a dead page's bytes never
// hit the store.
func (w *writeback) DiscardQueued(key kvstore.Key) bool {
	shard := w.shardOf(key)
	pw := shard[key]
	if pw == nil {
		return false
	}
	delete(shard, key)
	w.queued--
	w.release(pw.data)
	w.putPW(pw)
	return true
}

// Snapshot returns the engine's counters. FlushSizes is a copy.
func (w *writeback) Snapshot() WritebackStats {
	sizes := make(map[int]uint64, len(w.flushSizes))
	for k, v := range w.flushSizes {
		sizes[k] = v
	}
	return WritebackStats{
		Flushes:      w.flushes,
		FlushedPages: w.flushedPages,
		Steals:       w.steals,
		Waits:        w.waits,
		Coalesced:    w.coalesced,
		ZeroMarks:    w.zeroMarks,
		ZeroBitmap:   len(w.zero),
		FlushSizes:   sizes,
	}
}

// Steal resolves a fault from the write list: if key is still queued, its
// data is returned and the write is cancelled (the page is going right back
// into the VM, so nothing needs storing). ok=false if the key is not queued.
// Ownership of the returned buffer transfers to the caller.
func (w *writeback) Steal(now time.Duration, key kvstore.Key) ([]byte, bool) {
	w.gc(now)
	shard := w.shardOf(key)
	pw, ok := shard[key]
	if !ok {
		return nil, false
	}
	delete(shard, key)
	w.queued--
	w.steals++
	w.tr.Emit(trace.EvSteal, w.shardIndex(key), key.Page(), now, 0, "")
	data := pw.data
	pw.data = nil
	w.putPW(pw)
	return data, true
}

// WaitFor reports when an in-flight write of key completes; ok=false if no
// write is in flight. The paper: "If a write of a page is in-flight when the
// fault handler gets another fault for the same address, there is no other
// choice than to wait for the write to complete."
func (w *writeback) WaitFor(now time.Duration, key kvstore.Key) (time.Duration, bool) {
	done, ok := w.inflight[key]
	if !ok {
		return now, false
	}
	w.waits++
	if done < now {
		done = now
	}
	w.tr.Emit(trace.EvWait, w.shardIndex(key), key.Page(), now, done-now, "")
	return done, true
}

// Queued reports whether key is on the write list awaiting flush.
func (w *writeback) Queued(key kvstore.Key) bool {
	_, ok := w.shardOf(key)[key]
	return ok
}

// QueuedLen reports pages awaiting flush across all shards.
func (w *writeback) QueuedLen() int { return w.queued }

// Drain flushes everything and reports when the store is quiescent.
func (w *writeback) Drain(now time.Duration) (time.Duration, error) {
	if err := w.Flush(now); err != nil {
		return now, err
	}
	latest := now
	for _, done := range w.inflight {
		if done > latest {
			latest = done
		}
	}
	w.inflight = make(map[kvstore.Key]time.Duration, 2*w.batchSize)
	return latest, nil
}

// gc retires inflight records whose writes completed before now.
func (w *writeback) gc(now time.Duration) {
	for key, done := range w.inflight {
		if done <= now {
			delete(w.inflight, key)
		}
	}
}
