package core

import (
	"sort"
	"time"

	"fluidmem/internal/kvstore"
)

// pendingWrite is one evicted page awaiting its store write.
type pendingWrite struct {
	key  kvstore.Key
	addr uint64
	data []byte
	// seq is the global enqueue stamp; flushes gather across shards in seq
	// order so batches are identical to the single-list engine's.
	seq uint64
}

// writeback implements the asynchronous writeback engine (§V-B): evicted
// pages accumulate on a write list; a flusher pushes batches to the store
// with multi-write. The fault handler may *steal* a page back from the list
// (or wait on one already in flight) to shortcut the remote round trips.
//
// For the multi-worker pipeline the list is partitioned into per-shard
// queues (one lock domain per worker in a real monitor, so enqueues and
// steals from different workers never contend). The batching policy stays
// global: entries carry a global enqueue stamp, the flush threshold counts
// queued pages across all shards, and Flush gathers them in stamp order —
// so the MultiPut batches a store observes are bit-for-bit identical for
// any shard count.
type writeback struct {
	store     kvstore.Store
	batchSize int

	// shards holds the per-worker queues of evicted pages not yet submitted.
	shards  []map[kvstore.Key]*pendingWrite
	queued  int // total across shards
	nextSeq uint64

	// inflight maps keys of submitted writes to their completion time. A
	// flush is one store-level MultiPut regardless of which shards fed it,
	// so completion tracking stays global.
	inflight map[kvstore.Key]time.Duration

	flushes uint64
	steals  uint64
	waits   uint64
}

func newWriteback(store kvstore.Store, batchSize int) *writeback {
	return newShardedWriteback(store, batchSize, 1)
}

func newShardedWriteback(store kvstore.Store, batchSize, shards int) *writeback {
	if batchSize <= 0 {
		batchSize = 32
	}
	if shards < 1 {
		shards = 1
	}
	w := &writeback{
		store:     store,
		batchSize: batchSize,
		inflight:  make(map[kvstore.Key]time.Duration),
	}
	for i := 0; i < shards; i++ {
		w.shards = append(w.shards, make(map[kvstore.Key]*pendingWrite))
	}
	return w
}

// shardOf maps a key to its queue.
func (w *writeback) shardOf(key kvstore.Key) map[kvstore.Key]*pendingWrite {
	return w.shards[(key.Page()/kvstore.PageSize)%uint64(len(w.shards))]
}

// Enqueue adds an evicted page and flushes if the global batch threshold is
// reached. It returns the caller-visible completion time: enqueueing is off
// the critical path, so this is just now (flush I/O occupies the store's
// device asynchronously).
func (w *writeback) Enqueue(now time.Duration, key kvstore.Key, addr uint64, data []byte) (time.Duration, error) {
	w.gc(now)
	shard := w.shardOf(key)
	if old, ok := shard[key]; ok {
		// Re-eviction of a page whose previous write never flushed: replace
		// the data in place, keeping the original queue position.
		old.data = data
		return now, nil
	}
	w.nextSeq++
	shard[key] = &pendingWrite{key: key, addr: addr, data: data, seq: w.nextSeq}
	w.queued++
	if w.queued >= w.batchSize {
		return now, w.Flush(now)
	}
	return now, nil
}

// Flush submits all queued writes, across every shard in global enqueue
// order, as one multi-write. The store's device model accounts the
// transfer; faults only wait on it via WaitFor.
func (w *writeback) Flush(now time.Duration) error {
	if w.queued == 0 {
		return nil
	}
	batch := make([]*pendingWrite, 0, w.queued)
	for _, shard := range w.shards {
		for _, pw := range shard {
			batch = append(batch, pw)
		}
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
	keys := make([]kvstore.Key, len(batch))
	pages := make([][]byte, len(batch))
	for i, pw := range batch {
		keys[i] = pw.key
		pages[i] = pw.data
	}
	done, err := w.store.MultiPut(now, keys, pages)
	if err != nil {
		return err
	}
	for _, pw := range batch {
		delete(w.shardOf(pw.key), pw.key)
		w.inflight[pw.key] = done
	}
	w.queued = 0
	w.flushes++
	return nil
}

// Steal resolves a fault from the write list: if key is still queued, its
// data is returned and the write is cancelled (the page is going right back
// into the VM, so nothing needs storing). ok=false if the key is not queued.
func (w *writeback) Steal(now time.Duration, key kvstore.Key) ([]byte, bool) {
	w.gc(now)
	shard := w.shardOf(key)
	pw, ok := shard[key]
	if !ok {
		return nil, false
	}
	delete(shard, key)
	w.queued--
	w.steals++
	return pw.data, true
}

// WaitFor reports when an in-flight write of key completes; ok=false if no
// write is in flight. The paper: "If a write of a page is in-flight when the
// fault handler gets another fault for the same address, there is no other
// choice than to wait for the write to complete."
func (w *writeback) WaitFor(now time.Duration, key kvstore.Key) (time.Duration, bool) {
	done, ok := w.inflight[key]
	if !ok {
		return now, false
	}
	w.waits++
	if done < now {
		done = now
	}
	return done, true
}

// Queued reports whether key is on the write list awaiting flush.
func (w *writeback) Queued(key kvstore.Key) bool {
	_, ok := w.shardOf(key)[key]
	return ok
}

// QueuedLen reports pages awaiting flush across all shards.
func (w *writeback) QueuedLen() int { return w.queued }

// Drain flushes everything and reports when the store is quiescent.
func (w *writeback) Drain(now time.Duration) (time.Duration, error) {
	if err := w.Flush(now); err != nil {
		return now, err
	}
	latest := now
	for _, done := range w.inflight {
		if done > latest {
			latest = done
		}
	}
	w.inflight = make(map[kvstore.Key]time.Duration)
	return latest, nil
}

// gc retires inflight records whose writes completed before now.
func (w *writeback) gc(now time.Duration) {
	for key, done := range w.inflight {
		if done <= now {
			delete(w.inflight, key)
		}
	}
}
