// Package resilience is the fault-handling policy layer between the
// FluidMem monitor and its key-value backend. The paper's central argument
// for user-space page-fault handling (§III) is that the memory datapath
// becomes customisable — replication, failover, and graceful degradation
// are provider policies rather than kernel patches. This package is that
// policy: it turns transient backend failures (the kind
// internal/kvstore/faulty injects) into bounded virtual-time stalls instead
// of VM-killing hard errors.
//
// The policy has four mechanisms, applied in order of escalation:
//
//  1. Bounded retry with exponential backoff and deterministic jitter —
//     transient errors (a dropped RPC) are usually gone on the next try.
//  2. A per-operation virtual-time deadline bounding how long the retry
//     loop may burn before escalating.
//  3. Failover — when the same backend keeps failing or limping, a store
//     that supports primary rotation (the replicated wrapper) is told to
//     prefer a different member.
//  4. Degraded mode — sustained failure (every replica down) stops being an
//     error and becomes stall time: the operation parks, probing at a slow
//     cadence until the backend heals or the stall budget is exhausted. The
//     guest experiences a long page fault, exactly what a real machine does
//     when its memory bus degrades, and the health signal tells the
//     provider why.
//
// All timing decisions run on the virtual clock with a seeded PRNG, so a
// chaos schedule plus a seed reproduces the identical retry/failover/stall
// trace on every run.
package resilience

import (
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/stats"
	"fluidmem/internal/trace"
)

// ErrStallBudgetExhausted reports an outage that outlived the policy's
// MaxStall: the backend never healed while the operation was parked. This is
// the only hard error the layer emits for a transient-class failure.
var ErrStallBudgetExhausted = errors.New("resilience: backend outage outlived the stall budget")

// HealthState is the coarse backend health signal.
type HealthState int

// Health states.
const (
	// Healthy means recent operations completed within policy.
	Healthy HealthState = iota
	// Degraded means the layer is currently masking sustained failure as
	// stall time (or the last operation had to).
	Degraded
)

func (h HealthState) String() string {
	if h == Degraded {
		return "degraded"
	}
	return "healthy"
}

// Health is the exported health signal.
type Health struct {
	// State is the coarse signal.
	State HealthState
	// ConsecutiveFailures counts back-to-back failed attempts (across
	// operations) since the last success.
	ConsecutiveFailures int
	// StallTime is total virtual time spent parked in degraded mode.
	StallTime time.Duration
	// LastError is the most recent backend error observed (nil if none).
	LastError error
}

// Policy parametrises the layer.
type Policy struct {
	// MaxRetries bounds attempts per operation before the deadline check
	// escalates to degraded mode (the first attempt is not a retry).
	MaxRetries int
	// RetryBase is the first backoff delay; each retry doubles it up to
	// RetryMax. Jitter of up to 50% of the delay is added, drawn from the
	// layer's seeded PRNG (deterministic).
	RetryBase time.Duration
	// RetryMax caps the exponential backoff.
	RetryMax time.Duration
	// OpDeadline is the per-operation virtual-time budget for the retry
	// loop. Once now + OpDeadline passes, the operation escalates to
	// degraded mode rather than retrying hot.
	OpDeadline time.Duration
	// FailoverAfter is the consecutive-failure count that triggers a
	// primary rotation on stores that support it. 0 disables failover.
	FailoverAfter int
	// SlowOpThreshold, when > 0, marks a successful operation slower than
	// this as a "slow op"; FailoverAfter consecutive slow ops also rotate
	// the primary — the gray-replica escape hatch, since a limping member
	// never trips the error path.
	SlowOpThreshold time.Duration
	// DegradedProbe is the probe cadence while parked in degraded mode.
	DegradedProbe time.Duration
	// MaxStall bounds total parked time per operation; beyond it the
	// operation fails hard with ErrStallBudgetExhausted.
	MaxStall time.Duration
}

// DefaultPolicy returns a policy tuned for the simulated backends: retries
// resolve dropped RPCs in tens of microseconds, the deadline is an order of
// magnitude above a healthy remote fault, and the stall budget rides out
// multi-millisecond crash windows.
func DefaultPolicy() Policy {
	return Policy{
		MaxRetries:      4,
		RetryBase:       5 * time.Microsecond,
		RetryMax:        160 * time.Microsecond,
		OpDeadline:      400 * time.Microsecond,
		FailoverAfter:   3,
		SlowOpThreshold: 300 * time.Microsecond,
		DegradedProbe:   250 * time.Microsecond,
		MaxStall:        100 * time.Millisecond,
	}
}

// validate fills zero fields with defaults so a partially specified policy
// behaves sanely.
func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxRetries == 0 {
		p.MaxRetries = d.MaxRetries
	}
	if p.RetryBase == 0 {
		p.RetryBase = d.RetryBase
	}
	if p.RetryMax == 0 {
		p.RetryMax = d.RetryMax
	}
	if p.OpDeadline == 0 {
		p.OpDeadline = d.OpDeadline
	}
	if p.DegradedProbe == 0 {
		p.DegradedProbe = d.DegradedProbe
	}
	if p.MaxStall == 0 {
		p.MaxStall = d.MaxStall
	}
	return p
}

// primaryRotator is the failover hook: the replicated store implements it.
type primaryRotator interface {
	RotatePrimary() int
}

// Stats counts the layer's interventions.
type Stats struct {
	// Ops is operations entering the layer.
	Ops uint64
	// Retries is failed attempts that were retried.
	Retries uint64
	// BackoffTime is summed backoff delay.
	BackoffTime time.Duration
	// Failovers is primary rotations requested.
	Failovers uint64
	// SlowOps is successful operations over SlowOpThreshold.
	SlowOps uint64
	// DeadlineExceeded is operations whose retry budget ran out.
	DeadlineExceeded uint64
	// DegradedEntries / DegradedExits count transitions into and out of
	// degraded mode.
	DegradedEntries uint64
	DegradedExits   uint64
	// StallTime is summed virtual time parked in degraded mode.
	StallTime time.Duration
	// StallExhausted is operations that failed hard after MaxStall.
	StallExhausted uint64
	// PermanentErrors is non-retryable errors passed through (ErrNotFound,
	// ErrBadValue).
	PermanentErrors uint64
}

// Counters renders the stats as a named-counter set for uniform export.
func (s Stats) Counters() *stats.Counters {
	c := stats.NewCounters()
	c.Set("ops", s.Ops)
	c.Set("retries", s.Retries)
	c.Set("failovers", s.Failovers)
	c.Set("slow_ops", s.SlowOps)
	c.Set("deadline_exceeded", s.DeadlineExceeded)
	c.Set("degraded_entries", s.DegradedEntries)
	c.Set("degraded_exits", s.DegradedExits)
	c.Set("stall_exhausted", s.StallExhausted)
	c.Set("permanent_errors", s.PermanentErrors)
	c.Set("stall_us", uint64(s.StallTime/time.Microsecond))
	c.Set("backoff_us", uint64(s.BackoffTime/time.Microsecond))
	return c
}

// Store is the resilient wrapper. It implements kvstore.Store, so the
// monitor's fault path, writeback engine, and teardown deletes all route
// through the policy transparently.
type Store struct {
	inner  kvstore.Store
	policy Policy
	rng    *clock.Rand
	// tr receives retry/failover/degraded events. These are all declared
	// timing-dependent in the trace taxonomy: whether a retry happens can
	// depend on virtual-time interleaving, so they are excluded from the
	// cross-worker logical digest.
	tr *trace.Tracer

	state       HealthState
	consecFails int
	consecSlow  int
	lastErr     error
	stallTotal  time.Duration
	stats       Stats
}

var _ kvstore.Store = (*Store)(nil)

// Wrap decorates inner with the policy. Zero policy fields take defaults.
func Wrap(inner kvstore.Store, policy Policy, seed uint64) *Store {
	return &Store{inner: inner, policy: policy.withDefaults(), rng: clock.NewRand(seed)}
}

// SetTracer routes the layer's interventions (retries, failovers, degraded
// stalls) to tr; nil disables emission.
func (s *Store) SetTracer(tr *trace.Tracer) { s.tr = tr }

// Name implements kvstore.Store.
func (s *Store) Name() string { return "resilient(" + s.inner.Name() + ")" }

// Inner exposes the wrapped store.
func (s *Store) Inner() kvstore.Store { return s.inner }

// Policy reports the effective (default-filled) policy.
func (s *Store) Policy() Policy { return s.policy }

// ResilienceStats reports the intervention counters.
func (s *Store) ResilienceStats() Stats { return s.stats }

// Health reports the current backend health signal.
func (s *Store) Health() Health {
	return Health{
		State:               s.state,
		ConsecutiveFailures: s.consecFails,
		StallTime:           s.stallTotal,
		LastError:           s.lastErr,
	}
}

// permanent reports errors no retry can fix: the key genuinely absent, or
// the caller's value malformed.
func permanent(err error) bool {
	return errors.Is(err, kvstore.ErrNotFound) || errors.Is(err, kvstore.ErrBadValue)
}

// backoff returns the next delay: base·2^retry capped at RetryMax, plus up
// to 50% deterministic jitter so retries from many faults decorrelate.
func (s *Store) backoff(retry int) time.Duration {
	d := s.policy.RetryBase << uint(retry)
	if d > s.policy.RetryMax || d <= 0 {
		d = s.policy.RetryMax
	}
	return d + time.Duration(s.rng.Float64()*0.5*float64(d))
}

// noteFailure updates failure tracking and fires failover when due. at is
// the virtual time of the failed attempt's completion (trace timestamping
// only).
func (s *Store) noteFailure(at time.Duration, err error) {
	s.consecFails++
	s.consecSlow = 0
	s.lastErr = err
	if s.policy.FailoverAfter > 0 && s.consecFails%s.policy.FailoverAfter == 0 {
		if r, ok := s.inner.(primaryRotator); ok {
			r.RotatePrimary()
			s.stats.Failovers++
			s.tr.Emit(trace.EvFailover, 0, 0, at, 0, "errors")
		}
	}
}

// noteSuccess updates health tracking after a completed operation. at is
// the operation's completion time (trace timestamping only).
func (s *Store) noteSuccess(at, elapsed time.Duration) {
	s.consecFails = 0
	s.lastErr = nil
	if s.state == Degraded {
		s.state = Healthy
		s.stats.DegradedExits++
	}
	if s.policy.SlowOpThreshold > 0 && elapsed > s.policy.SlowOpThreshold {
		s.stats.SlowOps++
		s.consecSlow++
		if s.policy.FailoverAfter > 0 && s.consecSlow >= s.policy.FailoverAfter {
			if r, ok := s.inner.(primaryRotator); ok {
				r.RotatePrimary()
				s.stats.Failovers++
				s.tr.Emit(trace.EvFailover, 0, 0, at, 0, "slow")
			}
			s.consecSlow = 0
		}
	} else {
		s.consecSlow = 0
	}
}

// resume runs the policy loop after a first attempt already failed at done
// with err. The first attempt is made inline by each operation (no closure,
// so the healthy fast path allocates nothing); only failures pay for the
// op closure that the retry/park machinery needs. now is the operation's
// original issue time (deadline and elapsed-time anchor).
func (s *Store) resume(now, done time.Duration, err error, op func(t time.Duration) (time.Duration, error)) (time.Duration, error) {
	deadline := now + s.policy.OpDeadline
	retries := 0
	for {
		if permanent(err) {
			// Not a backend failure; the answer is simply "no".
			s.stats.PermanentErrors++
			return done, err
		}
		s.noteFailure(done, err)
		if retries >= s.policy.MaxRetries || done >= deadline {
			s.stats.DeadlineExceeded++
			return s.park(now, done, op)
		}
		delay := s.backoff(retries)
		s.stats.Retries++
		s.stats.BackoffTime += delay
		s.tr.Emit(trace.EvRetry, 0, 0, done, delay, "")
		retries++
		done, err = op(done + delay)
		if err == nil {
			s.noteSuccess(done, done-now)
			return done, nil
		}
	}
}

// park is degraded mode: the retry budget is spent, so the operation stops
// burning attempts and waits, probing at DegradedProbe cadence until the
// backend heals or MaxStall is exhausted. The caller experiences the wait
// as stall time on the virtual clock — a long fault, not an error.
func (s *Store) park(opStart, now time.Duration, op func(t time.Duration) (time.Duration, error)) (time.Duration, error) {
	if s.state != Degraded {
		s.state = Degraded
		s.stats.DegradedEntries++
		s.tr.Emit(trace.EvDegraded, 0, 0, now, 0, "")
	}
	stallStart := now
	budget := opStart + s.policy.MaxStall
	t := now
	for {
		t += s.policy.DegradedProbe
		if t > budget {
			stalled := t - stallStart
			s.stats.StallTime += stalled
			s.stallTotal += stalled
			s.stats.StallExhausted++
			return t, fmt.Errorf("%w: %v (last: %v)", ErrStallBudgetExhausted, s.policy.MaxStall, s.lastErr)
		}
		done, err := op(t)
		if err == nil {
			stalled := done - stallStart
			s.stats.StallTime += stalled
			s.stallTotal += stalled
			s.noteSuccess(done, done-opStart)
			return done, nil
		}
		if permanent(err) {
			stalled := done - stallStart
			s.stats.StallTime += stalled
			s.stallTotal += stalled
			s.stats.PermanentErrors++
			return done, err
		}
		s.noteFailure(done, err)
		t = done
	}
}

// Put implements kvstore.Store. The first attempt is inline: a healthy
// backend never pays for the retry machinery (no closure allocation).
func (s *Store) Put(now time.Duration, key kvstore.Key, page []byte) (time.Duration, error) {
	s.stats.Ops++
	done, err := s.inner.Put(now, key, page)
	if err == nil {
		s.noteSuccess(done, done-now)
		return done, nil
	}
	return s.resume(now, done, err, func(t time.Duration) (time.Duration, error) {
		return s.inner.Put(t, key, page)
	})
}

// MultiPut implements kvstore.Store.
func (s *Store) MultiPut(now time.Duration, keys []kvstore.Key, pages [][]byte) (time.Duration, error) {
	s.stats.Ops++
	done, err := s.inner.MultiPut(now, keys, pages)
	if err == nil {
		s.noteSuccess(done, done-now)
		return done, nil
	}
	return s.resume(now, done, err, func(t time.Duration) (time.Duration, error) {
		return s.inner.MultiPut(t, keys, pages)
	})
}

// Get implements kvstore.Store.
func (s *Store) Get(now time.Duration, key kvstore.Key) ([]byte, time.Duration, error) {
	s.stats.Ops++
	data, done, err := s.inner.Get(now, key)
	if err == nil {
		s.noteSuccess(done, done-now)
		return data, done, nil
	}
	done, err = s.resume(now, done, err, func(t time.Duration) (time.Duration, error) {
		var d time.Duration
		var e error
		data, d, e = s.inner.Get(t, key)
		return d, e
	})
	if err != nil {
		return nil, done, err
	}
	return data, done, nil
}

// MultiGet implements kvstore.Store. A batch read retries, fails over, and
// parks as one unit: per-key misses are nil entries (not errors), so only
// store-level failures enter the policy loop.
func (s *Store) MultiGet(now time.Duration, keys []kvstore.Key) ([][]byte, time.Duration, error) {
	s.stats.Ops++
	pages, done, err := s.inner.MultiGet(now, keys)
	if err == nil {
		s.noteSuccess(done, done-now)
		return pages, done, nil
	}
	done, err = s.resume(now, done, err, func(t time.Duration) (time.Duration, error) {
		var d time.Duration
		var e error
		pages, d, e = s.inner.MultiGet(t, keys)
		return d, e
	})
	if err != nil {
		return nil, done, err
	}
	return pages, done, nil
}

// StartGet implements kvstore.Store. The clean path keeps the inner store's
// true split read (the §V-B overlap). A failed top half falls back to the
// synchronous resilient Get, whose completion time becomes the ReadyAt the
// bottom half waits on — so retries, failover, and degraded stalls are all
// charged into the fault's wait window.
func (s *Store) StartGet(now time.Duration, key kvstore.Key) kvstore.PendingGet {
	p := s.inner.StartGet(now, key)
	if p.Err == nil {
		s.stats.Ops++
		s.noteSuccess(p.ReadyAt, p.ReadyAt-now)
		return p
	}
	if permanent(p.Err) {
		s.stats.Ops++
		s.stats.PermanentErrors++
		return p
	}
	s.noteFailure(p.ReadyAt, p.Err)
	data, done, err := s.Get(p.ReadyAt, key)
	return kvstore.PendingGet{Key: key, Data: data, ReadyAt: done, Err: err}
}

// Delete implements kvstore.Store.
func (s *Store) Delete(now time.Duration, key kvstore.Key) (time.Duration, error) {
	s.stats.Ops++
	done, err := s.inner.Delete(now, key)
	if err == nil {
		s.noteSuccess(done, done-now)
		return done, nil
	}
	return s.resume(now, done, err, func(t time.Duration) (time.Duration, error) {
		return s.inner.Delete(t, key)
	})
}

// Stats implements kvstore.Store, passing through the inner counters.
func (s *Store) Stats() kvstore.Stats { return s.inner.Stats() }

// Local passes through the inner store's locality.
func (s *Store) Local() bool {
	if l, ok := s.inner.(kvstore.Local); ok {
		return l.Local()
	}
	return false
}
