package resilience_test

// End-to-end chaos tests: the full FluidMem monitor over a 3-way replicated
// store whose members crash on schedule and drop 1% of requests, per the
// acceptance criteria — zero lost or corrupted pages, no hard error for any
// fault a healthy replica could serve, bounded tail latency, and bit-for-bit
// repeatability from the seed.

import (
	"fmt"
	"testing"
	"time"

	"fluidmem/internal/core"
	"fluidmem/internal/core/resilience"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/faulty"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/kvstore/replicated"
	"fluidmem/internal/stats"
	"fluidmem/internal/workload/ycsb"
)

const chaosBase = 0x7f00_0000_0000

// chaosRig is the assembled stack: faulty(ramcloud)×3 → replicated →
// resilience (inside the monitor).
type chaosRig struct {
	mon     *core.Monitor
	rep     *replicated.Store
	members []*faulty.Store
}

// newChaosRig builds the stack. Each member sees 1% transient errors and 1%
// latency spikes on every op, plus a staggered 2 ms crash window (at least
// two replicas up) AND a shared 1 ms total blackout — the only fault class
// replication alone cannot mask, so it must surface as degraded-mode stall
// inside the resilience layer, never as a monitor error.
func newChaosRig(t *testing.T, seed uint64, pages, workers int) *chaosRig {
	t.Helper()
	var members []*faulty.Store
	var asStores []kvstore.Store
	for i := 0; i < 3; i++ {
		p := faulty.Uniform(0.01, 0.01)
		from := time.Duration(1+3*i) * time.Millisecond
		p.Crashes = []faulty.Window{
			{From: from, To: from + 2*time.Millisecond},
			{From: 12 * time.Millisecond, To: 13 * time.Millisecond},
		}
		f := faulty.Wrap(ramcloud.New(ramcloud.DefaultParams(), seed+uint64(i)), p, seed+100+uint64(i))
		members = append(members, f)
		asStores = append(asStores, f)
	}
	rep, err := replicated.New(asStores...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(rep, 8)
	cfg.Seed = seed
	cfg.Workers = workers
	policy := resilience.DefaultPolicy()
	cfg.Resilience = &policy
	mon, err := core.NewMonitor(cfg, nil, "chaos-hyp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.RegisterRange(chaosBase, uint64(pages)*kvstore.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	return &chaosRig{mon: mon, rep: rep, members: members}
}

// chaosOutcome captures everything two same-seed runs must agree on.
type chaosOutcome struct {
	finalTime time.Duration
	faults    uint64
	injected  [3][]faulty.Injection
	counters  *stats.Counters
}

// runChaosWorkload drives a zipfian read/write mix across the crash
// schedule, verifying every page's content on every read. It fails the test
// on any hard fault error — by construction some replica can always serve.
// With requireFaults the run also asserts the chaos actually intersected the
// workload (injections fired, retries and a degraded transit happened);
// whether it does is seed-dependent, so runs used only as a determinism
// discriminator pass false.
func runChaosWorkload(t *testing.T, seed uint64, requireFaults bool, workers int) chaosOutcome {
	t.Helper()
	const pages = 64
	const ops = 4000
	rig := newChaosRig(t, seed, pages, workers)

	lat := stats.NewSample(ops)
	rig.mon.SetFaultLatencySink(lat.Add)

	// Flat-ish zipfian over 8× the LRU capacity keeps the remote-read rate
	// high enough that the 1% injection rates fire hundreds of times.
	zipf, err := ycsb.NewZipfian(pages, 0.6, seed+7)
	if err != nil {
		t.Fatal(err)
	}
	tags := make(map[int]byte)
	now := time.Duration(0)
	for i := 0; i < ops; i++ {
		page := zipf.Next()
		if i%4 == 3 {
			// A sequential scan rides along: pure zipfian traffic is served
			// almost entirely by the LRU and the steal path, never reaching
			// the store; scans force real evictions and remote reads.
			page = i % pages
		}
		write := i%3 == 0 // 2:1 read:write mix, YCSB-A-flavoured
		addr := chaosBase + uint64(page)*kvstore.PageSize
		data, done, err := rig.mon.Touch(now, addr, write)
		if err != nil {
			t.Fatalf("op %d (page %d at %v): monitor surfaced a hard error: %v", i, page, now, err)
		}
		if tag, seen := tags[page]; seen && data[0] != tag {
			t.Fatalf("op %d: page %d corrupted: got tag %d want %d", i, page, data[0], tag)
		}
		if write {
			tag := byte(i%250 + 1)
			data[0] = tag
			tags[page] = tag
		}
		now = done + 2*time.Microsecond // think time keeps ops inside windows
	}
	// Flush and verify every page end-state after the last crash window.
	done, err := rig.mon.Drain(now)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	now = done
	for page := 0; page < pages; page++ {
		tag, seen := tags[page]
		if !seen {
			continue
		}
		data, done, err := rig.mon.Touch(now, chaosBase+uint64(page)*kvstore.PageSize, false)
		if err != nil {
			t.Fatalf("final read of page %d: %v", page, err)
		}
		if data[0] != tag {
			t.Fatalf("page %d lost/corrupted at end: got %d want %d", page, data[0], tag)
		}
		now = done
	}

	rst, ok := rig.mon.ResilienceStats()
	if !ok {
		t.Fatal("monitor not reporting resilience stats")
	}
	if rst.StallExhausted != 0 {
		t.Fatalf("%d ops exhausted the stall budget in a survivable schedule", rst.StallExhausted)
	}
	if requireFaults {
		// The chaos must actually have fired, or the test is vacuous.
		var inj faulty.InjectStats
		for _, m := range rig.members {
			s := m.InjectStats()
			inj.TransientErrors += s.TransientErrors
			inj.CrashRejects += s.CrashRejects
			inj.Spikes += s.Spikes
		}
		if inj.TransientErrors == 0 {
			t.Fatal("no transient errors injected")
		}
		if inj.CrashRejects == 0 {
			t.Fatal("no crash windows hit")
		}
		if rst.Retries == 0 {
			t.Fatal("resilience layer never retried despite injected errors")
		}
		if rst.DegradedEntries == 0 || rst.DegradedExits != rst.DegradedEntries {
			t.Fatalf("blackout did not transit degraded mode cleanly: %+v", rst)
		}
		if h, ok := rig.mon.StoreHealth(); !ok || h.State != resilience.Healthy {
			t.Fatalf("health did not recover after the chaos schedule: %+v", h)
		}
	}

	// Bounded tail: p99 within the policy's worst-case masked latency. With
	// a 400µs op deadline plus degraded probing this stays well under 5ms
	// unless masking is broken.
	if p99 := lat.Percentile(99); p99 > 5*time.Millisecond {
		t.Fatalf("p99 fault latency %v, want bounded under chaos", p99)
	}

	out := chaosOutcome{finalTime: now, faults: uint64(lat.Len()), counters: stats.NewCounters()}
	out.counters.Merge(rig.mon.ResilienceCounters())
	for i, m := range rig.members {
		out.injected[i] = m.Log()
		c := m.InjectStats().Counters()
		for _, name := range c.Names() {
			out.counters.Set(fmt.Sprintf("m%d_%s", i, name), c.Get(name))
		}
	}
	return out
}

func TestChaosWorkloadNoLostPages(t *testing.T) {
	runChaosWorkload(t, 1, true, 1)
}

// assertChaosBitwiseEqual asserts two runs agree on everything the
// determinism contract covers: virtual timings, fault counts, the full
// per-member injection logs, and every resilience/injection counter.
func assertChaosBitwiseEqual(t *testing.T, a, b chaosOutcome) {
	t.Helper()
	if a.finalTime != b.finalTime {
		t.Fatalf("final virtual time diverged: %v vs %v", a.finalTime, b.finalTime)
	}
	if a.faults != b.faults {
		t.Fatalf("fault counts diverged: %d vs %d", a.faults, b.faults)
	}
	if !a.counters.Equal(b.counters) {
		t.Fatalf("counter sets diverged:\n%s\nvs\n%s", a.counters.Render(), b.counters.Render())
	}
	for i := range a.injected {
		if len(a.injected[i]) != len(b.injected[i]) {
			t.Fatalf("member %d injection logs diverged in length: %d vs %d", i, len(a.injected[i]), len(b.injected[i]))
		}
		for j := range a.injected[i] {
			if a.injected[i][j] != b.injected[i][j] {
				t.Fatalf("member %d injection %d diverged: %v vs %v", i, j, a.injected[i][j], b.injected[i][j])
			}
		}
	}
}

func TestChaosRepeatability(t *testing.T) {
	// Same seed ⇒ identical fault sequence and identical virtual-time
	// results, the determinism property the whole injection design carries.
	a := runChaosWorkload(t, 42, true, 1)
	b := runChaosWorkload(t, 42, true, 1)
	assertChaosBitwiseEqual(t, a, b)
	// Different seed ⇒ a different fault schedule (sanity check that the
	// repeatability assertion can actually discriminate).
	c := runChaosWorkload(t, 43, false, 1)
	if c.counters.Equal(a.counters) && c.finalTime == a.finalTime {
		t.Fatal("different seeds produced identical runs; determinism test is vacuous")
	}
}

// TestChaosRepeatabilityWorkerSweep extends the determinism contract to the
// multi-worker pipeline: for workers ∈ {1, 2, 8} × three seeds, two runs of
// the same (seed, workers) pair must be bitwise stable — same virtual
// timings and identical injection logs — even though different worker counts
// time-shift every store op relative to the chaos windows.
func TestChaosRepeatabilityWorkerSweep(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for seed := uint64(1); seed <= 3; seed++ {
			workers, seed := workers, seed
			t.Run(fmt.Sprintf("w%d_seed%d", workers, seed), func(t *testing.T) {
				a := runChaosWorkload(t, seed, false, workers)
				b := runChaosWorkload(t, seed, false, workers)
				assertChaosBitwiseEqual(t, a, b)
			})
		}
	}
}

func TestChaosTeardownBestEffort(t *testing.T) {
	// UnregisterVM during a full outage must still tear down local state:
	// deletes are best-effort, the partition is released, and only the first
	// error surfaces.
	rig := newChaosRig(t, 9, 16, 2)
	now := time.Duration(0)
	for i := 0; i < 16; i++ {
		_, done, err := rig.mon.Touch(now, chaosBase+uint64(i)*kvstore.PageSize, true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if _, err := rig.mon.Drain(now); err != nil {
		t.Fatal(err)
	}
	// Crash everything via the replication layer's own switch, so even
	// failover cannot serve deletes.
	for i := 0; i < 3; i++ {
		rig.rep.Fail(i)
	}
	done, err := rig.mon.UnregisterVM(20*time.Millisecond, 1)
	if err == nil {
		t.Fatal("teardown under total outage should surface the delete failure")
	}
	if done < 20*time.Millisecond {
		t.Fatalf("teardown completed at %v, before it started", done)
	}
	// The VM is gone regardless: re-registering its pid succeeds.
	if _, err := rig.mon.RegisterRange(chaosBase, 16*kvstore.PageSize, 1); err != nil {
		t.Fatalf("pid not released by best-effort teardown: %v", err)
	}
}
