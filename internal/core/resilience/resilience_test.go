package resilience

import (
	"errors"
	"testing"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/storetest"
)

var errTransient = errors.New("fake: transient backend failure")

// fakeStore is a scriptable backend: it fails its first `fails` calls (or
// every call before virtual time healAt) with err, then succeeds.
type fakeStore struct {
	fails   int
	healAt  time.Duration
	err     error
	latency time.Duration

	calls     int
	rotations int
	data      map[kvstore.Key][]byte
}

func newFake(fails int) *fakeStore {
	return &fakeStore{fails: fails, err: errTransient, latency: 5 * time.Microsecond, data: map[kvstore.Key][]byte{}}
}

func (f *fakeStore) attempt(t time.Duration) (time.Duration, error) {
	f.calls++
	done := t + f.latency
	if f.healAt > 0 {
		if t < f.healAt {
			return done, f.err
		}
		return done, nil
	}
	if f.calls <= f.fails {
		return done, f.err
	}
	return done, nil
}

func (f *fakeStore) Name() string { return "fake" }

func (f *fakeStore) Put(now time.Duration, key kvstore.Key, page []byte) (time.Duration, error) {
	done, err := f.attempt(now)
	if err != nil {
		return done, err
	}
	f.data[key] = append([]byte(nil), page...)
	return done, nil
}

func (f *fakeStore) MultiPut(now time.Duration, keys []kvstore.Key, pages [][]byte) (time.Duration, error) {
	done, err := f.attempt(now)
	if err != nil {
		return done, err
	}
	for i, k := range keys {
		f.data[k] = append([]byte(nil), pages[i]...)
	}
	return done, nil
}

func (f *fakeStore) Get(now time.Duration, key kvstore.Key) ([]byte, time.Duration, error) {
	done, err := f.attempt(now)
	if err != nil {
		return nil, done, err
	}
	p, ok := f.data[key]
	if !ok {
		return nil, done, kvstore.ErrNotFound
	}
	return p, done, nil
}

func (f *fakeStore) MultiGet(now time.Duration, keys []kvstore.Key) ([][]byte, time.Duration, error) {
	done, err := f.attempt(now)
	if err != nil {
		return nil, done, err
	}
	pages := make([][]byte, len(keys))
	for i, k := range keys {
		if p, ok := f.data[k]; ok {
			pages[i] = p
		}
	}
	return pages, done, nil
}

func (f *fakeStore) StartGet(now time.Duration, key kvstore.Key) kvstore.PendingGet {
	data, done, err := f.Get(now, key)
	return kvstore.PendingGet{Key: key, Data: data, ReadyAt: done, Err: err}
}

func (f *fakeStore) Delete(now time.Duration, key kvstore.Key) (time.Duration, error) {
	done, err := f.attempt(now)
	if err != nil {
		return done, err
	}
	delete(f.data, key)
	return done, nil
}

func (f *fakeStore) Stats() kvstore.Stats { return kvstore.Stats{} }

// RotatePrimary satisfies the layer's failover hook.
func (f *fakeStore) RotatePrimary() int { f.rotations++; return f.rotations }

func testPolicy() Policy {
	return Policy{
		MaxRetries:    4,
		RetryBase:     time.Microsecond,
		RetryMax:      8 * time.Microsecond,
		OpDeadline:    400 * time.Microsecond,
		FailoverAfter: 2,
		DegradedProbe: 20 * time.Microsecond,
		MaxStall:      10 * time.Millisecond,
	}
}

func TestConformancePassthrough(t *testing.T) {
	// Over a healthy backend the layer must be invisible: full contract holds.
	storetest.Run(t, func() kvstore.Store {
		return Wrap(dram.New(dram.DefaultParams(), 1), DefaultPolicy(), 1)
	})
}

func TestRetryThenSuccess(t *testing.T) {
	f := newFake(2)
	s := Wrap(f, testPolicy(), 1)
	key := kvstore.MakeKey(0x1000, 1)
	done, err := s.Put(0, key, storetest.Page(1))
	if err != nil {
		t.Fatalf("put through 2 transient failures: %v", err)
	}
	if f.calls != 3 {
		t.Fatalf("calls = %d, want 3 (2 failures + success)", f.calls)
	}
	st := s.ResilienceStats()
	if st.Retries != 2 || st.BackoffTime <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Completion must include the failed attempts' latency plus backoff.
	if done <= 3*f.latency {
		t.Fatalf("done = %v, backoff not charged", done)
	}
	if h := s.Health(); h.State != Healthy || h.ConsecutiveFailures != 0 {
		t.Fatalf("health after success = %+v", h)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	f := newFake(0)
	s := Wrap(f, testPolicy(), 1)
	if _, _, err := s.Get(0, kvstore.MakeKey(0x9999000, 1)); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if f.calls != 1 {
		t.Fatalf("ErrNotFound was retried: %d calls", f.calls)
	}
	if st := s.ResilienceStats(); st.PermanentErrors != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBackoffDeterministic(t *testing.T) {
	run := func(seed uint64) time.Duration {
		f := newFake(3)
		s := Wrap(f, testPolicy(), seed)
		done, err := s.Put(0, kvstore.MakeKey(0x1000, 1), storetest.Page(1))
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	if a, b := run(42), run(42); a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestParkUntilHeal(t *testing.T) {
	f := newFake(0)
	f.healAt = 500 * time.Microsecond
	f.err = errTransient
	p := testPolicy()
	p.MaxRetries = 2
	p.OpDeadline = 50 * time.Microsecond
	s := Wrap(f, p, 1)
	key := kvstore.MakeKey(0x2000, 1)
	done, err := s.Put(0, key, storetest.Page(2))
	if err != nil {
		t.Fatalf("outage within stall budget must not error: %v", err)
	}
	if done < f.healAt {
		t.Fatalf("done = %v, before the backend healed at %v", done, f.healAt)
	}
	st := s.ResilienceStats()
	if st.DegradedEntries != 1 || st.DegradedExits != 1 {
		t.Fatalf("degraded transitions = %d in / %d out", st.DegradedEntries, st.DegradedExits)
	}
	if st.StallTime <= 0 {
		t.Fatal("no stall time recorded for a parked op")
	}
	if h := s.Health(); h.State != Healthy || h.StallTime != st.StallTime {
		t.Fatalf("health after heal = %+v", h)
	}
}

func TestStallBudgetExhausted(t *testing.T) {
	f := newFake(1 << 30) // never heals
	p := testPolicy()
	p.MaxStall = 200 * time.Microsecond
	s := Wrap(f, p, 1)
	_, err := s.Put(0, kvstore.MakeKey(0x3000, 1), storetest.Page(3))
	if !errors.Is(err, ErrStallBudgetExhausted) {
		t.Fatalf("err = %v, want ErrStallBudgetExhausted", err)
	}
	st := s.ResilienceStats()
	if st.StallExhausted != 1 {
		t.Fatalf("StallExhausted = %d", st.StallExhausted)
	}
	if h := s.Health(); h.State != Degraded || h.LastError == nil {
		t.Fatalf("health after exhausted stall = %+v", h)
	}
}

func TestFailoverOnConsecutiveFailures(t *testing.T) {
	f := newFake(4)
	s := Wrap(f, testPolicy(), 1) // FailoverAfter: 2
	if _, err := s.Put(0, kvstore.MakeKey(0x4000, 1), storetest.Page(4)); err != nil {
		t.Fatal(err)
	}
	// 4 consecutive failures with FailoverAfter=2 → rotations at 2 and 4.
	if f.rotations != 2 {
		t.Fatalf("rotations = %d, want 2", f.rotations)
	}
	if st := s.ResilienceStats(); st.Failovers != 2 {
		t.Fatalf("Failovers = %d", st.Failovers)
	}
}

func TestSlowOpFailover(t *testing.T) {
	f := newFake(0)
	f.latency = 100 * time.Microsecond // limping but never failing
	p := testPolicy()
	p.SlowOpThreshold = 50 * time.Microsecond
	s := Wrap(f, p, 1)
	key := kvstore.MakeKey(0x5000, 1)
	s.Put(0, key, storetest.Page(5))
	s.Put(0, key, storetest.Page(5))
	// Two consecutive slow ops with FailoverAfter=2 → one rotation: the
	// gray-replica escape hatch fires without a single error.
	if f.rotations != 1 {
		t.Fatalf("rotations = %d, want 1", f.rotations)
	}
	if st := s.ResilienceStats(); st.SlowOps != 2 || st.Failovers != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStartGetFallsBackThroughPolicy(t *testing.T) {
	f := newFake(1) // the split read's top half fails once
	s := Wrap(f, testPolicy(), 1)
	key := kvstore.MakeKey(0x6000, 1)
	// Seed the page past the injected failure.
	if _, err := s.Put(0, key, storetest.Page(6)); err != nil {
		t.Fatal(err)
	}
	f.fails = f.calls + 1 // fail exactly the next attempt
	p := s.StartGet(0, key)
	data, done, err := p.Wait(0)
	if err != nil {
		t.Fatalf("split read did not recover: %v", err)
	}
	if data[0] != storetest.Page(6)[0] {
		t.Fatal("fallback returned wrong page")
	}
	if done < f.latency*2 {
		t.Fatalf("done = %v, retry latency not charged", done)
	}
}

func TestCountersExport(t *testing.T) {
	f := newFake(2)
	s := Wrap(f, testPolicy(), 1)
	s.Put(0, kvstore.MakeKey(0x7000, 1), storetest.Page(7))
	c := s.ResilienceStats().Counters()
	if c.Get("ops") != 1 || c.Get("retries") != 2 {
		t.Fatalf("counters: ops=%d retries=%d", c.Get("ops"), c.Get("retries"))
	}
	if c.Get("backoff_us") == 0 {
		t.Fatal("backoff_us missing from counter export")
	}
}
