package core

import (
	"testing"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/memcached"
	"fluidmem/internal/kvstore/ramcloud"
)

// TestMonitorAgainstOracle model-checks the monitor: a long random sequence
// of page reads, writes, discards, and LRU resizes is mirrored against a
// plain in-memory oracle. After every step the monitor's visible memory must
// match the oracle and its invariants must hold. This is the strongest
// integrity net in the package: any lost write, stale read, or leaked
// resident page anywhere in the fault/evict/steal/flush machinery surfaces
// here.
func TestMonitorAgainstOracle(t *testing.T) {
	backends := map[string]func() Config{
		"dram":      func() Config { return DefaultConfig(dram.New(dram.DefaultParams(), 5), 24) },
		"ramcloud":  func() Config { return DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), 5), 24) },
		"memcached": func() Config { return DefaultConfig(memcached.New(memcached.DefaultParams(), 5), 24) },
		"sync":      func() Config { return BaselineConfig(ramcloud.New(ramcloud.DefaultParams(), 5), 24) },
		"compress": func() Config {
			cfg := DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), 5), 24)
			p := DefaultCompressParams(64 * PageSize)
			cfg.Compress = &p
			return cfg
		},
		"prefetch": func() Config {
			cfg := DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), 5), 24)
			cfg.PrefetchPages = 4
			return cfg
		},
		"writeback": func() Config {
			cfg := DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), 5), 24)
			cfg.ElideZeroPages = true
			cfg.CleanPageDrop = true
			return cfg
		},
		"writeback-batched": func() Config {
			cfg := DefaultConfig(ramcloud.New(ramcloud.DefaultParams(), 5), 24)
			cfg.ElideZeroPages = true
			cfg.CleanPageDrop = true
			cfg.PrefetchPages = 4
			cfg.BatchReads = true
			return cfg
		},
		"writeback-sync": func() Config {
			cfg := BaselineConfig(ramcloud.New(ramcloud.DefaultParams(), 5), 24)
			cfg.ElideZeroPages = true
			cfg.CleanPageDrop = true
			return cfg
		},
	}
	for name, mkCfg := range backends {
		name, mkCfg := name, mkCfg
		t.Run(name, func(t *testing.T) {
			runMonitorOracle(t, mkCfg(), 4000, 96, 0xBEEF)
		})
	}
}

func runMonitorOracle(t *testing.T, cfg Config, steps, pages int, seed uint64) {
	t.Helper()
	m, err := NewMonitor(cfg, nil, "hyp-oracle")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterRange(testBase, uint64(pages)*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	rng := clock.NewRand(seed)
	// oracle[i] == nil means the page was never written or was discarded
	// (reads must see zeroes).
	oracle := make([][]byte, pages)
	now := time.Duration(0)

	for step := 0; step < steps; step++ {
		page := rng.Intn(pages)
		a := addr(page)
		switch rng.Intn(10) {
		case 0: // discard (balloon)
			m.Discard(a)
			oracle[page] = nil
		case 1: // resize the LRU
			newCap := 8 + rng.Intn(32)
			if now, err = m.Resize(now, newCap); err != nil {
				t.Fatalf("step %d resize: %v", step, err)
			}
		case 2, 3, 4: // write a fresh byte at a random offset
			data, done, err := m.Touch(now, a, true)
			if err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			now = done
			if oracle[page] == nil {
				oracle[page] = make([]byte, PageSize)
			}
			off := rng.Intn(PageSize)
			val := byte(rng.Uint64()) | 1
			data[off] = val
			oracle[page][off] = val
		default: // read and verify the whole page
			data, done, err := m.Touch(now, a, false)
			if err != nil {
				t.Fatalf("step %d read: %v", step, err)
			}
			now = done
			want := oracle[page]
			for off := 0; off < PageSize; off += 97 {
				var w byte
				if want != nil {
					w = want[off]
				}
				if data[off] != w {
					t.Fatalf("step %d: page %d offset %d = %#x, oracle %#x",
						step, page, off, data[off], w)
				}
			}
		}
		// Invariants after every step.
		if got, limit := m.ResidentPages(), m.FootprintLimit(); got > limit {
			t.Fatalf("step %d: resident %d > limit %d", step, got, limit)
		}
		if prev := now; prev < 0 {
			t.Fatalf("step %d: negative virtual time", step)
		}
	}
	// Final drain must succeed and leave the write list empty.
	if _, err := m.Drain(now); err != nil {
		t.Fatal(err)
	}
	if m.WriteListLen() != 0 {
		t.Fatalf("write list holds %d entries after drain", m.WriteListLen())
	}
}
