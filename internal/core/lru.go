package core

import "container/list"

// lruList is the monitor's resident-page list (§V-A), partitioned into
// per-shard segments for the multi-worker fault pipeline. Its semantics
// follow the paper exactly: a page enters the list when the monitor sees it
// (first access, or re-fault after an eviction) and the internal ordering
// never changes afterwards — the list is *not* reordered on guest accesses,
// because resident accesses never reach the monitor. Evictions come from
// the top (globally oldest entry). The paper calls out this insertion-order
// behaviour as a limitation versus the kernel's active/inactive lists
// (§VI-D1).
//
// Sharding is a lock-striping structure, not a policy change: each worker's
// pages live in their own segment (one lock domain in a real monitor), but
// every insert is stamped with a global sequence number and Oldest selects
// the minimum across segment heads. Segment heads are each their segment's
// oldest entry, so the global minimum over heads IS the globally oldest
// page — eviction order is bit-for-bit identical to the single-segment list
// for ANY shard count, and the capacity budget the monitor enforces with
// Len stays global. The property tests in lru_test.go assert both.
type lruList struct {
	shards  []*list.List // each element holds an lruEntry
	index   map[uint64]*list.Element
	nextSeq uint64
}

// lruEntry is one resident page plus its global insertion stamp.
type lruEntry struct {
	addr uint64
	seq  uint64
}

// newShardedLRU returns an empty list split into the given number of
// segments (minimum one), sharded by page number.
func newShardedLRU(shards int) *lruList {
	if shards < 1 {
		shards = 1
	}
	l := &lruList{index: make(map[uint64]*list.Element)}
	for i := 0; i < shards; i++ {
		l.shards = append(l.shards, list.New())
	}
	return l
}

// newLRUList returns the single-segment (serial monitor) list.
func newLRUList() *lruList { return newShardedLRU(1) }

// shardOf maps a page address to its segment.
func (l *lruList) shardOf(addr uint64) *list.List {
	return l.shards[(addr/PageSize)%uint64(len(l.shards))]
}

// Len reports tracked pages across all segments.
func (l *lruList) Len() int { return len(l.index) }

// Insert appends addr at the bottom (newest) position of its segment.
// Inserting an address already present is a bug in the monitor and panics
// loudly.
func (l *lruList) Insert(addr uint64) {
	if _, ok := l.index[addr]; ok {
		panic("core: page already in LRU list")
	}
	l.nextSeq++
	l.index[addr] = l.shardOf(addr).PushBack(lruEntry{addr: addr, seq: l.nextSeq})
}

// Contains reports membership.
func (l *lruList) Contains(addr uint64) bool {
	_, ok := l.index[addr]
	return ok
}

// Oldest returns the eviction candidate: the entry with the globally
// minimum insertion stamp, found among the segment heads.
func (l *lruList) Oldest() (uint64, bool) {
	var best lruEntry
	found := false
	for _, shard := range l.shards {
		front := shard.Front()
		if front == nil {
			continue
		}
		e := front.Value.(lruEntry)
		if !found || e.seq < best.seq {
			best = e
			found = true
		}
	}
	return best.addr, found
}

// Remove deletes addr, reporting whether it was present.
func (l *lruList) Remove(addr uint64) bool {
	elem, ok := l.index[addr]
	if !ok {
		return false
	}
	l.shardOf(addr).Remove(elem)
	delete(l.index, addr)
	return true
}
