package core

import "container/list"

// lruList is the monitor's resident-page list (§V-A). Its semantics follow
// the paper exactly: a page enters the list when the monitor sees it (first
// access, or re-fault after an eviction) and the internal ordering never
// changes afterwards — the list is *not* reordered on guest accesses,
// because resident accesses never reach the monitor. Evictions come from the
// top (oldest entry). The paper calls out this insertion-order behaviour as
// a limitation versus the kernel's active/inactive lists (§VI-D1).
type lruList struct {
	order *list.List
	index map[uint64]*list.Element
}

func newLRUList() *lruList {
	return &lruList{order: list.New(), index: make(map[uint64]*list.Element)}
}

// Len reports tracked pages.
func (l *lruList) Len() int { return len(l.index) }

// Insert appends addr at the bottom (newest) position. Inserting an address
// already present is a bug in the monitor and panics loudly.
func (l *lruList) Insert(addr uint64) {
	if _, ok := l.index[addr]; ok {
		panic("core: page already in LRU list")
	}
	l.index[addr] = l.order.PushBack(addr)
}

// Contains reports membership.
func (l *lruList) Contains(addr uint64) bool {
	_, ok := l.index[addr]
	return ok
}

// Oldest returns the eviction candidate at the top of the list.
func (l *lruList) Oldest() (uint64, bool) {
	front := l.order.Front()
	if front == nil {
		return 0, false
	}
	return front.Value.(uint64), true
}

// Remove deletes addr, reporting whether it was present.
func (l *lruList) Remove(addr uint64) bool {
	elem, ok := l.index[addr]
	if !ok {
		return false
	}
	l.order.Remove(elem)
	delete(l.index, addr)
	return true
}
