package core

// lruList is the monitor's resident-page list (§V-A), partitioned into
// per-shard segments for the multi-worker fault pipeline. Its semantics
// follow the paper exactly: a page enters the list when the monitor sees it
// (first access, or re-fault after an eviction) and the internal ordering
// never changes afterwards — the list is *not* reordered on guest accesses,
// because resident accesses never reach the monitor. Evictions come from
// the top (globally oldest entry). The paper calls out this insertion-order
// behaviour as a limitation versus the kernel's active/inactive lists
// (§VI-D1).
//
// Sharding is a lock-striping structure, not a policy change: each worker's
// pages live in their own segment (one lock domain in a real monitor), but
// every insert is stamped with a global sequence number and Oldest selects
// the minimum across segment heads. Segment heads are each their segment's
// oldest entry, so the global minimum over heads IS the globally oldest
// page — eviction order is bit-for-bit identical to the single-segment list
// for ANY shard count, and the capacity budget the monitor enforces with
// Len stays global. The property tests in lru_test.go assert both.
//
// The list is intrusive and pooled: nodes removed by eviction go on a
// freelist and are reused by the next insert, so the steady-state fault
// path (evict one, insert one) allocates nothing.
type lruList struct {
	shards  []lruShard
	idx     shardIndexer
	index   map[uint64]*lruNode
	free    *lruNode // freelist threaded through next
	nextSeq uint64
}

// lruNode is one resident page plus its global insertion stamp.
type lruNode struct {
	addr       uint64
	seq        uint64
	prev, next *lruNode
}

// lruShard is one segment: head is the segment's oldest entry.
type lruShard struct {
	head, tail *lruNode
}

// newShardedLRU returns an empty list split into the given number of
// segments (minimum one), sharded by page number.
func newShardedLRU(shards int) *lruList { return newShardedLRUCap(shards, 0) }

// newShardedLRUCap additionally pre-sizes the page index for the given
// capacity, so a monitor whose resident set grows to its configured LRU
// capacity never pays map-growth allocations on the fault path.
func newShardedLRUCap(shards, capacity int) *lruList {
	if shards < 1 {
		shards = 1
	}
	if capacity < 0 {
		capacity = 0
	}
	return &lruList{
		shards: make([]lruShard, shards),
		idx:    newShardIndexer(shards),
		// +1: Insert runs before the evict loop brings Len back under
		// capacity, so the index briefly holds capacity+1 entries.
		index: make(map[uint64]*lruNode, capacity+1),
	}
}

// newLRUList returns the single-segment (serial monitor) list.
func newLRUList() *lruList { return newShardedLRU(1) }

// shardOf maps a page address to its segment.
func (l *lruList) shardOf(addr uint64) *lruShard {
	return &l.shards[l.idx.index(addr)]
}

// Len reports tracked pages across all segments.
func (l *lruList) Len() int { return len(l.index) }

// getNode pops a recycled node or allocates one.
func (l *lruList) getNode() *lruNode {
	if n := l.free; n != nil {
		l.free = n.next
		*n = lruNode{}
		return n
	}
	return &lruNode{}
}

// Insert appends addr at the bottom (newest) position of its segment.
// Inserting an address already present is a bug in the monitor and panics
// loudly.
func (l *lruList) Insert(addr uint64) {
	if _, ok := l.index[addr]; ok {
		panic("core: page already in LRU list")
	}
	l.nextSeq++
	n := l.getNode()
	n.addr = addr
	n.seq = l.nextSeq
	s := l.shardOf(addr)
	n.prev = s.tail
	if s.tail != nil {
		s.tail.next = n
	} else {
		s.head = n
	}
	s.tail = n
	l.index[addr] = n
}

// Contains reports membership.
func (l *lruList) Contains(addr uint64) bool {
	_, ok := l.index[addr]
	return ok
}

// Oldest returns the eviction candidate: the entry with the globally
// minimum insertion stamp, found among the segment heads.
func (l *lruList) Oldest() (uint64, bool) {
	var bestAddr, bestSeq uint64
	found := false
	for i := range l.shards {
		front := l.shards[i].head
		if front == nil {
			continue
		}
		if !found || front.seq < bestSeq {
			bestAddr, bestSeq = front.addr, front.seq
			found = true
		}
	}
	return bestAddr, found
}

// Remove deletes addr, reporting whether it was present. The node goes on
// the freelist for reuse.
func (l *lruList) Remove(addr uint64) bool {
	n, ok := l.index[addr]
	if !ok {
		return false
	}
	s := l.shardOf(addr)
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	delete(l.index, addr)
	*n = lruNode{next: l.free}
	l.free = n
	return true
}
