package core

// seenSet tracks which pages the monitor has ever observed (the PageTracker
// state machine's "not a first touch any more" bit). It used to be a
// map[uint64]bool, which cost the steady amortised map-growth allocations the
// cold-path allocation test pins (~one bucket every few first touches, the
// last ~40 B/fault of the hot path). Page addresses are dense within the
// registered regions, so a per-region bitmap is exact, allocation-free after
// registration, and O(1) with no hashing. Regions are added/removed by the
// control plane (RegisterRange / UnregisterVM / migration); the handful of
// regions per monitor makes the linear region lookup cheaper than a map probe.
type seenSet struct {
	regions []seenRegion
	// overflow catches addresses outside every registered region — the data
	// plane never produces them (faults are validated against regions first),
	// but control-plane callers are not forced to register before marking.
	overflow map[uint64]bool
}

type seenRegion struct {
	start, end uint64 // [start, end) byte addresses, page aligned
	bits       []uint64
}

func newSeenSet() *seenSet { return &seenSet{} }

// addRegion allocates tracking for [start, start+length). Overlapping ranges
// are the caller's bug (uffd.Register rejects them first).
func (s *seenSet) addRegion(start, length uint64) {
	pages := (length + PageSize - 1) / PageSize
	s.regions = append(s.regions, seenRegion{
		start: start,
		end:   start + pages*PageSize,
		bits:  make([]uint64, (pages+63)/64),
	})
}

// dropRegion forgets the region starting at start (teardown/migration export).
func (s *seenSet) dropRegion(start uint64) {
	for i := range s.regions {
		if s.regions[i].start == start {
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			return
		}
	}
}

func (s *seenSet) find(addr uint64) *seenRegion {
	for i := range s.regions {
		if r := &s.regions[i]; addr >= r.start && addr < r.end {
			return r
		}
	}
	return nil
}

func (s *seenSet) has(addr uint64) bool {
	if r := s.find(addr); r != nil {
		page := (addr - r.start) >> pageShift
		return r.bits[page>>6]&(1<<(page&63)) != 0
	}
	return s.overflow[addr]
}

func (s *seenSet) add(addr uint64) {
	if r := s.find(addr); r != nil {
		page := (addr - r.start) >> pageShift
		r.bits[page>>6] |= 1 << (page & 63)
		return
	}
	if s.overflow == nil {
		s.overflow = make(map[uint64]bool)
	}
	s.overflow[addr] = true
}

func (s *seenSet) del(addr uint64) {
	if r := s.find(addr); r != nil {
		page := (addr - r.start) >> pageShift
		r.bits[page>>6] &^= 1 << (page & 63)
		return
	}
	delete(s.overflow, addr)
}
