package core

import "math/bits"

// shardIndexer maps a page address to its fault-pipeline shard without the
// per-fault 64-bit divide the naive `(addr/PageSize) % workers` costs. The
// page-address layout is fixed (PageSize is a power of two), so the page
// number is a shift; the modulo is a mask when the shard count is a power of
// two and a Lemire-style multiplicative reduction on the 64-bit fractional
// remainder otherwise. Both forms agree exactly with the reference formula —
// BenchmarkWorkerOf and TestShardIndexerMatchesReference pin it — so every
// structure sharded by page address (LRU segments, write-list queues, stats
// cells, the parallel engine's executors) can share one indexer and stay
// consistent.
type shardIndexer struct {
	shards uint64
	// mask is shards-1 when shards is a power of two; otherwise ^uint64(0)
	// marks the reciprocal path.
	mask uint64
	// recip is ceil(2^64 / shards), the fixed-point reciprocal used by the
	// remainder-by-multiplication path (Lemire, "Faster remainders when the
	// divisor is a constant", 2019).
	recip uint64
	pow2  bool
	// plain falls back to the hardware divide for shard counts where the
	// fixed-point reduction is not provably exact (see newShardIndexer).
	plain bool
}

// pageShift converts a page address to its page number.
const pageShift = 12 // log2(PageSize)

// newShardIndexer builds an indexer for the given shard count (minimum 1).
func newShardIndexer(shards int) shardIndexer {
	if shards < 1 {
		shards = 1
	}
	s := uint64(shards)
	ix := shardIndexer{shards: s}
	if s&(s-1) == 0 {
		ix.pow2 = true
		ix.mask = s - 1
		return ix
	}
	if s >= 1<<pageShift {
		// The reduction's error term is bounded by page*shards/2^64; page
		// numbers reach 2^52 (addr < 2^64, 4 KiB pages), so exactness holds
		// only for shards < 2^12. Larger non-power-of-two counts take the
		// hardware divide — they are far past any realistic pipeline width.
		ix.plain = true
		return ix
	}
	// ceil(2^64 / s) without 128-bit literals: floor((2^64-1)/s) + 1.
	ix.recip = ^uint64(0)/s + 1
	return ix
}

// index returns the shard owning the page at addr.
func (ix shardIndexer) index(addr uint64) int {
	page := addr >> pageShift
	if ix.pow2 {
		return int(page & ix.mask)
	}
	if ix.plain {
		return int(page % ix.shards)
	}
	// page % shards == high64((page * recip) * shards / 2^64): the low
	// 64 bits of page*recip are the fractional part of page/shards in
	// 0.64 fixed point; scaling by shards recovers the remainder.
	frac := page * ix.recip
	hi, _ := bits.Mul64(frac, ix.shards)
	return int(hi)
}
