package core

// This file is the monitor's parallel execution mode: N OS goroutines, one
// per shard, each exclusively owning its shard's page frames and pending
// write-list buffers, fed by bounded SPSC work rings (spsc.go).
//
// The design is Calvin-style deterministic execution, split along the
// logical/physical axis:
//
//   - The *sequencer* (the caller's goroutine) runs the cheap logical state
//     machine — seen set, LRU membership and victim selection, clean/zero
//     marks, write-list queue membership, all counters, trace digests — in
//     strict program order, exactly mirroring the single-thread data plane's
//     decisions (dataplane.go / prefetch.go / writelist.go). Because every
//     decision in the serial monitor depends only on logical state, never on
//     virtual time, the sequencer can replay it without any clock at all.
//   - The *shard executors* do the physical work — page-frame installs and
//     copies, store Gets/Puts, delivery of page data to the driver — each
//     touching only its own shard's maps, in the exact per-shard order the
//     sequencer emitted.
//
// Two lightweight global orders make the physical side deterministic where
// it must be:
//
//   - A store turnstile: the sequencer stamps every store operation with a
//     global sequence number at its exact serial program point; an executor
//     performs the operation only when all earlier-stamped operations have
//     completed. The store therefore observes the identical operation
//     sequence as the single-thread monitor (order-sensitive backends like
//     the memcached model depend on this), and store ops never race.
//   - A read-completion fence: Get results may alias store-internal buffers,
//     so readers copy them out *after* releasing their turn, and every
//     mutating operation waits until all reads stamped before it have
//     finished copying (readsBefore vs. readsDone).
//
// Deadlock freedom: an item only ever waits on turns, read counts, or job
// flags produced by items with *earlier* stamps, and per-shard FIFOs emit in
// stamp order, so every wait references work that is already runnable.
//
// Parity with the single-thread monitor is pinned by the paralleltest
// oracle: identical page contents, store contents, resident sets, merged
// counters (minus the two virtual-time-only ones) and per-shard trace
// digests for the same workload.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/trace"
)

// parRingCapacity bounds each shard's queued work items; the sequencer
// backpressures (spins) when a shard is this far behind.
const parRingCapacity = 1024

// parJobRing is how many flush/read jobs circulate per pool; acquisition
// waits for the oldest job to complete, bounding in-flight batches.
const parJobRing = 4

// parZeroFrame is the shared all-zero page backing copy-on-write zero
// installs, the analogue of the uffd model's shared zero page. Readers may
// be handed this frame; they must never write through it (the sequencer
// materialises a private frame before any write access).
var parZeroFrame = make([]byte, PageSize)

// parRegion mirrors a registered VM range for the parallel engine.
type parRegion struct {
	start, end uint64
	pid        int
	part       kvstore.PartitionID
}

// parQueued is the sequencer's view of one write-list entry: its global
// enqueue stamp (flush batches gather in stamp order, mirroring the serial
// engine's bit-identical batches) and its precomputed store key.
type parQueued struct {
	seq uint64
	key kvstore.Key
}

// parFlushEnt is flush-gather scratch.
type parFlushEnt struct {
	addr uint64
	seq  uint64
	key  kvstore.Key
}

// parCand is one readahead candidate picked by the sequencer's gather pass.
type parCand struct {
	addr      uint64
	key       kvstore.Key
	slot      int32
	stolen    bool
	installed bool
}

// parFlushJob carries one MultiPut batch. The sequencer fills keys and the
// metadata, then emits one piContribute per entry to the entry's owning
// shard; each contributor parks its pending buffer in its slot, and the
// last one to arrive performs the MultiPut at the job's store turn.
type parFlushJob struct {
	keys        []kvstore.Key
	pages       [][]byte
	n           int
	storeSeq    uint64
	readsBefore uint64
	remaining   atomic.Int32
	// done is the pool gate: 1 = job idle and reusable.
	done atomic.Uint32
}

// parReadJob carries one batch of store reads (a batched MultiGet or a
// pipelined window of per-page Gets). Getter items fill pages and raise the
// per-slot ready flags; exactly one consume/drop item retires each slot.
// consumers reaching zero is the pool gate.
type parReadJob struct {
	keys      []kvstore.Key
	pages     [][]byte
	ready     []atomic.Uint32
	n         int
	consumers atomic.Int32
}

// parWorker is one shard executor's exclusively-owned state.
type parWorker struct {
	ring *spscRing
	// frames maps resident pages to their frames; a nil value is the
	// copy-on-write zero sentinel (the page reads as parZeroFrame until a
	// write materialises a private frame).
	frames map[uint64][]byte
	// pending holds write-list buffers for this shard's queued evictions.
	pending map[uint64][]byte
}

// framePool recycles page frames across shards. The mutex is uncontended in
// steady state (one get + one put per fault, microseconds apart).
type framePool struct {
	mu   sync.Mutex
	free [][]byte
}

func (fp *framePool) get() []byte {
	fp.mu.Lock()
	if n := len(fp.free); n > 0 {
		f := fp.free[n-1]
		fp.free = fp.free[:n-1]
		fp.mu.Unlock()
		return f
	}
	fp.mu.Unlock()
	return make([]byte, PageSize)
}

func (fp *framePool) put(f []byte) {
	if f == nil || len(f) != PageSize {
		return
	}
	fp.mu.Lock()
	fp.free = append(fp.free, f)
	fp.mu.Unlock()
}

// padCounter is an atomic counter on its own cache line.
type padCounter struct {
	_ [64]byte
	v atomic.Uint64
	_ [56]byte
}

// Parallel is the multi-goroutine execution mode of the monitor. It serves
// the same fault pipeline as Monitor but with real CPU parallelism and no
// virtual clock: wall time is the only time. Page data reaches the driver
// through the onData callback instead of a return value — it fires on the
// owning shard's goroutine, in per-shard ticket order, with the frame bytes
// valid (and, for write accesses, mutable) for the duration of the call.
type Parallel struct {
	cfg       Config
	store     kvstore.Store
	shards    int
	idx       shardIndexer
	batchSize int
	onData    func(shard int, ticket, addr uint64, data []byte)

	// ---- sequencer-owned logical state (no locks: single goroutine) ----
	lru  *lruList
	seen *seenSet
	// clean marks store-backed installs not yet written (CleanPageDrop);
	// zeroMark is the zero bitmap; storePresent predicts store membership so
	// the sequencer can mirror read-miss decisions without doing the read.
	clean        map[uint64]bool
	zeroMark     map[uint64]bool
	storePresent map[uint64]bool
	queued       map[uint64]parQueued
	queuedCount  int
	wbNextSeq    uint64

	registry     kvstore.Registry
	hypervisorID string
	partitions   map[int]kvstore.PartitionID
	regions      []parRegion

	epoch    uint64
	wpFaults uint64
	cells    []Stats
	// digs are the per-shard logical trace digests (see FoldTraceEvent).
	digs []uint64

	wbFlushes, wbFlushedPages uint64
	wbSteals, wbCoalesced     uint64
	wbZeroMarks               uint64
	flushSizes                map[int]uint64

	ticket      uint64
	storeSeqCtr uint64
	readsSeen   uint64

	flushScratch []parFlushEnt
	candScratch  []parCand
	intake       *intakeRing
	err          error
	closed       bool

	// ---- shared with executors ----
	workers   []parWorker
	frames    framePool
	storeDone padCounter
	readsDone padCounter
	stop      atomic.Bool
	wg        sync.WaitGroup

	execMu   sync.Mutex
	execErr  error
	execFlag atomic.Bool

	fjobs    []*parFlushJob
	fjobNext int
	rjobs    []*parReadJob
	rjobNext int
}

// NewParallel builds the parallel engine. The single-thread monitor remains
// the determinism reference; features whose semantics are defined by virtual
// time or by mid-run introspection of worker horizons (tracing, hotset
// estimation, the compressed tier, resilience policies) are rejected rather
// than silently diverging.
func NewParallel(cfg Config, registry kvstore.Registry, hypervisorID string,
	onData func(shard int, ticket, addr uint64, data []byte)) (*Parallel, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("%w: nil store", ErrBadConfig)
	}
	if cfg.LRUCapacity < 1 {
		return nil, fmt.Errorf("%w: LRU capacity %d < 1", ErrBadConfig, cfg.LRUCapacity)
	}
	if cfg.Trace != nil {
		return nil, fmt.Errorf("%w: parallel mode has no virtual-time spans to trace; use the single-thread monitor", ErrBadConfig)
	}
	if cfg.Hotset != nil {
		return nil, fmt.Errorf("%w: parallel mode does not drive a hotset tracker", ErrBadConfig)
	}
	if cfg.Compress != nil {
		return nil, fmt.Errorf("%w: parallel mode does not support the compressed tier", ErrBadConfig)
	}
	if cfg.Resilience != nil {
		return nil, fmt.Errorf("%w: parallel mode does not support resilience policies", ErrBadConfig)
	}
	if registry == nil {
		registry = kvstore.NewLocalRegistry()
	}
	if hypervisorID == "" {
		hypervisorID = "hypervisor-0"
	}
	shards := cfg.Workers
	if shards < 1 {
		shards = 1
	}
	batch := cfg.WriteBatchSize
	if batch <= 0 {
		batch = 32
	}
	maxRead := cfg.PrefetchPages + 1
	p := &Parallel{
		cfg:          cfg,
		store:        cfg.Store,
		shards:       shards,
		idx:          newShardIndexer(shards),
		batchSize:    batch,
		onData:       onData,
		lru:          newShardedLRUCap(shards, cfg.LRUCapacity),
		seen:         newSeenSet(),
		clean:        make(map[uint64]bool, cfg.LRUCapacity+1),
		zeroMark:     make(map[uint64]bool, batch),
		storePresent: make(map[uint64]bool, 4*cfg.LRUCapacity),
		queued:       make(map[uint64]parQueued, batch),
		registry:     registry,
		hypervisorID: hypervisorID,
		partitions:   make(map[int]kvstore.PartitionID),
		cells:        make([]Stats, shards),
		digs:         make([]uint64, shards),
		flushSizes:   make(map[int]uint64, 16),
		flushScratch: make([]parFlushEnt, 0, batch),
		candScratch:  make([]parCand, 0, maxRead),
		intake:       newIntakeRing(intakeCapacity),
		workers:      make([]parWorker, shards),
	}
	for i := 0; i < parJobRing; i++ {
		fj := &parFlushJob{
			keys:  make([]kvstore.Key, batch),
			pages: make([][]byte, batch),
		}
		fj.done.Store(1)
		p.fjobs = append(p.fjobs, fj)
		p.rjobs = append(p.rjobs, &parReadJob{
			keys:  make([]kvstore.Key, maxRead),
			pages: make([][]byte, maxRead),
			ready: make([]atomic.Uint32, maxRead),
		})
	}
	for s := 0; s < shards; s++ {
		p.workers[s] = parWorker{
			ring:    newSPSCRing(parRingCapacity),
			frames:  make(map[uint64][]byte, cfg.LRUCapacity+1),
			pending: make(map[uint64][]byte, batch),
		}
	}
	p.wg.Add(shards)
	for s := 0; s < shards; s++ {
		go p.runWorker(s)
	}
	return p, nil
}

// RegisterRange registers [start, start+length) for pid, mirroring
// Monitor.RegisterRange.
func (p *Parallel) RegisterRange(start, length uint64, pid int) error {
	if _, ok := p.partitions[pid]; !ok {
		part, err := p.registry.Allocate(p.hypervisorID, pid)
		if err != nil {
			return fmt.Errorf("core: allocate partition for pid %d: %w", pid, err)
		}
		p.partitions[pid] = part
	}
	p.regions = append(p.regions, parRegion{
		start: start,
		end:   start + length,
		pid:   pid,
		part:  p.partitions[pid],
	})
	p.seen.addRegion(start, length)
	return nil
}

func (p *Parallel) regionFor(addr uint64) *parRegion {
	for i := range p.regions {
		r := &p.regions[i]
		if addr >= r.start && addr < r.end {
			return r
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Sequencer: the logical state machine, mirroring dataplane.go decision for
// decision.
// ---------------------------------------------------------------------------

// Touch is the parallel analogue of Monitor.Touch. The page data is
// delivered through onData on the owning shard's goroutine; Touch itself
// only sequences the work and returns sequencing errors.
func (p *Parallel) Touch(addr uint64, write bool) error {
	if p.err != nil {
		return p.err
	}
	if err := p.takeExecErr(); err != nil {
		p.err = err
		return err
	}
	p.drainIntakePar()
	addr &^= uint64(PageSize - 1)
	tk := p.ticket
	p.ticket++
	s := p.idx.index(addr)
	if p.lru.Contains(addr) {
		// Resident hit. A write through clean-tracking write protection trips
		// the (simulated) WP fault: counter bump, protection cleared, private
		// frame materialised by the executor on the COW-zero case.
		if write && p.clean[addr] {
			delete(p.clean, addr)
			p.wpFaults++
		}
		p.post(s, parItem{kind: piAccessHit, addr: addr, write: write, ticket: tk})
		return nil
	}
	region := p.regionFor(addr)
	if region == nil {
		p.err = fmt.Errorf("core: access to unregistered page %#x", addr)
		return p.err
	}
	p.cells[s].Faults++
	if !p.seen.has(addr) && p.cfg.PageTracker {
		p.cells[s].FirstTouch++
		p.seen.add(addr)
		return p.zeroFillPar(s, tk, addr, write, "first_touch")
	}
	// Zero-bitmap hit: checked unconditionally, as in the serial plane — a
	// standing mark means any store copy is stale.
	if p.zeroMark[addr] {
		delete(p.zeroMark, addr)
		p.cells[s].ZeroRefills++
		return p.zeroFillPar(s, tk, addr, write, "zero_refill")
	}
	path, batched, err := p.resolveStorePar(s, tk, addr, write, region)
	if err != nil {
		p.err = err
		return err
	}
	if p.cfg.PrefetchPages > 0 && !batched {
		if err := p.prefetchPar(addr, region); err != nil {
			return err
		}
	}
	// FAULT folds last, after any readahead events — the serial monitor's
	// traceFault runs after the prefetch pipeline.
	p.foldShard(s, trace.EvFault, addr, path)
	return nil
}

// zeroFillPar mirrors zeroFill: install the zero page, then evict past the
// bound (the serial plane evicts after the wake, so the threshold is > not >=).
func (p *Parallel) zeroFillPar(s int, tk, addr uint64, write bool, path string) error {
	p.post(s, parItem{kind: piZeroInstall, addr: addr, write: write, ticket: tk})
	p.epoch++
	p.lru.Insert(addr)
	for p.lru.Len() > p.cfg.LRUCapacity {
		if err := p.evictOnePar(); err != nil {
			p.err = err
			return err
		}
	}
	p.foldShard(s, trace.EvFault, addr, path)
	return nil
}

// resolveStorePar mirrors resolveFromStore (minus the compressed tier and
// the timing-only in-flight wait, which changes no logical state).
func (p *Parallel) resolveStorePar(s int, tk, addr uint64, write bool, region *parRegion) (path string, batched bool, err error) {
	key := kvstore.MakeKey(addr, region.part)
	if p.cfg.StealEnabled && p.cfg.AsyncWrite {
		if _, ok := p.queued[addr]; ok {
			// Steal shortcut: the pending buffer becomes the frame again.
			p.removeQueued(addr)
			p.wbSteals++
			p.foldShard(s, trace.EvSteal, addr, "")
			p.cells[s].Steals++
			for p.lru.Len() >= p.cfg.LRUCapacity {
				if err := p.evictOnePar(); err != nil {
					return "steal", false, err
				}
			}
			p.post(s, parItem{kind: piStealInstall, addr: addr, write: write, ticket: tk})
			p.epoch++
			p.lru.Insert(addr)
			return "steal", false, nil
		}
	} else if p.cfg.AsyncWrite {
		if _, ok := p.queued[addr]; ok {
			// No stealing: the queued write must flush before the read.
			if err := p.flushPar(); err != nil {
				return "read", false, fmt.Errorf("core: forced flush for %v: %w", key, err)
			}
		}
	}
	p.cells[s].RemoteReads++
	if p.cfg.AsyncRead && p.cfg.BatchReads && p.cfg.PrefetchPages > 0 {
		err := p.batchedReadPar(s, tk, addr, key, write, region)
		return "batched_read", true, err
	}
	if !p.storePresent[addr] {
		return "read", false, fmt.Errorf("core: read %v: %w", key, kvstore.ErrNotFound)
	}
	// Demand read: the Get's turn comes before any eviction flush this fault
	// triggers, exactly as the serial plane issues StartGet/Get first.
	seq := p.nextStoreSeq()
	p.readsSeen++
	p.post(s, parItem{kind: piRead, addr: addr, key: key, write: write, ticket: tk, storeSeq: seq})
	for p.lru.Len() >= p.cfg.LRUCapacity {
		if err := p.evictOnePar(); err != nil {
			return "read", false, err
		}
	}
	p.epoch++
	if p.cfg.CleanPageDrop {
		p.clean[addr] = true
	}
	p.lru.Insert(addr)
	// The vCPU's write retry trips the just-armed write protection.
	if write && p.clean[addr] {
		delete(p.clean, addr)
		p.wpFaults++
	}
	return "read", false, nil
}

// batchedReadPar mirrors resolveBatchedRead: demand key plus unstolen
// readahead candidates in one MultiGet, evictions overlapping, readahead
// installed afterwards under the demand-displacement stop rule.
func (p *Parallel) batchedReadPar(s int, tk, addr uint64, key kvstore.Key, write bool, region *parRegion) error {
	cands := p.gatherPar(addr, region)
	rj := p.acquireReadJob()
	rj.keys[0] = key
	n := 1
	for i := range cands {
		c := &cands[i]
		if c.stolen {
			continue
		}
		c.slot = int32(n)
		rj.keys[n] = c.key
		n++
	}
	if !p.storePresent[addr] {
		return fmt.Errorf("core: read %v: %w", key, kvstore.ErrNotFound)
	}
	rj.n = n
	rj.consumers.Store(int32(n)) // demand slot + every unstolen candidate
	seq := p.nextStoreSeq()
	p.readsSeen++
	p.post(s, parItem{kind: piMultiRead, storeSeq: seq, rjob: rj})
	for p.lru.Len() >= p.cfg.LRUCapacity {
		if err := p.evictOnePar(); err != nil {
			return err
		}
	}
	p.epoch++
	if p.cfg.CleanPageDrop {
		p.clean[addr] = true
	}
	p.lru.Insert(addr)
	p.post(s, parItem{kind: piReadConsume, addr: addr, write: write, ticket: tk, slot: 0, rjob: rj})
	if write && p.clean[addr] {
		delete(p.clean, addr)
		p.wpFaults++
	}
	if err := p.installCandsPar(addr, cands, rj); err != nil {
		return err
	}
	return nil
}

// prefetchPar mirrors prefetch: pipelined per-page split reads for the
// readahead window. All Gets take their store turns first (in candidate
// order, before any eviction flush the installs trigger), then installs
// proceed under the stop rule.
func (p *Parallel) prefetchPar(addr uint64, region *parRegion) error {
	cands := p.gatherPar(addr, region)
	if len(cands) == 0 {
		return nil
	}
	rj := p.acquireReadJob()
	n := 0
	for i := range cands {
		c := &cands[i]
		if c.stolen {
			continue
		}
		c.slot = int32(n)
		rj.keys[n] = c.key
		n++
	}
	rj.n = n
	rj.consumers.Store(int32(n))
	for i := range cands {
		c := &cands[i]
		if c.stolen {
			continue
		}
		seq := p.nextStoreSeq()
		p.readsSeen++
		p.post(p.idx.index(c.addr), parItem{
			kind: piSlotGet, addr: c.addr, key: c.key, slot: c.slot,
			storeSeq: seq, expect: p.storePresent[c.addr], rjob: rj,
		})
	}
	return p.installCandsPar(addr, cands, rj)
}

// installCandsPar is the shared readahead-install tail: walk candidates in
// order, skip store misses, stop (for good) the moment readahead would
// displace the demand page, evict for the rest, and emit the install or
// drop item for each slot.
func (p *Parallel) installCandsPar(demand uint64, cands []parCand, rj *parReadJob) error {
	stopped := false
	for i := range cands {
		c := &cands[i]
		if !c.stolen && !p.storePresent[c.addr] {
			continue // store miss: the page will fault normally
		}
		if !stopped {
			if oldest, ok := p.lru.Oldest(); ok && oldest == demand && p.lru.Len() >= p.cfg.LRUCapacity {
				stopped = true
			}
		}
		if stopped {
			continue
		}
		for p.lru.Len() >= p.cfg.LRUCapacity {
			if err := p.evictOnePar(); err != nil {
				p.err = err
				return err
			}
		}
		cs := p.idx.index(c.addr)
		p.epoch++
		if !c.stolen && p.cfg.CleanPageDrop {
			p.clean[c.addr] = true
		}
		p.lru.Insert(c.addr)
		p.cells[cs].Prefetches++
		p.foldShard(cs, trace.EvPrefetch, c.addr, "")
		if c.stolen {
			p.post(cs, parItem{kind: piPendingInstall, addr: c.addr})
		} else {
			p.post(cs, parItem{kind: piReadInstall, addr: c.addr, slot: c.slot, rjob: rj})
		}
		c.installed = true
	}
	// Every slot and every stolen buffer is retired exactly once.
	for i := range cands {
		c := &cands[i]
		if c.installed {
			continue
		}
		if c.stolen {
			p.post(p.idx.index(c.addr), parItem{kind: piPendingDrop, addr: c.addr})
		} else {
			p.post(p.idx.index(c.addr), parItem{kind: piReadDrop, slot: c.slot, rjob: rj})
		}
	}
	return nil
}

// gatherPar mirrors gatherPrefetch: seen, non-resident, non-zero-marked
// pages following addr; candidates on the write list are stolen immediately
// (engine steals, not fault steals — they bump only the writeback counter).
func (p *Parallel) gatherPar(addr uint64, region *parRegion) []parCand {
	cands := p.candScratch[:0]
	for i := 1; i <= p.cfg.PrefetchPages; i++ {
		next := addr + uint64(i)*PageSize
		if next >= region.end {
			break
		}
		if !p.seen.has(next) || p.lru.Contains(next) {
			continue
		}
		if p.zeroMark[next] {
			continue // zero-elided: any store copy is stale
		}
		c := parCand{addr: next, key: kvstore.MakeKey(next, region.part), slot: -1}
		if p.cfg.AsyncWrite {
			if _, ok := p.queued[next]; ok {
				p.removeQueued(next)
				p.wbSteals++
				p.foldShard(p.idx.index(next), trace.EvSteal, next, "")
				c.stolen = true
			}
		}
		cands = append(cands, c)
	}
	p.candScratch = cands
	return cands
}

// evictOnePar mirrors evictOne: globally oldest victim, clean-drop check,
// zero elision (which must inspect the victim's bytes — the one place the
// sequencer stalls on a shard), then write-back.
func (p *Parallel) evictOnePar() error {
	victim, ok := p.lru.Oldest()
	if !ok {
		return errors.New("core: eviction needed but LRU list empty")
	}
	p.lru.Remove(victim)
	vs := p.idx.index(victim)
	p.cells[vs].Evictions++
	clean := p.cfg.CleanPageDrop && p.clean[victim]
	if p.cfg.EvictWithCopy {
		p.foldShard(vs, trace.EvEvict, victim, "copy")
	} else {
		p.foldShard(vs, trace.EvEvict, victim, "remap")
	}
	p.epoch++

	if clean {
		delete(p.clean, victim)
		p.cells[vs].CleanDropped++
		p.foldShard(vs, trace.EvCleanDrop, victim, "")
		p.post(vs, parItem{kind: piEvictDrop, addr: victim})
		return nil
	}

	region := p.regionFor(victim)
	if region == nil {
		return fmt.Errorf("core: evicted page %#x has no region", victim)
	}
	key := kvstore.MakeKey(victim, region.part)

	if p.cfg.ElideZeroPages {
		if p.victimAllZero(victim, vs) {
			// NoteZero mirror: cancel any queued write, mark the bitmap.
			if _, ok := p.queued[victim]; ok {
				p.removeQueued(victim)
				p.post(vs, parItem{kind: piZeroCancel, addr: victim})
			}
			p.zeroMark[victim] = true
			p.wbZeroMarks++
			p.cells[vs].ZeroElided++
			p.foldShard(vs, trace.EvZeroElide, victim, "")
			p.post(vs, parItem{kind: piEvictDrop, addr: victim})
			return nil
		}
	}

	if p.cfg.AsyncWrite {
		// Enqueue mirror. Flushes are attributed to the victim that tipped
		// the batch, exactly as the serial delta-attribution does.
		flushesBefore := p.wbFlushes
		delete(p.zeroMark, victim)
		if _, ok := p.queued[victim]; ok {
			p.wbCoalesced++
			p.post(vs, parItem{kind: piEvictCoalesce, addr: victim})
		} else {
			p.wbNextSeq++
			p.queued[victim] = parQueued{seq: p.wbNextSeq, key: key}
			p.queuedCount++
			p.post(vs, parItem{kind: piEvictEnqueue, addr: victim})
			if p.queuedCount >= p.batchSize {
				if err := p.flushPar(); err != nil {
					return err
				}
			}
		}
		p.cells[vs].Flushes += p.wbFlushes - flushesBefore
		return nil
	}
	p.cells[vs].SyncWrites++
	seq := p.nextStoreSeq()
	p.storePresent[victim] = true
	p.post(vs, parItem{
		kind: piEvictSyncPut, addr: victim, key: key,
		storeSeq: seq, readsBefore: p.readsSeen,
	})
	return nil
}

// victimAllZero inspects the victim's current bytes for zero elision. The
// page's frame lives on its shard, so the sequencer waits for that shard to
// drain (ring head == tail ⇒ every emitted item has fully executed, and the
// ring atomics order the executor's frame writes before this read).
func (p *Parallel) victimAllZero(victim uint64, vs int) bool {
	p.waitShard(vs)
	f, ok := p.workers[vs].frames[victim]
	if !ok {
		p.failExec(fmt.Errorf("core: parallel evict of %#x found no frame", victim))
		return false
	}
	return f == nil || allZero(f)
}

// flushPar mirrors writeback.Flush: gather every queued entry in global
// stamp order into one MultiPut batch, executed by the last contributor.
func (p *Parallel) flushPar() error {
	if p.queuedCount == 0 {
		return nil
	}
	fj := p.acquireFlushJob()
	ents := p.flushScratch[:0]
	for addr, q := range p.queued {
		ents = append(ents, parFlushEnt{addr: addr, seq: q.seq, key: q.key})
	}
	p.flushScratch = ents
	// Insertion sort by stamp: map iteration order is random, the batch
	// order must not be.
	for i := 1; i < len(ents); i++ {
		e := ents[i]
		j := i - 1
		for j >= 0 && ents[j].seq > e.seq {
			ents[j+1] = ents[j]
			j--
		}
		ents[j+1] = e
	}
	n := len(ents)
	fj.n = n
	fj.storeSeq = p.nextStoreSeq()
	fj.readsBefore = p.readsSeen
	fj.remaining.Store(int32(n))
	for i := range ents {
		fj.keys[i] = ents[i].key
		delete(p.queued, ents[i].addr)
		p.storePresent[ents[i].addr] = true
	}
	p.queuedCount = 0
	p.wbFlushes++
	p.wbFlushedPages += uint64(n)
	p.flushSizes[n]++
	for i := range ents {
		p.post(p.idx.index(ents[i].addr), parItem{kind: piContribute, addr: ents[i].addr, slot: int32(i), fjob: fj})
	}
	return nil
}

func (p *Parallel) removeQueued(addr uint64) {
	delete(p.queued, addr)
	p.queuedCount--
}

func (p *Parallel) nextStoreSeq() uint64 {
	p.storeSeqCtr++
	return p.storeSeqCtr
}

func (p *Parallel) foldShard(s int, name string, page uint64, arg string) {
	p.digs[s] = FoldTraceEvent(p.digs[s], name, page, arg)
}

// post enqueues an item on shard s, backpressuring when the ring is full.
func (p *Parallel) post(s int, it parItem) {
	r := p.workers[s].ring
	spins := 0
	for !r.push(it) {
		spinYield(&spins)
	}
}

// waitShard blocks until shard s has executed everything emitted to it.
func (p *Parallel) waitShard(s int) {
	r := p.workers[s].ring
	spins := 0
	for r.head.Load() != r.tail.Load() {
		spinYield(&spins)
	}
}

func (p *Parallel) barrier() {
	for s := 0; s < p.shards; s++ {
		p.waitShard(s)
	}
}

func (p *Parallel) acquireFlushJob() *parFlushJob {
	fj := p.fjobs[p.fjobNext]
	p.fjobNext = (p.fjobNext + 1) % len(p.fjobs)
	spins := 0
	for fj.done.Load() != 1 {
		spinYield(&spins)
	}
	fj.done.Store(0)
	return fj
}

func (p *Parallel) acquireReadJob() *parReadJob {
	rj := p.rjobs[p.rjobNext]
	p.rjobNext = (p.rjobNext + 1) % len(p.rjobs)
	spins := 0
	for rj.consumers.Load() != 0 {
		spinYield(&spins)
	}
	for i := range rj.ready {
		rj.ready[i].Store(0)
	}
	rj.n = 0
	return rj
}

// ---------------------------------------------------------------------------
// Control surface (barrier-synchronised; mirrors controlplane.go).
// ---------------------------------------------------------------------------

// Discard mirrors Monitor.Discard. It is a full-barrier control operation:
// with every shard drained the sequencer may touch shard-owned maps
// directly, and the store Delete slots into the turnstile inline.
func (p *Parallel) Discard(addr uint64) {
	if p.closed || p.err != nil {
		return
	}
	p.drainIntakePar()
	addr &^= uint64(PageSize - 1)
	p.barrier()
	s := p.idx.index(addr)
	w := &p.workers[s]
	if p.lru.Remove(addr) {
		if f, ok := w.frames[addr]; ok {
			delete(w.frames, addr)
			p.frames.put(f)
		}
		p.epoch++
	}
	if p.seen.has(addr) {
		p.seen.del(addr)
		if region := p.regionFor(addr); region != nil {
			_ = p.nextStoreSeq()
			_, _ = p.store.Delete(0, kvstore.MakeKey(addr, region.part))
			p.storeDone.v.Add(1)
			delete(p.storePresent, addr)
		}
	}
	if region := p.regionFor(addr); region != nil {
		if _, ok := p.queued[addr]; ok {
			p.removeQueued(addr)
			if buf, ok := w.pending[addr]; ok {
				delete(w.pending, addr)
				p.frames.put(buf)
			}
		}
		delete(p.zeroMark, addr)
	}
	delete(p.clean, addr)
}

// Resize mirrors Monitor.Resize: re-bound the LRU, evicting to fit.
func (p *Parallel) Resize(capacity int) error {
	if capacity < 1 {
		return fmt.Errorf("%w: LRU capacity %d < 1", ErrBadConfig, capacity)
	}
	if p.err != nil {
		return p.err
	}
	p.drainIntakePar()
	p.cfg.LRUCapacity = capacity
	for p.lru.Len() > capacity {
		if err := p.evictOnePar(); err != nil {
			p.err = err
			return err
		}
	}
	return nil
}

// PostResize queues a capacity change from any goroutine; it is applied at
// the next operation boundary, exactly like the serial intake ring.
func (p *Parallel) PostResize(capacity int) bool {
	if capacity < 1 {
		return false
	}
	return p.intake.Post(command{kind: cmdResize, arg: capacity})
}

// PendingCommands reports queued, undrained control commands.
func (p *Parallel) PendingCommands() int { return p.intake.Len() }

func (p *Parallel) drainIntakePar() {
	for {
		c, ok := p.intake.Poll()
		if !ok {
			return
		}
		switch c.kind {
		case cmdResize:
			p.cfg.LRUCapacity = c.arg
			for p.lru.Len() > c.arg {
				if err := p.evictOnePar(); err != nil {
					p.err = err
					return
				}
			}
		}
	}
}

// Drain flushes the write list and waits for every shard to quiesce.
func (p *Parallel) Drain() error {
	if p.err != nil {
		return p.err
	}
	p.drainIntakePar()
	if err := p.flushPar(); err != nil {
		p.err = err
		return err
	}
	p.barrier()
	if err := p.takeExecErr(); err != nil {
		p.err = err
	}
	return p.err
}

// Close drains, stops the shard executors, and reports any sticky error.
// The engine must not be used after Close.
func (p *Parallel) Close() error {
	if p.closed {
		return p.err
	}
	_ = p.Drain()
	p.stop.Store(true)
	p.wg.Wait()
	p.closed = true
	if p.err == nil {
		p.err = p.takeExecErr()
	}
	return p.err
}

// ---------------------------------------------------------------------------
// Introspection (valid between operations; authoritative after Close).
// ---------------------------------------------------------------------------

// Stats merges the per-shard counter cells, exactly like Monitor.Stats.
// InFlightWaits is always zero: it counts a virtual-time race the parallel
// engine does not model.
func (p *Parallel) Stats() Stats {
	var total Stats
	for i := range p.cells {
		c := &p.cells[i]
		total.Faults += c.Faults
		total.FirstTouch += c.FirstTouch
		total.RemoteReads += c.RemoteReads
		total.Steals += c.Steals
		total.Evictions += c.Evictions
		total.SyncWrites += c.SyncWrites
		total.Flushes += c.Flushes
		total.Prefetches += c.Prefetches
		total.ZeroElided += c.ZeroElided
		total.CleanDropped += c.CleanDropped
		total.ZeroRefills += c.ZeroRefills
	}
	return total
}

// WritebackStats mirrors writeback.Snapshot. Waits is always zero (an
// in-flight wait is purely a virtual-time event).
func (p *Parallel) WritebackStats() WritebackStats {
	sizes := make(map[int]uint64, len(p.flushSizes))
	for k, v := range p.flushSizes {
		sizes[k] = v
	}
	return WritebackStats{
		Flushes:      p.wbFlushes,
		FlushedPages: p.wbFlushedPages,
		Steals:       p.wbSteals,
		Coalesced:    p.wbCoalesced,
		ZeroMarks:    p.wbZeroMarks,
		ZeroBitmap:   len(p.zeroMark),
		FlushSizes:   sizes,
	}
}

// ResidentAddrs returns the sorted resident set, as Monitor.ResidentAddrs.
func (p *Parallel) ResidentAddrs() []uint64 {
	addrs := make([]uint64, 0, len(p.lru.index))
	for addr := range p.lru.index {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// ResidentPages reports the resident-page count.
func (p *Parallel) ResidentPages() int { return p.lru.Len() }

// FootprintLimit reports the current LRU capacity bound.
func (p *Parallel) FootprintLimit() int { return p.cfg.LRUCapacity }

// Epoch reports the mapping-change epoch (advances exactly as the serial
// monitor's: one tick per install, eviction, or discard drop).
func (p *Parallel) Epoch() uint64 { return p.epoch }

// WPFaults reports clean-tracking write-protection faults.
func (p *Parallel) WPFaults() uint64 { return p.wpFaults }

// WriteListLen reports pages awaiting flush.
func (p *Parallel) WriteListLen() int { return p.queuedCount }

// Shards reports the executor count.
func (p *Parallel) Shards() int { return p.shards }

// TraceDigests returns the per-shard logical trace digests (FoldTraceEvent
// over the FAULT/EVICT/WB_CLEAN_DROP/WB_ZERO_ELIDE/WB_STEAL/PREFETCH event
// stream, folded at the sequencer's decision points).
func (p *Parallel) TraceDigests() []uint64 {
	out := make([]uint64, len(p.digs))
	copy(out, p.digs)
	return out
}

// PageData exposes a resident page's bytes after Close (oracle use only):
// nil data with ok=true means the page is a copy-on-write zero page.
func (p *Parallel) PageData(addr uint64) (data []byte, ok bool) {
	if !p.closed {
		return nil, false
	}
	w := &p.workers[p.idx.index(addr)]
	f, ok := w.frames[addr]
	return f, ok
}

// Err reports the engine's sticky error.
func (p *Parallel) Err() error {
	if p.err != nil {
		return p.err
	}
	return p.takeExecErr()
}

func (p *Parallel) failExec(err error) {
	p.execMu.Lock()
	if p.execErr == nil {
		p.execErr = err
		p.execFlag.Store(true)
	}
	p.execMu.Unlock()
}

func (p *Parallel) takeExecErr() error {
	if !p.execFlag.Load() {
		return nil
	}
	p.execMu.Lock()
	err := p.execErr
	p.execMu.Unlock()
	return err
}

// ---------------------------------------------------------------------------
// Shard executors: the physical side.
// ---------------------------------------------------------------------------

func (p *Parallel) runWorker(s int) {
	defer p.wg.Done()
	w := &p.workers[s]
	r := w.ring
	spins := 0
	for {
		it, ok := r.peek()
		if !ok {
			if p.stop.Load() {
				// Re-check after observing stop: emission strictly precedes
				// the stop store, so an empty ring now is empty for good.
				if _, ok := r.peek(); !ok {
					return
				}
				continue
			}
			spinYield(&spins)
			continue
		}
		spins = 0
		p.execItem(s, w, it)
		r.pop()
	}
}

// waitTurn blocks until every store operation stamped before seq completed.
func (p *Parallel) waitTurn(seq uint64) {
	spins := 0
	for p.storeDone.v.Load() != seq-1 {
		spinYield(&spins)
	}
}

// waitReads blocks until at least n read-class store operations have
// finished copying their results out (mutator-side of the read fence).
func (p *Parallel) waitReads(n uint64) {
	spins := 0
	for p.readsDone.v.Load() < n {
		spinYield(&spins)
	}
}

func waitFlag(f *atomic.Uint32) {
	spins := 0
	for f.Load() == 0 {
		spinYield(&spins)
	}
}

func (p *Parallel) deliver(s int, it *parItem, data []byte) {
	if p.onData != nil {
		p.onData(s, it.ticket, it.addr, data)
	}
}

func clearFrame(f []byte) { copy(f, parZeroFrame) }

// takeFrame removes addr's frame from the shard map, materialising a
// private zeroed frame for the copy-on-write sentinel.
func (p *Parallel) takeFrame(w *parWorker, addr uint64) []byte {
	f, ok := w.frames[addr]
	if !ok {
		p.failExec(fmt.Errorf("core: parallel shard lost frame for %#x", addr))
	}
	delete(w.frames, addr)
	if f == nil {
		f = p.frames.get()
		clearFrame(f)
	}
	return f
}

// takePending removes addr's pending write-list buffer from the shard map.
func (p *Parallel) takePending(w *parWorker, addr uint64) []byte {
	buf, ok := w.pending[addr]
	if !ok {
		p.failExec(fmt.Errorf("core: parallel shard lost pending buffer for %#x", addr))
		return nil
	}
	delete(w.pending, addr)
	return buf
}

// execItem runs one work item. Every path advances whatever counters or
// flags later items wait on (turns, read counts, job gates) even on error,
// so a failed run still drains instead of deadlocking; the first error is
// sticky and surfaces at the next sequencer boundary.
func (p *Parallel) execItem(s int, w *parWorker, it *parItem) {
	switch it.kind {
	case piAccessHit:
		f, ok := w.frames[it.addr]
		if !ok {
			p.failExec(fmt.Errorf("core: parallel hit on non-resident page %#x", it.addr))
			return
		}
		if f == nil {
			if it.write {
				// COW break: materialise a private zeroed frame.
				f = p.frames.get()
				clearFrame(f)
				w.frames[it.addr] = f
			} else {
				f = parZeroFrame
			}
		}
		p.deliver(s, it, f)

	case piZeroInstall:
		if it.write {
			f := p.frames.get()
			clearFrame(f)
			w.frames[it.addr] = f
			p.deliver(s, it, f)
		} else {
			w.frames[it.addr] = nil // COW zero sentinel
			p.deliver(s, it, parZeroFrame)
		}

	case piStealInstall:
		buf := p.takePending(w, it.addr)
		if buf == nil {
			buf = p.frames.get()
			clearFrame(buf)
		}
		w.frames[it.addr] = buf
		p.deliver(s, it, buf)

	case piPendingInstall:
		buf := p.takePending(w, it.addr)
		if buf == nil {
			buf = p.frames.get()
			clearFrame(buf)
		}
		w.frames[it.addr] = buf

	case piPendingDrop:
		p.frames.put(p.takePending(w, it.addr))

	case piRead:
		p.waitTurn(it.storeSeq)
		data, _, err := p.store.Get(0, it.key)
		p.storeDone.v.Add(1)
		f := p.frames.get()
		if err != nil {
			p.failExec(fmt.Errorf("core: read %v: %w", it.key, err))
			clearFrame(f)
		} else {
			copy(f, data)
		}
		p.readsDone.v.Add(1)
		w.frames[it.addr] = f
		p.deliver(s, it, f)

	case piSlotGet:
		p.waitTurn(it.storeSeq)
		data, _, err := p.store.Get(0, it.key)
		p.storeDone.v.Add(1)
		rj := it.rjob
		if err == nil {
			if !it.expect {
				p.failExec(fmt.Errorf("core: parallel read of %v present, predicted missing", it.key))
			}
			f := p.frames.get()
			copy(f, data)
			rj.pages[it.slot] = f
		} else {
			if it.expect {
				p.failExec(fmt.Errorf("core: parallel read %v: %w", it.key, err))
			}
			rj.pages[it.slot] = nil
		}
		p.readsDone.v.Add(1)
		rj.ready[it.slot].Store(1)

	case piMultiRead:
		rj := it.rjob
		p.waitTurn(it.storeSeq)
		pages, _, err := p.store.MultiGet(0, rj.keys[:rj.n])
		p.storeDone.v.Add(1)
		if err != nil {
			p.failExec(fmt.Errorf("core: batched read: %w", err))
		}
		for i := 0; i < rj.n; i++ {
			if err == nil && pages[i] != nil {
				f := p.frames.get()
				copy(f, pages[i])
				rj.pages[i] = f
			} else {
				rj.pages[i] = nil
			}
		}
		p.readsDone.v.Add(1)
		for i := 0; i < rj.n; i++ {
			rj.ready[i].Store(1)
		}

	case piReadConsume, piReadInstall:
		rj := it.rjob
		waitFlag(&rj.ready[it.slot])
		f := rj.pages[it.slot]
		rj.pages[it.slot] = nil
		if f == nil {
			p.failExec(fmt.Errorf("core: parallel install of %#x: predicted-present read returned nothing", it.addr))
			f = p.frames.get()
			clearFrame(f)
		}
		w.frames[it.addr] = f
		if it.kind == piReadConsume {
			p.deliver(s, it, f)
		}
		rj.consumers.Add(-1)

	case piReadDrop:
		rj := it.rjob
		waitFlag(&rj.ready[it.slot])
		p.frames.put(rj.pages[it.slot])
		rj.pages[it.slot] = nil
		rj.consumers.Add(-1)

	case piEvictDrop:
		f, ok := w.frames[it.addr]
		if !ok {
			p.failExec(fmt.Errorf("core: parallel evict-drop of %#x found no frame", it.addr))
			return
		}
		delete(w.frames, it.addr)
		p.frames.put(f)

	case piEvictEnqueue:
		w.pending[it.addr] = p.takeFrame(w, it.addr)

	case piEvictCoalesce:
		f := p.takeFrame(w, it.addr)
		p.frames.put(w.pending[it.addr])
		w.pending[it.addr] = f

	case piEvictSyncPut:
		f := p.takeFrame(w, it.addr)
		p.waitTurn(it.storeSeq)
		p.waitReads(it.readsBefore)
		_, err := p.store.Put(0, it.key, f)
		p.storeDone.v.Add(1)
		if err != nil {
			p.failExec(fmt.Errorf("core: write %v: %w", it.key, err))
		}
		p.frames.put(f)

	case piZeroCancel:
		p.frames.put(p.takePending(w, it.addr))

	case piContribute:
		fj := it.fjob
		fj.pages[it.slot] = p.takePending(w, it.addr)
		if fj.remaining.Add(-1) != 0 {
			return
		}
		// Last contributor: every slot is filled (the atomic decrement
		// chain orders the other shards' writes before this point).
		p.waitTurn(fj.storeSeq)
		p.waitReads(fj.readsBefore)
		_, err := p.store.MultiPut(0, fj.keys[:fj.n], fj.pages[:fj.n])
		p.storeDone.v.Add(1)
		if err != nil {
			p.failExec(fmt.Errorf("core: parallel flush: %w", err))
		}
		for i := 0; i < fj.n; i++ {
			p.frames.put(fj.pages[i])
			fj.pages[i] = nil
		}
		fj.done.Store(1)

	default:
		p.failExec(fmt.Errorf("core: unknown parallel work item %d", it.kind))
	}
}

// ---------------------------------------------------------------------------
// Trace digests.
// ---------------------------------------------------------------------------

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// FoldTraceEvent folds one logical trace event into a running per-shard
// digest (FNV-1a over name, page, and arg, chained through dig). Both
// parity sides use it: the parallel sequencer folds at its decision points,
// and the oracle folds the single-thread monitor's captured trace events
// (FAULT, EVICT, WB_CLEAN_DROP, WB_ZERO_ELIDE, WB_STEAL, PREFETCH) by
// worker. Equal digests mean each shard saw the identical event sequence.
func FoldTraceEvent(dig uint64, name string, page uint64, arg string) uint64 {
	h := dig ^ fnvOffset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime64
	}
	h ^= 0x1F
	h *= fnvPrime64
	for i := uint(0); i < 64; i += 8 {
		h ^= (page >> i) & 0xFF
		h *= fnvPrime64
	}
	h ^= 0x1F
	h *= fnvPrime64
	for i := 0; i < len(arg); i++ {
		h ^= uint64(arg[i])
		h *= fnvPrime64
	}
	return h
}

// ShardOf maps a page address to its owning shard for a given shard count —
// the same mapping the monitor's worker dispatch, the LRU segments, the
// write-list queues, and the parallel executors all share. Parity oracles
// use it to attribute per-fault observations (delivered page bytes) to the
// shard whose digest they join.
func ShardOf(addr uint64, shards int) int {
	return newShardIndexer(shards).index(addr)
}

// ParityTraceEvents lists the logical trace events that enter parity
// digests — exactly the events whose order within a shard is defined by
// program order rather than virtual time.
func ParityTraceEvents() []string {
	return []string{
		trace.EvFault, trace.EvEvict, trace.EvCleanDrop,
		trace.EvZeroElide, trace.EvSteal, trace.EvPrefetch,
	}
}
