package core

import (
	"errors"
	"testing"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/dram"
)

// FuzzWriteCoalesce model-checks the coalescing write-back engine against a
// flat model: an arbitrary interleaving of enqueue / coalesce / zero-mark /
// steal / discard / flush / drain ops over a small key space must leave the
// engine's queue, zero bitmap, and the backing store in exactly the state
// the flat model predicts. The first input byte picks the shard count, so
// the fuzzer also re-proves that sharding never changes what the store
// observes.
func FuzzWriteCoalesce(f *testing.F) {
	f.Add([]byte{0})
	// enqueue k0, coalesce k0, flush, steal-miss k0.
	f.Add([]byte{1, 0x00, 0, 0x00, 0, 0x04, 0, 0x03, 0})
	// zero-mark a queued key, take it, re-enqueue, drain.
	f.Add([]byte{2, 0x00, 1, 0x01, 1, 0x02, 1, 0x00, 1, 0x07, 0})
	// fill past the batch threshold to force an auto-flush, then discard.
	f.Add([]byte{3, 0x00, 0, 0x00, 1, 0x00, 2, 0x00, 3, 0x00, 4, 0x05, 4})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		const batchSize = 4
		const keySpace = 8
		shards := int(raw[0]%4) + 1
		store := dram.New(dram.DefaultParams(), 1)
		w := newShardedWriteback(store, batchSize, shards, nil)

		// Flat model: pending data (tag per key), zero marks, and the tag
		// the store must durably hold for each flushed key.
		pending := make(map[kvstore.Key]byte)
		zero := make(map[kvstore.Key]bool)
		durable := make(map[kvstore.Key]byte)
		modelFlush := func() {
			for k, tag := range pending {
				durable[k] = tag
			}
			for k := range pending {
				delete(pending, k)
			}
		}

		keyOf := func(arg byte) kvstore.Key {
			return kvstore.MakeKey(uint64(arg%keySpace)*kvstore.PageSize, 1)
		}
		pageOf := func(tag byte) []byte {
			p := make([]byte, kvstore.PageSize)
			p[0] = tag
			return p
		}

		now := time.Duration(0)
		ops := raw[1:]
		for step := 0; step+1 < len(ops); step += 2 {
			op, arg := ops[step], ops[step+1]
			key := keyOf(arg)
			now += time.Microsecond
			switch op % 8 {
			case 0: // enqueue (fresh or coalescing)
				tag := byte(step%250) + 1
				if _, err := w.Enqueue(now, key, key.Page(), pageOf(tag)); err != nil {
					t.Fatalf("step %d: enqueue: %v", step, err)
				}
				delete(zero, key)
				if _, queued := pending[key]; queued {
					pending[key] = tag // coalesced in place
				} else {
					pending[key] = tag
					if len(pending) >= batchSize {
						modelFlush()
					}
				}
			case 1: // zero-mark (cancels any queued write)
				w.NoteZero(key)
				delete(pending, key)
				zero[key] = true
			case 2: // take the zero mark
				if got, want := w.TakeZero(key), zero[key]; got != want {
					t.Fatalf("step %d: TakeZero = %v, model %v", step, got, want)
				}
				delete(zero, key)
			case 3: // steal
				data, ok := w.Steal(now, key)
				tag, want := pending[key]
				if ok != want {
					t.Fatalf("step %d: Steal ok = %v, model %v", step, ok, want)
				}
				if ok && data[0] != tag {
					t.Fatalf("step %d: stolen tag %d, model %d", step, data[0], tag)
				}
				delete(pending, key)
			case 4: // explicit flush
				if err := w.Flush(now); err != nil {
					t.Fatalf("step %d: flush: %v", step, err)
				}
				modelFlush()
			case 5: // discard a queued write
				_, want := pending[key]
				if got := w.DiscardQueued(key); got != want {
					t.Fatalf("step %d: DiscardQueued = %v, model %v", step, got, want)
				}
				delete(pending, key)
			case 6: // pure queries
				if got, want := w.HasZero(key), zero[key]; got != want {
					t.Fatalf("step %d: HasZero = %v, model %v", step, got, want)
				}
				if _, want := pending[key]; w.Queued(key) != want {
					t.Fatalf("step %d: Queued = %v, model %v", step, w.Queued(key), want)
				}
			case 7: // drain
				done, err := w.Drain(now)
				if err != nil {
					t.Fatalf("step %d: drain: %v", step, err)
				}
				if done < now {
					t.Fatalf("step %d: drain completed at %v before %v", step, done, now)
				}
				modelFlush()
			}
			if got, want := w.QueuedLen(), len(pending); got != want {
				t.Fatalf("step %d (op %d): QueuedLen = %d, model %d", step, op%8, got, want)
			}
		}

		// Quiesce and compare end states: queue empty, zero bitmap exact,
		// store holding exactly the model's durable tags.
		if _, err := w.Drain(now + time.Second); err != nil {
			t.Fatalf("final drain: %v", err)
		}
		modelFlush()
		if w.QueuedLen() != 0 {
			t.Fatalf("final QueuedLen = %d", w.QueuedLen())
		}
		if got, want := w.Snapshot().ZeroBitmap, len(zero); got != want {
			t.Fatalf("final zero bitmap %d entries, model %d", got, want)
		}
		late := now + time.Minute
		for k := 0; k < keySpace; k++ {
			key := keyOf(byte(k))
			data, _, err := store.Get(late, key)
			tag, stored := durable[key]
			if !stored {
				if !errors.Is(err, kvstore.ErrNotFound) {
					t.Fatalf("key %d: store holds a page the model never flushed (err=%v)", k, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("key %d: %v", k, err)
			}
			if data[0] != tag {
				t.Fatalf("key %d: store tag %d, model %d", k, data[0], tag)
			}
		}
	})
}
