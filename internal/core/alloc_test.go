package core

// Allocation regression harness for the Clio-style data-plane split: once a
// monitor reaches steady state, the per-fault hot path (fault decode, shard
// dispatch, LRU touch, store read, write-list append, flush) must not
// allocate at all. Every buffer and node it needs comes from the arenas and
// freelists warmed during the first cycles over the working set. Cold paths
// (first touch of a fresh page, pool growth) may allocate, but only a
// bounded amount per fault — never proportionally to faults served.
//
// The working set is sized at 2x the LRU capacity and scanned cyclically:
// in steady state every single touch is a store miss that evicts a dirty
// page, enqueues a write-back, and periodically flushes a MultiPut batch —
// the most allocation-prone path the data plane has.

import (
	"fmt"
	"testing"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/cluster"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/replicated"
)

// allocBenchBackends enumerates the store backends the harness pins. Each
// constructor returns a fresh store so monitors never share state.
func allocBenchBackends(tb testing.TB) map[string]func() kvstore.Store {
	tb.Helper()
	return map[string]func() kvstore.Store{
		"dram": func() kvstore.Store {
			return dram.New(dram.DefaultParams(), 9)
		},
		"replicated": func() kvstore.Store {
			st, err := replicated.New(
				dram.New(dram.DefaultParams(), 11),
				dram.New(dram.DefaultParams(), 12),
				dram.New(dram.DefaultParams(), 13),
			)
			if err != nil {
				tb.Fatal(err)
			}
			return st
		},
		"cluster": func() kvstore.Store {
			pool, err := cluster.New(cluster.Config{Nodes: 4, Replicas: 2, Seed: 7})
			if err != nil {
				tb.Fatal(err)
			}
			return pool
		},
	}
}

// allocHarness builds a monitor over the given store, warms it to steady
// state, and returns a closure running exactly one dirty fault per call.
func allocHarness(t *testing.T, store kvstore.Store, workers, pages int) func() {
	t.Helper()
	cfg := DefaultConfig(store, pages/2)
	cfg.Workers = workers
	m, err := NewMonitor(cfg, nil, "hyp-alloc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterRange(testBase, uint64(pages)*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	var now time.Duration
	i := 0
	touch := func() {
		_, done, err := m.Touch(now, addr(i%pages), true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		i++
	}
	// Warm-up: three full scans of the working set. The first seeds every
	// page (first touch), the rest cycle pages through evict/flush/read so
	// every pool, arena, and map reaches its steady-state size.
	for k := 0; k < 3*pages; k++ {
		touch()
	}
	return touch
}

// TestSteadyStateFaultsAllocFree pins the headline property: zero heap
// allocations per fault in steady state, even though every fault in this
// workload is a store miss with a dirty eviction behind it.
func TestSteadyStateFaultsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	for name, mk := range allocBenchBackends(t) {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				touch := allocHarness(t, mk(), workers, 128)
				if avg := testing.AllocsPerRun(500, touch); avg != 0 {
					t.Fatalf("steady-state fault allocates: %.2f allocs/fault, want 0", avg)
				}
			})
		}
	}
}

// TestFirstTouchAllocsBounded pins the cold path: a first touch of a fresh
// page may allocate (seen-set entry, pool growth, store insert) but the
// per-fault cost must stay small and flat — it must not scale with how many
// faults the monitor has already served.
func TestFirstTouchAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	store := dram.New(dram.DefaultParams(), 9)
	cfg := DefaultConfig(store, 64)
	m, err := NewMonitor(cfg, nil, "hyp-alloc-cold")
	if err != nil {
		t.Fatal(err)
	}
	const pages = 1 << 16
	if _, err := m.RegisterRange(testBase, uint64(pages)*PageSize, 4242); err != nil {
		t.Fatal(err)
	}
	var now time.Duration
	i := 0
	// Burn in past the early map-growth doublings so the measured window
	// reflects the flat per-fault cost, not amortised table rebuilds.
	for ; i < 4096; i++ {
		if _, done, err := m.Touch(now, addr(i), true); err != nil {
			t.Fatal(err)
		} else {
			now = done
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		_, done, err := m.Touch(now, addr(i), true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		i++
	})
	// With the seen-set bitmap and pre-sized page-index maps the cold path
	// measures 0.00 allocs/fault on a 64 Ki-page region; the bound of 2
	// leaves room only for rare amortised growth (store-side table doubling),
	// not for any per-fault allocation sneaking back in.
	if avg > 2 {
		t.Fatalf("first-touch fault allocates %.2f/fault, want <= 2", avg)
	}
}
