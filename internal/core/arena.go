package core

import "fluidmem/internal/kvstore"

// dataArena holds the data plane's pre-sized scratch buffers. Every slice
// here is reused across faults: a resolver takes it with [:0] (or
// re-lengths it), fills it, and stores the possibly-grown slice back, so
// after a short warm-up the fault hot path performs no heap allocation.
// Nothing in the arena survives a fault — every buffer is dead once the
// fault that filled it resolves, which is what makes the reuse safe.
type dataArena struct {
	// keys and idx are resolveBatchedRead's MultiGet request and its
	// candidate back-mapping.
	keys []kvstore.Key
	idx  []int
	// cands is gatherPrefetch's candidate list.
	cands []prefetchCandidate
	// gets is prefetch's split-read handles, parallel to cands.
	gets []kvstore.PendingGet
}
