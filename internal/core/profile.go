package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"fluidmem/internal/stats"
)

// Op names match the paper's Table I code paths.
const (
	OpUpdatePageCache = "UPDATE_PAGE_CACHE"
	OpInsertPageHash  = "INSERT_PAGE_HASH_NODE"
	OpInsertLRUCache  = "INSERT_LRU_CACHE_NODE"
	OpUffdZeroPage    = "UFFD_ZEROPAGE"
	OpUffdRemap       = "UFFD_REMAP"
	OpUffdCopy        = "UFFD_COPY"
	OpReadPage        = "READ_PAGE"
	OpWritePage       = "WRITE_PAGE"
	// Write-back engine extensions (not Table I rows): the eviction-path
	// zero scan and the clean-tracking write-protect ioctl.
	OpZeroScan         = "ZERO_SCAN"
	OpUffdWriteProtect = "UFFD_WRITEPROTECT"
)

// profileOrder is Table I's row order.
var profileOrder = []string{
	OpUpdatePageCache,
	OpInsertPageHash,
	OpInsertLRUCache,
	OpUffdZeroPage,
	OpUffdRemap,
	OpUffdCopy,
	OpReadPage,
	OpWritePage,
	OpZeroScan,
	OpUffdWriteProtect,
}

// Histogram geometry for OpProfile percentiles: fixed-width buckets sized
// for Table I's microsecond-scale code paths, with an overflow bucket whose
// observations report the tracked maximum.
const (
	profBucketWidth = 250 * time.Nanosecond
	profBuckets     = 2048 // covers [0, 512µs)
)

// OpProfile is a bounded per-code-path latency accumulator: exact mean and
// standard deviation from running sums, percentiles from a fixed-width
// histogram. Unlike a sample vector it holds O(1) memory regardless of run
// length and records without allocating — the property the fault hot path's
// allocation regression tests pin down.
type OpProfile struct {
	n          uint64
	sum, sumsq float64
	min, max   time.Duration
	buckets    [profBuckets + 1]uint64
}

// add records one observation.
func (o *OpProfile) add(d time.Duration) {
	if o.n == 0 || d < o.min {
		o.min = d
	}
	if d > o.max {
		o.max = d
	}
	o.n++
	f := float64(d)
	o.sum += f
	o.sumsq += f * f
	idx := int(d / profBucketWidth)
	if idx < 0 {
		idx = 0
	}
	if idx > profBuckets {
		idx = profBuckets
	}
	o.buckets[idx]++
}

// Len reports the number of observations.
func (o *OpProfile) Len() int { return int(o.n) }

// Mean returns the arithmetic mean, or 0 for an empty profile.
func (o *OpProfile) Mean() time.Duration {
	if o.n == 0 {
		return 0
	}
	return time.Duration(o.sum / float64(o.n))
}

// Stdev returns the population standard deviation, or 0 for fewer than two
// observations.
func (o *OpProfile) Stdev() time.Duration {
	if o.n < 2 {
		return 0
	}
	mean := o.sum / float64(o.n)
	v := o.sumsq/float64(o.n) - mean*mean
	if v < 0 {
		v = 0
	}
	return time.Duration(math.Sqrt(v))
}

// Min and Max return the extreme observations (0 when empty).
func (o *OpProfile) Min() time.Duration { return o.min }
func (o *OpProfile) Max() time.Duration { return o.max }

// Percentile returns the p-th percentile (p in [0, 100]) from the
// histogram: the upper edge of the bucket holding the rank, clamped to the
// tracked extremes. Overflow observations report the maximum.
func (o *OpProfile) Percentile(p float64) time.Duration {
	if o.n == 0 {
		return 0
	}
	if p <= 0 {
		return o.min
	}
	if p >= 100 {
		return o.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(o.n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i <= profBuckets; i++ {
		seen += o.buckets[i]
		if seen >= rank {
			if i == profBuckets {
				return o.max
			}
			v := time.Duration(i+1) * profBucketWidth
			if v > o.max {
				v = o.max
			}
			if v < o.min {
				v = o.min
			}
			return v
		}
	}
	return o.max
}

// Profiler records per-code-path latencies, reproducing FluidMem's built-in
// ability to profile individual components of the fault path (§VI-C). Each
// code path's accumulator is allocated on its first observation; recording
// after that is allocation-free, so the profiler may stay enabled on the
// data plane's hot path.
type Profiler struct {
	enabled bool
	samples map[string]*OpProfile
}

// NewProfiler returns a profiler; when disabled, Record is a no-op.
func NewProfiler(enabled bool) *Profiler {
	return &Profiler{enabled: enabled, samples: make(map[string]*OpProfile)}
}

// Record logs one op taking d.
func (p *Profiler) Record(op string, d time.Duration) {
	if !p.enabled {
		return
	}
	o, ok := p.samples[op]
	if !ok {
		o = &OpProfile{}
		p.samples[op] = o
	}
	o.add(d)
}

// Sample returns the profile for op, or nil if never recorded.
func (p *Profiler) Sample(op string) *OpProfile { return p.samples[op] }

// Table renders the Table I layout: avg / stdev / p99 per code path.
func (p *Profiler) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %8s %8s %10s\n", "Code path", "Avg", "Stdev", "99th", "n")
	rows := make([]string, 0, len(p.samples))
	seen := make(map[string]bool)
	for _, op := range profileOrder {
		if p.samples[op] != nil {
			rows = append(rows, op)
			seen[op] = true
		}
	}
	var extra []string
	for op := range p.samples {
		if !seen[op] {
			extra = append(extra, op)
		}
	}
	sort.Strings(extra)
	rows = append(rows, extra...)
	for _, op := range rows {
		s := p.samples[op]
		fmt.Fprintf(&b, "%-24s %8.2f %8.2f %8.2f %10d\n",
			op, stats.Micros(s.Mean()), stats.Micros(s.Stdev()), stats.Micros(s.Percentile(99)), s.Len())
	}
	return b.String()
}
