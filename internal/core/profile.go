package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fluidmem/internal/stats"
)

// Op names match the paper's Table I code paths.
const (
	OpUpdatePageCache = "UPDATE_PAGE_CACHE"
	OpInsertPageHash  = "INSERT_PAGE_HASH_NODE"
	OpInsertLRUCache  = "INSERT_LRU_CACHE_NODE"
	OpUffdZeroPage    = "UFFD_ZEROPAGE"
	OpUffdRemap       = "UFFD_REMAP"
	OpUffdCopy        = "UFFD_COPY"
	OpReadPage        = "READ_PAGE"
	OpWritePage       = "WRITE_PAGE"
	// Write-back engine extensions (not Table I rows): the eviction-path
	// zero scan and the clean-tracking write-protect ioctl.
	OpZeroScan         = "ZERO_SCAN"
	OpUffdWriteProtect = "UFFD_WRITEPROTECT"
)

// profileOrder is Table I's row order.
var profileOrder = []string{
	OpUpdatePageCache,
	OpInsertPageHash,
	OpInsertLRUCache,
	OpUffdZeroPage,
	OpUffdRemap,
	OpUffdCopy,
	OpReadPage,
	OpWritePage,
	OpZeroScan,
	OpUffdWriteProtect,
}

// Profiler records per-code-path latencies, reproducing FluidMem's built-in
// ability to profile individual components of the fault path (§VI-C).
type Profiler struct {
	enabled bool
	samples map[string]*stats.Sample
}

// NewProfiler returns a profiler; when disabled, Record is a no-op.
func NewProfiler(enabled bool) *Profiler {
	return &Profiler{enabled: enabled, samples: make(map[string]*stats.Sample)}
}

// Record logs one op taking d.
func (p *Profiler) Record(op string, d time.Duration) {
	if !p.enabled {
		return
	}
	s, ok := p.samples[op]
	if !ok {
		s = stats.NewSample(1024)
		p.samples[op] = s
	}
	s.Add(d)
}

// Sample returns the sample for op, or nil if never recorded.
func (p *Profiler) Sample(op string) *stats.Sample { return p.samples[op] }

// Table renders the Table I layout: avg / stdev / p99 per code path.
func (p *Profiler) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %8s %8s %10s\n", "Code path", "Avg", "Stdev", "99th", "n")
	rows := make([]string, 0, len(p.samples))
	seen := make(map[string]bool)
	for _, op := range profileOrder {
		if p.samples[op] != nil {
			rows = append(rows, op)
			seen[op] = true
		}
	}
	var extra []string
	for op := range p.samples {
		if !seen[op] {
			extra = append(extra, op)
		}
	}
	sort.Strings(extra)
	rows = append(rows, extra...)
	for _, op := range rows {
		s := p.samples[op]
		fmt.Fprintf(&b, "%-24s %8.2f %8.2f %8.2f %10d\n",
			op, stats.Micros(s.Mean()), stats.Micros(s.Stdev()), stats.Micros(s.Percentile(99)), s.Len())
	}
	return b.String()
}
