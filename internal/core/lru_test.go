package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLRUInsertOldest(t *testing.T) {
	l := newLRUList()
	if _, ok := l.Oldest(); ok {
		t.Fatal("empty list has an oldest entry")
	}
	l.Insert(10)
	l.Insert(20)
	l.Insert(30)
	if got, _ := l.Oldest(); got != 10 {
		t.Fatalf("Oldest = %d", got)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestLRURemove(t *testing.T) {
	l := newLRUList()
	l.Insert(1)
	l.Insert(2)
	if !l.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if l.Remove(1) {
		t.Fatal("double remove succeeded")
	}
	if got, _ := l.Oldest(); got != 2 {
		t.Fatalf("Oldest = %d", got)
	}
}

func TestLRUDoubleInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	l := newLRUList()
	l.Insert(1)
	l.Insert(1)
}

func TestLRUContains(t *testing.T) {
	l := newLRUList()
	l.Insert(7)
	if !l.Contains(7) || l.Contains(8) {
		t.Fatal("Contains wrong")
	}
}

// lruModel is the reference implementation the sharded list must match: a
// plain FIFO slice plus a membership map.
type lruModel struct {
	order []uint64
	in    map[uint64]bool
}

func newLRUModel() *lruModel { return &lruModel{in: make(map[uint64]bool)} }

func (m *lruModel) Insert(a uint64) {
	m.order = append(m.order, a)
	m.in[a] = true
}

func (m *lruModel) Remove(a uint64) bool {
	if !m.in[a] {
		return false
	}
	delete(m.in, a)
	for i, v := range m.order {
		if v == a {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return true
}

func (m *lruModel) Oldest() (uint64, bool) {
	if len(m.order) == 0 {
		return 0, false
	}
	return m.order[0], true
}

// TestLRUShardCountEquivalenceProperty drives random insert/remove/evict
// sequences through sharded lists of every width and a map-based model:
// Oldest, Len, and Contains must agree at every step — the structural half
// of the multi-worker pipeline's timing-only guarantee.
func TestLRUShardCountEquivalenceProperty(t *testing.T) {
	shardCounts := []int{1, 2, 3, 4, 8}
	f := func(raw []uint16) bool {
		model := newLRUModel()
		lists := make([]*lruList, len(shardCounts))
		for i, n := range shardCounts {
			lists[i] = newShardedLRU(n)
		}
		for _, r := range raw {
			// Addresses are page-aligned so sharding (addr/PageSize % n)
			// actually spreads entries; op chosen by the low bits.
			a := uint64(r>>2) * PageSize
			switch r & 3 {
			case 0, 1: // insert (if absent)
				if !model.in[a] {
					model.Insert(a)
					for _, l := range lists {
						l.Insert(a)
					}
				}
			case 2: // remove
				want := model.Remove(a)
				for _, l := range lists {
					if l.Remove(a) != want {
						return false
					}
				}
			case 3: // evict oldest
				want, wantOK := model.Oldest()
				if wantOK {
					model.Remove(want)
				}
				for _, l := range lists {
					got, ok := l.Oldest()
					if ok != wantOK || (ok && got != want) {
						return false
					}
					if ok {
						l.Remove(got)
					}
				}
			}
			for _, l := range lists {
				if l.Len() != len(model.order) || l.Contains(a) != model.in[a] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMonitorFootprintInvariantProperty drives random Touch/Discard/Resize
// mixes through monitors of every worker count: the capacity budget is
// global, so ResidentPages() must never exceed FootprintLimit() no matter
// how the per-worker LRU segments fill.
func TestMonitorFootprintInvariantProperty(t *testing.T) {
	f := func(raw []uint16, workerPick uint8) bool {
		cfg := dramCfg(8)
		cfg.Workers = []int{1, 2, 3, 4, 8}[int(workerPick)%5]
		m := newMonitor(t, cfg, 64)
		now := time.Duration(0)
		for i, r := range raw {
			a := addr(int(r>>3) % 64)
			switch {
			case r&7 == 6:
				m.Discard(a)
			case r&7 == 7:
				capacity := int(r>>3)%12 + 1
				var err error
				if now, err = m.Resize(now, capacity); err != nil {
					return false
				}
			default:
				_, done, err := m.Touch(now, a, i%2 == 0)
				if err != nil {
					return false
				}
				now = done
			}
			if m.ResidentPages() > m.FootprintLimit() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUFIFOOrderProperty(t *testing.T) {
	// Eviction order must equal insertion order regardless of interleaved
	// membership checks — the paper's "ordering does not change" semantics.
	f := func(raw []uint16) bool {
		l := newLRUList()
		var inserted []uint64
		seen := make(map[uint64]bool)
		for _, r := range raw {
			a := uint64(r)
			if seen[a] {
				continue
			}
			seen[a] = true
			l.Insert(a)
			inserted = append(inserted, a)
		}
		for _, want := range inserted {
			got, ok := l.Oldest()
			if !ok || got != want {
				return false
			}
			l.Remove(got)
		}
		return l.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
