package core

import (
	"testing"
	"testing/quick"
)

func TestLRUInsertOldest(t *testing.T) {
	l := newLRUList()
	if _, ok := l.Oldest(); ok {
		t.Fatal("empty list has an oldest entry")
	}
	l.Insert(10)
	l.Insert(20)
	l.Insert(30)
	if got, _ := l.Oldest(); got != 10 {
		t.Fatalf("Oldest = %d", got)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestLRURemove(t *testing.T) {
	l := newLRUList()
	l.Insert(1)
	l.Insert(2)
	if !l.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if l.Remove(1) {
		t.Fatal("double remove succeeded")
	}
	if got, _ := l.Oldest(); got != 2 {
		t.Fatalf("Oldest = %d", got)
	}
}

func TestLRUDoubleInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	l := newLRUList()
	l.Insert(1)
	l.Insert(1)
}

func TestLRUContains(t *testing.T) {
	l := newLRUList()
	l.Insert(7)
	if !l.Contains(7) || l.Contains(8) {
		t.Fatal("Contains wrong")
	}
}

func TestLRUFIFOOrderProperty(t *testing.T) {
	// Eviction order must equal insertion order regardless of interleaved
	// membership checks — the paper's "ordering does not change" semantics.
	f := func(raw []uint16) bool {
		l := newLRUList()
		var inserted []uint64
		seen := make(map[uint64]bool)
		for _, r := range raw {
			a := uint64(r)
			if seen[a] {
				continue
			}
			seen[a] = true
			l.Insert(a)
			inserted = append(inserted, a)
		}
		for _, want := range inserted {
			got, ok := l.Oldest()
			if !ok || got != want {
				return false
			}
			l.Remove(got)
		}
		return l.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
