package paralleltest

import (
	"fmt"
	"runtime"
	"testing"

	"fluidmem/internal/core/shardtest"
)

// TestParallelMatchesSerial is the tentpole oracle: for every shardtest
// workload and several shard counts, the multi-goroutine engine must
// reproduce the single-thread virtual-time monitor's logical end state
// exactly — per-shard delivered-data digests, per-shard trace digests,
// resident set, epoch, WP faults, merged monitor counters, write-back
// counters, and store op counts.
func TestParallelMatchesSerial(t *testing.T) {
	for _, wl := range shardtest.Workloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			const seed = 42
			ops := GenOps(wl, seed)
			for _, shards := range []int{1, 2, 4} {
				ref := RunSerial(t, wl, shards, seed, ops)
				got := RunParallel(t, wl, shards, seed, ops)
				Equal(t, fmt.Sprintf("%s/shards=%d", wl.Name, shards), ref, got)
			}
		})
	}
}

// TestParallelMatchesSerialWideShards pushes the shard count past the
// candidate window and the batch size interactions (8 executors over 20-24
// LRU slots) on the two widest-surface workloads.
func TestParallelMatchesSerialWideShards(t *testing.T) {
	for _, name := range []string{"ramcloud-batched-prefetch", "memcached-writeback-batched-churn"} {
		for _, wl := range shardtest.Workloads() {
			if wl.Name != name {
				continue
			}
			wl := wl
			t.Run(wl.Name, func(t *testing.T) {
				const seed = 11
				ops := GenOps(wl, seed)
				ref := RunSerial(t, wl, 8, seed, ops)
				got := RunParallel(t, wl, 8, seed, ops)
				Equal(t, wl.Name+"/shards=8", ref, got)
			})
		}
	}
}

// TestParallelRepeatableAcrossGOMAXPROCS pins scheduling independence: the
// engine's outcome must not depend on how many OS threads actually run the
// shard goroutines. GOMAXPROCS=1 forces full interleaving through the
// cooperative yields; higher values allow real preemption.
func TestParallelRepeatableAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, wl := range shardtest.Workloads()[:2] {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			const seed = 7
			ops := GenOps(wl, seed)
			ref := RunSerial(t, wl, 4, seed, ops)
			for _, gmp := range []int{1, 2, 4} {
				runtime.GOMAXPROCS(gmp)
				got := RunParallel(t, wl, 4, seed, ops)
				runtime.GOMAXPROCS(prev)
				Equal(t, fmt.Sprintf("%s/GOMAXPROCS=%d", wl.Name, gmp), ref, got)
			}
		})
	}
}

// TestParallelOracleSeesEveryPath guards the oracle against vacuity: the
// parallel replays must actually drive the paths whose determinism they
// claim to prove (clean drops, zero elision and refills, steals, prefetch,
// batch flushes, sync writes).
func TestParallelOracleSeesEveryPath(t *testing.T) {
	byName := map[string]shardtest.Workload{}
	for _, wl := range shardtest.Workloads() {
		byName[wl.Name] = wl
	}
	run := func(name string, shards int) Outcome {
		wl := byName[name]
		return RunParallel(t, wl, shards, 42, GenOps(wl, 42))
	}

	heavy := run("ramcloud-writeback-writeheavy", 4)
	if heavy.Stats.CleanDropped == 0 {
		t.Errorf("write-heavy replay never clean-dropped: %+v", heavy.Stats)
	}
	if heavy.Store.MultiPuts == 0 {
		t.Errorf("write-heavy replay never flushed a batch: %+v", heavy.Store)
	}
	if heavy.Stats.Steals == 0 {
		t.Errorf("write-heavy replay never stole a pending write: %+v", heavy.Stats)
	}

	zero := run("ramcloud-writeback-zeroheavy", 4)
	if zero.Stats.ZeroElided == 0 || zero.Stats.ZeroRefills == 0 {
		t.Errorf("zero-heavy replay never elided/refilled: %+v", zero.Stats)
	}

	batched := run("ramcloud-batched-prefetch", 4)
	if batched.Stats.Prefetches == 0 || batched.Store.MultiGets == 0 {
		t.Errorf("batched replay never prefetched via MultiGet: %+v %+v", batched.Stats, batched.Store)
	}

	pipelined := run("memcached-prefetch-churn", 4)
	if pipelined.Stats.Prefetches == 0 {
		t.Errorf("pipelined replay never prefetched: %+v", pipelined.Stats)
	}

	sync := run("dram-sync-baseline", 4)
	if sync.Stats.SyncWrites == 0 {
		t.Errorf("baseline replay never wrote synchronously: %+v", sync.Stats)
	}
}

// TestParallelSeedsDiverge guards the digest machinery itself: different
// seeds must produce different data and trace digests, or the parity
// comparisons compare nothing.
func TestParallelSeedsDiverge(t *testing.T) {
	wl := shardtest.Workloads()[0]
	a := RunParallel(t, wl, 4, 1, GenOps(wl, 1))
	b := RunParallel(t, wl, 4, 2, GenOps(wl, 2))
	same := true
	for s := range a.DataDigests {
		if a.DataDigests[s] != b.DataDigests[s] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical data digests; oracle is vacuous")
	}
	same = true
	for s := range a.TraceDigests {
		if a.TraceDigests[s] != b.TraceDigests[s] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical trace digests; oracle is vacuous")
	}
}
