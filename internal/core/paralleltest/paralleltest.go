// Package paralleltest is the parity oracle for the monitor's parallel
// execution mode (core.Parallel): the single-thread, virtual-time monitor is
// the determinism reference, and the multi-goroutine engine must reproduce
// its logical end state exactly — page contents, store traffic, resident
// set, merged counters, and per-shard trace digests — for the same workload.
//
// The harness precomputes a seed-driven op list (the same generator shape as
// shardtest.Replay, so the workload table is shared), replays it against
// both engines, and compares Outcomes. Virtual-time-only quantities
// (Stats.InFlightWaits, WritebackStats.Waits) are excluded, exactly as the
// worker-count oracle excludes them: the parallel engine has no virtual
// clock to race on.
package paralleltest

import (
	"sync"
	"testing"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/core"
	"fluidmem/internal/core/shardtest"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/trace"
)

// pid is the process the harness registers, as in shardtest.
const pid = 77

// OpKind discriminates replay operations.
type OpKind uint8

const (
	// OpTouch is a guest access (read or write).
	OpTouch OpKind = iota
	// OpDiscard is a balloon discard.
	OpDiscard
	// OpResize changes the LRU capacity.
	OpResize
	// OpDrain flushes the write list and quiesces.
	OpDrain
)

// Op is one precomputed replay operation. Touch ops carry the byte to write
// (writes always set data[0] = Tag) and, when Check is set, the byte the
// page must still hold — the data-integrity assertion both engines must
// pass identically.
type Op struct {
	Kind     OpKind
	Addr     uint64
	Write    bool
	Tag      byte
	Check    bool
	WantTag  byte
	Capacity int
}

// GenOps precomputes wl's op sequence for the given seed: the same RNG
// structure as shardtest.Replay (mixed random + scan traffic, optional
// discards and resizes, seed-driven write tags), followed by a drain, a
// verification sweep over every tagged page in page order, and a final
// drain so both engines finish fully quiesced.
func GenOps(wl shardtest.Workload, seed uint64) []Op {
	capacity := wl.NewConfig(seed).LRUCapacity
	rng := clock.NewRand(seed ^ 0xd1ce_0f_ca11)
	tags := make(map[int]byte)
	ops := make([]Op, 0, wl.Steps+wl.Pages+2)
	scan := 0
	for i := 0; i < wl.Steps; i++ {
		if wl.Resize && rng.Float64() < 0.01 {
			c := capacity
			if rng.Intn(2) == 0 {
				c = capacity/2 + 1
			}
			ops = append(ops, Op{Kind: OpResize, Capacity: c})
			continue
		}
		var page int
		if rng.Float64() < 0.25 {
			page = scan % wl.Pages
			scan++
		} else {
			page = rng.Intn(wl.Pages)
		}
		addr := shardtest.Base + uint64(page)*core.PageSize
		if wl.Discard && rng.Float64() < 0.02 {
			ops = append(ops, Op{Kind: OpDiscard, Addr: addr})
			delete(tags, page)
			continue
		}
		var write bool
		switch {
		case wl.WriteProb < 0:
			write = false
		case wl.WriteProb > 0:
			write = rng.Float64() < wl.WriteProb
		default:
			write = rng.Intn(3) == 0
		}
		op := Op{Kind: OpTouch, Addr: addr, Write: write}
		if tag, seen := tags[page]; seen {
			op.Check, op.WantTag = true, tag
		}
		if write {
			tag := byte(i%250 + 1)
			if wl.ZeroWrites && rng.Intn(2) == 0 {
				tag = 0
			}
			op.Tag = tag
			tags[page] = tag
		}
		ops = append(ops, op)
	}
	ops = append(ops, Op{Kind: OpDrain})
	for page := 0; page < wl.Pages; page++ {
		tag, seen := tags[page]
		if !seen {
			continue
		}
		ops = append(ops, Op{
			Kind: OpTouch, Addr: shardtest.Base + uint64(page)*core.PageSize,
			Check: true, WantTag: tag,
		})
	}
	return append(ops, Op{Kind: OpDrain})
}

// Outcome is everything the parity contract compares.
type Outcome struct {
	// DataDigests folds, per shard, the full byte contents delivered for
	// every touch, in per-shard delivery order (= per-shard program order).
	DataDigests []uint64
	// TraceDigests folds, per shard, the logical trace-event sequence
	// (core.ParityTraceEvents) via core.FoldTraceEvent.
	TraceDigests []uint64
	// Resident is the sorted final resident set.
	Resident []uint64
	// Epoch is the logical mutation counter.
	Epoch uint64
	// WPFaults counts clean-tracking write-protection faults.
	WPFaults uint64
	// Stats is the merged monitor counter snapshot (InFlightWaits zeroed).
	Stats core.Stats
	// Writeback is the write-list engine snapshot (Waits zeroed).
	Writeback core.WritebackStats
	// Store is the backend's traffic counter snapshot.
	Store kvstore.Stats
}

// foldData chains a page's bytes into a shard digest (FNV-1a with a length
// separator, chained through dig like core.FoldTraceEvent).
func foldData(dig uint64, data []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := dig ^ uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	h ^= 0x1F
	h *= prime
	return h
}

// RunSerial replays ops against the single-thread virtual-time monitor with
// the given worker count and captures the reference Outcome. Trace-event
// digests come from a full tracer, filtered to the parity event set and
// folded per worker; data digests fold each Touch's returned bytes into the
// owning worker's digest.
func RunSerial(tb testing.TB, wl shardtest.Workload, shards int, seed uint64, ops []Op) Outcome {
	tb.Helper()
	cfg := wl.NewConfig(seed)
	cfg.Workers = shards
	cfg.Seed = seed
	store := cfg.Store
	tr := trace.New(true)
	cfg.Trace = tr
	m, err := core.NewMonitor(cfg, nil, "paralleltest")
	if err != nil {
		tb.Fatalf("%s/serial: new monitor: %v", wl.Name, err)
	}
	if _, err := m.RegisterRange(shardtest.Base, uint64(wl.Pages)*core.PageSize, pid); err != nil {
		tb.Fatalf("%s/serial: register: %v", wl.Name, err)
	}
	dataDigs := make([]uint64, shards)
	now := time.Duration(0)
	for i, op := range ops {
		switch op.Kind {
		case OpResize:
			if now, err = m.Resize(now, op.Capacity); err != nil {
				tb.Fatalf("%s/serial op %d: resize: %v", wl.Name, i, err)
			}
		case OpDiscard:
			m.Discard(op.Addr)
		case OpDrain:
			if now, err = m.Drain(now); err != nil {
				tb.Fatalf("%s/serial op %d: drain: %v", wl.Name, i, err)
			}
		case OpTouch:
			data, done, err := m.Touch(now, op.Addr, op.Write)
			if err != nil {
				tb.Fatalf("%s/serial op %d: touch %#x: %v", wl.Name, i, op.Addr, err)
			}
			if op.Check && data[0] != op.WantTag {
				tb.Fatalf("%s/serial op %d: page %#x corrupted: got %d want %d",
					wl.Name, i, op.Addr, data[0], op.WantTag)
			}
			s := core.ShardOf(op.Addr, shards)
			dataDigs[s] = foldData(dataDigs[s], data)
			if op.Write {
				data[0] = op.Tag
			}
			now = done + time.Microsecond
		}
		if m.ResidentPages() > m.FootprintLimit() {
			tb.Fatalf("%s/serial op %d: resident %d exceeds limit %d",
				wl.Name, i, m.ResidentPages(), m.FootprintLimit())
		}
	}

	parity := make(map[string]bool, 8)
	for _, name := range core.ParityTraceEvents() {
		parity[name] = true
	}
	traceDigs := make([]uint64, shards)
	for _, ev := range tr.Events() {
		if !parity[ev.Name] {
			continue
		}
		traceDigs[ev.Worker] = core.FoldTraceEvent(traceDigs[ev.Worker], ev.Name, ev.Page, ev.Arg)
	}

	stats := m.Stats()
	stats.InFlightWaits = 0
	wb := m.WritebackStats()
	wb.Waits = 0
	return Outcome{
		DataDigests:  dataDigs,
		TraceDigests: traceDigs,
		Resident:     m.ResidentAddrs(),
		Epoch:        m.Epoch(),
		WPFaults:     m.WPFaults(),
		Stats:        stats,
		Writeback:    wb,
		Store:        store.Stats(),
	}
}

// RunParallel replays ops against the multi-goroutine engine and captures
// its Outcome. Tag checks and tag writes happen inside the onData callback,
// on the owning shard's goroutine, in per-shard ticket order — the parallel
// analogue of acting on Touch's return value.
func RunParallel(tb testing.TB, wl shardtest.Workload, shards int, seed uint64, ops []Op) Outcome {
	tb.Helper()
	cfg := wl.NewConfig(seed)
	cfg.Workers = shards
	cfg.Seed = seed
	store := cfg.Store

	// tinfos[t] describes touch #t; tickets are issued densely in touch
	// order, so the callback indexes it directly. Fully built before the
	// engine starts: the executors only ever read it.
	type tinfo struct {
		tag, want    byte
		write, check bool
	}
	var tinfos []tinfo
	for _, op := range ops {
		if op.Kind == OpTouch {
			tinfos = append(tinfos, tinfo{tag: op.Tag, want: op.WantTag, write: op.Write, check: op.Check})
		}
	}

	dataDigs := make([]uint64, shards)
	var cbMu sync.Mutex
	var cbErrs []string
	onData := func(shard int, ticket, addr uint64, data []byte) {
		ti := &tinfos[ticket]
		if ti.check && data[0] != ti.want {
			cbMu.Lock()
			cbErrs = append(cbErrs, "page corrupted")
			cbMu.Unlock()
		}
		dataDigs[shard] = foldData(dataDigs[shard], data)
		if ti.write {
			data[0] = ti.tag
		}
	}

	p, err := core.NewParallel(cfg, nil, "paralleltest", onData)
	if err != nil {
		tb.Fatalf("%s/parallel: new engine: %v", wl.Name, err)
	}
	if err := p.RegisterRange(shardtest.Base, uint64(wl.Pages)*core.PageSize, pid); err != nil {
		tb.Fatalf("%s/parallel: register: %v", wl.Name, err)
	}
	limit := cfg.LRUCapacity
	for i, op := range ops {
		switch op.Kind {
		case OpResize:
			if err := p.Resize(op.Capacity); err != nil {
				tb.Fatalf("%s/parallel op %d: resize: %v", wl.Name, i, err)
			}
			limit = op.Capacity
		case OpDiscard:
			p.Discard(op.Addr)
		case OpDrain:
			if err := p.Drain(); err != nil {
				tb.Fatalf("%s/parallel op %d: drain: %v", wl.Name, i, err)
			}
		case OpTouch:
			if err := p.Touch(op.Addr, op.Write); err != nil {
				tb.Fatalf("%s/parallel op %d: touch %#x: %v", wl.Name, i, op.Addr, err)
			}
		}
		if p.ResidentPages() > limit {
			tb.Fatalf("%s/parallel op %d: resident %d exceeds limit %d",
				wl.Name, i, p.ResidentPages(), limit)
		}
	}
	if err := p.Drain(); err != nil {
		tb.Fatalf("%s/parallel: drain: %v", wl.Name, err)
	}
	// Scalars are sequencer-owned: capture before Close (the store snapshot
	// too — Close's internal drain is a no-op after the explicit one).
	stats := p.Stats()
	stats.InFlightWaits = 0
	out := Outcome{
		TraceDigests: p.TraceDigests(),
		Resident:     p.ResidentAddrs(),
		Epoch:        p.Epoch(),
		WPFaults:     p.WPFaults(),
		Stats:        stats,
		Writeback:    p.WritebackStats(),
		Store:        store.Stats(),
	}
	if err := p.Close(); err != nil {
		tb.Fatalf("%s/parallel: close: %v", wl.Name, err)
	}
	if len(cbErrs) > 0 {
		tb.Fatalf("%s/parallel: %d data-integrity failures in delivery callbacks", wl.Name, len(cbErrs))
	}
	// Post-Close frame audit: every resident page must still have a frame on
	// its shard (nil = the copy-on-write zero page, which is legal).
	for _, addr := range out.Resident {
		if _, ok := p.PageData(addr); !ok {
			tb.Fatalf("%s/parallel: resident page %#x has no frame after close", wl.Name, addr)
		}
	}
	// Executors have joined (Close waits): their digest cells are ours now.
	out.DataDigests = dataDigs
	return out
}

// Equal asserts that the parallel Outcome matches the serial reference in
// every field of the parity contract, reporting each divergence separately.
func Equal(tb testing.TB, label string, ref, got Outcome) {
	tb.Helper()
	for s := range ref.DataDigests {
		if ref.DataDigests[s] != got.DataDigests[s] {
			tb.Errorf("%s: shard %d delivered-data digest diverged: %#x vs %#x",
				label, s, ref.DataDigests[s], got.DataDigests[s])
		}
	}
	for s := range ref.TraceDigests {
		if ref.TraceDigests[s] != got.TraceDigests[s] {
			tb.Errorf("%s: shard %d trace digest diverged: %#x vs %#x",
				label, s, ref.TraceDigests[s], got.TraceDigests[s])
		}
	}
	if len(ref.Resident) != len(got.Resident) {
		tb.Errorf("%s: resident set size diverged: %d vs %d", label, len(ref.Resident), len(got.Resident))
	} else {
		for i := range ref.Resident {
			if ref.Resident[i] != got.Resident[i] {
				tb.Errorf("%s: resident[%d] diverged: %#x vs %#x", label, i, ref.Resident[i], got.Resident[i])
				break
			}
		}
	}
	if ref.Epoch != got.Epoch {
		tb.Errorf("%s: epoch diverged: %d vs %d", label, ref.Epoch, got.Epoch)
	}
	if ref.WPFaults != got.WPFaults {
		tb.Errorf("%s: WP faults diverged: %d vs %d", label, ref.WPFaults, got.WPFaults)
	}
	if ref.Stats != got.Stats {
		tb.Errorf("%s: monitor stats diverged:\n  ref %+v\n  got %+v", label, ref.Stats, got.Stats)
	}
	if !writebackEqual(ref.Writeback, got.Writeback) {
		tb.Errorf("%s: writeback stats diverged:\n  ref %+v\n  got %+v", label, ref.Writeback, got.Writeback)
	}
	if ref.Store != got.Store {
		tb.Errorf("%s: store op counts diverged:\n  ref %+v\n  got %+v", label, ref.Store, got.Store)
	}
}

func writebackEqual(a, b core.WritebackStats) bool {
	if a.Flushes != b.Flushes || a.FlushedPages != b.FlushedPages ||
		a.Steals != b.Steals || a.Waits != b.Waits ||
		a.Coalesced != b.Coalesced || a.ZeroMarks != b.ZeroMarks ||
		a.ZeroBitmap != b.ZeroBitmap || len(a.FlushSizes) != len(b.FlushSizes) {
		return false
	}
	for k, v := range a.FlushSizes {
		if b.FlushSizes[k] != v {
			return false
		}
	}
	return true
}
