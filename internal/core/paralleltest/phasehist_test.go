package paralleltest

import (
	"reflect"
	"testing"
	"time"

	"fluidmem/internal/core"
	"fluidmem/internal/core/shardtest"
	"fluidmem/internal/stats"
	"fluidmem/internal/trace"
)

// synthFaultDur derives a deterministic fault latency from the page address
// alone, so the multiset of observations depends only on the op stream —
// never on which shard goroutine delivered the page or when.
func synthFaultDur(addr uint64) time.Duration {
	return time.Duration(1+(addr>>12)*2654435761%4096) * time.Microsecond
}

// phaseWindow summarises one epoch window of the fault-phase histogram —
// exactly the quantities the host's SLO accounting reads off a windowed
// PhaseHistogram delta.
type phaseWindow struct {
	Count         uint64
	P50, P99, Max time.Duration
	Mean          time.Duration
}

// TestPhaseHistogramWindowsUnderParallel proves the windowed-delta leg of the
// histogram algebra against the LIVE multi-goroutine engine: per-shard
// delivery callbacks observe synthetic fault latencies, those per-worker
// cells feed a Tracer at drain barriers (the Tracer itself is single-threaded
// by contract), and consecutive cumulative PhaseHistogram snapshots are
// differenced with stats.Histogram.Sub. Every window — count, percentiles,
// mean, carried max — must be identical at every shard count: repartitioning
// observations across worker cells can never move latency between epoch
// windows.
func TestPhaseHistogramWindowsUnderParallel(t *testing.T) {
	wl := shardtest.Workloads()[0]
	const seed = 7
	ops := GenOps(wl, seed)
	touches := 0
	for _, op := range ops {
		if op.Kind == OpTouch {
			touches++
		}
	}
	if touches < 400 {
		t.Fatalf("workload %s too small for windowing: %d touches", wl.Name, touches)
	}
	windowEvery := touches / 4

	run := func(shards int) []phaseWindow {
		cfg := wl.NewConfig(seed)
		cfg.Workers = shards
		cfg.Seed = seed
		// Executors append to their own shard's buffer concurrently; the main
		// goroutine reads the buffers only behind Drain barriers.
		bufs := make([][]time.Duration, shards)
		onData := func(shard int, ticket, addr uint64, data []byte) {
			bufs[shard] = append(bufs[shard], synthFaultDur(addr))
		}
		p, err := core.NewParallel(cfg, nil, "phasehist", onData)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if err := p.RegisterRange(shardtest.Base, uint64(wl.Pages)*core.PageSize, pid); err != nil {
			t.Fatalf("shards=%d: register: %v", shards, err)
		}

		tr := trace.New(false)
		var prev stats.Histogram
		var wins []phaseWindow
		closeWindow := func() {
			if err := p.Drain(); err != nil {
				t.Fatalf("shards=%d: drain: %v", shards, err)
			}
			for shard, ds := range bufs {
				for _, d := range ds {
					tr.Observe(trace.EvFault, shard, d)
				}
				bufs[shard] = bufs[shard][:0]
			}
			cum := tr.PhaseHistogram(trace.EvFault)
			win := cum.Sub(prev)
			prev = cum
			wins = append(wins, phaseWindow{
				Count: win.Count(), P50: win.Percentile(50), P99: win.Percentile(99),
				Max: win.Max(), Mean: win.Mean(),
			})
		}

		seen := 0
		for i, op := range ops {
			switch op.Kind {
			case OpResize:
				if err := p.Resize(op.Capacity); err != nil {
					t.Fatalf("shards=%d op %d: resize: %v", shards, i, err)
				}
			case OpDiscard:
				p.Discard(op.Addr)
			case OpDrain:
				if err := p.Drain(); err != nil {
					t.Fatalf("shards=%d op %d: drain: %v", shards, i, err)
				}
			case OpTouch:
				if err := p.Touch(op.Addr, op.Write); err != nil {
					t.Fatalf("shards=%d op %d: touch: %v", shards, i, err)
				}
				seen++
				if seen%windowEvery == 0 {
					closeWindow()
				}
			}
		}
		closeWindow()
		if err := p.Close(); err != nil {
			t.Fatalf("shards=%d: close: %v", shards, err)
		}
		return wins
	}

	ref := run(1)
	if len(ref) < 4 {
		t.Fatalf("only %d windows", len(ref))
	}
	var total uint64
	for _, w := range ref {
		total += w.Count
	}
	if total != uint64(touches) {
		t.Fatalf("windows cover %d observations, want %d", total, touches)
	}
	for _, shards := range []int{2, 4, 8} {
		if got := run(shards); !reflect.DeepEqual(got, ref) {
			t.Fatalf("shards=%d moved latency between windows:\nref %+v\ngot %+v", shards, ref, got)
		}
	}
}
