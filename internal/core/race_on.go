//go:build race

package core

// raceEnabled reports that this binary was built with -race. The allocation
// regression tests skip under the race detector: its instrumentation
// allocates on paths that are allocation-free in a normal build.
const raceEnabled = true
