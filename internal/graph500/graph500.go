// Package graph500 implements the Graph500 benchmark's sequential reference
// flow (§VI-D1): Kronecker (R-MAT) edge generation, CSR graph construction
// inside guest memory, repeated breadth-first searches from random roots,
// parent-tree validation, and TEPS reporting as the harmonic mean across
// roots — the exact metric Figure 4 plots.
//
// The graph's large arrays (adjacency, offsets, parents) live in simulated
// VM memory, so every irregular BFS access exercises the paging path under
// test. The search queue is host-side bookkeeping, mirroring the reference
// implementation's small, cache-resident frontier state.
package graph500

import (
	"fmt"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/stats"
	"fluidmem/internal/vm"
)

// Kronecker initiator probabilities from the Graph500 specification.
const (
	initiatorA = 0.57
	initiatorB = 0.19
	initiatorC = 0.19
	// initiatorD = 0.05 (implied)
)

// Config parametrises a run.
type Config struct {
	// Scale is log2 of the vertex count (Graph500 scale factor).
	Scale int
	// EdgeFactor is edges per vertex (Graph500 default 16).
	EdgeFactor int
	// Roots is the number of BFS traversals (the paper runs 64).
	Roots int
	// CPUPerEdge is the compute cost charged per traversed edge, modelling
	// the processor work between memory stalls.
	CPUPerEdge time.Duration
	// Seed drives generation and root selection.
	Seed uint64
	// Validate runs the parent-tree validation after each BFS.
	Validate bool
}

// DefaultConfig mirrors the benchmark defaults at the given scale.
func DefaultConfig(scale int) Config {
	return Config{
		Scale:      scale,
		EdgeFactor: 16,
		Roots:      64,
		CPUPerEdge: 18 * time.Nanosecond,
		Seed:       1,
		Validate:   false,
	}
}

// Result summarises a run.
type Result struct {
	// Vertices and Edges describe the generated graph.
	Vertices int
	Edges    int
	// TEPS holds traversed-edges-per-second for each BFS root.
	TEPS []float64
	// HarmonicMeanTEPS is the Graph500 reporting metric.
	HarmonicMeanTEPS float64
	// ConstructionTime is the (untimed-by-the-metric) graph build cost.
	ConstructionTime time.Duration
	// TraversalTime is total virtual time across all BFS runs.
	TraversalTime time.Duration
	// MemoryBytes is the guest memory held by the graph structures.
	MemoryBytes uint64
}

// MemoryBytes reports the guest footprint of a graph at scale/edgefactor:
// CSR offsets (V+1 words), adjacency (2E words, both directions), and the
// parent array (V words), each rounded to page granularity as allocated.
// The harness uses it to size working sets.
func MemoryBytes(scale, edgeFactor int) uint64 {
	v := uint64(1) << uint(scale)
	e := v * uint64(edgeFactor)
	pageRound := func(b uint64) uint64 {
		return (b + vm.PageSize - 1) &^ uint64(vm.PageSize-1)
	}
	return pageRound((v+1)*8) + pageRound(2*e*8) + pageRound(v*8)
}

// Run generates the graph, builds it in guest memory, and performs the BFS
// sweeps. It returns the result and the completion time.
func Run(now time.Duration, guest *vm.VM, cfg Config) (*Result, time.Duration, error) {
	if cfg.Scale < 4 || cfg.Scale > 34 {
		return nil, now, fmt.Errorf("graph500: scale %d out of range", cfg.Scale)
	}
	if cfg.EdgeFactor < 1 {
		return nil, now, fmt.Errorf("graph500: edge factor %d", cfg.EdgeFactor)
	}
	if cfg.Roots < 1 {
		return nil, now, fmt.Errorf("graph500: roots %d", cfg.Roots)
	}
	rng := clock.NewRand(cfg.Seed)
	nVertices := 1 << uint(cfg.Scale)
	nEdges := nVertices * cfg.EdgeFactor

	// Phase 1: Kronecker edge generation (host-side scratch, per spec the
	// generator is not part of the timed kernel).
	src, dst := generateEdges(rng, cfg.Scale, nEdges)

	// Phase 2: CSR construction in guest memory.
	buildStart := now
	g, now, err := buildCSR(now, guest, nVertices, src, dst)
	if err != nil {
		return nil, now, err
	}
	res := &Result{
		Vertices:         nVertices,
		Edges:            nEdges,
		ConstructionTime: now - buildStart,
		MemoryBytes:      g.memoryBytes(),
	}

	// Phase 3: BFS sweeps from distinct random roots with degree > 0.
	travStart := now
	for len(res.TEPS) < cfg.Roots {
		root := rng.Intn(nVertices)
		deg, t, err := g.degree(now, root)
		if err != nil {
			return nil, t, err
		}
		now = t
		if deg == 0 {
			continue
		}
		traversed, done, err := g.bfs(now, root, cfg.CPUPerEdge)
		if err != nil {
			return nil, done, err
		}
		elapsed := done - now
		now = done
		if elapsed <= 0 {
			return nil, now, fmt.Errorf("graph500: BFS from %d took no time", root)
		}
		res.TEPS = append(res.TEPS, float64(traversed)/elapsed.Seconds())
		if cfg.Validate {
			if now, err = g.validate(now, root); err != nil {
				return nil, now, fmt.Errorf("graph500: root %d: %w", root, err)
			}
		}
	}
	res.TraversalTime = now - travStart
	hm, err := stats.HarmonicMean(res.TEPS)
	if err != nil {
		return nil, now, err
	}
	res.HarmonicMeanTEPS = hm
	return res, now, nil
}

// generateEdges produces an R-MAT edge list with the Graph500 initiator.
func generateEdges(rng *clock.Rand, scale, nEdges int) (src, dst []uint32) {
	src = make([]uint32, nEdges)
	dst = make([]uint32, nEdges)
	for i := 0; i < nEdges; i++ {
		var u, v uint32
		for level := 0; level < scale; level++ {
			r := rng.Float64()
			var bitU, bitV uint32
			switch {
			case r < initiatorA:
				// quadrant (0,0)
			case r < initiatorA+initiatorB:
				bitV = 1
			case r < initiatorA+initiatorB+initiatorC:
				bitU = 1
			default:
				bitU, bitV = 1, 1
			}
			u = u<<1 | bitU
			v = v<<1 | bitV
		}
		src[i], dst[i] = u, v
	}
	return src, dst
}

// csrGraph is the in-guest graph: xadj offsets, adjacency, and parents.
type csrGraph struct {
	guest     *vm.VM
	n         int
	adjLen    int
	xadj      *vm.Segment // n+1 words
	adjacency *vm.Segment // adjLen words
	parents   *vm.Segment // n words
}

// buildCSR counts degrees, prefix-sums offsets, and fills adjacency — all in
// guest memory (construction cost is charged to the clock but excluded from
// TEPS, matching the benchmark).
func buildCSR(now time.Duration, guest *vm.VM, n int, src, dst []uint32) (*csrGraph, time.Duration, error) {
	adjLen := 2 * len(src) // both directions
	g := &csrGraph{guest: guest, n: n, adjLen: adjLen}
	var err error
	if g.xadj, err = guest.Alloc("graph500.xadj", uint64(n+1)*8, vm.ClassAnon); err != nil {
		return nil, now, fmt.Errorf("graph500: %w", err)
	}
	if g.adjacency, err = guest.Alloc("graph500.adj", uint64(adjLen)*8, vm.ClassAnon); err != nil {
		return nil, now, fmt.Errorf("graph500: %w", err)
	}
	if g.parents, err = guest.Alloc("graph500.parents", uint64(n)*8, vm.ClassAnon); err != nil {
		return nil, now, fmt.Errorf("graph500: %w", err)
	}

	// Degree counting (host scratch) then offsets into guest memory.
	degree := make([]int, n)
	for i := range src {
		degree[src[i]]++
		degree[dst[i]]++
	}
	offset := make([]int, n+1)
	for i := 0; i < n; i++ {
		offset[i+1] = offset[i] + degree[i]
	}
	for i := 0; i <= n; i++ {
		if now, err = guest.Write64(now, g.xadj.Addr(uint64(i)*8), uint64(offset[i])); err != nil {
			return nil, now, err
		}
	}
	// Fill adjacency.
	cursor := make([]int, n)
	copy(cursor, offset[:n])
	place := func(from, to uint32) error {
		slot := cursor[from]
		cursor[from]++
		now, err = guest.Write64(now, g.adjacency.Addr(uint64(slot)*8), uint64(to))
		return err
	}
	for i := range src {
		if err := place(src[i], dst[i]); err != nil {
			return nil, now, err
		}
		if err := place(dst[i], src[i]); err != nil {
			return nil, now, err
		}
	}
	return g, now, nil
}

func (g *csrGraph) memoryBytes() uint64 {
	return g.xadj.Bytes + g.adjacency.Bytes + g.parents.Bytes
}

// degree reads a vertex's degree from the offsets array.
func (g *csrGraph) degree(now time.Duration, v int) (int, time.Duration, error) {
	lo, now, err := g.guest.Read64(now, g.xadj.Addr(uint64(v)*8))
	if err != nil {
		return 0, now, err
	}
	hi, now, err := g.guest.Read64(now, g.xadj.Addr(uint64(v+1)*8))
	if err != nil {
		return 0, now, err
	}
	return int(hi - lo), now, nil
}

// noParent marks unvisited vertices in the parents array.
const noParent = ^uint64(0)

// bfs runs one traversal, writing the parent tree into guest memory and
// returning the number of edges traversed.
func (g *csrGraph) bfs(now time.Duration, root int, cpuPerEdge time.Duration) (int, time.Duration, error) {
	var err error
	// Reset parents (counts as part of the timed kernel, as in the spec).
	for i := 0; i < g.n; i++ {
		if now, err = g.guest.Write64(now, g.parents.Addr(uint64(i)*8), noParent); err != nil {
			return 0, now, err
		}
	}
	if now, err = g.guest.Write64(now, g.parents.Addr(uint64(root)*8), uint64(root)); err != nil {
		return 0, now, err
	}
	queue := make([]int, 0, 1024)
	queue = append(queue, root)
	traversed := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		lo, t1, err := g.guest.Read64(now, g.xadj.Addr(uint64(u)*8))
		if err != nil {
			return traversed, t1, err
		}
		hi, t2, err := g.guest.Read64(t1, g.xadj.Addr(uint64(u+1)*8))
		if err != nil {
			return traversed, t2, err
		}
		now = t2
		for e := lo; e < hi; e++ {
			now += cpuPerEdge
			nbr, t, err := g.guest.Read64(now, g.adjacency.Addr(e*8))
			if err != nil {
				return traversed, t, err
			}
			now = t
			traversed++
			p, t, err := g.guest.Read64(now, g.parents.Addr(nbr*8))
			if err != nil {
				return traversed, t, err
			}
			now = t
			if p == noParent {
				if now, err = g.guest.Write64(now, g.parents.Addr(nbr*8), uint64(u)); err != nil {
					return traversed, now, err
				}
				queue = append(queue, int(nbr))
			}
		}
	}
	return traversed, now, nil
}

// validate checks the parent tree: the root is its own parent, and every
// visited vertex's parent is visited. (The full spec validation also checks
// edge existence; this level catches paging-induced corruption, which is
// what the simulation is for.)
func (g *csrGraph) validate(now time.Duration, root int) (time.Duration, error) {
	rootParent, now, err := g.guest.Read64(now, g.parents.Addr(uint64(root)*8))
	if err != nil {
		return now, err
	}
	if rootParent != uint64(root) {
		return now, fmt.Errorf("root %d has parent %d", root, rootParent)
	}
	for v := 0; v < g.n; v++ {
		p, t, err := g.guest.Read64(now, g.parents.Addr(uint64(v)*8))
		if err != nil {
			return t, err
		}
		now = t
		if p == noParent {
			continue
		}
		if p >= uint64(g.n) {
			return now, fmt.Errorf("vertex %d has out-of-range parent %d", v, p)
		}
		pp, t, err := g.guest.Read64(now, g.parents.Addr(p*8))
		if err != nil {
			return t, err
		}
		now = t
		if pp == noParent {
			return now, fmt.Errorf("vertex %d's parent %d is unvisited", v, p)
		}
	}
	return now, nil
}
