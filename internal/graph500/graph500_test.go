package graph500

import (
	"testing"
	"time"

	"fluidmem/internal/clock"

	"fluidmem/internal/core"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/vm"
)

// newGuest builds a FluidMem DRAM-backed guest with the given local budget.
func newGuest(t *testing.T, localPages int, guestBytes uint64) *vm.VM {
	t.Helper()
	cfg := core.DefaultConfig(dram.New(dram.DefaultParams(), 5), localPages)
	mon, err := core.NewMonitor(cfg, nil, "hyp")
	if err != nil {
		t.Fatal(err)
	}
	base := uint64(0x7f00_0000_0000)
	if _, err := mon.RegisterRange(base, guestBytes, 1); err != nil {
		t.Fatal(err)
	}
	guest, err := vm.New(vm.Config{Name: "g", MemBytes: guestBytes, PID: 1, Base: base}, mon)
	if err != nil {
		t.Fatal(err)
	}
	return guest
}

func smallConfig(scale int) Config {
	cfg := DefaultConfig(scale)
	cfg.Roots = 4
	cfg.Validate = true
	return cfg
}

func TestRunValidation(t *testing.T) {
	g := newGuest(t, 1024, 64<<20)
	if _, _, err := Run(0, g, Config{Scale: 1}); err == nil {
		t.Fatal("scale 1 accepted")
	}
	if _, _, err := Run(0, g, Config{Scale: 8, EdgeFactor: 0, Roots: 1}); err == nil {
		t.Fatal("edge factor 0 accepted")
	}
	if _, _, err := Run(0, g, Config{Scale: 8, EdgeFactor: 4, Roots: 0}); err == nil {
		t.Fatal("zero roots accepted")
	}
}

func TestRunProducesValidBFS(t *testing.T) {
	g := newGuest(t, 4096, 64<<20)
	res, now, err := Run(0, g, smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Vertices != 512 || res.Edges != 512*16 {
		t.Fatalf("graph = %d vertices, %d edges", res.Vertices, res.Edges)
	}
	if len(res.TEPS) != 4 {
		t.Fatalf("TEPS runs = %d", len(res.TEPS))
	}
	for i, teps := range res.TEPS {
		if teps <= 0 {
			t.Fatalf("TEPS[%d] = %v", i, teps)
		}
	}
	if res.HarmonicMeanTEPS <= 0 {
		t.Fatal("harmonic mean missing")
	}
	if now <= 0 || res.TraversalTime <= 0 || res.ConstructionTime <= 0 {
		t.Fatal("times missing")
	}
}

func TestMemoryBytesEstimate(t *testing.T) {
	// scale 10, ef 16: V=1024, E=16384; three page-rounded segments of
	// 1025, 32768, and 1024 words.
	round := func(b uint64) uint64 { return (b + vm.PageSize - 1) &^ uint64(vm.PageSize-1) }
	want := round(1025*8) + round(32768*8) + round(1024*8)
	if got := MemoryBytes(10, 16); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestGraphFitsEstimate(t *testing.T) {
	g := newGuest(t, 65536, 256<<20)
	res, _, err := Run(0, g, smallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryBytes != MemoryBytes(10, 16) {
		t.Fatalf("actual %d, estimate %d", res.MemoryBytes, MemoryBytes(10, 16))
	}
}

func TestTEPSDegradesUnderMemoryPressure(t *testing.T) {
	// The same graph, local memory 2× WSS vs 0.25× WSS: pressure must cut
	// TEPS substantially (Figure 4's qualitative core).
	run := func(localPages int) float64 {
		g := newGuest(t, localPages, 256<<20)
		cfg := smallConfig(10)
		cfg.Validate = false
		res, _, err := Run(0, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.HarmonicMeanTEPS
	}
	wssPages := int(MemoryBytes(10, 16)/vm.PageSize) + 1
	roomy := run(2 * wssPages)
	tight := run(wssPages / 4)
	if tight >= roomy {
		t.Fatalf("TEPS under pressure (%v) not below roomy (%v)", tight, roomy)
	}
	if tight > roomy/2 {
		t.Fatalf("pressure only cost %.1f%%; expected a large hit", 100*(1-tight/roomy))
	}
}

func TestHarmonicMeanBelowArithmetic(t *testing.T) {
	g := newGuest(t, 4096, 64<<20)
	res, _, err := Run(0, g, smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	var arith float64
	for _, teps := range res.TEPS {
		arith += teps
	}
	arith /= float64(len(res.TEPS))
	if res.HarmonicMeanTEPS > arith+1e-9 {
		t.Fatalf("harmonic %v > arithmetic %v", res.HarmonicMeanTEPS, arith)
	}
}

func TestGeneratorDeterministicAndSkewed(t *testing.T) {
	a1, b1 := generateEdges(clock.NewRand(42), 10, 4096)
	a2, b2 := generateEdges(clock.NewRand(42), 10, 4096)
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] {
			t.Fatal("generator not deterministic")
		}
	}
	// R-MAT skew: low-numbered vertices get far more edge endpoints.
	lowHalf := 0
	for i := range a1 {
		if a1[i] < 512 {
			lowHalf++
		}
	}
	frac := float64(lowHalf) / float64(len(a1))
	if frac < 0.6 {
		t.Fatalf("low-half endpoint fraction = %v; R-MAT should be skewed", frac)
	}
}

func TestBFSTouchesAllReachable(t *testing.T) {
	g := newGuest(t, 65536, 64<<20)
	cfg := smallConfig(8)
	cfg.Roots = 1
	res, now, err := Run(0, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	_ = now
	// Validation already ran (cfg.Validate); reaching here means the parent
	// tree was consistent.
}

func TestConstructionExcludedFromTEPS(t *testing.T) {
	g := newGuest(t, 65536, 64<<20)
	res, _, err := Run(0, g, smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	// TEPS must be computed from traversal time only: reconstruct the
	// slowest-root bound and check against total time including build.
	total := res.ConstructionTime + res.TraversalTime
	perRoot := res.TraversalTime / time.Duration(len(res.TEPS))
	if perRoot >= total {
		t.Fatal("bookkeeping inconsistent")
	}
}
