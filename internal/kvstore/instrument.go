package kvstore

import (
	"strconv"
	"time"

	"fluidmem/internal/trace"
)

// instrumented decorates a Store with trace emission: every operation is
// recorded as one STORE_* event spanning issue to completion. Like all
// tracing, the wrapper is pure observation — it draws no randomness,
// charges no virtual time, and delegates every result untouched, which the
// storetest conformance suite asserts by running the full suite through it.
type instrumented struct {
	inner Store
	tr    *trace.Tracer
}

// Instrumented wraps store so its traffic is visible to tr. A nil tracer
// returns store unwrapped (zero overhead, and `==` identity with the
// original), so callers can thread an optional tracer unconditionally.
func Instrumented(store Store, tr *trace.Tracer) Store {
	if tr == nil {
		return store
	}
	return &instrumented{inner: store, tr: tr}
}

var (
	_ Store = (*instrumented)(nil)
	_ Local = (*instrumented)(nil)
)

func (s *instrumented) Name() string { return s.inner.Name() }

func (s *instrumented) Put(now time.Duration, key Key, page []byte) (time.Duration, error) {
	done, err := s.inner.Put(now, key, page)
	if err == nil {
		s.tr.Emit(trace.EvStorePut, 0, key.Page(), now, done-now, "")
	}
	return done, err
}

func (s *instrumented) MultiPut(now time.Duration, keys []Key, pages [][]byte) (time.Duration, error) {
	done, err := s.inner.MultiPut(now, keys, pages)
	if err == nil {
		s.tr.Emit(trace.EvStoreMultiPut, 0, 0, now, done-now, strconv.Itoa(len(keys)))
	}
	return done, err
}

func (s *instrumented) Get(now time.Duration, key Key) ([]byte, time.Duration, error) {
	data, done, err := s.inner.Get(now, key)
	if err == nil {
		s.tr.Emit(trace.EvStoreGet, 0, key.Page(), now, done-now, "")
	}
	return data, done, err
}

func (s *instrumented) MultiGet(now time.Duration, keys []Key) ([][]byte, time.Duration, error) {
	pages, done, err := s.inner.MultiGet(now, keys)
	if err == nil {
		s.tr.Emit(trace.EvStoreMultiGet, 0, 0, now, done-now, strconv.Itoa(len(keys)))
	}
	return pages, done, err
}

func (s *instrumented) StartGet(now time.Duration, key Key) PendingGet {
	p := s.inner.StartGet(now, key)
	if p.Err == nil {
		s.tr.Emit(trace.EvStoreGet, 0, key.Page(), now, p.ReadyAt-now, "split")
	}
	return p
}

func (s *instrumented) Delete(now time.Duration, key Key) (time.Duration, error) {
	done, err := s.inner.Delete(now, key)
	if err == nil {
		s.tr.Emit(trace.EvStoreDelete, 0, key.Page(), now, done-now, "")
	}
	return done, err
}

func (s *instrumented) Stats() Stats { return s.inner.Stats() }

// Local passes through the inner store's locality (false when the inner
// store does not declare one, matching how the monitor probes it).
func (s *instrumented) Local() bool {
	if l, ok := s.inner.(Local); ok {
		return l.Local()
	}
	return false
}

// Inner exposes the wrapped store (introspection, e.g. fluidmemd's
// replication status display).
func (s *instrumented) Inner() Store { return s.inner }
