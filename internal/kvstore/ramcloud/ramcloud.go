// Package ramcloud implements a RAMCloud-flavoured key-value backend: a
// log-structured in-memory store (append-only segments, a hash index, and a
// cleaner that compacts cold segments) fronted by a low-latency network
// transport with native multi-write, mirroring the backend the paper pairs
// FluidMem with (§IV, §VI-A).
package ramcloud

import (
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/kvstore"
)

// ErrOutOfMemory reports that the log is full and cleaning cannot reclaim
// enough space for the write.
var ErrOutOfMemory = errors.New("ramcloud: log full")

// segmentSize is the size of one append-only log segment (RAMCloud's 8 MB).
const segmentSize = 8 << 20

// entrySize is the stored footprint of one page object: 4 KB of data plus a
// small header (key + length), rounded for simplicity.
const entrySize = kvstore.PageSize + 64

const entriesPerSegment = segmentSize / entrySize

// Params configures the store.
type Params struct {
	// CapacityBytes bounds total log memory (the paper gives RAMCloud 25 GB).
	CapacityBytes uint64
	// ReadLatency models one GET round trip over the InfiniBand transport.
	// The paper measures READ_PAGE at 15.62 µs average.
	ReadLatency clock.LatencyModel
	// WriteLatency models one PUT round trip (WRITE_PAGE: 14.70 µs average).
	WriteLatency clock.LatencyModel
	// CleanerThreshold is the live-data fraction below which a segment is
	// worth compacting.
	CleanerThreshold float64
	// AsyncReadDiscount is how much cheaper the split (top/bottom-half)
	// read API is than the synchronous Get: RAMCloud's polling async path
	// skips the dispatch-thread handoff the sync RPC pays (§V-B).
	AsyncReadDiscount time.Duration
}

// DefaultParams returns parameters calibrated to the paper's Table I.
func DefaultParams() Params {
	return Params{
		CapacityBytes:     25 << 30,
		ReadLatency:       clock.LatencyModel{Base: 14300 * time.Nanosecond, Jitter: 1500 * time.Nanosecond, TailProb: 0.004, TailExtra: 400 * time.Microsecond},
		WriteLatency:      clock.LatencyModel{Base: 14700 * time.Nanosecond, Jitter: 1500 * time.Nanosecond},
		CleanerThreshold:  0.5,
		AsyncReadDiscount: 4300 * time.Nanosecond,
	}
}

// entryRef locates a live object inside the log.
type entryRef struct {
	segment *segment
	slot    int
}

// segment is one append-only unit of the log.
type segment struct {
	id      uint64
	entries []logEntry
	live    int
	sealed  bool
}

type logEntry struct {
	key  kvstore.Key
	data []byte
	dead bool
}

// Store is the RAMCloud backend.
type Store struct {
	params Params

	head     *segment
	segments []*segment
	index    map[kvstore.Key]entryRef
	nextSeg  uint64

	// Reads and writes travel as independent outstanding RPCs (RAMCloud
	// allows multiple RPCs in flight), so they queue separately.
	readChan  *clock.Device
	writeChan *clock.Device
	stats     kvstore.Stats
	cleanings uint64

	// freeBufs recycles the 4 KB payloads of killed log entries so the
	// steady-state overwrite path (kill old version, append new) reuses
	// memory instead of allocating a fresh page per write.
	freeBufs [][]byte
}

var _ kvstore.Store = (*Store)(nil)

// New returns an empty store.
func New(p Params, seed uint64) *Store {
	if p.CapacityBytes == 0 {
		p.CapacityBytes = DefaultParams().CapacityBytes
	}
	if p.CleanerThreshold == 0 {
		p.CleanerThreshold = 0.5
	}
	s := &Store{
		params:    p,
		index:     make(map[kvstore.Key]entryRef),
		readChan:  clock.NewDevice(p.ReadLatency, seed),
		writeChan: clock.NewDevice(p.WriteLatency, seed+1),
	}
	s.rollHead()
	return s
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "ramcloud" }

// Put implements kvstore.Store.
func (s *Store) Put(now time.Duration, key kvstore.Key, page []byte) (time.Duration, error) {
	if err := kvstore.ValidatePage(page); err != nil {
		return now, err
	}
	if err := s.appendObject(key, page); err != nil {
		return now, err
	}
	s.stats.Puts++
	return s.writeChan.Submit(now), nil
}

// MultiPut implements kvstore.Store. RAMCloud's multi-write amortises the
// round trip across the batch; the marginal per-page cost is small.
func (s *Store) MultiPut(now time.Duration, keys []kvstore.Key, pages [][]byte) (time.Duration, error) {
	if len(keys) != len(pages) {
		return now, kvstore.ErrBadValue
	}
	// Validate the whole batch before touching the log: a rejected batch
	// must leave no partial state (atomic batch visibility). Mid-batch
	// ErrOutOfMemory can still surface partial appends — resource
	// exhaustion, not validation, and the caller sees the error.
	for _, page := range pages {
		if err := kvstore.ValidatePage(page); err != nil {
			return now, err
		}
	}
	for i, key := range keys {
		if err := s.appendObject(key, pages[i]); err != nil {
			return now, err
		}
	}
	s.stats.MultiPuts++
	s.stats.Puts += uint64(len(keys))
	return s.writeChan.SubmitN(now, len(keys)), nil
}

// Get implements kvstore.Store.
func (s *Store) Get(now time.Duration, key kvstore.Key) ([]byte, time.Duration, error) {
	s.stats.Gets++
	done := s.readChan.Submit(now)
	ref, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		return nil, done, kvstore.ErrNotFound
	}
	// Zero-copy read per the Store ownership contract: the caller gets a
	// reference into the log, valid until the next write touching the key.
	return ref.segment.entries[ref.slot].data, done, nil
}

// MultiGet implements kvstore.Store. RAMCloud's multi-read amortises the
// round trip across the batch exactly like multi-write: one dispatch, then
// a small marginal hash-lookup cost per additional object.
func (s *Store) MultiGet(now time.Duration, keys []kvstore.Key) ([][]byte, time.Duration, error) {
	s.stats.MultiGets++
	s.stats.Gets += uint64(len(keys))
	pages := make([][]byte, len(keys))
	for i, key := range keys {
		if ref, ok := s.index[key]; ok {
			pages[i] = ref.segment.entries[ref.slot].data
		} else {
			s.stats.Misses++
		}
	}
	if len(keys) == 0 {
		return pages, now, nil
	}
	return pages, s.readChan.SubmitN(now, len(keys)), nil
}

// StartGet implements kvstore.Store: the request goes on the wire now and the
// reply lands at ReadyAt, letting the caller overlap eviction work (§V-B).
// The polling async client skips the sync path's dispatch-thread handoff,
// so the wait is AsyncReadDiscount shorter than a synchronous Get.
func (s *Store) StartGet(now time.Duration, key kvstore.Key) kvstore.PendingGet {
	data, readyAt, err := s.Get(now, key)
	if discounted := readyAt - s.params.AsyncReadDiscount; discounted > now {
		readyAt = discounted
	}
	return kvstore.PendingGet{Key: key, Data: data, ReadyAt: readyAt, Err: err}
}

// Delete implements kvstore.Store.
func (s *Store) Delete(now time.Duration, key kvstore.Key) (time.Duration, error) {
	s.stats.Deletes++
	if ref, ok := s.index[key]; ok {
		s.killEntry(ref)
		delete(s.index, key)
	}
	return s.writeChan.Submit(now), nil
}

// Stats implements kvstore.Store.
func (s *Store) Stats() kvstore.Stats { return s.stats }

// Cleanings reports how many segments the cleaner has compacted.
func (s *Store) Cleanings() uint64 { return s.cleanings }

// SegmentCount reports the number of log segments (test hook).
func (s *Store) SegmentCount() int { return len(s.segments) }

// Utilization reports the live fraction of log space in sealed segments.
func (s *Store) Utilization() float64 {
	total, live := 0, 0
	for _, seg := range s.segments {
		if !seg.sealed {
			continue
		}
		total += len(seg.entries)
		live += seg.live
	}
	if total == 0 {
		return 1
	}
	return float64(live) / float64(total)
}

// appendObject writes (key, data) at the log head, killing any prior version.
func (s *Store) appendObject(key kvstore.Key, data []byte) error {
	if len(s.head.entries) >= entriesPerSegment {
		s.head.sealed = true
		if s.logBytes()+segmentSize > s.params.CapacityBytes {
			s.clean()
			if s.logBytes()+segmentSize > s.params.CapacityBytes {
				return fmt.Errorf("%w: %d bytes in use", ErrOutOfMemory, s.logBytes())
			}
		}
		s.rollHead()
	}
	if old, ok := s.index[key]; ok {
		s.killEntry(old) // decrements BytesStored; restored just below
	}
	s.stats.BytesStored += kvstore.PageSize
	var buf []byte
	if n := len(s.freeBufs); n > 0 {
		buf = s.freeBufs[n-1]
		s.freeBufs[n-1] = nil
		s.freeBufs = s.freeBufs[:n-1]
		copy(buf, data)
	} else {
		buf = append([]byte(nil), data...)
	}
	s.head.entries = append(s.head.entries, logEntry{key: key, data: buf})
	s.head.live++
	s.index[key] = entryRef{segment: s.head, slot: len(s.head.entries) - 1}
	return nil
}

func (s *Store) killEntry(ref entryRef) {
	e := &ref.segment.entries[ref.slot]
	if !e.dead {
		e.dead = true
		if len(e.data) == kvstore.PageSize {
			s.freeBufs = append(s.freeBufs, e.data)
		}
		e.data = nil
		ref.segment.live--
		s.stats.BytesStored -= kvstore.PageSize
	}
}

// clean relocates live entries out of low-utilisation sealed segments and
// frees them, LFS-style.
func (s *Store) clean() {
	kept := s.segments[:0]
	var victims []*segment
	for _, seg := range s.segments {
		if seg.sealed && seg != s.head && float64(seg.live)/float64(entriesPerSegment) < s.params.CleanerThreshold {
			victims = append(victims, seg)
		} else {
			kept = append(kept, seg)
		}
	}
	s.segments = kept
	for _, seg := range victims {
		s.cleanings++
		for slot := range seg.entries {
			e := &seg.entries[slot]
			if e.dead {
				continue
			}
			// Relocate without double-counting BytesStored.
			if len(s.head.entries) >= entriesPerSegment {
				s.head.sealed = true
				s.rollHead()
			}
			s.head.entries = append(s.head.entries, logEntry{key: e.key, data: e.data})
			s.head.live++
			s.index[e.key] = entryRef{segment: s.head, slot: len(s.head.entries) - 1}
		}
	}
}

func (s *Store) rollHead() {
	s.nextSeg++
	s.head = &segment{id: s.nextSeg, entries: make([]logEntry, 0, entriesPerSegment)}
	s.segments = append(s.segments, s.head)
}

func (s *Store) logBytes() uint64 {
	return uint64(len(s.segments)) * segmentSize
}
