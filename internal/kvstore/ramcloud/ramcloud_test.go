package ramcloud

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, func() kvstore.Store {
		return New(DefaultParams(), 1)
	})
}

func TestReadLatencyNearTableI(t *testing.T) {
	s := New(DefaultParams(), 2)
	key := kvstore.MakeKey(0x1000, 1)
	if _, err := s.Put(0, key, storetest.Page(1)); err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 2000
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += time.Millisecond // idle gap so queueing never builds up
		_, done, err := s.Get(now, key)
		if err != nil {
			t.Fatal(err)
		}
		total += done - now
		now = done
	}
	avg := total / n
	// Paper Table I: READ_PAGE 15.62 µs average.
	if avg < 13*time.Microsecond || avg > 19*time.Microsecond {
		t.Fatalf("avg read latency = %v, want ≈15.6µs", avg)
	}
}

func TestLogRollsSegments(t *testing.T) {
	p := DefaultParams()
	s := New(p, 3)
	// Write more pages than fit in one segment.
	n := entriesPerSegment + 10
	for i := 0; i < n; i++ {
		key := kvstore.MakeKey(uint64(i)*kvstore.PageSize, 1)
		if _, err := s.Put(0, key, storetest.Page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.SegmentCount() < 2 {
		t.Fatalf("SegmentCount = %d, want ≥2", s.SegmentCount())
	}
	// All pages still readable.
	for i := 0; i < n; i += 97 {
		key := kvstore.MakeKey(uint64(i)*kvstore.PageSize, 1)
		got, _, err := s.Get(0, key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, storetest.Page(byte(i))) {
			t.Fatalf("page %d corrupted", i)
		}
	}
}

func TestOverwritesCreateDeadEntriesAndCleanerReclaims(t *testing.T) {
	p := DefaultParams()
	// Small capacity: 4 segments.
	p.CapacityBytes = 4 * segmentSize
	s := New(p, 4)
	key := func(i int) kvstore.Key { return kvstore.MakeKey(uint64(i)*kvstore.PageSize, 1) }

	// Fill ~1.5 segments with live pages, then overwrite them repeatedly so
	// old segments become mostly dead. Without the cleaner this would exceed
	// capacity; with it, the store keeps accepting writes.
	liveSet := entriesPerSegment / 2
	for round := 0; round < 12; round++ {
		for i := 0; i < liveSet; i++ {
			if _, err := s.Put(0, key(i), storetest.Page(byte(round))); err != nil {
				t.Fatalf("round %d page %d: %v", round, i, err)
			}
		}
	}
	if s.Cleanings() == 0 {
		t.Fatal("cleaner never ran despite heavy overwrite churn")
	}
	// Data integrity after cleaning.
	for i := 0; i < liveSet; i++ {
		got, _, err := s.Get(0, key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, storetest.Page(11)) {
			t.Fatalf("page %d lost its last write after cleaning", i)
		}
	}
}

func TestOutOfMemoryOnLiveData(t *testing.T) {
	p := DefaultParams()
	p.CapacityBytes = 2 * segmentSize
	s := New(p, 5)
	// All-live data (unique keys) cannot be cleaned away.
	var sawOOM bool
	for i := 0; i < 3*entriesPerSegment; i++ {
		_, err := s.Put(0, kvstore.MakeKey(uint64(i)*kvstore.PageSize, 1), storetest.Page(1))
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("err = %v", err)
			}
			sawOOM = true
			break
		}
	}
	if !sawOOM {
		t.Fatal("store accepted more live data than its capacity")
	}
}

func TestUtilizationDropsWithChurn(t *testing.T) {
	s := New(DefaultParams(), 6)
	// Seal a segment full of pages, then kill most of them by overwriting.
	for i := 0; i < entriesPerSegment+1; i++ {
		if _, err := s.Put(0, kvstore.MakeKey(uint64(i)*kvstore.PageSize, 1), storetest.Page(1)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Utilization()
	for i := 0; i < entriesPerSegment; i++ {
		if _, err := s.Put(0, kvstore.MakeKey(uint64(i)*kvstore.PageSize, 1), storetest.Page(2)); err != nil {
			t.Fatal(err)
		}
	}
	after := s.Utilization()
	if after >= before {
		t.Fatalf("utilization %v → %v, want a drop after overwrites", before, after)
	}
}

func TestMultiPutFasterThanSerialWrites(t *testing.T) {
	// The async-writeback optimisation depends on multi-write amortisation
	// (§V-B); quantify it.
	const n = 64
	s := New(DefaultParams(), 7)
	var keys []kvstore.Key
	var pages [][]byte
	for i := 0; i < n; i++ {
		keys = append(keys, kvstore.MakeKey(uint64(i)*kvstore.PageSize, 1))
		pages = append(pages, storetest.Page(byte(i)))
	}
	batchDone, err := s.MultiPut(0, keys, pages)
	if err != nil {
		t.Fatal(err)
	}
	perPage := batchDone / n
	if perPage > 6*time.Microsecond {
		t.Fatalf("amortised write cost %v/page, want well under one RTT", perPage)
	}
}
