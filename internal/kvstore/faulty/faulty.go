// Package faulty is the deterministic fault-injection ("chaos") layer for
// key-value backends. It wraps any kvstore.Store and perturbs its behaviour
// on the virtual clock: transient per-operation errors, latency spikes,
// stuck ("gray") phases where the member limps at a fraction of its speed,
// and crash/recover schedules during which every operation is rejected.
//
// All injection decisions come from one seeded PRNG consumed in a fixed
// order per operation, and crash/gray phases are expressed as virtual-time
// windows, so a given seed produces bit-for-bit the same fault sequence on
// every run — the property the chaos tests assert. Everything injected is
// counted, and the exact sequence is recorded in a bounded log so two runs
// can be compared injection by injection.
//
// The memory-disaggregation literature (Maruf & Chowdhury's survey; the
// paper's §III customisation argument) treats tolerance of remote-memory
// failure as the open problem of the field; this package supplies the
// failures, and internal/core/resilience supplies the tolerance.
package faulty

import (
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/stats"
)

// Errors injected by the wrapper. Both are transient: a retry may succeed.
var (
	// ErrInjected reports a transient injected failure (a dropped RPC, a
	// timed-out request, a server-side 5xx equivalent).
	ErrInjected = errors.New("faulty: injected transient error")
	// ErrCrashed reports an operation issued while the member is inside a
	// scheduled crash window.
	ErrCrashed = errors.New("faulty: member crashed")
)

// Op identifies an operation class for per-op-type fault rates.
type Op int

// Operation classes.
const (
	OpGet Op = iota
	OpPut
	OpMultiPut
	OpDelete
	OpMultiGet
	opCount
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpMultiPut:
		return "multiput"
	case OpDelete:
		return "delete"
	case OpMultiGet:
		return "multiget"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// OpFaults configures injection for one operation class.
type OpFaults struct {
	// ErrorRate is the probability an operation fails with ErrInjected
	// after charging ErrorLatency (the request died in flight; the caller
	// still paid the timeout/transport cost).
	ErrorRate float64
	// ErrorLatency is the virtual-time cost of a failed operation.
	ErrorLatency time.Duration
	// SpikeRate is the probability a successful operation is delayed by a
	// latency spike uniform in (0, SpikeExtra].
	SpikeRate float64
	// SpikeExtra bounds the injected spike.
	SpikeExtra time.Duration
}

// Window is a closed virtual-time interval [From, To).
type Window struct {
	From, To time.Duration
}

// contains reports whether t falls inside the window.
func (w Window) contains(t time.Duration) bool {
	return t >= w.From && t < w.To
}

// Params configures a wrapper.
type Params struct {
	// PerOp holds the fault rates per operation class, indexed by Op.
	PerOp [opCount]OpFaults
	// Crashes are windows during which every operation fails with
	// ErrCrashed. The member "recovers" when the window closes; whatever it
	// missed during downtime is the recovery gap the replication layer must
	// repair.
	Crashes []Window
	// CrashRejectLatency is the cost of bouncing off a crashed member
	// (connection refused is fast; much faster than a timeout).
	CrashRejectLatency time.Duration
	// Gray are windows during which the member is stuck but not down: every
	// operation succeeds yet takes an extra GrayDelay — the classic
	// limping-replica failure that crash detection never sees.
	Gray []Window
	// GrayDelay is the per-operation stall inside a gray window.
	GrayDelay time.Duration
}

// Uniform returns Params injecting the same transient-error and spike rates
// into every operation class, with defaults for latencies.
func Uniform(errorRate, spikeRate float64) Params {
	var p Params
	for i := range p.PerOp {
		p.PerOp[i] = OpFaults{
			ErrorRate:    errorRate,
			ErrorLatency: 15 * time.Microsecond,
			SpikeRate:    spikeRate,
			SpikeExtra:   200 * time.Microsecond,
		}
	}
	p.CrashRejectLatency = 2 * time.Microsecond
	p.GrayDelay = 500 * time.Microsecond
	return p
}

// InjectStats counts everything the wrapper injected.
type InjectStats struct {
	// Ops is the total operations that passed through the wrapper.
	Ops uint64
	// TransientErrors counts ErrInjected failures.
	TransientErrors uint64
	// Spikes counts latency spikes; SpikeTime is their summed delay.
	Spikes    uint64
	SpikeTime time.Duration
	// CrashRejects counts operations bounced during a crash window.
	CrashRejects uint64
	// GrayOps counts operations stalled in a gray window; GrayTime is the
	// summed stall.
	GrayOps  uint64
	GrayTime time.Duration
}

// Counters renders the injection counts as a named-counter set.
func (s InjectStats) Counters() *stats.Counters {
	c := stats.NewCounters()
	c.Set("ops", s.Ops)
	c.Set("transient_errors", s.TransientErrors)
	c.Set("latency_spikes", s.Spikes)
	c.Set("crash_rejects", s.CrashRejects)
	c.Set("gray_ops", s.GrayOps)
	return c
}

// Injection is one recorded fault, identified by the operation's global
// sequence number so two runs can be diffed exactly.
type Injection struct {
	// Seq is the operation's index in the wrapper's lifetime (1-based).
	Seq uint64
	// Op is the operation class.
	Op Op
	// Kind is "error", "spike", "crash", or "gray".
	Kind string
	// At is the virtual time the operation was issued.
	At time.Duration
}

func (i Injection) String() string {
	return fmt.Sprintf("#%d %s %s @%v", i.Seq, i.Op, i.Kind, i.At)
}

// logCap bounds the injection log so long benchmark runs don't accumulate
// unbounded memory; tests that diff logs stay far below it.
const logCap = 1 << 16

// Store is the chaos wrapper.
type Store struct {
	inner  kvstore.Store
	params Params
	rng    *clock.Rand

	seq   uint64
	stats InjectStats
	log   []Injection
}

var _ kvstore.Store = (*Store)(nil)

// Wrap decorates inner with fault injection driven by seed.
func Wrap(inner kvstore.Store, params Params, seed uint64) *Store {
	return &Store{inner: inner, params: params, rng: clock.NewRand(seed)}
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "faulty(" + s.inner.Name() + ")" }

// Inner exposes the wrapped store (tests reach through to verify contents).
func (s *Store) Inner() kvstore.Store { return s.inner }

// InjectStats reports the injection counters.
func (s *Store) InjectStats() InjectStats { return s.stats }

// Log returns the recorded injections (capped at an internal bound).
func (s *Store) Log() []Injection { return s.log }

// Down reports whether the member is inside a crash window at time t.
func (s *Store) Down(t time.Duration) bool {
	for _, w := range s.params.Crashes {
		if w.contains(t) {
			return true
		}
	}
	return false
}

func (s *Store) gray(t time.Duration) bool {
	for _, w := range s.params.Gray {
		if w.contains(t) {
			return true
		}
	}
	return false
}

func (s *Store) record(op Op, kind string, at time.Duration) {
	if len(s.log) < logCap {
		s.log = append(s.log, Injection{Seq: s.seq, Op: op, Kind: kind, At: at})
	}
}

// inject runs the pre-operation fault decision for one op issued at now.
// It always draws the same number of PRNG samples per operation so the
// random sequence — and therefore every later decision — is independent of
// which faults actually fired. It returns the (possibly delayed) issue time
// and a non-nil error if the operation must fail without reaching the inner
// store.
func (s *Store) inject(op Op, now time.Duration) (time.Duration, time.Duration, error) {
	s.seq++
	s.stats.Ops++
	f := s.params.PerOp[op]
	errDraw := s.rng.Float64()
	spikeDraw := s.rng.Float64()
	spikeAmount := s.rng.Float64()

	if s.Down(now) {
		s.stats.CrashRejects++
		s.record(op, "crash", now)
		return now, now + s.params.CrashRejectLatency, ErrCrashed
	}
	var stall time.Duration
	if s.gray(now) {
		s.stats.GrayOps++
		s.stats.GrayTime += s.params.GrayDelay
		s.record(op, "gray", now)
		stall += s.params.GrayDelay
	}
	if f.ErrorRate > 0 && errDraw < f.ErrorRate {
		s.stats.TransientErrors++
		s.record(op, "error", now)
		return now, now + stall + f.ErrorLatency, ErrInjected
	}
	if f.SpikeRate > 0 && spikeDraw < f.SpikeRate {
		spike := time.Duration(spikeAmount * float64(f.SpikeExtra))
		s.stats.Spikes++
		s.stats.SpikeTime += spike
		s.record(op, "spike", now)
		stall += spike
	}
	return now + stall, 0, nil
}

// Put implements kvstore.Store.
func (s *Store) Put(now time.Duration, key kvstore.Key, page []byte) (time.Duration, error) {
	issue, failAt, err := s.inject(OpPut, now)
	if err != nil {
		return failAt, err
	}
	return s.inner.Put(issue, key, page)
}

// MultiPut implements kvstore.Store. The batch is one wire operation, so it
// fails or spikes as a unit.
func (s *Store) MultiPut(now time.Duration, keys []kvstore.Key, pages [][]byte) (time.Duration, error) {
	issue, failAt, err := s.inject(OpMultiPut, now)
	if err != nil {
		return failAt, err
	}
	return s.inner.MultiPut(issue, keys, pages)
}

// Get implements kvstore.Store.
func (s *Store) Get(now time.Duration, key kvstore.Key) ([]byte, time.Duration, error) {
	issue, failAt, err := s.inject(OpGet, now)
	if err != nil {
		return nil, failAt, err
	}
	return s.inner.Get(issue, key)
}

// MultiGet implements kvstore.Store. Like MultiPut, the batch is one wire
// operation: it fails, spikes, or stalls as a unit.
func (s *Store) MultiGet(now time.Duration, keys []kvstore.Key) ([][]byte, time.Duration, error) {
	issue, failAt, err := s.inject(OpMultiGet, now)
	if err != nil {
		return nil, failAt, err
	}
	return s.inner.MultiGet(issue, keys)
}

// StartGet implements kvstore.Store. Injection happens at issue time; a
// fault surfaces in the returned PendingGet exactly as a lost split read
// would.
func (s *Store) StartGet(now time.Duration, key kvstore.Key) kvstore.PendingGet {
	issue, failAt, err := s.inject(OpGet, now)
	if err != nil {
		return kvstore.PendingGet{Key: key, ReadyAt: failAt, Err: err}
	}
	return s.inner.StartGet(issue, key)
}

// Delete implements kvstore.Store.
func (s *Store) Delete(now time.Duration, key kvstore.Key) (time.Duration, error) {
	issue, failAt, err := s.inject(OpDelete, now)
	if err != nil {
		return failAt, err
	}
	return s.inner.Delete(issue, key)
}

// Stats implements kvstore.Store, passing through the inner counters.
func (s *Store) Stats() kvstore.Stats { return s.inner.Stats() }

// Local passes through the inner store's locality so the monitor's RPC-cost
// accounting is unchanged by wrapping.
func (s *Store) Local() bool {
	if l, ok := s.inner.(kvstore.Local); ok {
		return l.Local()
	}
	return false
}
