package faulty

import (
	"errors"
	"testing"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/storetest"
)

func quiet(seed uint64) *Store {
	return Wrap(dram.New(dram.DefaultParams(), seed), Params{}, seed)
}

func TestConformanceWithNoFaults(t *testing.T) {
	// A wrapper with zero fault rates must be invisible: the full Store
	// contract holds through it.
	storetest.Run(t, func() kvstore.Store { return quiet(1) })
}

func TestTransientErrorRate(t *testing.T) {
	p := Uniform(0.3, 0)
	s := Wrap(dram.New(dram.DefaultParams(), 1), p, 42)
	key := kvstore.MakeKey(0x1000, 1)
	if _, err := s.Put(0, key, storetest.Page(1)); err != nil {
		// First op may itself be injected; retry until the page is stored.
		for {
			if _, err := s.Put(0, key, storetest.Page(1)); err == nil {
				break
			}
		}
	}
	const total = 2000
	failed := 0
	for i := 0; i < total; i++ {
		_, _, err := s.Get(0, key)
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error class: %v", err)
			}
			failed++
		}
	}
	frac := float64(failed) / total
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("injected fraction %v with 30%% rate", frac)
	}
	if got := s.InjectStats().TransientErrors; got < uint64(failed) {
		t.Fatalf("TransientErrors = %d, observed %d failures", got, failed)
	}
}

func TestErrorChargesLatency(t *testing.T) {
	p := Uniform(1.0, 0) // every op fails
	s := Wrap(dram.New(dram.DefaultParams(), 1), p, 7)
	now := 10 * time.Microsecond
	done, err := s.Put(now, kvstore.MakeKey(0x1000, 1), storetest.Page(1))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if done != now+p.PerOp[OpPut].ErrorLatency {
		t.Fatalf("failed op completed at %v, want issue+%v", done, p.PerOp[OpPut].ErrorLatency)
	}
}

func TestCrashWindow(t *testing.T) {
	p := Params{
		Crashes:            []Window{{From: time.Millisecond, To: 2 * time.Millisecond}},
		CrashRejectLatency: 2 * time.Microsecond,
	}
	s := Wrap(dram.New(dram.DefaultParams(), 1), p, 3)
	key := kvstore.MakeKey(0x2000, 1)

	// Before the window: up.
	if s.Down(0) {
		t.Fatal("down before crash window")
	}
	if _, err := s.Put(0, key, storetest.Page(2)); err != nil {
		t.Fatal(err)
	}

	// Inside: every op bounces with ErrCrashed at connection-refused speed.
	at := 1500 * time.Microsecond
	if !s.Down(at) {
		t.Fatal("not down inside crash window")
	}
	_, done, err := s.Get(at, key)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err inside window = %v", err)
	}
	if done != at+p.CrashRejectLatency {
		t.Fatalf("reject at %v, want %v", done, at+p.CrashRejectLatency)
	}
	pg := s.StartGet(at, key)
	if !errors.Is(pg.Err, ErrCrashed) {
		t.Fatalf("split read inside window: %v", pg.Err)
	}

	// After: recovered, data from before the crash survives.
	got, _, err := s.Get(3*time.Millisecond, key)
	if err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	if got[0] != storetest.Page(2)[0] {
		t.Fatal("page lost across crash window")
	}
	if s.InjectStats().CrashRejects != 2 {
		t.Fatalf("CrashRejects = %d, want 2", s.InjectStats().CrashRejects)
	}
}

func TestGrayWindowStalls(t *testing.T) {
	p := Params{
		Gray:      []Window{{From: 0, To: time.Millisecond}},
		GrayDelay: 500 * time.Microsecond,
	}
	s := Wrap(dram.New(dram.DefaultParams(), 1), p, 5)
	key := kvstore.MakeKey(0x3000, 1)
	done, err := s.Put(0, key, storetest.Page(3))
	if err != nil {
		t.Fatal(err)
	}
	if done < p.GrayDelay {
		t.Fatalf("gray op completed at %v, want >= %v stall", done, p.GrayDelay)
	}
	// Outside the window the stall disappears.
	fast, err := s.Put(2*time.Millisecond, key, storetest.Page(3))
	if err != nil {
		t.Fatal(err)
	}
	if fast-2*time.Millisecond >= p.GrayDelay {
		t.Fatal("gray stall applied outside the window")
	}
	st := s.InjectStats()
	if st.GrayOps != 1 || st.GrayTime != p.GrayDelay {
		t.Fatalf("gray stats = %+v", st)
	}
}

func TestSpikeAccounting(t *testing.T) {
	p := Uniform(0, 1.0) // every op spikes
	s := Wrap(dram.New(dram.DefaultParams(), 1), p, 9)
	key := kvstore.MakeKey(0x4000, 1)
	if _, err := s.Put(0, key, storetest.Page(4)); err != nil {
		t.Fatal(err)
	}
	st := s.InjectStats()
	if st.Spikes != 1 || st.SpikeTime <= 0 || st.SpikeTime > p.PerOp[OpPut].SpikeExtra {
		t.Fatalf("spike stats = %+v", st)
	}
}

func TestSameSeedIdenticalInjections(t *testing.T) {
	run := func() (Injection, []Injection, InjectStats) {
		p := Uniform(0.1, 0.05)
		p.Crashes = []Window{{From: 500 * time.Microsecond, To: time.Millisecond}}
		p.Gray = []Window{{From: 2 * time.Millisecond, To: 3 * time.Millisecond}}
		s := Wrap(dram.New(dram.DefaultParams(), 1), p, 1234)
		now := time.Duration(0)
		for i := 0; i < 500; i++ {
			key := kvstore.MakeKey(uint64(i%64*kvstore.PageSize), 1)
			var err error
			var done time.Duration
			if i%3 == 0 {
				done, err = s.Put(now, key, storetest.Page(byte(i)))
			} else {
				_, done, err = s.Get(now, key)
			}
			_ = err // injected failures are part of the schedule
			if done > now {
				now = done
			}
			now += 7 * time.Microsecond
		}
		log := s.Log()
		var first Injection
		if len(log) > 0 {
			first = log[0]
		}
		return first, log, s.InjectStats()
	}
	f1, l1, s1 := run()
	f2, l2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	if len(l1) == 0 {
		t.Fatal("no injections fired; test is vacuous")
	}
	if len(l1) != len(l2) {
		t.Fatalf("log lengths diverged: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("injection %d diverged: %v vs %v", i, l1[i], l2[i])
		}
	}
	if f1 != f2 {
		t.Fatalf("first injection diverged: %v vs %v", f1, f2)
	}
	if !s1.Counters().Equal(s2.Counters()) {
		t.Fatal("counter sets diverged")
	}
}

func TestDrawsIndependentOfWindows(t *testing.T) {
	// The error/spike PRNG draws must not depend on whether a crash or gray
	// window was active: adding a window to a schedule must not reshuffle
	// which later operations fail. Compare the "error" injections (by seq)
	// of two runs differing only in a gray window.
	errorSeqs := func(gray bool) []uint64 {
		p := Uniform(0.2, 0)
		if gray {
			p.Gray = []Window{{From: 0, To: time.Hour}}
			p.GrayDelay = time.Microsecond
		}
		s := Wrap(dram.New(dram.DefaultParams(), 1), p, 77)
		key := kvstore.MakeKey(0x5000, 1)
		s.Put(0, key, storetest.Page(0))
		for i := 0; i < 200; i++ {
			s.Get(time.Duration(i)*time.Microsecond, key)
		}
		var seqs []uint64
		for _, inj := range s.Log() {
			if inj.Kind == "error" {
				seqs = append(seqs, inj.Seq)
			}
		}
		return seqs
	}
	a, b := errorSeqs(false), errorSeqs(true)
	if len(a) == 0 {
		t.Fatal("no errors injected; test is vacuous")
	}
	if len(a) != len(b) {
		t.Fatalf("error counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("error schedule shifted at %d: seq %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNamePassthrough(t *testing.T) {
	s := quiet(1)
	if s.Name() != "faulty(dram)" {
		t.Fatalf("Name = %q", s.Name())
	}
	if !s.Local() {
		t.Fatal("dram-backed wrapper should report Local")
	}
	if s.Inner() == nil {
		t.Fatal("Inner is nil")
	}
}

func TestMultiPutFailsAsAUnit(t *testing.T) {
	// A MultiPut rejected by injection — crash window or transient error —
	// must leave the inner store completely untouched: the batch is one wire
	// operation, so the write-back engine may safely treat the whole flush
	// as not-flushed and retry it later.
	inner := dram.New(dram.DefaultParams(), 1)
	p := Params{
		Crashes:            []Window{{From: 0, To: time.Millisecond}},
		CrashRejectLatency: 2 * time.Microsecond,
	}
	s := Wrap(inner, p, 11)

	keys := []kvstore.Key{kvstore.MakeKey(0x1000, 1), kvstore.MakeKey(0x2000, 1)}
	pages := [][]byte{storetest.Page(1), storetest.Page(2)}

	done, err := s.MultiPut(500*time.Microsecond, keys, pages)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed inside the window", err)
	}
	if done != 502*time.Microsecond {
		t.Fatalf("crash reject at %v, want issue+reject latency", done)
	}
	if st := inner.Stats(); st.Puts != 0 || st.MultiPuts != 0 || st.BytesStored != 0 {
		t.Fatalf("crashed MultiPut reached the inner store: %+v", st)
	}

	// After the member recovers, the same batch succeeds atomically.
	done, err = s.MultiPut(2*time.Millisecond, keys, pages)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range keys {
		got, _, err := inner.Get(done, key)
		if err != nil {
			t.Fatalf("key %d after recovery: %v", i, err)
		}
		if got[0] != pages[i][0] {
			t.Fatalf("key %d corrupted after recovery", i)
		}
	}
	if got := s.InjectStats().CrashRejects; got != 1 {
		t.Fatalf("CrashRejects = %d, want 1", got)
	}
}

func TestMultiPutTransientErrorLeavesInnerUntouched(t *testing.T) {
	inner := dram.New(dram.DefaultParams(), 1)
	p := Uniform(1.0, 0) // every op fails before reaching the inner store
	s := Wrap(inner, p, 13)
	keys := []kvstore.Key{kvstore.MakeKey(0x3000, 1)}
	if _, err := s.MultiPut(0, keys, [][]byte{storetest.Page(3)}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if st := inner.Stats(); st.Puts != 0 || st.MultiPuts != 0 {
		t.Fatalf("failed MultiPut reached the inner store: %+v", st)
	}
}
