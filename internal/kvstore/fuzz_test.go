package kvstore

import "testing"

// FuzzKeyRoundTrip checks the 52/12-bit key codec over arbitrary addresses
// and partitions: Page/Partition must invert MakeKey (modulo the documented
// masking), rebuilding a key from its own parts must be the identity, and
// the page offset bits must never leak into the key.
func FuzzKeyRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint16(0))
	f.Add(uint64(0x7f00_0000_0000), uint16(1))
	f.Add(uint64(0xFFFF_FFFF_FFFF_FFFF), uint16(0xFFFF))
	f.Add(uint64(PageSize-1), uint16(MaxPartitions-1))
	f.Add(uint64(PageSize), uint16(MaxPartitions))
	f.Fuzz(func(t *testing.T, virtAddr uint64, rawPart uint16) {
		part := PartitionID(rawPart)
		k := MakeKey(virtAddr, part)
		if got, want := k.Page(), virtAddr&^uint64(PageSize-1); got != want {
			t.Fatalf("Page() = %#x, want %#x", got, want)
		}
		if got, want := k.Partition(), part&(MaxPartitions-1); got != want {
			t.Fatalf("Partition() = %d, want %d", got, want)
		}
		// Keys are canonical: rebuilding from decoded parts is the identity,
		// so two addresses in the same page under the same partition always
		// collide onto one stored value.
		if k2 := MakeKey(k.Page(), k.Partition()); k2 != k {
			t.Fatalf("re-encode changed key: %v vs %v", k2, k)
		}
		if aligned := MakeKey(virtAddr&^uint64(PageSize-1), part); aligned != k {
			t.Fatalf("offset bits leaked: %v vs %v", aligned, k)
		}
	})
}
