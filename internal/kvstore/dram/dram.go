// Package dram implements the local-DRAM key-value backend: pages are kept
// in hypervisor memory on the same machine, so "transport" is a memcpy. It
// is the latency floor against which the networked backends are compared
// (Figure 3a / Table II "FluidMem with DRAM").
package dram

import (
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/kvstore"
)

// Params configures the memcpy-scale service times.
type Params struct {
	// ReadLatency is the cost of fetching one page from local DRAM
	// (lookup + copy).
	ReadLatency clock.LatencyModel
	// WriteLatency is the cost of storing one page.
	WriteLatency clock.LatencyModel
}

// DefaultParams returns service times for a local in-memory store:
// roughly a microsecond per 4 KB copy plus bookkeeping.
func DefaultParams() Params {
	return Params{
		ReadLatency:  clock.LatencyModel{Base: 1200 * time.Nanosecond, Jitter: 150 * time.Nanosecond},
		WriteLatency: clock.LatencyModel{Base: 1300 * time.Nanosecond, Jitter: 150 * time.Nanosecond},
	}
}

// Store is the DRAM backend.
type Store struct {
	pages map[kvstore.Key][]byte
	read  *clock.Device
	write *clock.Device
	stats kvstore.Stats
}

var _ kvstore.Store = (*Store)(nil)

// New returns an empty DRAM store.
func New(p Params, seed uint64) *Store {
	return &Store{
		pages: make(map[kvstore.Key][]byte),
		read:  clock.NewDevice(p.ReadLatency, seed),
		write: clock.NewDevice(p.WriteLatency, seed+1),
	}
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "dram" }

// Local implements kvstore.Local: pages live in hypervisor DRAM.
func (s *Store) Local() bool { return true }

// Put implements kvstore.Store.
func (s *Store) Put(now time.Duration, key kvstore.Key, page []byte) (time.Duration, error) {
	if err := kvstore.ValidatePage(page); err != nil {
		return now, err
	}
	s.set(key, page)
	s.stats.Puts++
	return s.write.Submit(now), nil
}

// set copies page into the store, reusing the existing buffer on overwrite
// so steady-state writeback traffic allocates nothing.
func (s *Store) set(key kvstore.Key, page []byte) {
	if old, existed := s.pages[key]; existed {
		copy(old, page)
		return
	}
	s.stats.BytesStored += kvstore.PageSize
	s.pages[key] = append([]byte(nil), page...)
}

// MultiPut implements kvstore.Store.
func (s *Store) MultiPut(now time.Duration, keys []kvstore.Key, pages [][]byte) (time.Duration, error) {
	if len(keys) != len(pages) {
		return now, kvstore.ErrBadValue
	}
	// Validate the whole batch before writing anything: a rejected batch
	// must leave no partial state (atomic batch visibility).
	for _, page := range pages {
		if err := kvstore.ValidatePage(page); err != nil {
			return now, err
		}
	}
	for i, key := range keys {
		s.set(key, pages[i])
	}
	s.stats.MultiPuts++
	s.stats.Puts += uint64(len(keys))
	return s.write.SubmitN(now, len(keys)), nil
}

// Get implements kvstore.Store. The returned slice references the store's
// internal buffer (zero-copy read, per the Store ownership contract).
func (s *Store) Get(now time.Duration, key kvstore.Key) ([]byte, time.Duration, error) {
	s.stats.Gets++
	page, ok := s.pages[key]
	done := s.read.Submit(now)
	if !ok {
		s.stats.Misses++
		return nil, done, kvstore.ErrNotFound
	}
	return page, done, nil
}

// MultiGet implements kvstore.Store: one batched lookup pass, with the
// copies amortised onto the read device like MultiPut's writes. Returned
// pages reference internal buffers (zero-copy reads).
func (s *Store) MultiGet(now time.Duration, keys []kvstore.Key) ([][]byte, time.Duration, error) {
	s.stats.MultiGets++
	s.stats.Gets += uint64(len(keys))
	pages := make([][]byte, len(keys))
	for i, key := range keys {
		if page, ok := s.pages[key]; ok {
			pages[i] = page
		} else {
			s.stats.Misses++
		}
	}
	if len(keys) == 0 {
		return pages, now, nil
	}
	return pages, s.read.SubmitN(now, len(keys)), nil
}

// StartGet implements kvstore.Store.
func (s *Store) StartGet(now time.Duration, key kvstore.Key) kvstore.PendingGet {
	data, readyAt, err := s.Get(now, key)
	return kvstore.PendingGet{Key: key, Data: data, ReadyAt: readyAt, Err: err}
}

// Delete implements kvstore.Store.
func (s *Store) Delete(now time.Duration, key kvstore.Key) (time.Duration, error) {
	s.stats.Deletes++
	if _, ok := s.pages[key]; ok {
		s.stats.BytesStored -= kvstore.PageSize
		delete(s.pages, key)
	}
	return s.write.Submit(now), nil
}

// Stats implements kvstore.Store.
func (s *Store) Stats() kvstore.Stats { return s.stats }

// Len reports the number of resident pages (test hook).
func (s *Store) Len() int { return len(s.pages) }
