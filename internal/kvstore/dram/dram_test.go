package dram

import (
	"testing"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, func() kvstore.Store {
		return New(DefaultParams(), 1)
	})
}

func TestDRAMIsFast(t *testing.T) {
	s := New(DefaultParams(), 2)
	key := kvstore.MakeKey(0x1000, 1)
	if _, err := s.Put(0, key, storetest.Page(1)); err != nil {
		t.Fatal(err)
	}
	_, done, err := s.Get(100*time.Microsecond, key)
	if err != nil {
		t.Fatal(err)
	}
	if lat := done - 100*time.Microsecond; lat > 5*time.Microsecond {
		t.Fatalf("DRAM read took %v, want memcpy-scale", lat)
	}
}

func TestLen(t *testing.T) {
	s := New(DefaultParams(), 3)
	for i := 0; i < 5; i++ {
		if _, err := s.Put(0, kvstore.MakeKey(uint64(i*kvstore.PageSize), 1), storetest.Page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, err := s.Delete(0, kvstore.MakeKey(0, 1)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("Len after delete = %d", s.Len())
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := New(DefaultParams(), 4)
	key := kvstore.MakeKey(0x1000, 1)
	page := storetest.Page(1)
	if _, err := s.Put(0, key, page); err != nil {
		t.Fatal(err)
	}
	page[0] ^= 0xFF // caller reuses its buffer
	got, _, err := s.Get(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == page[0] {
		t.Fatal("store aliases the caller's buffer")
	}
}
