package kvstore

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestMakeKeyRoundTrip(t *testing.T) {
	f := func(addr uint64, part uint16) bool {
		p := PartitionID(part & 0xFFF)
		k := MakeKey(addr, p)
		return k.Page() == addr&^uint64(PageSize-1) && k.Partition() == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeKeyDropsPageOffset(t *testing.T) {
	a := MakeKey(0x7f0000001000, 5)
	b := MakeKey(0x7f0000001fff, 5)
	if a != b {
		t.Fatalf("keys differ for addresses in the same page: %v vs %v", a, b)
	}
}

func TestMakeKeyPartitionMasked(t *testing.T) {
	k := MakeKey(0x1000, PartitionID(0xFFFF))
	if k.Partition() != 0xFFF {
		t.Fatalf("partition = %d, want masked to 12 bits", k.Partition())
	}
}

func TestKeysDistinctAcrossPartitions(t *testing.T) {
	a := MakeKey(0x1000, 1)
	b := MakeKey(0x1000, 2)
	if a == b {
		t.Fatal("same page in different partitions must have distinct keys")
	}
}

func TestKeyString(t *testing.T) {
	if got := MakeKey(0x2000, 7).String(); got != "page=0x2000 part=7" {
		t.Fatalf("String = %q", got)
	}
}

func TestValidatePage(t *testing.T) {
	if err := ValidatePage(make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePage(make([]byte, 100)); !errors.Is(err, ErrBadValue) {
		t.Fatalf("err = %v", err)
	}
	if err := ValidatePage(nil); !errors.Is(err, ErrBadValue) {
		t.Fatalf("nil err = %v", err)
	}
}

func TestPendingGetWait(t *testing.T) {
	p := &PendingGet{Data: []byte("x"), ReadyAt: 100 * time.Microsecond}
	// Waiting before the reply lands blocks until ReadyAt.
	data, done, err := p.Wait(40 * time.Microsecond)
	if err != nil || string(data) != "x" || done != 100*time.Microsecond {
		t.Fatalf("Wait early = %v %v %v", data, done, err)
	}
	// Waiting after the reply landed returns immediately.
	_, done, _ = p.Wait(150 * time.Microsecond)
	if done != 150*time.Microsecond {
		t.Fatalf("Wait late = %v", done)
	}
}

func TestLocalRegistryUnique(t *testing.T) {
	r := NewLocalRegistry()
	seen := make(map[PartitionID]bool)
	for i := 0; i < 100; i++ {
		p, err := r.Allocate("hyp-a", 1000+i)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("duplicate partition %d", p)
		}
		seen[p] = true
	}
}

func TestLocalRegistrySamePIDDistinct(t *testing.T) {
	// Even identical (hypervisor, pid) pairs must get distinct partitions:
	// the nonce disambiguates.
	r := NewLocalRegistry()
	a, err := r.Allocate("h", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Allocate("h", 42)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("both allocations returned %d", a)
	}
}

func TestLocalRegistryRelease(t *testing.T) {
	r := NewLocalRegistry()
	p, err := r.Allocate("h", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Release(p); err != nil {
		t.Fatal(err)
	}
	if err := r.Release(p); err == nil {
		t.Fatal("double release should fail")
	}
}

func TestLocalRegistryExhaustion(t *testing.T) {
	r := NewLocalRegistry()
	allocated := 0
	for i := 0; ; i++ {
		_, err := r.Allocate("h", i)
		if err != nil {
			if !errors.Is(err, ErrNoPartitions) {
				t.Fatalf("err = %v", err)
			}
			break
		}
		allocated++
		if allocated > MaxPartitions {
			t.Fatal("allocated more partitions than exist")
		}
	}
	// The hash probe sequence is bounded, so exhaustion can strike before
	// literally all 4096 are used, but the registry must fill most of them.
	if allocated < MaxPartitions/2 {
		t.Fatalf("only %d partitions allocated before exhaustion", allocated)
	}
}

func TestPartitionHashDeterministic(t *testing.T) {
	a := partitionHash("h", 1, 2)
	b := partitionHash("h", 1, 2)
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if partitionHash("h", 1, 3) == a && partitionHash("h", 2, 2) == a {
		t.Fatal("hash ignores inputs")
	}
	if a >= MaxPartitions {
		t.Fatalf("hash %d out of 12-bit range", a)
	}
}
