// Package storetest provides a conformance suite run against every kvstore
// backend, so the Store contract is enforced once rather than re-tested per
// implementation.
package storetest

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"fluidmem/internal/kvstore"
)

// Factory builds a fresh, empty store for one subtest.
type Factory func() kvstore.Store

// Page builds a deterministic 4 KB page whose contents encode tag.
func Page(tag byte) []byte {
	p := make([]byte, kvstore.PageSize)
	for i := range p {
		p[i] = tag ^ byte(i)
	}
	return p
}

// Run exercises the full Store contract against the factory's stores.
func Run(t *testing.T, factory Factory) {
	t.Run("PutGetRoundTrip", func(t *testing.T) {
		s := factory()
		key := kvstore.MakeKey(0x10000, 1)
		want := Page(7)
		if _, err := s.Put(0, key, want); err != nil {
			t.Fatal(err)
		}
		got, _, err := s.Get(time.Microsecond, key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("page corrupted in round trip")
		}
	})

	t.Run("GetMissing", func(t *testing.T) {
		s := factory()
		if _, _, err := s.Get(0, kvstore.MakeKey(0x999000, 1)); !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
	})

	t.Run("PutRejectsBadSize", func(t *testing.T) {
		s := factory()
		if _, err := s.Put(0, kvstore.MakeKey(0x1000, 1), []byte("short")); !errors.Is(err, kvstore.ErrBadValue) {
			t.Fatalf("err = %v, want ErrBadValue", err)
		}
	})

	t.Run("Overwrite", func(t *testing.T) {
		s := factory()
		key := kvstore.MakeKey(0x20000, 2)
		if _, err := s.Put(0, key, Page(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put(0, key, Page(2)); err != nil {
			t.Fatal(err)
		}
		got, _, err := s.Get(0, key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, Page(2)) {
			t.Fatal("overwrite did not take effect")
		}
	})

	t.Run("Delete", func(t *testing.T) {
		s := factory()
		key := kvstore.MakeKey(0x30000, 3)
		if _, err := s.Put(0, key, Page(3)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Delete(0, key); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Get(0, key); !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("err after delete = %v", err)
		}
		// Deleting a missing key is not an error (idempotent teardown).
		if _, err := s.Delete(0, key); err != nil {
			t.Fatalf("double delete: %v", err)
		}
	})

	t.Run("MultiPut", func(t *testing.T) {
		s := factory()
		var keys []kvstore.Key
		var pages [][]byte
		for i := 0; i < 16; i++ {
			keys = append(keys, kvstore.MakeKey(uint64(0x100000+i*kvstore.PageSize), 4))
			pages = append(pages, Page(byte(i)))
		}
		done, err := s.MultiPut(0, keys, pages)
		if err != nil {
			t.Fatal(err)
		}
		if done <= 0 {
			t.Fatal("MultiPut reported no elapsed time")
		}
		for i, key := range keys {
			got, _, err := s.Get(done, key)
			if err != nil {
				t.Fatalf("key %d: %v", i, err)
			}
			if !bytes.Equal(got, pages[i]) {
				t.Fatalf("key %d corrupted", i)
			}
		}
	})

	t.Run("MultiPutMismatchedLengths", func(t *testing.T) {
		s := factory()
		_, err := s.MultiPut(0, []kvstore.Key{1}, nil)
		if !errors.Is(err, kvstore.ErrBadValue) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("MultiPutAmortised", func(t *testing.T) {
		const n = 32
		serial := factory()
		var serialDone time.Duration
		for i := 0; i < n; i++ {
			var err error
			serialDone, err = serial.Put(serialDone, kvstore.MakeKey(uint64(i*kvstore.PageSize), 1), Page(byte(i)))
			if err != nil {
				t.Fatal(err)
			}
		}
		batched := factory()
		var keys []kvstore.Key
		var pages [][]byte
		for i := 0; i < n; i++ {
			keys = append(keys, kvstore.MakeKey(uint64(i*kvstore.PageSize), 1))
			pages = append(pages, Page(byte(i)))
		}
		batchDone, err := batched.MultiPut(0, keys, pages)
		if err != nil {
			t.Fatal(err)
		}
		if batchDone >= serialDone {
			t.Fatalf("MultiPut (%v) should beat %d serial Puts (%v)", batchDone, n, serialDone)
		}
	})

	t.Run("MultiPutEmpty", func(t *testing.T) {
		s := factory()
		done, err := s.MultiPut(3*time.Microsecond, nil, nil)
		if err != nil {
			t.Fatalf("empty batch: %v", err)
		}
		if done < 3*time.Microsecond {
			t.Fatalf("completion %v before submission", done)
		}
		if st := s.Stats(); st.Puts != 0 || st.BytesStored != 0 {
			t.Fatalf("empty batch wrote state: %+v", st)
		}
	})

	t.Run("MultiPutOverwriteAccounting", func(t *testing.T) {
		s := factory()
		key := kvstore.MakeKey(0x90000, 3)
		if _, err := s.Put(0, key, Page(1)); err != nil {
			t.Fatal(err)
		}
		// Overwriting via MultiPut must replace the value without
		// double-counting stored bytes.
		done, err := s.MultiPut(0, []kvstore.Key{key}, [][]byte{Page(2)})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := s.Get(done, key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, Page(2)) {
			t.Fatal("MultiPut overwrite did not take effect")
		}
		if st := s.Stats(); st.BytesStored != kvstore.PageSize {
			t.Fatalf("BytesStored = %d after overwrite, want %d", st.BytesStored, kvstore.PageSize)
		}
	})

	t.Run("MultiPutStats", func(t *testing.T) {
		s := factory()
		keys := []kvstore.Key{kvstore.MakeKey(0x91000, 3), kvstore.MakeKey(0x92000, 3)}
		if _, err := s.MultiPut(0, keys, [][]byte{Page(1), Page(2)}); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.MultiPuts != 1 || st.Puts != 2 {
			t.Fatalf("stats after MultiPut = %+v, want MultiPuts=1 Puts=2", st)
		}
	})

	t.Run("StartGetSplitRead", func(t *testing.T) {
		s := factory()
		key := kvstore.MakeKey(0x40000, 5)
		if _, err := s.Put(0, key, Page(9)); err != nil {
			t.Fatal(err)
		}
		p := s.StartGet(time.Millisecond, key)
		if p.ReadyAt <= time.Millisecond {
			t.Fatalf("ReadyAt = %v, want after issue time", p.ReadyAt)
		}
		data, done, err := p.Wait(time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if done < p.ReadyAt {
			t.Fatalf("Wait returned %v before ReadyAt %v", done, p.ReadyAt)
		}
		if !bytes.Equal(data, Page(9)) {
			t.Fatal("split read corrupted page")
		}
	})

	t.Run("VirtualTimeMonotone", func(t *testing.T) {
		s := factory()
		key := kvstore.MakeKey(0x50000, 6)
		now := time.Duration(0)
		for i := 0; i < 20; i++ {
			done, err := s.Put(now, key, Page(byte(i)))
			if err != nil {
				t.Fatal(err)
			}
			if done < now {
				t.Fatalf("completion %v before submission %v", done, now)
			}
			now = done
		}
	})

	t.Run("StatsCount", func(t *testing.T) {
		s := factory()
		key := kvstore.MakeKey(0x60000, 7)
		if _, err := s.Put(0, key, Page(1)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Get(0, key); err != nil {
			t.Fatal(err)
		}
		s.Get(0, kvstore.MakeKey(0x61000, 7)) // miss
		st := s.Stats()
		if st.Puts != 1 || st.Gets != 2 || st.Misses != 1 {
			t.Fatalf("stats = %+v", st)
		}
		if st.BytesStored != kvstore.PageSize {
			t.Fatalf("BytesStored = %d", st.BytesStored)
		}
	})

	t.Run("MultiGetOrderingAndPartialMiss", func(t *testing.T) {
		s := factory()
		// Store the even-indexed keys only; the batch interleaves hits and
		// misses in an order unrelated to insertion order.
		var keys []kvstore.Key
		for i := 0; i < 6; i++ {
			key := kvstore.MakeKey(uint64(0x200000+i*kvstore.PageSize), 4)
			keys = append(keys, key)
			if i%2 == 0 {
				if _, err := s.Put(0, key, Page(byte(i))); err != nil {
					t.Fatal(err)
				}
			}
		}
		batch := []kvstore.Key{keys[5], keys[0], keys[3], keys[4], keys[1], keys[2], keys[0]}
		pages, done, err := s.MultiGet(time.Microsecond, batch)
		if err != nil {
			t.Fatal(err)
		}
		if done < time.Microsecond {
			t.Fatalf("completion %v before submission", done)
		}
		if len(pages) != len(batch) {
			t.Fatalf("result length %d, want %d (aligned with keys)", len(pages), len(batch))
		}
		wantTag := map[kvstore.Key]byte{keys[0]: 0, keys[2]: 2, keys[4]: 4}
		for i, key := range batch {
			tag, hit := wantTag[key]
			if !hit {
				if pages[i] != nil {
					t.Fatalf("entry %d: missing key returned %d bytes, want nil", i, len(pages[i]))
				}
				continue
			}
			if pages[i] == nil {
				t.Fatalf("entry %d: stored key returned nil", i)
			}
			if len(pages[i]) != kvstore.PageSize {
				t.Fatalf("entry %d: short page (%d bytes)", i, len(pages[i]))
			}
			if !bytes.Equal(pages[i], Page(tag)) {
				t.Fatalf("entry %d: page corrupted or misaligned", i)
			}
		}
	})

	t.Run("MultiGetEmpty", func(t *testing.T) {
		s := factory()
		pages, done, err := s.MultiGet(5*time.Microsecond, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(pages) != 0 {
			t.Fatalf("empty batch returned %d entries", len(pages))
		}
		if done < 5*time.Microsecond {
			t.Fatalf("completion %v before submission", done)
		}
	})

	t.Run("MultiGetAmortised", func(t *testing.T) {
		const n = 32
		populate := func(s kvstore.Store) []kvstore.Key {
			var keys []kvstore.Key
			for i := 0; i < n; i++ {
				key := kvstore.MakeKey(uint64(0x300000+i*kvstore.PageSize), 1)
				keys = append(keys, key)
				if _, err := s.Put(0, key, Page(byte(i))); err != nil {
					t.Fatal(err)
				}
			}
			return keys
		}
		serial := factory()
		keys := populate(serial)
		var serialDone time.Duration
		for _, key := range keys {
			_, done, err := serial.Get(serialDone, key)
			if err != nil {
				t.Fatal(err)
			}
			serialDone = done
		}
		batched := factory()
		keys = populate(batched)
		_, batchDone, err := batched.MultiGet(0, keys)
		if err != nil {
			t.Fatal(err)
		}
		if batchDone >= serialDone {
			t.Fatalf("MultiGet (%v) should beat %d serial Gets (%v)", batchDone, n, serialDone)
		}
	})

	t.Run("MultiGetStats", func(t *testing.T) {
		s := factory()
		a := kvstore.MakeKey(0x400000, 2)
		b := kvstore.MakeKey(0x401000, 2)
		missing := kvstore.MakeKey(0x402000, 2)
		for _, key := range []kvstore.Key{a, b} {
			if _, err := s.Put(0, key, Page(1)); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := s.MultiGet(0, []kvstore.Key{a, missing, b}); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.MultiGets != 1 || st.Gets != 3 || st.Misses != 1 {
			t.Fatalf("stats after MultiGet = %+v, want MultiGets=1 Gets=3 Misses=1", st)
		}
	})

	// The error-path contract rides along with the happy-path suite so no
	// backend can pass conformance while mishandling failures.
	RunErrorPaths(t, factory)

	t.Run("PartitionIsolation", func(t *testing.T) {
		s := factory()
		// The same page address in two partitions must be independent.
		a := kvstore.MakeKey(0x70000, 1)
		b := kvstore.MakeKey(0x70000, 2)
		if _, err := s.Put(0, a, Page(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put(0, b, Page(2)); err != nil {
			t.Fatal(err)
		}
		ga, _, _ := s.Get(0, a)
		gb, _, _ := s.Get(0, b)
		if !bytes.Equal(ga, Page(1)) || !bytes.Equal(gb, Page(2)) {
			t.Fatal("partitions interfere")
		}
	})
}

// RunErrorPaths exercises the failure half of the Store contract: exactly
// which sentinel error each misuse must surface, and that a failed operation
// leaves no partial state behind. The fault-handling layer keys its
// retry/permanent decision off these sentinels, so a backend wrapping a
// transient error in ErrNotFound (or vice versa) silently breaks resilience.
func RunErrorPaths(t *testing.T, factory Factory) {
	t.Run("GetAfterDeleteNotFound", func(t *testing.T) {
		s := factory()
		key := kvstore.MakeKey(0x80000, 1)
		if _, err := s.Put(0, key, Page(4)); err != nil {
			t.Fatal(err)
		}
		done, err := s.Delete(time.Microsecond, key)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Get(done, key); !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("Get after Delete: err = %v, want ErrNotFound", err)
		}
		// Split reads must agree with synchronous reads on missing keys.
		p := s.StartGet(done, key)
		if _, _, err := p.Wait(done); !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("StartGet after Delete: err = %v, want ErrNotFound", err)
		}
	})

	t.Run("ShortPageRejected", func(t *testing.T) {
		s := factory()
		key := kvstore.MakeKey(0x81000, 1)
		if _, err := s.Put(0, key, make([]byte, kvstore.PageSize-1)); !errors.Is(err, kvstore.ErrBadValue) {
			t.Fatalf("short page: err = %v, want ErrBadValue", err)
		}
		if _, _, err := s.Get(0, key); !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("rejected Put left state behind: %v", err)
		}
	})

	t.Run("OversizedPageRejected", func(t *testing.T) {
		s := factory()
		key := kvstore.MakeKey(0x82000, 1)
		if _, err := s.Put(0, key, make([]byte, kvstore.PageSize+1)); !errors.Is(err, kvstore.ErrBadValue) {
			t.Fatalf("oversized page: err = %v, want ErrBadValue", err)
		}
		if _, _, err := s.Get(0, key); !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("rejected Put left state behind: %v", err)
		}
	})

	t.Run("NilPageRejected", func(t *testing.T) {
		s := factory()
		if _, err := s.Put(0, kvstore.MakeKey(0x83000, 1), nil); !errors.Is(err, kvstore.ErrBadValue) {
			t.Fatalf("nil page: err = %v, want ErrBadValue", err)
		}
	})

	t.Run("MultiPutLengthMismatch", func(t *testing.T) {
		s := factory()
		keys := []kvstore.Key{kvstore.MakeKey(0x84000, 1), kvstore.MakeKey(0x85000, 1)}
		if _, err := s.MultiPut(0, keys, [][]byte{Page(1)}); !errors.Is(err, kvstore.ErrBadValue) {
			t.Fatalf("mismatched lengths: err = %v, want ErrBadValue", err)
		}
		if _, err := s.MultiPut(0, nil, [][]byte{Page(1)}); !errors.Is(err, kvstore.ErrBadValue) {
			t.Fatalf("nil keys: err = %v, want ErrBadValue", err)
		}
	})

	t.Run("MultiGetMissIsNotAnError", func(t *testing.T) {
		// A batch of entirely absent keys succeeds with all-nil entries;
		// ErrNotFound is a per-key Get sentinel, never a batch failure. A
		// wrapper turning misses into batch errors would make the monitor's
		// batched demand+prefetch read fail on cold pages.
		s := factory()
		batch := []kvstore.Key{kvstore.MakeKey(0x88000, 1), kvstore.MakeKey(0x89000, 1)}
		pages, _, err := s.MultiGet(0, batch)
		if err != nil {
			t.Fatalf("all-miss batch: err = %v, want nil", err)
		}
		for i, p := range pages {
			if p != nil {
				t.Fatalf("entry %d: got %d bytes for a key Get reports ErrNotFound for", i, len(p))
			}
		}
		// And the per-key view must agree.
		if _, _, err := s.Get(0, batch[0]); !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("Get of missing key: err = %v, want ErrNotFound", err)
		}
	})

	t.Run("MultiGetAgreesWithGetAfterDelete", func(t *testing.T) {
		s := factory()
		kept := kvstore.MakeKey(0x8a000, 1)
		dropped := kvstore.MakeKey(0x8b000, 1)
		for _, key := range []kvstore.Key{kept, dropped} {
			if _, err := s.Put(0, key, Page(5)); err != nil {
				t.Fatal(err)
			}
		}
		done, err := s.Delete(0, dropped)
		if err != nil {
			t.Fatal(err)
		}
		pages, _, err := s.MultiGet(done, []kvstore.Key{dropped, kept})
		if err != nil {
			t.Fatal(err)
		}
		if pages[0] != nil {
			t.Fatal("deleted key resurfaced in MultiGet")
		}
		if !bytes.Equal(pages[1], Page(5)) {
			t.Fatal("surviving key corrupted or misaligned after delete")
		}
	})

	t.Run("MultiPutBadPage", func(t *testing.T) {
		// A batch rejected for validation must be atomic: even entries
		// preceding the bad page must not become visible (the write-back
		// engine treats a failed flush as not-flushed and may retry or
		// steal; partially applied batches would fork the two copies).
		s := factory()
		keys := []kvstore.Key{kvstore.MakeKey(0x86000, 1), kvstore.MakeKey(0x87000, 1)}
		pages := [][]byte{Page(1), []byte("short")}
		if _, err := s.MultiPut(0, keys, pages); !errors.Is(err, kvstore.ErrBadValue) {
			t.Fatalf("bad page in batch: err = %v, want ErrBadValue", err)
		}
		for i, key := range keys {
			if _, _, err := s.Get(0, key); !errors.Is(err, kvstore.ErrNotFound) {
				t.Fatalf("entry %d of rejected batch became visible (err = %v)", i, err)
			}
		}
		if st := s.Stats(); st.MultiPuts != 0 || st.BytesStored != 0 {
			t.Fatalf("rejected batch counted/stored: %+v", st)
		}
	})
}
