// Package memcached implements a Memcached-flavoured key-value backend: a
// slab allocator with per-class LRU eviction, reached over a TCP (IP-over-IB)
// transport whose round trip dominates latency. It is the paper's "standard
// Ethernet datacenter" backend (Figure 3c, §VI-B).
package memcached

import (
	"container/list"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/kvstore"
)

// chunkSizes are the slab classes. Pages always land in the 4 KB + overhead
// class, but smaller classes exist so the allocator is a real slab allocator
// rather than a special case.
var chunkSizes = []int{128, 512, 1024, 2048, kvstore.PageSize + 80}

// slabPageSize is the unit of memory the allocator carves into chunks.
const slabPageSize = 1 << 20

// Params configures the store.
type Params struct {
	// CapacityBytes bounds slab memory; beyond it, per-class LRU eviction
	// discards the coldest items, exactly like memcached under pressure.
	CapacityBytes uint64
	// RTT models one request/response over TCP on IP-over-IB. Calibrated so
	// the FluidMem+Memcached fault average lands near the paper's 65.79 µs.
	RTT clock.LatencyModel
	// AsyncReadDiscount is the saving of the libevent-based async client
	// over the blocking call (no per-call wakeup handoff).
	AsyncReadDiscount time.Duration
}

// DefaultParams returns parameters matching the paper's test platform.
func DefaultParams() Params {
	return Params{
		CapacityBytes:     25 << 30,
		RTT:               clock.LatencyModel{Base: 70 * time.Microsecond, Jitter: 7 * time.Microsecond, TailProb: 0.01, TailExtra: 300 * time.Microsecond},
		AsyncReadDiscount: 5 * time.Microsecond,
	}
}

// item is one cached object.
type item struct {
	key   kvstore.Key
	data  []byte
	class int
	elem  *list.Element
}

// slabClass tracks chunks of one size.
type slabClass struct {
	chunkSize int
	allocated uint64 // bytes of slab memory dedicated to this class
	used      int    // chunks in use
	lru       *list.List
}

// Store is the memcached backend.
type Store struct {
	params  Params
	classes []*slabClass
	items   map[kvstore.Key]*item
	memUsed uint64

	// Reads and writes are pipelined on separate connections.
	readChan  *clock.Device
	writeChan *clock.Device
	stats     kvstore.Stats
}

var _ kvstore.Store = (*Store)(nil)

// New returns an empty store.
func New(p Params, seed uint64) *Store {
	if p.CapacityBytes == 0 {
		p.CapacityBytes = DefaultParams().CapacityBytes
	}
	s := &Store{
		params:    p,
		items:     make(map[kvstore.Key]*item),
		readChan:  clock.NewDevice(p.RTT, seed),
		writeChan: clock.NewDevice(p.RTT, seed+1),
	}
	for _, size := range chunkSizes {
		s.classes = append(s.classes, &slabClass{chunkSize: size, lru: list.New()})
	}
	return s
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "memcached" }

// Put implements kvstore.Store.
func (s *Store) Put(now time.Duration, key kvstore.Key, page []byte) (time.Duration, error) {
	if err := kvstore.ValidatePage(page); err != nil {
		return now, err
	}
	s.set(key, page)
	s.stats.Puts++
	return s.writeChan.Submit(now), nil
}

// MultiPut implements kvstore.Store. Memcached has no native multi-write;
// the client pipelines individual sets on one connection, which amortises
// less than RAMCloud's multi-write but still beats serial round trips.
func (s *Store) MultiPut(now time.Duration, keys []kvstore.Key, pages [][]byte) (time.Duration, error) {
	if len(keys) != len(pages) {
		return now, kvstore.ErrBadValue
	}
	// Validate the whole batch before writing anything: a rejected batch
	// must leave no partial state (atomic batch visibility).
	for _, page := range pages {
		if err := kvstore.ValidatePage(page); err != nil {
			return now, err
		}
	}
	for i, key := range keys {
		s.set(key, pages[i])
	}
	s.stats.MultiPuts++
	s.stats.Puts += uint64(len(keys))
	return s.writeChan.SubmitN(now, len(keys)), nil
}

// Get implements kvstore.Store.
func (s *Store) Get(now time.Duration, key kvstore.Key) ([]byte, time.Duration, error) {
	s.stats.Gets++
	done := s.readChan.Submit(now)
	it, ok := s.items[key]
	if !ok {
		s.stats.Misses++
		return nil, done, kvstore.ErrNotFound
	}
	s.classes[it.class].lru.MoveToBack(it.elem)
	// Zero-copy read per the Store ownership contract.
	return it.data, done, nil
}

// MultiGet implements kvstore.Store: memcached's native multi-key get —
// one request carrying every key, one response streaming the hits back, so
// the TCP round trip is paid once for the whole batch.
func (s *Store) MultiGet(now time.Duration, keys []kvstore.Key) ([][]byte, time.Duration, error) {
	s.stats.MultiGets++
	s.stats.Gets += uint64(len(keys))
	pages := make([][]byte, len(keys))
	for i, key := range keys {
		it, ok := s.items[key]
		if !ok {
			s.stats.Misses++
			continue
		}
		s.classes[it.class].lru.MoveToBack(it.elem)
		pages[i] = it.data
	}
	if len(keys) == 0 {
		return pages, now, nil
	}
	return pages, s.readChan.SubmitN(now, len(keys)), nil
}

// StartGet implements kvstore.Store.
func (s *Store) StartGet(now time.Duration, key kvstore.Key) kvstore.PendingGet {
	data, readyAt, err := s.Get(now, key)
	if discounted := readyAt - s.params.AsyncReadDiscount; discounted > now {
		readyAt = discounted
	}
	return kvstore.PendingGet{Key: key, Data: data, ReadyAt: readyAt, Err: err}
}

// Delete implements kvstore.Store.
func (s *Store) Delete(now time.Duration, key kvstore.Key) (time.Duration, error) {
	s.stats.Deletes++
	if it, ok := s.items[key]; ok {
		s.remove(it)
	}
	return s.writeChan.Submit(now), nil
}

// Stats implements kvstore.Store.
func (s *Store) Stats() kvstore.Stats { return s.stats }

// Len reports resident item count (test hook).
func (s *Store) Len() int { return len(s.items) }

func (s *Store) set(key kvstore.Key, data []byte) {
	if it, ok := s.items[key]; ok {
		it.data = append(it.data[:0], data...)
		s.classes[it.class].lru.MoveToBack(it.elem)
		return
	}
	class := s.classFor(len(data))
	sc := s.classes[class]
	// Grow the class with a new slab page if needed, evicting LRU items when
	// at capacity.
	chunksPerSlab := slabPageSize / sc.chunkSize
	for sc.used >= int(sc.allocated)/sc.chunkSize {
		if s.memUsed+slabPageSize <= s.params.CapacityBytes {
			sc.allocated += slabPageSize
			s.memUsed += slabPageSize
			_ = chunksPerSlab
			continue
		}
		// Capacity pressure: evict the coldest item in this class.
		front := sc.lru.Front()
		if front == nil {
			// Nothing to evict in class; steal is not modelled — drop the
			// write silently like memcached's SERVER_ERROR path would not
			// happen for page-size objects in practice.
			return
		}
		s.remove(front.Value.(*item))
		s.stats.Evictions++
	}
	it := &item{key: key, data: append([]byte(nil), data...), class: class}
	it.elem = sc.lru.PushBack(it)
	sc.used++
	s.items[key] = it
	s.stats.BytesStored += kvstore.PageSize
}

func (s *Store) remove(it *item) {
	sc := s.classes[it.class]
	sc.lru.Remove(it.elem)
	sc.used--
	delete(s.items, it.key)
	s.stats.BytesStored -= kvstore.PageSize
}

func (s *Store) classFor(size int) int {
	for i, sc := range s.classes {
		if size <= sc.chunkSize {
			return i
		}
	}
	return len(s.classes) - 1
}
