package memcached

import (
	"bytes"
	"testing"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, func() kvstore.Store {
		return New(DefaultParams(), 1)
	})
}

func TestRTTDominatesLatency(t *testing.T) {
	s := New(DefaultParams(), 2)
	key := kvstore.MakeKey(0x1000, 1)
	if _, err := s.Put(0, key, storetest.Page(1)); err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 1000
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += time.Millisecond
		_, done, err := s.Get(now, key)
		if err != nil {
			t.Fatal(err)
		}
		total += done - now
		now = done
	}
	avg := total / n
	// TCP over IP-over-IB: tens of microseconds, far above RAMCloud's ~15 µs.
	if avg < 60*time.Microsecond || avg > 85*time.Microsecond {
		t.Fatalf("avg RTT = %v, want ≈70µs", avg)
	}
}

func TestLRUEvictionUnderPressure(t *testing.T) {
	p := DefaultParams()
	p.CapacityBytes = 2 * slabPageSize // tiny store
	s := New(p, 3)
	perSlab := slabPageSize / (kvstore.PageSize + 80)
	n := 3 * perSlab // overflow capacity
	for i := 0; i < n; i++ {
		if _, err := s.Put(0, kvstore.MakeKey(uint64(i)*kvstore.PageSize, 1), storetest.Page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
	// The oldest keys are gone, the newest survive.
	if _, _, err := s.Get(0, kvstore.MakeKey(0, 1)); err == nil {
		t.Fatal("oldest key survived LRU eviction")
	}
	got, _, err := s.Get(0, kvstore.MakeKey(uint64(n-1)*kvstore.PageSize, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, storetest.Page(byte(n-1))) {
		t.Fatal("newest key corrupted")
	}
}

func TestGetRefreshesLRU(t *testing.T) {
	p := DefaultParams()
	p.CapacityBytes = 2 * slabPageSize
	s := New(p, 4)
	perSlab := slabPageSize / (kvstore.PageSize + 80)
	hot := kvstore.MakeKey(0, 1)
	if _, err := s.Put(0, hot, storetest.Page(0xAA)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3*perSlab; i++ {
		// Touch the hot key between inserts so it stays at the LRU tail.
		if _, _, err := s.Get(0, hot); err != nil {
			t.Fatalf("hot key evicted at insert %d", i)
		}
		if _, err := s.Put(0, kvstore.MakeKey(uint64(i)*kvstore.PageSize, 1), storetest.Page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Get(0, hot); err != nil {
		t.Fatal("frequently read key was evicted")
	}
}

func TestSlabClassSelection(t *testing.T) {
	s := New(DefaultParams(), 5)
	if got := s.classFor(kvstore.PageSize); got != len(chunkSizes)-1 {
		t.Fatalf("page class = %d, want largest class", got)
	}
	if got := s.classFor(100); got != 0 {
		t.Fatalf("class for 100B = %d, want 0", got)
	}
	if got := s.classFor(1 << 20); got != len(chunkSizes)-1 {
		t.Fatalf("oversized class = %d", got)
	}
}

func TestOverwriteDoesNotLeakChunks(t *testing.T) {
	s := New(DefaultParams(), 6)
	key := kvstore.MakeKey(0x1000, 1)
	for i := 0; i < 100; i++ {
		if _, err := s.Put(0, key, storetest.Page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrites", s.Len())
	}
	class := s.classes[s.classFor(kvstore.PageSize)]
	if class.used != 1 {
		t.Fatalf("chunks used = %d, want 1", class.used)
	}
}
