// Package kvstore defines the backend-neutral key-value API FluidMem uses to
// place 4 KB memory pages in remote stores (§IV of the paper), the 64-bit key
// codec (52-bit page address + 12-bit virtual partition), and the partition
// registry that guarantees globally unique partition indexes.
package kvstore

import (
	"errors"
	"fmt"
	"time"
)

// PageSize is the size of one memory page; all values stored through this
// API are exactly one page.
const PageSize = 4096

// Errors shared by all backends.
var (
	// ErrNotFound reports that no value is stored under the key.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrBadValue reports a value whose length is not PageSize.
	ErrBadValue = errors.New("kvstore: value is not a 4 KB page")
	// ErrNoPartitions reports exhaustion of the 12-bit partition space.
	ErrNoPartitions = errors.New("kvstore: no free virtual partitions")
)

// PartitionID is a 12-bit virtual partition index. Stores without native
// partition support multiplex tenants through it (§IV).
type PartitionID uint16

// MaxPartitions is the number of distinct virtual partitions (2^12).
const MaxPartitions = 1 << 12

// Key is the 64-bit store key: the upper 52 bits are the page-aligned
// virtual address bits [63:12] of the faulting address, and the lower
// 12 bits index the virtual partition.
type Key uint64

// MakeKey builds a key from a virtual address and a partition. The address's
// page offset bits are discarded, exactly as in the paper: the first 52 bits
// of the faulting virtual address identify the page.
func MakeKey(virtAddr uint64, part PartitionID) Key {
	return Key(virtAddr&^uint64(PageSize-1) | uint64(part)&0xFFF)
}

// Page returns the page-aligned virtual address encoded in the key.
func (k Key) Page() uint64 { return uint64(k) &^ 0xFFF }

// Partition returns the virtual partition index encoded in the key.
func (k Key) Partition() PartitionID { return PartitionID(k & 0xFFF) }

func (k Key) String() string {
	return fmt.Sprintf("page=0x%x part=%d", k.Page(), k.Partition())
}

// PendingGet is a read in flight: the top half of a split read has been
// issued and the transport will deliver the value at ReadyAt. The bottom
// half calls Wait.
type PendingGet struct {
	Key     Key
	Data    []byte
	ReadyAt time.Duration
	Err     error
}

// Wait completes the bottom half at virtual time now, returning the value
// and the time at which the caller may proceed (never earlier than ReadyAt).
func (p *PendingGet) Wait(now time.Duration) ([]byte, time.Duration, error) {
	done := now
	if p.ReadyAt > done {
		done = p.ReadyAt
	}
	return p.Data, done, p.Err
}

// Stats counts backend traffic.
type Stats struct {
	Gets      uint64
	Puts      uint64
	MultiPuts uint64
	MultiGets uint64
	Deletes   uint64
	Misses    uint64
	// Evictions counts values the store itself discarded (capacity pressure
	// in stores with their own eviction, e.g. memcached slabs).
	Evictions uint64
	// BytesStored is the current resident value payload.
	BytesStored uint64
}

// Store is the synchronous + split-read backend interface. All latencies are
// virtual: each call takes the current virtual time and returns the virtual
// time at which the operation completes. Implementations model transport and
// service-time queueing internally.
//
// Buffer ownership contract (load-bearing for the allocation-free fault
// path — see DESIGN.md §14):
//
//   - Put / MultiPut: the store COPIES the page before returning. The caller
//     keeps ownership of the buffer it passed in and may reuse or recycle it
//     immediately after the call returns.
//   - Get / MultiGet / StartGet: the store may return a reference to its
//     INTERNAL buffer (zero-copy read). The returned bytes are valid until
//     the next Put / MultiPut / Delete touching that key; callers that need
//     the data past that point must copy it out first, and must never write
//     into or recycle a store-returned buffer.
type Store interface {
	// Name identifies the backend ("ramcloud", "memcached", "dram").
	Name() string
	// Put stores one page, returning the completion time.
	Put(now time.Duration, key Key, page []byte) (time.Duration, error)
	// MultiPut stores a batch of pages in one amortised operation
	// (RAMCloud multi-write; a pipelined loop elsewhere).
	MultiPut(now time.Duration, keys []Key, pages [][]byte) (time.Duration, error)
	// Get retrieves one page synchronously.
	Get(now time.Duration, key Key) ([]byte, time.Duration, error)
	// MultiGet retrieves a batch of pages in one amortised round trip
	// (RAMCloud multi-read; a pipelined loop elsewhere). The result is
	// aligned with keys: entry i holds the page for keys[i], or nil when
	// that key is absent — a per-key miss is NOT an error, so a batch
	// mixing hits and misses succeeds. The error return is reserved for
	// store-level failures (transport loss, crash, injected faults), in
	// which case no entry of the result may be used.
	MultiGet(now time.Duration, keys []Key) ([][]byte, time.Duration, error)
	// StartGet issues the top half of a split read (§V-B async reads);
	// the caller overlaps other work and then calls Wait on the result.
	// The result is returned by value so the fault hot path never heap-
	// allocates a pending-read handle.
	StartGet(now time.Duration, key Key) PendingGet
	// Delete removes one page (VM teardown).
	Delete(now time.Duration, key Key) (time.Duration, error)
	// Stats returns a snapshot of traffic counters.
	Stats() Stats
}

// Local is implemented by backends resident on the hypervisor itself: no
// network round trip is involved, so the monitor skips its RPC-stack costs.
type Local interface {
	// Local reports that operations do not cross the network.
	Local() bool
}

// ValidatePage returns ErrBadValue unless page is exactly one page long.
func ValidatePage(page []byte) error {
	if len(page) != PageSize {
		return fmt.Errorf("%w: got %d bytes", ErrBadValue, len(page))
	}
	return nil
}
