package kvstore

import (
	"encoding/json"
	"errors"
	"fmt"

	"fluidmem/internal/zookeeper"
)

// Registry allocates globally unique virtual partition indexes. The paper
// builds the index from the QEMU process PID, a hypervisor ID, and a nonce,
// with global uniqueness ensured by a replicated table in ZooKeeper (§IV).
type Registry interface {
	// Allocate reserves a partition for the VM identified by
	// (hypervisorID, pid) and returns its index.
	Allocate(hypervisorID string, pid int) (PartitionID, error)
	// Release frees a previously allocated partition.
	Release(part PartitionID) error
	// Adopt records ownership of an already-allocated partition, used when
	// a VM migrates between hypervisors: the partition's pages are live in
	// the store and ownership moves with the VM.
	Adopt(part PartitionID) error
}

// partitionRecord is the table payload describing an allocation.
type partitionRecord struct {
	HypervisorID string `json:"hypervisorId"`
	PID          int    `json:"pid"`
	Nonce        uint64 `json:"nonce"`
}

// ZKRegistry is the ZooKeeper-backed registry: candidate indexes are derived
// from hash(hypervisorID, pid, nonce) and claimed with a create-if-absent on
// the replicated table, so two hypervisors can never mint the same index.
type ZKRegistry struct {
	zk     *zookeeper.Cluster
	prefix string
}

var _ Registry = (*ZKRegistry)(nil)

// NewZKRegistry returns a registry storing claims under /fluidmem/partitions.
func NewZKRegistry(zk *zookeeper.Cluster) *ZKRegistry {
	return &ZKRegistry{zk: zk, prefix: "/fluidmem/partitions/"}
}

// Allocate claims a free partition index, retrying with a fresh nonce on
// collision. With 4096 slots, collisions are resolved in a handful of tries
// until the space is nearly full.
func (r *ZKRegistry) Allocate(hypervisorID string, pid int) (PartitionID, error) {
	for nonce := uint64(0); nonce < MaxPartitions*2; nonce++ {
		candidate := partitionHash(hypervisorID, pid, nonce)
		data, err := json.Marshal(partitionRecord{HypervisorID: hypervisorID, PID: pid, Nonce: nonce})
		if err != nil {
			return 0, fmt.Errorf("registry: marshal record: %w", err)
		}
		err = r.zk.Create(r.path(candidate), data)
		if err == nil {
			return candidate, nil
		}
		if errors.Is(err, zookeeper.ErrNodeExists) {
			continue // occupied: bump the nonce and retry
		}
		return 0, fmt.Errorf("registry: claim partition: %w", err)
	}
	return 0, ErrNoPartitions
}

// Adopt takes ownership of a migrated VM's partition. The table entry was
// created by the source hypervisor and stays; adoption is idempotent.
func (r *ZKRegistry) Adopt(part PartitionID) error {
	_, _, err := r.zk.Get(r.path(part))
	if errors.Is(err, zookeeper.ErrNoNode) {
		return fmt.Errorf("registry: adopt partition %d: no such allocation", part)
	}
	if err != nil {
		return fmt.Errorf("registry: adopt partition %d: %w", part, err)
	}
	return nil
}

// Release frees the partition's table entry.
func (r *ZKRegistry) Release(part PartitionID) error {
	if err := r.zk.Delete(r.path(part), 0); err != nil {
		return fmt.Errorf("registry: release partition %d: %w", part, err)
	}
	return nil
}

// Owner reports the record stored for a partition, for operator inspection.
func (r *ZKRegistry) Owner(part PartitionID) (hypervisorID string, pid int, err error) {
	data, _, err := r.zk.Get(r.path(part))
	if err != nil {
		return "", 0, fmt.Errorf("registry: lookup partition %d: %w", part, err)
	}
	var rec partitionRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return "", 0, fmt.Errorf("registry: decode partition %d: %w", part, err)
	}
	return rec.HypervisorID, rec.PID, nil
}

func (r *ZKRegistry) path(part PartitionID) string {
	return fmt.Sprintf("%s%04d", r.prefix, part)
}

// LocalRegistry is a single-hypervisor, in-memory registry used when no
// ZooKeeper ensemble is configured (e.g. unit tests and single-machine
// simulations). It hands out the same hash-derived indexes as ZKRegistry.
type LocalRegistry struct {
	used map[PartitionID]bool
}

var _ Registry = (*LocalRegistry)(nil)

// NewLocalRegistry returns an empty local registry.
func NewLocalRegistry() *LocalRegistry {
	return &LocalRegistry{used: make(map[PartitionID]bool)}
}

// Allocate reserves a partition index unique within this registry.
func (r *LocalRegistry) Allocate(hypervisorID string, pid int) (PartitionID, error) {
	for nonce := uint64(0); nonce < MaxPartitions*2; nonce++ {
		candidate := partitionHash(hypervisorID, pid, nonce)
		if !r.used[candidate] {
			r.used[candidate] = true
			return candidate, nil
		}
	}
	return 0, ErrNoPartitions
}

// Adopt records ownership of a migrated partition. With a shared local
// registry the slot is already marked used by the source's allocation;
// adopting a partition nobody allocated is a caller bug (the migrated VM's
// pages cannot exist in the store), matching ZKRegistry's behaviour.
func (r *LocalRegistry) Adopt(part PartitionID) error {
	if !r.used[part] {
		return fmt.Errorf("registry: adopt partition %d: no such allocation", part)
	}
	return nil
}

// Release frees the index.
func (r *LocalRegistry) Release(part PartitionID) error {
	if !r.used[part] {
		return fmt.Errorf("registry: partition %d not allocated", part)
	}
	delete(r.used, part)
	return nil
}

// partitionHash maps (hypervisorID, pid, nonce) to a 12-bit index (FNV-1a).
func partitionHash(hypervisorID string, pid int, nonce uint64) PartitionID {
	var h uint64 = 14695981039346656037
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < len(hypervisorID); i++ {
		mix(hypervisorID[i])
	}
	for i := 0; i < 8; i++ {
		mix(byte(pid >> (8 * i)))
		mix(byte(nonce >> (8 * i)))
	}
	return PartitionID(h & 0xFFF)
}
