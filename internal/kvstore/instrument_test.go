package kvstore_test

import (
	"testing"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/cluster"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/faulty"
	"fluidmem/internal/kvstore/memcached"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/kvstore/replicated"
	"fluidmem/internal/kvstore/storetest"
	"fluidmem/internal/trace"
)

// instrumentedBackends builds a fresh instance of every backend the wrapper
// can decorate: the three latency models, the replication wrapper, and the
// fault injector (at zero rate, so the contract holds deterministically).
func instrumentedBackends(t *testing.T) map[string]storetest.Factory {
	t.Helper()
	return map[string]storetest.Factory{
		"dram":      func() kvstore.Store { return dram.New(dram.DefaultParams(), 1) },
		"ramcloud":  func() kvstore.Store { return ramcloud.New(ramcloud.DefaultParams(), 1) },
		"memcached": func() kvstore.Store { return memcached.New(memcached.DefaultParams(), 1) },
		"replicated": func() kvstore.Store {
			members := []kvstore.Store{
				ramcloud.New(ramcloud.DefaultParams(), 1),
				ramcloud.New(ramcloud.DefaultParams(), 2),
				ramcloud.New(ramcloud.DefaultParams(), 3),
			}
			s, err := replicated.New(members...)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"faulty": func() kvstore.Store {
			return faulty.Wrap(dram.New(dram.DefaultParams(), 1), faulty.Uniform(0, 0), 99)
		},
		"cluster": func() kvstore.Store {
			s, err := cluster.New(cluster.Config{Nodes: 3, Replicas: 2, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

// The instrumentation wrapper must change no Store semantics on ANY backend:
// the full conformance suite (including error paths) runs through it over
// every store implementation, with a live tracer and with a nil one (the
// identity path).
func TestInstrumentedConformance(t *testing.T) {
	for name, factory := range instrumentedBackends(t) {
		factory := factory
		t.Run(name+"/live-tracer", func(t *testing.T) {
			storetest.Run(t, func() kvstore.Store {
				return kvstore.Instrumented(factory(), trace.New(true))
			})
		})
		t.Run(name+"/nil-tracer", func(t *testing.T) {
			storetest.Run(t, func() kvstore.Store {
				return kvstore.Instrumented(factory(), nil)
			})
		})
	}
}

// A nil tracer must return the store unwrapped — identity, zero overhead.
func TestInstrumentedNilTracerIsIdentity(t *testing.T) {
	inner := dram.New(dram.DefaultParams(), 1)
	if got := kvstore.Instrumented(inner, nil); got != kvstore.Store(inner) {
		t.Fatal("Instrumented(store, nil) did not return the store itself")
	}
}

// The wrapper must emit one event per operation with the operation's true
// virtual span, and preserve the inner store's Local signal.
func TestInstrumentedEmitsStoreEvents(t *testing.T) {
	tr := trace.New(true)
	s := kvstore.Instrumented(dram.New(dram.DefaultParams(), 1), tr)

	key := kvstore.MakeKey(0x10000, 1)
	page := storetest.Page(9)
	putDone, err := s.Put(0, key, page)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(putDone, key); err != nil {
		t.Fatal(err)
	}
	keys := []kvstore.Key{kvstore.MakeKey(0x20000, 1), kvstore.MakeKey(0x21000, 1)}
	if _, err := s.MultiPut(putDone, keys, [][]byte{storetest.Page(1), storetest.Page(2)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.MultiGet(putDone, keys); err != nil {
		t.Fatal(err)
	}
	p := s.StartGet(putDone, key)
	if _, _, err := p.Wait(putDone + time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(putDone, key); err != nil {
		t.Fatal(err)
	}

	want := map[string]string{
		trace.EvStorePut:      "",
		trace.EvStoreGet:      "", // sync get; the split read adds arg "split"
		trace.EvStoreMultiPut: "2",
		trace.EvStoreMultiGet: "2",
		trace.EvStoreDelete:   "",
	}
	seen := map[string]int{}
	split := false
	for _, ev := range tr.Events() {
		seen[ev.Name]++
		if ev.Name == trace.EvStoreGet && ev.Arg == "split" {
			split = true
		}
		if arg, ok := want[ev.Name]; ok && arg != "" && ev.Arg != arg {
			t.Errorf("%s arg = %q, want %q", ev.Name, ev.Arg, arg)
		}
		if ev.Dur < 0 {
			t.Errorf("%s has negative duration %v", ev.Name, ev.Dur)
		}
	}
	for name := range want {
		if seen[name] == 0 {
			t.Errorf("no %s event emitted", name)
		}
	}
	if !split {
		t.Error("StartGet did not emit a split-read STORE_GET event")
	}

	if l, ok := s.(kvstore.Local); !ok || !l.Local() {
		t.Error("wrapper lost the dram store's Local() signal")
	}
}

// A failed operation must not emit an event (the trace records work the
// store actually performed; the resilience layer traces the failures).
func TestInstrumentedSkipsFailedOps(t *testing.T) {
	tr := trace.New(true)
	s := kvstore.Instrumented(dram.New(dram.DefaultParams(), 1), tr)
	if _, _, err := s.Get(0, kvstore.MakeKey(0x999000, 1)); err == nil {
		t.Fatal("expected miss")
	}
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("miss emitted %d events", n)
	}
}
