package replicated

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"fluidmem/internal/core"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/kvstore/storetest"
)

func threeWay(t *testing.T) (*Store, []kvstore.Store) {
	t.Helper()
	members := []kvstore.Store{
		ramcloud.New(ramcloud.DefaultParams(), 1),
		ramcloud.New(ramcloud.DefaultParams(), 2),
		ramcloud.New(ramcloud.DefaultParams(), 3),
	}
	s, err := New(members...)
	if err != nil {
		t.Fatal(err)
	}
	return s, members
}

func TestConformance(t *testing.T) {
	storetest.Run(t, func() kvstore.Store {
		s, err := New(
			dram.New(dram.DefaultParams(), 1),
			dram.New(dram.DefaultParams(), 2),
		)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(nil); err == nil {
		t.Fatal("nil member accepted")
	}
}

func TestWritesReachAllMembers(t *testing.T) {
	s, members := threeWay(t)
	key := kvstore.MakeKey(0x1000, 1)
	if _, err := s.Put(0, key, storetest.Page(5)); err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		data, _, err := m.Get(0, key)
		if err != nil {
			t.Fatalf("member %d missing the page: %v", i, err)
		}
		if !bytes.Equal(data, storetest.Page(5)) {
			t.Fatalf("member %d corrupted", i)
		}
	}
}

func TestWriteCompletionIsSlowestMember(t *testing.T) {
	fast := dram.New(dram.DefaultParams(), 1)
	slow := ramcloud.New(ramcloud.DefaultParams(), 2)
	s, err := New(fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Put(0, kvstore.MakeKey(0x1000, 1), storetest.Page(1))
	if err != nil {
		t.Fatal(err)
	}
	if done < 10*time.Microsecond {
		t.Fatalf("completion %v ignores the slow member", done)
	}
}

func TestReadFailover(t *testing.T) {
	s, _ := threeWay(t)
	key := kvstore.MakeKey(0x2000, 1)
	if _, err := s.Put(0, key, storetest.Page(9)); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(0); err != nil {
		t.Fatal(err)
	}
	data, _, err := s.Get(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, storetest.Page(9)) {
		t.Fatal("failover read corrupted")
	}
	if s.Failovers() == 0 {
		t.Fatal("failover not counted")
	}
}

func TestSurvivesTwoOfThreeCrashes(t *testing.T) {
	s, _ := threeWay(t)
	key := kvstore.MakeKey(0x3000, 1)
	if _, err := s.Put(0, key, storetest.Page(3)); err != nil {
		t.Fatal(err)
	}
	s.Fail(0)
	s.Fail(1)
	if _, _, err := s.Get(0, key); err != nil {
		t.Fatalf("read with one survivor: %v", err)
	}
	// Writes keep working on the survivor.
	if _, err := s.Put(0, kvstore.MakeKey(0x4000, 1), storetest.Page(4)); err != nil {
		t.Fatal(err)
	}
}

func TestAllDown(t *testing.T) {
	s, _ := threeWay(t)
	key := kvstore.MakeKey(0x5000, 1)
	s.Put(0, key, storetest.Page(1))
	for i := 0; i < 3; i++ {
		s.Fail(i)
	}
	if _, _, err := s.Get(0, key); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("read err = %v", err)
	}
	if _, err := s.Put(0, key, storetest.Page(1)); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("write err = %v", err)
	}
	if _, err := s.Delete(0, key); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("delete err = %v", err)
	}
}

func TestRecoveredMemberMissesFailOver(t *testing.T) {
	s, _ := threeWay(t)
	s.Fail(0)
	key := kvstore.MakeKey(0x6000, 1)
	// Written while member 0 is down: only members 1 and 2 have it.
	if _, err := s.Put(0, key, storetest.Page(7)); err != nil {
		t.Fatal(err)
	}
	s.Recover(0)
	// Primary (0) misses; the read must fail over and still succeed.
	data, _, err := s.Get(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, storetest.Page(7)) {
		t.Fatal("failover-after-recovery corrupted")
	}
}

func TestReadRepairThenPrimaryCrashLosesNothing(t *testing.T) {
	// The recovery-gap scenario ISSUE calls out: a member crashes, misses
	// writes, recovers, and later the members that DID see the writes crash.
	// Without repair the recovered member serves nothing and the pages are
	// gone; with read-repair the heal phase back-fills it.
	s, members := threeWay(t)
	s.Fail(0)
	const n = 16
	for i := 0; i < n; i++ {
		if _, err := s.Put(0, kvstore.MakeKey(uint64(0x10000+i*kvstore.PageSize), 1), storetest.Page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Recover(0)
	// Heal phase: every read finds the primary (0) missing the key, fails
	// over, and back-fills the copy.
	for i := 0; i < n; i++ {
		if _, _, err := s.Get(0, kvstore.MakeKey(uint64(0x10000+i*kvstore.PageSize), 1)); err != nil {
			t.Fatalf("heal read %d: %v", i, err)
		}
	}
	if got := s.ReadRepairs(); got != n {
		t.Fatalf("ReadRepairs = %d, want %d", got, n)
	}
	// Member 0 must now hold real copies, not rely on the others.
	for i := 0; i < n; i++ {
		data, _, err := members[0].Get(0, kvstore.MakeKey(uint64(0x10000+i*kvstore.PageSize), 1))
		if err != nil {
			t.Fatalf("member 0 not back-filled for key %d: %v", i, err)
		}
		if !bytes.Equal(data, storetest.Page(byte(i))) {
			t.Fatalf("repair corrupted key %d", i)
		}
	}
	// Now the only members that originally saw the writes crash.
	s.Fail(1)
	s.Fail(2)
	for i := 0; i < n; i++ {
		data, _, err := s.Get(0, kvstore.MakeKey(uint64(0x10000+i*kvstore.PageSize), 1))
		if err != nil {
			t.Fatalf("page %d lost after heal-then-crash: %v", i, err)
		}
		if !bytes.Equal(data, storetest.Page(byte(i))) {
			t.Fatalf("page %d corrupted after heal-then-crash", i)
		}
	}
}

func TestResyncBackfillsRecoveredMember(t *testing.T) {
	s, members := threeWay(t)
	s.Fail(0)
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := s.Put(0, kvstore.MakeKey(uint64(0x20000+i*kvstore.PageSize), 1), storetest.Page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Recover(0)
	done, repaired, err := s.Resync(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != n {
		t.Fatalf("repaired = %d, want %d", repaired, n)
	}
	if done <= time.Millisecond {
		t.Fatal("Resync charged no virtual time")
	}
	// One sweep converges: the recovered member can serve alone.
	s.Fail(1)
	s.Fail(2)
	for i := 0; i < n; i++ {
		data, _, err := s.Get(done, kvstore.MakeKey(uint64(0x20000+i*kvstore.PageSize), 1))
		if err != nil {
			t.Fatalf("page %d not resynced: %v", i, err)
		}
		if !bytes.Equal(data, storetest.Page(byte(i))) {
			t.Fatalf("page %d corrupted by resync", i)
		}
	}
	_ = members
	// A second sweep finds nothing to do.
	if _, repaired, _ := s.Resync(done); repaired != 0 {
		t.Fatalf("idempotent resync repaired %d copies", repaired)
	}
}

func TestDeleteNotResurrected(t *testing.T) {
	// A member that was down during a Delete keeps a stale copy; neither
	// reads nor Resync may resurrect the key.
	s, members := threeWay(t)
	key := kvstore.MakeKey(0x30000, 1)
	if _, err := s.Put(0, key, storetest.Page(1)); err != nil {
		t.Fatal(err)
	}
	s.Fail(0) // member 0 sleeps through the delete
	if _, err := s.Delete(0, key); err != nil {
		t.Fatal(err)
	}
	s.Recover(0)
	// Member 0 still physically holds the page…
	if _, _, err := members[0].Get(0, key); err != nil {
		t.Fatalf("test setup: stale copy should exist: %v", err)
	}
	// …but the wrapper must say gone.
	if _, _, err := s.Get(0, key); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("deleted key resurrected: %v", err)
	}
	if _, repaired, _ := s.Resync(0); repaired != 0 {
		t.Fatalf("resync resurrected a deleted key (%d repairs)", repaired)
	}
	if _, _, err := s.Get(0, key); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("deleted key resurrected after resync: %v", err)
	}
}

func TestUnavailableIsNotNotFound(t *testing.T) {
	// A live key whose holders are all down is transient (ErrUnavailable),
	// not ErrNotFound: the resilience layer retries the former and gives up
	// on the latter, so conflating them would turn an outage into data loss.
	s, _ := threeWay(t)
	s.Fail(0)
	key := kvstore.MakeKey(0x40000, 1)
	if _, err := s.Put(0, key, storetest.Page(8)); err != nil {
		t.Fatal(err)
	}
	s.Recover(0) // member 0 is up but missed the write
	s.Fail(1)
	s.Fail(2)
	_, _, err := s.Get(0, key)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if errors.Is(err, kvstore.ErrNotFound) {
		t.Fatal("ErrUnavailable must not satisfy ErrNotFound")
	}
	// Recovery makes the same read succeed — and back-fill member 0.
	s.Recover(1)
	data, _, err := s.Get(0, key)
	if err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	if !bytes.Equal(data, storetest.Page(8)) {
		t.Fatal("recovered read corrupted")
	}
	if s.ReadRepairs() == 0 {
		t.Fatal("recovery read did not repair the gap member")
	}
}

func TestMemberErrorFailsOver(t *testing.T) {
	// An erroring (not crashed) primary must be skipped, not surfaced: the
	// wrapper masks any failure some healthy replica can serve.
	s, members := threeWay(t)
	key := kvstore.MakeKey(0x50000, 1)
	if _, err := s.Put(0, key, storetest.Page(6)); err != nil {
		t.Fatal(err)
	}
	// Replace the primary with one that always errors.
	s.members[0] = erroringStore{inner: members[0]}
	data, _, err := s.Get(0, key)
	if err != nil {
		t.Fatalf("read with erroring primary: %v", err)
	}
	if !bytes.Equal(data, storetest.Page(6)) {
		t.Fatal("failover read corrupted")
	}
	if s.MemberErrors() == 0 {
		t.Fatal("member error not counted")
	}
}

// erroringStore fails every op with a transient error.
type erroringStore struct{ inner kvstore.Store }

var errBroken = errors.New("erroring: transient")

func (e erroringStore) Name() string { return "erroring" }
func (e erroringStore) Put(now time.Duration, key kvstore.Key, page []byte) (time.Duration, error) {
	return now, errBroken
}
func (e erroringStore) MultiPut(now time.Duration, keys []kvstore.Key, pages [][]byte) (time.Duration, error) {
	return now, errBroken
}
func (e erroringStore) Get(now time.Duration, key kvstore.Key) ([]byte, time.Duration, error) {
	return nil, now, errBroken
}
func (e erroringStore) MultiGet(now time.Duration, keys []kvstore.Key) ([][]byte, time.Duration, error) {
	return nil, now, errBroken
}
func (e erroringStore) StartGet(now time.Duration, key kvstore.Key) kvstore.PendingGet {
	return kvstore.PendingGet{Key: key, ReadyAt: now, Err: errBroken}
}
func (e erroringStore) Delete(now time.Duration, key kvstore.Key) (time.Duration, error) {
	return now, errBroken
}
func (e erroringStore) Stats() kvstore.Stats { return e.inner.Stats() }

func TestRotatePrimarySkipsDownMembers(t *testing.T) {
	s, _ := threeWay(t)
	if s.Primary() != 0 {
		t.Fatalf("initial primary = %d", s.Primary())
	}
	s.Fail(1)
	if got := s.RotatePrimary(); got != 2 {
		t.Fatalf("RotatePrimary = %d, want 2 (skipping down member 1)", got)
	}
	if got := s.RotatePrimary(); got != 0 {
		t.Fatalf("RotatePrimary = %d, want 0", got)
	}
}

func TestFailValidation(t *testing.T) {
	s, _ := threeWay(t)
	if err := s.Fail(9); err == nil {
		t.Fatal("bad index accepted")
	}
	if err := s.Recover(-1); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestStartGetFailover(t *testing.T) {
	s, _ := threeWay(t)
	key := kvstore.MakeKey(0x7000, 1)
	s.Put(0, key, storetest.Page(2))
	s.Fail(0)
	p := s.StartGet(0, key)
	data, _, err := p.Wait(p.ReadyAt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, storetest.Page(2)) {
		t.Fatal("async failover corrupted")
	}
}

func TestMonitorRunsOnReplicatedStore(t *testing.T) {
	// End-to-end: FluidMem over a 2-way replicated RAMCloud survives a
	// member crash mid-workload with no page loss.
	s, err := New(
		ramcloud.New(ramcloud.DefaultParams(), 1),
		ramcloud.New(ramcloud.DefaultParams(), 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	runMonitorWorkload(t, s)
}

// runMonitorWorkload exercises a monitor over the given store and crashes
// replica 0 halfway through.
func runMonitorWorkload(t *testing.T, s *Store) {
	t.Helper()
	mon := newTestMonitor(t, s)
	const base = 0x7f00_0000_0000
	now := time.Duration(0)
	write := func(i int, tag byte) {
		data, done, err := mon.Touch(now, base+uint64(i)*kvstore.PageSize, true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		data[0] = tag
	}
	check := func(i int, tag byte) {
		data, done, err := mon.Touch(now, base+uint64(i)*kvstore.PageSize, false)
		if err != nil {
			t.Fatalf("page %d after crash: %v", i, err)
		}
		now = done
		if data[0] != tag {
			t.Fatalf("page %d corrupted", i)
		}
	}
	for i := 0; i < 32; i++ {
		write(i, byte(i+1))
	}
	// Push everything to the store so the reads below must go remote.
	done, err := mon.Drain(now)
	if err != nil {
		t.Fatal(err)
	}
	now = done
	if err := s.Fail(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		check(i, byte(i+1))
	}
	if s.Failovers() == 0 {
		t.Fatal("crash produced no failovers; test not exercising replication")
	}
}

// newTestMonitor wires a FluidMem monitor over the store with a small LRU
// and one registered range at 0x7f00_0000_0000.
func newTestMonitor(t *testing.T, s kvstore.Store) *core.Monitor {
	t.Helper()
	mon, err := core.NewMonitor(core.DefaultConfig(s, 8), nil, "hyp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.RegisterRange(0x7f00_0000_0000, 64*kvstore.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	return mon
}
