package replicated

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"fluidmem/internal/core"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/kvstore/ramcloud"
	"fluidmem/internal/kvstore/storetest"
)

func threeWay(t *testing.T) (*Store, []kvstore.Store) {
	t.Helper()
	members := []kvstore.Store{
		ramcloud.New(ramcloud.DefaultParams(), 1),
		ramcloud.New(ramcloud.DefaultParams(), 2),
		ramcloud.New(ramcloud.DefaultParams(), 3),
	}
	s, err := New(members...)
	if err != nil {
		t.Fatal(err)
	}
	return s, members
}

func TestConformance(t *testing.T) {
	storetest.Run(t, func() kvstore.Store {
		s, err := New(
			dram.New(dram.DefaultParams(), 1),
			dram.New(dram.DefaultParams(), 2),
		)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(nil); err == nil {
		t.Fatal("nil member accepted")
	}
}

func TestWritesReachAllMembers(t *testing.T) {
	s, members := threeWay(t)
	key := kvstore.MakeKey(0x1000, 1)
	if _, err := s.Put(0, key, storetest.Page(5)); err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		data, _, err := m.Get(0, key)
		if err != nil {
			t.Fatalf("member %d missing the page: %v", i, err)
		}
		if !bytes.Equal(data, storetest.Page(5)) {
			t.Fatalf("member %d corrupted", i)
		}
	}
}

func TestWriteCompletionIsSlowestMember(t *testing.T) {
	fast := dram.New(dram.DefaultParams(), 1)
	slow := ramcloud.New(ramcloud.DefaultParams(), 2)
	s, err := New(fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Put(0, kvstore.MakeKey(0x1000, 1), storetest.Page(1))
	if err != nil {
		t.Fatal(err)
	}
	if done < 10*time.Microsecond {
		t.Fatalf("completion %v ignores the slow member", done)
	}
}

func TestReadFailover(t *testing.T) {
	s, _ := threeWay(t)
	key := kvstore.MakeKey(0x2000, 1)
	if _, err := s.Put(0, key, storetest.Page(9)); err != nil {
		t.Fatal(err)
	}
	if err := s.Fail(0); err != nil {
		t.Fatal(err)
	}
	data, _, err := s.Get(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, storetest.Page(9)) {
		t.Fatal("failover read corrupted")
	}
	if s.Failovers() == 0 {
		t.Fatal("failover not counted")
	}
}

func TestSurvivesTwoOfThreeCrashes(t *testing.T) {
	s, _ := threeWay(t)
	key := kvstore.MakeKey(0x3000, 1)
	if _, err := s.Put(0, key, storetest.Page(3)); err != nil {
		t.Fatal(err)
	}
	s.Fail(0)
	s.Fail(1)
	if _, _, err := s.Get(0, key); err != nil {
		t.Fatalf("read with one survivor: %v", err)
	}
	// Writes keep working on the survivor.
	if _, err := s.Put(0, kvstore.MakeKey(0x4000, 1), storetest.Page(4)); err != nil {
		t.Fatal(err)
	}
}

func TestAllDown(t *testing.T) {
	s, _ := threeWay(t)
	key := kvstore.MakeKey(0x5000, 1)
	s.Put(0, key, storetest.Page(1))
	for i := 0; i < 3; i++ {
		s.Fail(i)
	}
	if _, _, err := s.Get(0, key); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("read err = %v", err)
	}
	if _, err := s.Put(0, key, storetest.Page(1)); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("write err = %v", err)
	}
}

func TestRecoveredMemberMissesFailOver(t *testing.T) {
	s, _ := threeWay(t)
	s.Fail(0)
	key := kvstore.MakeKey(0x6000, 1)
	// Written while member 0 is down: only members 1 and 2 have it.
	if _, err := s.Put(0, key, storetest.Page(7)); err != nil {
		t.Fatal(err)
	}
	s.Recover(0)
	// Primary (0) misses; the read must fail over and still succeed.
	data, _, err := s.Get(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, storetest.Page(7)) {
		t.Fatal("failover-after-recovery corrupted")
	}
}

func TestFailValidation(t *testing.T) {
	s, _ := threeWay(t)
	if err := s.Fail(9); err == nil {
		t.Fatal("bad index accepted")
	}
	if err := s.Recover(-1); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestStartGetFailover(t *testing.T) {
	s, _ := threeWay(t)
	key := kvstore.MakeKey(0x7000, 1)
	s.Put(0, key, storetest.Page(2))
	s.Fail(0)
	p := s.StartGet(0, key)
	data, _, err := p.Wait(p.ReadyAt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, storetest.Page(2)) {
		t.Fatal("async failover corrupted")
	}
}

func TestMonitorRunsOnReplicatedStore(t *testing.T) {
	// End-to-end: FluidMem over a 2-way replicated RAMCloud survives a
	// member crash mid-workload with no page loss.
	s, err := New(
		ramcloud.New(ramcloud.DefaultParams(), 1),
		ramcloud.New(ramcloud.DefaultParams(), 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	runMonitorWorkload(t, s)
}

// runMonitorWorkload exercises a monitor over the given store and crashes
// replica 0 halfway through.
func runMonitorWorkload(t *testing.T, s *Store) {
	t.Helper()
	mon := newTestMonitor(t, s)
	const base = 0x7f00_0000_0000
	now := time.Duration(0)
	write := func(i int, tag byte) {
		data, done, err := mon.Touch(now, base+uint64(i)*kvstore.PageSize, true)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		data[0] = tag
	}
	check := func(i int, tag byte) {
		data, done, err := mon.Touch(now, base+uint64(i)*kvstore.PageSize, false)
		if err != nil {
			t.Fatalf("page %d after crash: %v", i, err)
		}
		now = done
		if data[0] != tag {
			t.Fatalf("page %d corrupted", i)
		}
	}
	for i := 0; i < 32; i++ {
		write(i, byte(i+1))
	}
	// Push everything to the store so the reads below must go remote.
	done, err := mon.Drain(now)
	if err != nil {
		t.Fatal(err)
	}
	now = done
	if err := s.Fail(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		check(i, byte(i+1))
	}
	if s.Failovers() == 0 {
		t.Fatal("crash produced no failovers; test not exercising replication")
	}
}

// newTestMonitor wires a FluidMem monitor over the store with a small LRU
// and one registered range at 0x7f00_0000_0000.
func newTestMonitor(t *testing.T, s kvstore.Store) *core.Monitor {
	t.Helper()
	mon, err := core.NewMonitor(core.DefaultConfig(s, 8), nil, "hyp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.RegisterRange(0x7f00_0000_0000, 64*kvstore.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	return mon
}
