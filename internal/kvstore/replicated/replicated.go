// Package replicated implements page replication across remote servers, one
// of the provider customisations the paper calls out as a benefit of
// handling paging in user space (§III: "Some examples are page compression
// or replication across remote servers").
//
// A replicated store fans every write out to N member stores. Writes
// complete when the slowest member acknowledges (the monitor's writeback is
// asynchronous, so this rarely touches the fault critical path, matching the
// paper's note that RAMCloud replication "only impacts key-value writes").
// Reads go to the fastest healthy member and fail over transparently when a
// member is down, so a remote-memory server crash no longer kills every VM
// with pages on it.
package replicated

import (
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/kvstore"
)

// Errors.
var (
	// ErrNoReplicas reports construction without member stores.
	ErrNoReplicas = errors.New("replicated: need at least one member store")
	// ErrAllReplicasDown reports a read with every member failed.
	ErrAllReplicasDown = errors.New("replicated: all replicas down")
)

// Store is the replication wrapper.
type Store struct {
	members []kvstore.Store
	down    []bool
	// primary is the preferred read replica.
	primary int

	stats     kvstore.Stats
	failovers uint64
}

var _ kvstore.Store = (*Store)(nil)

// New wraps the member stores. members[0] is the initial read primary.
func New(members ...kvstore.Store) (*Store, error) {
	if len(members) == 0 {
		return nil, ErrNoReplicas
	}
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("replicated: member %d is nil", i)
		}
	}
	return &Store{members: members, down: make([]bool, len(members))}, nil
}

// Name implements kvstore.Store.
func (s *Store) Name() string {
	return fmt.Sprintf("replicated(%s×%d)", s.members[0].Name(), len(s.members))
}

// Fail marks member i crashed: reads fail over, writes skip it. Fail and
// Recover are the fault-injection surface for tests and demos.
func (s *Store) Fail(i int) error {
	if i < 0 || i >= len(s.members) {
		return fmt.Errorf("replicated: no member %d", i)
	}
	s.down[i] = true
	return nil
}

// Recover brings member i back. Pages written while it was down are missing
// there; reads of those keys fail over to members that have them.
func (s *Store) Recover(i int) error {
	if i < 0 || i >= len(s.members) {
		return fmt.Errorf("replicated: no member %d", i)
	}
	s.down[i] = false
	return nil
}

// Failovers reports how many reads were served by a non-primary member.
func (s *Store) Failovers() uint64 { return s.failovers }

// Put implements kvstore.Store: write to every healthy member, complete with
// the slowest.
func (s *Store) Put(now time.Duration, key kvstore.Key, page []byte) (time.Duration, error) {
	s.stats.Puts++
	latest := now
	wrote := false
	for i, m := range s.members {
		if s.down[i] {
			continue
		}
		done, err := m.Put(now, key, page)
		if err != nil {
			return done, fmt.Errorf("replicated: member %d: %w", i, err)
		}
		wrote = true
		if done > latest {
			latest = done
		}
	}
	if !wrote {
		return now, ErrAllReplicasDown
	}
	s.stats.BytesStored = s.healthyBytes()
	return latest, nil
}

// MultiPut implements kvstore.Store.
func (s *Store) MultiPut(now time.Duration, keys []kvstore.Key, pages [][]byte) (time.Duration, error) {
	if len(keys) != len(pages) {
		return now, kvstore.ErrBadValue
	}
	s.stats.MultiPuts++
	s.stats.Puts += uint64(len(keys))
	latest := now
	wrote := false
	for i, m := range s.members {
		if s.down[i] {
			continue
		}
		done, err := m.MultiPut(now, keys, pages)
		if err != nil {
			return done, fmt.Errorf("replicated: member %d: %w", i, err)
		}
		wrote = true
		if done > latest {
			latest = done
		}
	}
	if !wrote {
		return now, ErrAllReplicasDown
	}
	s.stats.BytesStored = s.healthyBytes()
	return latest, nil
}

// Get implements kvstore.Store: read from the primary, failing over member
// by member on crash or miss.
func (s *Store) Get(now time.Duration, key kvstore.Key) ([]byte, time.Duration, error) {
	s.stats.Gets++
	t := now
	tried := 0
	for off := 0; off < len(s.members); off++ {
		i := (s.primary + off) % len(s.members)
		if s.down[i] {
			continue
		}
		tried++
		data, done, err := s.members[i].Get(t, key)
		if err == nil {
			if off != 0 {
				s.failovers++
			}
			return data, done, nil
		}
		if !errors.Is(err, kvstore.ErrNotFound) {
			return nil, done, fmt.Errorf("replicated: member %d: %w", i, err)
		}
		t = done // the failed attempt's round trip is paid
	}
	if tried == 0 {
		return nil, now, ErrAllReplicasDown
	}
	s.stats.Misses++
	return nil, t, kvstore.ErrNotFound
}

// StartGet implements kvstore.Store. The split read goes to the primary;
// a failover path falls back to a synchronous sweep inside Wait's budget.
func (s *Store) StartGet(now time.Duration, key kvstore.Key) *kvstore.PendingGet {
	for off := 0; off < len(s.members); off++ {
		i := (s.primary + off) % len(s.members)
		if s.down[i] {
			continue
		}
		s.stats.Gets++
		p := s.members[i].StartGet(now, key)
		if p.Err == nil {
			if off != 0 {
				s.failovers++
			}
			return p
		}
		if !errors.Is(p.Err, kvstore.ErrNotFound) {
			return p
		}
		now = p.ReadyAt
	}
	s.stats.Misses++
	return &kvstore.PendingGet{Key: key, ReadyAt: now, Err: kvstore.ErrNotFound}
}

// Delete implements kvstore.Store.
func (s *Store) Delete(now time.Duration, key kvstore.Key) (time.Duration, error) {
	s.stats.Deletes++
	latest := now
	for i, m := range s.members {
		if s.down[i] {
			continue
		}
		done, err := m.Delete(now, key)
		if err != nil {
			return done, fmt.Errorf("replicated: member %d: %w", i, err)
		}
		if done > latest {
			latest = done
		}
	}
	s.stats.BytesStored = s.healthyBytes()
	return latest, nil
}

// Stats implements kvstore.Store. BytesStored reports the primary healthy
// member's payload (logical bytes, not total replicated bytes).
func (s *Store) Stats() kvstore.Stats { return s.stats }

func (s *Store) healthyBytes() uint64 {
	for i, m := range s.members {
		if !s.down[i] {
			return m.Stats().BytesStored
		}
	}
	return 0
}
