// Package replicated implements page replication across remote servers, one
// of the provider customisations the paper calls out as a benefit of
// handling paging in user space (§III: "Some examples are page compression
// or replication across remote servers").
//
// A replicated store fans every write out to N member stores. Writes
// complete when the slowest member acknowledges (the monitor's writeback is
// asynchronous, so this rarely touches the fault critical path, matching the
// paper's note that RAMCloud replication "only impacts key-value writes").
// Reads go to the fastest healthy member and fail over transparently when a
// member is down, errors, or misses, so a remote-memory server crash no
// longer kills every VM with pages on it.
//
// The wrapper is the single writer for its members, so it keeps an
// authoritative index mapping each live key to the set of members holding
// its current version. The index closes both halves of the recovery gap (a
// member that crashes misses every write during its downtime): a member that
// missed a key entirely is skipped on reads, and — the subtler half — a
// member that slept through an *overwrite* still holds the previous version
// and must not serve it. Two repair paths converge the members: read-repair
// back-fills stale members the moment a read finds the current value, and
// Resync sweeps the whole keyspace — the sequence a provider runs after
// healing a member and before it may become primary again.
package replicated

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fluidmem/internal/kvstore"
)

// Errors.
var (
	// ErrNoReplicas reports construction without member stores.
	ErrNoReplicas = errors.New("replicated: need at least one member store")
	// ErrAllReplicasDown reports an operation with every member failed.
	ErrAllReplicasDown = errors.New("replicated: all replicas down")
	// ErrUnavailable reports a read of a key that exists but that no live
	// member currently holds (its holders are down or erroring). Unlike
	// ErrNotFound this is transient: a retry after recovery can succeed.
	ErrUnavailable = errors.New("replicated: no live replica holds the key")
)

// Store is the replication wrapper.
type Store struct {
	members []kvstore.Store
	down    []bool
	// primary is the preferred read replica.
	primary int

	// keys is the authoritative live-key index: present means stored by at
	// least one successful write and not deleted, and the value is the
	// bitmask of members holding the CURRENT version. Members may
	// individually miss a key (crash recovery gap), hold a stale deleted
	// copy, or — the subtle case — hold a stale *previous version* after
	// sleeping through an overwrite; the index, not the member, decides both
	// existence and who may serve a read. The wrapper can maintain this
	// because it is the single writer for its members.
	keys map[kvstore.Key]uint64

	stats        kvstore.Stats
	failovers    uint64
	memberErrors uint64
	partialPuts  uint64
	readRepairs  uint64
	resyncs      uint64
}

var _ kvstore.Store = (*Store)(nil)

// New wraps the member stores. members[0] is the initial read primary.
func New(members ...kvstore.Store) (*Store, error) {
	if len(members) == 0 {
		return nil, ErrNoReplicas
	}
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("replicated: member %d is nil", i)
		}
	}
	if len(members) > 64 {
		return nil, fmt.Errorf("replicated: %d members exceeds the 64-member index", len(members))
	}
	return &Store{
		members: members,
		down:    make([]bool, len(members)),
		keys:    make(map[kvstore.Key]uint64),
	}, nil
}

// Name implements kvstore.Store.
func (s *Store) Name() string {
	return fmt.Sprintf("replicated(%s×%d)", s.members[0].Name(), len(s.members))
}

// Fail marks member i crashed: reads fail over, writes skip it. Fail and
// Recover are the fault-injection surface for tests and demos.
func (s *Store) Fail(i int) error {
	if i < 0 || i >= len(s.members) {
		return fmt.Errorf("replicated: no member %d", i)
	}
	s.down[i] = true
	return nil
}

// Recover brings member i back. Pages written while it was down are missing
// there until read-repair or a Resync sweep back-fills them; in the interim,
// reads of those keys fail over to members that have them.
func (s *Store) Recover(i int) error {
	if i < 0 || i >= len(s.members) {
		return fmt.Errorf("replicated: no member %d", i)
	}
	s.down[i] = false
	return nil
}

// Failovers reports how many reads were served by a non-primary member.
func (s *Store) Failovers() uint64 { return s.failovers }

// MemberErrors reports member operations that returned a non-NotFound error
// and were skipped (the failure the wrapper masked).
func (s *Store) MemberErrors() uint64 { return s.memberErrors }

// ReadRepairs reports keys back-filled onto members that had missed them.
func (s *Store) ReadRepairs() uint64 { return s.readRepairs }

// PartialPuts reports writes that succeeded on some but not all healthy
// members (the skipped member will converge via repair).
func (s *Store) PartialPuts() uint64 { return s.partialPuts }

// Members reports the replication factor.
func (s *Store) Members() int { return len(s.members) }

// Primary reports the current preferred read replica.
func (s *Store) Primary() int { return s.primary }

// RotatePrimary advances the preferred read replica to the next member not
// marked down, returning the new primary index. The resilience layer calls
// this when the current primary keeps failing or limping (gray replica) —
// failures Fail/Recover bookkeeping never sees.
func (s *Store) RotatePrimary() int {
	for off := 1; off <= len(s.members); off++ {
		i := (s.primary + off) % len(s.members)
		if !s.down[i] {
			s.primary = i
			break
		}
	}
	return s.primary
}

// Put implements kvstore.Store: write to every healthy member, complete with
// the slowest. A member that errors is skipped — the write succeeds if any
// member holds the page (repair converges the rest), and fails only when no
// member accepted it.
func (s *Store) Put(now time.Duration, key kvstore.Key, page []byte) (time.Duration, error) {
	if err := kvstore.ValidatePage(page); err != nil {
		return now, err
	}
	s.stats.Puts++
	latest := now
	var wroteMask uint64
	skipped := 0
	var lastErr error
	for i, m := range s.members {
		if s.down[i] {
			continue
		}
		done, err := m.Put(now, key, page)
		if err != nil {
			s.memberErrors++
			skipped++
			lastErr = fmt.Errorf("replicated: member %d: %w", i, err)
			continue
		}
		wroteMask |= 1 << uint(i)
		if done > latest {
			latest = done
		}
	}
	if wroteMask == 0 {
		if lastErr != nil {
			return latest, lastErr
		}
		return now, ErrAllReplicasDown
	}
	if skipped > 0 {
		s.partialPuts++
	}
	// Replacing the mask wholesale demotes every member that missed this
	// overwrite: stale previous versions can no longer serve reads.
	s.keys[key] = wroteMask
	s.stats.BytesStored = s.healthyBytes()
	return latest, nil
}

// MultiPut implements kvstore.Store. Like Put, a batch survives any member
// failure as long as one member accepts it.
func (s *Store) MultiPut(now time.Duration, keys []kvstore.Key, pages [][]byte) (time.Duration, error) {
	if len(keys) != len(pages) {
		return now, kvstore.ErrBadValue
	}
	for _, page := range pages {
		if err := kvstore.ValidatePage(page); err != nil {
			return now, err
		}
	}
	s.stats.MultiPuts++
	s.stats.Puts += uint64(len(keys))
	latest := now
	var wroteMask uint64
	skipped := 0
	var lastErr error
	for i, m := range s.members {
		if s.down[i] {
			continue
		}
		done, err := m.MultiPut(now, keys, pages)
		if err != nil {
			s.memberErrors++
			skipped++
			lastErr = fmt.Errorf("replicated: member %d: %w", i, err)
			continue
		}
		wroteMask |= 1 << uint(i)
		if done > latest {
			latest = done
		}
	}
	if wroteMask == 0 {
		if lastErr != nil {
			return latest, lastErr
		}
		return now, ErrAllReplicasDown
	}
	if skipped > 0 {
		s.partialPuts++
	}
	for _, key := range keys {
		s.keys[key] = wroteMask
	}
	s.stats.BytesStored = s.healthyBytes()
	return latest, nil
}

// Get implements kvstore.Store: read from the primary, failing over member
// by member on crash or error. Only members the index marks as holding the
// current version are consulted — a member that slept through a write (or
// an overwrite) is a repair target, never a source. Once a read succeeds,
// stale healthy members are back-filled with the value — read-repair — off
// the caller's critical path.
func (s *Store) Get(now time.Duration, key kvstore.Key) ([]byte, time.Duration, error) {
	s.stats.Gets++
	mask, live := s.keys[key]
	if !live {
		s.stats.Misses++
		return nil, now, kvstore.ErrNotFound
	}
	t := now
	anyUp := false
	var lastErr error
	for off := 0; off < len(s.members); off++ {
		i := (s.primary + off) % len(s.members)
		if s.down[i] {
			continue
		}
		anyUp = true
		if mask&(1<<uint(i)) == 0 {
			continue // stale or missing copy; repair target, not a source
		}
		data, done, err := s.members[i].Get(t, key)
		switch {
		case err == nil:
			if off != 0 {
				s.failovers++
			}
			s.repair(done, key, data, mask)
			return data, done, nil
		case errors.Is(err, kvstore.ErrNotFound):
			// The index says current but the member lost it; demote so
			// repair can restore it.
			mask &^= 1 << uint(i)
			s.keys[key] = mask
		default:
			s.memberErrors++
			lastErr = fmt.Errorf("replicated: member %d: %w", i, err)
		}
		t = done // the failed attempt's round trip is paid
	}
	if !anyUp {
		return nil, now, ErrAllReplicasDown
	}
	if lastErr != nil {
		return nil, t, lastErr
	}
	// The key is live but no up-to-date member is reachable: its holders are
	// down. Transient — recovery (plus repair) can resurrect it.
	return nil, t, fmt.Errorf("%w: %v", ErrUnavailable, key)
}

// repair back-fills key onto healthy members that lack the current version
// (absent or stale). The writes are issued at the read's completion time and
// are not awaited: like the monitor's writeback, repair I/O occupies the
// member devices asynchronously, off the faulting guest's critical path.
func (s *Store) repair(now time.Duration, key kvstore.Key, data []byte, mask uint64) {
	for i, m := range s.members {
		if s.down[i] || mask&(1<<uint(i)) != 0 {
			continue
		}
		if _, err := m.Put(now, key, data); err == nil {
			s.keys[key] |= 1 << uint(i)
			s.readRepairs++
		}
	}
}

// MultiGet implements kvstore.Store. Each live key is assigned to its
// preferred serving member (primary first, then the failover order), and
// every member serves its whole group in one amortised member MultiGet.
// Keys the batch path cannot serve — a member that errored, or one the
// index demoted mid-read — fall back to the per-key failover sweep, so the
// batch keeps the same masking guarantees as Get. A key absent from the
// index yields a nil entry; any failure no member could mask fails the
// whole batch, never silently turning an existing page into a miss.
func (s *Store) MultiGet(now time.Duration, keys []kvstore.Key) ([][]byte, time.Duration, error) {
	s.stats.MultiGets++
	s.stats.Gets += uint64(len(keys))
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out, now, nil
	}
	groups := make(map[int][]int)
	var order []int    // members in first-use order, deterministic
	var fallback []int // key indexes routed to the per-key sweep
	for idx, key := range keys {
		mask, live := s.keys[key]
		if !live {
			s.stats.Misses++
			continue
		}
		serving := -1
		for off := 0; off < len(s.members); off++ {
			i := (s.primary + off) % len(s.members)
			if s.down[i] || mask&(1<<uint(i)) == 0 {
				continue
			}
			serving = i
			break
		}
		if serving < 0 {
			fallback = append(fallback, idx)
			continue
		}
		if _, seen := groups[serving]; !seen {
			order = append(order, serving)
		}
		groups[serving] = append(groups[serving], idx)
	}
	latest := now
	for _, m := range order {
		idxs := groups[m]
		sub := make([]kvstore.Key, len(idxs))
		for j, idx := range idxs {
			sub[j] = keys[idx]
		}
		pages, done, err := s.members[m].MultiGet(now, sub)
		if done > latest {
			latest = done
		}
		if err != nil {
			s.memberErrors++
			fallback = append(fallback, idxs...)
			continue
		}
		if m != s.primary {
			s.failovers++
		}
		for j, idx := range idxs {
			key := keys[idx]
			if pages[j] == nil {
				// The index says current but the member lost it; demote the
				// copy and let the sweep (and repair) restore it.
				s.keys[key] &^= 1 << uint(m)
				fallback = append(fallback, idx)
				continue
			}
			out[idx] = pages[j]
			s.repair(done, key, pages[j], s.keys[key])
		}
	}
	for _, idx := range fallback {
		data, done, err := s.Get(latest, keys[idx])
		if done > latest {
			latest = done
		}
		if err != nil {
			return nil, latest, fmt.Errorf("replicated: multiget key %v: %w", keys[idx], err)
		}
		out[idx] = data
	}
	return out, latest, nil
}

// StartGet implements kvstore.Store. The split read goes to the primary when
// it holds the current version; otherwise (or on failure) the bottom half
// falls back to the synchronous failover sweep, so the caller sees one
// PendingGet either way.
func (s *Store) StartGet(now time.Duration, key kvstore.Key) kvstore.PendingGet {
	mask, live := s.keys[key]
	if !live {
		s.stats.Gets++
		s.stats.Misses++
		return kvstore.PendingGet{Key: key, ReadyAt: now, Err: kvstore.ErrNotFound}
	}
	i := s.primary
	if !s.down[i] && mask&(1<<uint(i)) != 0 {
		s.stats.Gets++
		p := s.members[i].StartGet(now, key)
		if p.Err == nil {
			return p
		}
		if !errors.Is(p.Err, kvstore.ErrNotFound) {
			s.memberErrors++
		}
		// The primary's split read failed: pay its round trip, then run the
		// synchronous sweep (with read-repair) over the remaining members.
		data, done, err := s.Get(p.ReadyAt, key)
		if err == nil {
			s.failovers++
		}
		return kvstore.PendingGet{Key: key, Data: data, ReadyAt: done, Err: err}
	}
	data, done, err := s.Get(now, key)
	return kvstore.PendingGet{Key: key, Data: data, ReadyAt: done, Err: err}
}

// Delete implements kvstore.Store. The key leaves the authoritative index
// first, so even if a down member keeps a stale copy, reads can never
// resurrect it.
func (s *Store) Delete(now time.Duration, key kvstore.Key) (time.Duration, error) {
	s.stats.Deletes++
	delete(s.keys, key)
	latest := now
	reached := 0
	var lastErr error
	for i, m := range s.members {
		if s.down[i] {
			continue
		}
		done, err := m.Delete(now, key)
		if err != nil {
			s.memberErrors++
			lastErr = fmt.Errorf("replicated: member %d: %w", i, err)
			continue
		}
		reached++
		if done > latest {
			latest = done
		}
	}
	if reached == 0 {
		if lastErr != nil {
			return latest, lastErr
		}
		// Every member is down: the tombstone is recorded in the index but
		// no member processed it. Report the outage so a resilient caller
		// can retry once a member recovers — returning success here would
		// let the monitor free the page while stale copies linger.
		return now, ErrAllReplicasDown
	}
	s.stats.BytesStored = s.healthyBytes()
	return latest, nil
}

// Resync sweeps the authoritative keyspace and back-fills every healthy
// member that is missing a key — the full-convergence pass a provider runs
// after a member recovers, closing the downtime gap in one shot instead of
// one read-repair at a time. It returns the completion time and the number
// of (member, key) copies repaired.
func (s *Store) Resync(now time.Duration) (time.Duration, int, error) {
	s.resyncs++
	keys := make([]kvstore.Key, 0, len(s.keys))
	for key := range s.keys {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	t := now
	repaired := 0
	for _, key := range keys {
		mask := s.keys[key]
		// Skip keys every healthy member already holds current.
		needs := false
		for i := range s.members {
			if !s.down[i] && mask&(1<<uint(i)) == 0 {
				needs = true
				break
			}
		}
		if !needs {
			continue
		}
		// Find a live current copy to clone from.
		var data []byte
		for i, m := range s.members {
			if s.down[i] || mask&(1<<uint(i)) == 0 {
				continue
			}
			got, done, err := m.Get(t, key)
			t = done
			if err == nil {
				data = got
				break
			}
			s.memberErrors++
		}
		if data == nil {
			// No reachable member holds the current version; nothing to
			// copy from. Leave the key in the index — a holder may recover.
			continue
		}
		for i, m := range s.members {
			if s.down[i] || mask&(1<<uint(i)) != 0 {
				continue
			}
			done, err := m.Put(t, key, data)
			if err != nil {
				s.memberErrors++
				continue
			}
			t = done
			s.keys[key] |= 1 << uint(i)
			repaired++
		}
	}
	s.stats.BytesStored = s.healthyBytes()
	return t, repaired, nil
}

// Stats implements kvstore.Store. BytesStored reports the primary healthy
// member's payload (logical bytes, not total replicated bytes).
func (s *Store) Stats() kvstore.Stats { return s.stats }

func (s *Store) healthyBytes() uint64 {
	for i, m := range s.members {
		if !s.down[i] {
			return m.Stats().BytesStored
		}
	}
	return 0
}
