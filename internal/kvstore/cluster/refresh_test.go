package cluster_test

import (
	"errors"
	"testing"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/cluster"
	"fluidmem/internal/kvstore/storetest"
)

// TestWriteToDeadPlacementRefreshes pins the client-side self-heal for a
// fully dark placement. A client whose cached table predates a burst of
// membership changes can route a partition to replicas that are ALL gone —
// the crashed node plus the drained node — and with nobody reachable there
// is no store node left to bounce ErrStaleEpoch and trigger the usual
// refresh handshake. The pool must refresh from the controllers on its own
// in that case: the very first write to such a partition succeeds rather
// than returning ErrUnavailable forever (which would outlive any resilience
// stall budget, surfacing a hard error to the faulting VM).
func TestWriteToDeadPlacementRefreshes(t *testing.T) {
	for _, seed := range []uint64{113, 114} {
		p, err := cluster.New(cluster.Config{Nodes: 3, Replicas: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// Burst: crash node0, accept the loss, grow, retire node1 — all
		// before the client issues a single data op, so its cached table
		// is still the epoch-1 membership {node0, node1, node2}.
		now := 111175659 * time.Nanosecond
		if err := p.Crash(now, "node0"); err != nil {
			t.Fatalf("seed %d: crash: %v", seed, err)
		}
		if _, _, err := p.Recover(now); err != nil {
			t.Fatalf("seed %d: recover: %v", seed, err)
		}
		if _, _, err := p.AddNode(now); err != nil {
			t.Fatalf("seed %d: add: %v", seed, err)
		}
		if _, err := p.Drain(now, "node1"); err != nil {
			t.Fatalf("seed %d: drain: %v", seed, err)
		}
		// Every partition must be writable in at most one retry. A stale
		// placement that still reaches a live node gets the ordinary
		// ErrStaleEpoch bounce (refresh + one retry, what resilience
		// absorbs); a stale placement that reaches NOBODY — the ones routed
		// to {node0, node1} — must self-refresh rather than return
		// ErrUnavailable against the dead table on every retry forever.
		for part := 0; part < int(kvstore.MaxPartitions); part++ {
			key := kvstore.MakeKey(0x1000000, kvstore.PartitionID(part))
			_, err := p.Put(now, key, storetest.Page(byte(part)))
			if errors.Is(err, cluster.ErrStaleEpoch) {
				_, err = p.Put(now, key, storetest.Page(byte(part)))
			}
			if err != nil {
				t.Fatalf("seed %d: put to partition %d: %v", seed, part, err)
			}
		}
		if c := p.ClusterStats(); c.Refreshes == 0 {
			t.Fatalf("seed %d: no client refresh recorded — dead placement never hit?", seed)
		}
		// And a delete through the same dead-placement path is transparent
		// too (fresh pool, same burst, first op is a delete of a live key).
		q, err := cluster.New(cluster.Config{Nodes: 3, Replicas: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		key := kvstore.MakeKey(0x1000000, 2560)
		if _, err := q.Put(0, key, storetest.Page(1)); err != nil {
			t.Fatal(err)
		}
		if err := q.Crash(now, "node0"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := q.Recover(now); err != nil {
			t.Fatal(err)
		}
		if _, _, err := q.AddNode(now); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Drain(now, "node1"); err != nil {
			t.Fatal(err)
		}
		_, err = q.Delete(now, key)
		if errors.Is(err, cluster.ErrStaleEpoch) {
			_, err = q.Delete(now, key)
		}
		if err != nil {
			t.Fatalf("seed %d: delete via dead placement: %v", seed, err)
		}
	}
}
