package cluster

import (
	"fmt"
	"sort"
	"time"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/raft"
)

// leader returns the highest-term live controller leader, if any.
func (p *Pool) leader() *raft.Node {
	var lead *raft.Node
	for _, n := range p.ctrls {
		if n.Role() == raft.Leader {
			if lead == nil || n.Term() > lead.Term() {
				lead = n
			}
		}
	}
	return lead
}

// applyCommand is every controller's Raft apply hook. The first replica to
// apply a command commits the table and fans installs out to the store nodes
// over the fabric (where a partitioned node simply misses them — it catches
// up when it next serves a request or gets resynced after a heal). Later
// replicas applying the same entry see a non-successor epoch and only record
// completion.
func (p *Pool) applyCommand(index uint64, cmd any) {
	c, ok := cmd.(tableCommand)
	if !ok {
		return
	}
	if c.Table.Epoch == p.committed.Epoch+1 {
		p.committed = c.Table
		for _, ni := range c.Table.Nodes {
			p.net.Send(controllerNames[0], ni.Name, installMsg{table: c.Table})
		}
	}
	p.proposals[c.ID] = true
}

// propose commits a successor table through the controller ensemble,
// pumping the fabric until the command applies (retrying across leader
// changes; proposals are idempotent by ID).
func (p *Pool) propose(t *Table) error {
	p.nextID++
	cmd := tableCommand{ID: p.nextID, Table: t}
	overall := p.net.Clock.Now() + p.cfg.OpTimeout
	for p.net.Clock.Now() < overall {
		lead := p.leader()
		if lead == nil {
			p.net.RunFor(20 * time.Millisecond)
			continue
		}
		if _, _, ok := lead.Propose(cmd); !ok {
			p.net.RunFor(20 * time.Millisecond)
			continue
		}
		attempt := p.net.Clock.Now() + 2*time.Second
		for p.net.Clock.Now() < attempt {
			if p.proposals[cmd.ID] {
				return p.drainInstalls()
			}
			p.net.RunFor(5 * time.Millisecond)
		}
	}
	if p.proposals[cmd.ID] {
		return p.drainInstalls()
	}
	return ErrProposalTimeout
}

// drainInstalls pumps the fabric long enough for in-flight install messages
// to land on reachable nodes, so a membership operation returns only after
// the new epoch has propagated (a partitioned node's install is dropped and
// it catches up later).
func (p *Pool) drainInstalls() error {
	p.net.RunFor(10 * time.Millisecond)
	return nil
}

// span charges the control-plane time a membership operation consumed onto
// the caller's timeline: done = now + (fabric time elapsed since start).
func (p *Pool) span(now, start time.Duration) time.Duration {
	return now + (p.net.Clock.Now() - start)
}

// findActive resolves a name to its live node struct.
func (p *Pool) findActive(name string) *storeNode {
	for _, n := range p.nodes {
		if n != nil && n.name == name && !n.removed {
			return n
		}
	}
	return nil
}

// sortedKeys snapshots the index keys in ascending order, so every sweep is
// deterministic regardless of map iteration.
func (p *Pool) sortedKeys() []kvstore.Key {
	keys := make([]kvstore.Key, 0, len(p.keys))
	for key := range p.keys {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// clearSlotBits demotes a slot from every mask — the node's copies are gone
// (crash) or about to be (drain cutover). Keys whose mask reaches zero stay
// in the index: the page may still exist on an unreachable holder, and reads
// report the transient ErrUnavailable rather than a false ErrNotFound.
func (p *Pool) clearSlotBits(slot int) {
	bit := uint64(1) << uint(slot)
	for key, mask := range p.keys {
		if mask&bit != 0 {
			p.keys[key] = mask &^ bit
		}
	}
}

// resyncTo is the generalized re-replication primitive behind AddNode,
// Drain, crash Recovery, and HealNode: sweep the index (sorted, so the pass
// is deterministic) and ensure every key has a current copy on each
// reachable node of its target assignment, copying from the first reachable
// current holder. Copies are batched per (source, destination) pair and
// amortised on both devices. Keys whose holders are all unreachable are
// skipped — a later heal-plus-resync converges them.
func (p *Pool) resyncTo(now time.Duration, target *Table) time.Duration {
	type pair struct{ src, dst int }
	moves := make(map[pair][]kvstore.Key)
	var order []pair
	for _, key := range p.sortedKeys() {
		mask := p.keys[key]
		src := -1
		for s := 0; s < maxSlots; s++ {
			if mask&(1<<uint(s)) == 0 {
				continue
			}
			if n := p.slotNode(s); p.reachable(n) {
				if _, held := n.pages[key]; held {
					src = s
					break
				}
			}
		}
		if src < 0 {
			continue
		}
		for _, want := range target.Assign(key.Partition()) {
			if mask&(1<<uint(want)) != 0 {
				continue
			}
			n := p.slotNode(want)
			if !p.reachable(n) {
				continue
			}
			pr := pair{src: src, dst: want}
			if _, seen := moves[pr]; !seen {
				order = append(order, pr)
			}
			moves[pr] = append(moves[pr], key)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].src != order[j].src {
			return order[i].src < order[j].src
		}
		return order[i].dst < order[j].dst
	})
	latest := now
	for _, pr := range order {
		keys := moves[pr]
		src, dst := p.slotNode(pr.src), p.slotNode(pr.dst)
		readDone := src.read.SubmitN(now, len(keys))
		writeDone := dst.write.SubmitN(readDone, len(keys))
		if writeDone > latest {
			latest = writeDone
		}
		for _, key := range keys {
			page, held := src.pages[key]
			if !held {
				continue
			}
			dst.pages[key] = append([]byte(nil), page...)
			p.keys[key] |= dst.bit()
			p.ctr.Rereplicated++
		}
	}
	return latest
}

// Resync converges every key to the committed table's placement — the
// full-convergence pass an operator runs after healing, returning the
// completion time and copies restored.
func (p *Pool) Resync(now time.Duration) (time.Duration, int) {
	before := p.ctr.Rereplicated
	done := p.resyncTo(now, p.committed)
	return done, int(p.ctr.Rereplicated - before)
}

// AddNode grows the pool by one store node: the successor table commits
// through the controllers, then a resync copies each partition the new node
// now owns onto it. Returns the new node's name. The data path keeps its old
// cached table until a write is stale-rejected — by design, so the epoch
// handshake is genuinely exercised.
func (p *Pool) AddNode(now time.Duration) (string, time.Duration, error) {
	start := p.net.Clock.Now()
	next := p.committed.WithNode(fmt.Sprintf("node%d", p.committed.NextSlot))
	if next == nil {
		return "", now, ErrSlotSpace
	}
	added := next.Nodes[len(next.Nodes)-1]
	p.newNode(added.Slot)
	if err := p.propose(next); err != nil {
		p.nodes[added.Slot] = nil
		return "", p.span(now, start), err
	}
	copyDone := p.resyncTo(now, p.committed)
	done := p.span(now, start)
	if copyDone > done {
		done = copyDone
	}
	return added.Name, done, nil
}

// Drain removes a node gracefully: copy-then-cutover. Pages are first copied
// to their new homes under the prospective table while the node keeps
// serving; only then does the epoch commit and the node leave. A drain that
// would strand any page (its last reachable copy on the leaving node with
// nowhere to go) aborts on the old epoch. Draining an unreachable node is
// refused — crash it instead.
func (p *Pool) Drain(now time.Duration, name string) (time.Duration, error) {
	n := p.findActive(name)
	if n == nil || !p.committed.Has(name) {
		return now, fmt.Errorf("%w: %s", ErrNodeUnknown, name)
	}
	if n.crashed {
		return now, fmt.Errorf("%w: %s", ErrNodeCrashed, name)
	}
	if p.net.Partitioned(name) {
		return now, fmt.Errorf("%w: %s", ErrNodePartitioned, name)
	}
	if len(p.committed.Nodes)-1 < p.cfg.Replicas {
		return now, fmt.Errorf("%w: %d nodes, %d replicas", ErrTooFewNodes, len(p.committed.Nodes), p.cfg.Replicas)
	}
	start := p.net.Clock.Now()
	target := p.committed.WithoutNodes(name)
	copyDone := p.resyncTo(now, target)
	// Safety gate before cutover: every page the leaving node holds must
	// survive its departure on some reachable replica.
	for _, key := range p.sortedKeys() {
		mask := p.keys[key]
		if mask&n.bit() == 0 || mask&^n.bit() != 0 {
			continue
		}
		rescued := false
		for _, want := range target.Assign(key.Partition()) {
			d := p.slotNode(want)
			if !p.reachable(d) {
				continue
			}
			d.pages[key] = append([]byte(nil), n.pages[key]...)
			d.write.Submit(copyDone)
			p.keys[key] |= d.bit()
			p.ctr.Rereplicated++
			rescued = true
			break
		}
		if !rescued {
			return p.span(now, start), fmt.Errorf("%w: %v has no surviving replica", ErrDrainStranded, key)
		}
	}
	if err := p.propose(target); err != nil {
		return p.span(now, start), err
	}
	// Cutover: the node leaves service and its copies stop counting.
	n.removed = true
	n.pages = make(map[kvstore.Key][]byte)
	p.clearSlotBits(n.slot)
	done := p.span(now, start)
	if copyDone > done {
		done = copyDone
	}
	return done, nil
}

// Crash kills a node abruptly: its memory is gone and every mask bit it held
// is demoted immediately — reads fail over to surviving replicas with no
// error surfaced (R≥2), writes go partial until Recover re-replicates. The
// routing table is untouched: the controllers have not "noticed" yet, which
// is exactly the window the oracle probes.
func (p *Pool) Crash(now time.Duration, name string) error {
	n := p.findActive(name)
	if n == nil || !p.committed.Has(name) {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, name)
	}
	if n.crashed {
		return fmt.Errorf("%w: %s already crashed", ErrNodeCrashed, name)
	}
	n.crashed = true
	n.pages = make(map[kvstore.Key][]byte)
	p.clearSlotBits(n.slot)
	return nil
}

// Recover is the controllers noticing crashed nodes: a successor table
// without them commits, and a resync re-replicates every under-replicated
// partition from the surviving copies. Returns the completion time and the
// number of copies restored.
func (p *Pool) Recover(now time.Duration) (time.Duration, int, error) {
	var names []string
	for _, n := range p.nodes {
		if n != nil && n.crashed && !n.removed && p.committed.Has(n.name) {
			names = append(names, n.name)
		}
	}
	if len(names) == 0 {
		return now, 0, nil
	}
	start := p.net.Clock.Now()
	target := p.committed.WithoutNodes(names...)
	if err := p.propose(target); err != nil {
		return p.span(now, start), 0, err
	}
	for _, name := range names {
		if n := p.findActive(name); n != nil {
			n.removed = true
		}
	}
	before := p.ctr.Rereplicated
	copyDone := p.resyncTo(now, p.committed)
	done := p.span(now, start)
	if copyDone > done {
		done = copyDone
	}
	return done, int(p.ctr.Rereplicated - before), nil
}

// PartitionNode cuts a node off the network: the data path skips it, table
// installs are dropped on the floor, and its pages go dark but are NOT lost.
func (p *Pool) PartitionNode(name string) error {
	if p.findActive(name) == nil {
		return fmt.Errorf("%w: %s", ErrNodeUnknown, name)
	}
	p.net.Partition(name)
	return nil
}

// HealNode reconnects a partitioned node and resyncs: writes it slept
// through demoted its copies, so the sweep restores it as a current replica
// (its stale copies were never servable — the index is the ground truth).
func (p *Pool) HealNode(now time.Duration, name string) (time.Duration, error) {
	n := p.findActive(name)
	if n == nil {
		return now, fmt.Errorf("%w: %s", ErrNodeUnknown, name)
	}
	p.net.Heal(name)
	if n.epoch < p.committed.Epoch {
		n.epoch = p.committed.Epoch
	}
	return p.resyncTo(now, p.committed), nil
}
