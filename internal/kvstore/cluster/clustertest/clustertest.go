// Package clustertest is the no-page-lost oracle for the cluster pool. It
// drives a seed-determined interleaving of data operations and membership
// events — AddNode, Drain, Crash, Recover, network Partition, Heal — against
// a live cluster on the virtual clock, and checks every observable result
// against a flat map model. The checkable contract rests on one property the
// pool promises and the oracle exploits: an operation that returns an error
// mutated nothing. That makes "apply to the model only on success" an exact
// mirror of the pool's index, so the model decides presence with no slack: a
// Get of a model-absent key must return ErrNotFound (a stale or resurrected
// page fails the run), and a Get of a model-present key must return the
// exact bytes written.
//
// The schedule generator keeps the run inside the regime where the pool owes
// availability: at most two failures overlap, a crash starts only from a
// fully healthy pool (so no page's only copy can die), and drains happen
// only while healthy. With at most one failure active, ANY data-path error
// is an oracle failure — this is the "a crash with R≥2 never surfaces an
// error" guarantee, enforced on every operation of every run, through the
// resilience layer with a deliberately small stall budget. With two overlaid
// failures, errors are tolerated (and counted) but must still mutate
// nothing. After the schedule, the harness heals every partition, recovers
// crashed nodes, resyncs to full replication, and sweeps the whole key space
// against the model: no page lost, none mis-routed, none served stale.
//
// Every run folds its full observable history — each operation's class, key,
// returned bytes, error class, and completion time, plus every membership
// event and the final counters — through FNV-1a. Two runs with the same
// (config, seed) must produce bitwise-identical outcomes.
package clustertest

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/core/resilience"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/cluster"
	"fluidmem/internal/kvstore/storetest"
)

// Config shapes one oracle run.
type Config struct {
	// Nodes and Replicas configure the pool under test.
	Nodes    int
	Replicas int
	// Steps is the schedule length (data ops + membership events).
	Steps int
	// Seed drives the whole schedule; same seed, same everything.
	Seed uint64
	// KeySpace is the number of distinct pages the workload touches
	// (default 192, spread across partitions).
	KeySpace int
}

// Outcome is the fully comparable result of one run. Two runs of the same
// Config must be equal in every field.
type Outcome struct {
	// Digest folds the complete observable history through FNV-1a.
	Digest uint64
	// FinalTime is the virtual clock at the end of the final sweep.
	FinalTime time.Duration
	// Live is the number of model-present keys at the end.
	Live int
	// Tolerated counts data-op errors absorbed during two-failure windows.
	Tolerated int
	// Events counts membership events by kind, in fixed order:
	// add, drain, crash, recover, partition, heal.
	Events [6]int
	// Cluster is the pool's intervention counter snapshot.
	Cluster cluster.Counters
}

const base = 0x2000_0000

// keyAt spreads the workload across partitions and page addresses.
func keyAt(i int) kvstore.Key {
	part := kvstore.PartitionID((i * 131) % kvstore.MaxPartitions)
	return kvstore.MakeKey(base+uint64(i)*kvstore.PageSize, part)
}

// errClass collapses an error to a stable label for the digest.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, kvstore.ErrNotFound):
		return "notfound"
	case errors.Is(err, cluster.ErrUnavailable):
		return "unavail"
	case errors.Is(err, cluster.ErrStaleEpoch):
		return "stale"
	case errors.Is(err, resilience.ErrStallBudgetExhausted):
		return "stallout"
	default:
		return err.Error()
	}
}

// Run executes one schedule and returns the outcome. Any violation of the
// oracle contract fails tb immediately.
func Run(tb testing.TB, cfg Config) Outcome {
	tb.Helper()
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 192
	}
	label := fmt.Sprintf("n%d/r%d/seed%d", cfg.Nodes, cfg.Replicas, cfg.Seed)

	pool, err := cluster.New(cluster.Config{Nodes: cfg.Nodes, Replicas: cfg.Replicas, Seed: cfg.Seed})
	if err != nil {
		tb.Fatalf("%s: new pool: %v", label, err)
	}
	// The resilience layer absorbs the transient errors membership changes
	// legitimately produce (stale epochs, brief unavailability). The stall
	// budget is deliberately small: the oracle wants errors, not long
	// parks, when a two-failure window genuinely cuts off a page.
	store := resilience.Wrap(pool, resilience.Policy{
		MaxStall:      2 * time.Millisecond,
		DegradedProbe: 100 * time.Microsecond,
	}, cfg.Seed^0xc105)

	rng := clock.NewRand(cfg.Seed ^ 0x04ac1e)
	h := fnv.New64a()
	model := make(map[kvstore.Key]byte) // key → tag of storetest.Page written
	partitioned := make(map[string]bool)
	crashed := make(map[string]bool)
	failures := func() int { return len(partitioned) + len(crashed) }
	// degraded marks that a two-failure window has occurred and full
	// replication has not yet been restored. During such a window a write
	// may land on a single reachable replica; if the failures then swap
	// (one heals, another is still dark), that page is legitimately
	// unreadable even at one active failure. The strict no-error contract
	// applies only to failures that begin from a fully replicated pool, so
	// the flag clears only after a Resync at zero failures.
	degraded := false
	var out Outcome
	now := time.Duration(0)

	// healthy returns the sorted names of nodes that are committed members
	// and currently neither crashed nor partitioned.
	healthy := func() []string {
		var names []string
		for _, n := range pool.Committed().Nodes {
			if !crashed[n.Name] && !partitioned[n.Name] {
				names = append(names, n.Name)
			}
		}
		sort.Strings(names)
		return names
	}

	// checkData verifies a returned page against the model tag.
	checkData := func(op string, i int, key kvstore.Key, tag byte, data []byte) {
		if !bytes.Equal(data, storetest.Page(tag)) {
			tb.Fatalf("%s step %d: %s of %v returned wrong bytes (want tag %d): page mis-routed or stale",
				label, i, op, key, tag)
		}
	}
	// tolerate decides the fate of a data-op error: inside a two-failure
	// window it is counted and folded; with at most one failure active the
	// pool owes success and the run fails.
	tolerate := func(op string, i int, err error) {
		if failures() >= 2 || degraded {
			out.Tolerated++
			return
		}
		tb.Fatalf("%s step %d: %s failed with %d failure(s) active: %v — availability contract broken",
			label, i, op, failures(), err)
	}

	for i := 0; i < cfg.Steps; i++ {
		if rng.Float64() < 0.03 {
			// Membership event. Build the eligible action set under the
			// generator's safety regime, then pick one.
			var actions []string
			if len(pool.Committed().Nodes) < cfg.Nodes+2 && pool.Committed().NextSlot < 60 {
				actions = append(actions, "add")
			}
			if hs := healthy(); failures() == 0 && len(hs) > cfg.Replicas {
				actions = append(actions, "drain")
			}
			if hs := healthy(); failures() == 0 && len(hs) >= 2 {
				actions = append(actions, "crash")
			}
			if len(crashed) > 0 {
				actions = append(actions, "recover")
			}
			if hs := healthy(); failures() < 2 && len(hs) >= 2 {
				actions = append(actions, "partition")
			}
			if len(partitioned) > 0 {
				actions = append(actions, "heal")
			}
			if len(actions) == 0 {
				continue
			}
			action := actions[rng.Intn(len(actions))]
			victim := ""
			switch action {
			case "add":
				name, done, err := pool.AddNode(now)
				if err != nil {
					tb.Fatalf("%s step %d: add: %v", label, i, err)
				}
				victim, now = name, done
				out.Events[0]++
			case "drain":
				hs := healthy()
				victim = hs[rng.Intn(len(hs))]
				done, err := pool.Drain(now, victim)
				if err != nil {
					tb.Fatalf("%s step %d: drain %s: %v", label, i, victim, err)
				}
				now = done
				out.Events[1]++
			case "crash":
				hs := healthy()
				victim = hs[rng.Intn(len(hs))]
				if err := pool.Crash(now, victim); err != nil {
					tb.Fatalf("%s step %d: crash %s: %v", label, i, victim, err)
				}
				crashed[victim] = true
				out.Events[2]++
			case "recover":
				done, _, err := pool.Recover(now)
				if err != nil {
					tb.Fatalf("%s step %d: recover: %v", label, i, err)
				}
				now = done
				crashed = make(map[string]bool)
				out.Events[3]++
			case "partition":
				hs := healthy()
				victim = hs[rng.Intn(len(hs))]
				if err := pool.PartitionNode(victim); err != nil {
					tb.Fatalf("%s step %d: partition %s: %v", label, i, victim, err)
				}
				partitioned[victim] = true
				out.Events[4]++
			case "heal":
				var names []string
				for n := range partitioned {
					names = append(names, n)
				}
				sort.Strings(names)
				victim = names[rng.Intn(len(names))]
				done, err := pool.HealNode(now, victim)
				if err != nil {
					tb.Fatalf("%s step %d: heal %s: %v", label, i, victim, err)
				}
				now = done
				delete(partitioned, victim)
				out.Events[5]++
			}
			if failures() >= 2 {
				degraded = true
			}
			if degraded && failures() == 0 {
				done, _ := pool.Resync(now)
				now = done
				degraded = false
			}
			fmt.Fprintf(h, "ev:%s:%s@%d;", action, victim, now)
			continue
		}

		// Data operation against the resilient store.
		page := rng.Intn(cfg.KeySpace)
		key := keyAt(page)
		tag, present := model[key]
		roll := rng.Float64()
		switch {
		case roll < 0.40: // Get
			data, done, err := store.Get(now, key)
			switch {
			case err == nil && !present:
				tb.Fatalf("%s step %d: get of deleted/unwritten %v returned data: resurrected page", label, i, key)
			case err == nil:
				checkData("get", i, key, tag, data)
				now = done
			case errors.Is(err, kvstore.ErrNotFound) && !present:
				now = done // the expected miss
			case errors.Is(err, kvstore.ErrNotFound):
				tb.Fatalf("%s step %d: get of live %v: page LOST (%v)", label, i, key, err)
			default:
				tolerate("get", i, err)
			}
			fmt.Fprintf(h, "get:%d:%s@%d;", page, errClass(err), done)
		case roll < 0.70: // Put
			newTag := byte(i%250 + 1)
			done, err := store.Put(now, key, storetest.Page(newTag))
			if err == nil {
				model[key] = newTag
				now = done
			} else {
				tolerate("put", i, err)
			}
			fmt.Fprintf(h, "put:%d:%d:%s@%d;", page, newTag, errClass(err), done)
		case roll < 0.80: // MultiPut of a small run of pages
			n := 2 + rng.Intn(3)
			keys := make([]kvstore.Key, 0, n)
			pages := make([][]byte, 0, n)
			tags := make([]byte, 0, n)
			for j := 0; j < n; j++ {
				t := byte((i+j)%250 + 1)
				keys = append(keys, keyAt((page+j)%cfg.KeySpace))
				pages = append(pages, storetest.Page(t))
				tags = append(tags, t)
			}
			done, err := store.MultiPut(now, keys, pages)
			if err == nil {
				for j, k := range keys {
					model[k] = tags[j]
				}
				now = done
			} else {
				tolerate("multiput", i, err)
			}
			fmt.Fprintf(h, "mput:%d:%d:%s@%d;", page, n, errClass(err), done)
		case roll < 0.90: // MultiGet of a small run
			n := 2 + rng.Intn(3)
			keys := make([]kvstore.Key, 0, n)
			for j := 0; j < n; j++ {
				keys = append(keys, keyAt((page+j)%cfg.KeySpace))
			}
			datas, done, err := store.MultiGet(now, keys)
			if err == nil {
				for j, k := range keys {
					t, ok := model[k]
					if !ok {
						if datas[j] != nil {
							tb.Fatalf("%s step %d: multiget resurrected %v", label, i, k)
						}
						continue
					}
					if datas[j] == nil {
						tb.Fatalf("%s step %d: multiget of live %v: page LOST", label, i, k)
					}
					checkData("multiget", i, k, t, datas[j])
				}
				now = done
			} else {
				tolerate("multiget", i, err)
			}
			fmt.Fprintf(h, "mget:%d:%d:%s@%d;", page, n, errClass(err), done)
		default: // Delete (idempotent: deleting an absent key succeeds)
			done, err := store.Delete(now, key)
			if err == nil {
				delete(model, key)
				now = done
			} else {
				tolerate("delete", i, err)
			}
			fmt.Fprintf(h, "del:%d:%s@%d;", page, errClass(err), done)
		}
	}

	// Heal the world: every partition healed, crashed nodes recovered, then
	// resync to full replication.
	var cut []string
	for n := range partitioned {
		cut = append(cut, n)
	}
	sort.Strings(cut)
	for _, n := range cut {
		if now, err = pool.HealNode(now, n); err != nil {
			tb.Fatalf("%s: final heal %s: %v", label, n, err)
		}
	}
	if len(crashed) > 0 {
		done, _, err := pool.Recover(now)
		if err != nil {
			tb.Fatalf("%s: final recover: %v", label, err)
		}
		now = done
	}
	done, _ := pool.Resync(now)
	now = done
	if _, more := pool.Resync(now); more != 0 {
		tb.Fatalf("%s: pool did not converge: %d copies still missing after resync", label, more)
	}

	// Final sweep over the whole key space against the BARE pool: presence,
	// absence, and contents must all match the flat model exactly.
	for i := 0; i < cfg.KeySpace; i++ {
		key := keyAt(i)
		tag, present := model[key]
		data, done, err := pool.Get(now, key)
		switch {
		case present && err != nil:
			tb.Fatalf("%s: sweep: live key %d (%v) LOST: %v", label, i, key, err)
		case present:
			checkData("sweep", i, key, tag, data)
			now = done
		case err == nil:
			tb.Fatalf("%s: sweep: absent key %d (%v) resurrected", label, i, key)
		case !errors.Is(err, kvstore.ErrNotFound):
			tb.Fatalf("%s: sweep: absent key %d (%v): want ErrNotFound, got %v", label, i, key, err)
		}
		fmt.Fprintf(h, "sweep:%d:%t@%d;", i, present, now)
	}

	out.Cluster = pool.ClusterStats()
	fmt.Fprintf(h, "end:%+v:%d", out.Cluster, len(model))
	out.Digest = h.Sum64()
	out.FinalTime = now
	out.Live = len(model)
	return out
}
