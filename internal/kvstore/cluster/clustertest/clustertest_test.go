package clustertest

import (
	"fmt"
	"testing"
)

// TestOracleMatrix is the acceptance gate: randomized membership/failure
// schedules across ≥3 seeds × {3,5 nodes} × {2,3 replicas}, each run TWICE
// with the same seed — the second outcome must be bitwise identical to the
// first, and every run proves no page lost, none mis-routed, none stale.
func TestOracleMatrix(t *testing.T) {
	for _, nodes := range []int{3, 5} {
		for _, replicas := range []int{2, 3} {
			for seed := uint64(1); seed <= 3; seed++ {
				cfg := Config{Nodes: nodes, Replicas: replicas, Steps: 400, Seed: seed}
				t.Run(fmt.Sprintf("n%d/r%d/seed%d", nodes, replicas, seed), func(t *testing.T) {
					ref := Run(t, cfg)
					got := Run(t, cfg)
					if ref != got {
						t.Fatalf("same seed diverged:\n  first  %+v\n  second %+v", ref, got)
					}
					if ref.Events[2] == 0 && ref.Events[1] == 0 && ref.Events[4] == 0 {
						t.Fatalf("schedule exercised no crash, drain, or partition: %+v", ref.Events)
					}
				})
			}
		}
	}
}

// TestOracleLongSchedule pushes one configuration much further than the
// matrix: more steps means more membership churn per run, so the resync and
// cutover paths are crossed dozens of times in a single lifetime.
func TestOracleLongSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("long schedule skipped in -short")
	}
	cfg := Config{Nodes: 5, Replicas: 2, Steps: 1500, Seed: 42}
	out := Run(t, cfg)
	total := 0
	for _, n := range out.Events {
		total += n
	}
	if total < 10 {
		t.Fatalf("long schedule produced only %d membership events: %+v", total, out.Events)
	}
}

// TestOracleSeedsDiffer is the sanity check on the checker itself: distinct
// seeds must produce distinct histories, or the digest isn't observing
// anything.
func TestOracleSeedsDiffer(t *testing.T) {
	a := Run(t, Config{Nodes: 3, Replicas: 2, Steps: 200, Seed: 7})
	b := Run(t, Config{Nodes: 3, Replicas: 2, Steps: 200, Seed: 8})
	if a.Digest == b.Digest {
		t.Fatalf("different seeds produced identical digests (%#x): oracle is blind", a.Digest)
	}
}
