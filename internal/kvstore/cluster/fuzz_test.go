package cluster_test

import (
	"fmt"
	"testing"

	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/cluster"
)

// FuzzRouting checks the key→node routing invariants over arbitrary
// memberships and partitions: every assignment is exactly min(R, N) distinct
// live slots, placement is a pure function of membership (rebuilding the
// table yields the identical assignment), and growing the membership only
// ever inserts the new node — it never shuffles a partition between
// survivors (the rendezvous minimal-movement property the re-replication
// cost model depends on).
func FuzzRouting(f *testing.F) {
	f.Add(uint16(0), uint8(3), uint8(2))
	f.Add(uint16(4095), uint8(1), uint8(3))
	f.Add(uint16(0xBEEF), uint8(7), uint8(1))
	f.Fuzz(func(t *testing.T, rawPart uint16, rawNodes, rawReplicas uint8) {
		nodes := int(rawNodes)%8 + 1
		replicas := int(rawReplicas)%4 + 1
		part := kvstore.PartitionID(rawPart) & (kvstore.MaxPartitions - 1)

		infos := make([]cluster.NodeInfo, nodes)
		for i := range infos {
			infos[i] = cluster.NodeInfo{Name: fmt.Sprintf("node%d", i), Slot: i}
		}
		table := cluster.NewTable(1, replicas, infos, nodes)

		want := replicas
		if want > nodes {
			want = nodes
		}
		assign := table.Assign(part)
		if len(assign) != want {
			t.Fatalf("assignment of partition %d has %d slots, want %d", part, len(assign), want)
		}
		seen := make(map[int]bool)
		for _, s := range assign {
			if s < 0 || s >= nodes {
				t.Fatalf("partition %d routed to slot %d outside membership [0,%d)", part, s, nodes)
			}
			if seen[s] {
				t.Fatalf("partition %d assigned slot %d twice", part, s)
			}
			seen[s] = true
		}

		again := cluster.NewTable(1, replicas, infos, nodes)
		for i, s := range again.Assign(part) {
			if s != assign[i] {
				t.Fatalf("partition %d assignment not deterministic: %v vs %v", part, again.Assign(part), assign)
			}
		}

		grown := table.WithNode("nodeX")
		if grown == nil {
			t.Fatalf("WithNode refused a fresh name")
		}
		for _, s := range grown.Assign(part) {
			if !seen[s] && s != nodes {
				t.Fatalf("partition %d moved to pre-existing slot %d on AddNode: movement not minimal", part, s)
			}
		}
	})
}
