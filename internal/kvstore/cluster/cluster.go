package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/raft"
	"fluidmem/internal/simnet"
)

// Errors.
var (
	// ErrStaleEpoch reports a request routed with an outdated table: a store
	// node has a newer epoch installed than the client used. The client's
	// cached table has already been refreshed when this is returned, so a
	// retry (the resilience layer's job) succeeds against the new placement.
	ErrStaleEpoch = errors.New("cluster: routing table epoch is stale")
	// ErrUnavailable reports an operation none of the responsible nodes
	// could serve (down, partitioned, or removed). Transient: recovery or a
	// heal can resurrect the key, so the resilience layer retries it.
	ErrUnavailable = errors.New("cluster: no reachable replica")
	// ErrNodeUnknown reports a membership operation naming no active node.
	ErrNodeUnknown = errors.New("cluster: no such node")
	// ErrNodeCrashed reports a graceful operation aimed at a crashed node.
	ErrNodeCrashed = errors.New("cluster: node has crashed")
	// ErrNodePartitioned reports a Drain of an unreachable node: a graceful
	// copy-out needs the node; operators crash unreachable nodes instead.
	ErrNodePartitioned = errors.New("cluster: node is partitioned")
	// ErrTooFewNodes reports a change that would shrink the pool below the
	// replication factor.
	ErrTooFewNodes = errors.New("cluster: too few nodes for replication factor")
	// ErrProposalTimeout reports that the controller ensemble did not commit
	// a membership change within the operation timeout.
	ErrProposalTimeout = errors.New("cluster: membership proposal timed out")
	// ErrDrainStranded reports a Drain aborted because some page would have
	// lost its last reachable copy; the cluster is left on the old epoch.
	ErrDrainStranded = errors.New("cluster: drain would strand pages")
	// ErrSlotSpace reports exhaustion of the 64-slot lifetime node budget.
	ErrSlotSpace = errors.New("cluster: node slot space exhausted")
)

// storeNode is one remote-memory server: a page map behind read/write
// service-time devices, plus its installed view of the routing epoch.
type storeNode struct {
	name  string
	slot  int
	pages map[kvstore.Key][]byte
	read  *clock.Device
	write *clock.Device
	// epoch is the newest table epoch the node has installed (via a
	// controller install message over simnet, or a catch-up during an op).
	epoch   uint64
	crashed bool
	removed bool
}

func (n *storeNode) bit() uint64 { return 1 << uint(n.slot) }

// set copies page into the node's map, reusing the existing buffer on
// overwrite so steady-state writeback traffic allocates nothing. Buffers are
// never shared between nodes (membership transfers copy), so reuse is safe.
func (n *storeNode) set(key kvstore.Key, page []byte) {
	if old, ok := n.pages[key]; ok {
		copy(old, page)
		return
	}
	n.pages[key] = append([]byte(nil), page...)
}

// insertionSortInts sorts a tiny slice in place without the interface boxing
// sort.Ints may incur; slot lists are bounded by maxSlots.
func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// Config parametrises a pool.
type Config struct {
	// Nodes is the initial store-node count.
	Nodes int
	// Replicas is the copies kept per partition.
	Replicas int
	// Seed drives every random draw (devices, control-plane fabric, Raft).
	Seed uint64
	// ReadLatency / WriteLatency are the per-node service-time models.
	ReadLatency  clock.LatencyModel
	WriteLatency clock.LatencyModel
	// ControlLatency is the control-plane fabric link model (Raft RPCs and
	// table installs).
	ControlLatency clock.LatencyModel
	// OpTimeout bounds one membership proposal (virtual time).
	OpTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.ReadLatency == (clock.LatencyModel{}) {
		c.ReadLatency = clock.LatencyModel{Base: 5 * time.Microsecond, Jitter: 500 * time.Nanosecond}
	}
	if c.WriteLatency == (clock.LatencyModel{}) {
		c.WriteLatency = clock.LatencyModel{Base: 6 * time.Microsecond, Jitter: 500 * time.Nanosecond}
	}
	if c.ControlLatency == (clock.LatencyModel{}) {
		c.ControlLatency = clock.LatencyModel{Base: 2 * time.Millisecond, Jitter: 500 * time.Microsecond}
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 30 * time.Second
	}
	return c
}

// Counters is the pool's cluster-specific observability surface.
type Counters struct {
	// Epoch is the latest committed table epoch.
	Epoch uint64
	// Nodes is the active member count; Replicas the target copies.
	Nodes    int
	Replicas int
	// StaleRejects counts write requests a node rejected for carrying an
	// outdated epoch; Refreshes counts client table refreshes they forced.
	StaleRejects uint64
	Refreshes    uint64
	// Failovers counts reads served by a non-preferred replica.
	Failovers uint64
	// PartialPuts counts writes that reached only part of their assignment.
	PartialPuts uint64
	// ReadRepairs counts copies back-filled by the read path.
	ReadRepairs uint64
	// Rereplicated counts copies restored by resync sweeps (drain, crash
	// recovery, heal).
	Rereplicated uint64
}

// Pool is the sharded, replicated remote-memory pool. It implements
// kvstore.Store: the data path routes each key by its 12-bit partition
// against the client's cached table and maintains an authoritative per-key
// version mask (which node slots hold the CURRENT version), exactly like the
// replicated wrapper — the index, not a node, decides existence and serving
// eligibility. The control plane is a fixed 3-controller Raft ensemble (the
// paper's ZooKeeper pattern: a small consensus group governs a dynamic
// serving tier); membership changes commit a successor table through it and
// install the new epoch on store nodes over the simulated fabric.
//
// The client's cached table is deliberately NOT refreshed when a change
// commits: it discovers new epochs the way a real distributed client does,
// by having a write rejected with ErrStaleEpoch — which refreshes the cache
// and surfaces a transient error for the resilience layer to retry.
type Pool struct {
	cfg Config
	net *simnet.Network

	ctrls     []*raft.Node
	committed *Table
	client    *Table
	proposals map[uint64]bool
	nextID    uint64

	// nodes is indexed by slot; entries stay after removal (reachable() is
	// the liveness gate) so mask bits always resolve.
	nodes []*storeNode

	// keys is the authoritative live-key index: the bitmask of node slots
	// holding each key's current version.
	keys map[kvstore.Key]uint64

	stats kvstore.Stats
	ctr   Counters

	// Data-plane scratch, reused across operations. The pool is single-
	// threaded like the rest of the simulator, so one set of buffers
	// suffices and steady-state reads and writeback flushes allocate
	// nothing (DESIGN.md §14).
	orderScratch  []int
	targetScratch []*storeNode
	mpNodes       []*storeNode // flat arena of per-key targets, in key order
	mpCounts      []int        // targets per key, indexes mpNodes
	mpSlots       []int        // distinct slots touched by the batch
	mpAll         []*storeNode // distinct target nodes, slot order
	mpGroups      [maxSlots]int
}

var _ kvstore.Store = (*Pool)(nil)

// installMsg carries a committed table from a controller to a store node.
type installMsg struct {
	table *Table
}

// tableCommand is the Raft log entry committing a successor table.
type tableCommand struct {
	ID    uint64
	Table *Table
}

// controllerNames is the fixed consensus ensemble.
var controllerNames = []string{"ctrl0", "ctrl1", "ctrl2"}

// New builds a pool with cfg.Nodes store nodes, elects the controller
// ensemble, and commits the initial table through Raft.
func New(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: %d nodes < 1", cfg.Nodes)
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: %d replicas < 1", cfg.Replicas)
	}
	p := &Pool{
		cfg:       cfg,
		net:       simnet.New(cfg.ControlLatency, cfg.Seed),
		committed: NewTable(0, cfg.Replicas, nil, 0),
		proposals: make(map[uint64]bool),
		keys:      make(map[kvstore.Key]uint64),
	}
	for i, id := range controllerNames {
		p.ctrls = append(p.ctrls, raft.NewNode(raft.Config{
			ID:    id,
			Peers: controllerNames,
			Seed:  cfg.Seed + uint64(i),
		}, p.net, p.applyCommand))
	}
	var infos []NodeInfo
	for i := 0; i < cfg.Nodes; i++ {
		n := p.newNode(i)
		infos = append(infos, NodeInfo{Name: n.name, Slot: n.slot})
	}
	// Elect, then commit the initial table so even epoch 1 is Raft-ordered.
	deadline := p.net.Clock.Now() + time.Minute
	for p.leader() == nil && p.net.Clock.Now() < deadline {
		p.net.RunFor(10 * time.Millisecond)
	}
	if p.leader() == nil {
		return nil, errors.New("cluster: controller election failed")
	}
	if err := p.propose(NewTable(1, cfg.Replicas, infos, cfg.Nodes)); err != nil {
		return nil, err
	}
	p.client = p.committed
	return p, nil
}

// newNode creates a store node in the given slot and registers it on the
// fabric for table installs.
func (p *Pool) newNode(slot int) *storeNode {
	n := &storeNode{
		name:  fmt.Sprintf("node%d", slot),
		slot:  slot,
		pages: make(map[kvstore.Key][]byte),
		read:  clock.NewDevice(p.cfg.ReadLatency, p.cfg.Seed+uint64(slot)*2+11),
		write: clock.NewDevice(p.cfg.WriteLatency, p.cfg.Seed+uint64(slot)*2+12),
	}
	for len(p.nodes) <= slot {
		p.nodes = append(p.nodes, nil)
	}
	p.nodes[slot] = n
	p.net.Register(n.name, func(now time.Duration, msg simnet.Message) {
		if n.crashed || n.removed {
			return
		}
		if im, ok := msg.Payload.(installMsg); ok && im.table.Epoch > n.epoch {
			n.epoch = im.table.Epoch
		}
	})
	return n
}

// Network exposes the fabric for fault injection (tests, oracle, daemon).
func (p *Pool) Network() *simnet.Network { return p.net }

// Committed reports the latest Raft-committed table.
func (p *Pool) Committed() *Table { return p.committed }

// ClientTable reports the data path's cached (possibly stale) table.
func (p *Pool) ClientTable() *Table { return p.client }

// ClusterStats snapshots the cluster-specific counters.
func (p *Pool) ClusterStats() Counters {
	c := p.ctr
	c.Epoch = p.committed.Epoch
	c.Nodes = len(p.committed.Nodes)
	c.Replicas = p.cfg.Replicas
	return c
}

// NodeNames reports the active members of the committed table, slot order.
func (p *Pool) NodeNames() []string {
	out := make([]string, 0, len(p.committed.Nodes))
	for _, n := range p.committed.Nodes {
		out = append(out, n.Name)
	}
	return out
}

// Name implements kvstore.Store.
func (p *Pool) Name() string {
	return fmt.Sprintf("cluster(n=%d,r=%d)", len(p.committed.Nodes), p.cfg.Replicas)
}

// slotNode resolves a mask bit or assignment slot to its node.
func (p *Pool) slotNode(slot int) *storeNode {
	if slot < 0 || slot >= len(p.nodes) {
		return nil
	}
	return p.nodes[slot]
}

// reachable reports whether the data path may talk to a node right now.
func (p *Pool) reachable(n *storeNode) bool {
	return n != nil && !n.crashed && !n.removed && !p.net.Partitioned(n.name)
}

// refresh re-reads the committed table into the client cache.
func (p *Pool) refresh() {
	if p.client != p.committed {
		p.client = p.committed
		p.ctr.Refreshes++
	}
}

// checkEpoch validates a write's routing against every target node before
// anything mutates, so a stale-epoch reject is always all-or-nothing. A node
// behind the client's epoch catches up (it missed an install — the fabric
// drops messages); a node ahead rejects, which refreshes the client cache
// and returns the transient ErrStaleEpoch for the resilience layer to retry
// against the new placement.
func (p *Pool) checkEpoch(targets []*storeNode) error {
	for _, n := range targets {
		if n.epoch < p.client.Epoch {
			n.epoch = p.client.Epoch
		}
		if n.epoch > p.client.Epoch {
			p.ctr.StaleRejects++
			p.refresh()
			return ErrStaleEpoch
		}
	}
	return nil
}

// appendWriteTargets resolves a key's reachable assignment nodes under the
// client table, appending them to buf (callers pass reusable scratch so the
// hot path allocates nothing). It returns the extended slice plus the full
// assignment width, which the caller compares against the appended count to
// detect partial writes. If the cached table routes only to dark nodes there
// is nobody left to bounce ErrStaleEpoch, so the client would retry the same
// dead placement forever; in that case it refreshes from the committed table
// and resolves once more — an empty result then means the partition is
// unreachable under the *current* placement, a genuinely transient condition.
func (p *Pool) appendWriteTargets(buf []*storeNode, key kvstore.Key) ([]*storeNode, int) {
	start := len(buf)
	for {
		slots := p.client.Assign(key.Partition())
		for _, s := range slots {
			if n := p.slotNode(s); p.reachable(n) {
				buf = append(buf, n)
			}
		}
		if len(buf) > start || p.client == p.committed {
			return buf, len(slots)
		}
		p.refresh()
	}
}

// Put implements kvstore.Store: write to every reachable assignment node,
// complete with the slowest. Replacing the mask wholesale demotes every
// replica that missed the overwrite, so stale versions can never serve.
func (p *Pool) Put(now time.Duration, key kvstore.Key, page []byte) (time.Duration, error) {
	if err := kvstore.ValidatePage(page); err != nil {
		return now, err
	}
	p.stats.Puts++
	targets, assigned := p.appendWriteTargets(p.targetScratch[:0], key)
	p.targetScratch = targets[:0]
	if len(targets) == 0 {
		return now, fmt.Errorf("%w: partition %d", ErrUnavailable, key.Partition())
	}
	if err := p.checkEpoch(targets); err != nil {
		return now, err
	}
	if len(targets) < assigned {
		p.ctr.PartialPuts++
	}
	latest := now
	var mask uint64
	for _, n := range targets {
		n.set(key, page)
		if done := n.write.Submit(now); done > latest {
			latest = done
		}
		mask |= n.bit()
	}
	p.keys[key] = mask
	p.stats.BytesStored = uint64(len(p.keys)) * kvstore.PageSize
	return latest, nil
}

// MultiPut implements kvstore.Store: one amortised batch per target node.
// Validation and reachability are checked for the whole batch before any
// byte lands, so a rejected batch leaves no partial state.
func (p *Pool) MultiPut(now time.Duration, keys []kvstore.Key, pages [][]byte) (time.Duration, error) {
	if len(keys) != len(pages) {
		return now, kvstore.ErrBadValue
	}
	for _, page := range pages {
		if err := kvstore.ValidatePage(page); err != nil {
			return now, err
		}
	}
	p.stats.MultiPuts++
	p.stats.Puts += uint64(len(keys))
	if len(keys) == 0 {
		return now, nil
	}
	// Plan the whole batch first: per-key targets (a flat arena carved by
	// per-key counts), per-slot groups. All planning state is pool-level
	// scratch reused across batches, so a steady-state writeback flush
	// allocates nothing.
	p.mpNodes = p.mpNodes[:0]
	p.mpCounts = p.mpCounts[:0]
	p.mpSlots = p.mpSlots[:0]
	for i := range p.mpGroups {
		p.mpGroups[i] = 0
	}
	partial := false
	for _, key := range keys {
		start := len(p.mpNodes)
		buf, assigned := p.appendWriteTargets(p.mpNodes, key)
		p.mpNodes = buf
		count := len(buf) - start
		if count == 0 {
			return now, fmt.Errorf("%w: partition %d", ErrUnavailable, key.Partition())
		}
		if count < assigned {
			partial = true
		}
		p.mpCounts = append(p.mpCounts, count)
		for _, n := range buf[start:] {
			if p.mpGroups[n.slot] == 0 {
				p.mpSlots = append(p.mpSlots, n.slot)
			}
			p.mpGroups[n.slot]++
		}
	}
	insertionSortInts(p.mpSlots)
	p.mpAll = p.mpAll[:0]
	for _, s := range p.mpSlots {
		p.mpAll = append(p.mpAll, p.slotNode(s))
	}
	if err := p.checkEpoch(p.mpAll); err != nil {
		return now, err
	}
	if partial {
		p.ctr.PartialPuts++
	}
	latest := now
	for _, s := range p.mpSlots {
		if done := p.slotNode(s).write.SubmitN(now, p.mpGroups[s]); done > latest {
			latest = done
		}
	}
	off := 0
	for i, key := range keys {
		var mask uint64
		for _, n := range p.mpNodes[off : off+p.mpCounts[i]] {
			n.set(key, pages[i])
			mask |= n.bit()
		}
		off += p.mpCounts[i]
		p.keys[key] = mask
	}
	p.stats.BytesStored = uint64(len(p.keys)) * kvstore.PageSize
	return latest, nil
}

// readOrder lists the slots to try for a key: the client table's assignment
// (preferred replica first), then any remaining mask holders ascending — so
// a read survives even when placement has drifted from the cached table.
// The result aliases pool-level scratch: valid until the next readOrder call.
func (p *Pool) readOrder(key kvstore.Key, mask uint64) []int {
	order := p.orderScratch[:0]
	seen := uint64(0)
	for _, s := range p.client.Assign(key.Partition()) {
		order = append(order, s)
		seen |= 1 << uint(s)
	}
	for s := 0; s < maxSlots; s++ {
		if mask&(1<<uint(s)) != 0 && seen&(1<<uint(s)) == 0 {
			order = append(order, s)
		}
	}
	p.orderScratch = order
	return order
}

// getKey is the failover read sweep: consult only mask holders (the index,
// not the node, decides who may serve), preferred replica first. Reads are
// deliberately not epoch-checked — serving a read needs only the current
// version, which the mask guarantees, so a crash with R≥2 is absorbed by a
// surviving replica with no error surfaced even without the retry layer.
func (p *Pool) getKey(now time.Duration, key kvstore.Key) ([]byte, time.Duration, error) {
	mask, live := p.keys[key]
	if !live {
		return nil, now, kvstore.ErrNotFound
	}
	t := now
	for i, slot := range p.readOrder(key, mask) {
		n := p.slotNode(slot)
		if !p.reachable(n) || mask&(1<<uint(slot)) == 0 {
			continue
		}
		page, held := n.pages[key]
		if !held {
			// The index says current but the node lost it; demote the copy
			// so repair can restore it.
			mask &^= 1 << uint(slot)
			p.keys[key] = mask
			continue
		}
		done := n.read.Submit(t)
		if i != 0 {
			p.ctr.Failovers++
		}
		p.repair(done, key, page, p.keys[key])
		// Zero-copy read per the Store ownership contract: the caller gets
		// a reference to the serving node's buffer.
		return page, done, nil
	}
	return nil, t, fmt.Errorf("%w: %v", ErrUnavailable, key)
}

// repair back-fills key onto reachable assignment nodes lacking the current
// version. Issued at the read's completion time and not awaited — off the
// faulting guest's critical path, like the monitor's writeback.
func (p *Pool) repair(now time.Duration, key kvstore.Key, page []byte, mask uint64) {
	for _, slot := range p.client.Assign(key.Partition()) {
		n := p.slotNode(slot)
		if !p.reachable(n) || mask&(1<<uint(slot)) != 0 {
			continue
		}
		n.set(key, page)
		n.write.Submit(now)
		p.keys[key] |= n.bit()
		p.ctr.ReadRepairs++
	}
}

// Get implements kvstore.Store.
func (p *Pool) Get(now time.Duration, key kvstore.Key) ([]byte, time.Duration, error) {
	p.stats.Gets++
	data, done, err := p.getKey(now, key)
	if errors.Is(err, kvstore.ErrNotFound) {
		p.stats.Misses++
	}
	return data, done, err
}

// MultiGet implements kvstore.Store: each live key is grouped under its
// preferred serving node and fetched in one amortised batch per node; keys
// the batch path cannot serve fall back to the per-key failover sweep. A key
// absent from the index yields a nil entry (a miss is not an error); any
// failure no replica could mask fails the whole batch.
func (p *Pool) MultiGet(now time.Duration, keys []kvstore.Key) ([][]byte, time.Duration, error) {
	p.stats.MultiGets++
	p.stats.Gets += uint64(len(keys))
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out, now, nil
	}
	groups := make(map[int][]int)
	var order []int
	var fallback []int
	for idx, key := range keys {
		mask, live := p.keys[key]
		if !live {
			p.stats.Misses++
			continue
		}
		serving := -1
		for _, slot := range p.readOrder(key, mask) {
			n := p.slotNode(slot)
			if !p.reachable(n) || mask&(1<<uint(slot)) == 0 {
				continue
			}
			if _, held := n.pages[key]; !held {
				p.keys[key] &^= 1 << uint(slot)
				continue
			}
			serving = slot
			break
		}
		if serving < 0 {
			fallback = append(fallback, idx)
			continue
		}
		if _, seen := groups[serving]; !seen {
			order = append(order, serving)
		}
		groups[serving] = append(groups[serving], idx)
	}
	latest := now
	for _, slot := range order {
		n := p.slotNode(slot)
		idxs := groups[slot]
		done := n.read.SubmitN(now, len(idxs))
		if done > latest {
			latest = done
		}
		for _, idx := range idxs {
			key := keys[idx]
			page := n.pages[key]
			out[idx] = page
			p.repair(done, key, page, p.keys[key])
		}
	}
	for _, idx := range fallback {
		data, done, err := p.getKey(latest, keys[idx])
		if done > latest {
			latest = done
		}
		if err != nil {
			return nil, latest, fmt.Errorf("cluster: multiget key %v: %w", keys[idx], err)
		}
		out[idx] = data
	}
	return out, latest, nil
}

// StartGet implements kvstore.Store: the split read issues the failover
// sweep synchronously and hands the caller a PendingGet whose ReadyAt is the
// sweep's completion time.
func (p *Pool) StartGet(now time.Duration, key kvstore.Key) kvstore.PendingGet {
	data, done, err := p.Get(now, key)
	return kvstore.PendingGet{Key: key, Data: data, ReadyAt: done, Err: err}
}

// Delete implements kvstore.Store. Unlike a write, a delete that reaches no
// node mutates nothing — the key stays in the index and the error is
// transient — so "error" always means "nothing happened" and a resilient
// retry is safe. On success the key leaves the index first; a stale copy on
// an unreachable node can never resurrect because only the index serves.
func (p *Pool) Delete(now time.Duration, key kvstore.Key) (time.Duration, error) {
	p.stats.Deletes++
	mask, live := p.keys[key]
	// Targets: the assignment plus any mask holder with a copy to scrub.
	// Like writeTargets, a resolution that reaches nobody under a stale
	// cached table refreshes and resolves once more before giving up.
	var targets []*storeNode
	for {
		targetSet := make(map[int]bool)
		var slots []int
		for _, s := range p.client.Assign(key.Partition()) {
			if !targetSet[s] {
				targetSet[s] = true
				slots = append(slots, s)
			}
		}
		for s := 0; s < maxSlots; s++ {
			if mask&(1<<uint(s)) != 0 && !targetSet[s] {
				targetSet[s] = true
				slots = append(slots, s)
			}
		}
		sort.Ints(slots)
		targets = make([]*storeNode, 0, len(slots))
		for _, s := range slots {
			if n := p.slotNode(s); p.reachable(n) {
				targets = append(targets, n)
			}
		}
		if len(targets) > 0 || p.client == p.committed {
			break
		}
		p.refresh()
	}
	if live && len(targets) == 0 {
		return now, fmt.Errorf("%w: delete %v", ErrUnavailable, key)
	}
	if err := p.checkEpoch(targets); err != nil {
		return now, err
	}
	delete(p.keys, key)
	latest := now
	for _, n := range targets {
		delete(n.pages, key)
		if done := n.write.Submit(now); done > latest {
			latest = done
		}
	}
	p.stats.BytesStored = uint64(len(p.keys)) * kvstore.PageSize
	return latest, nil
}

// Stats implements kvstore.Store.
func (p *Pool) Stats() kvstore.Stats { return p.stats }

// Len reports the number of live keys in the authoritative index.
func (p *Pool) Len() int { return len(p.keys) }
