package cluster_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"fluidmem/internal/core/resilience"
	"fluidmem/internal/kvstore"
	"fluidmem/internal/kvstore/cluster"
	"fluidmem/internal/kvstore/faulty"
	"fluidmem/internal/kvstore/storetest"
	"fluidmem/internal/trace"
)

func newPool(t *testing.T, nodes, replicas int, seed uint64) *cluster.Pool {
	t.Helper()
	p, err := cluster.New(cluster.Config{Nodes: nodes, Replicas: replicas, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The cluster pool must pass the same conformance suite as every other
// backend — bare, under the chaos wrapper at zero rates (which must be
// invisible), and under the trace decorator.
func TestConformance(t *testing.T) {
	storetest.Run(t, func() kvstore.Store { return newPool(t, 3, 2, 1) })
}

func TestConformanceUnderFaulty(t *testing.T) {
	storetest.Run(t, func() kvstore.Store {
		return faulty.Wrap(newPool(t, 3, 2, 2), faulty.Uniform(0, 0), 99)
	})
}

func TestConformanceInstrumented(t *testing.T) {
	storetest.Run(t, func() kvstore.Store {
		return kvstore.Instrumented(newPool(t, 3, 2, 3), trace.New(true))
	})
}

func TestConformanceUnderResilience(t *testing.T) {
	storetest.Run(t, func() kvstore.Store {
		return resilience.Wrap(newPool(t, 3, 2, 4), resilience.DefaultPolicy(), 7)
	})
}

func TestConformanceSingleReplica(t *testing.T) {
	storetest.Run(t, func() kvstore.Store { return newPool(t, 3, 1, 5) })
}

// put seeds count pages across many partitions and returns their keys.
func put(t *testing.T, p *cluster.Pool, count int) ([]kvstore.Key, time.Duration) {
	t.Helper()
	var keys []kvstore.Key
	now := time.Duration(0)
	for i := 0; i < count; i++ {
		key := kvstore.MakeKey(uint64(0x100000+i*kvstore.PageSize), kvstore.PartitionID(i%64))
		done, err := p.Put(now, key, storetest.Page(byte(i)))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		now = done
		keys = append(keys, key)
	}
	return keys, now
}

// verify reads every key back and checks content.
func verify(t *testing.T, s kvstore.Store, keys []kvstore.Key, now time.Duration) time.Duration {
	t.Helper()
	for i, key := range keys {
		data, done, err := s.Get(now, key)
		if err != nil {
			t.Fatalf("get %d (%v): %v", i, key, err)
		}
		if !bytes.Equal(data, storetest.Page(byte(i))) {
			t.Fatalf("key %d corrupted", i)
		}
		now = done
	}
	return now
}

func TestCrashServedFromSurvivorThenRereplicated(t *testing.T) {
	p := newPool(t, 3, 2, 11)
	keys, now := put(t, p, 64)

	// Abrupt crash: every page had 2 copies, one of which may be gone.
	if err := p.Crash(now, "node0"); err != nil {
		t.Fatal(err)
	}
	// The headline guarantee: with R≥2 the BARE pool (no retry layer)
	// serves every read from a surviving replica, no error surfaced.
	now = verify(t, p, keys, now)
	if p.ClusterStats().Failovers == 0 {
		t.Fatal("no read failed over; crash test is vacuous")
	}

	// Recovery: controllers commit the shrunken table, resync re-replicates.
	done, copies, err := p.Recover(now)
	if err != nil {
		t.Fatal(err)
	}
	if copies == 0 {
		t.Fatal("recovery re-replicated nothing")
	}
	if got := len(p.Committed().Nodes); got != 2 {
		t.Fatalf("committed table has %d nodes after recovery, want 2", got)
	}
	verify(t, p, keys, done)

	// Every key must be back to full replication on the surviving nodes.
	if _, more := p.Resync(done); more != 0 {
		t.Fatalf("resync after recovery restored %d more copies, want 0", more)
	}
}

func TestDrainCopyThenCutover(t *testing.T) {
	p := newPool(t, 3, 2, 12)
	keys, now := put(t, p, 64)
	epoch := p.Committed().Epoch

	done, err := p.Drain(now, "node1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Committed().Epoch != epoch+1 {
		t.Fatalf("epoch = %d after drain, want %d", p.Committed().Epoch, epoch+1)
	}
	if p.Committed().Has("node1") {
		t.Fatal("drained node still in the committed table")
	}
	verify(t, p, keys, done)

	// Cannot shrink below the replication factor.
	if _, err := p.Drain(done, "node0"); !errors.Is(err, cluster.ErrTooFewNodes) {
		t.Fatalf("drain below R: err = %v, want ErrTooFewNodes", err)
	}
}

func TestDrainPartitionedNodeRefused(t *testing.T) {
	p := newPool(t, 3, 2, 13)
	if err := p.PartitionNode("node2"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Drain(0, "node2"); !errors.Is(err, cluster.ErrNodePartitioned) {
		t.Fatalf("drain of partitioned node: err = %v, want ErrNodePartitioned", err)
	}
}

func TestPartitionFailoverAndHeal(t *testing.T) {
	p := newPool(t, 3, 2, 14)
	keys, now := put(t, p, 64)

	// Cut off the preferred replica of keys[0] so both the read-failover
	// and the partial-write paths are guaranteed to trigger on that key.
	slots := p.Committed().Assign(keys[0].Partition())
	victim := fmt.Sprintf("node%d", slots[0])
	if err := p.PartitionNode(victim); err != nil {
		t.Fatal(err)
	}
	// Reads fail over; writes go partial but succeed.
	now = verify(t, p, keys, now)
	done, err := p.Put(now, keys[0], storetest.Page(200))
	if err != nil {
		t.Fatalf("write during partition: %v", err)
	}
	if p.ClusterStats().PartialPuts == 0 {
		t.Fatal("write during partition was not partial")
	}

	// Heal: the node rejoins and the resync restores it as a current
	// replica, including the overwrite it slept through.
	done, err = p.HealNode(done, victim)
	if err != nil {
		t.Fatal(err)
	}
	data, done, err := p.Get(done, keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, storetest.Page(200)) {
		t.Fatal("stale copy served after heal")
	}
	if _, more := p.Resync(done); more != 0 {
		t.Fatalf("pool not converged after heal: %d copies still missing", more)
	}
}

func TestAddNodeStaleEpochHandshake(t *testing.T) {
	p := newPool(t, 3, 2, 15)
	keys, now := put(t, p, 32)

	name, done, err := p.AddNode(now)
	if err != nil {
		t.Fatal(err)
	}
	if name == "" || !p.Committed().Has(name) {
		t.Fatalf("added node %q not in committed table", name)
	}

	// The data path's cached table is deliberately stale: the first write
	// must be rejected by a node holding the new epoch, refreshing the
	// cache; the retry then lands on the new placement.
	_, err = p.Put(done, keys[0], storetest.Page(0))
	if !errors.Is(err, cluster.ErrStaleEpoch) {
		t.Fatalf("first write after AddNode: err = %v, want ErrStaleEpoch", err)
	}
	if _, err := p.Put(done, keys[0], storetest.Page(0)); err != nil {
		t.Fatalf("retry after refresh: %v", err)
	}
	st := p.ClusterStats()
	if st.StaleRejects == 0 || st.Refreshes == 0 {
		t.Fatalf("stale handshake not exercised: %+v", st)
	}
	verify(t, p, keys, done)
}

// The satellite requirement in one test: a stale-epoch reject is transient,
// so the resilience layer absorbs it — membership changes are invisible to
// a client routed through core/resilience.
func TestStaleEpochRetriedThroughResilience(t *testing.T) {
	p := newPool(t, 3, 2, 16)
	s := resilience.Wrap(p, resilience.DefaultPolicy(), 5)
	keys, now := put(t, p, 16)

	_, done, err := p.AddNode(now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(done, keys[0], storetest.Page(50)); err != nil {
		t.Fatalf("resilient write across epoch change: %v", err)
	}
	if p.ClusterStats().StaleRejects == 0 {
		t.Fatal("no stale reject: the retry path was not exercised")
	}
	if s.ResilienceStats().Retries == 0 {
		t.Fatal("resilience layer recorded no retry")
	}
}

func TestRendezvousMinimalMovement(t *testing.T) {
	nodes := []cluster.NodeInfo{{Name: "node0", Slot: 0}, {Name: "node1", Slot: 1}, {Name: "node2", Slot: 2}}
	old := cluster.NewTable(1, 2, nodes, 3)
	grown := old.WithNode("node3")

	changed := 0
	for part := 0; part < kvstore.MaxPartitions; part++ {
		oldSet := map[int]bool{}
		for _, s := range old.Assign(kvstore.PartitionID(part)) {
			oldSet[s] = true
		}
		moved := false
		for _, s := range grown.Assign(kvstore.PartitionID(part)) {
			if !oldSet[s] {
				// Rendezvous property: a new member only ever inserts
				// itself; it never shuffles survivors between each other.
				if s != 3 {
					t.Fatalf("partition %d moved to pre-existing node %d", part, s)
				}
				moved = true
			}
		}
		if moved {
			changed++
		}
	}
	// The new node should win roughly R/N of the partitions, not all.
	if changed == 0 || changed > kvstore.MaxPartitions*3/4 {
		t.Fatalf("%d/%d partitions moved on AddNode", changed, kvstore.MaxPartitions)
	}

	// Placement is a pure function of membership.
	again := cluster.NewTable(1, 2, nodes, 3)
	for part := 0; part < kvstore.MaxPartitions; part++ {
		a, b := old.Assign(kvstore.PartitionID(part)), again.Assign(kvstore.PartitionID(part))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("assignment not deterministic at partition %d", part)
			}
		}
	}
}

func TestMembershipOpsChargeCallerTime(t *testing.T) {
	p := newPool(t, 3, 2, 17)
	now := 5 * time.Millisecond
	_, done, err := p.AddNode(now)
	if err != nil {
		t.Fatal(err)
	}
	if done <= now {
		t.Fatalf("AddNode done %v, want after %v (consensus is not free)", done, now)
	}
}
