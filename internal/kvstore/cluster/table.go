// Package cluster implements a sharded remote-memory pool: N store nodes
// behind an epoch-versioned partition table committed through Raft. Key→node
// routing hashes the key's 12-bit virtual partition against the table with
// rendezvous (highest-random-weight) hashing, so membership changes move the
// minimum number of partitions; each partition is R-way replicated across
// nodes using the same authoritative version-mask index as the replicated
// wrapper. The pool survives the full membership lifecycle — AddNode, Drain
// (graceful copy-then-cutover), Crash (abrupt, re-replicated from surviving
// replicas), and network partition of a node — which is the datacenter tier
// the Memory-as-a-Service predecessor assumes and the disaggregation surveys
// identify as the central robustness gap: one store node dying must not take
// down every VM with pages on it.
package cluster

import (
	"sort"

	"fluidmem/internal/kvstore"
)

// NodeInfo is one store node's entry in the routing table.
type NodeInfo struct {
	// Name is the node's simnet name.
	Name string
	// Slot is the node's permanent bit position in version masks. Slots are
	// allocated monotonically and never reused, so a mask bit always means
	// the same physical node for the lifetime of a simulation.
	Slot int
}

// maxSlots bounds lifetime node count: version masks are uint64 bitmaps.
const maxSlots = 64

// Table is one epoch of the cluster routing state: the set of active store
// nodes and the replication factor. Assignment of the 4096 virtual
// partitions to nodes is derived deterministically by rendezvous hashing, so
// the table that travels through Raft is just membership + epoch — every
// observer computes identical placement. Tables are immutable once built;
// membership changes produce a successor with Epoch+1.
type Table struct {
	// Epoch versions the table; nodes reject requests routed with an older
	// epoch than the one they have installed.
	Epoch uint64
	// Replicas is the target copies per partition (capped by node count).
	Replicas int
	// Nodes lists active members in slot order.
	Nodes []NodeInfo
	// NextSlot is the next unallocated mask bit, carried in the table so
	// epochs are self-contained.
	NextSlot int

	// assign caches partition → node slots, highest rendezvous score first.
	assign [][]int
}

// NewTable builds a table and precomputes the partition assignment.
func NewTable(epoch uint64, replicas int, nodes []NodeInfo, nextSlot int) *Table {
	t := &Table{
		Epoch:    epoch,
		Replicas: replicas,
		Nodes:    append([]NodeInfo(nil), nodes...),
		NextSlot: nextSlot,
	}
	sort.Slice(t.Nodes, func(i, j int) bool { return t.Nodes[i].Slot < t.Nodes[j].Slot })
	t.assign = make([][]int, kvstore.MaxPartitions)
	for p := range t.assign {
		t.assign[p] = t.computeAssign(kvstore.PartitionID(p))
	}
	return t
}

// computeAssign picks the Replicas highest-scoring nodes for a partition.
// Ties break by slot so placement is a pure function of (members, partition).
func (t *Table) computeAssign(part kvstore.PartitionID) []int {
	type scored struct {
		slot  int
		score uint64
	}
	scores := make([]scored, len(t.Nodes))
	for i, n := range t.Nodes {
		scores[i] = scored{slot: n.Slot, score: rendezvousScore(n.Name, part)}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].score != scores[j].score {
			return scores[i].score > scores[j].score
		}
		return scores[i].slot < scores[j].slot
	})
	r := t.Replicas
	if r > len(scores) {
		r = len(scores)
	}
	out := make([]int, r)
	for i := 0; i < r; i++ {
		out[i] = scores[i].slot
	}
	return out
}

// Assign returns the node slots serving a partition, preferred replica first.
// The returned slice is shared; callers must not mutate it.
func (t *Table) Assign(part kvstore.PartitionID) []int {
	return t.assign[part&0xFFF]
}

// Has reports whether a node name is an active member.
func (t *Table) Has(name string) bool {
	for _, n := range t.Nodes {
		if n.Name == name {
			return true
		}
	}
	return false
}

// WithNode returns the successor table (Epoch+1) with a new member occupying
// the next slot, or nil if the slot space is exhausted or the name is taken.
func (t *Table) WithNode(name string) *Table {
	if t.Has(name) || t.NextSlot >= maxSlots {
		return nil
	}
	nodes := append(append([]NodeInfo(nil), t.Nodes...), NodeInfo{Name: name, Slot: t.NextSlot})
	return NewTable(t.Epoch+1, t.Replicas, nodes, t.NextSlot+1)
}

// WithoutNodes returns the successor table (Epoch+1) with the named members
// removed, or nil if none of them is a member.
func (t *Table) WithoutNodes(names ...string) *Table {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	var nodes []NodeInfo
	removed := false
	for _, n := range t.Nodes {
		if drop[n.Name] {
			removed = true
			continue
		}
		nodes = append(nodes, n)
	}
	if !removed {
		return nil
	}
	return NewTable(t.Epoch+1, t.Replicas, nodes, t.NextSlot)
}

// rendezvousScore is FNV-1a over (node name, partition). Each node scores
// every partition independently, so adding or removing a node only moves the
// partitions it wins or loses — minimal disruption on membership change.
func rendezvousScore(name string, part kvstore.PartitionID) uint64 {
	var h uint64 = 14695981039346656037
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < len(name); i++ {
		mix(name[i])
	}
	mix(byte(part))
	mix(byte(part >> 8))
	// Finalize with full avalanche: bare FNV-1a only perturbs the low bits
	// per partition, which would let one node's name dominate the ordering
	// for every partition. After this, each (node, partition) pair scores
	// independently — the property rendezvous hashing depends on.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
