package kvstore

import (
	"testing"
)

// registryOps drives the same table-driven edge-case matrix against any
// Registry implementation: lifecycle misuse (double release, adoption of a
// never-allocated slot) must fail loudly on both backends, since a silent
// success would let a migrated VM claim a partition with no pages behind it.
type registryStep struct {
	op      string // "allocate", "release", "adopt", "release-allocated", "adopt-allocated"
	wantErr bool
}

func runRegistrySteps(t *testing.T, name string, r Registry, steps []registryStep) {
	t.Helper()
	var last PartitionID
	allocated := false
	for i, s := range steps {
		var err error
		switch s.op {
		case "allocate":
			last, err = r.Allocate("hyp-edge", 9000+i)
			allocated = err == nil
		case "release-allocated":
			if !allocated {
				t.Fatalf("%s step %d: release-allocated without a prior allocate", name, i)
			}
			err = r.Release(last)
		case "adopt-allocated":
			if !allocated {
				t.Fatalf("%s step %d: adopt-allocated without a prior allocate", name, i)
			}
			err = r.Adopt(last)
		case "release-unallocated":
			err = r.Release(PartitionID(0xABC))
		case "adopt-unallocated":
			err = r.Adopt(PartitionID(0xABC))
		default:
			t.Fatalf("%s step %d: unknown op %q", name, i, s.op)
		}
		if s.wantErr && err == nil {
			t.Fatalf("%s step %d (%s): want error, got nil", name, i, s.op)
		}
		if !s.wantErr && err != nil {
			t.Fatalf("%s step %d (%s): unexpected error %v", name, i, s.op, err)
		}
	}
}

func TestRegistryEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		steps []registryStep
	}{
		{"adopt-never-allocated", []registryStep{
			{op: "adopt-unallocated", wantErr: true},
		}},
		{"release-never-allocated", []registryStep{
			{op: "release-unallocated", wantErr: true},
		}},
		{"double-release", []registryStep{
			{op: "allocate"},
			{op: "release-allocated"},
			{op: "release-allocated", wantErr: true},
		}},
		{"adopt-after-release", []registryStep{
			{op: "allocate"},
			{op: "release-allocated"},
			{op: "adopt-allocated", wantErr: true},
		}},
		{"adopt-allocated-is-idempotent", []registryStep{
			{op: "allocate"},
			{op: "adopt-allocated"},
			{op: "adopt-allocated"},
		}},
		{"release-after-adopt", []registryStep{
			{op: "allocate"},
			{op: "adopt-allocated"},
			{op: "release-allocated"},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run("local/"+tc.name, func(t *testing.T) {
			runRegistrySteps(t, "local", NewLocalRegistry(), tc.steps)
		})
		t.Run("zk/"+tc.name, func(t *testing.T) {
			runRegistrySteps(t, "zk", newZKRegistry(t), tc.steps)
		})
	}
}

func TestLocalRegistryAdoptDoesNotReserve(t *testing.T) {
	// A failed Adopt must not leave the slot marked used: the slot stays
	// allocatable by a later Allocate probe.
	r := NewLocalRegistry()
	if err := r.Adopt(PartitionID(7)); err == nil {
		t.Fatal("adopt of never-allocated partition succeeded")
	}
	if r.used[PartitionID(7)] {
		t.Fatal("failed adopt reserved the slot")
	}
}
