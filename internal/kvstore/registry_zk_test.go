package kvstore

import (
	"testing"

	"fluidmem/internal/zookeeper"
)

func newZKRegistry(t *testing.T) *ZKRegistry {
	t.Helper()
	zk, err := zookeeper.NewCluster(3, 77)
	if err != nil {
		t.Fatal(err)
	}
	return NewZKRegistry(zk)
}

func TestZKRegistryAllocateUnique(t *testing.T) {
	r := newZKRegistry(t)
	seen := make(map[PartitionID]bool)
	for i := 0; i < 8; i++ {
		p, err := r.Allocate("hyp-a", 100+i)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("duplicate partition %d", p)
		}
		seen[p] = true
	}
}

func TestZKRegistryOwner(t *testing.T) {
	r := newZKRegistry(t)
	p, err := r.Allocate("hyp-b", 4242)
	if err != nil {
		t.Fatal(err)
	}
	hyp, pid, err := r.Owner(p)
	if err != nil {
		t.Fatal(err)
	}
	if hyp != "hyp-b" || pid != 4242 {
		t.Fatalf("owner = %s/%d", hyp, pid)
	}
}

func TestZKRegistryReleaseThenReuse(t *testing.T) {
	r := newZKRegistry(t)
	p, err := r.Allocate("hyp-c", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Release(p); err != nil {
		t.Fatal(err)
	}
	// The same (hyp, pid) hashes to the same first candidate, so after
	// release the identical index is claimable again.
	p2, err := r.Allocate("hyp-c", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Fatalf("reallocated %d, want %d", p2, p)
	}
}

func TestZKRegistryCollisionResolvedByNonce(t *testing.T) {
	r := newZKRegistry(t)
	// Two hypervisors with colliding first candidates still both succeed,
	// because the nonce walks the probe sequence.
	a, err := r.Allocate("same", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Allocate("same", 7)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("collision not resolved: both %d", a)
	}
}
