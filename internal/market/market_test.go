package market

import (
	"reflect"
	"testing"
	"time"

	"fluidmem/internal/arbiter"
	"fluidmem/internal/hotset"
)

func steep(id string, share int) arbiter.VMView {
	return arbiter.VMView{ID: id, SharePages: share,
		Curve: hotset.Curve{BucketPages: 4, Hits: []uint64{100, 80, 60, 40}}}
}

func flat(id string, share int) arbiter.VMView {
	return arbiter.VMView{ID: id, SharePages: share,
		Curve: hotset.Curve{BucketPages: 4, Hits: []uint64{0, 0, 0, 0}}}
}

// missing marks a view as violating its SLO this window.
func missing(v arbiter.VMView) arbiter.VMView {
	v.SLOTarget = time.Microsecond
	v.WindowP99 = time.Millisecond
	return v
}

// meeting gives a view an SLO it currently satisfies.
func meeting(v arbiter.VMView) arbiter.VMView {
	v.SLOTarget = time.Millisecond
	v.WindowP99 = time.Microsecond
	return v
}

func mustMarket(t *testing.T, cfg Config) *Market {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustPlan(t *testing.T, m *Market, views []arbiter.VMView) arbiter.Plan {
	t.Helper()
	plan, err := m.Plan(views)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.TotalPages(); got != totalShares(views) {
		t.Fatalf("budget not conserved: plan total %d, views total %d", got, totalShares(views))
	}
	return plan
}

func totalShares(views []arbiter.VMView) int {
	n := 0
	for _, v := range views {
		n += v.SharePages
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{FloorPages: 0, Step: 1},
		{FloorPages: 1, Step: 0},
		{FloorPages: 8, Step: 1, CeilPages: 4},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("New(%+v) accepted an unusable config", c)
		}
	}
	if err := DefaultConfig(64, 2).Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	if err := DefaultConfig(1, 0).Validate(); err != nil {
		t.Fatalf("DefaultConfig degenerate invalid: %v", err)
	}
}

func TestPlanRejectsBadViews(t *testing.T) {
	m := mustMarket(t, Config{FloorPages: 1, Step: 4})
	if _, err := m.Plan([]arbiter.VMView{steep("a", 16), flat("a", 16)}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	if _, err := m.Plan([]arbiter.VMView{steep("a", 0)}); err == nil {
		t.Fatal("zero share accepted")
	}
}

// The canonical trade: a steep bidder and a flat supplier clear, and the
// transfer is recorded as one aggregated lease.
func TestPlanGrantsLease(t *testing.T) {
	m := mustMarket(t, Config{FloorPages: 4, Step: 4, MaxLeases: 2, Hysteresis: 8})
	views := []arbiter.VMView{flat("cold", 32), steep("hot", 32)}
	plan := mustPlan(t, m, views)
	if len(plan.Moves) != 2 {
		t.Fatalf("moves = %+v, want 2", plan.Moves)
	}
	if plan.Shares["hot"] != 40 || plan.Shares["cold"] != 24 {
		t.Fatalf("shares = %v", plan.Shares)
	}
	leases := m.Leases()
	if len(leases) != 1 {
		t.Fatalf("leases = %+v, want 1 aggregated lease", leases)
	}
	l := leases[0]
	if l.From != "cold" || l.To != "hot" || l.Pages != 8 || l.Epoch != 1 {
		t.Fatalf("lease = %+v", l)
	}
	s := m.Stats()
	if s.Epochs != 1 || s.Leases != 1 || s.LeasedPages != 8 || s.Clawbacks != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SLOEnforcedEpochs != 0 {
		t.Fatalf("no view carried an SLO but SLOEnforcedEpochs = %d", s.SLOEnforcedEpochs)
	}
}

// A donor that starts missing its SLO gets every lease it funded recalled:
// pages flow from the holder back to the donor and the book empties.
func TestPlanClawsBackViolatingDonor(t *testing.T) {
	m := mustMarket(t, Config{FloorPages: 4, Step: 4, MaxLeases: 2, Hysteresis: 8})
	mustPlan(t, m, []arbiter.VMView{flat("cold", 32), steep("hot", 32)})

	// Next epoch: cold is now violating. Its 8 donated pages come back, and
	// no new trade harvests from it (violating tenants never supply).
	views := []arbiter.VMView{missing(flat("cold", 24)), steep("hot", 40)}
	plan := mustPlan(t, m, views)
	if len(plan.Moves) != 1 {
		t.Fatalf("moves = %+v, want exactly the claw-back", plan.Moves)
	}
	mv := plan.Moves[0]
	if mv.From != "hot" || mv.To != "cold" || mv.Pages != 8 {
		t.Fatalf("claw-back move = %+v", mv)
	}
	if plan.Shares["cold"] != 32 || plan.Shares["hot"] != 32 {
		t.Fatalf("shares after claw-back = %v", plan.Shares)
	}
	if got := m.Leases(); len(got) != 0 {
		t.Fatalf("recalled lease still on the book: %+v", got)
	}
	s := m.Stats()
	if s.Clawbacks != 1 || s.ClawedPages != 8 || s.SLOViolations != 1 || s.SLOEnforcedEpochs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// A partial recall stops at the holder's floor and leaves the remainder of
// the lease on the book.
func TestPlanPartialClawbackRespectsHolderFloor(t *testing.T) {
	m := mustMarket(t, Config{FloorPages: 4, Step: 8, MaxLeases: 1, Hysteresis: 0})
	mustPlan(t, m, []arbiter.VMView{flat("cold", 32), steep("hot", 32)})
	// The holder shrank to 37 pages (e.g. operator resize); its per-view
	// floor of 34 leaves only 3 of the 8 leased pages recallable.
	hot := steep("hot", 37)
	hot.FloorPages = 34
	plan := mustPlan(t, m, []arbiter.VMView{missing(flat("cold", 24)), hot})
	if len(plan.Moves) != 1 || plan.Moves[0].Pages != 3 {
		t.Fatalf("moves = %+v, want one 3-page recall", plan.Moves)
	}
	leases := m.Leases()
	if len(leases) != 1 || leases[0].Pages != 5 {
		t.Fatalf("leases = %+v, want the 5-page remainder", leases)
	}
	if plan.Shares["hot"] != 34 || plan.Shares["cold"] != 27 {
		t.Fatalf("shares = %v", plan.Shares)
	}
}

// Violating tenants are excluded from the supply side even when their curve
// says donating is free.
func TestPlanViolatingTenantNeverSupplies(t *testing.T) {
	m := mustMarket(t, Config{FloorPages: 4, Step: 4, MaxLeases: 4, Hysteresis: 0})
	views := []arbiter.VMView{missing(flat("cold", 32)), steep("hot", 32)}
	plan := mustPlan(t, m, views)
	if len(plan.Moves) != 0 {
		t.Fatalf("harvested from a violating tenant: %+v", plan.Moves)
	}
}

// A violating bidder outranks a higher-bidding healthy one and clears
// without meeting the hysteresis spread.
func TestPlanViolatingBidderHasPriority(t *testing.T) {
	m := mustMarket(t, Config{FloorPages: 4, Step: 4, MaxLeases: 1, Hysteresis: 1000})
	hurt := arbiter.VMView{ID: "hurt", SharePages: 32,
		Curve: hotset.Curve{BucketPages: 4, Hits: []uint64{10, 0, 0, 0}}}
	hurt = missing(hurt)
	views := []arbiter.VMView{flat("cold", 32), steep("rich", 32), hurt}
	plan := mustPlan(t, m, views)
	if len(plan.Moves) != 1 {
		t.Fatalf("moves = %+v, want 1", plan.Moves)
	}
	if mv := plan.Moves[0]; mv.To != "hurt" || mv.From != "cold" {
		t.Fatalf("move = %+v, want cold→hurt", mv)
	}
	// Without the violation, the same hysteresis blocks everyone.
	m2 := mustMarket(t, Config{FloorPages: 4, Step: 4, MaxLeases: 1, Hysteresis: 1000})
	views2 := []arbiter.VMView{flat("cold", 32), steep("rich", 32), meeting(hurt)}
	views2[2].WindowP99 = time.Nanosecond
	if plan2 := mustPlan(t, m2, views2); len(plan2.Moves) != 0 {
		t.Fatalf("hysteresis did not hold for healthy bidders: %+v", plan2.Moves)
	}
}

// Per-view floors and ceilings override the config defaults.
func TestPlanRespectsPerTenantBounds(t *testing.T) {
	m := mustMarket(t, Config{FloorPages: 4, Step: 4, MaxLeases: 8, Hysteresis: 0})
	cold := flat("cold", 32)
	cold.FloorPages = 24
	hot := steep("hot", 32)
	hot.CeilPages = 36
	plan := mustPlan(t, m, []arbiter.VMView{cold, hot})
	if plan.Shares["hot"] != 36 {
		t.Fatalf("taker ignored its ceiling: %v", plan.Shares)
	}
	if plan.Shares["cold"] < 24 {
		t.Fatalf("donor shrunk through its floor: %v", plan.Shares)
	}
}

// A flat bidder (zero slab rate) never trades: grants require predicted
// benefit, not just a healthy supplier.
func TestPlanZeroBidNeverClears(t *testing.T) {
	m := mustMarket(t, Config{FloorPages: 4, Step: 4, MaxLeases: 4, Hysteresis: 0})
	plan := mustPlan(t, m, []arbiter.VMView{flat("a", 32), flat("b", 32)})
	if len(plan.Moves) != 0 {
		t.Fatalf("zero-bid trade cleared: %+v", plan.Moves)
	}
}

// Plans and the lease book are pure functions of the view SET: input order
// must not matter, and the digest proves it.
func TestPlanOrderIndependent(t *testing.T) {
	views := []arbiter.VMView{
		steep("a", 32), flat("b", 32),
		{ID: "c", SharePages: 32, Curve: hotset.Curve{BucketPages: 4, Hits: []uint64{20, 5, 0, 0}}},
	}
	run := func(perm []int) (arbiter.Plan, uint64) {
		m := mustMarket(t, Config{FloorPages: 4, Step: 4, MaxLeases: 4, Hysteresis: 8})
		shuffled := make([]arbiter.VMView, len(views))
		for i, j := range perm {
			shuffled[i] = views[j]
		}
		plan := mustPlan(t, m, shuffled)
		return plan, m.Digest()
	}
	refPlan, refDig := run([]int{0, 1, 2})
	for _, perm := range [][]int{{2, 1, 0}, {1, 2, 0}, {2, 0, 1}} {
		plan, dig := run(perm)
		if !reflect.DeepEqual(plan, refPlan) {
			t.Fatalf("order-dependent plan: perm %v gave %+v, want %+v", perm, plan, refPlan)
		}
		if dig != refDig {
			t.Fatalf("order-dependent digest: perm %v gave %#x, want %#x", perm, dig, refDig)
		}
	}
}

// Leases referencing tenants that left the view set are dropped without
// moving pages.
func TestPlanDropsOrphanedLeases(t *testing.T) {
	m := mustMarket(t, Config{FloorPages: 4, Step: 4, MaxLeases: 1, Hysteresis: 0})
	mustPlan(t, m, []arbiter.VMView{flat("cold", 32), steep("hot", 32)})
	if len(m.Leases()) != 1 {
		t.Fatal("setup: no lease granted")
	}
	plan := mustPlan(t, m, []arbiter.VMView{missing(flat("cold", 28)), steep("new", 36)})
	for _, mv := range plan.Moves {
		if mv.From == "hot" || mv.To == "hot" {
			t.Fatalf("moved pages for a departed tenant: %+v", mv)
		}
	}
	for _, l := range m.Leases() {
		if l.To == "hot" {
			t.Fatalf("orphaned lease survived: %+v", l)
		}
	}
}

// MaxLeases caps new trades per epoch, but claw-backs are never capped.
func TestPlanClawbackUncapped(t *testing.T) {
	m := mustMarket(t, Config{FloorPages: 2, Step: 2, MaxLeases: 1, Hysteresis: 0})
	// Two epochs of 1-trade-each build two separate leases from cold.
	mustPlan(t, m, []arbiter.VMView{flat("cold", 32), steep("hot", 16), steep("warm", 16)})
	mustPlan(t, m, []arbiter.VMView{flat("cold", 30), steep("hot", 18), steep("warm", 16)})
	leases := m.Leases()
	if len(leases) != 2 {
		t.Fatalf("setup: leases = %+v, want 2", leases)
	}
	// cold violates: BOTH leases recall in one epoch despite MaxLeases=1.
	plan := mustPlan(t, m, []arbiter.VMView{
		missing(flat("cold", 28)), steep("hot", 20), steep("warm", 16)})
	recalls := 0
	for _, mv := range plan.Moves {
		if mv.To == "cold" {
			recalls++
		}
	}
	if recalls != 2 {
		t.Fatalf("moves = %+v, want 2 recalls", plan.Moves)
	}
	if plan.Shares["cold"] != 32 {
		t.Fatalf("donor not made whole: %v", plan.Shares)
	}
}

// The market satisfies the Planner seam.
func TestMarketImplementsPlanner(t *testing.T) {
	var _ arbiter.Planner = &Market{}
}
