package market_test

import (
	"sync"
	"testing"
	"time"

	"fluidmem/internal/core"
	"fluidmem/internal/core/paralleltest"
	"fluidmem/internal/core/shardtest"
	"fluidmem/internal/market"
	"fluidmem/internal/stats"
	"fluidmem/internal/trace"
)

func TestEvaluateSLOBasics(t *testing.T) {
	var cum stats.Histogram
	for _, d := range []time.Duration{time.Microsecond, 2 * time.Microsecond, time.Millisecond} {
		cum.Add(d)
	}
	// No target: reported but never evaluated.
	v := market.EvaluateSLO(0, cum, stats.Histogram{})
	if v.Evaluated || v.Violated {
		t.Fatalf("target-less verdict evaluated: %+v", v)
	}
	if v.Faults != 3 || v.P99 == 0 {
		t.Fatalf("verdict = %+v", v)
	}
	// Tight target: the ms outlier blows the p99.
	v = market.EvaluateSLO(10*time.Microsecond, cum, stats.Histogram{})
	if !v.Evaluated || !v.Violated {
		t.Fatalf("verdict = %+v, want violated", v)
	}
	// Loose target: met.
	v = market.EvaluateSLO(time.Second, cum, stats.Histogram{})
	if !v.Evaluated || v.Violated {
		t.Fatalf("verdict = %+v, want met", v)
	}
	// Empty window (cum == prev): vacuously met even with a target.
	v = market.EvaluateSLO(time.Nanosecond, cum, cum)
	if v.Faults != 0 || v.Violated {
		t.Fatalf("empty-window verdict = %+v", v)
	}
}

// synthDur derives a deterministic fault latency from a page address: a
// spread of magnitudes from ~1µs to ~4ms so windows have real tails.
func synthDur(addr uint64) time.Duration {
	x := addr * 2654435761 // Knuth multiplicative hash
	return time.Duration(1+(x>>12)%4096) * time.Microsecond
}

// The SLO verdict must be a pure function of the multiset of fault
// durations: partitioning the same observations across 1, 2, 4, or 8
// per-worker histogram cells — by round-robin or by address hash — cannot
// change the merged evaluation.
func TestEvaluateSLOWorkerPartitionInvariance(t *testing.T) {
	var durs []time.Duration
	for i := uint64(0); i < 5000; i++ {
		durs = append(durs, synthDur(i*4096))
	}
	target := 2 * time.Millisecond

	evaluate := func(workers int, byHash bool) market.SLOVerdict {
		cells := make([]stats.Histogram, workers)
		for i, d := range durs {
			w := i % workers
			if byHash {
				w = int((uint64(i) * 0x9e3779b97f4a7c15) % uint64(workers))
			}
			cells[w].Add(d)
		}
		var merged stats.Histogram
		for i := range cells {
			merged.Merge(&cells[i])
		}
		return market.EvaluateSLO(target, merged, stats.Histogram{})
	}

	ref := evaluate(1, false)
	if !ref.Evaluated || ref.Faults != uint64(len(durs)) {
		t.Fatalf("reference verdict = %+v", ref)
	}
	for _, workers := range []int{2, 4, 8} {
		for _, byHash := range []bool{false, true} {
			if got := evaluate(workers, byHash); got != ref {
				t.Fatalf("workers=%d byHash=%v verdict = %+v, want %+v", workers, byHash, got, ref)
			}
		}
	}
}

// The same invariance through the real tracer plumbing: per-worker
// Tracer.Observe cells merged by PhaseHistogram give the same windowed
// verdict regardless of worker partitioning, including across epoch
// boundaries (cumulative snapshot + Sub).
func TestEvaluateSLOTracerWindows(t *testing.T) {
	target := 2 * time.Millisecond
	run := func(workers int) []market.SLOVerdict {
		tr := trace.New(false)
		var prev stats.Histogram
		var out []market.SLOVerdict
		for i := uint64(0); i < 3000; i++ {
			tr.Observe(trace.EvFault, int(i)%workers, synthDur(i*4096))
			if (i+1)%1000 == 0 {
				cum := tr.PhaseHistogram(trace.EvFault)
				out = append(out, market.EvaluateSLO(target, cum, prev))
				prev = cum
			}
		}
		return out
	}
	ref := run(1)
	if len(ref) != 3 {
		t.Fatalf("windows = %d, want 3", len(ref))
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for w := range ref {
			if got[w] != ref[w] {
				t.Fatalf("workers=%d window %d verdict = %+v, want %+v", workers, w, got[w], ref[w])
			}
		}
	}
}

// SLO accounting under core.NewParallel: real shard goroutines accumulate
// per-shard histogram cells concurrently through the delivery callback, and
// the merged evaluation must equal a mutex-serialised global accumulator fed
// the same deliveries — at every shard count. This is the concurrency leg of
// the invariance proof: how observations land in per-worker cells (which
// goroutine, what order) cannot change the verdict.
func TestEvaluateSLOUnderParallel(t *testing.T) {
	wl := shardtest.Workloads()[0] // ramcloud-async
	const seed = 42
	ops := paralleltest.GenOps(wl, seed)
	target := 2 * time.Millisecond

	for _, shards := range []int{1, 2, 4, 8} {
		cfg := wl.NewConfig(seed)
		cfg.Workers = shards
		cfg.Seed = seed

		cells := make([]stats.Histogram, shards)
		var mu sync.Mutex
		var global stats.Histogram
		onData := func(shard int, ticket, addr uint64, data []byte) {
			d := synthDur(addr)
			cells[shard].Add(d) // shard-local: no lock needed
			mu.Lock()
			global.Add(d)
			mu.Unlock()
		}
		p, err := core.NewParallel(cfg, nil, "slotest", onData)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if err := p.RegisterRange(shardtest.Base, uint64(wl.Pages)*core.PageSize, 1); err != nil {
			t.Fatalf("shards=%d: register: %v", shards, err)
		}
		for i, op := range ops {
			var err error
			switch op.Kind {
			case paralleltest.OpTouch:
				err = p.Touch(op.Addr, op.Write)
			case paralleltest.OpResize:
				err = p.Resize(op.Capacity)
			case paralleltest.OpDiscard:
				p.Discard(op.Addr)
			case paralleltest.OpDrain:
				err = p.Drain()
			}
			if err != nil {
				t.Fatalf("shards=%d op %d: %v", shards, i, err)
			}
		}
		if err := p.Drain(); err != nil {
			t.Fatalf("shards=%d: drain: %v", shards, err)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("shards=%d: close: %v", shards, err)
		}

		var merged stats.Histogram
		for i := range cells {
			merged.Merge(&cells[i])
		}
		got := market.EvaluateSLO(target, merged, stats.Histogram{})
		want := market.EvaluateSLO(target, global, stats.Histogram{})
		if got != want {
			t.Fatalf("shards=%d: merged cells %+v != serial accumulator %+v", shards, got, want)
		}
		if got.Faults == 0 {
			t.Fatalf("shards=%d: no deliveries observed", shards)
		}
	}
}
