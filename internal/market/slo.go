// SLO accounting: turning the PR-4 trace histograms into the per-tenant
// WindowP99 the market enforces against.
//
// The pipeline is: each tenant's Tracer accumulates one latency histogram
// per (phase, worker) cell; Tracer.PhaseHistogram("FAULT") merges the cells
// into one cumulative histogram; the host snapshots that cumulative
// histogram at each tenant's own epoch-boundary crossing (capture-on-cross,
// same as the hotset curves) and differences consecutive snapshots with
// stats.Histogram.Sub to get the closing window. Every step is a pure
// function of the multiset of fault durations — bucket-wise addition and
// subtraction — so the evaluation cannot depend on how faults were
// partitioned across workers. TestEvaluateSLOWorkerPartitionInvariance and
// the core.NewParallel test prove this for worker counts {1,2,4,8}.
package market

import (
	"time"

	"fluidmem/internal/stats"
)

// SLOVerdict is one tenant's window evaluation.
type SLOVerdict struct {
	// Target is the tenant's p99 fault-latency SLO (0 = no SLO; Evaluated
	// false and Violated false).
	Target time.Duration
	// P99 is the window's 99th-percentile fault latency.
	P99 time.Duration
	// Faults is the window's fault count.
	Faults uint64
	// Evaluated reports whether a target existed to compare against;
	// Violated whether the window p99 exceeded it. An empty window (no
	// faults) never violates — a tenant that faulted zero times met any
	// tail-latency target vacuously.
	Evaluated bool
	Violated  bool
}

// EvaluateSLO compares one tenant's closing epoch window against its p99
// target. cum is the tenant's cumulative merged FAULT histogram at the
// closing boundary; prev is the snapshot captured at the previous boundary
// (zero value for the first window). Deterministic: a pure function of the
// two histograms and the target.
func EvaluateSLO(target time.Duration, cum, prev stats.Histogram) SLOVerdict {
	win := cum.Sub(prev)
	v := SLOVerdict{
		Target: target,
		P99:    win.Percentile(99),
		Faults: win.Count(),
	}
	if target <= 0 {
		return v
	}
	v.Evaluated = true
	v.Violated = v.Faults > 0 && v.P99 > target
	return v
}
