// Package market is the Memtrade-style producer/consumer memory marketplace
// that replaces the single greedy reallocator for multi-tenant hosts
// (Maruf et al., "Memtrade"; Maruf & Chowdhury disaggregation survey). Each
// epoch, tenants whose ghost-LRU miss-ratio curve prices extra DRAM above
// zero *bid* for slabs; tenants whose curve says a slab costs them little
// *ask* to supply one. A trade clears when the bid/ask spread covers the
// hysteresis, and every cleared trade is recorded as a Lease — donor, taker,
// pages, grant epoch — so the transfer stays attributable and reversible.
//
// SLOs make the market safe where the greedy arbiter is not: a tenant with a
// p99 fault-latency target (TenantPolicy.SLO at the host layer) is compared
// against the window p99 observed from its merged per-worker trace
// histograms. A violating tenant is (a) excluded from the supply side, (b)
// given bidding priority, and (c) made whole — every lease it *donated* is
// clawed back next epoch, pages flowing from the lease holder back to the
// donor. This is Memtrade's harvester-protection loop: harvested memory is
// only ever a loan, and the loan is recalled the moment the harvester's own
// tail latency shows it was over-harvested.
//
// Like the arbiter, Plan is a deterministic pure function of the view set
// plus the market's own lease book — no clocks, no randomness, iteration in
// ID order throughout — so market plans inherit the worker-count and
// interleaving invariance the oracles prove for the inputs (the shardtest
// MarketPlanDigest asserts exactly this).
package market

import (
	"fmt"
	"hash/fnv"
	"sort"

	"fluidmem/internal/arbiter"
)

// Config parametrises the marketplace.
type Config struct {
	// FloorPages is the default minimum share for tenants whose view carries
	// no per-tenant floor. Must be >= 1.
	FloorPages int
	// CeilPages is the default share ceiling for tenants whose view carries
	// no per-tenant ceiling; 0 means no ceiling.
	CeilPages int
	// Step is the slab size in pages per cleared trade (and per claw-back
	// transfer). Must be >= 1.
	Step int
	// MaxLeases bounds the trades cleared per epoch (0 = one). Claw-backs
	// are NOT capped: recalling a violating tenant's loans is an SLO action,
	// not a trade.
	MaxLeases int
	// Hysteresis is the minimum bid-ask spread (ghost hits over the window)
	// before a trade clears for a non-violating bidder. Bidders in SLO
	// violation clear on any positive spread — the market leans toward the
	// tenant that is provably hurting.
	Hysteresis uint64
}

// DefaultConfig mirrors arbiter.DefaultPolicy's shape for a host with
// totalPages split across vms tenants, with a lease cap matching the
// arbiter's move cap so the two planners are comparable per epoch.
func DefaultConfig(totalPages, vms int) Config {
	p := arbiter.DefaultPolicy(totalPages, vms)
	return Config{
		FloorPages: p.FloorPages,
		Step:       p.Step,
		MaxLeases:  p.MaxMoves,
		Hysteresis: p.Hysteresis,
	}
}

// Validate rejects unusable configs loudly.
func (c Config) Validate() error {
	if c.FloorPages < 1 {
		return fmt.Errorf("market: floor %d < 1 page", c.FloorPages)
	}
	if c.Step < 1 {
		return fmt.Errorf("market: step %d < 1 page", c.Step)
	}
	if c.CeilPages != 0 && c.CeilPages < c.FloorPages {
		return fmt.Errorf("market: ceiling %d below floor %d", c.CeilPages, c.FloorPages)
	}
	return nil
}

// Lease is one live grant: Pages currently on loan from From to To. Grants
// cleared in the same epoch between the same pair aggregate into one lease.
type Lease struct {
	ID       uint64 // allocation order; stable sort key for determinism
	From, To string
	Pages    int
	// Epoch is the market epoch (1-based Plan count) the lease was granted
	// in; Price the bid-ask spread it cleared at.
	Epoch uint64
	Price uint64
}

// Stats accumulates market activity across epochs for the host's Stats
// surface and the bench reports.
type Stats struct {
	// Epochs counts Plan invocations. SLOEnforcedEpochs counts epochs in
	// which at least one view carried an SLO target — the quantity bench-json
	// refuses to ratchet at zero (a market run that never evaluated an SLO is
	// a silent no-op, not a baseline).
	Epochs            uint64
	SLOEnforcedEpochs uint64
	// SLOViolations counts tenant-epochs observed above target.
	SLOViolations uint64
	// Leases / LeasedPages count cleared trades and their page flow;
	// Clawbacks / ClawedPages the recall transfers reversing them.
	Leases      uint64
	LeasedPages uint64
	Clawbacks   uint64
	ClawedPages uint64
	// PredictedSavings sums the bid-ask spread of every cleared trade.
	PredictedSavings uint64
}

// Market is a stateful arbiter.Planner: the lease book survives across
// epochs so claw-back can reverse past grants. Not safe for concurrent use,
// matching the single-threaded control plane.
type Market struct {
	cfg    Config
	leases []Lease // always sorted by ID
	nextID uint64
	stats  Stats
}

// New returns a market with an empty lease book.
func New(cfg Config) (*Market, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Market{cfg: cfg}, nil
}

// Stats returns the running totals.
func (m *Market) Stats() Stats { return m.stats }

// Leases returns a copy of the live lease book in ID order.
func (m *Market) Leases() []Lease {
	return append([]Lease(nil), m.leases...)
}

// floorFor / ceilFor resolve the per-tenant bound, falling back to the
// config default.
func (m *Market) floorFor(v arbiter.VMView) int {
	if v.FloorPages > 0 {
		return v.FloorPages
	}
	return m.cfg.FloorPages
}

func (m *Market) ceilFor(v arbiter.VMView) int {
	if v.CeilPages > 0 {
		return v.CeilPages
	}
	return m.cfg.CeilPages
}

// violating reports whether the view's window p99 exceeds its SLO target.
func violating(v arbiter.VMView) bool {
	return v.SLOTarget > 0 && v.WindowP99 > v.SLOTarget
}

// Plan implements arbiter.Planner: one epoch's market clearing. Views are
// canonicalised by ID, every pass iterates in deterministic order, and the
// total share is conserved exactly — each grant and each claw-back moves
// pages between exactly two tenants.
func (m *Market) Plan(views []arbiter.VMView) (arbiter.Plan, error) {
	if err := m.cfg.Validate(); err != nil {
		return arbiter.Plan{}, err
	}
	vs := append([]arbiter.VMView(nil), views...)
	sort.Slice(vs, func(i, j int) bool { return vs[i].ID < vs[j].ID })
	shares := make(map[string]int, len(vs))
	byID := make(map[string]arbiter.VMView, len(vs))
	for _, v := range vs {
		if _, dup := shares[v.ID]; dup {
			return arbiter.Plan{}, fmt.Errorf("market: duplicate tenant ID %q", v.ID)
		}
		if v.SharePages < 1 {
			return arbiter.Plan{}, fmt.Errorf("market: tenant %q share %d < 1", v.ID, v.SharePages)
		}
		shares[v.ID] = v.SharePages
		byID[v.ID] = v
	}
	m.stats.Epochs++
	plan := arbiter.Plan{Shares: shares}

	bad := map[string]bool{}
	enforced := false
	for _, v := range vs {
		if v.SLOTarget > 0 {
			enforced = true
		}
		if violating(v) {
			bad[v.ID] = true
			m.stats.SLOViolations++
		}
	}
	if enforced {
		m.stats.SLOEnforcedEpochs++
	}

	// Claw-back pass: every lease whose DONOR is violating is recalled —
	// pages flow from the lease holder back to the donor, bounded only by
	// the holder's floor (a partial recall shrinks the lease and leaves the
	// remainder on the book). Leases whose endpoints left the view set are
	// dropped: the departed tenant's pages were already redistributed by the
	// host, so there is nothing left to recall.
	kept := m.leases[:0]
	for _, l := range m.leases {
		if _, okF := shares[l.From]; !okF {
			continue
		}
		if _, okT := shares[l.To]; !okT {
			continue
		}
		if !bad[l.From] {
			kept = append(kept, l)
			continue
		}
		back := l.Pages
		if room := shares[l.To] - m.floorFor(byID[l.To]); back > room {
			back = room
		}
		if back <= 0 {
			kept = append(kept, l)
			continue
		}
		shares[l.To] -= back
		shares[l.From] += back
		plan.Moves = append(plan.Moves, arbiter.Move{From: l.To, To: l.From, Pages: back})
		m.stats.Clawbacks++
		m.stats.ClawedPages += uint64(back)
		if l.Pages > back {
			l.Pages -= back
			kept = append(kept, l)
		}
	}
	m.leases = kept

	if len(vs) >= 2 {
		m.trade(vs, shares, bad, &plan)
	}
	return plan, nil
}

// trade runs the bid/ask clearing loop, mutating shares and appending moves
// and leases.
func (m *Market) trade(vs []arbiter.VMView, shares map[string]int, bad map[string]bool, plan *arbiter.Plan) {
	// Leases granted this epoch, keyed donor\x00taker, for aggregation
	// (indices into m.leases — appends may reallocate the backing array).
	granted := map[string]int{}
	maxLeases := m.cfg.MaxLeases
	if maxLeases < 1 {
		maxLeases = 1
	}
	for n := 0; n < maxLeases; n++ {
		// Re-price every tenant at its CURRENT tentative share each round,
		// exactly like the greedy arbiter: a bidder already granted slabs
		// this epoch prices its next slab at the deeper curve offset.
		taker, donor := -1, -1
		var bid, ask uint64
		for i, v := range vs {
			extra := shares[v.ID] - v.SharePages
			if extra < 0 {
				extra = 0
			}
			b := arbiter.SlabRate(v.Curve, extra, m.cfg.Step)
			ceil := m.ceilFor(v)
			canBid := b > 0 && (ceil == 0 || shares[v.ID]+m.cfg.Step <= ceil)
			// Violating tenants never supply — harvesting from a tenant
			// already missing its tail target is exactly the failure mode
			// the SLO exists to prevent.
			canAsk := !bad[v.ID] && shares[v.ID]-m.cfg.Step >= m.floorFor(v)
			a := arbiter.SlabRate(v.Curve, 0, m.cfg.Step)
			// Bidders rank: violating first, then highest bid, ties to the
			// lowest ID (strict > over the ID-sorted slice).
			if canBid && (taker == -1 ||
				(bad[v.ID] && !bad[vs[taker].ID]) ||
				(bad[v.ID] == bad[vs[taker].ID] && b > bid)) {
				taker, bid = i, b
			}
			if canAsk && (donor == -1 || a < ask) {
				donor, ask = i, a
			}
		}
		if taker == -1 || donor == -1 || taker == donor {
			break
		}
		if bid <= ask {
			break
		}
		spread := bid - ask
		if !bad[vs[taker].ID] && spread < m.cfg.Hysteresis {
			break
		}
		from, to := vs[donor].ID, vs[taker].ID
		shares[to] += m.cfg.Step
		shares[from] -= m.cfg.Step
		plan.Moves = append(plan.Moves, arbiter.Move{
			From: from, To: to, Pages: m.cfg.Step, PredictedSavings: spread,
		})
		m.stats.LeasedPages += uint64(m.cfg.Step)
		m.stats.PredictedSavings += spread
		key := from + "\x00" + to
		if i, ok := granted[key]; ok {
			m.leases[i].Pages += m.cfg.Step
			continue
		}
		m.nextID++
		m.stats.Leases++
		m.leases = append(m.leases, Lease{
			ID: m.nextID, From: from, To: to,
			Pages: m.cfg.Step, Epoch: m.stats.Epochs, Price: spread,
		})
		granted[key] = len(m.leases) - 1
	}
}

// Digest folds the live lease book and cumulative counters into one FNV-1a
// hash — the quantity the shardtest oracle asserts identical across worker
// counts and interleavings.
func (m *Market) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(x uint64) {
		for b := 0; b < 8; b++ {
			buf[b] = byte(x >> (8 * b))
		}
		h.Write(buf[:])
	}
	for _, l := range m.leases {
		w64(l.ID)
		h.Write([]byte(l.From))
		h.Write([]byte{0})
		h.Write([]byte(l.To))
		h.Write([]byte{0})
		w64(uint64(l.Pages))
		w64(l.Epoch)
		w64(l.Price)
	}
	s := m.stats
	for _, x := range []uint64{s.Epochs, s.SLOEnforcedEpochs, s.SLOViolations,
		s.Leases, s.LeasedPages, s.Clawbacks, s.ClawedPages, s.PredictedSavings} {
		w64(x)
	}
	return h.Sum64()
}
