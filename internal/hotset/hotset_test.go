package hotset

import "testing"

func mustNew(t *testing.T, p Params) *Tracker {
	t.Helper()
	tr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	cases := []Params{
		{GhostCapacity: 0, BucketPages: 1},
		{GhostCapacity: -4, BucketPages: 1},
		{GhostCapacity: 8, BucketPages: 0},
		{GhostCapacity: 8, BucketPages: -1},
	}
	for _, p := range cases {
		if _, err := New(p); err == nil {
			t.Errorf("New(%+v) accepted an unusable size", p)
		}
	}
	if _, err := New(Params{GhostCapacity: 1, BucketPages: 1}); err != nil {
		t.Fatalf("minimal params rejected: %v", err)
	}
}

func TestNilTrackerIsInert(t *testing.T) {
	var tr *Tracker
	tr.Fault(0x1000)
	tr.Evict(0x1000)
	tr.Remove(0x1000)
	if tr.Len() != 0 || tr.Contains(0x1000) || tr.Digest() != 0 {
		t.Fatal("nil tracker not inert")
	}
	if s := tr.Snapshot(); s.Faults != 0 || s.GhostHits != 0 {
		t.Fatal("nil tracker snapshot not zero")
	}
}

// A fault on the page evicted most recently is a depth-1 ghost hit; deeper
// evictions land in deeper buckets; a hit removes the page from the list.
func TestGhostHitDepths(t *testing.T) {
	tr := mustNew(t, Params{GhostCapacity: 8, BucketPages: 2})
	for i := 0; i < 4; i++ {
		tr.Evict(uint64(0x1000 * (i + 1)))
	}
	// Most recent eviction was 0x4000 (depth 1, bucket 0); 0x1000 is the
	// oldest (depth 4, bucket 1).
	tr.Fault(0x4000)
	tr.Fault(0x1000) // now depth 3 after the first hit removed 0x4000
	s := tr.Snapshot()
	if s.Faults != 2 || s.GhostHits != 2 {
		t.Fatalf("counters: %+v", s)
	}
	if s.Curve.Hits[0] != 1 || s.Curve.Hits[1] != 1 {
		t.Fatalf("depth histogram: %v", s.Curve.Hits)
	}
	if tr.Contains(0x4000) || tr.Contains(0x1000) {
		t.Fatal("ghost hit did not remove the page")
	}
	if tr.Len() != 2 {
		t.Fatalf("ghost len = %d, want 2", tr.Len())
	}
}

// The shadow list is bounded: the oldest ghost ages off, and a fault on an
// aged-off page is a cold miss, not a hit.
func TestGhostCapacityBound(t *testing.T) {
	tr := mustNew(t, Params{GhostCapacity: 3, BucketPages: 1})
	for i := 0; i < 5; i++ {
		tr.Evict(uint64(0x1000 * (i + 1)))
	}
	if tr.Len() != 3 {
		t.Fatalf("ghost len = %d, want 3", tr.Len())
	}
	if tr.Contains(0x1000) || tr.Contains(0x2000) {
		t.Fatal("oldest ghosts did not age off")
	}
	tr.Fault(0x1000)
	s := tr.Snapshot()
	if s.GhostHits != 0 {
		t.Fatal("aged-off page counted as a ghost hit")
	}
	if s.Faults != 1 {
		t.Fatalf("faults = %d, want 1", s.Faults)
	}
}

// Remove (balloon discard, teardown) silently forgets the page: no hit, no
// fault, and a later fault on the address is cold.
func TestRemoveForgetsWithoutSkew(t *testing.T) {
	tr := mustNew(t, Params{GhostCapacity: 8, BucketPages: 1})
	tr.Evict(0x1000)
	tr.Remove(0x1000)
	if tr.Contains(0x1000) || tr.Len() != 0 {
		t.Fatal("remove left the page shadowed")
	}
	tr.Fault(0x1000)
	if s := tr.Snapshot(); s.GhostHits != 0 {
		t.Fatal("discarded page registered as a re-reference")
	}
	// Removing an unknown page is a no-op.
	tr.Remove(0x9000)
}

// Deep hits beyond the last bucket clamp into it rather than vanishing.
func TestDeepHitClampsToLastBucket(t *testing.T) {
	tr := mustNew(t, Params{GhostCapacity: 5, BucketPages: 2})
	for i := 0; i < 5; i++ {
		tr.Evict(uint64(0x1000 * (i + 1)))
	}
	tr.Fault(0x1000) // depth 5; buckets cover depths 1-2, 3-4, 5-6
	s := tr.Snapshot()
	if len(s.Curve.Hits) != 3 || s.Curve.Hits[2] != 1 {
		t.Fatalf("deep hit not in last bucket: %v", s.Curve.Hits)
	}
}

func TestCurveHitsWithinAndSub(t *testing.T) {
	c := Curve{BucketPages: 4, Hits: []uint64{10, 5, 1}}
	if got := c.HitsWithin(4); got != 10 {
		t.Fatalf("HitsWithin(4) = %d, want 10", got)
	}
	if got := c.HitsWithin(7); got != 10 {
		t.Fatalf("HitsWithin(7) must exclude the partial bucket, got %d", got)
	}
	if got := c.HitsWithin(8); got != 15 {
		t.Fatalf("HitsWithin(8) = %d, want 15", got)
	}
	if got := c.HitsWithin(100); got != 16 {
		t.Fatalf("HitsWithin(100) = %d, want 16", got)
	}
	prev := Curve{BucketPages: 4, Hits: []uint64{4, 5, 0}}
	d := c.Sub(prev)
	if d.Hits[0] != 6 || d.Hits[1] != 0 || d.Hits[2] != 1 {
		t.Fatalf("Sub: %v", d.Hits)
	}
	if c.Hits[0] != 10 {
		t.Fatal("Sub mutated the receiver")
	}
}

func TestWSSEstimate(t *testing.T) {
	// No ghost hits: the working set fits in capacity.
	s := Snapshot{Curve: Curve{BucketPages: 4, Hits: []uint64{0, 0}}}
	if got := s.WSSEstimate(64, 90); got != 64 {
		t.Fatalf("flat curve WSS = %d, want 64", got)
	}
	// 90% of hits inside the first bucket: WSS = capacity + 1 bucket.
	s = Snapshot{Curve: Curve{BucketPages: 4, Hits: []uint64{9, 1}}}
	if got := s.WSSEstimate(64, 90); got != 68 {
		t.Fatalf("steep curve WSS = %d, want 68", got)
	}
	// Tail-heavy: needs both buckets.
	s = Snapshot{Curve: Curve{BucketPages: 4, Hits: []uint64{1, 9}}}
	if got := s.WSSEstimate(64, 90); got != 72 {
		t.Fatalf("tail curve WSS = %d, want 72", got)
	}
}

// The digest must see counters, histogram, and shadow-list order.
func TestDigestSensitivity(t *testing.T) {
	build := func(order []uint64) *Tracker {
		tr := mustNew(t, Params{GhostCapacity: 8, BucketPages: 1})
		for _, a := range order {
			tr.Evict(a)
		}
		return tr
	}
	a := build([]uint64{0x1000, 0x2000, 0x3000})
	b := build([]uint64{0x3000, 0x2000, 0x1000})
	if a.Digest() == b.Digest() {
		t.Fatal("digest blind to shadow-list order")
	}
	c := build([]uint64{0x1000, 0x2000, 0x3000})
	if a.Digest() != c.Digest() {
		t.Fatal("identical histories digest differently")
	}
	c.Fault(0x9000) // cold miss: counters change, list does not
	if a.Digest() == c.Digest() {
		t.Fatal("digest blind to fault counter")
	}
}
