// Package hotset estimates a machine's working set beyond its resident
// budget with a deterministic ghost LRU — the shadow-list technique the
// memory-disaggregation literature (Memtrade, and the Maruf & Chowdhury
// survey) uses to drive cross-tenant memory reallocation.
//
// The resident LRU list in internal/core only knows what IS local; it cannot
// say how much a VM would gain from more local DRAM. The ghost list answers
// that: every page evicted from the resident list drops its key into a
// bounded shadow list ordered by eviction recency. When a later fault hits
// the shadow list at depth d, that fault would have been a resident hit had
// the LRU been d pages larger — so the histogram of ghost-hit depths IS the
// miss-ratio curve beyond the current capacity, and its tail locates the
// working-set size.
//
// Two properties are load-bearing and must survive any change here, exactly
// as for internal/trace:
//
//  1. Tracking is pure observation. A Tracker draws no randomness and
//     charges no virtual time, so a run's simulated results are bit-for-bit
//     identical with tracking on, off, or absent (the nil *Tracker is a
//     valid, inert tracker — every method is nil-safe).
//  2. Tracker state is a function of the logical fault/evict sequence only.
//     The monitor's worker parallelism changes WHEN work happens in virtual
//     time, never WHAT work happens (the shardtest oracle proves the
//     sequence invariant), so the same seed yields the same ghost list, the
//     same depth histogram, and the same WSS estimate at any worker count —
//     which the oracle's hotset digest asserts.
package hotset

import (
	"container/list"
	"fmt"
	"hash/fnv"
)

// Params sizes a Tracker.
type Params struct {
	// GhostCapacity bounds the shadow list in pages: how far beyond the
	// resident capacity the miss-ratio curve can see. Must be >= 1.
	GhostCapacity int
	// BucketPages is the depth-histogram bucket width in pages. Must be
	// >= 1. Smaller buckets give the arbiter a finer-grained curve at the
	// cost of more histogram cells.
	BucketPages int
}

// DefaultParams returns a tracker sized for a monitor with the given
// resident LRU capacity: the ghost list sees one full capacity's worth of
// evicted pages beyond the resident list (enough for the arbiter to price a
// doubling), in 16 curve buckets.
func DefaultParams(lruCapacity int) Params {
	if lruCapacity < 1 {
		lruCapacity = 1
	}
	bucket := lruCapacity / 16
	if bucket < 1 {
		bucket = 1
	}
	return Params{GhostCapacity: lruCapacity, BucketPages: bucket}
}

// ghostEntry is one evicted page key in the shadow list.
type ghostEntry struct {
	addr uint64
}

// Tracker is the ghost-LRU working-set estimator. It is not safe for
// concurrent use, matching the single-threaded simulator. The nil Tracker is
// valid and records nothing, so the monitor's hooks never need an enabled
// check.
type Tracker struct {
	params Params
	// ghost is the shadow list: front = most recently evicted. index maps a
	// page address to its element.
	ghost *list.List
	index map[uint64]*list.Element

	faults    uint64
	ghostHits uint64
	evictions uint64
	// hits[i] counts ghost hits at depths (i*BucketPages, (i+1)*BucketPages].
	hits []uint64
}

// New builds a Tracker, rejecting non-positive sizes loudly — a ghost list
// that cannot hold a page or a bucket that cannot span one is always a
// configuration bug.
func New(p Params) (*Tracker, error) {
	if p.GhostCapacity < 1 {
		return nil, fmt.Errorf("hotset: ghost capacity %d < 1", p.GhostCapacity)
	}
	if p.BucketPages < 1 {
		return nil, fmt.Errorf("hotset: bucket width %d < 1 page", p.BucketPages)
	}
	buckets := (p.GhostCapacity + p.BucketPages - 1) / p.BucketPages
	return &Tracker{
		params: p,
		ghost:  list.New(),
		index:  make(map[uint64]*list.Element),
		hits:   make([]uint64, buckets),
	}, nil
}

// Params reports the tracker's configuration (zero value for nil).
func (t *Tracker) Params() Params {
	if t == nil {
		return Params{}
	}
	return t.params
}

// Fault observes one monitor fault (a miss in the resident list). If the
// page sits in the ghost list, its 1-based depth from the most recent
// eviction feeds the miss-ratio curve and the page leaves the shadow list
// (it is resident again). Cold faults (never evicted, or evicted long enough
// ago to have aged off the bounded list) count toward the fault total only.
func (t *Tracker) Fault(addr uint64) {
	if t == nil {
		return
	}
	t.faults++
	elem, ok := t.index[addr]
	if !ok {
		return
	}
	depth := 1
	for e := t.ghost.Front(); e != nil && e != elem; e = e.Next() {
		depth++
	}
	t.ghostHits++
	bucket := (depth - 1) / t.params.BucketPages
	if bucket >= len(t.hits) {
		bucket = len(t.hits) - 1
	}
	t.hits[bucket]++
	t.ghost.Remove(elem)
	delete(t.index, addr)
}

// Evict observes one eviction from the resident list: the page key enters
// the shadow list at the most-recent position, displacing the oldest ghost
// entry if the list is full. Re-evicting a page already shadowed (possible
// only if the monitor failed to report the intervening fault) refreshes its
// position.
func (t *Tracker) Evict(addr uint64) {
	if t == nil {
		return
	}
	t.evictions++
	if elem, ok := t.index[addr]; ok {
		t.ghost.Remove(elem)
		delete(t.index, addr)
	}
	t.index[addr] = t.ghost.PushFront(ghostEntry{addr: addr})
	for t.ghost.Len() > t.params.GhostCapacity {
		oldest := t.ghost.Back()
		t.ghost.Remove(oldest)
		delete(t.index, oldest.Value.(ghostEntry).addr)
	}
}

// Remove forgets a page entirely (balloon discard, VM teardown): the page's
// contents are gone, so a later fault on the same address is a fresh page,
// not a re-reference — it must not register as a ghost hit and skew the
// working-set estimate.
func (t *Tracker) Remove(addr uint64) {
	if t == nil {
		return
	}
	if elem, ok := t.index[addr]; ok {
		t.ghost.Remove(elem)
		delete(t.index, addr)
	}
}

// Contains reports shadow-list membership (tests, introspection).
func (t *Tracker) Contains(addr uint64) bool {
	if t == nil {
		return false
	}
	_, ok := t.index[addr]
	return ok
}

// Len reports the shadow-list population.
func (t *Tracker) Len() int {
	if t == nil {
		return 0
	}
	return t.ghost.Len()
}

// Curve is the observed miss-ratio curve beyond the resident capacity:
// Hits[i] counts faults that would have been resident hits with between
// i*BucketPages (exclusive) and (i+1)*BucketPages (inclusive) extra pages of
// local DRAM.
type Curve struct {
	BucketPages int
	Hits        []uint64
}

// HitsWithin returns the number of observed faults that at most `pages`
// extra pages of capacity would have absorbed — the predicted fault savings
// of a grant of that size. Partial buckets are excluded (conservative).
func (c Curve) HitsWithin(pages int) uint64 {
	if c.BucketPages <= 0 {
		return 0
	}
	full := pages / c.BucketPages
	var sum uint64
	for i := 0; i < full && i < len(c.Hits); i++ {
		sum += c.Hits[i]
	}
	return sum
}

// Total returns all ghost hits in the curve.
func (c Curve) Total() uint64 {
	var sum uint64
	for _, h := range c.Hits {
		sum += h
	}
	return sum
}

// Sub returns the bucket-wise difference c - prev: the curve of the window
// between two cumulative snapshots. Counters are monotone, so each cell of
// prev is <= the matching cell of c.
func (c Curve) Sub(prev Curve) Curve {
	out := Curve{BucketPages: c.BucketPages, Hits: append([]uint64(nil), c.Hits...)}
	for i := range prev.Hits {
		if i < len(out.Hits) {
			out.Hits[i] -= prev.Hits[i]
		}
	}
	return out
}

// Snapshot is a point-in-time copy of the tracker's cumulative counters.
type Snapshot struct {
	// Faults counts every observed miss; GhostHits the subset that hit the
	// shadow list; Evictions the pages pushed into it.
	Faults    uint64
	GhostHits uint64
	Evictions uint64
	// GhostLen is the current shadow-list population.
	GhostLen int
	// Curve is the cumulative miss-ratio curve beyond resident capacity.
	Curve Curve
}

// Snapshot copies the tracker's counters (zero value for nil).
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	return Snapshot{
		Faults:    t.faults,
		GhostHits: t.ghostHits,
		Evictions: t.evictions,
		GhostLen:  t.ghost.Len(),
		Curve:     Curve{BucketPages: t.params.BucketPages, Hits: append([]uint64(nil), t.hits...)},
	}
}

// WSSEstimate returns the working-set-size estimate in pages for a machine
// whose resident budget is `capacity`: the capacity plus the smallest ghost
// depth (rounded up to a bucket boundary) that covers `pct` percent of the
// observed ghost hits. With no ghost hits the working set fits in capacity
// and the estimate is the capacity itself. Pure integer arithmetic — no
// floats, so the estimate is bit-stable across platforms.
func (s Snapshot) WSSEstimate(capacity, pct int) int {
	total := s.Curve.Total()
	if total == 0 {
		return capacity
	}
	need := (total*uint64(pct) + 99) / 100
	var cum uint64
	for i, h := range s.Curve.Hits {
		cum += h
		if cum >= need {
			return capacity + (i+1)*s.Curve.BucketPages
		}
	}
	return capacity + len(s.Curve.Hits)*s.Curve.BucketPages
}

// Digest folds everything logically observable — the counters, the depth
// histogram, and the full ordered shadow-list contents — through FNV-1a.
// This is the quantity the shardtest oracle asserts identical across worker
// counts.
func (t *Tracker) Digest() uint64 {
	if t == nil {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for b := 0; b < 8; b++ {
			buf[b] = byte(v >> (8 * b))
		}
		h.Write(buf[:])
	}
	word(t.faults)
	word(t.ghostHits)
	word(t.evictions)
	word(uint64(len(t.hits)))
	for _, hit := range t.hits {
		word(hit)
	}
	for e := t.ghost.Front(); e != nil; e = e.Next() {
		word(e.Value.(ghostEntry).addr)
	}
	return h.Sum64()
}
