package hotset

import (
	"encoding/binary"
	"testing"
)

// flatModel is the obviously-correct reference: a plain slice ordered by
// eviction recency (index 0 = most recent) plus plain counters. O(n) per op,
// no container/list, no index map — nothing shared with the Tracker
// implementation beyond the spec.
type flatModel struct {
	params    Params
	order     []uint64
	faults    uint64
	ghostHits uint64
	evictions uint64
	hits      []uint64
}

func newFlatModel(p Params) *flatModel {
	buckets := (p.GhostCapacity + p.BucketPages - 1) / p.BucketPages
	return &flatModel{params: p, hits: make([]uint64, buckets)}
}

func (m *flatModel) find(addr uint64) int {
	for i, a := range m.order {
		if a == addr {
			return i
		}
	}
	return -1
}

func (m *flatModel) fault(addr uint64) {
	m.faults++
	i := m.find(addr)
	if i < 0 {
		return
	}
	m.ghostHits++
	bucket := i / m.params.BucketPages // i is 0-based depth-1
	if bucket >= len(m.hits) {
		bucket = len(m.hits) - 1
	}
	m.hits[bucket]++
	m.order = append(m.order[:i], m.order[i+1:]...)
}

func (m *flatModel) evict(addr uint64) {
	m.evictions++
	if i := m.find(addr); i >= 0 {
		m.order = append(m.order[:i], m.order[i+1:]...)
	}
	m.order = append([]uint64{addr}, m.order...)
	if len(m.order) > m.params.GhostCapacity {
		m.order = m.order[:m.params.GhostCapacity]
	}
}

func (m *flatModel) remove(addr uint64) {
	if i := m.find(addr); i >= 0 {
		m.order = append(m.order[:i], m.order[i+1:]...)
	}
}

func equalStates(t *testing.T, tr *Tracker, m *flatModel) {
	t.Helper()
	s := tr.Snapshot()
	if s.Faults != m.faults || s.GhostHits != m.ghostHits || s.Evictions != m.evictions {
		t.Fatalf("counters diverged: tracker %+v, model faults=%d hits=%d evictions=%d",
			s, m.faults, m.ghostHits, m.evictions)
	}
	if s.GhostLen != len(m.order) {
		t.Fatalf("ghost length diverged: tracker %d, model %d", s.GhostLen, len(m.order))
	}
	for i, h := range s.Curve.Hits {
		if h != m.hits[i] {
			t.Fatalf("histogram bucket %d diverged: tracker %v, model %v", i, s.Curve.Hits, m.hits)
		}
	}
	for _, a := range m.order {
		if !tr.Contains(a) {
			t.Fatalf("tracker lost shadowed page %#x", a)
		}
	}
}

// FuzzGhostLRU drives the Tracker and the flat reference model with the same
// fault/evict/remove stream decoded from fuzz bytes and requires identical
// observable state after every operation. Each 3-byte group is one op:
// opcode byte (mod 3) + 2 address bytes (small space to force collisions,
// ghost hits, and capacity churn).
func FuzzGhostLRU(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 0, 2, 0, 0, 1, 0, 0, 2, 2, 0, 1})
	f.Add([]byte{1, 0, 1, 1, 0, 1, 0, 0, 1})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		// Derive small sizes from the stream head so capacity-boundary and
		// bucket-clamp behaviour get fuzzed too.
		p := Params{
			GhostCapacity: 1 + int(data[0]%13),
			BucketPages:   1 + int(data[1]%5),
		}
		data = data[2:]
		tr, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		model := newFlatModel(p)
		for len(data) >= 3 {
			op := data[0] % 3
			addr := uint64(binary.LittleEndian.Uint16(data[1:3])%64) << 12
			data = data[3:]
			switch op {
			case 0:
				tr.Fault(addr)
				model.fault(addr)
			case 1:
				tr.Evict(addr)
				model.evict(addr)
			case 2:
				tr.Remove(addr)
				model.remove(addr)
			}
			equalStates(t, tr, model)
		}
	})
}
