// Package uffd simulates the Linux userfaultfd mechanism FluidMem is built
// on (§III–V): memory regions registered for user-space fault handling, a
// file-descriptor-like event queue, and the UFFDIO_ZEROPAGE / UFFDIO_COPY /
// UFFD_REMAP operations with service times calibrated to the paper's Table I
// microbenchmarks (including UFFD_REMAP's TLB-shootdown tail).
//
// The package owns the simulated page tables: a registered region's pages are
// missing until the monitor maps them, and every access to a missing page
// raises a fault event, exactly like first-touch behaviour under userfaultfd.
package uffd

import (
	"errors"
	"fmt"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/trace"
)

// PageSize is the page granularity of fault handling.
const PageSize = 4096

// Errors returned by page operations.
var (
	// ErrNotRegistered reports an operation on an address outside any region.
	ErrNotRegistered = errors.New("uffd: address not in a registered region")
	// ErrAlreadyMapped reports ZeroPage/Copy on an already-present page
	// (EEXIST from the real ioctl).
	ErrAlreadyMapped = errors.New("uffd: page already mapped")
	// ErrNotMapped reports Remap of a missing page.
	ErrNotMapped = errors.New("uffd: page not mapped")
)

// PageState describes one page in a registered region.
type PageState int

// Page states.
const (
	// PageMissing pages have no mapping; access faults to the monitor.
	PageMissing PageState = iota + 1
	// PageZeroCOW pages map the kernel's shared zero page copy-on-write:
	// reads return zeroes, the first write takes a cheap kernel-internal
	// fault that allocates a private page (no userfaultfd event).
	PageZeroCOW
	// PagePresent pages have a private frame with data.
	PagePresent
)

// Params holds the operation service times (Table I calibration).
type Params struct {
	// FaultTrap is the kernel cost of trapping the access, running the
	// userfaultfd handling code, and queueing the event to the monitor.
	FaultTrap clock.LatencyModel
	// ZeroPage is UFFDIO_ZEROPAGE: map the shared zero page (2.61 µs).
	ZeroPage clock.LatencyModel
	// Copy is UFFDIO_COPY: allocate a frame and copy data in (3.89 µs).
	Copy clock.LatencyModel
	// Remap is the proposed UFFD_REMAP: move a page out by page-table
	// manipulation. Average 1.65 µs but with an 18 µs p99 tail from the
	// interprocessor TLB-shootdown interrupt.
	Remap clock.LatencyModel
	// RemapInterleaved is the remap cost observed when the call runs while
	// the vCPU is already suspended (§V-B: "returned after only 2 µs").
	RemapInterleaved clock.LatencyModel
	// COWBreak is the kernel-internal minor fault that converts a zero-COW
	// page into a private page on first write.
	COWBreak clock.LatencyModel
	// Wake is the cost of waking the blocked vCPU thread.
	Wake clock.LatencyModel
	// WriteProtect is UFFDIO_WRITEPROTECT: mark a freshly installed page
	// read-only so the first guest write after install is observed — the
	// dirty-tracking hook the clean-page-drop eviction optimisation needs.
	WriteProtect clock.LatencyModel
	// WPFault is the write-protect fault taken on the first write to a
	// protected page: the protection is cleared, the page is recorded dirty,
	// and the write retries. Resolved kernel-side like COWBreak, with no
	// monitor round trip.
	WPFault clock.LatencyModel
}

// DefaultParams returns Table-I-calibrated service times.
func DefaultParams() Params {
	return Params{
		FaultTrap:        clock.LatencyModel{Base: 5200 * time.Nanosecond, Jitter: 600 * time.Nanosecond},
		ZeroPage:         clock.LatencyModel{Base: 2610 * time.Nanosecond, Jitter: 440 * time.Nanosecond, TailProb: 0.01, TailExtra: 900 * time.Nanosecond},
		Copy:             clock.LatencyModel{Base: 3890 * time.Nanosecond, Jitter: 770 * time.Nanosecond, TailProb: 0.01, TailExtra: 1540 * time.Nanosecond},
		Remap:            clock.LatencyModel{Base: 1300 * time.Nanosecond, Jitter: 400 * time.Nanosecond, TailProb: 0.022, TailExtra: 17 * time.Microsecond},
		RemapInterleaved: clock.LatencyModel{Base: 2 * time.Microsecond, Jitter: 300 * time.Nanosecond},
		COWBreak:         clock.LatencyModel{Base: 1200 * time.Nanosecond, Jitter: 200 * time.Nanosecond},
		Wake:             clock.LatencyModel{Base: 900 * time.Nanosecond, Jitter: 150 * time.Nanosecond},
		WriteProtect:     clock.LatencyModel{Base: 1790 * time.Nanosecond, Jitter: 330 * time.Nanosecond},
		WPFault:          clock.LatencyModel{Base: 2340 * time.Nanosecond, Jitter: 410 * time.Nanosecond},
	}
}

// Event is one page-fault notification read from the descriptor. The monitor
// receives the faulting address and the owning process (§V-A).
type Event struct {
	// Addr is the page-aligned faulting address.
	Addr uint64
	// PID identifies the faulting process (the VM's QEMU process).
	PID int
	// Write reports whether the access was a write.
	Write bool
	// Raised is the virtual time the fault occurred.
	Raised time.Duration
}

// page is a frame in a region.
type page struct {
	state PageState
	data  []byte
	// wp marks the page write-protected: it was installed from a durable
	// store copy and has not been written since. The first write clears it
	// via a kernel-internal WP fault.
	wp bool
}

// Region is one registered memory range belonging to one process.
type Region struct {
	Start  uint64
	Length uint64
	PID    int

	fd    *FD
	pages map[uint64]*page
}

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Start + r.Length }

// contains reports whether addr falls inside the region.
func (r *Region) contains(addr uint64) bool {
	return addr >= r.Start && addr < r.End()
}

// State reports the page state at addr (PageMissing if never touched).
func (r *Region) State(addr uint64) PageState {
	p, ok := r.pages[align(addr)]
	if !ok {
		return PageMissing
	}
	return p.state
}

// MappedPages counts pages currently resident (zero-COW or present). This is
// the VM's local memory footprint, the quantity Table III minimises.
func (r *Region) MappedPages() int { return len(r.pages) }

// FD is the simulated userfaultfd descriptor: the monitor process polls it
// for fault events and resolves them with page operations.
//
// The descriptor recycles page frames and page structs through freelists so
// the steady-state fault pipeline (install via Copy/ZeroPage, evict via
// Remap, hand the frame back via Recycle) runs without heap allocation. A
// frame returned by Remap is owned by the caller until it is passed to
// Recycle or to a sink that copies it.
type FD struct {
	params  Params
	rng     *clock.Rand
	regions []*Region

	// queue is a ring buffer of pending fault events: qHead indexes the
	// oldest event, qLen counts them, and the slice grows (power of two)
	// only when depth exceeds capacity — never per event.
	queue []Event
	qHead int
	qLen  int

	// waiting tracks faulted addresses whose vCPU is blocked until Wake.
	waiting map[uint64]bool
	// wpFaults counts write-protect faults taken (dirty-tracking traffic).
	wpFaults uint64

	// freePages and freeFrames recycle page structs and PageSize buffers.
	freePages  []*page
	freeFrames [][]byte

	// tr receives one event per page operation; trWorkers attributes each
	// to its fault-pipeline worker by the monitor's page-address shard.
	tr        *trace.Tracer
	trWorkers int

	// pageHint pre-sizes each region's resident-page map (see SetPageHint).
	pageHint int
}

// New returns a descriptor with the given service-time parameters.
func New(params Params, seed uint64) *FD {
	return &FD{
		params:  params,
		rng:     clock.NewRand(seed),
		waiting: make(map[uint64]bool),
	}
}

// getPage pops a recycled page struct (or allocates one) with the given
// state. Its data field is nil.
func (f *FD) getPage(state PageState) *page {
	if n := len(f.freePages); n > 0 {
		p := f.freePages[n-1]
		f.freePages = f.freePages[:n-1]
		*p = page{state: state}
		return p
	}
	return &page{state: state}
}

// putPage recycles a page struct and, if it owns a frame, the frame too.
func (f *FD) putPage(p *page) {
	if p.data != nil {
		f.Recycle(p.data)
	}
	*p = page{}
	f.freePages = append(f.freePages, p)
}

// getFrame pops a recycled frame or allocates a fresh one. The contents are
// unspecified; callers must fully overwrite or zero it.
func (f *FD) getFrame() []byte {
	if n := len(f.freeFrames); n > 0 {
		buf := f.freeFrames[n-1]
		f.freeFrames = f.freeFrames[:n-1]
		return buf
	}
	return make([]byte, PageSize)
}

// GetFrame hands out a pooled PageSize buffer with unspecified contents.
// Callers use it for monitor-side staging (e.g. copy-out eviction) and
// return it via Recycle when done.
func (f *FD) GetFrame() []byte { return f.getFrame() }

// Recycle returns a frame to the descriptor's pool. Only full-size frames
// whose ownership the caller holds may be recycled: buffers returned by a
// key-value store read must never be passed here (the store retains them).
// Short or oversized buffers are ignored.
func (f *FD) Recycle(buf []byte) {
	if len(buf) != PageSize {
		return
	}
	f.freeFrames = append(f.freeFrames, buf)
}

// pushEvent appends a fault event to the ring, growing it only when full.
func (f *FD) pushEvent(ev Event) {
	if f.qLen == len(f.queue) {
		grown := make([]Event, max(16, 2*len(f.queue)))
		for i := 0; i < f.qLen; i++ {
			grown[i] = f.queue[(f.qHead+i)%len(f.queue)]
		}
		f.queue = grown
		f.qHead = 0
	}
	f.queue[(f.qHead+f.qLen)%len(f.queue)] = ev
	f.qLen++
}

// SetTracer routes page-operation events (ZEROPAGE, COPY, REMAP,
// WRITEPROTECT) to tr, attributed to workers fault-pipeline workers by page
// address — the same sharding the monitor uses. A nil tracer disables
// emission; tracing never samples the RNG or changes any returned time.
func (f *FD) SetTracer(tr *trace.Tracer, workers int) {
	if workers < 1 {
		workers = 1
	}
	f.tr = tr
	f.trWorkers = workers
}

// SetPageHint pre-sizes the resident-page map of regions registered from now
// on. A region's map holds only resident pages — bounded by the monitor's
// LRU capacity, not the region size — so sizing it up front removes the map
// growth a fresh region pays as the working set warms.
func (f *FD) SetPageHint(pages int) {
	if pages < 0 {
		pages = 0
	}
	f.pageHint = pages
}

// traceWorker is the fault-pipeline worker owning addr.
func (f *FD) traceWorker(addr uint64) int {
	if f.trWorkers < 1 {
		return 0
	}
	return int((addr / PageSize) % uint64(f.trWorkers))
}

// Register adds [start, start+length) as a fault-handled region for pid,
// mirroring the userfaultfd registration QEMU performs when FluidMem wraps
// its guest memory allocation (§IV). Regions must be page-aligned and must
// not overlap existing registrations.
func (f *FD) Register(start, length uint64, pid int) (*Region, error) {
	if start%PageSize != 0 || length%PageSize != 0 || length == 0 {
		return nil, fmt.Errorf("uffd: region [%#x,+%#x) not page-aligned", start, length)
	}
	for _, r := range f.regions {
		if start < r.End() && r.Start < start+length {
			return nil, fmt.Errorf("uffd: region [%#x,+%#x) overlaps [%#x,+%#x)", start, length, r.Start, r.Length)
		}
	}
	region := &Region{Start: start, Length: length, PID: pid, fd: f, pages: make(map[uint64]*page, f.pageHint)}
	f.regions = append(f.regions, region)
	return region, nil
}

// Unregister removes a region (VM shutdown): its pages vanish and pending
// events for it are dropped, like closing the descriptor side of a dead VM.
func (f *FD) Unregister(region *Region) {
	kept := f.regions[:0]
	for _, r := range f.regions {
		if r != region {
			kept = append(kept, r)
		}
	}
	f.regions = kept
	kept2 := make([]Event, 0, f.qLen)
	for i := 0; i < f.qLen; i++ {
		ev := f.queue[(f.qHead+i)%len(f.queue)]
		if !region.contains(ev.Addr) {
			kept2 = append(kept2, ev)
		}
	}
	f.queue = kept2
	f.qHead = 0
	f.qLen = len(kept2)
}

// Regions returns the registered regions (monitor bookkeeping).
func (f *FD) Regions() []*Region {
	out := make([]*Region, len(f.regions))
	copy(out, f.regions)
	return out
}

// RegionFor returns the region containing addr, or nil. Unlike Regions it
// allocates nothing, so the fault hot path can resolve a victim's region
// per eviction.
func (f *FD) RegionFor(addr uint64) *Region { return f.regionFor(addr) }

// Access performs a guest memory access at addr. If the page is resident it
// returns its data (for reads) with hit=true and zero added latency beyond
// the access itself. If the page is missing, the access traps: a fault event
// is queued, the vCPU blocks, and hit=false is returned along with the
// virtual time at which the event is visible to the monitor.
//
// A write to a zero-COW page takes the kernel-internal COW break (a "minor
// fault" with no monitor involvement) and returns hit=true.
func (f *FD) Access(now time.Duration, addr uint64, write bool) (data []byte, eventAt time.Duration, hit bool, err error) {
	region := f.regionFor(addr)
	if region == nil {
		return nil, now, false, fmt.Errorf("%w: %#x", ErrNotRegistered, addr)
	}
	aligned := align(addr)
	p, ok := region.pages[aligned]
	if !ok {
		trap := f.params.FaultTrap.Sample(f.rng)
		f.pushEvent(Event{Addr: aligned, PID: region.PID, Write: write, Raised: now})
		f.waiting[aligned] = true
		return nil, now + trap, false, nil
	}
	switch p.state {
	case PageZeroCOW:
		if !write {
			return zeroPage, now, true, nil
		}
		// COW break: private zero-filled frame, no monitor round trip.
		p.state = PagePresent
		p.data = f.getFrame()
		copy(p.data, zeroPage)
		return p.data, now + f.params.COWBreak.Sample(f.rng), true, nil
	case PagePresent:
		if write && p.wp {
			// Write-protect fault: clear the protection and charge the
			// kernel-internal fix-up before the write retries. The page is
			// dirty from here on.
			p.wp = false
			f.wpFaults++
			return p.data, now + f.params.WPFault.Sample(f.rng), true, nil
		}
		return p.data, now, true, nil
	default:
		return nil, now, false, fmt.Errorf("uffd: page %#x in invalid state %d", aligned, p.state)
	}
}

// NextEvent pops the oldest pending fault event, reporting ok=false when the
// queue is empty (the monitor's poll loop).
func (f *FD) NextEvent() (Event, bool) {
	if f.qLen == 0 {
		return Event{}, false
	}
	ev := f.queue[f.qHead]
	f.qHead = (f.qHead + 1) % len(f.queue)
	f.qLen--
	return ev, true
}

// PendingEvents reports queued fault count.
func (f *FD) PendingEvents() int { return f.qLen }

// ZeroPage resolves a fault by mapping the shared zero page copy-on-write at
// addr (UFFDIO_ZEROPAGE). This is FluidMem's first-touch fast path (§V-A):
// no key-value store read is needed for a page never seen before.
func (f *FD) ZeroPage(now time.Duration, addr uint64) (time.Duration, error) {
	region := f.regionFor(addr)
	if region == nil {
		return now, fmt.Errorf("%w: %#x", ErrNotRegistered, addr)
	}
	aligned := align(addr)
	if _, ok := region.pages[aligned]; ok {
		return now, fmt.Errorf("%w: %#x", ErrAlreadyMapped, aligned)
	}
	region.pages[aligned] = f.getPage(PageZeroCOW)
	done := now + f.params.ZeroPage.Sample(f.rng)
	if f.tr != nil {
		f.tr.Emit(trace.EvUffdZeroPage, f.traceWorker(aligned), aligned, now, done-now, "")
	}
	return done, nil
}

// Copy resolves a fault by allocating a frame at addr and copying data into
// it (UFFDIO_COPY), used when the page's contents live in the key-value
// store.
func (f *FD) Copy(now time.Duration, addr uint64, data []byte) (time.Duration, error) {
	region := f.regionFor(addr)
	if region == nil {
		return now, fmt.Errorf("%w: %#x", ErrNotRegistered, addr)
	}
	if len(data) != PageSize {
		return now, fmt.Errorf("uffd: copy of %d bytes, want %d", len(data), PageSize)
	}
	aligned := align(addr)
	if _, ok := region.pages[aligned]; ok {
		return now, fmt.Errorf("%w: %#x", ErrAlreadyMapped, aligned)
	}
	p := f.getPage(PagePresent)
	p.data = f.getFrame()
	copy(p.data, data)
	region.pages[aligned] = p
	done := now + f.params.Copy.Sample(f.rng)
	if f.tr != nil {
		f.tr.Emit(trace.EvUffdCopy, f.traceWorker(aligned), aligned, now, done-now, "")
	}
	return done, nil
}

// SetWriteProtect marks the present page at addr write-protected
// (UFFDIO_WRITEPROTECT): the monitor calls it right after installing a page
// whose contents the store durably holds, so a later eviction can tell a
// still-clean page (drop, no store write) from a dirtied one. Only private
// present pages can be protected; zero-COW pages are already covered by the
// shared zero mapping.
func (f *FD) SetWriteProtect(now time.Duration, addr uint64) (time.Duration, error) {
	region := f.regionFor(addr)
	if region == nil {
		return now, fmt.Errorf("%w: %#x", ErrNotRegistered, addr)
	}
	aligned := align(addr)
	p, ok := region.pages[aligned]
	if !ok {
		return now, fmt.Errorf("%w: %#x", ErrNotMapped, aligned)
	}
	if p.state != PagePresent {
		return now, fmt.Errorf("uffd: write-protect of non-private page %#x", aligned)
	}
	p.wp = true
	done := now + f.params.WriteProtect.Sample(f.rng)
	if f.tr != nil {
		f.tr.Emit(trace.EvUffdWP, f.traceWorker(aligned), aligned, now, done-now, "")
	}
	return done, nil
}

// PageClean reports whether the page at addr is present, write-protected,
// and unwritten since protection — i.e. its store copy is still current and
// eviction may drop it without a write. Missing and zero-COW pages report
// false (a zero-COW page has no store copy; zero-page elision covers it).
func (f *FD) PageClean(addr uint64) bool {
	region := f.regionFor(addr)
	if region == nil {
		return false
	}
	p, ok := region.pages[align(addr)]
	return ok && p.state == PagePresent && p.wp
}

// WPFaults reports write-protect faults taken since creation.
func (f *FD) WPFaults() uint64 { return f.wpFaults }

// Remap evicts the page at addr: page-table entries move the frame out of
// the VM into a monitor-owned buffer without copying the contents (the
// proposed UFFD_REMAP, §V-A). The page becomes missing again. interleaved
// selects the cheaper cost observed when the vCPU is already suspended
// (§V-B asynchronous reads).
//
// The returned buffer is the evicted frame itself — zero-copy semantics.
func (f *FD) Remap(now time.Duration, addr uint64, interleaved bool) ([]byte, time.Duration, error) {
	region := f.regionFor(addr)
	if region == nil {
		return nil, now, fmt.Errorf("%w: %#x", ErrNotRegistered, addr)
	}
	aligned := align(addr)
	p, ok := region.pages[aligned]
	if !ok {
		return nil, now, fmt.Errorf("%w: %#x", ErrNotMapped, aligned)
	}
	data := p.data
	if p.state == PageZeroCOW {
		// The zero page is shared; moving it out materialises zeroes.
		data = f.getFrame()
		copy(data, zeroPage)
	}
	delete(region.pages, aligned)
	p.data = nil // frame ownership moves to the caller
	f.putPage(p)
	model := f.params.Remap
	arg := ""
	if interleaved {
		model = f.params.RemapInterleaved
		arg = "interleaved"
	}
	done := now + model.Sample(f.rng)
	if f.tr != nil {
		f.tr.Emit(trace.EvUffdRemap, f.traceWorker(aligned), aligned, now, done-now, arg)
	}
	return data, done, nil
}

// Drop removes the page at addr without preserving its contents (madvise
// MADV_DONTNEED semantics), used for balloon-discarded pages. Dropping a
// missing page is a no-op. It reports whether a page was removed.
func (f *FD) Drop(addr uint64) bool {
	region := f.regionFor(addr)
	if region == nil {
		return false
	}
	aligned := align(addr)
	p, ok := region.pages[aligned]
	if !ok {
		return false
	}
	delete(region.pages, aligned)
	f.putPage(p)
	return true
}

// Wake unblocks the vCPU thread faulted at addr after the monitor resolved
// the fault.
func (f *FD) Wake(now time.Duration, addr uint64) time.Duration {
	delete(f.waiting, align(addr))
	return now + f.params.Wake.Sample(f.rng)
}

// Waiting reports whether a vCPU is still blocked on addr.
func (f *FD) Waiting(addr uint64) bool { return f.waiting[align(addr)] }

func (f *FD) regionFor(addr uint64) *Region {
	for _, r := range f.regions {
		if r.contains(addr) {
			return r
		}
	}
	return nil
}

func align(addr uint64) uint64 { return addr &^ (PageSize - 1) }

// zeroPage is the shared read-only zero page.
var zeroPage = make([]byte, PageSize)
