package uffd

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func newFD(t *testing.T) (*FD, *Region) {
	t.Helper()
	f := New(DefaultParams(), 1)
	r, err := f.Register(0x100000, 64*PageSize, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return f, r
}

func filled(tag byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = tag
	}
	return p
}

func TestRegisterValidation(t *testing.T) {
	f := New(DefaultParams(), 1)
	if _, err := f.Register(0x1001, PageSize, 1); err == nil {
		t.Fatal("unaligned start accepted")
	}
	if _, err := f.Register(0x1000, 100, 1); err == nil {
		t.Fatal("unaligned length accepted")
	}
	if _, err := f.Register(0x1000, 0, 1); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestRegisterOverlapRejected(t *testing.T) {
	f := New(DefaultParams(), 1)
	if _, err := f.Register(0x10000, 16*PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Register(0x10000+8*PageSize, 16*PageSize, 2); err == nil {
		t.Fatal("overlapping region accepted")
	}
	// Adjacent is fine.
	if _, err := f.Register(0x10000+16*PageSize, 16*PageSize, 2); err != nil {
		t.Fatalf("adjacent region rejected: %v", err)
	}
}

func TestFirstAccessFaults(t *testing.T) {
	f, r := newFD(t)
	data, eventAt, hit, err := f.Access(0, r.Start, false)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first access should miss")
	}
	if data != nil {
		t.Fatal("missed access returned data")
	}
	if eventAt <= 0 {
		t.Fatal("fault trap cost missing")
	}
	ev, ok := f.NextEvent()
	if !ok {
		t.Fatal("no fault event queued")
	}
	if ev.Addr != r.Start || ev.PID != 1234 {
		t.Fatalf("event = %+v", ev)
	}
	if !f.Waiting(r.Start) {
		t.Fatal("vCPU not recorded as blocked")
	}
}

func TestEventAddrPageAligned(t *testing.T) {
	f, r := newFD(t)
	if _, _, _, err := f.Access(0, r.Start+123, true); err != nil {
		t.Fatal(err)
	}
	ev, _ := f.NextEvent()
	if ev.Addr != r.Start {
		t.Fatalf("event addr %#x not aligned to %#x", ev.Addr, r.Start)
	}
	if !ev.Write {
		t.Fatal("write flag lost")
	}
}

func TestAccessOutsideRegions(t *testing.T) {
	f, _ := newFD(t)
	if _, _, _, err := f.Access(0, 0xdead0000, false); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("err = %v", err)
	}
}

func TestZeroPageResolvesRead(t *testing.T) {
	f, r := newFD(t)
	f.Access(0, r.Start, false)
	f.NextEvent()
	if _, err := f.ZeroPage(0, r.Start); err != nil {
		t.Fatal(err)
	}
	f.Wake(0, r.Start)
	if f.Waiting(r.Start) {
		t.Fatal("still waiting after wake")
	}
	data, _, hit, err := f.Access(0, r.Start, false)
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if !bytes.Equal(data, make([]byte, PageSize)) {
		t.Fatal("zero page is not zero")
	}
	if r.State(r.Start) != PageZeroCOW {
		t.Fatalf("state = %v, want zero-COW", r.State(r.Start))
	}
}

func TestZeroCOWBreaksOnWrite(t *testing.T) {
	f, r := newFD(t)
	f.Access(0, r.Start, false)
	f.NextEvent()
	f.ZeroPage(0, r.Start)
	// Write: kernel-internal COW break, no new uffd event.
	data, done, hit, err := f.Access(0, r.Start, true)
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if done <= 0 {
		t.Fatal("COW break cost missing")
	}
	if f.PendingEvents() != 0 {
		t.Fatal("COW break raised a uffd event")
	}
	if r.State(r.Start) != PagePresent {
		t.Fatal("page not private after COW break")
	}
	// The returned frame is writable guest memory.
	data[0] = 0x5A
	again, _, _, _ := f.Access(0, r.Start, false)
	if again[0] != 0x5A {
		t.Fatal("write to private page lost")
	}
}

func TestCopyResolvesWithData(t *testing.T) {
	f, r := newFD(t)
	addr := r.Start + 4*PageSize
	f.Access(0, addr, false)
	f.NextEvent()
	if _, err := f.Copy(0, addr, filled(0x7F)); err != nil {
		t.Fatal(err)
	}
	data, _, hit, err := f.Access(0, addr, false)
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if !bytes.Equal(data, filled(0x7F)) {
		t.Fatal("copied data corrupted")
	}
}

func TestCopyValidation(t *testing.T) {
	f, r := newFD(t)
	if _, err := f.Copy(0, r.Start, []byte("short")); err == nil {
		t.Fatal("short copy accepted")
	}
	if _, err := f.Copy(0, 0xdead0000, filled(1)); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("err = %v", err)
	}
	if _, err := f.Copy(0, r.Start, filled(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Copy(0, r.Start, filled(2)); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("double copy err = %v", err)
	}
}

func TestZeroPageOnMappedFails(t *testing.T) {
	f, r := newFD(t)
	f.Copy(0, r.Start, filled(1))
	if _, err := f.ZeroPage(0, r.Start); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemapEvictsZeroCopy(t *testing.T) {
	f, r := newFD(t)
	f.Copy(0, r.Start, filled(0x42))
	data, done, err := f.Remap(0, r.Start, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, filled(0x42)) {
		t.Fatal("remapped contents wrong")
	}
	if done <= 0 {
		t.Fatal("remap cost missing")
	}
	if r.State(r.Start) != PageMissing {
		t.Fatal("page still mapped after remap")
	}
	// Next access faults again.
	_, _, hit, err := f.Access(0, r.Start, false)
	if err != nil || hit {
		t.Fatalf("hit=%v err=%v after eviction", hit, err)
	}
}

func TestRemapZeroCOWMaterialisesZeroes(t *testing.T) {
	f, r := newFD(t)
	f.ZeroPage(0, r.Start)
	data, _, err := f.Remap(0, r.Start, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, make([]byte, PageSize)) {
		t.Fatal("evicted zero-COW page not zero")
	}
}

func TestRemapMissingFails(t *testing.T) {
	f, r := newFD(t)
	if _, _, err := f.Remap(0, r.Start, false); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemapInterleavedRemovesShootdownTail(t *testing.T) {
	// Table I gives synchronous UFFD_REMAP a 1.65 µs average but an 18 µs
	// p99 (TLB-shootdown IPIs); §V-B reports the interleaved call returns in
	// a flat ~2 µs. The win of interleaving is tail removal and overlap, not
	// a lower mean, so assert on worst-case behaviour.
	f, r := newFD(t)
	var syncWorst, interWorst time.Duration
	const n = 3000
	for i := 0; i < n; i++ {
		addr := r.Start
		f.Copy(0, addr, filled(1))
		_, done, err := f.Remap(0, addr, false)
		if err != nil {
			t.Fatal(err)
		}
		if done > syncWorst {
			syncWorst = done
		}
		f.Copy(0, addr, filled(1))
		_, done, err = f.Remap(0, addr, true)
		if err != nil {
			t.Fatal(err)
		}
		if done > interWorst {
			interWorst = done
		}
	}
	if interWorst > 4*time.Microsecond {
		t.Fatalf("interleaved worst case %v, want flat ~2µs", interWorst)
	}
	if syncWorst < 2*interWorst {
		t.Fatalf("sync worst %v vs interleaved worst %v: shootdown tail missing", syncWorst, interWorst)
	}
}

func TestRemapSyncHasShootdownTail(t *testing.T) {
	f, r := newFD(t)
	worst := time.Duration(0)
	for i := 0; i < 5000; i++ {
		f.Copy(0, r.Start, filled(1))
		_, done, err := f.Remap(0, r.Start, false)
		if err != nil {
			t.Fatal(err)
		}
		if done > worst {
			worst = done
		}
	}
	if worst < 10*time.Microsecond {
		t.Fatalf("worst sync remap %v, want a TLB-shootdown tail ≥10µs", worst)
	}
}

func TestMappedPagesCountsFootprint(t *testing.T) {
	f, r := newFD(t)
	for i := 0; i < 10; i++ {
		f.Copy(0, r.Start+uint64(i)*PageSize, filled(byte(i)))
	}
	if r.MappedPages() != 10 {
		t.Fatalf("MappedPages = %d", r.MappedPages())
	}
	f.Remap(0, r.Start, false)
	if r.MappedPages() != 9 {
		t.Fatalf("MappedPages after evict = %d", r.MappedPages())
	}
}

func TestUnregisterDropsRegionAndEvents(t *testing.T) {
	f := New(DefaultParams(), 1)
	r1, _ := f.Register(0x100000, 16*PageSize, 1)
	r2, _ := f.Register(0x200000, 16*PageSize, 2)
	f.Access(0, r1.Start, false)
	f.Access(0, r2.Start, false)
	f.Unregister(r1)
	if len(f.Regions()) != 1 {
		t.Fatalf("regions = %d", len(f.Regions()))
	}
	if f.PendingEvents() != 1 {
		t.Fatalf("pending = %d, want only r2's event", f.PendingEvents())
	}
	ev, _ := f.NextEvent()
	if ev.Addr != r2.Start {
		t.Fatalf("surviving event = %+v", ev)
	}
	if _, _, _, err := f.Access(0, r1.Start, false); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("access to dead region: %v", err)
	}
}

func TestEventsFIFO(t *testing.T) {
	f, r := newFD(t)
	for i := 0; i < 5; i++ {
		f.Access(time.Duration(i), r.Start+uint64(i)*PageSize, false)
	}
	for i := 0; i < 5; i++ {
		ev, ok := f.NextEvent()
		if !ok || ev.Addr != r.Start+uint64(i)*PageSize {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if _, ok := f.NextEvent(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestWriteProtectTracksDirtiness(t *testing.T) {
	f, _ := newFD(t)
	addr := uint64(0x100000)
	if _, err := f.Copy(0, addr, filled(7)); err != nil {
		t.Fatal(err)
	}
	if f.PageClean(addr) {
		t.Fatal("unprotected page reported clean")
	}
	done, err := f.SetWriteProtect(time.Microsecond, addr)
	if err != nil {
		t.Fatal(err)
	}
	if done <= time.Microsecond {
		t.Fatal("write-protect cost nothing")
	}
	if !f.PageClean(addr) {
		t.Fatal("protected page not clean")
	}

	// Reads do not disturb cleanliness and cost nothing extra.
	data, at, hit, err := f.Access(done, addr, false)
	if err != nil || !hit {
		t.Fatalf("read: hit=%v err=%v", hit, err)
	}
	if at != done {
		t.Fatalf("read of clean page cost %v", at-done)
	}
	if !bytes.Equal(data, filled(7)) {
		t.Fatal("data corrupted by protection")
	}
	if !f.PageClean(addr) {
		t.Fatal("read cleared cleanliness")
	}

	// The first write takes a WP fault, charges its cost, and dirties the page.
	_, at2, hit, err := f.Access(done, addr, true)
	if err != nil || !hit {
		t.Fatalf("write: hit=%v err=%v", hit, err)
	}
	if at2 <= done {
		t.Fatal("WP fault cost nothing")
	}
	if f.PageClean(addr) {
		t.Fatal("written page still clean")
	}
	if f.WPFaults() != 1 {
		t.Fatalf("WPFaults = %d, want 1", f.WPFaults())
	}

	// The second write is free: protection is gone.
	_, at3, _, err := f.Access(at2, addr, true)
	if err != nil {
		t.Fatal(err)
	}
	if at3 != at2 {
		t.Fatalf("second write cost %v", at3-at2)
	}
	if f.WPFaults() != 1 {
		t.Fatalf("WPFaults = %d after free write, want 1", f.WPFaults())
	}
}

func TestWriteProtectRejectsMissingAndZeroCOW(t *testing.T) {
	f, _ := newFD(t)
	if _, err := f.SetWriteProtect(0, 0x100000); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("missing page: err = %v, want ErrNotMapped", err)
	}
	if _, err := f.SetWriteProtect(0, 0x999999000); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("unregistered: err = %v, want ErrNotRegistered", err)
	}
	if _, err := f.ZeroPage(0, 0x101000); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetWriteProtect(0, 0x101000); err == nil {
		t.Fatal("zero-COW page accepted for write-protect")
	}
	if f.PageClean(0x101000) {
		t.Fatal("zero-COW page reported clean")
	}
}

func TestWriteProtectClearedByRemapAndReinstall(t *testing.T) {
	f, _ := newFD(t)
	addr := uint64(0x102000)
	if _, err := f.Copy(0, addr, filled(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetWriteProtect(0, addr); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Remap(0, addr, false); err != nil {
		t.Fatal(err)
	}
	if f.PageClean(addr) {
		t.Fatal("evicted page reported clean")
	}
	// Re-install without protection: dirty by default (conservative).
	if _, err := f.Copy(0, addr, filled(4)); err != nil {
		t.Fatal(err)
	}
	if f.PageClean(addr) {
		t.Fatal("fresh install reported clean without protection")
	}
}
