package loadgen

import (
	"fmt"
	"time"
)

// Planner picks the host's budget policy for a scenario run.
type Planner string

const (
	PlannerStatic  Planner = "static"
	PlannerArbiter Planner = "arbiter"
	PlannerMarket  Planner = "market"
)

// Planners lists every planner, in comparison order.
func Planners() []Planner {
	return []Planner{PlannerStatic, PlannerArbiter, PlannerMarket}
}

// TenantScenario declares one tenant of an open-loop scenario: its arrival
// process, what it touches, its SLO, and its lifecycle.
type TenantScenario struct {
	// ID names the tenant (planner sort key, as everywhere).
	ID string
	// Boot is when the VM starts issuing traffic; Death (0 = never) is
	// when it dies mid-run. Outside [Boot, Death) the tenant is inactive:
	// no arrivals, excluded from the epoch-window barrier.
	Boot, Death time.Duration
	// Process and Curve shape the arrival stream; the curve's time origin
	// is the scenario start (not the tenant's boot).
	Process Process
	Curve   RateCurve
	// Keys is the touch distribution, span, write mix, and SLO.
	Keys KeySpec
}

// Scenario is a named open-loop traffic scenario: a tenant population with
// lifecycles and load curves over a fixed virtual-time horizon, on one
// shared host budget.
type Scenario struct {
	Name    string
	Horizon time.Duration
	// TotalLocalPages is the shared host DRAM budget.
	TotalLocalPages int
	// EpochOps is the per-tenant operation count closing a planner epoch.
	EpochOps int
	// P99Target is the sojourn-time target the knee-of-curve experiment
	// tests offered load against.
	P99Target time.Duration
	Tenants   []TenantScenario
}

// Scenario sizing constants: rates are sized so a DRAM-backed host (fault
// service ≈ 2.5 µs, resident hits ≈ 100 ns) sits comfortably below
// saturation at scale 1 and clearly beyond it at scale 4–8, which is what
// puts the knee inside the bench's sweep.
const (
	scenarioBudget   = 128 // shared pages
	scenarioSpanHot  = 96  // hot tenants overflow their equal split
	scenarioSpanCold = 16  // cold tenants fit in any split
	scenarioHorizon  = 200 * time.Millisecond
)

// ScenarioNames lists the built-in scenarios.
func ScenarioNames() []string { return []string{"diurnal", "flashcrowd", "churn"} }

// NamedScenario returns a built-in scenario.
//
//   - "diurnal": two anti-phase day/night zipfian populations whose working
//     sets each overflow the equal split, plus a small steady tenant with a
//     tight SLO — the planner-arbitrage shape.
//   - "flashcrowd": a steady zipfian population hit by an 8× step spike
//     mid-run while a scan tenant grinds in the background — the queueing
//     transient no closed-loop bench can exhibit.
//   - "churn": VMs boot and die mid-run (one late boot, one mid-run death)
//     over diurnal load — the tenant-lifecycle stress for planner epochs.
func NamedScenario(name string) (Scenario, error) {
	const (
		day = scenarioHorizon / 2 // diurnal period: two full days per run
	)
	base := Scenario{
		Name:            name,
		Horizon:         scenarioHorizon,
		TotalLocalPages: scenarioBudget,
		EpochOps:        400,
		// Sits a few fault-services above the uncongested p99 (~50 µs at
		// scale 1), so the knee — the largest offered-load scale whose p99
		// still meets the target — lands inside the bench's 0.5–8× sweep.
		P99Target: 150 * time.Microsecond,
	}
	switch name {
	case "diurnal":
		base.Tenants = []TenantScenario{
			{
				ID:      "day",
				Process: Poisson,
				Curve:   DiurnalRate{Base: 30_000, Swing: 0.9, Period: day},
				Keys:    KeySpec{Dist: Zipfian, SpanPages: scenarioSpanHot, WriteFrac: 0.3},
			},
			{
				ID:      "night",
				Process: Poisson,
				Curve:   DiurnalRate{Base: 30_000, Swing: 0.9, Period: day, Phase: 3.141592653589793},
				Keys:    KeySpec{Dist: Zipfian, SpanPages: scenarioSpanHot, WriteFrac: 0.3},
			},
			{
				ID:      "steady",
				Process: Poisson,
				Curve:   ConstantRate{PerSec: 10_000},
				Keys:    KeySpec{Dist: Uniform, SpanPages: scenarioSpanCold, WriteFrac: 0.1, SLO: 25 * time.Microsecond},
			},
		}
	case "flashcrowd":
		base.Tenants = []TenantScenario{
			{
				ID:      "frontpage",
				Process: Poisson,
				Curve: FlashCrowdRate{Base: 20_000, Spike: 8,
					Start: scenarioHorizon * 3 / 8, Width: scenarioHorizon / 4},
				Keys: KeySpec{Dist: Zipfian, SpanPages: scenarioSpanHot, WriteFrac: 0.2},
			},
			{
				ID:      "batch",
				Process: Deterministic,
				Curve:   ConstantRate{PerSec: 15_000},
				Keys:    KeySpec{Dist: Sequential, SpanPages: scenarioSpanHot, WriteFrac: 0.5},
			},
			{
				ID:      "steady",
				Process: Poisson,
				Curve:   ConstantRate{PerSec: 10_000},
				Keys:    KeySpec{Dist: Uniform, SpanPages: scenarioSpanCold, WriteFrac: 0.1, SLO: 25 * time.Microsecond},
			},
		}
	case "churn":
		base.Tenants = []TenantScenario{
			{
				ID:      "steady",
				Process: Poisson,
				Curve:   ConstantRate{PerSec: 20_000},
				Keys:    KeySpec{Dist: Zipfian, SpanPages: scenarioSpanHot, WriteFrac: 0.3},
			},
			{
				ID:      "dies",
				Death:   scenarioHorizon / 2,
				Process: Poisson,
				Curve:   DiurnalRate{Base: 25_000, Swing: 0.8, Period: day},
				Keys:    KeySpec{Dist: Zipfian, SpanPages: scenarioSpanHot, WriteFrac: 0.3},
			},
			{
				ID:      "lateboot",
				Boot:    scenarioHorizon / 4,
				Process: Poisson,
				Curve:   ConstantRate{PerSec: 25_000},
				Keys:    KeySpec{Dist: Zipfian, SpanPages: scenarioSpanHot, WriteFrac: 0.3},
			},
			{
				ID:      "steady-slo",
				Process: Poisson,
				Curve:   ConstantRate{PerSec: 8_000},
				Keys:    KeySpec{Dist: Uniform, SpanPages: scenarioSpanCold, WriteFrac: 0.1, SLO: 25 * time.Microsecond},
			},
		}
	default:
		return Scenario{}, fmt.Errorf("loadgen: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	return base, nil
}
