package loadgen

import (
	"fmt"
	"time"

	"fluidmem/internal/clock"
	"fluidmem/internal/workload/ycsb"
)

// KeyDist picks the key-popularity distribution of a tenant's page touches.
type KeyDist uint8

const (
	// Zipfian is the YCSB-style scrambled zipfian over the tenant's span —
	// the hot-key skew of real serving workloads.
	Zipfian KeyDist = iota
	// Uniform touches every page of the span equally.
	Uniform
	// Sequential cycles the span in order (a scan).
	Sequential
)

// KeySpec describes what a tenant's operations touch.
type KeySpec struct {
	// Dist is the primary distribution; SpanPages the tenant's keyspace
	// (working-set span) in pages.
	Dist      KeyDist
	SpanPages int
	// Theta is the zipfian skew (0 uses the YCSB default 0.99).
	Theta float64
	// ScanFrac mixes sequential-scan phases into a Zipfian/Uniform stream:
	// that fraction of operations advances a scan cursor instead of
	// sampling Dist — the table-scan-over-hot-keys interference pattern.
	ScanFrac float64
	// WriteFrac is the fraction of operations that write.
	WriteFrac float64
	// SLO is the tenant's p99 fault-latency target (0 = none); carried
	// here so one spec fully describes a tenant's workload contract.
	SLO time.Duration
}

// keyGen turns a KeySpec into a deterministic per-tenant stream of
// (page, write) pairs. All randomness comes from the tenant's own seeded
// generators, so the stream is independent of every other tenant and of
// service timing — the open-loop property.
type keyGen struct {
	spec   KeySpec
	r      *clock.Rand
	zipf   *ycsb.Zipfian
	cursor int
}

func newKeyGen(spec KeySpec, seed uint64) (*keyGen, error) {
	if spec.SpanPages < 1 {
		return nil, fmt.Errorf("loadgen: key span must be >= 1 page, got %d", spec.SpanPages)
	}
	g := &keyGen{spec: spec, r: clock.NewRand(seed ^ 0xfeed_face_cafe)}
	if spec.Dist == Zipfian {
		theta := spec.Theta
		if theta == 0 {
			theta = 0.99
		}
		z, err := ycsb.NewZipfian(spec.SpanPages, theta, seed^0x5ca1_ab1e)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		g.zipf = z
	}
	return g, nil
}

// next returns the page index and write flag of the tenant's next op.
func (g *keyGen) next() (page int, write bool) {
	write = g.spec.WriteFrac > 0 && g.r.Float64() < g.spec.WriteFrac
	if g.spec.ScanFrac > 0 && g.r.Float64() < g.spec.ScanFrac {
		page = g.cursor % g.spec.SpanPages
		g.cursor++
		return page, write
	}
	switch g.spec.Dist {
	case Uniform:
		page = g.r.Intn(g.spec.SpanPages)
	case Sequential:
		page = g.cursor % g.spec.SpanPages
		g.cursor++
	default:
		page = g.zipf.Next()
	}
	return page, write
}
