package loadgen

import (
	"testing"
	"time"
)

func TestKeyGenSpanAndDeterminism(t *testing.T) {
	specs := map[string]KeySpec{
		"zipfian":    {Dist: Zipfian, SpanPages: 64, WriteFrac: 0.3},
		"uniform":    {Dist: Uniform, SpanPages: 16, WriteFrac: 0.5},
		"sequential": {Dist: Sequential, SpanPages: 8},
		"scan-mix":   {Dist: Zipfian, SpanPages: 32, ScanFrac: 0.2, WriteFrac: 0.1},
	}
	for name, spec := range specs {
		a, err := newKeyGen(spec, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _ := newKeyGen(spec, 42)
		for i := 0; i < 2000; i++ {
			pa, wa := a.next()
			pb, wb := b.next()
			if pa != pb || wa != wb {
				t.Fatalf("%s: op %d diverged: (%d,%v) vs (%d,%v)", name, i, pa, wa, pb, wb)
			}
			if pa < 0 || pa >= spec.SpanPages {
				t.Fatalf("%s: op %d page %d outside span %d", name, i, pa, spec.SpanPages)
			}
		}
	}
}

func TestKeyGenSequentialCycles(t *testing.T) {
	g, err := newKeyGen(KeySpec{Dist: Sequential, SpanPages: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		page, _ := g.next()
		if page != i%4 {
			t.Fatalf("op %d: page %d, want %d", i, page, i%4)
		}
	}
}

func TestKeyGenWriteFraction(t *testing.T) {
	g, err := newKeyGen(KeySpec{Dist: Uniform, SpanPages: 8, WriteFrac: 0.25}, 5)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	const ops = 10_000
	for i := 0; i < ops; i++ {
		if _, w := g.next(); w {
			writes++
		}
	}
	if frac := float64(writes) / ops; frac < 0.2 || frac > 0.3 {
		t.Fatalf("write fraction %v, want ≈0.25", frac)
	}
}

func TestKeyGenRejectsEmptySpan(t *testing.T) {
	if _, err := newKeyGen(KeySpec{Dist: Uniform, SpanPages: 0}, 1); err == nil {
		t.Fatal("zero span accepted")
	}
	if _, err := newKeyGen(KeySpec{Dist: Zipfian, SpanPages: -3}, 1); err == nil {
		t.Fatal("negative span accepted")
	}
}

func TestKeySpecCarriesSLO(t *testing.T) {
	spec := KeySpec{Dist: Uniform, SpanPages: 4, SLO: 25 * time.Microsecond}
	if spec.SLO != 25*time.Microsecond {
		t.Fatal("SLO not carried")
	}
}
