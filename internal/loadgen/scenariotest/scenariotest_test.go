package scenariotest

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"fluidmem/internal/core"
	"fluidmem/internal/kvstore/dram"
	"fluidmem/internal/loadgen"
	"fluidmem/internal/stats"
	"fluidmem/internal/workload/ycsb"
)

// TestOpenLoopReplayOracle is the headline gate: for every scenario × planner
// cell, the run at 1 worker is re-run (bitwise repeatability) and then
// replayed at 2, 4, and 8 fault-pipeline workers. Every field of the report —
// per-tenant op counts, sojourn percentiles, queue depths, fault costs,
// planner epochs and moves, and the digest over the raw histogram buckets —
// must be identical. The core contract only guarantees the logical fields at
// any configuration (parallelism is timing-only; re-sharding can regroup
// MultiGet batches and shift virtual-time costs), so this pins the stronger
// full-report equality empirically at the exact configurations below; if a
// deliberate batching change trips it, fall back to the logical fields plus
// TestOpenLoopTracedDigests.
func TestOpenLoopReplayOracle(t *testing.T) {
	for _, name := range loadgen.ScenarioNames() {
		for _, planner := range loadgen.Planners() {
			t.Run(name+"/"+string(planner), func(t *testing.T) {
				scen, err := loadgen.NamedScenario(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := loadgen.Config{Scenario: scen, Planner: planner, Seed: 1234, Workers: 1}
				ref, err := loadgen.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if ref.Offered == 0 || ref.Digest == 0 {
					t.Fatalf("vacuous reference run: %+v", ref)
				}

				again, err := loadgen.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, again) {
					t.Fatalf("same-seed replay diverged:\n%s\nvs\n%s", ref.Render(), again.Render())
				}

				for _, workers := range []int{2, 4, 8} {
					wcfg := cfg
					wcfg.Workers = workers
					rep, err := loadgen.Run(wcfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					norm := *rep
					norm.Workers = ref.Workers
					if !reflect.DeepEqual(ref, &norm) {
						t.Fatalf("workers=%d changed the simulated outcome:\nref  %s\ngot  %s",
							workers, ref.Render(), rep.Render())
					}
				}
			})
		}
	}
}

// TestOpenLoopTracedDigests re-proves the invariance through the tracer: the
// per-tenant logical trace digests (timing-independent event streams) of a
// traced churn run must be identical across worker counts.
func TestOpenLoopTracedDigests(t *testing.T) {
	scen, err := loadgen.NamedScenario("churn")
	if err != nil {
		t.Fatal(err)
	}
	var ref *loadgen.Report
	for _, workers := range []int{1, 4} {
		rep, err := loadgen.Run(loadgen.Config{
			Scenario: scen, Planner: loadgen.PlannerMarket,
			Seed: 77, Workers: workers, Traced: true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rep.TraceDigests) != len(scen.Tenants) {
			t.Fatalf("workers=%d: %d trace digests for %d tenants",
				workers, len(rep.TraceDigests), len(scen.Tenants))
		}
		if ref == nil {
			ref = rep
			continue
		}
		for i, d := range rep.TraceDigests {
			if d != ref.TraceDigests[i] {
				t.Fatalf("tenant %d logical trace digest differs across worker counts: %016x vs %016x",
					i, ref.TraceDigests[i], d)
			}
		}
		if rep.Digest != ref.Digest {
			t.Fatalf("report digest differs across worker counts: %016x vs %016x", ref.Digest, rep.Digest)
		}
	}
}

// TestOpenLoopSeedsDiverge guards against a degenerate digest: different
// seeds must visibly change the run.
func TestOpenLoopSeedsDiverge(t *testing.T) {
	scen, err := loadgen.NamedScenario("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	a, err := loadgen.Run(loadgen.Config{Scenario: scen, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadgen.Run(loadgen.Config{Scenario: scen, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatalf("seeds 1 and 2 produced the same digest %016x", a.Digest)
	}
}

// TestOpenLoopChurnParallelRaceFree drives the open-loop churn pattern
// against the LIVE multi-goroutine executors (core.NewParallel): three
// tenant arrival streams from the loadgen schedules touch three address
// ranges, a planner-style PostResize storm changes the capacity every epoch,
// and the late tenant's range is registered mid-run (the VM-boot analogue).
// Run under -race via `make check-race`. The assertion mirrors the SLO
// invariance leg: per-shard delivery cells merged must equal a
// mutex-serialised global accumulator fed the same deliveries.
func TestOpenLoopChurnParallelRaceFree(t *testing.T) {
	const (
		seed    = 99
		horizon = 120 * time.Millisecond
		span    = 64 // pages per tenant range
	)
	type stream struct {
		cfg   loadgen.ArrivalConfig
		base  uint64
		boot  time.Duration
		death time.Duration
	}
	streams := []stream{
		{cfg: loadgen.ArrivalConfig{Process: loadgen.Poisson,
			Curve: loadgen.ConstantRate{PerSec: 40_000}, Seed: seed + 1},
			base: 0x7c00_0000_0000},
		{cfg: loadgen.ArrivalConfig{Process: loadgen.Poisson,
			Curve: loadgen.DiurnalRate{Base: 30_000, Swing: 0.9, Period: horizon / 2}, Seed: seed + 2},
			base: 0x7d00_0000_0000, death: horizon / 2},
		{cfg: loadgen.ArrivalConfig{Process: loadgen.Deterministic,
			Curve: loadgen.ConstantRate{PerSec: 35_000}, Seed: seed + 3},
			base: 0x7e00_0000_0000, boot: horizon / 3},
	}

	// Merge the three schedules into one time-ordered op tape up front, so
	// the driving loop below is pure intake pressure.
	type op struct {
		at     time.Duration
		stream int
	}
	var tape []op
	for si, s := range streams {
		to := horizon
		if s.death > 0 {
			to = s.death
		}
		for _, at := range s.cfg.Schedule(s.boot, to) {
			tape = append(tape, op{at: at, stream: si})
		}
	}
	for i := 1; i < len(tape); i++ { // insertion sort on nearly-merged data is fine at this size
		for j := i; j > 0 && tape[j].at < tape[j-1].at; j-- {
			tape[j], tape[j-1] = tape[j-1], tape[j]
		}
	}
	if len(tape) < 1000 {
		t.Fatalf("churn tape too small: %d ops", len(tape))
	}

	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := core.DefaultConfig(dram.New(dram.DefaultParams(), seed+17), span)
			cfg.Workers = shards
			cfg.Seed = seed

			cells := make([]stats.Histogram, shards)
			var mu sync.Mutex
			var global stats.Histogram
			onData := func(shard int, ticket, addr uint64, data []byte) {
				d := time.Duration(1+(addr*2654435761>>12)%4096) * time.Microsecond
				cells[shard].Add(d)
				mu.Lock()
				global.Add(d)
				mu.Unlock()
			}
			p, err := core.NewParallel(cfg, nil, "openloop-churn", onData)
			if err != nil {
				t.Fatal(err)
			}
			for si, s := range streams[:2] {
				if err := p.RegisterRange(s.base, span*core.PageSize, si+1); err != nil {
					t.Fatal(err)
				}
			}

			keys := make([]*ycsb.Zipfian, len(streams))
			for i := range keys {
				z, err := ycsb.NewZipfian(span, 0.99, seed+uint64(i)*13)
				if err != nil {
					t.Fatal(err)
				}
				keys[i] = z
			}

			lateRegistered := false
			resizes := 0
			for i, o := range tape {
				if !lateRegistered && o.at >= streams[2].boot {
					// Mid-run tenant boot: a new range appears while the
					// executors are busy.
					if err := p.RegisterRange(streams[2].base, span*core.PageSize, 3); err != nil {
						t.Fatal(err)
					}
					lateRegistered = true
				}
				if i > 0 && i%1000 == 0 {
					// Planner resize storm: lock-free capacity changes racing
					// the intake, alternating squeeze and restore.
					capacity := span
					if (i/1000)%2 == 1 {
						capacity = span / 2
					}
					if p.PostResize(capacity) {
						resizes++
					}
				}
				if o.stream == 2 && !lateRegistered {
					t.Fatalf("op %d for unbooted tenant", i)
				}
				addr := streams[o.stream].base + uint64(keys[o.stream].Next())*core.PageSize
				if err := p.Touch(addr, i%3 == 0); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			if resizes == 0 {
				t.Fatal("resize storm never fired")
			}
			if err := p.Drain(); err != nil {
				t.Fatal(err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}

			var merged stats.Histogram
			for i := range cells {
				merged.Merge(&cells[i])
			}
			if merged.Count() == 0 {
				t.Fatal("no deliveries observed")
			}
			if merged.Count() != global.Count() || merged.Max() != global.Max() ||
				merged.Mean() != global.Mean() ||
				merged.Percentile(99) != global.Percentile(99) {
				t.Fatalf("per-shard cells diverge from serial accumulator: %d/%v vs %d/%v",
					merged.Count(), merged.Percentile(99), global.Count(), global.Percentile(99))
			}
		})
	}
}
