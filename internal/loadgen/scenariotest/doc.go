// Package scenariotest is the open-loop traffic determinism oracle
// (`make openloop-oracle`). It re-proves, for every built-in scenario and
// every planner, that same-seed scenario replays are bitwise repeatable and
// that the entire report — offered load, goodput, sojourn histograms, queue
// depths, planner epochs, trace digests — is invariant across fault-pipeline
// worker counts {1, 2, 4, 8} at the oracle's pinned configurations (the
// core contract guarantees the logical fields at any configuration; the
// virtual-time fields can drift by a store batch's amortization once
// re-sharding regroups MultiGet batches — see core/shardtest); and that the
// open-loop
// churn pattern (arrival storms, planner resize storms, mid-run tenant
// boot) is race-free on the live multi-goroutine core.NewParallel
// executors.
package scenariotest
