package loadgen

import (
	"math"
	"sort"
	"time"

	"fluidmem/internal/clock"
)

// Process picks the arrival point process.
type Process uint8

const (
	// Poisson is a non-homogeneous Poisson process whose intensity is the
	// rate curve: per slice, the arrival count is Poisson(Λ) for the
	// slice's cumulative measure Λ, and each arrival time is drawn by
	// inversion of the conditional cumulative measure — exactly the
	// open-loop client population model (many independent users).
	Poisson Process = iota
	// Deterministic places arrivals where the curve's cumulative measure
	// crosses successive integers — a jitter-free paced load, useful for
	// isolating queueing effects from arrival burstiness.
	Deterministic
)

// ArrivalSlice is the generation quantum of an arrival schedule. Arrivals
// inside each slice are produced by a PRNG seeded from (seed, slice index)
// alone, never from generator state carried across slices. That single
// design choice buys the three properties the fuzzer pins:
//
//   - bitwise repeatability: same (process, curve, seed) → same schedule;
//   - monotonicity: slices tile time in order and arrivals sort in-slice;
//   - split/merge invariance: Schedule(a, c) equals Schedule(a, b) followed
//     by Schedule(b, c) for ANY split point b, because every slice
//     regenerates identically and each timestamp belongs to exactly one
//     half-open window.
const ArrivalSlice = time.Millisecond

// ArrivalConfig describes one tenant's open-loop arrival stream.
type ArrivalConfig struct {
	Process Process
	Curve   RateCurve
	// Seed isolates this stream: two tenants with different seeds draw
	// independent arrival randomness even on identical curves.
	Seed uint64
}

// sliceSeed derives the PRNG seed for slice k (SplitMix64-style finalizer
// over the stream seed and the slice index, so adjacent slices decorrelate).
func sliceSeed(seed uint64, k int64) uint64 {
	z := seed + uint64(k)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// poissonCount draws a Poisson(lambda) variate with Knuth's product method,
// chunked so exp(-lambda) never underflows. Cost is O(lambda) PRNG draws —
// about one extra draw per generated arrival, which is fine at slice scale.
func poissonCount(r *clock.Rand, lambda float64) int {
	n := 0
	for lambda > 30 {
		n += knuthPoisson(r, 30)
		lambda -= 30
	}
	return n + knuthPoisson(r, lambda)
}

func knuthPoisson(r *clock.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	limit := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// sliceArrivals generates slice k's arrivals — every timestamp in
// [k*ArrivalSlice, (k+1)*ArrivalSlice) — in ascending order.
func (cfg ArrivalConfig) sliceArrivals(k int64, out []time.Duration) []time.Duration {
	start := time.Duration(k) * ArrivalSlice
	end := start + ArrivalSlice
	cumStart := cfg.Curve.CumOps(start)
	cumEnd := cfg.Curve.CumOps(end)
	switch cfg.Process {
	case Deterministic:
		// Arrivals at integer crossings of the cumulative measure: the
		// half-open measure intervals (cumStart, cumEnd] tile the real
		// line across slices, so each crossing is emitted exactly once.
		for n := math.Floor(cumStart) + 1; n <= cumEnd; n++ {
			t := invCum(cfg.Curve, n, start, end)
			if t >= end {
				t = end - 1 // boundary crossing stays in this slice's window
			}
			out = append(out, t)
		}
	default: // Poisson
		r := clock.NewRand(sliceSeed(cfg.Seed, k))
		lambda := cumEnd - cumStart
		n := poissonCount(r, lambda)
		for i := 0; i < n; i++ {
			// u in [0,1) maps to measure in [cumStart, cumEnd): inversion
			// sampling of the conditional (non-homogeneous) distribution.
			target := cumStart + r.Float64()*lambda
			t := invCum(cfg.Curve, target, start, end)
			if t >= end {
				t = end - 1
			}
			out = append(out, t)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}

// Schedule materialises every arrival timestamp in [from, to), ascending.
// Use Arrivals for long horizons; Schedule is the reference the fuzzer
// checks invariants on.
func (cfg ArrivalConfig) Schedule(from, to time.Duration) []time.Duration {
	var out []time.Duration
	if to <= from {
		return out
	}
	var buf []time.Duration
	for k := int64(from / ArrivalSlice); time.Duration(k)*ArrivalSlice < to; k++ {
		buf = cfg.sliceArrivals(k, buf[:0])
		for _, t := range buf {
			if t >= from && t < to {
				out = append(out, t)
			}
		}
	}
	return out
}

// Arrivals iterates a stream's schedule lazily, one slice at a time, so a
// multi-second horizon at datacenter rates never materialises millions of
// timestamps at once.
type Arrivals struct {
	cfg      ArrivalConfig
	from, to time.Duration
	k        int64
	buf      []time.Duration
	idx      int
}

// NewArrivals returns an iterator over cfg's arrivals in [from, to).
func NewArrivals(cfg ArrivalConfig, from, to time.Duration) *Arrivals {
	return &Arrivals{cfg: cfg, from: from, to: to, k: int64(from / ArrivalSlice)}
}

// Next returns the next arrival timestamp, or false when the window is
// exhausted.
func (a *Arrivals) Next() (time.Duration, bool) {
	for {
		for a.idx < len(a.buf) {
			t := a.buf[a.idx]
			a.idx++
			if t < a.from {
				continue
			}
			if t >= a.to {
				return 0, false
			}
			return t, true
		}
		if time.Duration(a.k)*ArrivalSlice >= a.to {
			return 0, false
		}
		a.buf = a.cfg.sliceArrivals(a.k, a.buf[:0])
		a.idx = 0
		a.k++
	}
}
