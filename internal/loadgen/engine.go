package loadgen

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"fluidmem"
	"fluidmem/internal/clock"
	"fluidmem/internal/core"
	"fluidmem/internal/stats"
)

// Config drives one open-loop scenario run.
type Config struct {
	Scenario Scenario
	// Planner picks the host budget policy (default PlannerStatic).
	Planner Planner
	// Workers sets the fault-pipeline worker count per tenant machine
	// (0 = the monitor default). The determinism oracle sweeps this.
	Workers int
	// Seed drives every stream: arrivals, keys, machine seeds. Same seed,
	// same report, bit for bit.
	Seed uint64
	// RateScale multiplies every tenant's curve — the offered-load knob the
	// knee-of-curve experiment turns. 0 means 1.
	RateScale float64
	// Traced attaches tracers to every tenant machine so the run yields
	// logical digests and chrome traces. Pure observation.
	Traced bool
}

// TenantReport is one tenant's outcome.
type TenantReport struct {
	ID string `json:"tenant"`
	// Offered counts arrivals generated in the tenant's live window;
	// OfferedPerSec normalises by the scenario horizon. Open loop: every
	// offered op is eventually served, so Offered is also the completion
	// count — goodput, not throughput, is the saturation signal.
	Offered       uint64  `json:"offered_ops"`
	OfferedPerSec float64 `json:"offered_per_sec"`
	// Good counts ops whose sojourn (arrival → service completion, queueing
	// included) met the scenario's P99Target; GoodputPerSec normalises by
	// the horizon. Past the knee, offered keeps rising and goodput falls.
	Good          uint64  `json:"good_ops"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	// Sojourn percentiles over the tenant's ops, in virtual time.
	SojournP50  time.Duration `json:"sojourn_p50_ns"`
	SojournP99  time.Duration `json:"sojourn_p99_ns"`
	SojournMax  time.Duration `json:"sojourn_max_ns"`
	SojournMean time.Duration `json:"sojourn_mean_ns"`
	// QueueMax / QueueMean sample the tenant's queue depth (ops in system)
	// at each arrival instant.
	QueueMax  int     `json:"queue_max"`
	QueueMean float64 `json:"queue_mean"`
	// Faults / FaultCost are the tenant's page-fault count and summed
	// end-to-end fault latencies; SharePages its final budget share.
	Faults     uint64        `json:"faults"`
	FaultCost  time.Duration `json:"fault_cost_ns"`
	SharePages int           `json:"share_pages"`
	// SLO accounting from the host's epoch windows.
	SLOWindows    uint64 `json:"slo_windows"`
	SLOViolations uint64 `json:"slo_violations"`
}

// Report is one scenario run's outcome.
type Report struct {
	Scenario  string        `json:"scenario"`
	Planner   Planner       `json:"planner"`
	Workers   int           `json:"workers"`
	Seed      uint64        `json:"seed"`
	RateScale float64       `json:"rate_scale"`
	Horizon   time.Duration `json:"horizon_ns"`
	P99Target time.Duration `json:"p99_target_ns"`

	Tenants []TenantReport `json:"tenants"`

	// Aggregates across tenants. SojournP99 is the percentile of the merged
	// histogram, not a mean of means.
	Offered       uint64        `json:"offered_ops"`
	OfferedPerSec float64       `json:"offered_per_sec"`
	Good          uint64        `json:"good_ops"`
	GoodputPerSec float64       `json:"goodput_per_sec"`
	SojournP50    time.Duration `json:"sojourn_p50_ns"`
	SojournP99    time.Duration `json:"sojourn_p99_ns"`
	SojournMax    time.Duration `json:"sojourn_max_ns"`
	QueueMax      int           `json:"queue_max"`
	// Backlog is how far the busiest tenant clock ran past the horizon to
	// serve the offered load — zero when the system keeps up, and the
	// clearest single saturation signal.
	Backlog time.Duration `json:"backlog_ns"`
	// Epochs counts planner epochs; Moves the pages-moving decisions.
	Epochs uint64 `json:"epochs"`
	Moves  uint64 `json:"moves"`

	// TraceDigests holds each tenant machine's logical trace digest
	// (timing-independent event stream), present only on Traced runs. Equal
	// digests across worker counts prove the fault pipelines processed the
	// same logical event sequences.
	TraceDigests []uint64 `json:"trace_digests,omitempty"`

	// Digest fingerprints the run: an FNV-1a hash over every tenant's op
	// counts, sojourn histogram buckets, fault counts, final shares, and
	// the planner counters. Two runs with the same full config (scenario,
	// planner, seed, scale, workers) must produce equal digests — bitwise
	// repeatability. Across worker counts the logical fields (op counts,
	// faults, shares, TraceDigests) are invariant by the core pipeline's
	// contract; the virtual-time-derived fields the digest also covers
	// (sojourn buckets, fault cost) are only guaranteed to match where
	// batch composition does not shift with sharding — the scenariotest
	// oracle pins full-report equality at its exact configurations, and
	// elsewhere timing may drift by a store batch's amortization (see
	// core/shardtest: parallelism is timing-only).
	Digest uint64 `json:"digest"`
}

// engineTenant is one tenant's run state.
type engineTenant struct {
	scen    TenantScenario
	idx     int
	base    uint64
	gen     *keyGen
	arr     *Arrivals
	sojourn *stats.Histogram
	// pending holds completion times of ops in the tenant's system
	// (non-decreasing: service is serialized per machine). Its length at an
	// arrival instant is the queue depth.
	pending  []time.Duration
	offered  uint64
	good     uint64
	queueMax int
	queueSum uint64
	cost     time.Duration
}

// Run executes one open-loop scenario and returns its report.
//
// The run is a single-threaded discrete-event simulation over
// clock.Scheduler: every tenant's arrival stream is pre-determined by
// (seed, curve, process) alone, so the sequence of guest operations — and
// therefore every planner decision, via the host's op-count epoch windows —
// is independent of service timing and of the worker count inside each
// machine's fault pipeline. That is what makes same-seed reports bitwise
// identical across Workers ∈ {1, 2, 4, 8}.
func Run(cfg Config) (*Report, error) {
	scen := cfg.Scenario
	if len(scen.Tenants) == 0 {
		return nil, fmt.Errorf("loadgen: scenario %q has no tenants", scen.Name)
	}
	if scen.Horizon <= 0 {
		return nil, fmt.Errorf("loadgen: scenario %q has no horizon", scen.Name)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	scale := cfg.RateScale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 {
		return nil, fmt.Errorf("loadgen: negative rate scale %v", scale)
	}

	// Build the host: one machine per tenant on a DRAM-backed shared store,
	// planner per cfg. Per-machine worker counts are a pure performance
	// ablation inside the fault pipeline; they never change simulated state.
	specs := make([]fluidmem.TenantSpec, len(scen.Tenants))
	tracers := make([]*fluidmem.Tracer, len(scen.Tenants))
	for i, ts := range scen.Tenants {
		mc := fluidmem.MachineConfig{Backend: fluidmem.BackendDRAM, GuestMemory: 16 << 20}
		if cfg.Workers > 0 {
			core := core.DefaultConfig(nil, 0)
			core.Workers = cfg.Workers
			mc.Monitor = &core
		}
		if cfg.Traced {
			tracers[i] = fluidmem.NewTracer(true)
			mc.Tracer = tracers[i]
		}
		specs[i] = fluidmem.TenantSpec{
			ID:     ts.ID,
			VM:     mc,
			Policy: fluidmem.TenantPolicy{SLO: ts.Keys.SLO},
		}
	}
	hc := fluidmem.HostConfig{
		Tenants:         specs,
		TotalLocalPages: scen.TotalLocalPages,
		Seed:            cfg.Seed,
	}
	epochs := scen.EpochOps
	if epochs <= 0 {
		epochs = 400
	}
	switch cfg.Planner {
	case PlannerArbiter:
		hc.Arbiter = &fluidmem.ArbiterConfig{EpochOps: epochs}
	case PlannerMarket:
		hc.Market = &fluidmem.MarketConfig{EpochOps: epochs}
	case PlannerStatic, "":
		hc.EpochOps = epochs // windows for SLO accounting, no rebalancing
	default:
		return nil, fmt.Errorf("loadgen: unknown planner %q", cfg.Planner)
	}
	h, err := fluidmem.NewHost(hc)
	if err != nil {
		return nil, err
	}

	tenants := make([]*engineTenant, len(scen.Tenants))
	for i, ts := range scen.Tenants {
		seg, err := h.Machine(i).Alloc("openloop", uint64(ts.Keys.SpanPages)*fluidmem.PageSize)
		if err != nil {
			return nil, fmt.Errorf("loadgen: tenant %s: %w", ts.ID, err)
		}
		gen, err := newKeyGen(ts.Keys, sliceSeed(cfg.Seed, int64(i)*2+1))
		if err != nil {
			return nil, fmt.Errorf("loadgen: tenant %s: %w", ts.ID, err)
		}
		to := scen.Horizon
		if ts.Death > 0 && ts.Death < to {
			to = ts.Death
		}
		et := &engineTenant{
			scen: ts,
			idx:  i,
			base: seg.Addr(0),
			gen:  gen,
			arr: NewArrivals(ArrivalConfig{
				Process: ts.Process,
				Curve:   Scale(ts.Curve, scale),
				Seed:    sliceSeed(cfg.Seed, int64(i)*2+2),
			}, ts.Boot, to),
			sojourn: &stats.Histogram{},
		}
		tenants[i] = et
		i := i
		h.Machine(i).Monitor().SetFaultLatencySink(func(d time.Duration) { tenants[i].cost += d })
	}

	sched := clock.NewScheduler()
	var runErr error

	// Lifecycle events first, so a boot/death at instant t precedes any
	// arrival scheduled for the same t (scheduler ties break on insertion
	// sequence).
	for i, ts := range scen.Tenants {
		id := ts.ID
		if ts.Boot > 0 {
			if err := h.SetTenantActive(id, false); err != nil {
				return nil, err
			}
			sched.Schedule(ts.Boot, i, func(time.Duration) {
				if runErr == nil {
					runErr = h.SetTenantActive(id, true)
				}
			})
		}
		if ts.Death > 0 && ts.Death < scen.Horizon {
			sched.Schedule(ts.Death, i, func(time.Duration) {
				if runErr == nil {
					runErr = h.SetTenantActive(id, false)
				}
			})
		}
	}

	// Arrival events chain: each fires the tenant's op, then schedules the
	// tenant's next arrival, so the heap holds at most one event per tenant.
	var fire func(et *engineTenant, at time.Duration)
	serve := func(et *engineTenant, at time.Duration) {
		// Queue depth at arrival: ops still in the tenant's system.
		for len(et.pending) > 0 && et.pending[0] <= at {
			et.pending = et.pending[1:]
		}
		depth := len(et.pending)
		if depth > et.queueMax {
			et.queueMax = depth
		}
		et.queueSum += uint64(depth)

		m := h.Machine(et.idx)
		if idle := at - m.Now(); idle > 0 {
			m.AdvanceCPU(idle) // server was idle until this arrival
		}
		page, write := et.gen.next()
		if _, err := h.Touch(et.idx, et.base+uint64(page)*fluidmem.PageSize, write); err != nil {
			runErr = fmt.Errorf("loadgen: tenant %s op at %v: %w", et.scen.ID, at, err)
			return
		}
		done := m.Now()
		et.sojourn.Add(done - at)
		et.offered++
		if done-at <= scen.P99Target {
			et.good++
		}
		et.pending = append(et.pending, done)
	}
	fire = func(et *engineTenant, at time.Duration) {
		if runErr != nil {
			return
		}
		serve(et, at)
		if next, ok := et.arr.Next(); ok {
			sched.Schedule(next, et.idx, func(now time.Duration) { fire(et, now) })
		}
	}
	for _, et := range tenants {
		if first, ok := et.arr.Next(); ok {
			et := et
			sched.Schedule(first, et.idx, func(now time.Duration) { fire(et, now) })
		}
	}

	sched.Run()
	if runErr != nil {
		return nil, runErr
	}
	if err := h.Drain(); err != nil {
		return nil, err
	}

	rep := buildReport(cfg, scale, h, tenants)
	if cfg.Traced {
		for _, tr := range tracers {
			rep.TraceDigests = append(rep.TraceDigests, tr.LogicalDigest())
		}
	}
	return rep, nil
}

func buildReport(cfg Config, scale float64, h *fluidmem.Host, tenants []*engineTenant) *Report {
	scen := cfg.Scenario
	rep := &Report{
		Scenario:  scen.Name,
		Planner:   cfg.Planner,
		Workers:   cfg.Workers,
		Seed:      cfg.Seed,
		RateScale: scale,
		Horizon:   scen.Horizon,
		P99Target: scen.P99Target,
	}
	if rep.Planner == "" {
		rep.Planner = PlannerStatic
	}
	hs := h.Stats()
	horizonSecs := scen.Horizon.Seconds()
	merged := &stats.Histogram{}
	for i, et := range tenants {
		ts := hs.Tenants[i]
		tr := TenantReport{
			ID:            et.scen.ID,
			Offered:       et.offered,
			Good:          et.good,
			SojournP50:    et.sojourn.Percentile(50),
			SojournP99:    et.sojourn.Percentile(99),
			SojournMax:    et.sojourn.Max(),
			SojournMean:   et.sojourn.Mean(),
			QueueMax:      et.queueMax,
			FaultCost:     et.cost,
			SharePages:    ts.SharePages,
			SLOWindows:    ts.SLO.Windows,
			SLOViolations: ts.SLO.Violations,
		}
		if hs.VMs[i].Monitor != nil {
			tr.Faults = hs.VMs[i].Monitor.Faults
		}
		if horizonSecs > 0 {
			tr.OfferedPerSec = float64(et.offered) / horizonSecs
			tr.GoodputPerSec = float64(et.good) / horizonSecs
		}
		if et.offered > 0 {
			tr.QueueMean = float64(et.queueSum) / float64(et.offered)
		}
		merged.Merge(et.sojourn)
		rep.Tenants = append(rep.Tenants, tr)
		rep.Offered += et.offered
		rep.Good += et.good
		if et.queueMax > rep.QueueMax {
			rep.QueueMax = et.queueMax
		}
	}
	if horizonSecs > 0 {
		rep.OfferedPerSec = float64(rep.Offered) / horizonSecs
		rep.GoodputPerSec = float64(rep.Good) / horizonSecs
	}
	rep.SojournP50 = merged.Percentile(50)
	rep.SojournP99 = merged.Percentile(99)
	rep.SojournMax = merged.Max()
	if hs.Now > scen.Horizon {
		rep.Backlog = hs.Now - scen.Horizon
	}
	rep.Epochs = hs.Arbiter.Epochs
	rep.Moves = hs.Arbiter.Moves
	rep.Digest = digest(rep, tenants)
	return rep
}

// digest fingerprints the run's simulated state for the determinism oracle.
func digest(rep *Report, tenants []*engineTenant) uint64 {
	fh := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		fh.Write(buf[:])
	}
	put(rep.Offered)
	put(rep.Good)
	put(uint64(rep.Epochs))
	put(uint64(rep.Moves))
	for i, et := range tenants {
		tr := rep.Tenants[i]
		put(tr.Offered)
		put(tr.Good)
		put(tr.Faults)
		put(uint64(tr.FaultCost))
		put(uint64(tr.SharePages))
		put(uint64(tr.QueueMax))
		put(et.queueSum)
		put(et.sojourn.Count())
		put(uint64(et.sojourn.Max()))
		for _, c := range et.sojourn.Buckets() {
			put(c)
		}
	}
	return fh.Sum64()
}

// Render prints the report as a paper-style table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "open-loop %s/%s — scale %.2g, horizon %v, target p99 %v, workers %d, seed %d\n",
		r.Scenario, r.Planner, r.RateScale, r.Horizon, r.P99Target, r.Workers, r.Seed)
	fmt.Fprintf(&b, "%-10s %9s %9s %7s %10s %10s %10s %6s %7s %8s\n",
		"tenant", "offered", "good", "share", "soj-p50", "soj-p99", "soj-max", "q-max", "faults", "slo-miss")
	for _, tr := range r.Tenants {
		fmt.Fprintf(&b, "%-10s %9d %9d %7d %10s %10s %10s %6d %7d %5d/%d\n",
			tr.ID, tr.Offered, tr.Good, tr.SharePages,
			tr.SojournP50, tr.SojournP99, tr.SojournMax,
			tr.QueueMax, tr.Faults, tr.SLOViolations, tr.SLOWindows)
	}
	fmt.Fprintf(&b, "%-10s %9d %9d %7s %10s %10s %10s %6d\n",
		"total", r.Offered, r.Good, "",
		r.SojournP50, r.SojournP99, r.SojournMax, r.QueueMax)
	fmt.Fprintf(&b, "offered %.0f/s, goodput %.0f/s, backlog %v, %d epochs / %d moves, digest %016x\n",
		r.OfferedPerSec, r.GoodputPerSec, r.Backlog, r.Epochs, r.Moves, r.Digest)
	return b.String()
}
