package loadgen

import (
	"reflect"
	"testing"
	"time"
)

func mustScenario(t *testing.T, name string) Scenario {
	t.Helper()
	s, err := NamedScenario(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunSameSeedBitIdentical(t *testing.T) {
	scen := mustScenario(t, "diurnal")
	cfg := Config{Scenario: scen, Planner: PlannerArbiter, Seed: 99}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("digests differ: %016x vs %016x", a.Digest, b.Digest)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("reports differ beyond digest")
	}
}

func TestRunSeedsDiverge(t *testing.T) {
	scen := mustScenario(t, "diurnal")
	a, err := Run(Config{Scenario: scen, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Scenario: scen, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatal("different seeds produced equal digests")
	}
}

func TestRunChurnLifecycle(t *testing.T) {
	scen := mustScenario(t, "churn")
	rep, err := Run(Config{Scenario: scen, Planner: PlannerArbiter, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]TenantReport{}
	for _, tr := range rep.Tenants {
		byID[tr.ID] = tr
	}
	// The late-booting and dying tenants each see roughly half the horizon;
	// their offered counts must reflect their live windows, not the full run.
	full := byID["steady"]
	if full.Offered == 0 {
		t.Fatal("steady tenant offered nothing")
	}
	for _, id := range []string{"dies", "lateboot"} {
		tr := byID[id]
		if tr.Offered == 0 {
			t.Fatalf("%s tenant offered nothing", id)
		}
	}
	// The planner must keep closing epochs after the death and around the
	// boot — the inactive-tenant barrier skip in Host.noteOp.
	if rep.Epochs < 2 {
		t.Fatalf("churn run closed only %d epochs; barrier stalled on the dead tenant?", rep.Epochs)
	}
}

func TestRunGoodputCollapsesPastKnee(t *testing.T) {
	scen := mustScenario(t, "flashcrowd")
	low, err := Run(Config{Scenario: scen, Seed: 5, RateScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(Config{Scenario: scen, Seed: 5, RateScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if low.Good > low.Offered || high.Good > high.Offered {
		t.Fatal("goodput exceeded offered load")
	}
	// Below the knee nearly everything is good; far past it most is not.
	if frac := float64(low.Good) / float64(low.Offered); frac < 0.9 {
		t.Fatalf("below-knee good fraction %v, want > 0.9", frac)
	}
	if frac := float64(high.Good) / float64(high.Offered); frac > 0.5 {
		t.Fatalf("past-knee good fraction %v, want < 0.5", frac)
	}
	if high.SojournP99 <= low.SojournP99 {
		t.Fatalf("p99 did not grow with load: %v vs %v", low.SojournP99, high.SojournP99)
	}
	if high.Backlog == 0 {
		t.Fatal("past-knee run reports zero backlog")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty scenario accepted")
	}
	scen := mustScenario(t, "diurnal")
	if _, err := Run(Config{Scenario: scen, Planner: "chaos"}); err == nil {
		t.Fatal("unknown planner accepted")
	}
	if _, err := Run(Config{Scenario: scen, RateScale: -1}); err == nil {
		t.Fatal("negative rate scale accepted")
	}
	bad := scen
	bad.Horizon = 0
	if _, err := Run(Config{Scenario: bad}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := NamedScenario("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}

func TestRunReportRenders(t *testing.T) {
	scen := mustScenario(t, "diurnal")
	scen.Horizon = 40 * time.Millisecond
	rep, err := Run(Config{Scenario: scen, Planner: PlannerMarket, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{"diurnal", "market", "offered", "goodput", "digest"} {
		if !contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
