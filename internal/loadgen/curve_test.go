package loadgen

import (
	"math"
	"testing"
	"time"
)

// numericCum integrates curve.Rate over [0, t) with the trapezoid rule — the
// reference the closed-form CumOps implementations are checked against.
func numericCum(c RateCurve, t time.Duration, steps int) float64 {
	h := float64(t) / float64(steps)
	sum := 0.0
	for i := 0; i < steps; i++ {
		a := time.Duration(float64(i) * h)
		b := time.Duration(float64(i+1) * h)
		sum += (c.Rate(a) + c.Rate(b)) / 2 * secs(b-a)
	}
	return sum
}

func TestCurveCumMatchesRateIntegral(t *testing.T) {
	curves := map[string]RateCurve{
		"constant": ConstantRate{PerSec: 50_000},
		"diurnal":  DiurnalRate{Base: 30_000, Swing: 0.9, Period: 100 * time.Millisecond, Phase: 1.1},
		"flash": FlashCrowdRate{Base: 20_000, Spike: 8,
			Start: 30 * time.Millisecond, Width: 40 * time.Millisecond},
		"scaled": Scale(DiurnalRate{Base: 10_000, Swing: 0.5, Period: 50 * time.Millisecond}, 3.5),
	}
	for name, c := range curves {
		if got := c.CumOps(0); got != 0 {
			t.Errorf("%s: CumOps(0) = %v, want 0", name, got)
		}
		for _, at := range []time.Duration{
			time.Millisecond, 29 * time.Millisecond, 31 * time.Millisecond,
			70 * time.Millisecond, 200 * time.Millisecond,
		} {
			want := numericCum(c, at, 20_000)
			got := c.CumOps(at)
			// Tolerance covers trapezoid error at step discontinuities
			// (one step of height Δrate contributes ≤ Δrate·h/2 ≈ 0.5 ops).
			if math.Abs(got-want) > math.Max(1e-6*want, 0.5) {
				t.Errorf("%s: CumOps(%v) = %v, numeric integral %v", name, at, got, want)
			}
		}
	}
}

func TestCurveMonotone(t *testing.T) {
	c := DiurnalRate{Base: 1000, Swing: 1, Period: 10 * time.Millisecond}
	prev := 0.0
	for at := time.Duration(0); at <= 40*time.Millisecond; at += 37 * time.Microsecond {
		cum := c.CumOps(at)
		if cum < prev {
			t.Fatalf("CumOps decreased at %v: %v < %v", at, cum, prev)
		}
		if r := c.Rate(at); r < 0 {
			t.Fatalf("Rate(%v) = %v < 0", at, r)
		}
		prev = cum
	}
}

func TestInvCumFindsFirstCrossing(t *testing.T) {
	c := ConstantRate{PerSec: 1_000_000} // 1 op per µs
	got := invCum(c, 5, 0, time.Millisecond)
	if want := 5 * time.Microsecond; got != want {
		t.Fatalf("invCum(5 ops at 1/µs) = %v, want %v", got, want)
	}
	if cum := c.CumOps(got); cum < 5 {
		t.Fatalf("CumOps(invCum) = %v < target", cum)
	}
	if cum := c.CumOps(got - 1); cum >= 5 {
		t.Fatalf("invCum not minimal: CumOps(t-1ns) = %v >= target", cum)
	}
}

func TestScaleIdentity(t *testing.T) {
	c := ConstantRate{PerSec: 10}
	if Scale(c, 1) != RateCurve(c) {
		t.Fatal("Scale(c, 1) should return c unchanged")
	}
	s := Scale(c, 2.5)
	if got := s.Rate(0); got != 25 {
		t.Fatalf("scaled rate = %v, want 25", got)
	}
	if got, want := s.CumOps(2*time.Second), 50.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("scaled CumOps = %v, want %v", got, want)
	}
}

func TestFlashCrowdShape(t *testing.T) {
	c := FlashCrowdRate{Base: 100, Spike: 8, Start: time.Second, Width: time.Second}
	if got := c.Rate(500 * time.Millisecond); got != 100 {
		t.Fatalf("pre-spike rate %v", got)
	}
	if got := c.Rate(1500 * time.Millisecond); got != 800 {
		t.Fatalf("in-spike rate %v", got)
	}
	if got := c.Rate(2 * time.Second); got != 100 {
		t.Fatalf("post-spike rate %v", got)
	}
	// Whole-run measure: 3 s of base + 1 s of (8−1)× extra.
	if got, want := c.CumOps(3*time.Second), 300.0+700.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("CumOps(3s) = %v, want %v", got, want)
	}
}
