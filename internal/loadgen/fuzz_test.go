package loadgen

import (
	"math"
	"testing"
	"time"
)

// FuzzArrivalSchedule pins the arrival-schedule invariants over fuzzed
// (process, curve, seed, split) tuples:
//
//  1. every arrival lies in [0, horizon) and timestamps are monotone
//     non-decreasing;
//  2. the schedule is bitwise repeatable — generating it twice yields the
//     same timestamps;
//  3. schedule splitting/merging is invariant: [0, split) ++ [split, horizon)
//     equals [0, horizon) element-for-element, for an arbitrary fuzzed split.
//
// These are the properties the open-loop engine builds its cross-worker
// determinism on, so they are fuzzed rather than merely example-tested.
func FuzzArrivalSchedule(f *testing.F) {
	f.Add(uint8(0), uint8(0), 40_000.0, 0.9, uint64(1), int64(5_000_000))
	f.Add(uint8(0), uint8(1), 30_000.0, 0.5, uint64(7), int64(4_111_333))
	f.Add(uint8(1), uint8(2), 20_000.0, 8.0, uint64(42), int64(1))
	f.Add(uint8(1), uint8(0), 100_000.0, 0.0, uint64(3), int64(7_999_999))
	f.Add(uint8(0), uint8(2), 0.0, 2.0, uint64(9), int64(2_000_000))
	f.Fuzz(func(t *testing.T, proc, curveKind uint8, rate, shape float64, seed uint64, splitNs int64) {
		const horizon = 8 * time.Millisecond
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
			rate = 1000
		}
		if rate > 200_000 {
			rate = math.Mod(rate, 200_000)
		}
		if math.IsNaN(shape) || math.IsInf(shape, 0) || shape < 0 {
			shape = 0.5
		}
		var curve RateCurve
		switch curveKind % 3 {
		case 0:
			curve = ConstantRate{PerSec: rate}
		case 1:
			curve = DiurnalRate{Base: rate, Swing: math.Mod(shape, 1), Period: 3 * time.Millisecond}
		default:
			curve = FlashCrowdRate{Base: rate, Spike: 1 + math.Mod(shape, 8),
				Start: horizon / 4, Width: horizon / 4}
		}
		cfg := ArrivalConfig{Process: Process(proc % 2), Curve: curve, Seed: seed}

		split := time.Duration(splitNs)
		if split < 0 {
			split = -split
		}
		split %= horizon

		whole := cfg.Schedule(0, horizon)
		prev := time.Duration(0)
		for i, at := range whole {
			if at < 0 || at >= horizon {
				t.Fatalf("arrival %d at %v outside [0, %v)", i, at, horizon)
			}
			if at < prev {
				t.Fatalf("arrival %d at %v before predecessor %v", i, at, prev)
			}
			prev = at
		}

		again := cfg.Schedule(0, horizon)
		if len(again) != len(whole) {
			t.Fatalf("repeat generated %d arrivals, first run %d", len(again), len(whole))
		}
		for i := range whole {
			if whole[i] != again[i] {
				t.Fatalf("repeat arrival %d is %v, first run %v", i, again[i], whole[i])
			}
		}

		merged := append(cfg.Schedule(0, split), cfg.Schedule(split, horizon)...)
		if len(merged) != len(whole) {
			t.Fatalf("split at %v: merged %d arrivals, whole %d", split, len(merged), len(whole))
		}
		for i := range whole {
			if merged[i] != whole[i] {
				t.Fatalf("split at %v: merged arrival %d is %v, whole %v", split, i, merged[i], whole[i])
			}
		}
	})
}
